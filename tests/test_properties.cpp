// The property-oracle suite: every determinism contract the repo
// ships, checked over *generated* configs instead of hand-picked ones
// (ISSUE 9 — the paper's landing-page lesson applied to the test
// suite). Each test plugs an oracle from testkit/oracles.h plus a
// generator from testkit/gen.h into testkit::check(); a failure prints
// the oracle's first-divergence message and a replayable seed line.
//
// CI-smoke budget: the jobs-identity properties run 50 generated
// configs per engine (the ISSUE 9 acceptance floor); the expensive
// resume properties (three engine runs per case) run fewer; the cheap
// grammar and model oracles run hundreds.
#include "testkit/oracles.h"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>

#include "net/vantage_profile.h"
#include "testkit/property.h"

namespace {

using hispar::testkit::Counterexample;
using hispar::testkit::Gen;
using hispar::testkit::Property;
using hispar::testkit::PropertyConfig;

hispar::testkit::WorldPool& pool() {
  static hispar::testkit::WorldPool instance;
  return instance;
}

void expect_holds(const char* name, int iters, const Property& property) {
  PropertyConfig config;
  config.name = name;
  config.seed = 1;
  config.iters = iters;
  const Counterexample cx = hispar::testkit::check(config, property);
  EXPECT_FALSE(cx.failed) << cx.message << "\n  " << cx.replay;
}

hispar::core::VantageCampaignConfig gen_vantage_campaign(Gen& gen) {
  hispar::core::VantageCampaignConfig config;
  config.base = hispar::testkit::gen_campaign_config(gen);
  config.base.landing_loads = 1;  // vantage runs the campaign per profile
  config.profiles = hispar::net::VantageProfile::parse_list(
      hispar::testkit::gen_vantage_list_spec(gen));
  return config;
}

std::string scratch(const char* name) {
  return ::testing::TempDir() + "properties_" + name + ".ckpt";
}

// --- Jobs identity: >= 50 generated configs per engine ---

TEST(PropertySuite, MeasureJobsIdentity) {
  expect_holds("measure-jobs-identity", 50,
               [](Gen& gen) -> std::optional<std::string> {
                 const auto& world = pool().pick(gen);
                 auto config = hispar::testkit::gen_campaign_config(gen);
                 const std::size_t alt_jobs = 2 + gen.index(7);
                 return hispar::testkit::check_measure_jobs_identity(
                     world, config, alt_jobs);
               });
}

TEST(PropertySuite, ListBuildJobsIdentity) {
  expect_holds("listbuild-jobs-identity", 50,
               [](Gen& gen) -> std::optional<std::string> {
                 const auto& world = pool().pick(gen);
                 auto config = hispar::testkit::gen_listbuild_config(gen);
                 const std::size_t alt_jobs = 2 + gen.index(7);
                 return hispar::testkit::check_listbuild_jobs_identity(
                     world, config, alt_jobs);
               });
}

TEST(PropertySuite, VantageJobsIdentity) {
  expect_holds("vantage-jobs-identity", 50,
               [](Gen& gen) -> std::optional<std::string> {
                 const auto& world = pool().pick(gen);
                 auto config = gen_vantage_campaign(gen);
                 const std::size_t alt_jobs = 2 + gen.index(7);
                 return hispar::testkit::check_vantage_jobs_identity(
                     world, config, alt_jobs);
               });
}

TEST(PropertySuite, SessionJobsIdentity) {
  expect_holds("session-jobs-identity", 50,
               [](Gen& gen) -> std::optional<std::string> {
                 const auto& world = pool().pick(gen);
                 auto config = hispar::testkit::gen_session_config(gen);
                 const std::size_t alt_jobs = 2 + gen.index(7);
                 return hispar::testkit::check_session_jobs_identity(
                     world, config, alt_jobs);
               });
}

// --- Kill + resume identity (three engine runs per case, so fewer) ---

TEST(PropertySuite, MeasureResumeIdentity) {
  expect_holds("measure-resume-identity", 10,
               [](Gen& gen) -> std::optional<std::string> {
                 const auto& world = pool().pick(gen);
                 auto config = hispar::testkit::gen_campaign_config(gen);
                 return hispar::testkit::check_measure_resume_identity(
                     world, config, scratch("measure"));
               });
}

TEST(PropertySuite, ListBuildResumeIdentity) {
  expect_holds("listbuild-resume-identity", 10,
               [](Gen& gen) -> std::optional<std::string> {
                 const auto& world = pool().pick(gen);
                 auto config = hispar::testkit::gen_listbuild_config(gen);
                 return hispar::testkit::check_listbuild_resume_identity(
                     world, config, scratch("listbuild"));
               });
}

TEST(PropertySuite, VantageResumeIdentity) {
  expect_holds("vantage-resume-identity", 8,
               [](Gen& gen) -> std::optional<std::string> {
                 const auto& world = pool().pick(gen);
                 auto config = gen_vantage_campaign(gen);
                 return hispar::testkit::check_vantage_resume_identity(
                     world, config, scratch("vantage"));
               });
}

TEST(PropertySuite, SessionResumeIdentity) {
  expect_holds("session-resume-identity", 10,
               [](Gen& gen) -> std::optional<std::string> {
                 const auto& world = pool().pick(gen);
                 auto config = hispar::testkit::gen_session_config(gen);
                 return hispar::testkit::check_session_resume_identity(
                     world, config, scratch("session"));
               });
}

// --- Feature-off passthrough + fresh-run determinism ---

TEST(PropertySuite, MeasureObservabilityPassthrough) {
  expect_holds("measure-obs-passthrough", 20,
               [](Gen& gen) -> std::optional<std::string> {
                 const auto& world = pool().pick(gen);
                 auto config = hispar::testkit::gen_campaign_config(gen);
                 return hispar::testkit::check_measure_obs_passthrough(world,
                                                                       config);
               });
}

TEST(PropertySuite, SessionObservabilityPassthrough) {
  expect_holds("session-obs-passthrough", 15,
               [](Gen& gen) -> std::optional<std::string> {
                 const auto& world = pool().pick(gen);
                 auto config = hispar::testkit::gen_session_config(gen);
                 return hispar::testkit::check_session_obs_passthrough(world,
                                                                       config);
               });
}

TEST(PropertySuite, MeasureFreshRunDeterminism) {
  expect_holds("measure-run-determinism", 20,
               [](Gen& gen) -> std::optional<std::string> {
                 const auto& world = pool().pick(gen);
                 auto config = hispar::testkit::gen_campaign_config(gen);
                 return hispar::testkit::check_measure_run_determinism(world,
                                                                       config);
               });
}

// --- Grammar round-trips: parse(str(x)) == x ---

TEST(PropertySuite, FaultGrammarRoundTrip) {
  expect_holds("fault-roundtrip", 200,
               [](Gen& gen) -> std::optional<std::string> {
                 return hispar::testkit::check_fault_roundtrip(
                     hispar::testkit::gen_fault_spec(gen));
               });
}

// scale_fault_profile over generated profiles x scales: the scaled
// profile must always stay inside the parser's budget (total <= 1 —
// the bug was clamping each rate independently, letting the sum
// escape), must re-parse through the checkpoint grammar, and must be
// exactly proportional whenever no clamp or renormalization fires.
TEST(PropertySuite, ScaleFaultProfileStaysParseable) {
  expect_holds(
      "scale-fault-budget", 300,
      [](Gen& gen) -> std::optional<std::string> {
        namespace net = hispar::net;
        const std::string spec = hispar::testkit::gen_fault_spec(gen);
        const net::FaultProfile base = net::FaultProfile::parse(spec);
        const double scale = gen.in_range(0.0, 4.0);
        const net::FaultProfile scaled =
            hispar::core::scale_fault_profile(base, scale);

        const double total = scaled.total_rate();
        if (total > 1.0)
          return "total " + std::to_string(total) + " > 1 for spec '" +
                 spec + "' x " + std::to_string(scale);
        try {
          net::FaultProfile::parse(scaled.str());
        } catch (const std::exception& err) {
          return "scaled profile rejected by parser: " +
                 std::string(err.what());
        }

        const double raw_total = base.total_rate() * scale;
        if (raw_total <= 1.0) {
          const double pairs[][2] = {
              {base.dns_servfail, scaled.dns_servfail},
              {base.dns_timeout, scaled.dns_timeout},
              {base.connection_reset, scaled.connection_reset},
              {base.tls_failure, scaled.tls_failure},
              {base.http_5xx, scaled.http_5xx},
              {base.stall, scaled.stall},
              {base.truncation, scaled.truncation}};
          for (const auto& pair : pairs) {
            const double want = pair[0] * scale;
            if (std::abs(pair[1] - want) > 1e-12)
              return "rate not proportional under spec '" + spec + "' x " +
                     std::to_string(scale) + ": got " +
                     std::to_string(pair[1]) + " want " +
                     std::to_string(want);
          }
        }
        return std::nullopt;
      });
}

TEST(PropertySuite, SearchFaultGrammarRoundTrip) {
  expect_holds("search-fault-roundtrip", 200,
               [](Gen& gen) -> std::optional<std::string> {
                 return hispar::testkit::check_search_fault_roundtrip(
                     hispar::testkit::gen_search_fault_spec(gen));
               });
}

TEST(PropertySuite, ChaosGrammarRoundTrip) {
  expect_holds("chaos-roundtrip", 200,
               [](Gen& gen) -> std::optional<std::string> {
                 return hispar::testkit::check_chaos_roundtrip(
                     hispar::testkit::gen_chaos_spec(gen));
               });
}

TEST(PropertySuite, VantageGrammarRoundTrip) {
  expect_holds("vantage-roundtrip", 200,
               [](Gen& gen) -> std::optional<std::string> {
                 return hispar::testkit::check_vantage_roundtrip(
                     hispar::testkit::gen_vantage_spec(gen));
               });
}

// --- Reference-model state machines ---

TEST(PropertySuite, LruCacheMatchesModel) {
  expect_holds("lru-model", 300, [](Gen& gen) {
    return hispar::testkit::check_lru_model(gen);
  });
}

TEST(PropertySuite, HttpCacheMatchesModel) {
  expect_holds("http-cache-model", 300, [](Gen& gen) {
    return hispar::testkit::check_http_cache_model(gen);
  });
}

TEST(PropertySuite, CircuitBreakerMatchesModel) {
  expect_holds("breaker-model", 300, [](Gen& gen) {
    return hispar::testkit::check_breaker_model(gen);
  });
}

}  // namespace
