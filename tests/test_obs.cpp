// Tests for the observability subsystem: metrics registry semantics,
// the trace ring, deterministic JSON, and — the load-bearing guarantee —
// byte-identical artifacts for any worker count and across a killed and
// resumed campaign.
#include "core/measurement.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace {

using namespace hispar;
using core::CampaignConfig;
using core::MeasurementCampaign;
using core::SiteObservation;

// --- Histogram semantics -------------------------------------------------

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  obs::Histogram h;
  h.bounds = {1.0, 10.0, 100.0};
  h.counts.assign(4, 0);
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // boundary value lands in its own bucket
  h.observe(1.001);  // first value past the boundary
  h.observe(100.0);
  h.observe(1000.0);  // overflow slot
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count, 5u);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.0 + 1.001 + 100.0 + 1000.0);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);
}

TEST(Histogram, MergeSumsCountsAndTracksExtrema) {
  obs::MetricsRegistry a, b;
  obs::Histogram& ha = a.histogram("wait", {1.0, 2.0});
  obs::Histogram& hb = b.histogram("wait", {1.0, 2.0});
  ha.observe(0.5);
  ha.observe(5.0);
  hb.observe(1.5);
  ha.merge_from(hb);
  EXPECT_EQ(ha.counts, (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(ha.count, 3u);
  EXPECT_DOUBLE_EQ(ha.sum, 7.0);
  EXPECT_DOUBLE_EQ(ha.min, 0.5);
  EXPECT_DOUBLE_EQ(ha.max, 5.0);
}

TEST(Histogram, MergeRejectsMismatchedBounds) {
  obs::Histogram a, b;
  a.bounds = {1.0, 2.0};
  a.counts.assign(3, 0);
  b.bounds = {1.0, 3.0};
  b.counts.assign(3, 0);
  EXPECT_THROW(a.merge_from(b), std::logic_error);
}

TEST(MetricsRegistry, HistogramReRegistrationWithOtherBoundsThrows) {
  obs::MetricsRegistry registry;
  registry.histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(registry.histogram("h", {1.0, 2.0}));
  EXPECT_THROW(registry.histogram("h", {1.0, 4.0}), std::logic_error);
}

TEST(MetricsRegistry, MergeSumsCountersAndPrefixesGauges) {
  obs::MetricsRegistry total, shard0, shard1;
  shard0.counter("dns.queries") = 3;
  shard1.counter("dns.queries") = 4;
  shard0.gauge("clock_end_s") = 10.0;
  shard1.gauge("clock_end_s") = 20.0;
  total.merge_from(shard0, "shard.0.");
  total.merge_from(shard1, "shard.1.");
  EXPECT_EQ(total.counter_or("dns.queries"), 7u);
  EXPECT_DOUBLE_EQ(total.gauge_or("shard.0.clock_end_s"), 10.0);
  EXPECT_DOUBLE_EQ(total.gauge_or("shard.1.clock_end_s"), 20.0);
  EXPECT_EQ(total.gauges().count("clock_end_s"), 0u);
}

TEST(MetricsRegistry, ShardOrderMergeIsReproducible) {
  // The campaign folds shard registries in shard-id order; repeating
  // the same fold must give a byte-identical export.
  std::vector<obs::MetricsRegistry> shards(3);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shards[s].counter("fetches") = 10 + s;
    shards[s].histogram("wait", obs::time_ms_buckets())
        .observe(1.5 * static_cast<double>(s + 1));
  }
  const auto fold = [&shards]() {
    obs::MetricsRegistry total;
    for (std::size_t s = 0; s < shards.size(); ++s)
      total.merge_from(shards[s], "shard." + std::to_string(s) + ".");
    std::ostringstream os;
    total.write_json(os);
    return os.str();
  };
  EXPECT_EQ(fold(), fold());
}

// --- Tracer ring ---------------------------------------------------------

TEST(Tracer, RingKeepsNewestSpansAndCountsDrops) {
  obs::Tracer tracer(/*span_cap=*/4);
  for (int i = 0; i < 10; ++i) {
    obs::TraceSpan span;
    span.name = std::to_string(i);
    tracer.record(std::move(span));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto spans = tracer.ordered_spans();
  ASSERT_EQ(spans.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(spans[i].name, std::to_string(6 + i));
}

TEST(Tracer, ToTraceUsIsExactForWholeMicroseconds) {
  EXPECT_EQ(obs::to_trace_us(0.0), 0);
  EXPECT_EQ(obs::to_trace_us(1.5), 1500000);
  EXPECT_EQ(obs::to_trace_us(0.000001), 1);
}

TEST(Tracer, ChromeTraceExportIsWellFormed) {
  std::vector<obs::TraceSpan> spans(2);
  spans[0].name = "shard 0";
  spans[0].cat = "shard";
  spans[0].tid = 1;
  spans[0].dur_us = 100;
  spans[1].name = "example.com";
  spans[1].cat = "load";
  spans[1].tid = 2;
  spans[1].ts_us = 10;
  spans[1].dur_us = 50;
  spans[1].args.emplace_back("page", "landing");
  std::ostringstream os;
  obs::write_chrome_trace(os, spans);
  const obs::JsonValue doc = obs::parse_json(os.str());
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // One thread_name metadata event per distinct tid, then the spans.
  ASSERT_EQ(events->array.size(), 4u);
  EXPECT_EQ(events->array[0].find("ph")->string, "M");
  EXPECT_EQ(events->array[1].find("ph")->string, "M");
  EXPECT_EQ(events->array[2].find("ph")->string, "X");
  EXPECT_EQ(events->array[3].find("name")->string, "example.com");
  EXPECT_DOUBLE_EQ(events->array[3].find("dur")->number, 50.0);
}

// --- Deterministic JSON --------------------------------------------------

TEST(Json, EscapeRoundTripsThroughParser) {
  const std::string nasty = "quote:\" backslash:\\ newline:\n tab:\t";
  const obs::JsonValue parsed =
      obs::parse_json("\"" + obs::json_escape(nasty) + "\"");
  EXPECT_EQ(parsed.string, nasty);
}

TEST(Json, NumbersRoundTripExactly) {
  for (double value : {0.1, 1.0 / 3.0, 12345.6789, 1e-17, -42.0}) {
    const obs::JsonValue parsed = obs::parse_json(obs::json_number(value));
    EXPECT_EQ(parsed.number, value);
  }
}

// --- Reporter ------------------------------------------------------------

TEST(Report, SummaryLineMatchesLegacyFormat) {
  obs::RunReport report;
  report.sites_ok = 3;
  report.sites_degraded = 1;
  report.sites_quarantined = 2;
  report.total_retries = 5;
  report.failed_fetches = 4;
  report.degraded_fetches = 7;
  EXPECT_EQ(obs::summary_line(report),
            "campaign: 3 ok, 1 degraded, 2 quarantined; 5 retries, "
            "4 failed fetches, 7 partial loads");
}

// --- End-to-end campaign guarantees --------------------------------------

class ObsCampaignTest : public ::testing::Test {
 protected:
  ObsCampaignTest()
      : web_({150, 37, 300, false}), toplists_(web_), engine_(web_) {}

  core::HisparList build_list(std::size_t sites) {
    core::HisparBuilder builder(web_, toplists_, engine_);
    core::HisparConfig config;
    config.target_sites = sites;
    config.urls_per_site = 8;
    config.min_internal_results = 4;
    return builder.build(config, 0);
  }

  // Faults on, so the telemetry carries retries, quarantines and
  // injected-fault counters — the hard cases for bit-identity.
  CampaignConfig observed_config() {
    CampaignConfig config;
    config.landing_loads = 2;
    config.shards = 4;
    config.fault_profile = net::FaultProfile::uniform(0.05);
    config.observability.enabled = true;
    return config;
  }

  std::string temp_path(const char* name) {
    return std::string("/tmp/hispar_obs_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + name;
  }

  struct Artifacts {
    std::string metrics;
    std::string trace;
    std::string report;
  };

  static Artifacts render(const MeasurementCampaign& campaign,
                          const std::vector<SiteObservation>& sites) {
    Artifacts artifacts;
    std::ostringstream metrics;
    campaign.telemetry().metrics.write_json(metrics);
    artifacts.metrics = metrics.str();
    std::ostringstream trace;
    obs::write_chrome_trace(trace, campaign.telemetry().spans);
    artifacts.trace = trace.str();
    std::ostringstream report;
    obs::write_report_json(report,
                           core::build_run_report(sites, campaign.telemetry()));
    artifacts.report = report.str();
    return artifacts;
  }

  web::SyntheticWeb web_;
  toplist::TopListFactory toplists_;
  search::SearchEngine engine_;
};

TEST_F(ObsCampaignTest, ArtifactsAreByteIdenticalAcrossJobCounts) {
  const auto list = build_list(10);
  CampaignConfig config = observed_config();

  config.jobs = 1;
  MeasurementCampaign serial(web_, config);
  const auto serial_sites = serial.run(list);
  const Artifacts serial_artifacts = render(serial, serial_sites);

  config.jobs = 8;
  MeasurementCampaign threaded(web_, config);
  const auto threaded_sites = threaded.run(list);
  const Artifacts threaded_artifacts = render(threaded, threaded_sites);

  EXPECT_EQ(serial_artifacts.metrics, threaded_artifacts.metrics);
  EXPECT_EQ(serial_artifacts.trace, threaded_artifacts.trace);
  EXPECT_EQ(serial_artifacts.report, threaded_artifacts.report);
}

TEST_F(ObsCampaignTest, ArtifactsSurviveKillAndResumeByteIdentically) {
  const auto list = build_list(10);
  CampaignConfig config = observed_config();

  MeasurementCampaign reference(web_, config);
  const auto reference_sites = reference.run(list);
  const Artifacts expected = render(reference, reference_sites);

  // Simulate a kill: keep the header, the first complete shard block
  // (telemetry records included) and a torn fragment of the second.
  const std::string full_path = temp_path("full");
  std::remove(full_path.c_str());
  config.checkpoint_path = full_path;
  MeasurementCampaign writer(web_, config);
  writer.run(list);

  std::ifstream full(full_path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(full, line);) lines.push_back(line);
  full.close();
  std::size_t first_end = 0;
  for (std::size_t i = 0; i < lines.size(); ++i)
    if (lines[i].rfind("endshard,", 0) == 0) {
      first_end = i;
      break;
    }
  ASSERT_GT(first_end, 0u) << "campaign wrote no complete shard";
  ASSERT_GT(lines.size(), first_end + 2) << "need a second block to tear";

  const std::string torn_path = temp_path("torn");
  {
    std::ofstream torn(torn_path);
    for (std::size_t i = 0; i <= first_end + 1; ++i) torn << lines[i] << '\n';
    torn << lines[first_end + 2].substr(0, lines[first_end + 2].size() / 2);
  }

  config.checkpoint_path = torn_path;
  MeasurementCampaign resumer(web_, config);
  const auto resumed_sites = resumer.run(list);
  const Artifacts resumed = render(resumer, resumed_sites);

  EXPECT_EQ(expected.metrics, resumed.metrics);
  EXPECT_EQ(expected.trace, resumed.trace);
  EXPECT_EQ(expected.report, resumed.report);

  std::remove(full_path.c_str());
  std::remove(torn_path.c_str());
}

TEST_F(ObsCampaignTest, ObservabilityDoesNotPerturbMeasurements) {
  const auto list = build_list(8);
  CampaignConfig config = observed_config();

  config.observability.enabled = false;
  MeasurementCampaign plain(web_, config);
  const auto plain_sites = plain.run(list);
  EXPECT_FALSE(plain.telemetry().enabled);

  config.observability.enabled = true;
  MeasurementCampaign observed(web_, config);
  const auto observed_sites = observed.run(list);
  EXPECT_TRUE(observed.telemetry().enabled);

  ASSERT_EQ(plain_sites.size(), observed_sites.size());
  for (std::size_t i = 0; i < plain_sites.size(); ++i) {
    EXPECT_EQ(plain_sites[i].domain, observed_sites[i].domain);
    EXPECT_EQ(plain_sites[i].quarantined, observed_sites[i].quarantined);
    EXPECT_EQ(plain_sites[i].total_retries, observed_sites[i].total_retries);
    EXPECT_EQ(plain_sites[i].landing.bytes, observed_sites[i].landing.bytes);
    EXPECT_EQ(plain_sites[i].landing.plt_ms, observed_sites[i].landing.plt_ms);
    ASSERT_EQ(plain_sites[i].internals.size(),
              observed_sites[i].internals.size());
    for (std::size_t p = 0; p < plain_sites[i].internals.size(); ++p) {
      EXPECT_EQ(plain_sites[i].internals[p].bytes,
                observed_sites[i].internals[p].bytes);
      EXPECT_EQ(plain_sites[i].internals[p].plt_ms,
                observed_sites[i].internals[p].plt_ms);
    }
  }
}

TEST_F(ObsCampaignTest, WaitSampleCapDropsAreCounted) {
  const auto list = build_list(6);
  CampaignConfig config = observed_config();
  config.wait_sample_cap = 4;  // far below a typical page's object count
  MeasurementCampaign campaign(web_, config);
  const auto sites = campaign.run(list);
  for (const auto& site : sites) {
    // The cap bounds each load attempt; landing medians concatenate the
    // samples of every landing round.
    EXPECT_LE(site.landing.wait_samples_ms.size(),
              4u * config.landing_loads);
    for (const auto& metrics : site.internals)
      EXPECT_LE(metrics.wait_samples_ms.size(), 4u);
  }
  EXPECT_GT(
      campaign.telemetry().metrics.counter_or("loader.wait_samples_dropped"),
      0u);
}

TEST_F(ObsCampaignTest, RunReportIsInternallyConsistent) {
  const auto list = build_list(8);
  const CampaignConfig config = observed_config();
  MeasurementCampaign campaign(web_, config);
  const auto sites = campaign.run(list);
  const obs::RunReport report =
      core::build_run_report(sites, campaign.telemetry());

  EXPECT_TRUE(report.telemetry);
  EXPECT_EQ(report.sites_total, sites.size());
  EXPECT_EQ(report.sites_total,
            report.sites_ok + report.sites_degraded + report.sites_quarantined);
  EXPECT_GT(report.page_fetches, 0u);
  EXPECT_GT(report.dns_queries, 0u);
  EXPECT_GE(report.dns_queries, report.dns_cache_hits);
  EXPECT_GT(report.cdn_requests, 0u);
  EXPECT_EQ(report.cdn_requests,
            report.cdn_edge_hits + report.cdn_parent_hits +
                report.cdn_origin_fetches);
  EXPECT_GE(report.shard_skew_s(), 0.0);
  ASSERT_FALSE(report.shards.empty());
  std::uint64_t shard_sites = 0;
  for (const auto& shard : report.shards) shard_sites += shard.sites;
  EXPECT_EQ(shard_sites, sites.size());
}

}  // namespace
