#include "net/dns.h"

#include <cmath>

#include <gtest/gtest.h>

namespace {

using namespace hispar::net;
using hispar::util::Rng;

DnsRecord make_record(double rate = 0.0, double ttl = 600.0) {
  DnsRecord record;
  record.domain = "example.com";
  record.ttl_s = ttl;
  record.client_query_rate = rate;
  return record;
}

TEST(EffectiveTtl, CapsCdnRoutedNames) {
  DnsRecord record = make_record(0.0, 3600.0);
  EXPECT_DOUBLE_EQ(effective_ttl_s(record), 3600.0);
  record.cdn_request_routing = true;
  EXPECT_LE(effective_ttl_s(record), 30.0);
}

TEST(EffectiveTtl, FloorsAtOneSecond) {
  EXPECT_GE(effective_ttl_s(make_record(0.0, 0.0)), 1.0);
}

TEST(CachingResolverTest, SecondQueryHitsOwnCache) {
  LatencyModel latency;
  CachingResolver resolver({"local", 1, 6.0, Region::kNorthAmerica, 1.0},
                           latency);
  Rng rng(1);
  const DnsRecord record = make_record(0.0);
  const auto first = resolver.resolve(record, 0.0, rng);
  const auto second = resolver.resolve(record, 1.0, rng);
  EXPECT_FALSE(first.cache_hit);  // rate 0: nobody keeps it warm
  EXPECT_TRUE(second.cache_hit);
  EXPECT_LT(second.latency_ms, first.latency_ms);
}

TEST(CachingResolverTest, EntryExpiresAfterTtl) {
  LatencyModel latency;
  CachingResolver resolver({"local", 1, 6.0, Region::kNorthAmerica, 1.0},
                           latency);
  Rng rng(1);
  const DnsRecord record = make_record(0.0, 100.0);
  (void)resolver.resolve(record, 0.0, rng);
  EXPECT_TRUE(resolver.resolve(record, 50.0, rng).cache_hit);
  EXPECT_FALSE(resolver.resolve(record, 150.0, rng).cache_hit);
}

TEST(CachingResolverTest, WarmProbabilityFollowsPoissonModel) {
  LatencyModel latency;
  CachingResolver resolver({"local", 1, 6.0, Region::kNorthAmerica, 1.0},
                           latency);
  // 1 - exp(-rate * ttl) with rate=0.01, ttl=100 => 1 - e^-1.
  const DnsRecord record = make_record(0.01, 100.0);
  EXPECT_NEAR(resolver.warm_probability(record), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(CachingResolverTest, FragmentationLowersWarmProbability) {
  LatencyModel latency;
  CachingResolver sharded({"public", 8, 12.0, Region::kNorthAmerica, 1.0},
                          latency);
  CachingResolver unsharded({"local", 1, 6.0, Region::kNorthAmerica, 1.0},
                            latency);
  const DnsRecord record = make_record(0.05, 60.0);
  EXPECT_LT(sharded.warm_probability(record),
            unsharded.warm_probability(record));
}

TEST(CachingResolverTest, PopularDomainsHitViaOtherClients) {
  LatencyModel latency;
  CachingResolver resolver({"local", 1, 6.0, Region::kNorthAmerica, 1.0},
                           latency);
  Rng rng(1);
  // Extremely popular: warm probability ~ 1; first query should hit.
  const DnsRecord record = make_record(1000.0, 600.0);
  int hits = 0;
  for (int i = 0; i < 100; ++i) {
    CachingResolver fresh({"local", 1, 6.0, Region::kNorthAmerica, 1.0},
                          latency);
    hits += fresh.resolve(record, 0.0, rng).cache_hit;
  }
  EXPECT_GT(hits, 95);
}

TEST(CachingResolverTest, TracksHitRate) {
  LatencyModel latency;
  CachingResolver resolver({"local", 1, 6.0, Region::kNorthAmerica, 1.0},
                           latency);
  Rng rng(1);
  const DnsRecord record = make_record(0.0);
  EXPECT_DOUBLE_EQ(resolver.hit_rate(), 0.0);
  (void)resolver.resolve(record, 0.0, rng);
  (void)resolver.resolve(record, 1.0, rng);
  EXPECT_EQ(resolver.queries(), 2u);
  EXPECT_EQ(resolver.hits(), 1u);
  EXPECT_DOUBLE_EQ(resolver.hit_rate(), 0.5);
  resolver.clear();
  EXPECT_EQ(resolver.queries(), 0u);
}

TEST(CachingResolverTest, MissLatencyIncludesUpstreamRtt) {
  LatencyModel latency;
  CachingResolver resolver({"local", 1, 6.0, Region::kNorthAmerica, 1.0},
                           latency);
  Rng rng(1);
  DnsRecord record = make_record(0.0);
  record.authoritative_region = Region::kAsia;  // far authoritative
  const auto miss = resolver.resolve(record, 0.0, rng);
  EXPECT_GT(miss.latency_ms, 100.0);  // NA<->Asia RTT ~160 ms
  const auto hit = resolver.resolve(record, 1.0, rng);
  EXPECT_LT(hit.latency_ms, 20.0);
}

TEST(CachingResolverTest, RejectsInvalidShards) {
  LatencyModel latency;
  EXPECT_THROW(
      CachingResolver({"bad", 0, 6.0, Region::kNorthAmerica, 1.0}, latency),
      std::invalid_argument);
}

}  // namespace
