#include "web/thirdparty.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace {

using namespace hispar::web;
using hispar::util::Rng;

TEST(ThirdPartyPoolTest, StandardPoolHasHeadAndTail) {
  const auto pool = ThirdPartyPool::standard(500, 7);
  EXPECT_GT(pool.size(), 500u);  // tail + curated head
  // The paper's nytimes example services are present (§5.3).
  bool has_ga = false, has_doubleclick = false, has_typekit = false;
  for (const auto& svc : pool.services()) {
    has_ga |= svc.domain == "www.google-analytics.com";
    has_doubleclick |= svc.domain == "ad.doubleclick.net";
    has_typekit |= svc.domain == "use.typekit.net";
  }
  EXPECT_TRUE(has_ga);
  EXPECT_TRUE(has_doubleclick);
  EXPECT_TRUE(has_typekit);
}

TEST(ThirdPartyPoolTest, DomainsAreUnique) {
  const auto pool = ThirdPartyPool::standard(1000, 7);
  std::set<std::string> domains;
  for (const auto& svc : pool.services()) domains.insert(svc.domain);
  EXPECT_EQ(domains.size(), pool.size());
}

TEST(ThirdPartyPoolTest, ServiceLookupValidatesId) {
  const auto pool = ThirdPartyPool::standard(100, 7);
  EXPECT_EQ(pool.service(0).id, 0);
  EXPECT_THROW(pool.service(-1), std::out_of_range);
  EXPECT_THROW(pool.service(static_cast<int>(pool.size())),
               std::out_of_range);
}

TEST(ThirdPartyPoolTest, SamplingFavorsTheHead) {
  const auto pool = ThirdPartyPool::standard(2000, 7);
  Rng rng(5);
  std::map<int, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[pool.sample(rng).id];
  int head_draws = 0;
  for (const auto& [id, count] : counts)
    if (id < 30) head_draws += count;
  // The 30 head services out of 2030 should absorb a large share.
  EXPECT_GT(head_draws, 20000 / 4);
}

TEST(ThirdPartyPoolTest, SampleTrackerIsAlwaysFlagged) {
  const auto pool = ThirdPartyPool::standard(500, 7);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i)
    EXPECT_TRUE(pool.sample_tracker(rng).flagged_by_adblock);
}

TEST(ThirdPartyPoolTest, KindFilterIsRespected) {
  const auto pool = ThirdPartyPool::standard(500, 7);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto& svc =
        pool.sample(rng, static_cast<int>(ThirdPartyKind::kFonts));
    EXPECT_EQ(svc.kind, ThirdPartyKind::kFonts);
  }
}

TEST(ThirdPartyPoolTest, RequestsPerEmbedWithinBounds) {
  const auto pool = ThirdPartyPool::standard(2000, 7);
  for (const auto& svc : pool.services()) {
    EXPECT_GE(svc.requests_per_embed, 1);
    EXPECT_LE(svc.requests_per_embed, 5);
    // Flagged tail services fire at most a script + beacon.
    if (svc.id >= 40 && svc.flagged_by_adblock)
      EXPECT_LE(svc.requests_per_embed, 2);
  }
}

TEST(ThirdPartyPoolTest, PopularityWeightDecaysWithRank) {
  const auto pool = ThirdPartyPool::standard(500, 7);
  EXPECT_GT(pool.service(0).popularity_weight,
            pool.service(100).popularity_weight);
  EXPECT_GT(pool.service(100).popularity_weight,
            pool.service(400).popularity_weight);
}

TEST(ThirdPartyPoolTest, DeterministicForSameSeed) {
  const auto a = ThirdPartyPool::standard(300, 9);
  const auto b = ThirdPartyPool::standard(300, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.services()[i].domain, b.services()[i].domain);
    EXPECT_EQ(a.services()[i].kind, b.services()[i].kind);
  }
}

TEST(ThirdPartyPoolTest, KindNamesDistinct) {
  std::set<std::string_view> names;
  for (int k = 0; k < 8; ++k)
    names.insert(to_string(static_cast<ThirdPartyKind>(k)));
  EXPECT_EQ(names.size(), 8u);
}

}  // namespace
