// Table-driven coverage of the `hispar measure` / `hispar build`
// fail-fast flag matrix (core/cli_checks, extracted from the CLI in
// ISSUE 9 precisely so this matrix is testable without spawning the
// binary). Every documented rejection is one table row: the flag
// combination plus the substring its std::invalid_argument message
// must carry, "" meaning the combination is accepted.
#include "core/cli_checks.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/serialization.h"

namespace {

using hispar::core::BuildFlags;
using hispar::core::MeasureFlags;
using hispar::core::MeasurePlan;

MeasureFlags base_flags() {
  MeasureFlags flags;
  flags.shards = 4;
  flags.list_sites = 10;
  return flags;
}

struct MeasureCase {
  const char* name;
  MeasureFlags flags;
  // Substring the error message must carry; "" = must be accepted.
  const char* error;
};

std::vector<MeasureCase> measure_matrix() {
  std::vector<MeasureCase> cases;

  cases.push_back({"defaults accepted", base_flags(), ""});

  {
    auto f = base_flags();
    f.shards = 0;
    cases.push_back({"zero shards", f, "--shards must be >= 1"});
  }
  {
    auto f = base_flags();
    f.shards = 11;  // one more than the 10 sites
    cases.push_back({"shards exceed sites", f, "exceeds the site count"});
  }
  {
    auto f = base_flags();
    f.has_vantages = true;
    f.vantages = 0;
    cases.push_back({"zero vantages", f, "--vantages must be >= 1"});
  }
  {
    auto f = base_flags();
    f.has_vantages = true;
    f.vantages = 3;
    f.vantage_profile = "v0;v1";  // two profiles vs --vantages 3
    cases.push_back({"vantage count disagrees with profile list", f,
                     "disagrees with the --vantage-profile count"});
  }
  {
    auto f = base_flags();
    f.has_vantages = true;
    f.vantages = 2;
    f.vantage_profile = "v0;v1";
    cases.push_back({"vantage count agrees with profile list", f, ""});
  }
  {
    auto f = base_flags();
    f.consensus_out = "consensus.csv";
    cases.push_back({"consensus without vantages", f,
                     "--consensus-out needs --vantages"});
  }
  {
    auto f = base_flags();
    f.has_vantages = true;
    f.vantages = 2;
    f.consensus_out = "consensus.csv";
    cases.push_back({"consensus with vantages", f, ""});
  }
  {
    auto f = base_flags();
    f.has_session_flags = true;  // --session-len et al. without --sessions
    cases.push_back({"session flags without sessions", f,
                     "need --sessions"});
  }
  {
    auto f = base_flags();
    f.sessions = true;
    f.has_session_flags = true;
    cases.push_back({"session flags with sessions", f, ""});
  }
  {
    auto f = base_flags();
    f.sessions = true;
    f.has_vantages = true;
    f.vantages = 2;
    cases.push_back({"sessions combined with vantages", f,
                     "--sessions cannot be combined"});
  }
  {
    auto f = base_flags();
    f.sessions = true;
    f.vantage_profile = "v0:region=eu";
    cases.push_back({"sessions combined with vantage profile", f,
                     "--sessions cannot be combined"});
  }
  {
    auto f = base_flags();
    f.sessions = true;
    f.session_len = 0;
    cases.push_back({"zero session length", f,
                     "--session-len must be >= 1"});
  }
  {
    auto f = base_flags();
    f.session_len = 0;  // ignored without --sessions and session flags
    cases.push_back({"session length ignored when cold", f, ""});
  }

  return cases;
}

TEST(CliChecksTest, MeasureFlagMatrix) {
  for (const auto& row : measure_matrix()) {
    if (row.error[0] == '\0') {
      EXPECT_NO_THROW(hispar::core::validate_measure_flags(row.flags))
          << row.name;
      continue;
    }
    try {
      hispar::core::validate_measure_flags(row.flags);
      ADD_FAILURE() << row.name << ": accepted, expected '" << row.error
                    << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(row.error), std::string::npos)
          << row.name << ": got '" << e.what() << "'";
    }
  }
}

TEST(CliChecksTest, MeasurePlanResolvesModesAndProfiles) {
  auto f = base_flags();
  const MeasurePlan cold = hispar::core::validate_measure_flags(f);
  EXPECT_FALSE(cold.vantage_mode);
  EXPECT_FALSE(cold.session_mode);
  EXPECT_TRUE(cold.profiles.empty());

  f.has_vantages = true;
  f.vantages = 3;
  const MeasurePlan vantage = hispar::core::validate_measure_flags(f);
  EXPECT_TRUE(vantage.vantage_mode);
  EXPECT_EQ(vantage.profiles.size(), 3u);

  auto p = base_flags();
  p.vantage_profile = "edge:region=eu;core:region=na";
  const MeasurePlan parsed = hispar::core::validate_measure_flags(p);
  EXPECT_TRUE(parsed.vantage_mode);
  ASSERT_EQ(parsed.profiles.size(), 2u);
  EXPECT_EQ(parsed.profiles[0].name, "edge");

  auto s = base_flags();
  s.sessions = true;
  EXPECT_TRUE(hispar::core::validate_measure_flags(s).session_mode);
}

struct BuildCase {
  const char* name;
  BuildFlags flags;
  const char* error;
};

TEST(CliChecksTest, BuildFlagMatrix) {
  const BuildCase rows[] = {
      {"defaults accepted", {1, 4, 10}, ""},
      {"zero weeks", {0, 4, 10}, "--weeks must be >= 1"},
      {"zero shards", {1, 0, 10}, "--shards must be >= 1"},
      {"shards exceed target sites", {1, 11, 10}, "exceeds the site count"},
  };
  for (const auto& row : rows) {
    if (row.error[0] == '\0') {
      EXPECT_NO_THROW(hispar::core::validate_build_flags(row.flags))
          << row.name;
      continue;
    }
    try {
      hispar::core::validate_build_flags(row.flags);
      ADD_FAILURE() << row.name << ": accepted, expected '" << row.error
                    << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(row.error), std::string::npos)
          << row.name << ": got '" << e.what() << "'";
    }
  }
}

// Bare --resume, conflicting --checkpoint/--resume, and a missing
// resume file — the checkpoint-path leg of the matrix
// (core::resolve_checkpoint_path).
TEST(CliChecksTest, CheckpointPathMatrix) {
  using hispar::core::resolve_checkpoint_path;

  EXPECT_EQ(resolve_checkpoint_path("measure", "", false, ""), "");
  EXPECT_EQ(resolve_checkpoint_path("measure", "ck.txt", false, ""), "ck.txt");

  try {
    resolve_checkpoint_path("measure", "", true, "");
    ADD_FAILURE() << "bare --resume accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--resume needs a checkpoint file"),
              std::string::npos);
  }

  EXPECT_THROW(resolve_checkpoint_path("measure", "a.txt", true, "b.txt"),
               std::invalid_argument);
  EXPECT_THROW(
      resolve_checkpoint_path("measure", "", true, "does-not-exist.ckpt"),
      std::invalid_argument);

  const std::string existing = ::testing::TempDir() + "cli_checks_resume.ckpt";
  std::ofstream(existing) << "hispar-checkpoint,v1,0\n";
  EXPECT_EQ(resolve_checkpoint_path("measure", "", true, existing), existing);
  EXPECT_EQ(resolve_checkpoint_path("measure", existing, true, existing),
            existing);
  std::remove(existing.c_str());
}

// Unwritable output paths fail before any campaign work starts.
TEST(CliChecksTest, UnwritableOutputFailsFast) {
  try {
    hispar::core::open_artifact("measure", "out",
                                "/nonexistent-dir/metrics.csv");
    ADD_FAILURE() << "unwritable path accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("measure: cannot write --out file"),
              std::string::npos);
    EXPECT_NE(what.find("/nonexistent-dir/metrics.csv"), std::string::npos);
  }

  const std::string ok_path = ::testing::TempDir() + "cli_checks_out.csv";
  auto out = hispar::core::open_artifact("measure", "out", ok_path);
  ASSERT_TRUE(out != nullptr);
  EXPECT_TRUE(out->good());
  out.reset();
  std::remove(ok_path.c_str());
}

}  // namespace
