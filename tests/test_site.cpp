#include "web/site.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cdn/provider.h"
#include "web/calibration.h"

namespace {

using namespace hispar::web;
using hispar::util::Rng;

class SiteTest : public ::testing::Test {
 protected:
  SiteTest()
      : pool_(ThirdPartyPool::standard(500, 7)),
        registry_(hispar::cdn::CdnRegistry::standard()) {}

  WebSite make_site(std::size_t rank, std::uint64_t seed = 77) {
    Rng rng(seed);
    Rng profile_rng = rng.fork("profile");
    SiteProfile profile = sample_site_profile(rank, profile_rng);
    return WebSite("site" + std::to_string(rank) + ".com", profile, pool_,
                   registry_, rng);
  }

  ThirdPartyPool pool_;
  hispar::cdn::CdnRegistry registry_;
};

TEST_F(SiteTest, PageGenerationIsDeterministic) {
  const WebSite site = make_site(50);
  const WebPage a = site.page(3);
  const WebPage b = site.page(3);
  ASSERT_EQ(a.objects.size(), b.objects.size());
  EXPECT_EQ(a.url.str(), b.url.str());
  EXPECT_DOUBLE_EQ(a.total_bytes(), b.total_bytes());
  EXPECT_EQ(a.hints.total(), b.hints.total());
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].url, b.objects[i].url);
    EXPECT_DOUBLE_EQ(a.objects[i].size_bytes, b.objects[i].size_bytes);
    EXPECT_EQ(a.objects[i].depth, b.objects[i].depth);
  }
}

TEST_F(SiteTest, LandingPageIsRootDocument) {
  const WebSite site = make_site(10);
  const WebPage landing = site.landing_page();
  EXPECT_TRUE(landing.is_landing);
  EXPECT_EQ(landing.page_index, 0u);
  EXPECT_EQ(landing.url.path, "/");
  EXPECT_EQ(landing.root().depth, 0);
  EXPECT_EQ(landing.root().parent_index, -1);
}

TEST_F(SiteTest, InternalPagesHaveDistinctPaths) {
  const WebSite site = make_site(10);
  std::set<std::string> paths;
  for (std::size_t page = 1; page <= 50; ++page)
    paths.insert(site.page_url(page).path);
  EXPECT_EQ(paths.size(), 50u);
}

TEST_F(SiteTest, DependencyGraphIsWellFormed) {
  const WebSite site = make_site(25);
  for (std::size_t index : {std::size_t{0}, std::size_t{5}}) {
    const WebPage page = site.page(index);
    for (std::size_t i = 1; i < page.objects.size(); ++i) {
      const WebObject& o = page.objects[i];
      ASSERT_GE(o.parent_index, 0);
      ASSERT_LT(static_cast<std::size_t>(o.parent_index), i);
      EXPECT_EQ(page.objects[static_cast<std::size_t>(o.parent_index)].depth,
                o.depth - 1)
          << "object " << i;
      EXPECT_GT(o.depth, 0);
    }
  }
}

TEST_F(SiteTest, ObjectInvariants) {
  const WebSite site = make_site(40);
  const WebPage page = site.page(2);
  EXPECT_GE(page.objects.size(), 5u);
  for (const WebObject& o : page.objects) {
    EXPECT_GT(o.size_bytes, 0.0);
    EXPECT_FALSE(o.host.empty());
    EXPECT_FALSE(o.url.empty());
    EXPECT_GE(o.request_rate, 0.0);
    if (o.via_cdn) EXPECT_GE(o.cdn_provider_id, 0);
  }
}

TEST_F(SiteTest, VisitRatesFollowZipfOverPages) {
  const WebSite site = make_site(5);
  EXPECT_GT(site.page_visit_rate(1), site.page_visit_rate(2));
  EXPECT_GT(site.page_visit_rate(2), site.page_visit_rate(20));
  EXPECT_GT(site.page_visit_rate(20), site.page_visit_rate(200));
  // The landing page out-draws any single internal page.
  EXPECT_GT(site.page_visit_rate(0), site.page_visit_rate(1));
}

TEST_F(SiteTest, VisitRatesSumToRoughlySiteRate) {
  const WebSite site = make_site(5);
  double total = site.page_visit_rate(0);
  const std::size_t n = std::min<std::size_t>(site.internal_page_count(),
                                              20000);
  for (std::size_t page = 1; page <= n; ++page)
    total += site.page_visit_rate(page);
  // The Zipf tail beyond the sampled pages holds the remainder.
  EXPECT_LE(total, site.profile().site_visit_rate * 1.05);
  EXPECT_GE(total, site.profile().site_visit_rate * 0.4);
}

TEST_F(SiteTest, RobotsDisallowedPagesGetPrivatePaths) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const WebSite site = make_site(100, seed);
    if (site.robots().disallowed_share() == 0.0) continue;
    for (std::size_t page = 1; page <= 200; ++page) {
      const bool allowed = site.robots().allows(page);
      const std::string path = site.page_url(page).path;
      EXPECT_EQ(path.rfind("/private/", 0) == 0, !allowed);
    }
    return;  // found one site with a restrictive policy
  }
  FAIL() << "no site with robots restrictions in 30 seeds";
}

TEST_F(SiteTest, LinksAreReproducibleAndInRange) {
  const WebSite site = make_site(15);
  const auto links1 = site.page_internal_links(4);
  const auto links2 = site.page_internal_links(4);
  EXPECT_EQ(links1, links2);
  const WebPage page = site.page(4);
  EXPECT_EQ(page.internal_links, links1);
  for (std::size_t target : links1) {
    EXPECT_GE(target, 1u);
    EXPECT_LE(target, site.internal_page_count());
    EXPECT_NE(target, 4u);
  }
}

TEST_F(SiteTest, TrackerFreeSitesHaveNoTrackingObjects) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const WebSite site = make_site(200, seed);
    if (!site.profile().tracker_free) continue;
    const WebPage landing = site.landing_page();
    EXPECT_EQ(landing.tracking_requests(), 0u);
    EXPECT_EQ(landing.ad_slots, 0);
    return;
  }
  FAIL() << "no tracker-free site in 40 seeds";
}

TEST_F(SiteTest, HttpLandingPageMakesAllObjectsCleartext) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const WebSite site = make_site(300, seed);
    if (!site.profile().landing_is_http) continue;
    const WebPage landing = site.landing_page();
    EXPECT_EQ(landing.url.scheme, hispar::util::Scheme::kHttp);
    EXPECT_FALSE(landing.has_mixed_content());  // HTTP pages can't be mixed
    return;
  }
  FAIL() << "no HTTP landing page in 200 seeds";
}

TEST_F(SiteTest, PageBeyondUniverseThrows) {
  const WebSite site = make_site(10);
  EXPECT_THROW(site.page(site.internal_page_count() + 1), std::out_of_range);
}

TEST_F(SiteTest, MixFractionsSumToOne) {
  const WebSite site = make_site(33);
  for (std::size_t index : {std::size_t{0}, std::size_t{7}}) {
    const auto mix = site.page(index).mix_fractions();
    double total = 0.0;
    for (double f : mix) total += f;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(SiteTest, EnglishClassificationIsStable) {
  const WebSite site = make_site(60);
  for (std::size_t page = 1; page <= 30; ++page) {
    EXPECT_EQ(site.page_is_english(page), site.page_is_english(page));
    EXPECT_EQ(site.page(page).english, site.page_is_english(page));
  }
}

TEST(SiteProfileTest, RankDependentDraws) {
  Rng rng(1);
  const SiteProfile top = sample_site_profile(1, rng);
  EXPECT_GT(top.site_visit_rate, 0.0);
  Rng rng2(1);
  const SiteProfile same = sample_site_profile(1, rng2);
  EXPECT_DOUBLE_EQ(top.internal_bytes_median, same.internal_bytes_median);
  // Site traffic decays with rank.
  Rng rng3(1);
  const SiteProfile deep = sample_site_profile(900, rng3);
  EXPECT_GT(top.site_visit_rate, deep.site_visit_rate);
}

}  // namespace
