#include "browser/critical_path.h"

#include <gtest/gtest.h>

#include "web/generator.h"

namespace {

using namespace hispar;

class CriticalPathTest : public ::testing::Test {
 protected:
  CriticalPathTest()
      : web_({120, 19, 150, false}),
        latency_(),
        cdn_(web_.cdn_registry(), latency_),
        resolver_({}, latency_),
        loader_({&latency_, &web_.cdn_registry(), &cdn_, &resolver_,
                 net::Region::kNorthAmerica}) {}

  browser::LoadResult load(const web::WebPage& page, std::uint64_t seed = 1) {
    return loader_.load(page, util::Rng(seed));
  }

  web::SyntheticWeb web_;
  net::LatencyModel latency_;
  cdn::CdnHierarchy cdn_;
  net::CachingResolver resolver_;
  browser::PageLoader loader_;
};

TEST_F(CriticalPathTest, PathStartsAtRootAndEndsAtOnLoad) {
  const auto page = web_.site_by_rank(4).page(1);
  const auto result = load(page);
  const auto path = browser::critical_path(page, result);
  ASSERT_FALSE(path.object_indices.empty());
  EXPECT_EQ(path.object_indices.front(), 0);
  EXPECT_NEAR(path.length_ms, result.on_load_ms, 1e-6);
  EXPECT_EQ(path.hops, static_cast<int>(path.object_indices.size()) - 1);
  EXPECT_GT(path.fetch_ms, 0.0);
}

TEST_F(CriticalPathTest, PathFollowsParentEdges) {
  const auto page = web_.site_by_rank(4).page(1);
  const auto result = load(page);
  const auto path = browser::critical_path(page, result);
  for (std::size_t i = 1; i < path.object_indices.size(); ++i) {
    const auto child = static_cast<std::size_t>(path.object_indices[i]);
    EXPECT_EQ(page.objects[child].parent_index, path.object_indices[i - 1]);
  }
}

TEST_F(CriticalPathTest, MismatchedResultRejected) {
  const auto page_a = web_.site_by_rank(4).page(1);
  const auto page_b = web_.site_by_rank(4).page(2);
  const auto result = load(page_a);
  EXPECT_THROW(browser::critical_path(page_b, result),
               std::invalid_argument);
}

TEST_F(CriticalPathTest, PushFlattensDependencies) {
  const auto page = web_.site_by_rank(4).page(0);
  const auto pushed = browser::push_all_objects(page);
  ASSERT_EQ(pushed.objects.size(), page.objects.size());
  for (std::size_t i = 1; i < pushed.objects.size(); ++i) {
    EXPECT_EQ(pushed.objects[i].depth, 1);
    EXPECT_EQ(pushed.objects[i].parent_index, 0);
  }
  EXPECT_EQ(pushed.objects[0].depth, 0);
  // Sizes and hosts untouched.
  EXPECT_DOUBLE_EQ(pushed.total_bytes(), page.total_bytes());
}

TEST_F(CriticalPathTest, PushShortensDeepPageLoads) {
  // Flattening dependencies must never slow a page down and should help
  // pages with deep chains (§5.4's premise).
  double baseline_total = 0.0, pushed_total = 0.0;
  for (std::size_t rank : {2ul, 5ul, 9ul, 14ul}) {
    const auto page = web_.site_by_rank(rank).page(0);
    const auto baseline = load(page, 3);
    const auto pushed = load(browser::push_all_objects(page), 3);
    baseline_total += baseline.on_load_ms;
    pushed_total += pushed.on_load_ms;
  }
  EXPECT_LT(pushed_total, baseline_total);
}

TEST_F(CriticalPathTest, AddedHintsAreVisible) {
  const auto page = web_.site_by_rank(4).page(1);
  const auto hinted = browser::with_added_hints(page, 5, 3);
  EXPECT_EQ(hinted.hints.dns_prefetch, page.hints.dns_prefetch + 5);
  EXPECT_EQ(hinted.hints.preconnect, page.hints.preconnect + 3);
}

TEST_F(CriticalPathTest, AddedHintsDoNotSlowTheLoad) {
  const auto page = web_.site_by_rank(6).page(1);
  const auto baseline = load(page, 9);
  const auto hinted = load(browser::with_added_hints(page, 10, 6), 9);
  // DNS time can only shrink when more hosts are prefetched.
  EXPECT_LE(hinted.dns_time_ms, baseline.dns_time_ms + 1e-9);
}

}  // namespace
