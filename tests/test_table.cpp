#include "util/table.h"

#include <gtest/gtest.h>

namespace {

using hispar::util::TextTable;

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"a", "b"});
  table.add_row({"longer-cell", "x"});
  const std::string out = table.to_string();
  // Every rendered line has the same width.
  std::size_t first_line_len = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const auto eol = out.find('\n', pos);
    if (eol == std::string::npos) break;
    EXPECT_EQ(eol - pos, first_line_len);
    pos = eol + 1;
  }
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
  TextTable table({"name", "note"});
  table.add_row({"with,comma", "with\"quote"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TextTable, CsvPlainValuesUnquoted) {
  TextTable table({"a"});
  table.add_row({"plain"});
  EXPECT_EQ(table.to_csv(), "a\nplain\n");
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, PctFormatsFractions) {
  EXPECT_EQ(TextTable::pct(0.345), "34.5%");
  EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

}  // namespace
