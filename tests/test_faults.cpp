#include "net/faults.h"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>

#include "browser/loader.h"
#include "web/generator.h"

namespace {

using namespace hispar;
using browser::LoadOptions;
using browser::LoadResult;
using browser::LoadStatus;
using browser::PageLoader;
using net::FaultInjector;
using net::FaultKind;
using net::FaultProfile;

// --- FaultProfile ---

TEST(FaultProfile, DefaultIsDisabled) {
  const FaultProfile profile;
  EXPECT_FALSE(profile.enabled());
  EXPECT_DOUBLE_EQ(profile.total_rate(), 0.0);
  EXPECT_EQ(profile.str(), "none");
}

TEST(FaultProfile, UniformSetsEveryRate) {
  const FaultProfile profile = FaultProfile::uniform(0.03);
  EXPECT_TRUE(profile.enabled());
  EXPECT_DOUBLE_EQ(profile.dns_servfail, 0.03);
  EXPECT_DOUBLE_EQ(profile.dns_timeout, 0.03);
  EXPECT_DOUBLE_EQ(profile.connection_reset, 0.03);
  EXPECT_DOUBLE_EQ(profile.tls_failure, 0.03);
  EXPECT_DOUBLE_EQ(profile.http_5xx, 0.03);
  EXPECT_DOUBLE_EQ(profile.stall, 0.03);
  EXPECT_DOUBLE_EQ(profile.truncation, 0.03);
  EXPECT_DOUBLE_EQ(profile.total_rate(), 7 * 0.03);
}

TEST(FaultProfile, ParseForms) {
  EXPECT_FALSE(FaultProfile::parse("none").enabled());
  EXPECT_DOUBLE_EQ(FaultProfile::parse("uniform:0.05").stall, 0.05);
  const FaultProfile profile =
      FaultProfile::parse("dns_servfail=0.1,http_5xx=0.02");
  EXPECT_DOUBLE_EQ(profile.dns_servfail, 0.1);
  EXPECT_DOUBLE_EQ(profile.http_5xx, 0.02);
  EXPECT_DOUBLE_EQ(profile.connection_reset, 0.0);
}

TEST(FaultProfile, StrRoundTrips) {
  const FaultProfile profile =
      FaultProfile::parse("dns_timeout=0.015,truncation=0.3");
  const FaultProfile reparsed = FaultProfile::parse(profile.str());
  EXPECT_DOUBLE_EQ(reparsed.dns_timeout, profile.dns_timeout);
  EXPECT_DOUBLE_EQ(reparsed.truncation, profile.truncation);
  EXPECT_EQ(reparsed.str(), profile.str());
  EXPECT_EQ(FaultProfile::uniform(0.0).str(), "none");
}

TEST(FaultProfile, ParseRejectsGarbage) {
  EXPECT_THROW(FaultProfile::parse("bogus_key=0.1"), std::invalid_argument);
  EXPECT_THROW(FaultProfile::parse("dns_servfail=1.5"),
               std::invalid_argument);
  EXPECT_THROW(FaultProfile::parse("dns_servfail=-0.1"),
               std::invalid_argument);
  EXPECT_THROW(FaultProfile::parse("dns_servfail=abc"),
               std::invalid_argument);
  EXPECT_THROW(FaultProfile::parse("uniform:2"), std::invalid_argument);
  EXPECT_THROW(FaultProfile::parse(""), std::invalid_argument);
}

// --- FaultInjector ---

TEST(FaultInjector, ZeroProfileNeverFaults) {
  FaultInjector injector(FaultProfile{}, util::Rng(7));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(injector.dns_fault(), FaultKind::kNone);
    EXPECT_EQ(injector.connect_fault(i % 2 == 0), FaultKind::kNone);
    EXPECT_EQ(injector.response_fault(), FaultKind::kNone);
    EXPECT_EQ(injector.transfer_fault(), FaultKind::kNone);
  }
}

TEST(FaultInjector, SameStreamSameDecisions) {
  const FaultProfile profile = FaultProfile::uniform(0.2);
  FaultInjector a(profile, util::Rng(99).fork("faults"));
  FaultInjector b(profile, util::Rng(99).fork("faults"));
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.dns_fault(), b.dns_fault());
    EXPECT_EQ(a.connect_fault(true), b.connect_fault(true));
    EXPECT_EQ(a.response_fault(), b.response_fault());
    EXPECT_EQ(a.transfer_fault(), b.transfer_fault());
  }
}

TEST(FaultInjector, EmpiricalRatesMatchProfile) {
  FaultProfile profile;
  profile.dns_servfail = 0.25;
  profile.http_5xx = 0.1;
  FaultInjector injector(profile, util::Rng(5));
  int servfails = 0, fivexx = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    servfails += injector.dns_fault() == FaultKind::kDnsServfail;
    fivexx += injector.response_fault() == FaultKind::kHttp5xx;
  }
  EXPECT_NEAR(servfails / static_cast<double>(trials), 0.25, 0.02);
  EXPECT_NEAR(fivexx / static_cast<double>(trials), 0.1, 0.02);
}

TEST(FaultInjector, TruncatedFractionInRange) {
  FaultInjector injector(FaultProfile::uniform(0.5), util::Rng(11));
  for (int i = 0; i < 1000; ++i) {
    const double fraction = injector.truncated_fraction();
    EXPECT_GE(fraction, 0.05);
    EXPECT_LT(fraction, 0.95);
  }
}

// --- Loader under faults ---

class FaultLoaderTest : public ::testing::Test {
 protected:
  FaultLoaderTest()
      : web_({120, 11, 200, false}),
        latency_(),
        cdn_(web_.cdn_registry(), latency_),
        resolver_({"local", 1, 6.0, net::Region::kNorthAmerica, 1.0},
                  latency_),
        loader_({&latency_, &web_.cdn_registry(), &cdn_, &resolver_,
                 net::Region::kNorthAmerica}) {}

  // Fresh substrate per load so comparisons are state-for-state.
  LoadResult load_fresh(const web::WebPage& page, std::uint64_t seed,
                        const FaultProfile* profile = nullptr,
                        LoadOptions options = {}) {
    cdn::CdnHierarchy cdn(web_.cdn_registry(), latency_);
    net::CachingResolver resolver(
        {"local", 1, 6.0, net::Region::kNorthAmerica, 1.0}, latency_);
    PageLoader loader({&latency_, &web_.cdn_registry(), &cdn, &resolver,
                       net::Region::kNorthAmerica});
    std::optional<FaultInjector> injector;
    if (profile != nullptr) {
      injector.emplace(*profile, util::Rng(seed).fork("faults"));
      options.faults = &*injector;
    }
    return loader.load(page, util::Rng(seed), options);
  }

  web::SyntheticWeb web_;
  net::LatencyModel latency_;
  cdn::CdnHierarchy cdn_;
  net::CachingResolver resolver_;
  PageLoader loader_;
};

TEST_F(FaultLoaderTest, ZeroProfileInjectorIsANoOp) {
  // Wiring an injector whose rates are all zero must not perturb a
  // single simulated quantity: the fault machinery may only consume
  // randomness from its own stream.
  const auto page = web_.site_by_rank(5).page(1);
  const FaultProfile zero;
  const auto plain = load_fresh(page, 42);
  const auto injected = load_fresh(page, 42, &zero);
  EXPECT_EQ(injected.status, LoadStatus::kOk);
  EXPECT_EQ(injected.failed_objects, 0);
  EXPECT_EQ(injected.object_retries, 0);
  EXPECT_DOUBLE_EQ(plain.plt_ms, injected.plt_ms);
  EXPECT_DOUBLE_EQ(plain.on_load_ms, injected.on_load_ms);
  EXPECT_DOUBLE_EQ(plain.speed_index_ms, injected.speed_index_ms);
  EXPECT_EQ(plain.handshakes, injected.handshakes);
  EXPECT_DOUBLE_EQ(plain.handshake_time_ms, injected.handshake_time_ms);
  EXPECT_DOUBLE_EQ(plain.dns_time_ms, injected.dns_time_ms);
  ASSERT_EQ(plain.har.entries.size(), injected.har.entries.size());
  for (std::size_t i = 0; i < plain.har.entries.size(); ++i) {
    EXPECT_EQ(plain.har.entries[i].body_size,
              injected.har.entries[i].body_size);
    EXPECT_EQ(plain.har.entries[i].timings.wait,
              injected.har.entries[i].timings.wait);
    EXPECT_TRUE(injected.har.entries[i].error.empty());
  }
}

TEST_F(FaultLoaderTest, CertainDnsFailureFailsTheRoot) {
  FaultProfile profile;
  profile.dns_servfail = 1.0;
  const auto page = web_.site_by_rank(3).page(0);
  const auto result = load_fresh(page, 1, &profile);
  EXPECT_EQ(result.status, LoadStatus::kFailed);
  EXPECT_EQ(result.root_failure, FaultKind::kDnsServfail);
  ASSERT_EQ(result.har.entries.size(), 1u);  // partial HAR: root only
  EXPECT_EQ(result.har.entries[0].status, 0);
  EXPECT_EQ(result.har.entries[0].error, to_string(FaultKind::kDnsServfail));
  EXPECT_EQ(result.har.entries[0].body_size, 0.0);
  EXPECT_GE(result.failed_objects, 1);
  // All allowed attempts were burned before giving up.
  LoadOptions options;
  EXPECT_EQ(result.object_retries, options.max_object_retries);
}

TEST_F(FaultLoaderTest, CertainHttp5xxMarksEntry503) {
  FaultProfile profile;
  profile.http_5xx = 1.0;
  const auto page = web_.site_by_rank(3).page(0);
  const auto result = load_fresh(page, 1, &profile);
  EXPECT_EQ(result.status, LoadStatus::kFailed);
  EXPECT_EQ(result.root_failure, FaultKind::kHttp5xx);
  ASSERT_EQ(result.har.entries.size(), 1u);
  EXPECT_EQ(result.har.entries[0].status, 503);
}

TEST_F(FaultLoaderTest, TruncationKeepsPartialBytes) {
  FaultProfile profile;
  profile.truncation = 1.0;
  const auto page = web_.site_by_rank(3).page(0);
  const auto result = load_fresh(page, 1, &profile);
  EXPECT_EQ(result.status, LoadStatus::kFailed);
  EXPECT_EQ(result.root_failure, FaultKind::kTruncatedTransfer);
  ASSERT_EQ(result.har.entries.size(), 1u);
  EXPECT_GT(result.har.entries[0].body_size, 0.0);
  EXPECT_LT(result.har.entries[0].body_size,
            static_cast<double>(page.objects[0].size_bytes));
}

TEST_F(FaultLoaderTest, TinyWatchdogDegradesButKeepsRoot) {
  // A zero-rate injector with a tiny page budget: the root (ready at
  // t=0) loads, every later object is cut off by the watchdog.
  const auto page = web_.site_by_rank(5).page(1);
  ASSERT_GT(page.objects.size(), 1u);
  const FaultProfile zero;
  LoadOptions options;
  options.page_timeout_ms = 1.0;
  const auto result = load_fresh(page, 1, &zero, options);
  EXPECT_EQ(result.status, LoadStatus::kDegraded);
  EXPECT_TRUE(result.watchdog_abort);
  EXPECT_GE(result.failed_objects, 1);
  bool saw_abort_entry = false;
  for (const auto& entry : result.har.entries)
    saw_abort_entry = saw_abort_entry || entry.error == "page-watchdog-abort";
  EXPECT_TRUE(saw_abort_entry);
}

TEST_F(FaultLoaderTest, ModerateFaultsDegradeSomeLoadDeterministically) {
  const FaultProfile profile = FaultProfile::uniform(0.05);
  for (std::size_t rank = 1; rank <= 40; ++rank) {
    const auto page = web_.site_by_rank(rank).page(1);
    const auto result = load_fresh(page, rank, &profile);
    if (result.status != LoadStatus::kDegraded) continue;
    EXPECT_GE(result.failed_objects, 1);
    int error_entries = 0;
    for (const auto& entry : result.har.entries)
      error_entries += !entry.error.empty();
    EXPECT_EQ(error_entries, result.failed_objects);
    // Identical key, identical outcome.
    const auto replay = load_fresh(page, rank, &profile);
    EXPECT_EQ(replay.status, result.status);
    EXPECT_EQ(replay.failed_objects, result.failed_objects);
    EXPECT_EQ(replay.object_retries, result.object_retries);
    EXPECT_DOUBLE_EQ(replay.plt_ms, result.plt_ms);
    return;
  }
  FAIL() << "no degraded load found across 40 pages at 5% fault rate";
}

TEST_F(FaultLoaderTest, RetriesRecoverTransientFaults) {
  // With generous retries and mid-range rates, some load must record
  // object_retries > 0 while still ending kOk.
  const FaultProfile profile = FaultProfile::uniform(0.04);
  LoadOptions options;
  options.max_object_retries = 6;
  for (std::size_t rank = 1; rank <= 60; ++rank) {
    const auto page = web_.site_by_rank(rank).page(0);
    const auto result = load_fresh(page, rank * 7, &profile, options);
    if (result.status == LoadStatus::kOk && result.object_retries > 0) {
      EXPECT_EQ(result.failed_objects, 0);
      for (const auto& entry : result.har.entries)
        EXPECT_TRUE(entry.error.empty());
      return;
    }
  }
  FAIL() << "no retried-yet-clean load found across 60 pages";
}

}  // namespace
