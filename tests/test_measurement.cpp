#include "core/measurement.h"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace hispar;
using core::CampaignConfig;
using core::MeasurementCampaign;
using core::PageMetrics;
using core::SiteObservation;

class MeasurementTest : public ::testing::Test {
 protected:
  MeasurementTest()
      : web_({150, 37, 300, false}), toplists_(web_), engine_(web_) {}

  core::HisparList build_list(std::size_t sites) {
    core::HisparBuilder builder(web_, toplists_, engine_);
    core::HisparConfig config;
    config.target_sites = sites;
    config.urls_per_site = 8;  // small sets keep the test fast
    config.min_internal_results = 4;
    return builder.build(config, 0);
  }

  web::SyntheticWeb web_;
  toplist::TopListFactory toplists_;
  search::SearchEngine engine_;
};

TEST_F(MeasurementTest, CampaignCoversEverySite) {
  const auto list = build_list(12);
  CampaignConfig config;
  config.landing_loads = 3;
  MeasurementCampaign campaign(web_, config);
  const auto sites = campaign.run(list);
  ASSERT_EQ(sites.size(), list.sets.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_EQ(sites[i].domain, list.sets[i].domain);
    EXPECT_EQ(sites[i].bootstrap_rank, list.sets[i].bootstrap_rank);
    EXPECT_EQ(sites[i].internals.size(), list.sets[i].internal_count());
  }
}

TEST_F(MeasurementTest, MetricsAreSane) {
  const auto list = build_list(8);
  CampaignConfig config;
  config.landing_loads = 3;
  MeasurementCampaign campaign(web_, config);
  const auto sites = campaign.run(list);
  for (const SiteObservation& site : sites) {
    const auto check = [](const PageMetrics& m) {
      EXPECT_GT(m.bytes, 0.0);
      EXPECT_GT(m.objects, 0.0);
      EXPECT_GT(m.plt_ms, 0.0);
      EXPECT_GE(m.on_load_ms, 0.0);
      EXPECT_GT(m.speed_index_ms, 0.0);
      EXPECT_GE(m.unique_domains, 1.0);
      EXPECT_GE(m.handshakes, 1.0);
      EXPECT_GE(m.noncacheable_objects, 0.0);
      EXPECT_LE(m.noncacheable_objects, m.objects);
      EXPECT_GE(m.cdn_bytes_fraction, 0.0);
      EXPECT_LE(m.cdn_bytes_fraction, 1.0);
      EXPECT_GE(m.cacheable_bytes_fraction, 0.0);
      EXPECT_LE(m.cacheable_bytes_fraction, 1.0);
      double mix_total = 0.0;
      for (double f : m.mix_fractions) mix_total += f;
      EXPECT_NEAR(mix_total, 1.0, 1e-6);
      double depth_total = 0.0;
      for (double c : m.depth_counts) depth_total += c;
      EXPECT_NEAR(depth_total, m.objects, 0.5);
      EXPECT_FALSE(m.wait_samples_ms.empty());
    };
    check(site.landing);
    for (const auto& metrics : site.internals) check(metrics);
  }
}

TEST_F(MeasurementTest, WaitSamplesAreCapped) {
  const auto list = build_list(4);
  CampaignConfig config;
  config.landing_loads = 1;
  config.wait_sample_cap = 10;
  MeasurementCampaign campaign(web_, config);
  const auto sites = campaign.run(list);
  for (const auto& site : sites)
    for (const auto& metrics : site.internals)
      EXPECT_LE(metrics.wait_samples_ms.size(), 10u);
}

TEST_F(MeasurementTest, InternalMedianMatchesManualComputation) {
  SiteObservation site;
  for (double value : {10.0, 30.0, 20.0}) {
    PageMetrics m;
    m.bytes = value;
    site.internals.push_back(m);
  }
  EXPECT_DOUBLE_EQ(
      site.internal_median([](const PageMetrics& m) { return m.bytes; }),
      20.0);
}

TEST_F(MeasurementTest, InternalMedianThrowsWithoutPages) {
  SiteObservation site;
  EXPECT_THROW(
      site.internal_median([](const PageMetrics& m) { return m.bytes; }),
      std::logic_error);
}

TEST_F(MeasurementTest, ThirdPartyUnionAcrossInternals) {
  SiteObservation site;
  PageMetrics a, b;
  a.third_parties = {"x.com", "y.com"};
  b.third_parties = {"y.com", "z.com"};
  site.internals = {a, b};
  const auto all = site.internal_third_parties();
  EXPECT_EQ(all.size(), 3u);
  EXPECT_TRUE(all.count("z.com"));
}

TEST_F(MeasurementTest, MeasureSiteHonorsExplicitPages) {
  CampaignConfig config;
  config.landing_loads = 2;
  MeasurementCampaign campaign(web_, config);
  const auto& site = web_.site_by_rank(5);
  const auto observation = campaign.measure_site(site, {1, 2, 3, 4});
  EXPECT_EQ(observation.internals.size(), 4u);
  EXPECT_EQ(observation.domain, site.domain());
}

// The campaign must refuse a list whose domain churned out of the web
// with the same descriptive std::logic_error in *every* phase; the
// internal-page and aggregation loops used to dereference a null site.
void expect_unknown_domain_throw(web::SyntheticWeb& web,
                                 const core::HisparList& list,
                                 int landing_loads) {
  CampaignConfig config;
  config.landing_loads = landing_loads;
  MeasurementCampaign campaign(web, config);
  try {
    campaign.run(list);
    FAIL() << "expected campaign: unknown domain";
  } catch (const std::logic_error& error) {
    EXPECT_NE(std::string(error.what()).find("unknown domain"),
              std::string::npos)
        << error.what();
  }
}

TEST_F(MeasurementTest, UnknownDomainThrowsInLandingPath) {
  auto list = build_list(6);
  list.sets[2].domain = "churned-away.example";
  expect_unknown_domain_throw(web_, list, /*landing_loads=*/1);
}

TEST_F(MeasurementTest, UnknownDomainThrowsInInternalPath) {
  // Zero landing loads: the landing loop never touches the domain, so
  // the internal-page loop is the first to see it. A single-set list
  // keeps the other phases (and other sites) out of the picture.
  auto list = build_list(6);
  core::HisparList one;
  one.sets.push_back(list.sets[2]);
  one.sets[0].domain = "churned-away.example";
  ASSERT_GT(one.sets[0].page_indices.size(), 1u);
  expect_unknown_domain_throw(web_, one, /*landing_loads=*/0);
}

TEST_F(MeasurementTest, UnknownDomainThrowsInAggregationPath) {
  // Zero landing loads *and* no internal pages: only the final
  // aggregation loop sees the domain.
  auto list = build_list(6);
  core::HisparList one;
  one.sets.push_back(list.sets[2]);
  one.sets[0].domain = "churned-away.example";
  one.sets[0].urls.resize(1);
  one.sets[0].page_indices.resize(1);
  expect_unknown_domain_throw(web_, one, /*landing_loads=*/0);
}

TEST_F(MeasurementTest, MedianMetricsTakesMajorityVoteOnBools) {
  std::vector<PageMetrics> loads(3);
  loads[0].header_bidding = true;
  loads[1].header_bidding = true;
  loads[2].header_bidding = false;  // stochastic auction missed once
  loads[0].is_http = true;          // e.g. one load before the redirect
  const PageMetrics median = MeasurementCampaign::median_metrics(loads);
  EXPECT_TRUE(median.header_bidding);  // 2 of 3 loads saw bidding
  EXPECT_FALSE(median.is_http);        // 1 of 3 is not a majority
}

TEST_F(MeasurementTest, MedianMetricsFlagsMixedContentOnAnyLoad) {
  std::vector<PageMetrics> loads(4);
  loads[3].mixed_content = true;
  const PageMetrics median = MeasurementCampaign::median_metrics(loads);
  EXPECT_TRUE(median.mixed_content);
  EXPECT_FALSE(median.header_bidding);
  EXPECT_FALSE(median.is_http);
}

TEST_F(MeasurementTest, CampaignIsDeterministicForSameSeed) {
  const auto list = build_list(5);
  CampaignConfig config;
  config.landing_loads = 2;
  config.seed = 99;
  MeasurementCampaign a(web_, config);
  MeasurementCampaign b(web_, config);
  const auto sa = a.run(list);
  const auto sb = b.run(list);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa[i].landing.plt_ms, sb[i].landing.plt_ms);
    EXPECT_DOUBLE_EQ(sa[i].landing.bytes, sb[i].landing.bytes);
  }
}

TEST_F(MeasurementTest, AblationSwitchesChangeBehavior) {
  const auto list = build_list(5);
  CampaignConfig base;
  base.landing_loads = 2;
  CampaignConfig no_reuse = base;
  no_reuse.load_options.reuse_connections = false;
  MeasurementCampaign campaign_a(web_, base);
  MeasurementCampaign campaign_b(web_, no_reuse);
  const auto with = campaign_a.run(list);
  const auto without = campaign_b.run(list);
  double handshakes_with = 0.0, handshakes_without = 0.0;
  for (std::size_t i = 0; i < with.size(); ++i) {
    handshakes_with += with[i].landing.handshakes;
    handshakes_without += without[i].landing.handshakes;
  }
  EXPECT_GT(handshakes_without, handshakes_with);
}

TEST_F(MeasurementTest, TrackerDetectionAgreesWithGroundTruthDirection) {
  // The EasyList-style matcher must broadly find the tracking objects
  // the generator planted (detection is URL-pattern-based, so exact
  // equality is not expected).
  const auto list = build_list(10);
  CampaignConfig config;
  config.landing_loads = 1;
  MeasurementCampaign campaign(web_, config);
  const auto sites = campaign.run(list);
  double detected = 0.0, truth = 0.0;
  for (const auto& observation : sites) {
    const auto* site = web_.find_site(observation.domain);
    detected += observation.landing.tracking_requests;
    truth += static_cast<double>(site->page(0).tracking_requests());
  }
  if (truth == 0.0) GTEST_SKIP() << "no trackers in sample";
  EXPECT_GT(detected, truth * 0.6);
  EXPECT_LT(detected, truth * 1.7);
}

}  // namespace
