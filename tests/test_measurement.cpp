#include "core/measurement.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace hispar;
using core::CampaignConfig;
using core::MeasurementCampaign;
using core::PageMetrics;
using core::SiteObservation;

class MeasurementTest : public ::testing::Test {
 protected:
  MeasurementTest()
      : web_({150, 37, 300, false}), toplists_(web_), engine_(web_) {}

  core::HisparList build_list(std::size_t sites) {
    core::HisparBuilder builder(web_, toplists_, engine_);
    core::HisparConfig config;
    config.target_sites = sites;
    config.urls_per_site = 8;  // small sets keep the test fast
    config.min_internal_results = 4;
    return builder.build(config, 0);
  }

  web::SyntheticWeb web_;
  toplist::TopListFactory toplists_;
  search::SearchEngine engine_;
};

TEST_F(MeasurementTest, CampaignCoversEverySite) {
  const auto list = build_list(12);
  CampaignConfig config;
  config.landing_loads = 3;
  MeasurementCampaign campaign(web_, config);
  const auto sites = campaign.run(list);
  ASSERT_EQ(sites.size(), list.sets.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_EQ(sites[i].domain, list.sets[i].domain);
    EXPECT_EQ(sites[i].bootstrap_rank, list.sets[i].bootstrap_rank);
    EXPECT_EQ(sites[i].internals.size(), list.sets[i].internal_count());
  }
}

TEST_F(MeasurementTest, MetricsAreSane) {
  const auto list = build_list(8);
  CampaignConfig config;
  config.landing_loads = 3;
  MeasurementCampaign campaign(web_, config);
  const auto sites = campaign.run(list);
  for (const SiteObservation& site : sites) {
    const auto check = [](const PageMetrics& m) {
      EXPECT_GT(m.bytes, 0.0);
      EXPECT_GT(m.objects, 0.0);
      EXPECT_GT(m.plt_ms, 0.0);
      EXPECT_GE(m.on_load_ms, 0.0);
      EXPECT_GT(m.speed_index_ms, 0.0);
      EXPECT_GE(m.unique_domains, 1.0);
      EXPECT_GE(m.handshakes, 1.0);
      EXPECT_GE(m.noncacheable_objects, 0.0);
      EXPECT_LE(m.noncacheable_objects, m.objects);
      EXPECT_GE(m.cdn_bytes_fraction, 0.0);
      EXPECT_LE(m.cdn_bytes_fraction, 1.0);
      EXPECT_GE(m.cacheable_bytes_fraction, 0.0);
      EXPECT_LE(m.cacheable_bytes_fraction, 1.0);
      double mix_total = 0.0;
      for (double f : m.mix_fractions) mix_total += f;
      EXPECT_NEAR(mix_total, 1.0, 1e-6);
      double depth_total = 0.0;
      for (double c : m.depth_counts) depth_total += c;
      EXPECT_NEAR(depth_total, m.objects, 0.5);
      EXPECT_FALSE(m.wait_samples_ms.empty());
    };
    check(site.landing);
    for (const auto& metrics : site.internals) check(metrics);
  }
}

TEST_F(MeasurementTest, WaitSamplesAreCapped) {
  const auto list = build_list(4);
  CampaignConfig config;
  config.landing_loads = 1;
  config.wait_sample_cap = 10;
  MeasurementCampaign campaign(web_, config);
  const auto sites = campaign.run(list);
  for (const auto& site : sites)
    for (const auto& metrics : site.internals)
      EXPECT_LE(metrics.wait_samples_ms.size(), 10u);
}

TEST_F(MeasurementTest, InternalMedianMatchesManualComputation) {
  SiteObservation site;
  for (double value : {10.0, 30.0, 20.0}) {
    PageMetrics m;
    m.bytes = value;
    site.internals.push_back(m);
  }
  EXPECT_DOUBLE_EQ(
      site.internal_median([](const PageMetrics& m) { return m.bytes; }),
      20.0);
}

TEST_F(MeasurementTest, InternalMedianThrowsWithoutPages) {
  SiteObservation site;
  EXPECT_THROW(
      site.internal_median([](const PageMetrics& m) { return m.bytes; }),
      std::logic_error);
}

TEST_F(MeasurementTest, ThirdPartyUnionAcrossInternals) {
  SiteObservation site;
  PageMetrics a, b;
  a.third_parties = {"x.com", "y.com"};
  b.third_parties = {"y.com", "z.com"};
  site.internals = {a, b};
  const auto all = site.internal_third_parties();
  EXPECT_EQ(all.size(), 3u);
  EXPECT_TRUE(all.count("z.com"));
}

TEST_F(MeasurementTest, MeasureSiteHonorsExplicitPages) {
  CampaignConfig config;
  config.landing_loads = 2;
  MeasurementCampaign campaign(web_, config);
  const auto& site = web_.site_by_rank(5);
  const auto observation = campaign.measure_site(site, {1, 2, 3, 4});
  EXPECT_EQ(observation.internals.size(), 4u);
  EXPECT_EQ(observation.domain, site.domain());
}

// The campaign must refuse a list whose domain churned out of the web
// with the same descriptive std::logic_error in *every* phase; the
// internal-page and aggregation loops used to dereference a null site.
void expect_unknown_domain_throw(web::SyntheticWeb& web,
                                 const core::HisparList& list,
                                 int landing_loads) {
  CampaignConfig config;
  config.landing_loads = landing_loads;
  MeasurementCampaign campaign(web, config);
  try {
    campaign.run(list);
    FAIL() << "expected campaign: unknown domain";
  } catch (const std::logic_error& error) {
    EXPECT_NE(std::string(error.what()).find("unknown domain"),
              std::string::npos)
        << error.what();
  }
}

TEST_F(MeasurementTest, UnknownDomainThrowsInLandingPath) {
  auto list = build_list(6);
  list.sets[2].domain = "churned-away.example";
  expect_unknown_domain_throw(web_, list, /*landing_loads=*/1);
}

TEST_F(MeasurementTest, UnknownDomainThrowsInInternalPath) {
  // Zero landing loads: the landing loop never touches the domain, so
  // the internal-page loop is the first to see it. A single-set list
  // keeps the other phases (and other sites) out of the picture.
  auto list = build_list(6);
  core::HisparList one;
  one.sets.push_back(list.sets[2]);
  one.sets[0].domain = "churned-away.example";
  ASSERT_GT(one.sets[0].page_indices.size(), 1u);
  expect_unknown_domain_throw(web_, one, /*landing_loads=*/0);
}

TEST_F(MeasurementTest, UnknownDomainThrowsInAggregationPath) {
  // Zero landing loads *and* no internal pages: only the final
  // aggregation loop sees the domain.
  auto list = build_list(6);
  core::HisparList one;
  one.sets.push_back(list.sets[2]);
  one.sets[0].domain = "churned-away.example";
  one.sets[0].urls.resize(1);
  one.sets[0].page_indices.resize(1);
  expect_unknown_domain_throw(web_, one, /*landing_loads=*/0);
}

TEST_F(MeasurementTest, MedianMetricsTakesMajorityVoteOnBools) {
  std::vector<PageMetrics> loads(3);
  loads[0].header_bidding = true;
  loads[1].header_bidding = true;
  loads[2].header_bidding = false;  // stochastic auction missed once
  loads[0].is_http = true;          // e.g. one load before the redirect
  const PageMetrics median = MeasurementCampaign::median_metrics(loads);
  EXPECT_TRUE(median.header_bidding);  // 2 of 3 loads saw bidding
  EXPECT_FALSE(median.is_http);        // 1 of 3 is not a majority
}

TEST_F(MeasurementTest, MedianMetricsFlagsMixedContentOnAnyLoad) {
  std::vector<PageMetrics> loads(4);
  loads[3].mixed_content = true;
  const PageMetrics median = MeasurementCampaign::median_metrics(loads);
  EXPECT_TRUE(median.mixed_content);
  EXPECT_FALSE(median.header_bidding);
  EXPECT_FALSE(median.is_http);
}

// Pins the numeric semantics of median_metrics (type-7 / R default
// quantile, the same rule util::median implements) against hand-worked
// values, so the sort-in-place rewrite — and any future one — cannot
// silently change the aggregate a site reports.
TEST_F(MeasurementTest, MedianMetricsMatchesHandComputedType7Median) {
  // Odd count: plain middle element, regardless of input order.
  std::vector<PageMetrics> odd(3);
  odd[0].plt_ms = 300.0;
  odd[1].plt_ms = 100.0;
  odd[2].plt_ms = 200.0;
  odd[0].bytes = 5.0;
  odd[1].bytes = 1.0;
  odd[2].bytes = 9.0;
  const PageMetrics odd_median = MeasurementCampaign::median_metrics(odd);
  EXPECT_DOUBLE_EQ(odd_median.plt_ms, 200.0);
  EXPECT_DOUBLE_EQ(odd_median.bytes, 5.0);

  // Even count: type-7 interpolates halfway between the two middle
  // order statistics — h = 0.5 * (4 - 1) = 1.5, so the median of
  // {10, 20, 40, 80} is 20 + 0.5 * (40 - 20) = 30.
  std::vector<PageMetrics> even(4);
  even[0].speed_index_ms = 80.0;
  even[1].speed_index_ms = 10.0;
  even[2].speed_index_ms = 40.0;
  even[3].speed_index_ms = 20.0;
  for (std::size_t i = 0; i < even.size(); ++i) {
    even[i].mix_fractions[1] = static_cast<double>(i + 1);  // {1,2,3,4}
    even[i].depth_counts[0] = static_cast<double>(10 * (i + 1));
  }
  const PageMetrics even_median = MeasurementCampaign::median_metrics(even);
  EXPECT_DOUBLE_EQ(even_median.speed_index_ms, 30.0);
  // Array-valued fields take elementwise medians over the loads.
  EXPECT_DOUBLE_EQ(even_median.mix_fractions[1], 2.5);
  EXPECT_DOUBLE_EQ(even_median.depth_counts[0], 25.0);

  // Non-median aggregations ride along: third parties union, wait
  // samples concatenate in load order.
  std::vector<PageMetrics> pooled(2);
  pooled[0].third_parties = {"a.com"};
  pooled[1].third_parties = {"a.com", "b.com"};
  pooled[0].wait_samples_ms = {1.0, 2.0};
  pooled[1].wait_samples_ms = {3.0};
  const PageMetrics merged = MeasurementCampaign::median_metrics(pooled);
  EXPECT_EQ(merged.third_parties.size(), 2u);
  const std::vector<double> expected_waits = {1.0, 2.0, 3.0};
  EXPECT_EQ(merged.wait_samples_ms, expected_waits);

  // A single load is returned untouched (no interpolation artifacts).
  std::vector<PageMetrics> one(1);
  one[0].plt_ms = 123.25;
  EXPECT_DOUBLE_EQ(MeasurementCampaign::median_metrics(one).plt_ms, 123.25);
}

TEST_F(MeasurementTest, CampaignIsDeterministicForSameSeed) {
  const auto list = build_list(5);
  CampaignConfig config;
  config.landing_loads = 2;
  config.seed = 99;
  MeasurementCampaign a(web_, config);
  MeasurementCampaign b(web_, config);
  const auto sa = a.run(list);
  const auto sb = b.run(list);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa[i].landing.plt_ms, sb[i].landing.plt_ms);
    EXPECT_DOUBLE_EQ(sa[i].landing.bytes, sb[i].landing.bytes);
  }
}

TEST_F(MeasurementTest, AblationSwitchesChangeBehavior) {
  const auto list = build_list(5);
  CampaignConfig base;
  base.landing_loads = 2;
  CampaignConfig no_reuse = base;
  no_reuse.load_options.reuse_connections = false;
  MeasurementCampaign campaign_a(web_, base);
  MeasurementCampaign campaign_b(web_, no_reuse);
  const auto with = campaign_a.run(list);
  const auto without = campaign_b.run(list);
  double handshakes_with = 0.0, handshakes_without = 0.0;
  for (std::size_t i = 0; i < with.size(); ++i) {
    handshakes_with += with[i].landing.handshakes;
    handshakes_without += without[i].landing.handshakes;
  }
  EXPECT_GT(handshakes_without, handshakes_with);
}

// Exhaustive equality over two observation vectors — checkpoint resume
// promises bit-identical results, so every double compares with ==.
void expect_observations_identical(const std::vector<SiteObservation>& a,
                                   const std::vector<SiteObservation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].domain, b[i].domain);
    EXPECT_EQ(a[i].bootstrap_rank, b[i].bootstrap_rank);
    EXPECT_EQ(a[i].category, b[i].category);
    EXPECT_EQ(a[i].quarantined, b[i].quarantined);
    EXPECT_EQ(a[i].total_retries, b[i].total_retries);
    EXPECT_EQ(a[i].outcomes, b[i].outcomes);
    const auto metrics_equal = [](const PageMetrics& x, const PageMetrics& y) {
      EXPECT_EQ(x.bytes, y.bytes);
      EXPECT_EQ(x.objects, y.objects);
      EXPECT_EQ(x.plt_ms, y.plt_ms);
      EXPECT_EQ(x.on_load_ms, y.on_load_ms);
      EXPECT_EQ(x.speed_index_ms, y.speed_index_ms);
      EXPECT_EQ(x.cacheable_bytes_fraction, y.cacheable_bytes_fraction);
      EXPECT_EQ(x.cdn_bytes_fraction, y.cdn_bytes_fraction);
      EXPECT_EQ(x.mix_fractions, y.mix_fractions);
      EXPECT_EQ(x.depth_counts, y.depth_counts);
      EXPECT_EQ(x.handshake_time_ms, y.handshake_time_ms);
      EXPECT_EQ(x.dns_time_ms, y.dns_time_ms);
      EXPECT_EQ(x.is_http, y.is_http);
      EXPECT_EQ(x.mixed_content, y.mixed_content);
      EXPECT_EQ(x.tracking_requests, y.tracking_requests);
      EXPECT_EQ(x.header_bidding, y.header_bidding);
      EXPECT_EQ(x.hb_ad_slots, y.hb_ad_slots);
      EXPECT_EQ(x.third_parties, y.third_parties);
      EXPECT_EQ(x.wait_samples_ms, y.wait_samples_ms);
    };
    metrics_equal(a[i].landing, b[i].landing);
    ASSERT_EQ(a[i].internals.size(), b[i].internals.size());
    for (std::size_t j = 0; j < a[i].internals.size(); ++j)
      metrics_equal(a[i].internals[j], b[i].internals[j]);
  }
}

class CheckpointTest : public MeasurementTest {
 protected:
  // A campaign config with faults on, so checkpoints carry quarantines,
  // retries and partial observations — the hard cases.
  CampaignConfig faulty_config() {
    CampaignConfig config;
    config.landing_loads = 2;
    config.shards = 4;
    config.fault_profile = net::FaultProfile::uniform(0.05);
    return config;
  }

  std::string temp_path(const char* name) {
    return std::string("/tmp/hispar_ckpt_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + name;
  }
};

TEST_F(MeasurementTest, CleanSubstrateRecordsCleanOutcomes) {
  const auto list = build_list(8);
  CampaignConfig config;
  config.landing_loads = 3;
  MeasurementCampaign campaign(web_, config);
  const auto sites = campaign.run(list);
  for (const auto& site : sites) {
    EXPECT_FALSE(site.quarantined);
    EXPECT_FALSE(site.degraded());
    EXPECT_DOUBLE_EQ(site.success_rate(), 1.0);
    EXPECT_EQ(site.total_retries, 0);
    // One outcome per landing round plus one per internal page.
    EXPECT_EQ(site.outcomes.size(), 3u + site.internals.size());
    for (const auto& outcome : site.outcomes) {
      EXPECT_EQ(outcome.status, browser::LoadStatus::kOk);
      EXPECT_EQ(outcome.failure, net::FaultKind::kNone);
      EXPECT_EQ(outcome.attempts, 1);
      EXPECT_EQ(outcome.failed_objects, 0);
    }
  }
  const auto summary = core::summarize_campaign(sites);
  EXPECT_EQ(summary.sites_ok, sites.size());
  EXPECT_EQ(summary.sites_degraded, 0u);
  EXPECT_EQ(summary.sites_quarantined, 0u);
  EXPECT_EQ(summary.total_retries, 0u);
  EXPECT_EQ(summary.failed_fetches, 0u);
  EXPECT_EQ(summary.degraded_fetches, 0u);
}

TEST_F(MeasurementTest, CertainFailureQuarantinesEverySite) {
  const auto list = build_list(5);
  CampaignConfig config;
  config.landing_loads = 2;
  config.max_page_retries = 1;
  config.fault_profile.dns_timeout = 1.0;
  MeasurementCampaign campaign(web_, config);
  const auto sites = campaign.run(list);
  for (const auto& site : sites) {
    EXPECT_TRUE(site.quarantined);
    EXPECT_TRUE(site.degraded());
    EXPECT_DOUBLE_EQ(site.success_rate(), 0.0);
    EXPECT_TRUE(site.internals.empty());
    for (const auto& outcome : site.outcomes) {
      EXPECT_EQ(outcome.status, browser::LoadStatus::kFailed);
      EXPECT_EQ(outcome.failure, net::FaultKind::kDnsTimeout);
      EXPECT_EQ(outcome.attempts, 2);  // 1 + max_page_retries
    }
  }
  const auto summary = core::summarize_campaign(sites);
  EXPECT_EQ(summary.sites_quarantined, sites.size());
  EXPECT_EQ(summary.sites_ok, 0u);
}

TEST_F(MeasurementTest, RetriesRecoverSomeFailedLoads) {
  const auto list = build_list(12);
  CampaignConfig config;
  config.landing_loads = 2;
  config.max_page_retries = 4;
  config.fault_profile = net::FaultProfile::uniform(0.06);
  // A whole-load failure needs every loader attempt to fail, so only a
  // heavy root-striking rate makes campaign-level retries observable.
  config.fault_profile.dns_timeout = 0.7;
  MeasurementCampaign campaign(web_, config);
  const auto sites = campaign.run(list);
  int recovered = 0;
  for (const auto& site : sites)
    for (const auto& outcome : site.outcomes)
      recovered += outcome.attempts > 1 &&
                   outcome.status != browser::LoadStatus::kFailed;
  EXPECT_GT(recovered, 0) << "no load recovered via campaign-level retry";
}

TEST_F(CheckpointTest, ResumeFromCompleteCheckpointIsIdentical) {
  const auto list = build_list(10);
  CampaignConfig config = faulty_config();

  MeasurementCampaign reference(web_, config);
  const auto uninterrupted = reference.run(list);

  const std::string path = temp_path("complete");
  std::remove(path.c_str());
  config.checkpoint_path = path;
  MeasurementCampaign first(web_, config);
  const auto initial = first.run(list);
  expect_observations_identical(uninterrupted, initial);

  // Every shard is on disk now: the rerun splices them all back in.
  MeasurementCampaign second(web_, config);
  const auto resumed = second.run(list);
  expect_observations_identical(uninterrupted, resumed);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, ResumeFromKilledCampaignIsIdentical) {
  const auto list = build_list(10);
  CampaignConfig config = faulty_config();

  MeasurementCampaign reference(web_, config);
  const auto uninterrupted = reference.run(list);

  // Simulate a kill: keep the header, the first complete shard block,
  // and a torn fragment of the second.
  const std::string full_path = temp_path("full");
  std::remove(full_path.c_str());
  config.checkpoint_path = full_path;
  MeasurementCampaign writer(web_, config);
  writer.run(list);

  std::ifstream full(full_path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(full, line);) lines.push_back(line);
  full.close();
  std::size_t first_end = 0;
  for (std::size_t i = 0; i < lines.size(); ++i)
    if (lines[i].rfind("endshard,", 0) == 0) {
      first_end = i;
      break;
    }
  ASSERT_GT(first_end, 0u) << "campaign wrote no complete shard";
  ASSERT_GT(lines.size(), first_end + 2) << "need a second block to tear";

  const std::string torn_path = temp_path("torn");
  {
    std::ofstream torn(torn_path);
    for (std::size_t i = 0; i <= first_end + 1; ++i) torn << lines[i] << '\n';
    torn << lines[first_end + 2].substr(0, lines[first_end + 2].size() / 2);
  }

  config.checkpoint_path = torn_path;
  MeasurementCampaign resumer(web_, config);
  const auto resumed = resumer.run(list);
  expect_observations_identical(uninterrupted, resumed);

  std::remove(full_path.c_str());
  std::remove(torn_path.c_str());
}

TEST_F(CheckpointTest, MismatchedConfigIsRejected) {
  const auto list = build_list(6);
  CampaignConfig config = faulty_config();
  const std::string path = temp_path("digest");
  std::remove(path.c_str());
  config.checkpoint_path = path;
  MeasurementCampaign first(web_, config);
  first.run(list);

  CampaignConfig changed = config;
  changed.seed = config.seed + 1;
  MeasurementCampaign second(web_, changed);
  EXPECT_THROW(second.run(list), std::runtime_error);

  // `jobs` is explicitly not part of the experiment fingerprint.
  CampaignConfig more_jobs = config;
  more_jobs.jobs = 8;
  MeasurementCampaign third(web_, more_jobs);
  const auto resumed = third.run(list);
  EXPECT_EQ(resumed.size(), list.sets.size());
  std::remove(path.c_str());
}

TEST_F(MeasurementTest, TrackerDetectionAgreesWithGroundTruthDirection) {
  // The EasyList-style matcher must broadly find the tracking objects
  // the generator planted (detection is URL-pattern-based, so exact
  // equality is not expected).
  const auto list = build_list(10);
  CampaignConfig config;
  config.landing_loads = 1;
  MeasurementCampaign campaign(web_, config);
  const auto sites = campaign.run(list);
  double detected = 0.0, truth = 0.0;
  for (const auto& observation : sites) {
    const auto* site = web_.find_site(observation.domain);
    detected += observation.landing.tracking_requests;
    truth += static_cast<double>(site->page(0).tracking_requests());
  }
  if (truth == 0.0) GTEST_SKIP() << "no trackers in sample";
  EXPECT_GT(detected, truth * 0.6);
  EXPECT_LT(detected, truth * 1.7);
}

}  // namespace
