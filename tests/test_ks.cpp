#include "util/ks_test.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace {

using namespace hispar::util;

TEST(KsTest, IdenticalSamplesHaveZeroStatistic) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const auto result = ks_two_sample(a, a);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_GT(result.p_value, 0.99);
}

TEST(KsTest, DisjointSamplesHaveStatisticOne) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {10, 11, 12};
  const auto result = ks_two_sample(a, b);
  EXPECT_DOUBLE_EQ(result.statistic, 1.0);
}

TEST(KsTest, SymmetricInArguments) {
  const std::vector<double> a = {1, 5, 3, 8, 2};
  const std::vector<double> b = {2, 6, 7, 1};
  const auto ab = ks_two_sample(a, b);
  const auto ba = ks_two_sample(b, a);
  EXPECT_DOUBLE_EQ(ab.statistic, ba.statistic);
  EXPECT_DOUBLE_EQ(ab.p_value, ba.p_value);
}

TEST(KsTest, HandComputedStatistic) {
  // a = {1,2}, b = {1.5}: F_a jumps 0.5 at 1 and 1 at 2; F_b jumps 1 at
  // 1.5. Max gap: after 1.5, F_b=1 vs F_a=0.5 -> D=0.5.
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.5};
  EXPECT_DOUBLE_EQ(ks_two_sample(a, b).statistic, 0.5);
}

TEST(KsTest, DetectsShiftedDistributions) {
  Rng rng(11);
  std::vector<double> a(2000), b(2000);
  for (auto& x : a) x = rng.normal(0.0, 1.0);
  for (auto& x : b) x = rng.normal(0.5, 1.0);
  const auto result = ks_two_sample(a, b);
  EXPECT_GT(result.statistic, 0.15);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsTest, AcceptsSameDistribution) {
  Rng rng(11);
  std::vector<double> a(500), b(700);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal();
  const auto result = ks_two_sample(a, b);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(KsTest, PValueDecreasesWithSampleSize) {
  Rng rng(11);
  const auto make = [&](int n, double shift) {
    std::vector<double> xs(static_cast<std::size_t>(n));
    for (auto& x : xs) x = rng.normal(shift, 1.0);
    return xs;
  };
  const auto small = ks_two_sample(make(50, 0.0), make(50, 0.3));
  const auto large = ks_two_sample(make(5000, 0.0), make(5000, 0.3));
  EXPECT_LT(large.p_value, small.p_value);
}

TEST(KsTest, EmptySampleThrows) {
  const std::vector<double> a = {1.0};
  EXPECT_THROW(ks_two_sample(a, {}), std::invalid_argument);
  EXPECT_THROW(ks_two_sample({}, a), std::invalid_argument);
}

TEST(KsTest, PValueWithinUnitInterval) {
  Rng rng(2);
  std::vector<double> a(100), b(100);
  for (auto& x : a) x = rng.uniform();
  for (auto& x : b) x = rng.uniform() * 1.3;
  const auto result = ks_two_sample(a, b);
  EXPECT_GE(result.p_value, 0.0);
  EXPECT_LE(result.p_value, 1.0);
}

}  // namespace
