#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace {

using namespace hispar::util;

const std::vector<double> kSample = {5.0, 1.0, 4.0, 2.0, 3.0};

TEST(Mean, Basic) { EXPECT_DOUBLE_EQ(mean(kSample), 3.0); }

TEST(Mean, EmptyThrows) {
  EXPECT_THROW(mean(std::vector<double>{}), std::invalid_argument);
}

TEST(Variance, SampleVariance) {
  // variance of {1..5} with n-1 denominator = 2.5
  EXPECT_DOUBLE_EQ(variance(kSample), 2.5);
  EXPECT_DOUBLE_EQ(stddev(kSample), std::sqrt(2.5));
}

TEST(Variance, NeedsTwoValues) {
  EXPECT_THROW(variance(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(GeometricMean, Basic) {
  const std::vector<double> xs = {1.0, 10.0, 100.0};
  EXPECT_NEAR(geometric_mean(xs), 10.0, 1e-12);
}

TEST(GeometricMean, RejectsNonPositive) {
  EXPECT_THROW(geometric_mean(std::vector<double>{1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(geometric_mean(std::vector<double>{-1.0}),
               std::invalid_argument);
}

TEST(Quantile, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(kSample), 3.0);
  const std::vector<double> even = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Quantile, Extremes) {
  EXPECT_DOUBLE_EQ(quantile(kSample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(kSample, 1.0), 5.0);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.9), 9.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(kSample, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(kSample, 1.1), std::invalid_argument);
}

TEST(FractionBelow, StrictAndInclusive) {
  EXPECT_DOUBLE_EQ(fraction_below(kSample, 3.0), 0.4);
  EXPECT_DOUBLE_EQ(fraction_at_or_below(kSample, 3.0), 0.6);
  EXPECT_DOUBLE_EQ(fraction_below(kSample, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_below(kSample, -1.0), 0.0);
}

TEST(EmpiricalCdfTest, EvaluatesStepFunction) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf(100.0), 1.0);
}

TEST(EmpiricalCdfTest, QuantileMatchesSample) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
}

TEST(EmpiricalCdfTest, CurveIsMonotone) {
  EmpiricalCdf cdf({1.0, 5.0, 2.0, 8.0, 4.0});
  const auto curve = cdf.curve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalCdfTest, EmptyThrowsOnUse) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_THROW(cdf(1.0), std::logic_error);
}

TEST(AccumulatorTest, TracksStatistics) {
  Accumulator acc;
  for (double x : {4.0, 1.0, 3.0, 2.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.median(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_EQ(acc.cdf().size(), 4u);
}

TEST(AccumulatorTest, EmptyThrows) {
  Accumulator acc;
  EXPECT_THROW(acc.min(), std::logic_error);
  EXPECT_THROW(acc.max(), std::logic_error);
}

TEST(RankBinMedians, SplitsEvenly) {
  std::vector<double> deltas;
  for (int i = 0; i < 40; ++i) deltas.push_back(i < 20 ? 1.0 : 5.0);
  const auto bins = rank_bin_medians(deltas, 2);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0], 1.0);
  EXPECT_DOUBLE_EQ(bins[1], 5.0);
}

TEST(RankBinMedians, LastBinAbsorbsRemainder) {
  std::vector<double> deltas = {1, 1, 1, 9, 9, 9, 9};
  const auto bins = rank_bin_medians(deltas, 2);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0], 1.0);
  EXPECT_DOUBLE_EQ(bins[1], 9.0);
}

TEST(RankBinMedians, RejectsZeroBins) {
  EXPECT_THROW(rank_bin_medians(std::vector<double>{1.0}, 0),
               std::invalid_argument);
}

TEST(RankBinMedians, FewerSitesThanBinsYieldsNaNBins) {
  // Degenerate aggregation input (a vantage where almost every site was
  // quarantined) must not throw: empty bins report NaN, the last bin
  // absorbs the whole sample.
  const auto bins = rank_bin_medians(std::vector<double>{1.0}, 2);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_TRUE(std::isnan(bins[0]));
  EXPECT_DOUBLE_EQ(bins[1], 1.0);
}

TEST(RankBinMedians, NaNDeltasAreExcludedPerBin) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> deltas = {nan, 2.0, 4.0, nan, nan, nan};
  const auto bins = rank_bin_medians(deltas, 2);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0], 3.0);   // {nan, 2, 4} -> median of {2, 4}
  EXPECT_TRUE(std::isnan(bins[1]));  // all-NaN bin
}

TEST(QuantileSorted, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(quantile_sorted(std::span<const double>{}, 0.5)));
}

TEST(QuantileSorted, RejectsBadQEvenWhenEmpty) {
  EXPECT_THROW(quantile_sorted(std::span<const double>{}, -0.1),
               std::invalid_argument);
}

TEST(QuantileSorted, IgnoresTrailingNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> sorted = {1.0, 2.0, 3.0, nan, nan};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 3.0);
}

TEST(MedianInplace, EmptyIsNaN) {
  std::vector<double> values;
  EXPECT_TRUE(std::isnan(median_inplace(values)));
}

TEST(MedianInplace, FiltersNaNBeforeSorting) {
  // std::sort with NaN present is UB (broken comparator); the fixed
  // implementation partitions NaNs out first.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> values = {nan, 2.0, nan, 1.0, 3.0, nan};
  EXPECT_DOUBLE_EQ(median_inplace(values), 2.0);
  std::vector<double> all_nan = {nan, nan};
  EXPECT_TRUE(std::isnan(median_inplace(all_nan)));
}

TEST(Quantile, AllNaNSampleIsNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(quantile(std::vector<double>{nan, nan}, 0.5)));
}

TEST(Quantile, NaNValuesAreExcluded) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> xs = {nan, 5.0, 1.0, nan, 3.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, MonotoneInQ) {
  const double q = GetParam();
  const std::vector<double> xs = {3.0, 9.0, 1.0, 7.0, 5.0, 2.0};
  if (q <= 0.95) EXPECT_LE(quantile(xs, q), quantile(xs, q + 0.05));
  EXPECT_GE(quantile(xs, q), 1.0);
  EXPECT_LE(quantile(xs, q), 9.0);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           0.95, 1.0));

}  // namespace
