#include "net/connection.h"

#include <gtest/gtest.h>

namespace {

using namespace hispar::net;

TEST(ConnectionPoolTest, FirstAcquireOpensConnection) {
  ConnectionPool pool;
  const auto lease = pool.acquire("a.com", HttpVersion::kHttp11);
  EXPECT_TRUE(lease.new_connection);
  EXPECT_EQ(pool.handshakes_performed(), 1);
  EXPECT_EQ(pool.open_connections("a.com"), 1);
}

TEST(ConnectionPoolTest, ReleasedConnectionIsReused) {
  ConnectionPool pool;
  const auto first = pool.acquire("a.com", HttpVersion::kHttp11);
  pool.release("a.com", first.connection_id);
  const auto second = pool.acquire("a.com", HttpVersion::kHttp11);
  EXPECT_FALSE(second.new_connection);
  EXPECT_EQ(second.connection_id, first.connection_id);
  EXPECT_EQ(pool.handshakes_performed(), 1);
}

TEST(ConnectionPoolTest, Http11CapsAtSixParallelConnections) {
  ConnectionPool pool;
  for (int i = 0; i < 6; ++i)
    EXPECT_TRUE(pool.acquire("a.com", HttpVersion::kHttp11).new_connection);
  // Seventh in-flight request must queue, not open a connection.
  EXPECT_FALSE(pool.acquire("a.com", HttpVersion::kHttp11).new_connection);
  EXPECT_EQ(pool.open_connections("a.com"), 6);
}

TEST(ConnectionPoolTest, Http2MultiplexesOnOneConnection) {
  ConnectionPool pool;
  EXPECT_TRUE(pool.acquire("a.com", HttpVersion::kHttp2).new_connection);
  for (int i = 0; i < 20; ++i)
    EXPECT_FALSE(pool.acquire("a.com", HttpVersion::kHttp2).new_connection);
  EXPECT_EQ(pool.open_connections("a.com"), 1);
}

TEST(ConnectionPoolTest, HostsAreIndependent) {
  ConnectionPool pool;
  (void)pool.acquire("a.com", HttpVersion::kHttp11);
  EXPECT_TRUE(pool.acquire("b.com", HttpVersion::kHttp11).new_connection);
  EXPECT_EQ(pool.handshakes_performed(), 2);
  EXPECT_EQ(pool.open_connections("a.com"), 1);
  EXPECT_EQ(pool.open_connections("b.com"), 1);
  EXPECT_EQ(pool.open_connections("c.com"), 0);
}

TEST(ConnectionPoolTest, QueuedRequestsBalanceAcrossConnections) {
  ConnectionPool pool;
  const auto c1 = pool.acquire("a.com", HttpVersion::kHttp2);
  // Three queued requests multiplex over the single H2 connection.
  for (int i = 0; i < 3; ++i) {
    const auto lease = pool.acquire("a.com", HttpVersion::kHttp2);
    EXPECT_EQ(lease.connection_id, c1.connection_id);
  }
}

TEST(ConnectionPoolTest, ReleaseValidation) {
  ConnectionPool pool;
  EXPECT_THROW(pool.release("nope.com", 0), std::logic_error);
  const auto lease = pool.acquire("a.com", HttpVersion::kHttp11);
  pool.release("a.com", lease.connection_id);
  EXPECT_THROW(pool.release("a.com", lease.connection_id), std::logic_error);
  EXPECT_THROW(pool.release("a.com", 999), std::logic_error);
}

TEST(ConnectionPoolTest, ClearResets) {
  ConnectionPool pool;
  (void)pool.acquire("a.com", HttpVersion::kHttp11);
  pool.clear();
  EXPECT_EQ(pool.handshakes_performed(), 0);
  EXPECT_EQ(pool.open_connections("a.com"), 0);
}

TEST(ConnectionPoolTest, RejectsBadConfig) {
  ConnectionPoolConfig config;
  config.max_per_origin_h1 = 0;
  EXPECT_THROW(ConnectionPool{config}, std::invalid_argument);
}

}  // namespace
