#include <gtest/gtest.h>

#include "cdn/detection.h"
#include "cdn/hierarchy.h"
#include "cdn/provider.h"

namespace {

using namespace hispar::cdn;
using hispar::net::LatencyModel;
using hispar::net::Region;
using hispar::util::Rng;

TEST(Registry, HasAtLeastFortyProviders) {
  // §5.1: "we identified more than 40 different CDNs".
  EXPECT_GE(CdnRegistry::standard().size(), 40u);
}

TEST(Registry, LookupByNameAndId) {
  const auto registry = CdnRegistry::standard();
  const CdnProvider* akamai = registry.find_by_name("akamai");
  ASSERT_NE(akamai, nullptr);
  EXPECT_TRUE(akamai->emits_x_cache);
  EXPECT_EQ(registry.provider(akamai->id).name, "akamai");
  EXPECT_EQ(registry.find_by_name("not-a-cdn"), nullptr);
  EXPECT_THROW(registry.provider(-1), std::out_of_range);
  EXPECT_THROW(registry.provider(10000), std::out_of_range);
}

TEST(Registry, XCacheProvidersIncludeAkamaiAndFastly) {
  // The paper names Akamai and Fastly as X-Cache emitters (§5.1).
  const auto registry = CdnRegistry::standard();
  EXPECT_TRUE(registry.find_by_name("akamai")->emits_x_cache);
  EXPECT_TRUE(registry.find_by_name("fastly")->emits_x_cache);
  EXPECT_FALSE(registry.find_by_name("cloudflare")->emits_x_cache);
}

TEST(Registry, NearestEdgePrefersClientRegion) {
  const auto registry = CdnRegistry::standard();
  const LatencyModel latency;
  const CdnProvider* global = registry.find_by_name("akamai");
  ASSERT_NE(global, nullptr);
  EXPECT_EQ(registry.nearest_edge(*global, Region::kAsia, latency),
            Region::kAsia);
  // A provider without Asian presence serves Asia from elsewhere.
  const CdnProvider* regional = registry.find_by_name("level3");
  ASSERT_NE(regional, nullptr);
  const Region edge = registry.nearest_edge(*regional, Region::kAsia, latency);
  EXPECT_TRUE(edge == Region::kNorthAmerica || edge == Region::kEurope);
}

TEST(Detector, MatchesHostPattern) {
  const auto registry = CdnRegistry::standard();
  const CdnDetector detector(registry);
  const auto result =
      detector.classify({"e73.akamaiedge.net", std::nullopt, {}});
  EXPECT_TRUE(result.via_cdn);
  EXPECT_EQ(registry.provider(result.provider_id).name, "akamai");
  EXPECT_EQ(result.matched_signal, "host-pattern");
}

TEST(Detector, MatchesCname) {
  const auto registry = CdnRegistry::standard();
  const CdnDetector detector(registry);
  const auto result = detector.classify(
      {"static.example.com", "example.com.edgekey.net", {}});
  EXPECT_TRUE(result.via_cdn);
  EXPECT_EQ(result.matched_signal, "cname");
}

TEST(Detector, MatchesHeaderSignature) {
  const auto registry = CdnRegistry::standard();
  const CdnDetector detector(registry);
  const auto result = detector.classify(
      {"www.example.com", std::nullopt, {"server: cloudflare"}});
  EXPECT_TRUE(result.via_cdn);
  EXPECT_EQ(registry.provider(result.provider_id).name, "cloudflare");
  EXPECT_EQ(result.matched_signal, "header");
}

TEST(Detector, NoSignalsMeansNotCdn) {
  const auto registry = CdnRegistry::standard();
  const CdnDetector detector(registry);
  const auto result = detector.classify(
      {"www.example.com", "origin.example.com", {"server: nginx"}});
  EXPECT_FALSE(result.via_cdn);
  EXPECT_EQ(result.provider_id, -1);
}

CdnRequest make_request(double rate, bool cacheable = true) {
  CdnRequest request;
  request.url = "https://static.example.com/app.js";
  request.size_bytes = 50e3;
  request.request_rate = rate;
  request.cacheable = cacheable;
  return request;
}

TEST(Hierarchy, WarmthIsMonotoneInRate) {
  const auto registry = CdnRegistry::standard();
  const LatencyModel latency;
  CdnHierarchy cdn(registry, latency);
  EXPECT_DOUBLE_EQ(cdn.edge_warm_probability(0.0), 0.0);
  double prev = 0.0;
  for (double rate : {1e-5, 1e-3, 1e-1, 10.0, 1000.0}) {
    const double p = cdn.edge_warm_probability(rate);
    EXPECT_GT(p, prev);
    EXPECT_LT(p, 1.0);
    prev = p;
  }
}

TEST(Hierarchy, ParentIsWarmerThanEdge) {
  const auto registry = CdnRegistry::standard();
  const LatencyModel latency;
  CdnHierarchy cdn(registry, latency);
  for (double rate : {1e-4, 1e-2, 1.0})
    EXPECT_GT(cdn.parent_warm_probability(rate),
              cdn.edge_warm_probability(rate));
}

TEST(Hierarchy, OwnTrafficHitsDeterministically) {
  const auto registry = CdnRegistry::standard();
  const LatencyModel latency;
  CdnHierarchy cdn(registry, latency);
  Rng rng(3);
  const auto& provider = *registry.find_by_name("akamai");
  const auto request = make_request(0.0);  // stone cold globally
  (void)cdn.serve(provider, request, rng);
  // The second fetch of the same URL must hit the edge LRU.
  const auto response = cdn.serve(provider, request, rng);
  EXPECT_EQ(response.served_from, CacheLevel::kEdge);
  EXPECT_EQ(response.x_cache, "HIT");
}

TEST(Hierarchy, NonCacheableAlwaysReachesOrigin) {
  const auto registry = CdnRegistry::standard();
  const LatencyModel latency;
  CdnHierarchy cdn(registry, latency);
  Rng rng(3);
  const auto& provider = *registry.find_by_name("akamai");
  const auto request = make_request(1000.0, /*cacheable=*/false);
  for (int i = 0; i < 10; ++i) {
    const auto response = cdn.serve(provider, request, rng);
    EXPECT_EQ(response.served_from, CacheLevel::kOrigin);
  }
}

TEST(Hierarchy, ColdMissCostsMoreThanHit) {
  const auto registry = CdnRegistry::standard();
  const LatencyModel latency;
  CdnHierarchy cdn(registry, latency);
  Rng rng(3);
  const auto& provider = *registry.find_by_name("akamai");
  CdnRequest cold = make_request(0.0);
  cold.url = "https://x/cold";
  CdnRequest hot = make_request(1e6);
  hot.url = "https://x/hot";
  const auto cold_response = cdn.serve(provider, cold, rng);
  const auto hot_response = cdn.serve(provider, hot, rng);
  EXPECT_GT(cold_response.wait_ms, hot_response.wait_ms);
}

TEST(Hierarchy, XCacheOnlyFromEmittingProviders) {
  const auto registry = CdnRegistry::standard();
  const LatencyModel latency;
  CdnHierarchy cdn(registry, latency);
  Rng rng(3);
  const auto& silent = *registry.find_by_name("cloudflare");
  const auto response = cdn.serve(silent, make_request(100.0), rng);
  EXPECT_TRUE(response.x_cache.empty());
}

TEST(Hierarchy, StatsAccumulateAndReset) {
  const auto registry = CdnRegistry::standard();
  const LatencyModel latency;
  CdnHierarchy cdn(registry, latency);
  Rng rng(3);
  const auto& provider = *registry.find_by_name("fastly");
  (void)cdn.serve(provider, make_request(1e6), rng);
  EXPECT_EQ(cdn.requests(), 1u);
  EXPECT_EQ(cdn.edge_hits(), 1u);
  cdn.reset_stats();
  EXPECT_EQ(cdn.requests(), 0u);
}

TEST(Hierarchy, OriginServiceSkipsCdn) {
  const auto registry = CdnRegistry::standard();
  const LatencyModel latency;
  CdnHierarchy cdn(registry, latency);
  Rng rng(3);
  const auto response = cdn.serve_from_origin(make_request(100.0), rng);
  EXPECT_EQ(response.served_from, CacheLevel::kOrigin);
  EXPECT_GT(response.wait_ms, 0.0);
  EXPECT_TRUE(response.x_cache.empty());
}

}  // namespace
