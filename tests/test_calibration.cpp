// Consistency checks between calibration.h's documented derivations and
// the constants actually in the header — the "mu = ln(g), sigma =
// ln(g)/PhiInv(p)" recipe must reproduce the paper's headline fractions
// when pushed back through the normal CDF.
#include <gtest/gtest.h>

#include <cmath>

#include "util/distributions.h"
#include "web/calibration.h"

namespace {

namespace calib = hispar::web::calib;
using hispar::util::normal_cdf;

// Population blend of P[ratio > 1] over the ten rank bins.
double blended_fraction(const std::array<double, 10>& mus, double sigma) {
  double total = 0.0;
  for (double mu : mus) total += normal_cdf(mu / sigma);
  return total / 10.0;
}

double blended_geomean(const std::array<double, 10>& mus) {
  double total = 0.0;
  for (double mu : mus) total += mu;
  return std::exp(total / 10.0);
}

TEST(Calibration, SizeRatioMatchesFig2a) {
  // Paper: 65% of sites with larger landing pages; geo-mean 1.34.
  EXPECT_NEAR(blended_fraction(calib::kSizeRatioMuByBin,
                               calib::kSizeRatioSigma),
              0.65, 0.07);
  EXPECT_NEAR(blended_geomean(calib::kSizeRatioMuByBin), 1.34, 0.12);
}

TEST(Calibration, ObjectRatioMatchesFig2b) {
  // Paper: 68% and geo-mean 1.24.
  EXPECT_NEAR(blended_fraction(calib::kObjectRatioMuByBin,
                               calib::kObjectRatioSigma),
              0.68, 0.07);
  EXPECT_NEAR(blended_geomean(calib::kObjectRatioMuByBin), 1.24, 0.08);
}

TEST(Calibration, NonCacheableRatioMatchesFig4a) {
  // Paper: 66% of sites; the rank trend crosses zero (Fig. 10a).
  EXPECT_NEAR(blended_fraction(calib::kNonCacheableRatioMuByBin,
                               calib::kNonCacheableRatioSigma),
              0.62, 0.08);
  EXPECT_GT(calib::kNonCacheableRatioMuByBin.front(), 0.0);
  EXPECT_LT(calib::kNonCacheableRatioMuByBin.back(), 0.0);
}

TEST(Calibration, DomainsRatioMatchesFig5) {
  // Paper: 67% and median +29%. The drawn fraction is deliberately set
  // above the paper's number (see the comment in calibration.h): the
  // landing page is a single noisy realization, which regresses the
  // *measured* fraction back toward 1/2 — the end-to-end value is what
  // bench_fig5 and the integration tests check.
  EXPECT_GT(blended_fraction(calib::kDomainsRatioMuByBin,
                             calib::kDomainsRatioSigma),
            0.67);
  EXPECT_GT(calib::kDomainsRatioMuByBin[1], calib::kDomainsRatioMuByBin[9]);
}

TEST(Calibration, MixMediansSumToRoughlyOne) {
  double landing = 0.0, internal = 0.0;
  for (double share : calib::kLandingMixMedians) landing += share;
  for (double share : calib::kInternalMixMedians) internal += share;
  EXPECT_NEAR(landing, 1.0, 0.05);
  EXPECT_NEAR(internal, 1.0, 0.05);
}

TEST(Calibration, MixContrastDirections) {
  // Fig. 4c: internal pages are JS- and HTML/CSS-heavier; landing pages
  // are image-heavier. Mix index order: {JS, IMG, HTML/CSS, ...}.
  EXPECT_LT(calib::kLandingMixMedians[0], calib::kInternalMixMedians[0]);
  EXPECT_GT(calib::kLandingMixMedians[1], calib::kInternalMixMedians[1]);
  EXPECT_LT(calib::kLandingMixMedians[2], calib::kInternalMixMedians[2]);
}

TEST(Calibration, CraftsmanshipImprovesWithRank) {
  // Top sites block less on landing; mid ranks exceed 1 (Fig. 9a's
  // positive-dPLT window).
  EXPECT_LT(calib::kLandingBlockingFactorByBin.front(), 0.5);
  double peak = 0.0;
  for (double f : calib::kLandingBlockingFactorByBin)
    peak = std::max(peak, f);
  EXPECT_GT(peak, 1.0);
}

TEST(Calibration, SecurityRatesMatchSection61) {
  // 36/1000 HTTP landing pages.
  EXPECT_NEAR(calib::kHttpLandingProb, 0.036, 1e-9);
  // Zero-inflation splits sum to 1.
  EXPECT_NEAR(calib::kHttpInternalSiteNoneProb +
                  calib::kHttpInternalSiteLowProb +
                  calib::kHttpInternalSiteHighProb,
              1.0, 1e-9);
  EXPECT_NEAR(calib::kMixedInternalSiteNoneProb +
                  calib::kMixedInternalSiteLowProb +
                  calib::kMixedInternalSiteHighProb,
              1.0, 1e-9);
}

TEST(Calibration, HintZeroRatesMatchFig6b) {
  EXPECT_NEAR(calib::kLandingHintZeroProb, 1.0 - 0.69, 1e-9);
  EXPECT_NEAR(calib::kInternalHintZeroProb, 0.45, 1e-9);
  EXPECT_NEAR(calib::kInternalHintZeroProbTop100, 0.52, 1e-9);
}

TEST(Calibration, ByRankBinClampsAndSelects) {
  constexpr std::array<double, 10> table = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_DOUBLE_EQ(calib::by_rank_bin(table, 1), 0.0);
  EXPECT_DOUBLE_EQ(calib::by_rank_bin(table, 100), 0.0);
  EXPECT_DOUBLE_EQ(calib::by_rank_bin(table, 101), 1.0);
  EXPECT_DOUBLE_EQ(calib::by_rank_bin(table, 1000), 9.0);
  EXPECT_DOUBLE_EQ(calib::by_rank_bin(table, 50000), 9.0);  // clamps
  EXPECT_DOUBLE_EQ(calib::by_rank_bin(table, 0), 0.0);
}

TEST(Calibration, HbRatesMatchSection63) {
  // 17/200 sites with HB on landing; 12/200 internal-only.
  EXPECT_NEAR(calib::kHbLandingProb, 17.0 / 200.0, 1e-9);
  EXPECT_NEAR(calib::kHbInternalOnlyProb, 12.0 / 200.0, 1e-9);
}

}  // namespace
