// Minimized regression tests for parser defects surfaced by
// tools/hispar_fuzz (ISSUE 9). Every input here once crashed, hit
// sanitizer-flagged UB, or silently mis-parsed; the fixed parsers must
// now reject each one with the contract exception (std::runtime_error
// for checkpoint/JSON readers, std::invalid_argument for the spec
// grammars) — never anything else.
//
// New fuzzer finds land here: minimize with testkit::minimize_bytes
// (the fuzzer does it automatically and writes fuzz-finding-*.bin),
// add one TEST per find, and keep the input inline so the file is the
// complete history of what the fuzzer has caught.
#include "core/serialization.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "net/faults.h"
#include "net/outage.h"
#include "net/vantage_profile.h"
#include "obs/json.h"

namespace {

using hispar::core::read_checkpoint;

// Find: a stack of 5000 unclosed arrays recursed once per '[' and
// overflowed the stack (crash, no exception). parse_json now bounds
// nesting at kMaxDepth = 200 and fails cleanly.
TEST(FuzzRegressionTest, DeeplyNestedJsonRejectsInsteadOfOverflowing) {
  const std::string bomb(5000, '[');
  try {
    hispar::obs::parse_json(bomb);
    FAIL() << "deep nesting parsed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nesting too deep"),
              std::string::npos);
  }
  // Deep but legal nesting still parses.
  std::string legal;
  for (int i = 0; i < 100; ++i) legal += '[';
  legal += '1';
  for (int i = 0; i < 100; ++i) legal += ']';
  EXPECT_NO_THROW(hispar::obs::parse_json(legal));
}

// Find: "provider=1e18" passed the finite-number check and then hit a
// double->int float-cast overflow (UBSan). The chaos grammar now
// bounds provider before the cast.
TEST(FuzzRegressionTest, ChaosProviderOverflowRejects) {
  const char* hostile[] = {
      "cdn:provider=1e18,kind=stall,sev=0.5,start_s=0,dur_s=1",
      "cdn:provider=-1,kind=stall,sev=0.5,start_s=0,dur_s=1",
      "cdn:provider=0.5,kind=stall,sev=0.5,start_s=0,dur_s=1",
  };
  for (const char* spec : hostile)
    EXPECT_THROW(hispar::net::OutageSchedule::parse(spec),
                 std::invalid_argument)
        << spec;
  EXPECT_NO_THROW(hispar::net::OutageSchedule::parse(
      "cdn:provider=3,kind=stall,sev=0.5,start_s=0,dur_s=1"));
}

// Find: "access_ms=nan" flowed a NaN into every derived RTT; the
// vantage grammar now requires finite numbers.
TEST(FuzzRegressionTest, VantageNonFiniteNumbersReject) {
  const char* hostile[] = {"v0:access_ms=nan", "v0:access_ms=inf",
                           "v0:bandwidth=-inf", "v0:faults=nan"};
  for (const char* spec : hostile)
    EXPECT_THROW(hispar::net::VantageProfile::parse(spec),
                 std::invalid_argument)
        << spec;
}

// Find: strtoull stops at the first NUL, so a count field "2\0junk"
// parsed as 2 and the trailing bytes silently shifted the record
// stream. Fields must now be consumed to their full length.
TEST(FuzzRegressionTest, CheckpointEmbeddedNulInCountRejects) {
  std::string text = "hispar-checkpoint,v1,42\nshard,0,2";
  text += '\0';
  text += "9\nendshard,0\n";
  std::istringstream in(text);
  EXPECT_THROW(read_checkpoint(in), std::runtime_error);
}

// Find: an adversarial site count like 2^64-1 reached
// std::vector::reserve and died as std::length_error (or worse, an
// OOM) instead of a parse error. Counts are now bounded by the line
// count of the file that promises them.
TEST(FuzzRegressionTest, CheckpointOversizeCountRejects) {
  for (const char* count : {"18446744073709551615", "99999999999999999999",
                            "1000000000000000000"}) {
    std::istringstream in("hispar-checkpoint,v1,42\nshard,0," +
                          std::string(count) + "\nendshard,0\n");
    try {
      read_checkpoint(in);
      FAIL() << "count " << count << " accepted";
    } catch (const std::runtime_error& e) {
      // Specifically the bounded-count error, not an allocator throw.
      EXPECT_NE(std::string(e.what()).find("checkpoint:"), std::string::npos);
    } catch (...) {
      FAIL() << "count " << count << " escaped as a non-contract exception";
    }
  }
}

// Find: "uniform:0.5\0garbage" parsed as rate 0.5 under a bare
// *end == '\0' check. Rates must consume the full field, so embedded
// NUL bytes reject.
TEST(FuzzRegressionTest, FaultSpecEmbeddedNulRejects) {
  std::string spec = "uniform:0.5";
  spec += '\0';
  spec += "garbage";
  EXPECT_THROW(hispar::net::FaultProfile::parse(spec), std::invalid_argument);

  std::string keyed = "stall=0.1";
  keyed += '\0';
  EXPECT_THROW(hispar::net::FaultProfile::parse(keyed), std::invalid_argument);

  std::string chaos = "resolver:kind=dns_timeout,sev=0.5";
  chaos += '\0';
  chaos += ",start_s=0,dur_s=1";
  EXPECT_THROW(hispar::net::OutageSchedule::parse(chaos),
               std::invalid_argument);
}

// Torn-tail contract stays intact after the hardening: an unterminated
// trailing block is silently discarded (resume depends on it), while a
// malformed *complete* record still throws.
TEST(FuzzRegressionTest, TornTailStillDiscardsSilently) {
  std::istringstream torn(
      "hispar-checkpoint,v1,42\nshard,0,1\nsite,0,torn-partial");
  const auto checkpoint = read_checkpoint(torn);
  EXPECT_EQ(checkpoint.config_digest, 42u);
  EXPECT_TRUE(checkpoint.completed_shards.empty());
}

}  // namespace
