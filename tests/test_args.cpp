#include "util/args.h"

#include <gtest/gtest.h>

namespace {

using hispar::util::Args;

Args parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return Args::parse(static_cast<int>(v.size()), v.data());
}

TEST(ArgsTest, SubcommandAndFlags) {
  const Args args =
      parse({"hispar", "build", "--sites", "100", "--out", "x.csv"});
  EXPECT_EQ(args.program(), "hispar");
  EXPECT_EQ(args.subcommand(), "build");
  EXPECT_EQ(args.get_int("sites", 0), 100);
  EXPECT_EQ(args.get("out", ""), "x.csv");
}

TEST(ArgsTest, MissingFlagsFallBack) {
  const Args args = parse({"hispar", "build"});
  EXPECT_EQ(args.get_int("sites", 42), 42);
  EXPECT_EQ(args.get("out", "default.csv"), "default.csv");
  EXPECT_DOUBLE_EQ(args.get_double("rate", 1.5), 1.5);
  EXPECT_FALSE(args.has("sites"));
}

TEST(ArgsTest, BareSwitches) {
  const Args args = parse({"hispar", "build", "--verbose", "--sites", "5"});
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_FALSE(args.get_bool("quiet"));
  EXPECT_EQ(args.get_int("sites", 0), 5);
}

TEST(ArgsTest, NoSubcommand) {
  const Args args = parse({"hispar", "--sites", "5"});
  EXPECT_TRUE(args.subcommand().empty());
  EXPECT_EQ(args.get_int("sites", 0), 5);
}

TEST(ArgsTest, MalformedInputThrows) {
  EXPECT_THROW(parse({"hispar", "build", "value-without-flag"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"hispar", "build", "--"}), std::invalid_argument);
}

TEST(ArgsTest, BadTypesThrow) {
  const Args args = parse({"hispar", "build", "--sites", "abc"});
  EXPECT_THROW(args.get_int("sites", 0), std::invalid_argument);
  const Args args2 = parse({"hispar", "build", "--rate", "1.2.3"});
  EXPECT_THROW(args2.get_double("rate", 0.0), std::invalid_argument);
}

TEST(ArgsTest, UnusedFlagsReported) {
  const Args args = parse({"hispar", "build", "--sites", "5", "--typo", "x"});
  (void)args.get_int("sites", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(ArgsTest, NegativeNumbersAreValues) {
  // A leading '-' on the token after a flag is treated as the next flag;
  // numeric flags therefore reject negatives explicitly.
  const Args args = parse({"hispar", "build", "--offset", "5"});
  EXPECT_EQ(args.get_int("offset", 0), 5);
}

}  // namespace
