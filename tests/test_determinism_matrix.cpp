// Determinism matrix: {seeds} x {--jobs} x {fault profiles}.
//
// The campaign's contract is that `jobs` (worker threads) never affects
// any output byte — only `shards` (cache-warmth domains) does — and
// that the guarantee holds with fault injection active, because fault
// decisions are keyed by (seed, shard, domain, page, ordinal, attempt)
// rather than by scheduling. The optimization pass (page cache,
// interning, pooled scratch) must preserve all of that: caches are per
// shard, so a cache hit replays exactly the bytes a regeneration would
// produce.
//
// This test runs the full matrix and asserts byte-identity of the
// campaign CSV and the merged telemetry artifacts (metrics JSON, trace
// JSON) across `jobs` for every (seed, fault profile) cell. It
// subsumes the single jobs-1-vs-8 spot check test_obs.cpp carries.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/analyses.h"
#include "core/hispar.h"
#include "core/list_build.h"
#include "core/measurement.h"
#include "core/serialization.h"
#include "core/session.h"
#include "core/vantage.h"
#include "net/outage.h"
#include "net/vantage_profile.h"
#include "obs/trace.h"

namespace {

using namespace hispar;

struct RunBytes {
  std::string csv;
  std::string metrics;
  std::string trace;
};

class DeterminismMatrixTest : public ::testing::Test {
 protected:
  DeterminismMatrixTest()
      : web_({150, 37, 300, false}), toplists_(web_), engine_(web_) {
    core::HisparBuilder builder(web_, toplists_, engine_);
    core::HisparConfig config;
    config.target_sites = 12;
    config.urls_per_site = 6;  // small sets keep the matrix fast
    config.min_internal_results = 4;
    list_ = builder.build(config, 0);
  }

  RunBytes run(std::uint64_t seed, std::size_t jobs,
               const std::string& fault_profile,
               const std::string& chaos_profile = "none") {
    core::CampaignConfig config;
    config.landing_loads = 3;
    config.seed = seed;
    config.jobs = jobs;
    config.fault_profile = net::FaultProfile::parse(fault_profile);
    config.chaos = net::OutageSchedule::parse(chaos_profile);
    config.observability.enabled = true;
    core::MeasurementCampaign campaign(web_, config);
    const auto sites = campaign.run(list_);

    RunBytes bytes;
    std::ostringstream csv;
    core::write_measure_csv(csv, sites);
    bytes.csv = csv.str();
    std::ostringstream metrics;
    campaign.telemetry().metrics.write_json(metrics);
    bytes.metrics = metrics.str();
    std::ostringstream trace;
    obs::write_chrome_trace(trace, campaign.telemetry().spans);
    bytes.trace = trace.str();
    return bytes;
  }

  web::SyntheticWeb web_;
  toplist::TopListFactory toplists_;
  search::SearchEngine engine_;
  core::HisparList list_;
};

TEST_F(DeterminismMatrixTest, JobsNeverChangeAnyArtifactByte) {
  const std::uint64_t seeds[] = {20200312u, 7u, 99u};
  const std::size_t jobs[] = {1, 2, 8};
  const std::string profiles[] = {"none", "uniform:0.05"};

  for (const std::uint64_t seed : seeds) {
    for (const std::string& profile : profiles) {
      const RunBytes reference = run(seed, jobs[0], profile);
      // A fault-free cell must actually be fault-free and a faulty cell
      // must actually inject: otherwise the matrix quietly tests the
      // same thing twice.
      if (profile == "none")
        EXPECT_EQ(reference.metrics.find("faults.injected"),
                  std::string::npos);
      else
        EXPECT_NE(reference.metrics.find("faults.injected"),
                  std::string::npos)
            << "seed " << seed << ": fault profile injected nothing";
      for (std::size_t i = 1; i < std::size(jobs); ++i) {
        const RunBytes other = run(seed, jobs[i], profile);
        const std::string cell = "seed " + std::to_string(seed) + ", " +
                                 profile + ", jobs " +
                                 std::to_string(jobs[i]) + " vs 1";
        EXPECT_EQ(reference.csv, other.csv) << "CSV differs: " << cell;
        EXPECT_EQ(reference.metrics, other.metrics)
            << "metrics JSON differs: " << cell;
        EXPECT_EQ(reference.trace, other.trace)
            << "trace JSON differs: " << cell;
      }
    }
  }
}

// The chaos axis: a correlated-outage schedule arms the whole defense
// layer (per-shard breakers, hedged lookups, deadline budgets), all of
// which must stay keyed off the virtual clock and the campaign seed —
// never off scheduling — so `jobs` still changes no artifact byte.
// Runs both alone and stacked on background faults (the soak harness's
// hardest cell: chaos strikes only where the base fault didn't).
TEST_F(DeterminismMatrixTest, JobsNeverChangeAnyArtifactByteUnderChaos) {
  const std::uint64_t seeds[] = {20200312u, 7u};
  const std::size_t jobs[] = {1, 2, 8};
  const std::string profiles[] = {"none", "uniform:0.05"};
  // Explicit windows open at t=0 so these short campaigns (shard
  // clocks end after tens of virtual seconds) are guaranteed strikes;
  // the Markov CDN rule exercises drawn windows without the cell
  // depending on one landing early.
  const std::string chaos =
      "origin:domain=" + list_.sets.front().domain +
      ",start_s=0,dur_s=1e6,kind=truncation,sev=0.8;"
      "resolver:start_s=2,dur_s=20,kind=dns_timeout,sev=0.6;"
      "cdn:provider=0,mtbf_s=20,mttr_s=10,kind=stall,sev=0.9";

  for (const std::uint64_t seed : seeds) {
    for (const std::string& profile : profiles) {
      const RunBytes reference = run(seed, jobs[0], profile, chaos);
      EXPECT_NE(reference.metrics.find("chaos.injected."), std::string::npos)
          << "seed " << seed << ": chaos schedule struck nothing";
      for (std::size_t i = 1; i < std::size(jobs); ++i) {
        const RunBytes other = run(seed, jobs[i], profile, chaos);
        const std::string cell = "seed " + std::to_string(seed) + ", " +
                                 profile + " + chaos, jobs " +
                                 std::to_string(jobs[i]) + " vs 1";
        EXPECT_EQ(reference.csv, other.csv) << "CSV differs: " << cell;
        EXPECT_EQ(reference.metrics, other.metrics)
            << "metrics JSON differs: " << cell;
        EXPECT_EQ(reference.trace, other.trace)
            << "trace JSON differs: " << cell;
      }
    }
  }
}

// The same contract for the list-build campaign: `jobs` never changes
// a byte of the weekly lists or the merged telemetry, fault-free or
// faulty, for several seeds.
TEST_F(DeterminismMatrixTest, ListBuildJobsNeverChangeAnyArtifactByte) {
  const std::uint64_t seeds[] = {20200312u, 7u, 99u};
  const std::size_t jobs[] = {1, 2, 8};
  const std::string profiles[] = {"none", "uniform:0.08"};

  const auto run_build = [&](std::uint64_t seed, std::size_t jobs_n,
                             const std::string& profile) {
    core::ListBuildConfig config;
    config.list.target_sites = 12;
    config.list.urls_per_site = 6;
    config.list.min_internal_results = 4;
    config.weeks = 2;
    config.seed = seed;
    config.jobs = jobs_n;
    config.fault_profile = net::SearchFaultProfile::parse(profile);
    config.observability.enabled = true;
    core::ListBuildCampaign campaign(web_, toplists_, config);
    const core::ListBuildResult result = campaign.run();

    RunBytes bytes;
    for (const auto& list : result.lists) bytes.csv += core::to_csv(list);
    std::ostringstream metrics;
    campaign.telemetry().metrics.write_json(metrics);
    bytes.metrics = metrics.str();
    std::ostringstream trace;
    obs::write_chrome_trace(trace, campaign.telemetry().spans);
    bytes.trace = trace.str();
    return bytes;
  };

  for (const std::uint64_t seed : seeds) {
    for (const std::string& profile : profiles) {
      const RunBytes reference = run_build(seed, jobs[0], profile);
      if (profile == "none")
        EXPECT_EQ(reference.metrics.find("search.faults.injected"),
                  std::string::npos);
      else
        EXPECT_NE(reference.metrics.find("search.faults.injected"),
                  std::string::npos)
            << "seed " << seed << ": fault profile injected nothing";
      for (std::size_t i = 1; i < std::size(jobs); ++i) {
        const RunBytes other = run_build(seed, jobs[i], profile);
        const std::string cell = "seed " + std::to_string(seed) + ", " +
                                 profile + ", jobs " +
                                 std::to_string(jobs[i]) + " vs 1";
        EXPECT_EQ(reference.csv, other.csv) << "lists differ: " << cell;
        EXPECT_EQ(reference.metrics, other.metrics)
            << "metrics JSON differs: " << cell;
        EXPECT_EQ(reference.trace, other.trace)
            << "trace JSON differs: " << cell;
      }
    }
  }
}

// The vantage axis: the multi-vantage engine schedules (vantage, shard)
// cells on a shared worker pool, so the jobs contract must survive
// cross-vantage concurrency for every vantage count — including the
// degenerate 1-vantage case that must stay byte-identical to the
// historical engine — with and without a chaos schedule arming the
// defense layer inside every cell.
TEST_F(DeterminismMatrixTest, JobsNeverChangeMultiVantageArtifactBytes) {
  const std::size_t vantage_counts[] = {1, 3};
  const std::size_t jobs[] = {1, 2, 8};
  // Explicit windows open at t=0 so strikes are guaranteed in these
  // short campaigns (see the chaos axis above).
  const std::string chaos_specs[] = {
      "", "origin:domain=" + list_.sets.front().domain +
              ",start_s=0,dur_s=1e6,kind=truncation,sev=0.8;"
              "cdn:provider=0,mtbf_s=20,mttr_s=10,kind=stall,sev=0.9"};

  const auto run_vantages = [&](std::size_t vantages, std::size_t jobs_n,
                                const std::string& chaos) {
    core::VantageCampaignConfig config;
    config.base.landing_loads = 3;
    config.base.jobs = jobs_n;
    config.base.shards = 4;
    config.base.fault_profile = net::FaultProfile::parse("uniform:0.05");
    if (!chaos.empty())
      config.base.chaos = net::OutageSchedule::parse(chaos);
    config.base.observability.enabled = true;
    config.profiles = net::VantageProfile::default_vantages(vantages);
    core::VantageCampaign campaign(web_, config);
    const auto result = campaign.run(list_);

    RunBytes bytes;
    for (const auto& observations : result.observations) {
      std::ostringstream csv;
      core::write_measure_csv(csv, observations);
      bytes.csv += csv.str();
    }
    std::ostringstream metrics;
    campaign.telemetry().metrics.write_json(metrics);
    bytes.metrics = metrics.str();
    std::ostringstream trace;
    obs::write_chrome_trace(trace, campaign.telemetry().spans);
    bytes.trace = trace.str();
    return bytes;
  };

  for (const std::size_t vantages : vantage_counts) {
    for (const std::string& chaos : chaos_specs) {
      const RunBytes reference = run_vantages(vantages, jobs[0], chaos);
      if (!chaos.empty()) {
        EXPECT_NE(reference.metrics.find("chaos.injected."),
                  std::string::npos)
            << vantages << " vantages: chaos schedule struck nothing";
      }
      for (std::size_t i = 1; i < std::size(jobs); ++i) {
        const RunBytes other = run_vantages(vantages, jobs[i], chaos);
        const std::string cell =
            std::to_string(vantages) + " vantages, " +
            (chaos.empty() ? "no chaos" : "chaos") + ", jobs " +
            std::to_string(jobs[i]) + " vs 1";
        EXPECT_EQ(reference.csv, other.csv) << "CSV differs: " << cell;
        EXPECT_EQ(reference.metrics, other.metrics)
            << "metrics JSON differs: " << cell;
        EXPECT_EQ(reference.trace, other.trace)
            << "trace JSON differs: " << cell;
      }
    }
  }
}

// The sessions axis: the warm browsing-session replay threads mutable
// client state (HTTP cache, DNS answers, keep-alive clocks) across a
// site's pages, but that state is session-private and every
// fault/chaos/load stream stays keyed by (seed, domain, page, attempt)
// — so `jobs` still changes no artifact byte, with faults and chaos
// stacked on. Covers the warm-hits CSV alongside the shared artifacts.
TEST_F(DeterminismMatrixTest, JobsNeverChangeSessionArtifactBytes) {
  const std::uint64_t seeds[] = {20200312u, 7u};
  const std::size_t jobs[] = {1, 2, 8};
  const std::string chaos_specs[] = {
      "none", "resolver:start_s=2,dur_s=20,kind=dns_timeout,sev=0.6"};

  const auto run_sessions = [&](std::uint64_t seed, std::size_t jobs_n,
                                const std::string& chaos) {
    core::SessionConfig config;
    config.base.seed = seed;
    config.base.jobs = jobs_n;
    config.base.fault_profile = net::FaultProfile::parse("uniform:0.05");
    config.base.chaos = net::OutageSchedule::parse(chaos);
    config.base.observability.enabled = true;
    config.session_len = 3;
    core::SessionCampaign campaign(web_, config);
    const auto sites = campaign.run(list_);

    RunBytes bytes;
    std::ostringstream csv;
    core::write_measure_csv(csv, sites);
    core::write_warm_hits_csv(csv, sites, campaign.cache_stats());
    bytes.csv = csv.str();
    std::ostringstream metrics;
    campaign.telemetry().metrics.write_json(metrics);
    bytes.metrics = metrics.str();
    std::ostringstream trace;
    obs::write_chrome_trace(trace, campaign.telemetry().spans);
    bytes.trace = trace.str();
    return bytes;
  };

  for (const std::uint64_t seed : seeds) {
    for (const std::string& chaos : chaos_specs) {
      const RunBytes reference = run_sessions(seed, jobs[0], chaos);
      EXPECT_NE(reference.metrics.find("faults.injected"), std::string::npos)
          << "seed " << seed << ": fault profile injected nothing";
      for (std::size_t i = 1; i < std::size(jobs); ++i) {
        const RunBytes other = run_sessions(seed, jobs[i], chaos);
        const std::string cell = "seed " + std::to_string(seed) +
                                 ", chaos " + chaos + ", jobs " +
                                 std::to_string(jobs[i]) + " vs 1";
        EXPECT_EQ(reference.csv, other.csv)
            << "session CSVs differ: " << cell;
        EXPECT_EQ(reference.metrics, other.metrics)
            << "metrics JSON differs: " << cell;
        EXPECT_EQ(reference.trace, other.trace)
            << "trace JSON differs: " << cell;
      }
    }
  }
}

TEST_F(DeterminismMatrixTest, SeedAndProfileDoChangeTheBytes) {
  // Sanity inverse: the matrix axes are live — different seeds or fault
  // profiles must not collapse onto the same artifact bytes.
  const RunBytes a = run(20200312u, 1, "none");
  const RunBytes b = run(7u, 1, "none");
  const RunBytes c = run(20200312u, 1, "uniform:0.05");
  EXPECT_NE(a.csv, b.csv);
  EXPECT_NE(a.csv, c.csv);
}

}  // namespace
