// End-to-end: synthetic web -> bootstrap list -> search engine ->
// Hispar -> measurement campaign -> the paper's headline directions.
// This is the tests' miniature of the full bench pipeline.
#include <gtest/gtest.h>

#include "core/analyses.h"
#include "core/hispar.h"
#include "core/measurement.h"

namespace {

using namespace hispar;

class IntegrationTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kSites = 120;

  static const std::vector<core::SiteObservation>& sites() {
    static const auto observations = [] {
      web::SyntheticWebConfig web_config;
      web_config.site_count = 600;
      web_config.seed = 2020;
      static web::SyntheticWeb web(web_config);
      toplist::TopListFactory toplists(web);
      search::SearchEngine engine(web);
      core::HisparBuilder builder(web, toplists, engine);
      core::HisparConfig config;
      config.target_sites = kSites;
      config.urls_per_site = 12;
      const auto list = builder.build(config, 0);
      core::CampaignConfig campaign_config;
      campaign_config.landing_loads = 4;
      core::MeasurementCampaign campaign(web, campaign_config);
      return campaign.run(list);
    }();
    return observations;
  }
};

TEST_F(IntegrationTest, ProducesOneObservationPerSite) {
  EXPECT_EQ(sites().size(), kSites);
}

TEST_F(IntegrationTest, LandingPagesAreLargerForMostSites) {
  const auto comparison = core::compare_metric(sites(), core::metric::bytes);
  EXPECT_GT(comparison.fraction_landing_greater(), 0.5);
}

TEST_F(IntegrationTest, LandingPagesHaveMoreObjectsForMostSites) {
  const auto comparison =
      core::compare_metric(sites(), core::metric::objects);
  EXPECT_GT(comparison.fraction_landing_greater(), 0.5);
}

TEST_F(IntegrationTest, LandingPagesLoadFasterForMostTopSites) {
  // Fig. 2c: despite being heavier, landing pages win on PLT,
  // especially at top ranks.
  const auto comparison = core::compare_metric(sites(), core::metric::plt_ms);
  EXPECT_LT(comparison.fraction_landing_greater(), 0.5);
}

TEST_F(IntegrationTest, LandingPagesContactMoreOrigins) {
  const auto comparison =
      core::compare_metric(sites(), core::metric::unique_domains);
  EXPECT_GT(comparison.fraction_landing_greater(), 0.55);
  const auto ks =
      core::ks_landing_vs_internal(sites(), core::metric::unique_domains);
  EXPECT_LT(ks.p_value, 0.01);  // the page types differ significantly
}

TEST_F(IntegrationTest, LandingPagesPerformMoreHandshakes) {
  const auto comparison =
      core::compare_metric(sites(), core::metric::handshakes);
  EXPECT_GT(comparison.geomean_ratio(), 1.05);
}

TEST_F(IntegrationTest, InternalObjectsWaitLonger) {
  const auto waits = core::wait_times(sites());
  ASSERT_FALSE(waits.landing_ms.empty());
  ASSERT_FALSE(waits.internal_ms.empty());
  EXPECT_GT(util::mean(waits.internal_ms), util::mean(waits.landing_ms));
}

TEST_F(IntegrationTest, LandingXCacheHitRatioIsHigher) {
  const auto summary = core::x_cache_summary(sites());
  EXPECT_GT(summary.landing_hit_ratio, summary.internal_hit_ratio);
}

TEST_F(IntegrationTest, InternalPagesBringUnseenThirdParties) {
  const auto unseen = core::unseen_third_parties(sites());
  EXPECT_GT(util::median(unseen), 3.0);
}

TEST_F(IntegrationTest, TrackingSkewsTowardLandingPages) {
  const auto landing =
      core::landing_values(sites(), core::metric::tracking_requests);
  const auto internal =
      core::internal_values(sites(), core::metric::tracking_requests);
  EXPECT_GT(util::quantile(landing, 0.8), util::quantile(internal, 0.8));
}

TEST_F(IntegrationTest, HintsAreMoreCommonOnLandingPages) {
  const auto usage = core::hint_usage(sites());
  EXPECT_GT(usage.landing_with_hints, 1.0 - usage.internal_without_hints);
}

}  // namespace
