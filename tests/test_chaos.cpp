// Chaos engine contract tests.
//
// Four layers, mirroring src/net/outage.h:
//  * grammar — the --chaos-profile spec parses field-for-field, the
//    canonical str() round-trips (it feeds checkpoint digests), and
//    every malformed spec fails fast instead of clamping;
//  * windows — explicit rules yield exactly their window, Markov rules
//    draw the same windows for the same (seed, scope, ordinal) keys on
//    every run, and rules sharing a scope share one incident clock;
//  * breakers — the closed/open/half-open state machine transitions on
//    the documented thresholds over virtual time, with no RNG;
//  * campaigns — an empty schedule is a true no-op (same bytes, same
//    checkpoint digest), while an armed schedule keeps the --jobs and
//    kill+resume byte-identity guarantees and surfaces its strikes in
//    telemetry.
//
// The retry-budget edge (`--max-retries 0` means exactly one attempt,
// fault or chaos notwithstanding) lives here too, for both the measure
// and list-build campaigns.
#include "net/outage.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/hispar.h"
#include "core/list_build.h"
#include "core/measurement.h"
#include "core/serialization.h"
#include "net/faults.h"
#include "obs/trace.h"

namespace {

using namespace hispar;
using net::BreakerConfig;
using net::BreakerSet;
using net::BreakerState;
using net::CircuitBreaker;
using net::FaultKind;
using net::OutagePlan;
using net::OutageRule;
using net::OutageSchedule;
using net::OutageScope;
using net::SearchFaultKind;

// --- Grammar ---

TEST(ChaosGrammarTest, NoneParsesToAnEmptySchedule) {
  const OutageSchedule none = OutageSchedule::parse("none");
  EXPECT_FALSE(none.enabled());
  EXPECT_TRUE(none.rules().empty());
  EXPECT_EQ(none.str(), "none");
  EXPECT_EQ(OutageSchedule().str(), "none");
}

TEST(ChaosGrammarTest, IssueExampleParsesFieldForField) {
  const OutageSchedule schedule = OutageSchedule::parse(
      "cdn:provider=2,start_s=120,dur_s=300,kind=http_5xx,sev=0.9");
  ASSERT_EQ(schedule.rules().size(), 1u);
  const OutageRule& rule = schedule.rules()[0];
  EXPECT_EQ(rule.scope, OutageScope::kCdnProvider);
  EXPECT_EQ(rule.provider, 2);
  EXPECT_EQ(rule.kind, FaultKind::kHttp5xx);
  EXPECT_DOUBLE_EQ(rule.severity, 0.9);
  EXPECT_DOUBLE_EQ(rule.start_s, 120.0);
  EXPECT_DOUBLE_EQ(rule.dur_s, 300.0);
  EXPECT_FALSE(rule.markov());
  EXPECT_EQ(rule.scope_key(), "cdn:2");
}

TEST(ChaosGrammarTest, MultiRuleSpecRoundTripsThroughStr) {
  const std::string spec =
      "origin:domain=example.com,mtbf_s=200,mttr_s=100,kind=truncation,"
      "sev=0.8;"
      "resolver:start_s=0,dur_s=60,kind=dns_timeout,sev=0.7;"
      "search:mtbf_s=600,mttr_s=120,kind=rate_limited,sev=0.5";
  const OutageSchedule schedule = OutageSchedule::parse(spec);
  ASSERT_EQ(schedule.rules().size(), 3u);
  EXPECT_EQ(schedule.rules()[0].scope_key(), "origin:example.com");
  EXPECT_TRUE(schedule.rules()[0].markov());
  EXPECT_EQ(schedule.rules()[1].scope_key(), "resolver");
  EXPECT_EQ(schedule.rules()[1].kind, FaultKind::kDnsTimeout);
  EXPECT_EQ(schedule.rules()[2].scope_key(), "search");
  EXPECT_EQ(schedule.rules()[2].search_kind, SearchFaultKind::kRateLimited);
  // parse(str()) is the identity on the canonical form — the canonical
  // string joins checkpoint config digests, so it must be stable.
  const std::string canonical = schedule.str();
  EXPECT_EQ(OutageSchedule::parse(canonical).str(), canonical);
}

TEST(ChaosGrammarTest, MalformedSpecsFailFast) {
  const char* bad[] = {
      "",                                             // empty (use "none")
      "origin",                                       // no rule body
      "meteor:start_s=0,dur_s=5",                     // unknown scope
      "resolver:start_s=0,dur_s=5,color=red",         // unknown key
      "resolver:start_s=0,dur_s=5,kind",              // key without value
      "resolver:start_s=0,dur_s=5,kind=http_5xx",     // non-DNS resolver kind
      "resolver:start_s=0,dur_s=5,kind=bogus",        // unknown kind
      "search:start_s=0,dur_s=5,kind=http_5xx",       // page kind on search
      "cdn:start_s=0,dur_s=5",                        // cdn without provider
      "cdn:provider=1.5,start_s=0,dur_s=5",           // fractional provider
      "cdn:provider=-1,start_s=0,dur_s=5",            // negative provider
      "origin:start_s=0,dur_s=5",                     // origin without domain
      "origin:domain=,start_s=0,dur_s=5",             // empty domain
      "cdn:provider=0,domain=a.com,start_s=0,dur_s=5",  // domain on cdn
      "resolver:kind=dns_timeout",                    // no window shape
      "resolver:start_s=0,dur_s=5,mtbf_s=9,mttr_s=3",  // both shapes
      "resolver:start_s=-5,dur_s=5",                  // negative start
      "resolver:start_s=0,dur_s=0",                   // zero duration
      "resolver:start_s=0,dur_s=-3",                  // negative duration
      "resolver:mtbf_s=10",                           // mtbf without mttr
      "resolver:mtbf_s=-10,mttr_s=5",                 // negative mtbf
      "resolver:mtbf_s=10,mttr_s=5,horizon_s=-1",     // negative horizon
      "resolver:mtbf_s=10,mttr_s=5,horizon_s=nan",    // NaN horizon
      "resolver:start_s=nan,dur_s=5",                 // NaN number
      "resolver:start_s=inf,dur_s=5",                 // infinite number
      "resolver:start_s=abc,dur_s=5",                 // unparsable number
      "resolver:start_s=5x,dur_s=5",                  // trailing garbage
      "resolver:start_s=0,dur_s=5,sev=0",             // sev outside (0,1]
      "resolver:start_s=0,dur_s=5,sev=1.5",
      "resolver:start_s=0,dur_s=5,sev=-0.1",
      "resolver:start_s=0,dur_s=5,sev=nan",
  };
  for (const char* spec : bad)
    EXPECT_THROW(OutageSchedule::parse(spec), std::invalid_argument)
        << "accepted: '" << spec << "'";
}

// Satellite: the base fault profiles share the fail-fast philosophy. A
// profile whose per-class rates sum past 1 cannot be a probability
// split over one fetch, so parse() must reject it (along with NaN,
// which fails every ordering and would otherwise slip through
// range checks written as `rate < 0 || rate > 1`).
TEST(ChaosGrammarTest, FaultProfilesRejectOverUnityTotalRateAndNaN) {
  EXPECT_THROW(net::FaultProfile::parse("dns_timeout=0.6,http_5xx=0.6"),
               std::invalid_argument);
  EXPECT_THROW(
      net::SearchFaultProfile::parse("query_timeout=0.7,rate_limited=0.5"),
      std::invalid_argument);
  EXPECT_THROW(net::FaultProfile::parse("dns_timeout=nan"),
               std::invalid_argument);
  EXPECT_THROW(net::SearchFaultProfile::parse("query_timeout=nan"),
               std::invalid_argument);
  // A total of exactly 1.0 is a legal certain-failure profile.
  EXPECT_NO_THROW(net::FaultProfile::parse("dns_timeout=0.5,http_5xx=0.5"));
}

// --- Windows ---

TEST(ChaosWindowTest, ExplicitRuleYieldsExactlyItsHalfOpenWindow) {
  const OutagePlan plan(
      OutageSchedule::parse("resolver:start_s=120,dur_s=300,kind=dns_timeout"),
      /*seed=*/7);
  ASSERT_EQ(plan.rules().size(), 1u);
  const auto& rule = plan.rules()[0];
  ASSERT_EQ(rule.windows.size(), 1u);
  EXPECT_DOUBLE_EQ(rule.windows[0].start_s, 120.0);
  EXPECT_DOUBLE_EQ(rule.windows[0].end_s, 420.0);
  EXPECT_FALSE(rule.active(119.9));
  EXPECT_TRUE(rule.active(120.0));
  EXPECT_TRUE(rule.active(419.9));
  EXPECT_FALSE(rule.active(420.0));  // half-open: end excluded
  EXPECT_FALSE(rule.active(1e9));
}

TEST(ChaosWindowTest, MarkovWindowsAreKeyedBySeedOrderedAndBounded) {
  const OutageSchedule schedule = OutageSchedule::parse(
      "origin:domain=a.com,mtbf_s=300,mttr_s=60,kind=http_5xx,"
      "horizon_s=7200");
  const OutagePlan first(schedule, 42);
  const OutagePlan again(schedule, 42);
  const OutagePlan other(schedule, 43);

  ASSERT_EQ(first.rules().size(), 1u);
  const auto& windows = first.rules()[0].windows;
  ASSERT_FALSE(windows.empty()) << "7200s horizon with mtbf 300 drew nothing";

  // Ordered, non-overlapping, positive-length, starting inside the
  // horizon (a window may *end* past it — incidents do not stop at
  // midnight).
  double previous_end = 0.0;
  for (const auto& window : windows) {
    EXPECT_GE(window.start_s, previous_end);
    EXPECT_GT(window.end_s, window.start_s);
    EXPECT_LT(window.start_s, 7200.0);
    previous_end = window.end_s;
  }

  // Same seed: byte-equal schedule. Different seed: a different one.
  ASSERT_EQ(again.rules()[0].windows.size(), windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_DOUBLE_EQ(again.rules()[0].windows[i].start_s, windows[i].start_s);
    EXPECT_DOUBLE_EQ(again.rules()[0].windows[i].end_s, windows[i].end_s);
  }
  const auto& shifted = other.rules()[0].windows;
  bool any_difference = shifted.size() != windows.size();
  for (std::size_t i = 0; !any_difference && i < windows.size(); ++i)
    any_difference = shifted[i].start_s != windows[i].start_s;
  EXPECT_TRUE(any_difference) << "seed does not key the Markov windows";
}

TEST(ChaosWindowTest, RulesSharingAScopeShareOneIncidentClock) {
  // Two rules, same blast radius, different strike kinds: the windows
  // must coincide — one incident clock per scope, not per rule.
  const OutagePlan plan(
      OutageSchedule::parse(
          "origin:domain=a.com,mtbf_s=240,mttr_s=60,kind=http_5xx;"
          "origin:domain=a.com,mtbf_s=240,mttr_s=60,kind=stall"),
      /*seed=*/11);
  ASSERT_EQ(plan.rules().size(), 2u);
  const auto& a = plan.rules()[0].windows;
  const auto& b = plan.rules()[1].windows;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].start_s, b[i].start_s);
    EXPECT_DOUBLE_EQ(a[i].end_s, b[i].end_s);
  }
}

// --- Circuit breakers ---

TEST(CircuitBreakerTest, OpensOnConsecutiveFailuresAndCoolsDown) {
  BreakerConfig config;
  config.failure_threshold = 3;
  config.cooldown_s = 30.0;
  CircuitBreaker breaker(config);

  // Interleaved successes reset the consecutive count: no trip.
  breaker.record_failure(1.0);
  breaker.record_failure(2.0);
  breaker.record_success(3.0);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  EXPECT_EQ(breaker.state(3.0), BreakerState::kClosed);

  // Three consecutive failures trip it open at the third.
  breaker.record_failure(4.0);
  breaker.record_failure(5.0);
  EXPECT_TRUE(breaker.allow(5.5));  // still closed at two failures
  breaker.record_failure(6.0);
  EXPECT_EQ(breaker.state(6.0), BreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_DOUBLE_EQ(breaker.opened_at_s(), 6.0);

  // While open, allow() denies and counts.
  EXPECT_FALSE(breaker.allow(10.0));
  EXPECT_FALSE(breaker.allow(35.9));
  EXPECT_EQ(breaker.denials(), 2u);

  // Past the cooldown the next allow() admits a half-open probe.
  EXPECT_EQ(breaker.state(36.0), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow(36.0));
  // The probe fails: back to open, cooldown restarts from now.
  breaker.record_failure(36.5);
  EXPECT_EQ(breaker.state(36.5), BreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  EXPECT_FALSE(breaker.allow(60.0));  // old deadline would have passed

  // Second probe succeeds: closed, failure count cleared.
  EXPECT_TRUE(breaker.allow(70.0));
  breaker.record_success(70.5);
  EXPECT_EQ(breaker.state(70.5), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  // One lone failure after recovery does not re-trip.
  breaker.record_failure(71.0);
  EXPECT_EQ(breaker.state(71.0), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, BreakerSetRecordsInKeyOrderAndRestores) {
  BreakerSet set;
  set.at("origin:b.com").record_failure(1.0);
  for (int i = 0; i < 5; ++i) set.at("cdn:1").record_failure(double(i));
  EXPECT_FALSE(set.at("cdn:1").allow(5.0));
  set.at("search");  // created closed, still serialized

  const auto records = set.records();
  ASSERT_EQ(records.size(), 3u);  // std::map: lexicographic key order
  EXPECT_EQ(records[0].key, "cdn:1");
  EXPECT_EQ(records[0].state, BreakerState::kOpen);
  EXPECT_EQ(records[0].times_opened, 1u);
  EXPECT_EQ(records[0].denials, 1u);
  EXPECT_EQ(records[1].key, "origin:b.com");
  EXPECT_EQ(records[1].consecutive_failures, 1);
  EXPECT_EQ(records[2].key, "search");
  EXPECT_EQ(records[2].state, BreakerState::kClosed);
  EXPECT_EQ(set.total_times_opened(), 1u);
  EXPECT_EQ(set.total_denials(), 1u);

  // restore() round-trips through records(): the spliced breaker makes
  // the same decisions as the original.
  BreakerSet revived;
  for (const auto& record : records)
    revived.at(record.key).restore(record.state, record.consecutive_failures,
                                   record.opened_at_s, record.times_opened,
                                   record.denials);
  const auto echoed = revived.records();
  ASSERT_EQ(echoed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(echoed[i].key, records[i].key);
    EXPECT_EQ(echoed[i].state, records[i].state);
    EXPECT_EQ(echoed[i].consecutive_failures, records[i].consecutive_failures);
    EXPECT_EQ(echoed[i].opened_at_s, records[i].opened_at_s);
    EXPECT_EQ(echoed[i].times_opened, records[i].times_opened);
    EXPECT_EQ(echoed[i].denials, records[i].denials);
  }
  EXPECT_FALSE(revived.at("cdn:1").allow(5.0));  // still open, still denying
}

// --- Campaign-level contracts ---

class ChaosCampaignTest : public ::testing::Test {
 protected:
  ChaosCampaignTest()
      : web_({150, 37, 300, false}), toplists_(web_), engine_(web_) {}

  core::HisparList build_list(std::size_t sites) {
    core::HisparBuilder builder(web_, toplists_, engine_);
    core::HisparConfig config;
    config.target_sites = sites;
    config.urls_per_site = 6;  // small sets keep the test fast
    config.min_internal_results = 4;
    return builder.build(config, 0);
  }

  // A storm touching every page-scope blast radius; `victim` anchors
  // the origin rule on a domain the campaign actually visits. The
  // origin and resolver windows open at t=0 so small test campaigns
  // (whose shard clocks end after a few tens of virtual seconds) are
  // guaranteed strikes; the Markov CDN rule adds coverage of drawn
  // windows without the test depending on one landing early.
  static std::string storm_spec(const std::string& victim) {
    return "origin:domain=" + victim +
           ",start_s=0,dur_s=1e6,kind=truncation,sev=0.8;"
           "resolver:start_s=2,dur_s=20,kind=dns_timeout,sev=0.6;"
           "cdn:provider=0,mtbf_s=20,mttr_s=10,kind=stall,sev=0.9";
  }

  struct RunBytes {
    std::string csv;
    std::string metrics;
    std::string trace;
  };

  RunBytes run(const core::HisparList& list, core::CampaignConfig config) {
    config.observability.enabled = true;
    core::MeasurementCampaign campaign(web_, config);
    const auto sites = campaign.run(list);
    RunBytes bytes;
    std::ostringstream csv;
    core::write_measure_csv(csv, sites);
    bytes.csv = csv.str();
    std::ostringstream metrics;
    campaign.telemetry().metrics.write_json(metrics);
    bytes.metrics = metrics.str();
    std::ostringstream trace;
    obs::write_chrome_trace(trace, campaign.telemetry().spans);
    bytes.trace = trace.str();
    return bytes;
  }

  static std::string temp_path(const char* name) {
    return std::string("/tmp/hispar_chaos_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + name;
  }

  web::SyntheticWeb web_;
  toplist::TopListFactory toplists_;
  search::SearchEngine engine_;
};

TEST_F(ChaosCampaignTest, EmptyScheduleIsATrueNoOp) {
  const auto list = build_list(8);
  core::CampaignConfig plain;
  plain.landing_loads = 2;
  core::CampaignConfig disarmed = plain;
  disarmed.chaos = OutageSchedule::parse("none");

  const RunBytes a = run(list, plain);
  const RunBytes b = run(list, disarmed);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);
  // No chaos or breaker telemetry leaks into a chaos-free run, and the
  // checkpoint digest gains its |chaos| component only when armed.
  EXPECT_EQ(a.metrics.find("chaos."), std::string::npos);
  EXPECT_EQ(a.metrics.find("breaker."), std::string::npos);
  core::CampaignConfig armed = plain;
  armed.chaos =
      OutageSchedule::parse("resolver:start_s=0,dur_s=60,kind=dns_timeout");
  const auto digest_of = [&](const core::CampaignConfig& config) {
    return core::MeasurementCampaign(web_, config).checkpoint_digest(list);
  };
  EXPECT_EQ(digest_of(plain), digest_of(disarmed));
  EXPECT_NE(digest_of(armed), digest_of(plain));
}

TEST_F(ChaosCampaignTest, StrikesAndDefensesSurfaceInTelemetry) {
  const auto list = build_list(10);
  core::CampaignConfig config;
  config.landing_loads = 2;
  config.chaos = OutageSchedule::parse(storm_spec(list.sets.front().domain));

  const RunBytes chaotic = run(list, config);
  core::CampaignConfig plain;
  plain.landing_loads = 2;
  const RunBytes calm = run(list, plain);

  EXPECT_NE(chaotic.csv, calm.csv) << "storm changed nothing";
  EXPECT_NE(chaotic.metrics.find("chaos.injected."), std::string::npos);
  // The defense layer is armed whenever the schedule is: every fetch
  // outcome feeds a breaker, so the scope gauge is always exported.
  EXPECT_NE(chaotic.metrics.find("breaker.scopes"), std::string::npos);
}

TEST_F(ChaosCampaignTest, JobsNeverChangeArtifactBytesUnderChaos) {
  const auto list = build_list(10);
  core::CampaignConfig config;
  config.landing_loads = 2;
  config.shards = 4;
  config.fault_profile = net::FaultProfile::uniform(0.03);
  config.chaos = OutageSchedule::parse(storm_spec(list.sets.front().domain));

  config.jobs = 1;
  const RunBytes reference = run(list, config);
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    config.jobs = jobs;
    const RunBytes other = run(list, config);
    EXPECT_EQ(reference.csv, other.csv) << "CSV differs at jobs " << jobs;
    EXPECT_EQ(reference.metrics, other.metrics)
        << "metrics differ at jobs " << jobs;
    EXPECT_EQ(reference.trace, other.trace) << "trace differs at jobs " << jobs;
  }
}

TEST_F(ChaosCampaignTest, ResumeFromKilledCampaignIsIdenticalUnderChaos) {
  const auto list = build_list(10);
  core::CampaignConfig config;
  config.landing_loads = 2;
  config.shards = 4;
  config.chaos = OutageSchedule::parse(storm_spec(list.sets.front().domain));

  const RunBytes uninterrupted = run(list, config);

  // Write a full checkpoint, then tear it mid-block the way a kill
  // would: header + first complete shard + half a line of the second.
  const std::string full_path = temp_path("full");
  std::remove(full_path.c_str());
  config.checkpoint_path = full_path;
  run(list, config);

  std::ifstream full(full_path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(full, line);) lines.push_back(line);
  full.close();
  std::size_t first_end = 0;
  for (std::size_t i = 0; i < lines.size(); ++i)
    if (lines[i].rfind("endshard,", 0) == 0) {
      first_end = i;
      break;
    }
  ASSERT_GT(first_end, 0u) << "campaign wrote no complete shard";
  ASSERT_GT(lines.size(), first_end + 2) << "need a second block to tear";

  const std::string torn_path = temp_path("torn");
  {
    std::ofstream torn(torn_path);
    for (std::size_t i = 0; i <= first_end + 1; ++i) torn << lines[i] << '\n';
    torn << lines[first_end + 2].substr(0, lines[first_end + 2].size() / 2);
  }

  config.checkpoint_path = torn_path;
  const RunBytes resumed = run(list, config);
  EXPECT_EQ(uninterrupted.csv, resumed.csv);
  EXPECT_EQ(uninterrupted.metrics, resumed.metrics);
  EXPECT_EQ(uninterrupted.trace, resumed.trace);

  std::remove(full_path.c_str());
  std::remove(torn_path.c_str());
}

TEST_F(ChaosCampaignTest, MaxRetriesZeroMeansExactlyOneAttempt) {
  const auto list = build_list(6);
  core::CampaignConfig config;
  config.landing_loads = 2;
  config.max_page_retries = 0;
  config.fault_profile.dns_timeout = 1.0;
  core::MeasurementCampaign campaign(web_, config);
  const auto sites = campaign.run(list);
  for (const auto& site : sites) {
    EXPECT_TRUE(site.quarantined);
    EXPECT_EQ(site.total_retries, 0);
    for (const auto& outcome : site.outcomes) {
      EXPECT_EQ(outcome.attempts, 1);
      EXPECT_EQ(outcome.status, browser::LoadStatus::kFailed);
    }
  }
  // The same budget under chaos instead of base faults: still exactly
  // one attempt per fetch, no backoff stream consumed.
  core::CampaignConfig chaotic;
  chaotic.landing_loads = 2;
  chaotic.max_page_retries = 0;
  chaotic.chaos =
      OutageSchedule::parse("resolver:start_s=0,dur_s=1e6,kind=dns_timeout");
  core::MeasurementCampaign storm(web_, chaotic);
  for (const auto& site : storm.run(list)) {
    EXPECT_EQ(site.total_retries, 0);
    for (const auto& outcome : site.outcomes) EXPECT_EQ(outcome.attempts, 1);
  }
}

// --- List-build campaign under search-scope chaos ---

class ChaosListBuildTest : public ChaosCampaignTest {
 protected:
  core::ListBuildConfig build_config() {
    core::ListBuildConfig config;
    config.list.target_sites = 10;
    config.list.urls_per_site = 6;
    config.list.min_internal_results = 4;
    config.weeks = 2;
    config.shards = 4;
    return config;
  }

  struct BuildBytes {
    std::string lists;
    std::string metrics;
    core::ListBuildResult result;
  };

  BuildBytes run_build(core::ListBuildConfig config) {
    config.observability.enabled = true;
    core::ListBuildCampaign campaign(web_, toplists_, config);
    BuildBytes bytes;
    bytes.result = campaign.run();
    for (const auto& list : bytes.result.lists)
      bytes.lists += core::to_csv(list);
    std::ostringstream metrics;
    campaign.telemetry().metrics.write_json(metrics);
    bytes.metrics = metrics.str();
    return bytes;
  }
};

TEST_F(ChaosListBuildTest, CertainSearchOutageQuarantinesWithoutBilling) {
  core::ListBuildConfig config = build_config();
  config.chaos =
      OutageSchedule::parse("search:start_s=0,dur_s=1e7,kind=rate_limited");

  const BuildBytes bytes = run_build(config);
  for (const auto& week : bytes.result.weeks) {
    EXPECT_EQ(week.sites_accepted, 0u);
    EXPECT_GT(week.sites_quarantined, 0u);
    // Chaos strikes (and breaker fast-fails) precede the engine call:
    // an outage that kills every query must bill none.
    EXPECT_EQ(week.queries_billed, 0u);
    // Every quarantine is attributed to the striking kind.
    EXPECT_EQ(week.quarantined_by[static_cast<std::size_t>(
                  SearchFaultKind::kRateLimited)],
              week.sites_quarantined);
  }
  EXPECT_NE(bytes.metrics.find("chaos.injected."), std::string::npos);
  EXPECT_NE(bytes.metrics.find("breaker."), std::string::npos);
}

TEST_F(ChaosListBuildTest, JobsNeverChangeBuildBytesUnderChaos) {
  core::ListBuildConfig config = build_config();
  config.chaos = OutageSchedule::parse(
      "search:start_s=0,dur_s=1e6,kind=query_timeout,sev=0.5");

  config.jobs = 1;
  const BuildBytes reference = run_build(config);
  EXPECT_NE(reference.metrics.find("chaos.injected."), std::string::npos)
      << "chaos profile injected nothing; the cell tests nothing";
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    config.jobs = jobs;
    const BuildBytes other = run_build(config);
    EXPECT_EQ(reference.lists, other.lists) << "lists differ at jobs " << jobs;
    EXPECT_EQ(reference.metrics, other.metrics)
        << "metrics differ at jobs " << jobs;
  }
}

TEST_F(ChaosListBuildTest, CheckpointExtensionIsIdenticalUnderChaos) {
  core::ListBuildConfig config = build_config();
  config.chaos = OutageSchedule::parse(
      "search:start_s=0,dur_s=1e6,kind=query_timeout,sev=0.5");

  const BuildBytes uninterrupted = run_build(config);

  // Week 1 runs to a checkpoint; the "resumed" campaign extends the
  // same file to week 2. Splice + extension must reproduce the
  // uninterrupted bytes — breaker and chaos state are rebuilt per
  // week, never carried across the checkpoint boundary.
  const std::string path = temp_path("weekly");
  std::remove(path.c_str());
  core::ListBuildConfig first = config;
  first.weeks = 1;
  first.checkpoint_path = path;
  run_build(first);

  core::ListBuildConfig second = config;
  second.checkpoint_path = path;
  const BuildBytes resumed = run_build(second);
  EXPECT_EQ(uninterrupted.lists, resumed.lists);
  EXPECT_EQ(uninterrupted.metrics, resumed.metrics);
  std::remove(path.c_str());
}

TEST_F(ChaosListBuildTest, MaxQueryRetriesZeroMeansExactlyOneAttempt) {
  core::ListBuildConfig config = build_config();
  config.max_query_retries = 0;
  config.chaos =
      OutageSchedule::parse("search:start_s=0,dur_s=1e7,kind=quota_exceeded");
  const BuildBytes bytes = run_build(config);
  for (const auto& week : bytes.result.weeks) {
    EXPECT_EQ(week.retries, 0u);
    EXPECT_GT(week.sites_quarantined, 0u);
  }
  // And with base faults instead of chaos: same single-attempt budget.
  core::ListBuildConfig faulty = build_config();
  faulty.max_query_retries = 0;
  faulty.fault_profile = net::SearchFaultProfile::uniform(0.1);
  for (const auto& week : run_build(faulty).result.weeks)
    EXPECT_EQ(week.retries, 0u);
}

}  // namespace
