#include "net/handshake.h"

#include <gtest/gtest.h>

namespace {

using namespace hispar::net;

struct HandshakeCase {
  TransportProtocol protocol;
  bool resumed;
  int expected_rtts;
};

class HandshakeRtts : public ::testing::TestWithParam<HandshakeCase> {};

TEST_P(HandshakeRtts, RoundTripsMatchSpec) {
  const auto& c = GetParam();
  EXPECT_EQ(handshake_cost(c.protocol, c.resumed).round_trips,
            c.expected_rtts)
      << to_string(c.protocol) << " resumed=" << c.resumed;
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, HandshakeRtts,
    ::testing::Values(
        // TCP (1) + TLS 1.2 (2) = 3; resumption saves one TLS RTT.
        HandshakeCase{TransportProtocol::kTcpTls12, false, 3},
        HandshakeCase{TransportProtocol::kTcpTls12, true, 2},
        // TCP (1) + TLS 1.3 (1) = 2.
        HandshakeCase{TransportProtocol::kTcpTls13, false, 2},
        HandshakeCase{TransportProtocol::kTcpTls13, true, 2},
        // TFO + TLS 1.3: resumption enables true 1-RTT.
        HandshakeCase{TransportProtocol::kTfoTls13, false, 2},
        HandshakeCase{TransportProtocol::kTfoTls13, true, 1},
        HandshakeCase{TransportProtocol::kQuic, false, 1},
        HandshakeCase{TransportProtocol::kQuic0Rtt, false, 0},
        HandshakeCase{TransportProtocol::kCleartextHttp, false, 1}));

TEST(HandshakeCostTest, RoundTripSavingProtocolsAreOrdered) {
  // §5.6: QUIC / TFO / TLS 1.3 reduce handshake round trips.
  EXPECT_LT(handshake_cost(TransportProtocol::kTcpTls13).round_trips,
            handshake_cost(TransportProtocol::kTcpTls12).round_trips);
  EXPECT_LT(handshake_cost(TransportProtocol::kQuic).round_trips,
            handshake_cost(TransportProtocol::kTcpTls13).round_trips);
  EXPECT_LT(handshake_cost(TransportProtocol::kQuic0Rtt).round_trips,
            handshake_cost(TransportProtocol::kQuic).round_trips);
}

TEST(HandshakeCostTest, CryptoCostsArePositiveForTls) {
  EXPECT_GT(handshake_cost(TransportProtocol::kTcpTls12).cpu_ms, 0.0);
  EXPECT_GT(handshake_cost(TransportProtocol::kTcpTls13).cpu_ms, 0.0);
  EXPECT_LT(handshake_cost(TransportProtocol::kCleartextHttp).cpu_ms,
            handshake_cost(TransportProtocol::kTcpTls13).cpu_ms);
}

TEST(HandshakeCostTest, NamesAreDistinct) {
  EXPECT_NE(to_string(TransportProtocol::kQuic),
            to_string(TransportProtocol::kQuic0Rtt));
  EXPECT_EQ(to_string(TransportProtocol::kTcpTls12), "tcp+tls1.2");
}

}  // namespace
