#include "browser/hb_detect.h"

#include <gtest/gtest.h>

namespace {

using namespace hispar::browser;

HarEntry entry_for(const std::string& url) {
  HarEntry entry;
  entry.url = url;
  const auto host_start = url.find("//") + 2;
  entry.host = url.substr(host_start, url.find('/', host_start) - host_start);
  return entry;
}

TEST(HbDetectorTest, TwoExchangesMeanHeaderBidding) {
  const auto detector = HbDetector::standard();
  HarLog log;
  log.entries.push_back(entry_for("https://ib.adnxs.com/ut/v3/prebid"));
  log.entries.push_back(
      entry_for("https://hbopenbid.pubmatic.com/translator"));
  const auto result = detector.analyze(log);
  EXPECT_TRUE(result.header_bidding);
  EXPECT_EQ(result.exchanges_contacted, 2u);
}

TEST(HbDetectorTest, SingleExchangeIsNotAnAuction) {
  const auto detector = HbDetector::standard();
  HarLog log;
  log.entries.push_back(entry_for("https://ib.adnxs.com/ut/v3/prebid"));
  const auto result = detector.analyze(log);
  EXPECT_FALSE(result.header_bidding);
  EXPECT_EQ(result.exchanges_contacted, 1u);
}

TEST(HbDetectorTest, PlainAdsDoNotTriggerHb) {
  const auto detector = HbDetector::standard();
  HarLog log;
  log.entries.push_back(entry_for("https://ad.doubleclick.net/adx/slot1"));
  log.entries.push_back(entry_for("https://static.criteo.net/js/ld.js"));
  const auto result = detector.analyze(log);
  EXPECT_FALSE(result.header_bidding);
  EXPECT_GE(result.ad_slots, 1u);
}

TEST(HbDetectorTest, AdSlotsCountDistinctCreatives) {
  const auto detector = HbDetector::standard();
  HarLog log;
  log.entries.push_back(entry_for("https://ads.thirdparty1.com/track/1"));
  log.entries.push_back(entry_for("https://ads.thirdparty1.com/track/2"));
  log.entries.push_back(entry_for("https://ads.thirdparty1.com/track/2"));
  const auto result = detector.analyze(log);
  EXPECT_EQ(result.ad_slots, 2u);  // duplicate URL counted once
}

TEST(HbDetectorTest, GenericBidSubdomainsMatch) {
  const auto detector = HbDetector::standard();
  HarLog log;
  log.entries.push_back(entry_for("https://bid.thirdparty5.com/track/0"));
  log.entries.push_back(entry_for("https://bid.thirdparty9.com/track/0"));
  EXPECT_TRUE(detector.analyze(log).header_bidding);
}

TEST(HbDetectorTest, EmptyLogIsClean) {
  const auto detector = HbDetector::standard();
  const auto result = detector.analyze(HarLog{});
  EXPECT_FALSE(result.header_bidding);
  EXPECT_EQ(result.ad_slots, 0u);
  EXPECT_EQ(result.exchanges_contacted, 0u);
}

TEST(HbDetectorTest, FirstPartyContentIgnored) {
  const auto detector = HbDetector::standard();
  HarLog log;
  log.entries.push_back(entry_for("https://www.example.com/asset/1"));
  log.entries.push_back(entry_for("https://img.example.com/hero.jpg"));
  const auto result = detector.analyze(log);
  EXPECT_FALSE(result.header_bidding);
  EXPECT_EQ(result.ad_slots, 0u);
}

}  // namespace
