// Multi-vantage campaign engine: profile grammar, per-vantage config
// derivation, byte-identity contracts (single vantage == historical
// campaign; kill + resume == uninterrupted run), vantage-granular
// checkpoint serialization, cross-vantage disagreement analysis, the
// multi-vantage report, and the CLI-shared fail-fast validators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/analyses.h"
#include "core/hispar.h"
#include "core/measurement.h"
#include "core/parallel.h"
#include "core/serialization.h"
#include "core/vantage.h"
#include "net/vantage_profile.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace {

using namespace hispar;

// --- VantageProfile spec grammar ---

TEST(VantageProfile, DefaultIsTheHomeVantage) {
  const auto vantages = net::VantageProfile::default_vantages(1);
  ASSERT_EQ(vantages.size(), 1u);
  const net::VantageProfile& home = vantages[0];
  EXPECT_EQ(home.name, "us-home");
  EXPECT_EQ(home.region, net::Region::kNorthAmerica);
  // The resolver must be exactly the default-constructed config the
  // single-vantage campaign hardcodes — this is what makes a 1-vantage
  // campaign byte-identical to the historical one.
  const net::ResolverConfig defaults;
  EXPECT_EQ(home.resolver.name, defaults.name);
  EXPECT_EQ(home.resolver.cache_shards, defaults.cache_shards);
  EXPECT_EQ(home.resolver.client_rtt_ms, defaults.client_rtt_ms);
  EXPECT_FALSE(home.use_doh);
  EXPECT_FALSE(home.edge_pin.has_value());
  EXPECT_EQ(home.fault_scale, 1.0);
}

TEST(VantageProfile, ParseAppliesEveryKey) {
  const auto profile = net::VantageProfile::parse(
      "tokyo:region=as:resolver=public:doh=1:edge=na:access_ms=9.5:"
      "bandwidth=3000:faults=2.5");
  EXPECT_EQ(profile.name, "tokyo");
  EXPECT_EQ(profile.region, net::Region::kAsia);
  EXPECT_EQ(profile.resolver.name, "public");
  EXPECT_GT(profile.resolver.cache_shards, 1);
  EXPECT_EQ(profile.resolver.resolver_region, net::Region::kAsia);
  EXPECT_TRUE(profile.use_doh);
  ASSERT_TRUE(profile.edge_pin.has_value());
  EXPECT_EQ(*profile.edge_pin, net::Region::kNorthAmerica);
  EXPECT_EQ(profile.latency.access_ms, 9.5);
  EXPECT_EQ(profile.latency.bandwidth_bytes_per_ms, 3000.0);
  EXPECT_EQ(profile.fault_scale, 2.5);
}

TEST(VantageProfile, StrRoundTripsThroughParse) {
  const char* specs[] = {
      "us-home",
      "eu-isp:region=eu",
      "as-public-doh:region=as:resolver=public:doh=1",
      "sa-lossy:region=sa:resolver=public:access_ms=12:faults=2",
      "oc-pinned:region=oc:edge=na",
  };
  for (const char* spec : specs) {
    const auto profile = net::VantageProfile::parse(spec);
    const auto reparsed = net::VantageProfile::parse(profile.str());
    EXPECT_EQ(reparsed.str(), profile.str()) << spec;
    EXPECT_EQ(reparsed.name, profile.name);
    EXPECT_EQ(reparsed.region, profile.region);
    EXPECT_EQ(reparsed.use_doh, profile.use_doh);
    EXPECT_EQ(reparsed.edge_pin, profile.edge_pin);
    EXPECT_EQ(reparsed.fault_scale, profile.fault_scale);
  }
}

TEST(VantageProfile, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(net::VantageProfile::parse(""), std::invalid_argument);
  EXPECT_THROW(net::VantageProfile::parse("region=eu"),
               std::invalid_argument);  // name must come first
  EXPECT_THROW(net::VantageProfile::parse("v:nope=1"), std::invalid_argument);
  EXPECT_THROW(net::VantageProfile::parse("v:region=mars"),
               std::invalid_argument);
  EXPECT_THROW(net::VantageProfile::parse("v:doh=maybe"),
               std::invalid_argument);
  EXPECT_THROW(net::VantageProfile::parse("v:resolver=quad9"),
               std::invalid_argument);
  EXPECT_THROW(net::VantageProfile::parse("v:access_ms=-1"),
               std::invalid_argument);
  EXPECT_THROW(net::VantageProfile::parse("v:bandwidth=0"),
               std::invalid_argument);
  EXPECT_THROW(net::VantageProfile::parse("v:faults=-0.5"),
               std::invalid_argument);
  EXPECT_THROW(net::VantageProfile::parse_list(""), std::invalid_argument);
}

TEST(VantageProfile, ParseListSplitsOnSemicolons) {
  const auto profiles =
      net::VantageProfile::parse_list("a;b:region=eu;c:doh=1");
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].name, "a");
  EXPECT_EQ(profiles[1].region, net::Region::kEurope);
  EXPECT_TRUE(profiles[2].use_doh);
}

TEST(VantageProfile, DefaultVantagesCycleWithSuffixedNames) {
  const auto vantages = net::VantageProfile::default_vantages(7);
  ASSERT_EQ(vantages.size(), 7u);
  EXPECT_EQ(vantages[0].name, "us-home");
  EXPECT_EQ(vantages[4].name, "oc-pinned");
  EXPECT_EQ(vantages[5].name, "us-home-2");
  EXPECT_EQ(vantages[6].name, "eu-isp-2");
  EXPECT_EQ(vantages[6].region, vantages[1].region);
}

// --- Fault-profile scaling ---

TEST(ScaleFaultProfile, ScalesWithinTheTotalRateBudget) {
  net::FaultProfile base;
  base.dns_servfail = 0.1;
  base.http_5xx = 0.3;
  const auto doubled = core::scale_fault_profile(base, 2.0);
  EXPECT_DOUBLE_EQ(doubled.dns_servfail, 0.2);
  EXPECT_DOUBLE_EQ(doubled.http_5xx, 0.6);
  const auto off = core::scale_fault_profile(base, 0.0);
  EXPECT_FALSE(off.enabled());
  const auto same = core::scale_fault_profile(base, 1.0);
  EXPECT_DOUBLE_EQ(same.dns_servfail, base.dns_servfail);
  EXPECT_DOUBLE_EQ(same.http_5xx, base.http_5xx);
}

TEST(ScaleFaultProfile, RenormalizesWhenScaledTotalExceedsOne) {
  // Per-rate clamping alone used to build profiles whose *total* rate
  // exceeded 1 — the invariant FaultProfile::parse rejects. The scaled
  // profile must stay parseable, with relative rates preserved.
  net::FaultProfile base;
  base.dns_servfail = 0.2;
  base.http_5xx = 0.6;
  const auto doubled = core::scale_fault_profile(base, 2.0);
  EXPECT_LE(doubled.total_rate(), 1.0);
  EXPECT_NEAR(doubled.total_rate(), 1.0, 1e-9);
  // http_5xx clamps to 1.0 and dns_servfail to 0.4 before the
  // renormalization, so the surviving ratio is 1.0 : 0.4.
  EXPECT_NEAR(doubled.http_5xx / doubled.dns_servfail, 2.5, 1e-9);
  EXPECT_NO_THROW(net::FaultProfile::parse(doubled.str()));
}

// --- CLI-shared fail-fast validators (regressions for the flag bugs) ---

TEST(ResolveCheckpointPath, BareResumeFailsFast) {
  // A bare `--resume` used to fall through with an empty path and
  // silently run without checkpointing.
  EXPECT_THROW(core::resolve_checkpoint_path("measure", "", true, ""),
               std::invalid_argument);
}

TEST(ResolveCheckpointPath, MissingResumeFileFailsFast) {
  EXPECT_THROW(core::resolve_checkpoint_path("measure", "", true,
                                             "/nonexistent/ckpt.txt"),
               std::invalid_argument);
}

TEST(ResolveCheckpointPath, ConflictingPairFailsFast) {
  const std::string path = ::testing::TempDir() + "vantage_resolve_ckpt.txt";
  std::ofstream(path) << "x\n";
  EXPECT_THROW(core::resolve_checkpoint_path("measure", "other.txt", true,
                                             path),
               std::invalid_argument);
  EXPECT_EQ(core::resolve_checkpoint_path("measure", path, true, path), path);
  EXPECT_EQ(core::resolve_checkpoint_path("measure", "", true, path), path);
  std::remove(path.c_str());
}

TEST(ResolveCheckpointPath, PlainCheckpointPassesThrough) {
  EXPECT_EQ(core::resolve_checkpoint_path("measure", "new.txt", false, ""),
            "new.txt");
  EXPECT_EQ(core::resolve_checkpoint_path("measure", "", false, ""), "");
}

TEST(ValidateShardCount, RejectsMoreShardsThanSites) {
  // `--shards 64` over a 10-site list used to run 54 empty shards
  // silently; the partition is degenerate and now fails fast.
  EXPECT_THROW(core::validate_shard_count("measure", 11, 10),
               std::invalid_argument);
  EXPECT_NO_THROW(core::validate_shard_count("measure", 10, 10));
  EXPECT_NO_THROW(core::validate_shard_count("measure", 1, 10));
}

// --- Cross-vantage disagreement over hand-built observations ---

core::SiteObservation make_site(const std::string& domain, double landing,
                                std::vector<double> internals) {
  core::SiteObservation site;
  site.domain = domain;
  site.bootstrap_rank = 1;
  site.landing.bytes = landing;
  site.landing.plt_ms = landing;
  for (double value : internals) {
    core::PageMetrics metrics;
    metrics.bytes = value;
    metrics.plt_ms = value;
    site.internals.push_back(metrics);
  }
  return site;
}

TEST(VantageDisagreement, DetectsSignFlips) {
  // Vantage 0 sees landing > internal (delta +5); vantage 1 sees the
  // reverse (delta -5): a sign flip on every delta-bearing metric.
  const std::vector<std::vector<core::SiteObservation>> per_vantage = {
      {make_site("a.com", 15.0, {10.0})},
      {make_site("a.com", 5.0, {10.0})},
  };
  const auto disagreement = core::vantage_disagreement(per_vantage);
  EXPECT_EQ(disagreement.vantages, 2u);
  EXPECT_EQ(disagreement.sites_total, 1u);
  EXPECT_EQ(disagreement.sites_compared, 1u);
  ASSERT_FALSE(disagreement.metrics.empty());
  for (const auto& line : disagreement.metrics) {
    if (line.metric == "bytes" || line.metric == "plt_ms") {
      EXPECT_DOUBLE_EQ(line.median_spread, 10.0) << line.metric;
      EXPECT_DOUBLE_EQ(line.max_spread, 10.0) << line.metric;
      EXPECT_DOUBLE_EQ(line.sign_flip_fraction, 1.0) << line.metric;
    } else {
      EXPECT_DOUBLE_EQ(line.median_spread, 0.0) << line.metric;
      EXPECT_DOUBLE_EQ(line.sign_flip_fraction, 0.0) << line.metric;
    }
  }
}

TEST(VantageDisagreement, SingleVantageHasZeroSpread) {
  const std::vector<std::vector<core::SiteObservation>> per_vantage = {
      {make_site("a.com", 15.0, {10.0}), make_site("b.com", 3.0, {9.0})},
  };
  const auto disagreement = core::vantage_disagreement(per_vantage);
  EXPECT_EQ(disagreement.vantages, 1u);
  EXPECT_EQ(disagreement.sites_compared, 2u);
  for (const auto& line : disagreement.metrics) {
    EXPECT_DOUBLE_EQ(line.median_spread, 0.0);
    EXPECT_DOUBLE_EQ(line.sign_flip_fraction, 0.0);
  }
}

TEST(VantageDisagreement, SiteMustBeUsableEverywhereToCompare) {
  auto quarantined = make_site("a.com", 1.0, {});
  quarantined.quarantined = true;
  const std::vector<std::vector<core::SiteObservation>> per_vantage = {
      {make_site("a.com", 15.0, {10.0})},
      {quarantined},
  };
  const auto disagreement = core::vantage_disagreement(per_vantage);
  EXPECT_EQ(disagreement.sites_compared, 0u);
  // No compared sites: median spread is NaN by the documented
  // util::stats empty-input policy, flips default to zero.
  for (const auto& line : disagreement.metrics) {
    EXPECT_TRUE(std::isnan(line.median_spread)) << line.metric;
    EXPECT_DOUBLE_EQ(line.sign_flip_fraction, 0.0);
  }
}

TEST(VantageDisagreement, MismatchedListsThrow) {
  const std::vector<std::vector<core::SiteObservation>> per_vantage = {
      {make_site("a.com", 1.0, {2.0})},
      {make_site("a.com", 1.0, {2.0}), make_site("b.com", 1.0, {2.0})},
  };
  EXPECT_THROW(core::vantage_disagreement(per_vantage),
               std::invalid_argument);
  EXPECT_THROW(core::vantage_disagreement({}), std::invalid_argument);
}

TEST(VantageConsensusCsv, OneRowPerEverywhereUsableSite) {
  const std::vector<std::vector<core::SiteObservation>> per_vantage = {
      {make_site("a.com", 15.0, {10.0}), make_site("b.com", 8.0, {10.0})},
      {make_site("a.com", 5.0, {10.0}), make_site("b.com", 12.0, {10.0})},
  };
  std::ostringstream out;
  core::write_vantage_consensus_csv(out, per_vantage);
  const std::string csv = out.str();
  EXPECT_EQ(csv.rfind("domain,rank,vantages,bytes_delta_median,"
                      "bytes_spread,bytes_sign_consistent,",
                      0),
            0u);
  EXPECT_NE(csv.find("\na.com,1,2,"), std::string::npos);
  EXPECT_NE(csv.find("\nb.com,1,2,"), std::string::npos);
  // a.com flips sign on bytes (delta +5 vs -5) -> sign_consistent 0.
  EXPECT_NE(csv.find("a.com,1,2,0,10,0"), std::string::npos);
}

// --- Report assembly and rendering ---

TEST(VantageReport, NullSpreadCellsWhenNothingCompares) {
  obs::VantageReport report;
  report.vantages = 2;
  report.sites_total = 1;
  report.sites_compared = 0;
  obs::VantageReport::MetricLine line;
  line.metric = "bytes";
  line.has_spread = false;
  report.metric_lines.push_back(line);
  std::ostringstream out;
  obs::write_vantage_report_json(out, report);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"schema\":\"hispar-vantage-report-v1\"", 0), 0u);
  EXPECT_NE(json.find("\"median_spread\":null"), std::string::npos);
  EXPECT_NE(json.find("\"max_spread\":null"), std::string::npos);
}

// --- Vantage checkpoint serialization ---

TEST(VantageCheckpoint, RoundTripsBlocksAndTelemetry) {
  core::SiteObservation site = make_site("a.com", 15.0, {10.0, 11.0});
  site.category = web::SiteCategory::kNews;
  core::FetchOutcome outcome;
  outcome.page_index = 0;
  outcome.load_ordinal = 2;
  site.outcomes.push_back(outcome);

  obs::ShardTelemetry telemetry;
  telemetry.metrics.counter("x") = 7;
  telemetry.spans_dropped = 3;

  std::ostringstream out;
  core::write_vantage_checkpoint_header(out, 0xabcdefull);
  core::append_vantage_block(out, 0, {site}, &telemetry);
  core::append_vantage_block(out, 1, {site}, nullptr);

  std::istringstream in(out.str());
  const auto checkpoint = core::read_vantage_checkpoint(in);
  EXPECT_EQ(checkpoint.config_digest, 0xabcdefull);
  ASSERT_EQ(checkpoint.vantages.size(), 2u);
  EXPECT_EQ(checkpoint.vantages[0].vantage, 0u);
  EXPECT_TRUE(checkpoint.vantages[0].has_telemetry);
  EXPECT_EQ(checkpoint.vantages[0].telemetry.spans_dropped, 3u);
  EXPECT_FALSE(checkpoint.vantages[1].has_telemetry);
  ASSERT_EQ(checkpoint.vantages[1].observations.size(), 1u);
  const auto& restored = checkpoint.vantages[1].observations[0].second;
  EXPECT_EQ(restored.domain, "a.com");
  EXPECT_EQ(restored.internals.size(), 2u);
  ASSERT_EQ(restored.outcomes.size(), 1u);
  EXPECT_EQ(restored.outcomes[0].load_ordinal, 2);

  // Re-serializing the parsed state reproduces the original bytes —
  // the property resume depends on.
  std::ostringstream again;
  core::write_vantage_checkpoint_header(again, checkpoint.config_digest);
  for (const auto& block : checkpoint.vantages) {
    std::vector<core::SiteObservation> observations;
    for (const auto& [position, observation] : block.observations)
      observations.push_back(observation);
    core::append_vantage_block(
        again, block.vantage, observations,
        block.has_telemetry ? &block.telemetry : nullptr);
  }
  EXPECT_EQ(again.str(), out.str());
}

TEST(VantageCheckpoint, TornTailIsDiscarded) {
  const core::SiteObservation site = make_site("a.com", 15.0, {10.0});
  std::ostringstream out;
  core::write_vantage_checkpoint_header(out, 1);
  core::append_vantage_block(out, 0, {site}, nullptr);
  std::string bytes = out.str();
  // Simulate a kill mid-append: a second block with its tail cut off.
  std::ostringstream torn;
  core::append_vantage_block(torn, 1, {site}, nullptr);
  bytes += torn.str().substr(0, torn.str().size() / 2);

  std::istringstream in(bytes);
  const auto checkpoint = core::read_vantage_checkpoint(in);
  ASSERT_EQ(checkpoint.vantages.size(), 1u);
  EXPECT_EQ(checkpoint.vantages[0].vantage, 0u);

  // Malformed *complete* records, by contrast, throw.
  std::istringstream bad("hispar-vantage,v1,zzz\n");
  EXPECT_THROW(core::read_vantage_checkpoint(bad), std::runtime_error);
  std::istringstream wrong_header("hispar-checkpoint,v1,1\n");
  EXPECT_THROW(core::read_vantage_checkpoint(wrong_header),
               std::runtime_error);
}

// --- The campaign engine itself ---

class VantageCampaignTest : public ::testing::Test {
 protected:
  VantageCampaignTest()
      : web_({150, 37, 300, false}), toplists_(web_), engine_(web_) {
    core::HisparBuilder builder(web_, toplists_, engine_);
    core::HisparConfig config;
    config.target_sites = 10;
    config.urls_per_site = 6;
    config.min_internal_results = 4;
    list_ = builder.build(config, 0);
  }

  core::CampaignConfig base_config(std::size_t jobs = 1) const {
    core::CampaignConfig config;
    config.landing_loads = 3;
    config.jobs = jobs;
    config.shards = 4;
    config.observability.enabled = true;
    return config;
  }

  struct Artifacts {
    std::string csv;      // all vantages, concatenated in vantage order
    std::string metrics;
    std::string trace;
  };

  Artifacts run_vantages(std::size_t vantages, std::size_t jobs,
                         const std::string& checkpoint_path = "") {
    core::VantageCampaignConfig config;
    config.base = base_config(jobs);
    config.profiles = net::VantageProfile::default_vantages(vantages);
    config.checkpoint_path = checkpoint_path;
    core::VantageCampaign campaign(web_, config);
    const auto result = campaign.run(list_);

    Artifacts artifacts;
    for (const auto& observations : result.observations) {
      std::ostringstream csv;
      core::write_measure_csv(csv, observations);
      artifacts.csv += csv.str();
    }
    std::ostringstream metrics;
    campaign.telemetry().metrics.write_json(metrics);
    artifacts.metrics = metrics.str();
    std::ostringstream trace;
    obs::write_chrome_trace(trace, campaign.telemetry().spans);
    artifacts.trace = trace.str();
    return artifacts;
  }

  web::SyntheticWeb web_;
  toplist::TopListFactory toplists_;
  search::SearchEngine engine_;
  core::HisparList list_;
};

TEST_F(VantageCampaignTest, SingleVantageIsByteIdenticalToPlainCampaign) {
  core::MeasurementCampaign plain(web_, base_config());
  const auto sites = plain.run(list_);
  std::ostringstream plain_csv;
  core::write_measure_csv(plain_csv, sites);
  std::ostringstream plain_metrics;
  plain.telemetry().metrics.write_json(plain_metrics);
  std::ostringstream plain_trace;
  obs::write_chrome_trace(plain_trace, plain.telemetry().spans);

  const Artifacts vantage = run_vantages(1, 1);
  EXPECT_EQ(vantage.csv, plain_csv.str());
  EXPECT_EQ(vantage.metrics, plain_metrics.str());
  EXPECT_EQ(vantage.trace, plain_trace.str());
}

TEST_F(VantageCampaignTest, VantageConfigDerivation) {
  core::VantageCampaignConfig config;
  config.base = base_config();
  config.base.fault_profile = net::FaultProfile::uniform(0.1);
  config.profiles = net::VantageProfile::default_vantages(4);
  core::VantageCampaign campaign(web_, config);

  // Vantage 0 is the base campaign (same seed, same substrate).
  const auto home = campaign.vantage_config(0);
  EXPECT_EQ(home.seed, config.base.seed);
  EXPECT_EQ(home.vantage, net::Region::kNorthAmerica);
  EXPECT_FALSE(home.use_doh);

  // Vantage 2 (as-public-doh) gets its profile's substrate and a seed
  // forked by vantage index.
  const auto asia = campaign.vantage_config(2);
  EXPECT_EQ(asia.vantage, net::Region::kAsia);
  EXPECT_TRUE(asia.use_doh);
  EXPECT_GT(asia.resolver.cache_shards, 1);
  EXPECT_NE(asia.seed, config.base.seed);

  // Vantage 3 (sa-lossy, faults=2) doubles the base fault rates —
  // renormalized back under the total-rate budget, because seven rates
  // of 0.2 would sum to 1.4. Relative rates stay uniform.
  const auto lossy = campaign.vantage_config(3);
  EXPECT_GT(lossy.fault_profile.http_5xx, config.base.fault_profile.http_5xx);
  EXPECT_DOUBLE_EQ(lossy.fault_profile.http_5xx,
                   lossy.fault_profile.dns_timeout);
  EXPECT_LE(lossy.fault_profile.total_rate(), 1.0);
  EXPECT_NEAR(lossy.fault_profile.total_rate(), 1.0, 1e-9);

  EXPECT_THROW(campaign.vantage_config(4), std::invalid_argument);
}

TEST_F(VantageCampaignTest, JobsNeverChangeMultiVantageBytes) {
  const Artifacts serial = run_vantages(3, 1);
  const Artifacts threaded = run_vantages(3, 8);
  EXPECT_EQ(serial.csv, threaded.csv);
  EXPECT_EQ(serial.metrics, threaded.metrics);
  EXPECT_EQ(serial.trace, threaded.trace);
}

TEST_F(VantageCampaignTest, VantagesActuallyChangeTheBytes) {
  // Sanity inverse: different vantage points must disagree somewhere,
  // or the whole engine is a no-op.
  const Artifacts one = run_vantages(1, 1);
  const Artifacts three = run_vantages(3, 1);
  EXPECT_NE(one.csv, three.csv);
  // And vantage 0's slice of the 3-vantage run is the 1-vantage run.
  EXPECT_EQ(three.csv.substr(0, one.csv.size()), one.csv);
}

TEST_F(VantageCampaignTest, KillAndResumeIsByteIdentical) {
  const std::string path = ::testing::TempDir() + "vantage_resume_ckpt.txt";
  std::remove(path.c_str());
  const Artifacts uninterrupted = run_vantages(3, 2, path);

  // Tear the checkpoint mid-file (as a kill between flushes would) and
  // resume: the surviving complete blocks splice in, the rest re-runs,
  // and every artifact byte matches the uninterrupted run.
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  in.close();
  const std::string bytes = buffer.str();
  std::ofstream torn(path, std::ios::trunc);
  torn << bytes.substr(0, bytes.size() * 2 / 3);
  torn.close();

  const Artifacts resumed = run_vantages(3, 2, path);
  EXPECT_EQ(resumed.csv, uninterrupted.csv);
  EXPECT_EQ(resumed.metrics, uninterrupted.metrics);
  EXPECT_EQ(resumed.trace, uninterrupted.trace);

  // A fully-complete checkpoint resumes without re-running anything and
  // still reproduces the bytes.
  const Artifacts replayed = run_vantages(3, 2, path);
  EXPECT_EQ(replayed.csv, uninterrupted.csv);
  EXPECT_EQ(replayed.metrics, uninterrupted.metrics);
  std::remove(path.c_str());
}

TEST_F(VantageCampaignTest, MismatchedCheckpointIsRejected) {
  const std::string path = ::testing::TempDir() + "vantage_mismatch_ckpt.txt";
  std::remove(path.c_str());
  run_vantages(2, 1, path);
  // Same file, different profile set: the digest guard must refuse.
  core::VantageCampaignConfig config;
  config.base = base_config();
  config.profiles = net::VantageProfile::default_vantages(3);
  config.checkpoint_path = path;
  core::VantageCampaign campaign(web_, config);
  EXPECT_THROW(campaign.run(list_), std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(VantageCampaignTest, ReportCountsEveryVantage) {
  core::VantageCampaignConfig config;
  config.base = base_config();
  config.profiles = net::VantageProfile::default_vantages(2);
  core::VantageCampaign campaign(web_, config);
  const auto result = campaign.run(list_);
  const auto report = core::build_vantage_report(
      result.observations, config.profiles, campaign.telemetry());
  EXPECT_EQ(report.vantages, 2u);
  EXPECT_EQ(report.sites_total, list_.sets.size());
  ASSERT_EQ(report.vantage_lines.size(), 2u);
  EXPECT_EQ(report.vantage_lines[0].name, "us-home");
  EXPECT_EQ(report.vantage_lines[0].region, "north-america");
  EXPECT_EQ(report.vantage_lines[1].name, "eu-isp");
  EXPECT_EQ(report.vantage_lines[1].region, "europe");
  EXPECT_TRUE(report.telemetry);
  EXPECT_FALSE(report.metric_lines.empty());

  const std::string summary = obs::vantage_summary_line(report);
  EXPECT_NE(summary.find("2 vantage points"), std::string::npos);

  EXPECT_THROW(core::build_vantage_report(result.observations, {},
                                          campaign.telemetry()),
               std::invalid_argument);
}

TEST(VantageCheckpoint, VshardBlocksRoundTripAlongsideVantageBlocks) {
  // The 2-D scheduler's durable unit: (vantage, shard) cell blocks mix
  // with whole-vantage blocks in one file, and both round-trip.
  std::vector<core::SiteObservation> observations = {
      make_site("a.com", 15.0, {10.0}), make_site("b.com", 8.0, {9.0})};
  obs::ShardTelemetry telemetry;
  telemetry.metrics.counter("fetches") = 4;

  std::ostringstream out;
  core::write_vantage_checkpoint_header(out, 0x1234ull);
  core::append_vantage_block(out, 0, observations, nullptr);
  core::append_vantage_shard_block(out, 1, 2, {1}, observations, &telemetry);
  core::append_vantage_shard_block(out, 1, 3, {0}, observations, nullptr);

  std::istringstream in(out.str());
  const auto checkpoint = core::read_vantage_checkpoint(in);
  EXPECT_EQ(checkpoint.config_digest, 0x1234ull);
  ASSERT_EQ(checkpoint.vantages.size(), 1u);
  ASSERT_EQ(checkpoint.shards.size(), 2u);
  EXPECT_EQ(checkpoint.shards[0].vantage, 1u);
  EXPECT_EQ(checkpoint.shards[0].shard, 2u);
  ASSERT_EQ(checkpoint.shards[0].observations.size(), 1u);
  EXPECT_EQ(checkpoint.shards[0].observations[0].first, 1u);
  EXPECT_EQ(checkpoint.shards[0].observations[0].second.domain, "b.com");
  EXPECT_TRUE(checkpoint.shards[0].has_telemetry);
  EXPECT_FALSE(checkpoint.shards[1].has_telemetry);
  EXPECT_EQ(checkpoint.shards[1].shard, 3u);

  // A torn cell block (kill mid-append) is discarded like a torn
  // vantage block.
  std::ostringstream torn;
  core::append_vantage_shard_block(torn, 2, 0, {0}, observations, nullptr);
  std::istringstream torn_in(out.str() +
                             torn.str().substr(0, torn.str().size() / 2));
  const auto survived = core::read_vantage_checkpoint(torn_in);
  EXPECT_EQ(survived.vantages.size(), 1u);
  EXPECT_EQ(survived.shards.size(), 2u);
}

// --- Checkpoint rewrite atomicity (the std::ios::trunc kill window) ---

TEST(ReplaceFileAtomically, KillBeforeRenameLeavesTheOriginalIntact) {
  const std::string path = ::testing::TempDir() + "atomic_rewrite.txt";
  std::remove(path.c_str());
  {
    std::ofstream out(path);
    out << "durable blocks\n";
  }
  // A kill between the temp write and the rename leaves exactly this
  // state: a partial temp file next to the untouched original. The old
  // truncate-in-place rewrite instead left the *original* partial.
  {
    std::ofstream tmp(path + ".tmp");
    tmp << "partial rewr";
  }
  std::ifstream original(path);
  std::string line;
  ASSERT_TRUE(std::getline(original, line));
  EXPECT_EQ(line, "durable blocks");
  original.close();

  // The next rewrite overwrites the stale temp and lands atomically.
  core::replace_file_atomically(path, "rewritten\n");
  std::ifstream rewritten(path);
  ASSERT_TRUE(std::getline(rewritten, line));
  EXPECT_EQ(line, "rewritten");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST_F(VantageCampaignTest, ResumeSurvivesAStaleTempFromAKilledRewrite) {
  const std::string path = ::testing::TempDir() + "vantage_atomic_ckpt.txt";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  const Artifacts uninterrupted = run_vantages(2, 2, path);

  // Simulate a run killed twice: once mid-append (torn tail) and once
  // mid-rewrite on the following resume (stale temp file). The durable
  // blocks in the original file must survive both.
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  in.close();
  const std::string bytes = buffer.str();
  {
    std::ofstream torn(path, std::ios::trunc);
    torn << bytes.substr(0, bytes.size() * 2 / 3);
  }
  {
    std::ofstream stale(path + ".tmp");
    stale << "hispar-vantage,v1,0\ngarbage from a killed rewrite";
  }

  const Artifacts resumed = run_vantages(2, 2, path);
  EXPECT_EQ(resumed.csv, uninterrupted.csv);
  EXPECT_EQ(resumed.metrics, uninterrupted.metrics);
  EXPECT_EQ(resumed.trace, uninterrupted.trace);
  // The completed run's compaction renamed the temp away.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST_F(VantageCampaignTest, CellGranularCheckpointResumesByteIdentically) {
  // Hand-build the file a run killed mid-flight leaves behind: a
  // header plus two completed (vantage 0, shard) cells. The resume must
  // splice them in and reproduce the uninterrupted artifacts.
  const std::string path = ::testing::TempDir() + "vantage_cell_ckpt.txt";
  std::remove(path.c_str());
  const Artifacts uninterrupted = run_vantages(2, 1);

  core::VantageCampaignConfig config;
  config.base = base_config();
  config.profiles = net::VantageProfile::default_vantages(2);
  core::VantageCampaign campaign(web_, config);
  core::MeasurementCampaign inner(web_, campaign.vantage_config(0));
  const auto shards = core::shard_indices(list_, config.base.shards);
  std::vector<core::SiteObservation> observations(list_.sets.size());
  {
    std::ofstream out(path);
    core::write_vantage_checkpoint_header(out,
                                          campaign.checkpoint_digest(list_));
    for (std::size_t s = 0; s < 2; ++s) {
      const auto cell = inner.run_one_shard(s, list_, shards[s], observations);
      core::append_vantage_shard_block(
          out, 0, s, shards[s], observations,
          cell.telemetry.empty() ? nullptr : &cell.telemetry);
    }
  }

  const Artifacts resumed = run_vantages(2, 2, path);
  EXPECT_EQ(resumed.csv, uninterrupted.csv);
  EXPECT_EQ(resumed.metrics, uninterrupted.metrics);
  EXPECT_EQ(resumed.trace, uninterrupted.trace);
  std::remove(path.c_str());
}

TEST_F(VantageCampaignTest, FinalCheckpointBytesAreJobsInvariant) {
  // The mid-run file orders cell blocks by completion, but the finished
  // file is compacted to whole-vantage blocks — byte-identical at any
  // --jobs, which is also what keeps it byte-compatible with files the
  // sequential engine wrote (the golden digest pins that layout).
  const std::string serial_path =
      ::testing::TempDir() + "vantage_jobs1_ckpt.txt";
  const std::string threaded_path =
      ::testing::TempDir() + "vantage_jobs8_ckpt.txt";
  std::remove(serial_path.c_str());
  std::remove(threaded_path.c_str());
  run_vantages(3, 1, serial_path);
  run_vantages(3, 8, threaded_path);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const std::string serial = slurp(serial_path);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, slurp(threaded_path));
  std::remove(serial_path.c_str());
  std::remove(threaded_path.c_str());
}

// --- Vantage trace tid bands (the >= 1000 shard collision) ---

TEST(VantageTidStride, WidensWithTheShardCount) {
  EXPECT_EQ(core::vantage_tid_stride(0), 1000u);
  EXPECT_EQ(core::vantage_tid_stride(4), 1000u);
  EXPECT_EQ(core::vantage_tid_stride(999), 1000u);
  // Shard 999's row is tid 1000 — the historical constant stride put
  // vantage 1's campaign row on the same tid.
  EXPECT_EQ(core::vantage_tid_stride(1000), 1001u);
  EXPECT_EQ(core::vantage_tid_stride(5000), 5001u);
}

TEST_F(VantageCampaignTest, TidBandsStayApartAtTheShardBoundary) {
  core::VantageCampaignConfig config;
  config.base = base_config();
  // The engine accepts shards > sites (the CLI validator rejects it,
  // the library runs the empty shards as no-ops), which is exactly how
  // a 1000-shard campaign reaches the old stride's collision.
  config.base.shards = 1000;
  config.profiles = net::VantageProfile::default_vantages(2);
  core::VantageCampaign campaign(web_, config);
  campaign.run(list_);

  const auto& v0 = campaign.vantage_telemetry()[0].spans;
  const auto& v1 = campaign.vantage_telemetry()[1].spans;
  const auto& merged = campaign.telemetry().spans;
  ASSERT_EQ(merged.size(), v0.size() + v1.size());
  std::uint32_t v0_max = 0;
  for (std::size_t i = 0; i < v0.size(); ++i)
    v0_max = std::max(v0_max, merged[i].tid);
  std::uint32_t v1_min = ~0u;
  for (std::size_t i = v0.size(); i < merged.size(); ++i)
    v1_min = std::min(v1_min, merged[i].tid);
  // Vantage 0's band tops out at tid 1000 (shard 999); vantage 1 must
  // start strictly above it. With the old constant stride of 1000,
  // v1_min was 1000 — inside vantage 0's band.
  EXPECT_EQ(v1_min, core::vantage_tid_stride(1000));
  EXPECT_LT(v0_max, v1_min);
}

TEST_F(VantageCampaignTest, MergedTelemetryKeepsVantageRowsApart) {
  core::VantageCampaignConfig config;
  config.base = base_config();
  config.profiles = net::VantageProfile::default_vantages(2);
  core::VantageCampaign campaign(web_, config);
  campaign.run(list_);
  std::ostringstream metrics;
  campaign.telemetry().metrics.write_json(metrics);
  // Gauges carry the vantage prefix; counters merge by summing.
  EXPECT_NE(metrics.str().find("vantage.0.shard.0.clock_end_s"),
            std::string::npos);
  EXPECT_NE(metrics.str().find("vantage.1.shard.0.clock_end_s"),
            std::string::npos);
  // Vantage 1's spans sit in their own Perfetto tid band.
  bool shifted = false;
  for (const auto& span : campaign.telemetry().spans)
    shifted = shifted || span.tid >= 1000;
  EXPECT_TRUE(shifted);
}

}  // namespace
