#include "core/hardening.h"

#include <gtest/gtest.h>

namespace {

using namespace hispar::core;

UrlSet make_set(const std::string& domain, std::size_t rank,
                std::vector<std::string> internal_urls) {
  UrlSet set;
  set.domain = domain;
  set.bootstrap_rank = rank;
  set.urls.push_back("https://www." + domain + "/");
  set.page_indices.push_back(0);
  std::size_t index = 1;
  for (auto& url : internal_urls) {
    set.urls.push_back(std::move(url));
    set.page_indices.push_back(index++);
  }
  return set;
}

HisparList week(std::uint64_t number, std::vector<UrlSet> sets) {
  HisparList list;
  list.name = "w";
  list.week = number;
  list.sets = std::move(sets);
  return list;
}

TEST(HardeningTest, KeepsPersistentSitesAndUrls) {
  const auto week0 =
      week(0, {make_set("a.com", 1, {"https://a.com/1", "https://a.com/2"}),
               make_set("b.com", 2, {"https://b.com/1"})});
  const auto week1 =
      week(1, {make_set("a.com", 1, {"https://a.com/1", "https://a.com/3"}),
               make_set("c.com", 3, {"https://c.com/1"})});
  const std::vector<HisparList> weeks = {week0, week1};
  const auto hardened = harden(weeks, {2, 2, 0});
  // Only a.com appears twice; of its URLs only /1 appears twice.
  ASSERT_EQ(hardened.sets.size(), 1u);
  EXPECT_EQ(hardened.sets[0].domain, "a.com");
  ASSERT_EQ(hardened.sets[0].urls.size(), 2u);  // landing + /1
  EXPECT_EQ(hardened.sets[0].urls[1], "https://a.com/1");
}

TEST(HardeningTest, ThresholdOneKeepsEverything) {
  const auto week0 = week(0, {make_set("a.com", 1, {"https://a.com/1"})});
  const auto week1 = week(1, {make_set("b.com", 2, {"https://b.com/1"})});
  const std::vector<HisparList> weeks = {week0, week1};
  const auto hardened = harden(weeks, {1, 1, 0});
  EXPECT_EQ(hardened.sets.size(), 2u);
}

TEST(HardeningTest, OrdersByBestRank) {
  const auto week0 = week(0, {make_set("late.com", 9, {"https://l/1"}),
                              make_set("early.com", 2, {"https://e/1"})});
  const std::vector<HisparList> weeks = {week0};
  const auto hardened = harden(weeks, {1, 1, 0});
  ASSERT_EQ(hardened.sets.size(), 2u);
  EXPECT_EQ(hardened.sets[0].domain, "early.com");
}

TEST(HardeningTest, UrlCapKeepsMostPersistent) {
  const auto week0 =
      week(0, {make_set("a.com", 1,
                        {"https://a/stable", "https://a/flaky1"})});
  const auto week1 =
      week(1, {make_set("a.com", 1,
                        {"https://a/stable", "https://a/flaky2"})});
  const std::vector<HisparList> weeks = {week0, week1};
  const auto hardened = harden(weeks, {1, 1, 2});  // landing + 1 internal
  ASSERT_EQ(hardened.sets.size(), 1u);
  ASSERT_EQ(hardened.sets[0].urls.size(), 2u);
  EXPECT_EQ(hardened.sets[0].urls[1], "https://a/stable");
}

TEST(HardeningTest, HardenedListIsMoreStableThanInputs) {
  // Synthetic churny weeks: a stable core plus per-week noise URLs.
  std::vector<HisparList> weeks;
  for (std::uint64_t w = 0; w < 4; ++w) {
    weeks.push_back(week(
        w, {make_set("a.com", 1,
                     {"https://a/core1", "https://a/core2",
                      "https://a/noise" + std::to_string(w)})}));
  }
  const auto hardened_a = harden(std::span(weeks).subspan(0, 2), {1, 2, 0});
  const auto hardened_b = harden(std::span(weeks).subspan(2, 2), {1, 2, 0});
  const double raw_churn = internal_url_churn(weeks[0], weeks[1]);
  const double hardened_churn = internal_url_churn(hardened_a, hardened_b);
  EXPECT_LT(hardened_churn, raw_churn);
  EXPECT_DOUBLE_EQ(hardened_churn, 0.0);  // only the stable core survives
}

TEST(HardeningTest, RejectsBadArguments) {
  EXPECT_THROW(harden({}, {}), std::invalid_argument);
  const auto week0 = week(0, {make_set("a.com", 1, {"https://a/1"})});
  const std::vector<HisparList> weeks = {week0};
  EXPECT_THROW(harden(weeks, {0, 1, 0}), std::invalid_argument);
}

}  // namespace
