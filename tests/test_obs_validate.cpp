// Schema coverage for the obs_validate checks (obs/validate.h — the
// library behind tools/obs_validate.cpp). For each supported report
// schema a minimal valid document passes, and corrupting one required
// field flips validation to a std::runtime_error whose message points
// at the corrupted field — the "pointed message" contract the CLI
// relays verbatim with exit code 1 (ISSUE 9).
#include "obs/validate.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace {

// One string replacement = one corrupted field.
std::string corrupt(std::string doc, const std::string& from,
                    const std::string& to) {
  const std::size_t at = doc.find(from);
  EXPECT_NE(at, std::string::npos) << from;
  if (at != std::string::npos) doc.replace(at, from.size(), to);
  return doc;
}

void expect_rejects(const std::string& doc, const char* message) {
  try {
    hispar::obs::validate_report_json(doc);
    ADD_FAILURE() << "accepted, expected '" << message << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(message), std::string::npos)
        << "got '" << e.what() << "'";
  }
}

const char* kMeasureReport =
    R"({"schema":"hispar-report-v1",)"
    R"("coverage":{"sites_total":3,"sites_ok":2,"sites_degraded":1,)"
    R"("sites_quarantined":0},)"
    R"("faults":[{"kind":"stall","failed_fetches":1,"injected":2}],)"
    R"("caches":{},"loader":{},"trace":{},)"
    R"("shards":[{"shard":0,"clock_end_s":12.5}],)"
    R"("shard_skew_s":0,"telemetry":true})";

TEST(ObsValidateTest, MeasureReportMinimalDocPasses) {
  EXPECT_NO_THROW(hispar::obs::validate_report_json(kMeasureReport));
}

TEST(ObsValidateTest, MeasureReportCorruptionsReject) {
  // The coverage identity: total must equal ok + degraded + quarantined.
  expect_rejects(corrupt(kMeasureReport, R"("sites_ok":2)", R"("sites_ok":7)"),
                 "coverage counts do not add up");
  expect_rejects(
      corrupt(kMeasureReport, R"("sites_total":3)", R"("sites_totl":3)"),
      "missing \"sites_total\"");
  expect_rejects(
      corrupt(kMeasureReport, R"("shard_skew_s":0)", R"("shard_skew_s":"0")"),
      "\"shard_skew_s\" has wrong type");
  expect_rejects(corrupt(kMeasureReport, R"("kind":"stall")", R"("kind":7)"),
                 "report fault");
}

const char* kListBuildReport =
    R"({"schema":"hispar-listbuild-report-v1",)"
    R"("coverage":{"sites_examined":4,"sites_accepted":2,"sites_dropped":1,)"
    R"("sites_missing":1,"sites_quarantined":0,"weeks":1},)"
    R"("billing":{"queries_billed":9,"speculative_queries":1,"retries":0,)"
    R"("providers":[{"provider":"searchco","query_price_usd":0.003,)"
    R"("spend_usd":0.027}]},)"
    R"("weeks":[{"week":0,"sites_accepted":2,"queries_billed":9,)"
    R"("site_churn":null,"internal_url_churn":null}],)"
    R"("faults":[],"trace":{"spans":0,"spans_dropped":0},"telemetry":false})";

TEST(ObsValidateTest, ListBuildReportMinimalDocPasses) {
  EXPECT_NO_THROW(hispar::obs::validate_report_json(kListBuildReport));
}

TEST(ObsValidateTest, ListBuildReportCorruptionsReject) {
  expect_rejects(corrupt(kListBuildReport, R"("sites_accepted":2,"sites_dropped":1)",
                         R"("sites_accepted":9,"sites_dropped":1)"),
                 "coverage counts do not add up");
  // §7 billing is the report's point: an empty provider table is a bug.
  expect_rejects(corrupt(kListBuildReport,
                         R"([{"provider":"searchco","query_price_usd":0.003,)"
                         R"("spend_usd":0.027}])",
                         "[]"),
                 "no billing providers");
  expect_rejects(corrupt(kListBuildReport, R"("site_churn":null)",
                         R"("site_churn":"n/a")"),
                 "\"site_churn\" is neither number nor null");
  expect_rejects(
      corrupt(kListBuildReport, R"("spans_dropped":0)", R"("dropped":0)"),
      "missing \"spans_dropped\"");
}

const char* kVantageReport =
    R"({"schema":"hispar-vantage-report-v1",)"
    R"("coverage":{"vantages":1,"sites_total":2,"sites_compared":2},)"
    R"("vantage_lines":[{"vantage":0,"name":"v0","region":"na",)"
    R"("sites_ok":2,"sites_degraded":0,"sites_quarantined":0,)"
    R"("failed_fetches":0}],)"
    R"("disagreement":[{"metric":"plt_ms","median_spread":null,)"
    R"("max_spread":null,"sign_flip_fraction":0}],)"
    R"("trace":{"spans":0,"spans_dropped":0},"telemetry":false})";

TEST(ObsValidateTest, VantageReportMinimalDocPasses) {
  EXPECT_NO_THROW(hispar::obs::validate_report_json(kVantageReport));
}

TEST(ObsValidateTest, VantageReportCorruptionsReject) {
  // One line per vantage, cross-checked against coverage.vantages.
  expect_rejects(
      corrupt(kVantageReport, R"("vantages":1)", R"("vantages":2)"),
      "vantage_lines count disagrees with coverage.vantages");
  expect_rejects(
      corrupt(kVantageReport, R"("sign_flip_fraction":0)",
              R"("sign_flip_fraction":1.5)"),
      "sign_flip_fraction out of [0, 1]");
  // Null spreads mean no site was compared on this metric, so a nonzero
  // flip fraction is self-contradictory (the bug fixed in the report
  // builder: sign_flip_fraction leaked through the has_spread guard).
  expect_rejects(
      corrupt(kVantageReport, R"("sign_flip_fraction":0)",
              R"("sign_flip_fraction":0.5)"),
      "sign_flip_fraction nonzero with null spreads");
  expect_rejects(corrupt(kVantageReport, R"("region":"na")", R"("rgion":"na")"),
                 "missing \"region\"");
}

const char* kSessionReport =
    R"({"schema":"hispar-session-report-v1",)"
    R"("coverage":{"sites_total":2,"sessions_ok":2,"sessions_degraded":0,)"
    R"("sessions_quarantined":0,"pages_loaded":10,"session_len":4},)"
    R"("browser_cache":{"lookups":10,"fresh_hits":4,"revalidations":2,)"
    R"("misses":4,"insertions":6,"evictions":0,"warm_hit_ratio":0.4},)"
    R"("cold_vs_warm":[{"metric":"plt_ms","cold_landing_median":900,)"
    R"("cold_internal_median":700,"warm_landing_median":850,)"
    R"("warm_internal_median":400}],)"
    R"("trace":{"spans":0,"spans_dropped":0},"telemetry":true})";

TEST(ObsValidateTest, SessionReportMinimalDocPasses) {
  EXPECT_NO_THROW(hispar::obs::validate_report_json(kSessionReport));
}

TEST(ObsValidateTest, SessionReportCorruptionsReject) {
  // Lookup outcomes can never exceed lookups.
  expect_rejects(
      corrupt(kSessionReport, R"("fresh_hits":4)", R"("fresh_hits":40)"),
      "exceed lookups");
  expect_rejects(corrupt(kSessionReport, R"("warm_hit_ratio":0.4)",
                         R"("warm_hit_ratio":1.4)"),
                 "warm_hit_ratio out of [0, 1]");
  expect_rejects(corrupt(kSessionReport, R"("sessions_ok":2)",
                         R"("sessions_ok":1)"),
                 "coverage counts do not add up");
  expect_rejects(corrupt(kSessionReport, R"("cold_landing_median":900)",
                         R"("cold_landing_median":"fast")"),
                 "\"cold_landing_median\" is neither number nor null");
}

TEST(ObsValidateTest, UnknownSchemaRejects) {
  expect_rejects(R"({"schema":"hispar-report-v9"})", "unknown schema");
  expect_rejects(R"([1,2,3])", "not an object");
}

TEST(ObsValidateTest, MetricsDocPassesAndCorruptionRejects) {
  const char* metrics =
      R"({"schema":"hispar-metrics-v1","counters":{"pages":4},"gauges":{},)"
      R"("histograms":{"plt_ms":{"bounds":[100,500],"buckets":[1,2,1],)"
      R"("count":4,"sum":1200}}})";
  EXPECT_NO_THROW(hispar::obs::validate_metrics_json(metrics));
  try {
    hispar::obs::validate_metrics_json(
        corrupt(metrics, "\"buckets\":[1,2,1]", "\"buckets\":[1,2]"));
    ADD_FAILURE() << "bucket/bound mismatch accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bucket/bound count mismatch"),
              std::string::npos);
  }
}

TEST(ObsValidateTest, TraceDocPassesAndCorruptionRejects) {
  const char* trace =
      R"({"traceEvents":[{"ph":"X","pid":1,"tid":1,"name":"shard",)"
      R"("ts":0,"dur":5}]})";
  EXPECT_NO_THROW(hispar::obs::validate_trace_json(trace));
  try {
    hispar::obs::validate_trace_json(corrupt(trace, "\"dur\":5", "\"dur\":-5"));
    ADD_FAILURE() << "negative span duration accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("negative span duration"),
              std::string::npos);
  }
}

}  // namespace
