#include <gtest/gtest.h>

#include <set>

#include "search/engine.h"
#include "search/index.h"
#include "web/generator.h"

namespace {

using namespace hispar;
using search::SearchEngine;
using search::SearchEngineConfig;
using search::SearchProvider;

class SearchTest : public ::testing::Test {
 protected:
  SearchTest() : web_({150, 17, 200, false}) {}
  web::SyntheticWeb web_;
};

TEST_F(SearchTest, IndexIsSortedByScore) {
  const auto index = search::build_site_index(web_.site_by_rank(4), 0, {});
  ASSERT_GT(index.size(), 10u);
  for (std::size_t i = 1; i < index.size(); ++i)
    EXPECT_GE(index[i - 1].score, index[i].score);
}

TEST_F(SearchTest, IndexIsDeterministicPerWeek) {
  const auto a = search::build_site_index(web_.site_by_rank(4), 2, {});
  const auto b = search::build_site_index(web_.site_by_rank(4), 2, {});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].page_index, b[i].page_index);
}

TEST_F(SearchTest, WeeklyFreshnessReordersResults) {
  SearchEngine engine(web_);
  const std::string domain = web_.domains()[3];
  const auto week0 = engine.site_query(domain, 30, 0);
  const auto week1 = engine.site_query(domain, 30, 1);
  ASSERT_FALSE(week0.empty());
  std::set<std::string> urls0, urls1;
  for (const auto& result : week0) urls0.insert(result.url);
  for (const auto& result : week1) urls1.insert(result.url);
  EXPECT_NE(urls0, urls1);  // some churn week over week (§3)
}

TEST_F(SearchTest, ResultsAreUniqueUrls) {
  SearchEngine engine(web_);
  const auto results = engine.site_query(web_.domains()[5], 49, 0);
  std::set<std::string> urls;
  for (const auto& result : results) urls.insert(result.url);
  EXPECT_EQ(urls.size(), results.size());
  EXPECT_LE(results.size(), 49u);
}

TEST_F(SearchTest, EnglishFilterSuppressesForeignPages) {
  SearchEngineConfig all;
  all.english_only = false;
  SearchEngineConfig english;
  english.english_only = true;
  // Find a mostly non-English site.
  for (std::size_t rank = 1; rank <= 150; ++rank) {
    const auto& site = web_.site_by_rank(rank);
    if (site.profile().english_site) continue;
    SearchEngine unfiltered(web_, all);
    SearchEngine filtered(web_, english);
    const auto everything = unfiltered.site_query(site.domain(), 49, 0);
    const auto english_only = filtered.site_query(site.domain(), 49, 0);
    EXPECT_LT(english_only.size(), everything.size());
    // §3: such sites return fewer than 10 results and get dropped.
    EXPECT_LT(english_only.size(), 10u);
    return;
  }
  FAIL() << "no non-English site in universe";
}

TEST_F(SearchTest, BillingCountsResultPages) {
  SearchEngine engine(web_);
  EXPECT_EQ(engine.queries_issued(), 0u);
  const auto results = engine.site_query(web_.domains()[2], 49, 0);
  // ceil(results/10) result pages at minimum, at least 1.
  const std::uint64_t minimum = (results.size() + 9) / 10;
  EXPECT_GE(engine.queries_issued(), std::max<std::uint64_t>(1, minimum));
  EXPECT_GT(engine.spend_usd(), 0.0);
}

TEST_F(SearchTest, UnknownDomainBillsOneQuery) {
  SearchEngine engine(web_);
  const auto results = engine.site_query("nonexistent.example", 10, 0);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(engine.queries_issued(), 1u);
}

TEST_F(SearchTest, PricingMatchesProviders) {
  // §7: Google $5 per 1000 queries; Bing $3.
  EXPECT_DOUBLE_EQ(search::query_price_usd(SearchProvider::kGoogle), 0.005);
  EXPECT_DOUBLE_EQ(search::query_price_usd(SearchProvider::kBing), 0.003);
}

TEST_F(SearchTest, ResetBillingZeroes) {
  SearchEngine engine(web_);
  (void)engine.site_query(web_.domains()[2], 10, 0);
  engine.reset_billing();
  EXPECT_EQ(engine.queries_issued(), 0u);
  EXPECT_DOUBLE_EQ(engine.spend_usd(), 0.0);
}

TEST_F(SearchTest, PopularPagesRankHigh) {
  // The top search result should be a popular (low-index) page far more
  // often than not — the engine is biased to what users visit (§3).
  SearchEngine engine(web_);
  int low_index_top = 0;
  int checked = 0;
  for (std::size_t rank = 1; rank <= 40; ++rank) {
    const auto results = engine.site_query(web_.domains()[rank - 1], 5, 0);
    if (results.empty()) continue;
    ++checked;
    low_index_top += results.front().page_index <= 50;
  }
  ASSERT_GT(checked, 20);
  EXPECT_GT(static_cast<double>(low_index_top) / checked, 0.6);
}

TEST_F(SearchTest, RobotsExcludedPagesNeverAppear) {
  SearchEngine engine(web_);
  for (std::size_t rank = 1; rank <= 150; ++rank) {
    const auto& site = web_.site_by_rank(rank);
    if (site.robots().disallowed_share() == 0.0) continue;
    const auto results = engine.site_query(site.domain(), 49, 0);
    for (const auto& result : results)
      EXPECT_TRUE(site.robots().allows(result.page_index)) << result.url;
    return;
  }
  FAIL() << "no robots-restricted site";
}

}  // namespace
