#include "browser/har.h"

#include <gtest/gtest.h>

namespace {

using namespace hispar::browser;
using hispar::util::Scheme;

HarLog make_log() {
  HarLog log;
  log.page_url = "https://www.example.com/";
  HarEntry root;
  root.url = log.page_url;
  root.host = "www.example.com";
  root.scheme = Scheme::kHttps;
  root.body_size = 1000;
  HarEntry asset;
  asset.url = "https://static.example.com/a.js";
  asset.host = "static.example.com";
  asset.scheme = Scheme::kHttps;
  asset.body_size = 2000;
  log.entries = {root, asset};
  return log;
}

TEST(HarTimingsTest, TotalSumsPhases) {
  HarTimings timings{1, 2, 3, 4, 5, 6, 7};
  EXPECT_DOUBLE_EQ(timings.total(), 28.0);
}

TEST(HarEntryTest, FinishedAtIncludesAllPhases) {
  HarEntry entry;
  entry.started_at_ms = 100.0;
  entry.timings.dns = 10.0;
  entry.timings.wait = 20.0;
  EXPECT_DOUBLE_EQ(entry.finished_at_ms(), 130.0);
}

TEST(HarLogTest, Aggregates) {
  const HarLog log = make_log();
  EXPECT_DOUBLE_EQ(log.total_bytes(), 3000.0);
  EXPECT_EQ(log.object_count(), 2u);
  EXPECT_EQ(log.unique_domains(), 2u);
}

TEST(HarLogTest, MixedContentDetection) {
  HarLog log = make_log();
  EXPECT_FALSE(log.has_mixed_content());
  HarEntry insecure;
  insecure.url = "http://img.example.com/x.jpg";
  insecure.host = "img.example.com";
  insecure.scheme = Scheme::kHttp;
  log.entries.push_back(insecure);
  EXPECT_TRUE(log.has_mixed_content());
}

TEST(HarLogTest, HttpPageIsNotMixed) {
  HarLog log = make_log();
  log.entries[0].scheme = Scheme::kHttp;  // page itself is HTTP
  log.entries[1].scheme = Scheme::kHttp;
  EXPECT_FALSE(log.has_mixed_content());
}

TEST(HarJson, ContainsSpecFields) {
  HarLog log = make_log();
  log.nav.on_load_ms = 1234.5;
  log.entries[0].response_headers.push_back("x-cache: HIT");
  const std::string json = to_har_json(log);
  EXPECT_NE(json.find("\"version\":\"1.2\""), std::string::npos);
  EXPECT_NE(json.find("\"onLoad\":1234.5"), std::string::npos);
  EXPECT_NE(json.find("static.example.com"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"x-cache\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":\"HIT\""), std::string::npos);
  EXPECT_NE(json.find("\"timings\""), std::string::npos);
}

TEST(HarJson, EscapesStrings) {
  HarLog log;
  log.page_url = "https://x.com/\"quote\"";
  HarEntry entry;
  entry.url = "https://x.com/path\\back";
  log.entries.push_back(entry);
  const std::string json = to_har_json(log);
  EXPECT_NE(json.find("\\\"quote\\\""), std::string::npos);
  EXPECT_NE(json.find("path\\\\back"), std::string::npos);
}

}  // namespace
