// ListBuildCampaign: serial equivalence, jobs invariance, fault
// handling, and week-granular checkpoint resume.
//
// The campaign's contract mirrors the measurement campaign's: every
// output byte is identical for any --jobs value and across kill +
// resume, and a fault-free build produces exactly the serial
// HisparBuilder's list, examined-site count and billed-query count.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/hispar.h"
#include "core/list_build.h"
#include "core/serialization.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace {

using namespace hispar;

struct BuildBytes {
  std::vector<std::string> csvs;  // one per week
  std::string metrics;
  std::string trace;
  std::string report;
  std::string churn;
  std::string ledger;
};

class ListBuildTest : public ::testing::Test {
 protected:
  ListBuildTest() : web_({150, 37, 300, false}), toplists_(web_) {}

  core::ListBuildConfig base_config() const {
    core::ListBuildConfig config;
    config.list.name = "H12";
    config.list.target_sites = 12;
    config.list.urls_per_site = 6;  // small sets keep the matrix fast
    config.list.min_internal_results = 4;
    return config;
  }

  BuildBytes run(core::ListBuildConfig config) {
    core::ListBuildCampaign campaign(web_, toplists_, config);
    const core::ListBuildResult result = campaign.run();

    BuildBytes bytes;
    for (const auto& list : result.lists)
      bytes.csvs.push_back(core::to_csv(list));
    std::ostringstream metrics;
    campaign.telemetry().metrics.write_json(metrics);
    bytes.metrics = metrics.str();
    std::ostringstream trace;
    obs::write_chrome_trace(trace, campaign.telemetry().spans);
    bytes.trace = trace.str();
    std::ostringstream report;
    obs::write_listbuild_report_json(
        report, core::build_listbuild_report(result, campaign.telemetry()));
    bytes.report = report.str();
    std::ostringstream churn;
    core::write_churn_csv(churn, result.lists);
    bytes.churn = churn.str();
    std::ostringstream ledger;
    core::write_cost_ledger_csv(ledger, result.weeks);
    bytes.ledger = ledger.str();
    return bytes;
  }

  static std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  web::SyntheticWeb web_;
  toplist::TopListFactory toplists_;
};

TEST_F(ListBuildTest, FaultFreeMatchesSerialBuilder) {
  core::ListBuildConfig config = base_config();
  config.weeks = 2;
  config.jobs = 3;

  core::ListBuildCampaign campaign(web_, toplists_, config);
  const core::ListBuildResult result = campaign.run();
  ASSERT_EQ(result.lists.size(), 2u);
  ASSERT_EQ(result.weeks.size(), 2u);

  search::SearchEngine engine(web_);
  core::HisparBuilder builder(web_, toplists_, engine);
  for (std::uint64_t week = 0; week < 2; ++week) {
    const core::HisparList serial = builder.build(config.list, week);
    const core::BuildStats& serial_stats = builder.last_build_stats();
    EXPECT_EQ(core::to_csv(result.lists[week]), core::to_csv(serial))
        << "week " << week;
    const core::WeekBuildStats& stats = result.weeks[week];
    EXPECT_EQ(stats.sites_examined, serial_stats.sites_examined);
    EXPECT_EQ(stats.sites_dropped, serial_stats.sites_dropped);
    EXPECT_EQ(stats.sites_missing, serial_stats.sites_missing);
    EXPECT_EQ(stats.queries_billed, serial_stats.queries_issued);
    EXPECT_EQ(stats.sites_quarantined, 0u);
    EXPECT_EQ(stats.retries, 0u);
  }
}

TEST_F(ListBuildTest, JobsNeverChangeAnyArtifactByte) {
  for (const char* profile : {"none", "uniform:0.08"}) {
    core::ListBuildConfig config = base_config();
    config.weeks = 2;
    config.fault_profile = net::SearchFaultProfile::parse(profile);
    config.observability.enabled = true;

    config.jobs = 1;
    const BuildBytes reference = run(config);
    // A faulty cell must actually inject, a fault-free cell must not.
    if (std::string(profile) == "none")
      EXPECT_EQ(reference.metrics.find("search.faults.injected"),
                std::string::npos);
    else
      EXPECT_NE(reference.metrics.find("search.faults.injected"),
                std::string::npos)
          << "fault profile injected nothing";

    for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
      config.jobs = jobs;
      const BuildBytes other = run(config);
      const std::string cell =
          std::string(profile) + ", jobs " + std::to_string(jobs) + " vs 1";
      EXPECT_EQ(reference.csvs, other.csvs) << "list CSV differs: " << cell;
      EXPECT_EQ(reference.metrics, other.metrics)
          << "metrics differ: " << cell;
      EXPECT_EQ(reference.trace, other.trace) << "trace differs: " << cell;
      EXPECT_EQ(reference.report, other.report) << "report differs: " << cell;
      EXPECT_EQ(reference.churn, other.churn) << "churn differs: " << cell;
      EXPECT_EQ(reference.ledger, other.ledger) << "ledger differs: " << cell;
    }
  }
}

TEST_F(ListBuildTest, KillAndResumeIsByteIdentical) {
  const std::string path = ::testing::TempDir() + "listbuild_resume_ckpt.txt";
  std::remove(path.c_str());

  core::ListBuildConfig config = base_config();
  config.weeks = 3;
  config.jobs = 2;
  config.fault_profile = net::SearchFaultProfile::parse("uniform:0.08");
  config.observability.enabled = true;
  config.checkpoint_path = path;

  const BuildBytes full = run(config);
  const std::string full_checkpoint = read_file(path);
  ASSERT_FALSE(full_checkpoint.empty());

  // Kill: keep the first ~60% of the checkpoint, tearing mid-week.
  {
    std::ofstream out(path, std::ios::trunc);
    out << full_checkpoint.substr(0, full_checkpoint.size() * 6 / 10);
  }

  config.jobs = 8;  // resume on a different worker count
  const BuildBytes resumed = run(config);
  EXPECT_EQ(full.csvs, resumed.csvs);
  EXPECT_EQ(full.metrics, resumed.metrics);
  EXPECT_EQ(full.trace, resumed.trace);
  EXPECT_EQ(full.report, resumed.report);
  // The rewritten + extended checkpoint converges on the same bytes an
  // uninterrupted run wrote.
  EXPECT_EQ(full_checkpoint, read_file(path));
  std::remove(path.c_str());
}

TEST_F(ListBuildTest, ChecksumMismatchRefusesResume) {
  const std::string path = ::testing::TempDir() + "listbuild_digest_ckpt.txt";
  std::remove(path.c_str());

  core::ListBuildConfig config = base_config();
  config.checkpoint_path = path;
  run(config);

  config.seed = config.seed + 1;  // different fault universe
  core::ListBuildCampaign campaign(web_, toplists_, config);
  EXPECT_THROW(campaign.run(), std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(ListBuildTest, WeeklyRefreshExtendsTheSameCheckpoint) {
  const std::string path = ::testing::TempDir() + "listbuild_extend_ckpt.txt";
  std::remove(path.c_str());

  // A standing refresh loop: build week 0, then come back for weeks
  // 0..1 against the same file. `weeks` is excluded from the digest, so
  // the second run resumes week 0 and only builds week 1.
  core::ListBuildConfig config = base_config();
  config.weeks = 1;
  config.checkpoint_path = path;
  const BuildBytes first = run(config);

  config.weeks = 2;
  const BuildBytes extended = run(config);

  config.checkpoint_path.clear();
  const BuildBytes fresh = run(config);
  ASSERT_EQ(extended.csvs.size(), 2u);
  EXPECT_EQ(extended.csvs[0], first.csvs[0]);
  EXPECT_EQ(extended.csvs, fresh.csvs);

  std::ifstream in(path);
  const core::ListBuildCheckpoint checkpoint =
      core::read_listbuild_checkpoint(in);
  EXPECT_EQ(checkpoint.weeks.size(), 2u);
  std::remove(path.c_str());
}

TEST_F(ListBuildTest, TotalQuotaOutageQuarantinesEverySite) {
  core::ListBuildConfig config = base_config();
  config.list.max_bootstrap_scan = 30;  // bound the futile scan
  config.fault_profile =
      net::SearchFaultProfile::parse("quota_exceeded=1.0");

  core::ListBuildCampaign campaign(web_, toplists_, config);
  const core::ListBuildResult result = campaign.run();
  ASSERT_EQ(result.weeks.size(), 1u);
  const core::WeekBuildStats& stats = result.weeks[0];
  EXPECT_TRUE(result.lists[0].sets.empty());
  EXPECT_EQ(stats.sites_accepted, 0u);
  EXPECT_EQ(stats.sites_examined, 30u);
  EXPECT_EQ(stats.sites_quarantined, 30u);
  // Quota failures abort the attempt before any page is answered, so
  // nothing is billed; every site burns all its retries.
  EXPECT_EQ(stats.queries_billed, 0u);
  EXPECT_EQ(stats.speculative_queries, 0u);
  EXPECT_EQ(stats.retries,
            30u * static_cast<std::uint64_t>(config.max_query_retries));
  EXPECT_EQ(stats.quarantined_by[static_cast<std::size_t>(
                net::SearchFaultKind::kQuotaExceeded)],
            30u);
}

TEST_F(ListBuildTest, PermanentEmptyPagesBillButDropEverySite) {
  core::ListBuildConfig config = base_config();
  config.list.max_bootstrap_scan = 30;
  config.fault_profile = net::SearchFaultProfile::parse("empty_page=1.0");

  core::ListBuildCampaign campaign(web_, toplists_, config);
  const core::ListBuildResult result = campaign.run();
  const core::WeekBuildStats& stats = result.weeks[0];
  EXPECT_TRUE(result.lists[0].sets.empty());
  EXPECT_EQ(stats.sites_accepted, 0u);
  EXPECT_EQ(stats.sites_dropped, 30u);
  EXPECT_EQ(stats.sites_quarantined, 0u);
  // An empty page is an answered (billed) page that truncates
  // pagination: one billed query per site, no retries — the API
  // "worked", the site just has nothing.
  EXPECT_EQ(stats.queries_billed, 30u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST_F(ListBuildTest, ChurnCellsGuardDegenerateWeeks) {
  core::HisparList empty;
  const core::ChurnCell both_empty = core::churn_between(empty, empty);
  EXPECT_FALSE(both_empty.has_site_churn);
  EXPECT_FALSE(both_empty.has_url_churn);

  // Disjoint weeks: site churn is total, URL churn undefined (no common
  // sites to compare internals over).
  core::HisparList before, after;
  core::UrlSet a;
  a.domain = "a.example";
  a.urls = {"https://a.example/", "https://a.example/x"};
  a.page_indices = {0, 1};
  before.sets.push_back(a);
  core::UrlSet b = a;
  b.domain = "b.example";
  after.sets.push_back(b);
  const core::ChurnCell disjoint = core::churn_between(before, after);
  EXPECT_TRUE(disjoint.has_site_churn);
  EXPECT_DOUBLE_EQ(disjoint.site_churn, 1.0);
  EXPECT_FALSE(disjoint.has_url_churn);

  // The CSV writer prints "na" for undefined cells instead of throwing.
  std::ostringstream os;
  before.week = 0;
  after.week = 1;
  core::write_churn_csv(os, {before, after});
  EXPECT_EQ(os.str(),
            "week_from,week_to,site_churn,internal_url_churn\n"
            "0,1,1,na\n");
}

TEST_F(ListBuildTest, CheckpointRoundTripsWeeksExactly) {
  core::ListBuildWeekRecord record;
  record.week = 7;
  record.list.week = 7;
  core::UrlSet set;
  set.domain = "site.example";
  set.bootstrap_rank = 3;
  set.urls = {"https://site.example/", "https://site.example/p/9"};
  set.page_indices = {0, 9};
  record.list.sets.push_back(set);
  record.stats.week = 7;
  record.stats.sites_examined = 4;
  record.stats.sites_accepted = 1;
  record.stats.sites_dropped = 2;
  record.stats.sites_quarantined = 1;
  record.stats.queries_billed = 5;
  record.stats.speculative_queries = 2;
  record.stats.retries = 3;
  record.stats.quarantined_by[static_cast<std::size_t>(
      net::SearchFaultKind::kRateLimited)] = 1;
  obs::ShardTelemetry telemetry;
  telemetry.metrics.counter("search.queries") = 5;
  telemetry.metrics.gauge("clock_end_s") = 1234.0625;
  obs::TraceSpan span;
  span.name = "site.example";
  span.cat = "site-query";
  span.tid = 1;
  span.ts_us = 10;
  span.dur_us = 20;
  span.args.emplace_back("rank", "3");
  telemetry.spans.push_back(span);
  record.telemetry.emplace(0, std::move(telemetry));

  std::ostringstream out;
  core::write_listbuild_checkpoint_header(out, 0xabcdu);
  core::append_listbuild_week(out, record);

  std::istringstream in(out.str());
  const core::ListBuildCheckpoint checkpoint =
      core::read_listbuild_checkpoint(in);
  EXPECT_EQ(checkpoint.config_digest, 0xabcdu);
  ASSERT_EQ(checkpoint.weeks.size(), 1u);
  const core::ListBuildWeekRecord& round = checkpoint.weeks[0];
  EXPECT_EQ(round.week, 7u);
  EXPECT_EQ(round.stats, record.stats);
  EXPECT_EQ(core::to_csv(round.list), core::to_csv(record.list));
  ASSERT_EQ(round.telemetry.size(), 1u);
  EXPECT_EQ(round.telemetry.at(0), record.telemetry.at(0));

  // A torn tail (killed mid-append) is silently dropped.
  const std::string bytes = out.str();
  std::istringstream torn(bytes.substr(0, bytes.size() / 2));
  EXPECT_TRUE(core::read_listbuild_checkpoint(torn).weeks.empty());
}

TEST_F(ListBuildTest, UnknownBootstrapDomainsAreCountedNotFatal) {
  // A bootstrap list from a larger universe names domains this web has
  // no site for; the build skips and counts them instead of crashing.
  web::SyntheticWeb big_web({200, 37, 300, false});
  toplist::TopListFactory big_toplists(big_web);

  core::ListBuildConfig config = base_config();
  config.list.min_internal_results = 0;  // let unknown domains reach
                                         // the find_site lookup
  config.list.max_bootstrap_scan = 200;
  config.list.target_sites = 200;
  core::ListBuildCampaign campaign(web_, big_toplists, config);
  const core::ListBuildResult result = campaign.run();
  EXPECT_GT(result.weeks[0].sites_missing, 0u);
  EXPECT_EQ(result.weeks[0].sites_quarantined, 0u);
  for (const auto& set : result.lists[0].sets)
    EXPECT_NE(web_.find_site(set.domain), nullptr);
}

}  // namespace
