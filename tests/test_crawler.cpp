#include "search/crawler.h"

#include <gtest/gtest.h>

#include <set>

#include "web/generator.h"

namespace {

using namespace hispar;
using search::CrawlConfig;
using search::crawl_site;

class CrawlerTest : public ::testing::Test {
 protected:
  CrawlerTest() : web_({120, 13, 150, false}) {}
  web::SyntheticWeb web_;
};

TEST_F(CrawlerTest, DiscoversUniquePages) {
  const auto result = crawl_site(web_.site_by_rank(3), {500, true, 100000});
  std::set<std::size_t> unique(result.pages.begin(), result.pages.end());
  EXPECT_EQ(unique.size(), result.pages.size());
  EXPECT_GT(result.pages.size(), 50u);
  EXPECT_EQ(unique.count(0), 0u);  // the landing seed is not listed
}

TEST_F(CrawlerTest, RespectsMaxPages) {
  const auto result = crawl_site(web_.site_by_rank(3), {100, true, 100000});
  EXPECT_LE(result.pages.size(), 100u);
}

TEST_F(CrawlerTest, RobotsExclusionsAreHonored) {
  // Find a site with a restrictive robots policy.
  for (std::size_t rank = 1; rank <= 120; ++rank) {
    const web::WebSite& site = web_.site_by_rank(rank);
    if (site.robots().disallowed_share() == 0.0) continue;
    const auto polite = crawl_site(site, {2000, true, 100000});
    for (std::size_t page : polite.pages)
      EXPECT_TRUE(site.robots().allows(page));
    const auto rude = crawl_site(site, {2000, false, 100000});
    EXPECT_GE(rude.pages.size() + 0u, polite.pages.size());
    EXPECT_GT(polite.robots_skipped, 0u);
    return;
  }
  FAIL() << "no robots-restricted site found";
}

TEST_F(CrawlerTest, DeterministicCrawls) {
  const auto a = crawl_site(web_.site_by_rank(7), {300, true, 100000});
  const auto b = crawl_site(web_.site_by_rank(7), {300, true, 100000});
  EXPECT_EQ(a.pages, b.pages);
  EXPECT_EQ(a.link_fetches, b.link_fetches);
}

TEST_F(CrawlerTest, ReachesFiveThousandOnLargeSites) {
  // §4 crawls until >= 5000 unique URLs; big sites must support that.
  for (std::size_t rank = 1; rank <= 120; ++rank) {
    const web::WebSite& site = web_.site_by_rank(rank);
    if (site.internal_page_count() < 50000) continue;
    const auto result = crawl_site(site, {5000, true, 200000});
    EXPECT_EQ(result.pages.size(), 5000u);
    return;
  }
  GTEST_SKIP() << "no sufficiently large site in universe";
}

TEST_F(CrawlerTest, FrontierCapIsSafetyValve) {
  const auto result = crawl_site(web_.site_by_rank(3), {100000, true, 50});
  EXPECT_LE(result.pages.size(), 50u);
}

}  // namespace
