// Unit tests for the property-testing kit itself (src/testkit): the
// generators must be deterministic functions of (seed, size), every
// generated spec must be accepted by its grammar, and the property
// runner must catch a planted failure and shrink it to the exact size
// boundary with a replayable seed line. The determinism-contract
// oracles built on top of the kit live in test_properties.cpp.
#include "testkit/gen.h"

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>

#include "net/faults.h"
#include "net/outage.h"
#include "net/vantage_profile.h"
#include "testkit/property.h"

namespace {

using hispar::testkit::Counterexample;
using hispar::testkit::Gen;
using hispar::testkit::PropertyConfig;

TEST(GenTest, SameSeedSameStream) {
  Gen a(42, 30);
  Gen b(42, 30);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.u64(), b.u64());
}

TEST(GenTest, IndexStaysInBounds) {
  Gen gen(7, 50);
  EXPECT_EQ(gen.index(0), 0u);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t n = 1 + gen.index(17);
    EXPECT_LT(gen.index(n), n);
  }
}

TEST(GenTest, SpecGeneratorsAreDeterministic) {
  Gen a(99, 40);
  Gen b(99, 40);
  EXPECT_EQ(hispar::testkit::gen_fault_spec(a),
            hispar::testkit::gen_fault_spec(b));
  EXPECT_EQ(hispar::testkit::gen_chaos_spec(a),
            hispar::testkit::gen_chaos_spec(b));
  EXPECT_EQ(hispar::testkit::gen_vantage_list_spec(a),
            hispar::testkit::gen_vantage_list_spec(b));
}

TEST(GenTest, ConfigGeneratorsAreDeterministic) {
  Gen a(123, 35);
  Gen b(123, 35);
  const auto ca = hispar::testkit::gen_campaign_config(a);
  const auto cb = hispar::testkit::gen_campaign_config(b);
  EXPECT_EQ(ca.seed, cb.seed);
  EXPECT_EQ(ca.shards, cb.shards);
  EXPECT_EQ(ca.landing_loads, cb.landing_loads);
  EXPECT_EQ(ca.fault_profile.str(), cb.fault_profile.str());
  EXPECT_EQ(ca.chaos.str(), cb.chaos.str());
}

// Every spec the generators emit must be inside its grammar — the
// round-trip oracles depend on that.
TEST(GenTest, GeneratedFaultSpecsParse) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Gen gen(seed, 10 + static_cast<int>(seed % 40));
    const std::string spec = hispar::testkit::gen_fault_spec(gen);
    EXPECT_NO_THROW(hispar::net::FaultProfile::parse(spec)) << spec;
  }
}

TEST(GenTest, GeneratedSearchFaultSpecsParse) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Gen gen(seed, 10 + static_cast<int>(seed % 40));
    const std::string spec = hispar::testkit::gen_search_fault_spec(gen);
    EXPECT_NO_THROW(hispar::net::SearchFaultProfile::parse(spec)) << spec;
  }
}

TEST(GenTest, GeneratedChaosSpecsParse) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Gen gen(seed, 10 + static_cast<int>(seed % 40));
    const std::string spec = hispar::testkit::gen_chaos_spec(gen);
    EXPECT_NO_THROW(hispar::net::OutageSchedule::parse(spec)) << spec;
  }
}

TEST(GenTest, GeneratedVantageSpecsParse) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Gen gen(seed, 10 + static_cast<int>(seed % 40));
    const std::string spec = hispar::testkit::gen_vantage_list_spec(gen);
    EXPECT_NO_THROW(hispar::net::VantageProfile::parse_list(spec)) << spec;
  }
}

TEST(GenTest, MutateIsDeterministicAndUsuallyChanges) {
  const std::string input = "hispar-checkpoint,v1,12345\nsite,0,ok\nendshard,0\n";
  int changed = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Gen a(seed, 30);
    Gen b(seed, 30);
    const std::string ma = hispar::testkit::mutate(a, input);
    EXPECT_EQ(ma, hispar::testkit::mutate(b, input));
    if (ma != input) ++changed;
  }
  EXPECT_GE(changed, 95);
}

TEST(GenTest, MutateOfEmptyProducesBytes) {
  Gen gen(5, 20);
  EXPECT_FALSE(hispar::testkit::mutate(gen, "").empty());
}

TEST(PropertyTest, CaseSeedIsStableAndSpread) {
  EXPECT_EQ(hispar::testkit::case_seed(1, 0), hispar::testkit::case_seed(1, 0));
  std::set<std::uint64_t> seeds;
  for (int iter = 0; iter < 100; ++iter)
    seeds.insert(hispar::testkit::case_seed(1, iter));
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(PropertyTest, PassingPropertyReturnsNoCounterexample) {
  PropertyConfig config;
  config.name = "always-holds";
  config.iters = 50;
  const Counterexample cx = hispar::testkit::check(
      config, [](Gen&) -> std::optional<std::string> { return std::nullopt; });
  EXPECT_FALSE(cx.failed);
  EXPECT_FALSE(static_cast<bool>(cx));
}

// A property that fails exactly when size >= 13 must be caught and
// shrunk to the precise boundary, and the replay line must name the
// case seed so a CI failure is reproducible from one printed line.
TEST(PropertyTest, FailureIsCaughtAndShrunkToBoundary) {
  PropertyConfig config;
  config.name = "size-boundary";
  config.seed = 3;
  config.iters = 100;
  config.min_size = 4;
  config.max_size = 50;
  const Counterexample cx = hispar::testkit::check(
      config, [](Gen& gen) -> std::optional<std::string> {
        if (gen.size() >= 13) return "too big";
        return std::nullopt;
      });
  ASSERT_TRUE(cx.failed);
  EXPECT_EQ(cx.size, 13);
  EXPECT_EQ(cx.message, "too big");
  EXPECT_NE(cx.replay.find("seed=" + std::to_string(cx.case_seed)),
            std::string::npos);
  EXPECT_NE(cx.replay.find("size=13"), std::string::npos);
  // The replay pair reproduces the failure directly.
  Gen replay(cx.case_seed, cx.size);
  EXPECT_GE(replay.size(), 13);
}

TEST(PropertyTest, ShrinkKeepsTheSameCaseSeed) {
  PropertyConfig config;
  config.name = "value-dependent";
  config.seed = 11;
  config.iters = 200;
  const Counterexample cx = hispar::testkit::check(
      config, [](Gen& gen) -> std::optional<std::string> {
        // Fails for roughly half the cases, independent of size — the
        // shrink loop must then walk size all the way to min_size.
        if (gen.u64() % 2 == 0) return "even draw";
        return std::nullopt;
      });
  ASSERT_TRUE(cx.failed);
  Gen replay(cx.case_seed, cx.size);
  EXPECT_EQ(replay.u64() % 2, 0u);
}

TEST(PropertyTest, MinimizeBytesShrinksToTheNeedle) {
  const std::string haystack =
      "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaXaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
  const std::string minimized = hispar::testkit::minimize_bytes(
      haystack, [](const std::string& candidate) {
        return candidate.find('X') != std::string::npos;
      });
  EXPECT_NE(minimized.find('X'), std::string::npos);
  EXPECT_LE(minimized.size(), 2u);
}

TEST(PropertyTest, MinimizeBytesRespectsCallBudget) {
  int calls = 0;
  const std::string input(4096, 'a');
  hispar::testkit::minimize_bytes(
      input,
      [&calls](const std::string&) {
        ++calls;
        return true;
      },
      32);
  EXPECT_LE(calls, 32);
}

}  // namespace
