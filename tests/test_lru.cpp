#include "cdn/lru_cache.h"

#include <gtest/gtest.h>

namespace {

using hispar::cdn::LruCache;

TEST(LruCacheTest, InsertAndTouch) {
  LruCache cache(100);
  cache.insert("a", 10);
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_TRUE(cache.touch("a"));
  EXPECT_FALSE(cache.touch("b"));
  EXPECT_EQ(cache.used_bytes(), 10u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(30);
  cache.insert("a", 10);
  cache.insert("b", 10);
  cache.insert("c", 10);
  cache.insert("d", 10);  // evicts a
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_TRUE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("d"));
}

TEST(LruCacheTest, TouchRefreshesRecency) {
  LruCache cache(30);
  cache.insert("a", 10);
  cache.insert("b", 10);
  cache.insert("c", 10);
  EXPECT_TRUE(cache.touch("a"));  // a becomes most recent
  cache.insert("d", 10);          // evicts b, not a
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
}

TEST(LruCacheTest, OversizedObjectNotAdmitted) {
  LruCache cache(50);
  cache.insert("huge", 100);
  EXPECT_FALSE(cache.contains("huge"));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCacheTest, ReinsertUpdatesSize) {
  LruCache cache(100);
  cache.insert("a", 10);
  cache.insert("a", 40);
  EXPECT_EQ(cache.used_bytes(), 40u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(LruCacheTest, OversizedUpdateEvictsStaleEntry) {
  // Regression: growing an existing key past the capacity used to
  // return early and leave the old-sized entry resident.
  LruCache cache(100);
  cache.insert("a", 10);
  cache.insert("a", 200);
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(LruCacheTest, EvictsMultipleToFit) {
  LruCache cache(30);
  cache.insert("a", 10);
  cache.insert("b", 10);
  cache.insert("c", 10);
  cache.insert("big", 25);  // must evict a, b and c
  EXPECT_TRUE(cache.contains("big"));
  EXPECT_LE(cache.used_bytes(), 30u);
}

TEST(LruCacheTest, ClearEmpties) {
  LruCache cache(100);
  cache.insert("a", 10);
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_FALSE(cache.contains("a"));
}

TEST(LruCacheTest, ZeroCapacityThrows) {
  EXPECT_THROW(LruCache(0), std::invalid_argument);
}

}  // namespace
