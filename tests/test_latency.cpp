#include "net/latency.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace {

using namespace hispar::net;

TEST(LatencyModel, BaseRttIsSymmetric) {
  LatencyModel model;
  for (int a = 0; a < kRegionCount; ++a)
    for (int b = 0; b < kRegionCount; ++b)
      EXPECT_DOUBLE_EQ(model.base_rtt(static_cast<Region>(a),
                                      static_cast<Region>(b)),
                       model.base_rtt(static_cast<Region>(b),
                                      static_cast<Region>(a)));
}

TEST(LatencyModel, IntraRegionFasterThanInterRegion) {
  LatencyModel model;
  EXPECT_LT(model.base_rtt(Region::kNorthAmerica, Region::kNorthAmerica),
            model.base_rtt(Region::kNorthAmerica, Region::kAsia));
  EXPECT_LT(model.base_rtt(Region::kEurope, Region::kEurope),
            model.base_rtt(Region::kEurope, Region::kSouthAmerica));
}

TEST(LatencyModel, JitteredRttStaysPositiveAndNearBase) {
  LatencyModel model;
  hispar::util::Rng rng(1);
  const double base = model.base_rtt(Region::kNorthAmerica, Region::kEurope);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double rtt = model.rtt(Region::kNorthAmerica, Region::kEurope, rng);
    EXPECT_GE(rtt, 1.0);
    sum += rtt;
  }
  // Lognormal jitter with sigma 0.15 inflates the mean ~1.1%.
  EXPECT_NEAR(sum / 10000.0, base, base * 0.05);
}

TEST(LatencyModel, TransferScalesLinearly) {
  LatencyModel model;
  EXPECT_DOUBLE_EQ(model.transfer_ms(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.transfer_ms(-5.0), 0.0);
  const double one_mb = model.transfer_ms(1e6);
  EXPECT_NEAR(model.transfer_ms(2e6), 2.0 * one_mb, 1e-9);
  // 50 Mbit/s default: 1 MB in ~160 ms.
  EXPECT_NEAR(one_mb, 160.0, 1.0);
}

TEST(LatencyModel, RejectsBadConfig) {
  LatencyConfig config;
  config.bandwidth_bytes_per_ms = 0.0;
  EXPECT_THROW(LatencyModel{config}, std::invalid_argument);
  LatencyConfig config2;
  config2.rtt_ms[0][0] = -1.0;
  EXPECT_THROW(LatencyModel{config2}, std::invalid_argument);
}

TEST(Region, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (int r = 0; r < kRegionCount; ++r)
    names.insert(to_string(static_cast<Region>(r)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kRegionCount));
}

}  // namespace
