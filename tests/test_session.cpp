// Browsing-session engine tests.
//
// Three layers, matching the subsystem's structure:
//  * browser::HttpCache — the standards-style state machine in
//    isolation (fresh within lifetime, stale-then-revalidate, LRU by
//    bytes, oversized-update eviction) and its lifetime counters;
//  * browser::SessionState through PageLoader — warm-page behaviour
//    (fresh hits skip the network and must not consume fault-injector
//    draws, stale entries revalidate for header-sized transfers) and
//    the sessions-off null-pointer no-op;
//  * core::SessionCampaign — the campaign contract: visit order is a
//    pure function of (seed, domain, list), artifacts are byte-identical
//    for any --jobs value, checkpoints resume bit-identically after a
//    kill (torn trailing blocks are discarded), and the warm arm
//    actually narrows the landing-vs-internal gap the paper measures.
#include "core/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "browser/http_cache.h"
#include "browser/loader.h"
#include "core/analyses.h"
#include "core/hispar.h"
#include "core/measurement.h"
#include "core/serialization.h"
#include "net/faults.h"
#include "obs/trace.h"
#include "web/generator.h"

namespace {

using namespace hispar;
using browser::CacheOutcome;
using browser::HttpCache;

// ---------------------------------------------------------------------
// HttpCache state machine
// ---------------------------------------------------------------------

TEST(HttpCacheTest, MissInsertFreshLifecycle) {
  HttpCache cache(1000);
  EXPECT_EQ(cache.lookup("a", 0.0), CacheOutcome::kMiss);
  cache.insert("a", 100, 0.0, 60.0);
  EXPECT_EQ(cache.lookup("a", 30.0), CacheOutcome::kFresh);
  EXPECT_EQ(cache.used_bytes(), 100u);
  EXPECT_EQ(cache.entries(), 1u);
  const auto& s = cache.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.fresh_hits, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(HttpCacheTest, StaleEntryRevalidatesAndRenews) {
  HttpCache cache(1000);
  cache.insert("a", 100, 0.0, 60.0);
  // Past the lifetime the entry is stale, not gone: the loader moves
  // headers only (304) and renews it.
  EXPECT_EQ(cache.lookup("a", 90.0), CacheOutcome::kStale);
  cache.revalidated("a", 90.0, 60.0);
  EXPECT_EQ(cache.lookup("a", 120.0), CacheOutcome::kFresh);
  EXPECT_EQ(cache.lookup("a", 200.0), CacheOutcome::kStale);
  const auto& s = cache.stats();
  EXPECT_EQ(s.lookups, 3u);
  EXPECT_EQ(s.fresh_hits, 1u);
  EXPECT_EQ(s.revalidations, 1u);
  // Stale lookups are not an outcome bucket of their own: the classified
  // counters only bound the lookup count from below.
  EXPECT_LE(s.fresh_hits + s.revalidations + s.misses, s.lookups);
}

TEST(HttpCacheTest, EvictsLeastRecentlyUsedByBytes) {
  HttpCache cache(100);
  cache.insert("a", 60, 0.0, 3600.0);
  cache.insert("b", 30, 1.0, 3600.0);
  // Touch `a` so `b` is the LRU victim when `c` needs room.
  EXPECT_EQ(cache.lookup("a", 2.0), CacheOutcome::kFresh);
  cache.insert("c", 30, 3.0, 3600.0);
  EXPECT_EQ(cache.lookup("a", 4.0), CacheOutcome::kFresh);
  EXPECT_EQ(cache.lookup("b", 4.0), CacheOutcome::kMiss);
  EXPECT_EQ(cache.lookup("c", 4.0), CacheOutcome::kFresh);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.used_bytes(), 100u);
}

TEST(HttpCacheTest, OversizedObjectIsNotAdmitted) {
  HttpCache cache(100);
  cache.insert("big", 500, 0.0, 3600.0);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_EQ(cache.lookup("big", 1.0), CacheOutcome::kMiss);
}

TEST(HttpCacheTest, OversizedUpdateEvictsTheResidentEntry) {
  // Same contract as cdn::LruCache: an update that no longer fits must
  // not leave the stale small body behind.
  HttpCache cache(100);
  cache.insert("a", 40, 0.0, 3600.0);
  cache.insert("a", 500, 1.0, 3600.0);
  EXPECT_EQ(cache.lookup("a", 2.0), CacheOutcome::kMiss);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(HttpCacheTest, RevalidatedAfterEvictionIsANoOp) {
  HttpCache cache(100);
  cache.insert("a", 60, 0.0, 1.0);
  EXPECT_EQ(cache.lookup("a", 10.0), CacheOutcome::kStale);
  cache.insert("b", 90, 11.0, 3600.0);  // evicts `a` while it awaits a 304
  cache.revalidated("a", 12.0, 3600.0);
  EXPECT_EQ(cache.lookup("a", 13.0), CacheOutcome::kMiss);
  EXPECT_EQ(cache.stats().revalidations, 0u);
}

TEST(HttpCacheTest, ZeroCapacityIsRejected) {
  EXPECT_THROW(HttpCache cache(0), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Loader-level session semantics
// ---------------------------------------------------------------------

class SessionLoaderTest : public ::testing::Test {
 protected:
  SessionLoaderTest()
      : web_({120, 11, 200, false}),
        latency_(),
        cdn_(web_.cdn_registry(), latency_),
        resolver_({"local", 1, 6.0, net::Region::kNorthAmerica, 1.0},
                  latency_),
        loader_({&latency_, &web_.cdn_registry(), &cdn_, &resolver_,
                 net::Region::kNorthAmerica}) {}

  browser::LoadResult load(const web::WebPage& page,
                           browser::LoadOptions options,
                           std::uint64_t seed = 1) {
    return loader_.load(page, util::Rng(seed), options);
  }

  web::SyntheticWeb web_;
  net::LatencyModel latency_;
  cdn::CdnHierarchy cdn_;
  net::CachingResolver resolver_;
  browser::PageLoader loader_;
};

TEST_F(SessionLoaderTest, SecondVisitHitsTheCacheAndLoadsFaster) {
  const auto page = web_.site_by_rank(5).page(1);
  browser::SessionState client(50'000'000);
  browser::LoadOptions options;
  options.session = &client;
  const auto cold = load(page, options);
  options.start_time_s = cold.on_load_ms / 1000.0 + 1.0;
  const auto warm = load(page, options);
  // The first visit misses on every distinct key (site-shared assets
  // repeated within the page may already hit); the second visit serves
  // strictly more locally and fetches strictly less.
  EXPECT_GT(cold.cache_misses, 0);
  EXPECT_GT(warm.cache_fresh_hits, cold.cache_fresh_hits);
  EXPECT_LT(warm.cache_misses, cold.cache_misses);
  EXPECT_LT(warm.plt_ms, cold.plt_ms);
  // Warm DNS + keep-alive: the second page of a session re-resolves and
  // re-handshakes strictly less.
  EXPECT_LT(warm.dns_lookups, cold.dns_lookups);
  EXPECT_LT(warm.handshakes, cold.handshakes);
}

TEST_F(SessionLoaderTest, FreshHitCountIsIndifferentToFaultInjection) {
  // One half of the satellite contract: fault decisions ride their own
  // keyed stream, so injecting faults into the network path must not
  // change which objects the cache serves locally.
  const auto page = web_.site_by_rank(7).page(2);
  const auto warm_visit = [&](net::FaultInjector* injector) {
    cdn::CdnHierarchy cdn(web_.cdn_registry(), latency_);
    net::CachingResolver resolver(
        {"local", 1, 6.0, net::Region::kNorthAmerica, 1.0}, latency_);
    browser::PageLoader loader({&latency_, &web_.cdn_registry(), &cdn,
                                &resolver, net::Region::kNorthAmerica});
    browser::SessionState client(50'000'000);
    browser::LoadOptions options;
    options.session = &client;
    loader.load(page, util::Rng(3), options);  // fill, fault-free
    options.start_time_s = 100.0;
    options.faults = injector;
    return loader.load(page, util::Rng(3), options);
  };
  const auto clean = warm_visit(nullptr);
  net::FaultInjector injector(net::FaultProfile::uniform(0.10),
                              util::Rng(99));
  const auto faulty = warm_visit(&injector);
  ASSERT_GT(clean.cache_fresh_hits, 0);
  EXPECT_EQ(faulty.cache_fresh_hits, clean.cache_fresh_hits);
}

TEST_F(SessionLoaderTest, NullSessionDrawsNothingExtra) {
  // options.session == nullptr must be byte-identical to a build that
  // never had the feature; spot-check against default options on a
  // fresh substrate.
  const auto page = web_.site_by_rank(9).page(0);
  const auto run = [&](bool set_null_session) {
    cdn::CdnHierarchy cdn(web_.cdn_registry(), latency_);
    net::CachingResolver resolver(
        {"local", 1, 6.0, net::Region::kNorthAmerica, 1.0}, latency_);
    browser::PageLoader loader({&latency_, &web_.cdn_registry(), &cdn,
                                &resolver, net::Region::kNorthAmerica});
    browser::LoadOptions options;
    if (set_null_session) options.session = nullptr;
    return loader.load(page, util::Rng(17), options);
  };
  const auto a = run(false);
  const auto b = run(true);
  EXPECT_EQ(a.plt_ms, b.plt_ms);
  EXPECT_EQ(a.speed_index_ms, b.speed_index_ms);
  EXPECT_EQ(a.handshakes, b.handshakes);
  EXPECT_EQ(a.cache_fresh_hits, 0);
  EXPECT_EQ(b.cache_misses, 0);  // no cache consulted at all
}

// ---------------------------------------------------------------------
// SessionCampaign
// ---------------------------------------------------------------------

class SessionCampaignTest : public ::testing::Test {
 protected:
  SessionCampaignTest()
      : web_({150, 37, 300, false}), toplists_(web_), engine_(web_) {
    core::HisparBuilder builder(web_, toplists_, engine_);
    core::HisparConfig config;
    config.target_sites = 12;
    config.urls_per_site = 6;
    config.min_internal_results = 4;
    list_ = builder.build(config, 0);
  }

  core::SessionConfig session_config() {
    core::SessionConfig config;
    config.base.landing_loads = 2;
    config.base.shards = 4;
    config.session_len = 3;
    return config;
  }

  struct RunBytes {
    std::string csv;
    std::string warm_hits;
    std::string metrics;
    std::string trace;
  };

  RunBytes run_bytes(core::SessionConfig config) {
    config.base.observability.enabled = true;
    core::SessionCampaign campaign(web_, config);
    const auto sites = campaign.run(list_);
    RunBytes bytes;
    std::ostringstream csv;
    core::write_measure_csv(csv, sites);
    bytes.csv = csv.str();
    std::ostringstream warm_hits;
    core::write_warm_hits_csv(warm_hits, sites, campaign.cache_stats());
    bytes.warm_hits = warm_hits.str();
    std::ostringstream metrics;
    campaign.telemetry().metrics.write_json(metrics);
    bytes.metrics = metrics.str();
    std::ostringstream trace;
    obs::write_chrome_trace(trace, campaign.telemetry().spans);
    bytes.trace = trace.str();
    return bytes;
  }

  std::string temp_path(const char* name) {
    return std::string("/tmp/hispar_session_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + name;
  }

  web::SyntheticWeb web_;
  toplist::TopListFactory toplists_;
  search::SearchEngine engine_;
  core::HisparList list_;
};

TEST_F(SessionCampaignTest, SessionPagesAreAPureFunctionOfSeedAndDomain) {
  const auto& set = list_.sets.front();
  ASSERT_GE(set.page_indices.size(), 4u);
  const auto pages = core::SessionCampaign::session_pages(42, set, 3);
  ASSERT_EQ(pages.size(), 4u);  // landing + 3 internals
  EXPECT_EQ(pages.front(), set.page_indices.front());
  // Repeatable, drawn from the set, no duplicates.
  EXPECT_EQ(pages, core::SessionCampaign::session_pages(42, set, 3));
  std::set<std::size_t> unique(pages.begin(), pages.end());
  EXPECT_EQ(unique.size(), pages.size());
  for (const std::size_t page : pages)
    EXPECT_NE(std::find(set.page_indices.begin(), set.page_indices.end(),
                        page),
              set.page_indices.end());
  // A longer budget than the set caps at the whole set.
  EXPECT_EQ(core::SessionCampaign::session_pages(42, set, 100).size(),
            set.page_indices.size());
  // The axes are live: another seed or another domain reshuffles for at
  // least one of the list's sites.
  bool seed_matters = false, domain_matters = false;
  for (const auto& other : list_.sets) {
    if (other.page_indices.size() < 4) continue;
    seed_matters =
        seed_matters || core::SessionCampaign::session_pages(42, other, 3) !=
                            core::SessionCampaign::session_pages(43, other, 3);
    auto renamed = other;
    renamed.domain += ".example";
    domain_matters =
        domain_matters || core::SessionCampaign::session_pages(42, other, 3) !=
                              core::SessionCampaign::session_pages(
                                  42, renamed, 3);
  }
  EXPECT_TRUE(seed_matters);
  EXPECT_TRUE(domain_matters);
}

TEST_F(SessionCampaignTest, ZeroSessionLenIsRejected) {
  auto config = session_config();
  config.session_len = 0;
  core::SessionCampaign campaign(web_, config);
  EXPECT_THROW(campaign.run(list_), std::invalid_argument);
}

TEST_F(SessionCampaignTest, WarmSessionsNarrowTheGapColdControlDoesNot) {
  auto warm_config = session_config();
  auto cold_config = warm_config;
  cold_config.warm = false;
  core::SessionCampaign warm_campaign(web_, warm_config);
  core::SessionCampaign cold_campaign(web_, cold_config);
  const auto warm = warm_campaign.run(list_);
  const auto cold = cold_campaign.run(list_);
  ASSERT_EQ(warm.size(), cold.size());

  // The control arm never touches a cache.
  for (const auto& stats : cold_campaign.cache_stats())
    EXPECT_EQ(stats, browser::CacheStats{});
  std::uint64_t fresh = 0;
  for (const auto& stats : warm_campaign.cache_stats())
    fresh += stats.fresh_hits;
  EXPECT_GT(fresh, 0u);

  // Same sites, same visit order — the only difference is the client
  // state carried across a session's pages, so warm internal pages are
  // strictly cheaper in aggregate.
  double warm_plt = 0.0, cold_plt = 0.0;
  double warm_handshakes = 0.0, cold_handshakes = 0.0;
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_EQ(warm[i].domain, cold[i].domain);
    ASSERT_EQ(warm[i].internals.size(), cold[i].internals.size());
    for (std::size_t j = 0; j < warm[i].internals.size(); ++j) {
      warm_plt += warm[i].internals[j].plt_ms;
      cold_plt += cold[i].internals[j].plt_ms;
      warm_handshakes += warm[i].internals[j].handshakes;
      cold_handshakes += cold[i].internals[j].handshakes;
    }
  }
  EXPECT_LT(warm_plt, cold_plt);
  EXPECT_LT(warm_handshakes, cold_handshakes);

  // And the session report built from the pair reflects it.
  const auto report = core::build_session_report(
      cold, warm, warm_campaign.cache_stats(), warm_campaign.telemetry(),
      warm_config.session_len);
  EXPECT_GT(report.cache_fresh_hits, 0u);
  EXPECT_GT(report.warm_hit_ratio(), 0.0);
  bool saw_plt = false;
  for (const auto& line : report.metric_lines) {
    if (line.metric != "plt_ms") continue;
    saw_plt = true;
    ASSERT_TRUE(line.has_values);
    const double cold_gap =
        line.cold_internal_median - line.cold_landing_median;
    const double warm_gap =
        line.warm_internal_median - line.warm_landing_median;
    EXPECT_LT(warm_gap, cold_gap)
        << "warm replay did not narrow the internal-page PLT cost";
  }
  EXPECT_TRUE(saw_plt);
}

TEST_F(SessionCampaignTest, JobsNeverChangeSessionArtifactBytes) {
  // The sessions axis of the determinism matrix, with fault injection
  // active so retry/fault keying is exercised too.
  for (const std::string profile : {"none", "uniform:0.05"}) {
    auto config = session_config();
    config.base.fault_profile = net::FaultProfile::parse(profile);
    config.base.jobs = 1;
    const RunBytes reference = run_bytes(config);
    for (const std::size_t jobs : {2u, 8u}) {
      config.base.jobs = jobs;
      const RunBytes other = run_bytes(config);
      const std::string cell = profile + ", jobs " + std::to_string(jobs);
      EXPECT_EQ(reference.csv, other.csv) << "session CSV differs: " << cell;
      EXPECT_EQ(reference.warm_hits, other.warm_hits)
          << "warm-hits CSV differs: " << cell;
      EXPECT_EQ(reference.metrics, other.metrics)
          << "metrics JSON differs: " << cell;
      EXPECT_EQ(reference.trace, other.trace)
          << "trace JSON differs: " << cell;
    }
  }
}

TEST_F(SessionCampaignTest, CacheCapacityNeverLeaksIntoTheStreamKeys) {
  // The other half of the satellite contract: every fault/chaos/load
  // stream is keyed by (seed, domain, page, attempt) — never by the
  // cache configuration. Two capacities large enough that neither ever
  // evicts produce the same lookup/insert sequence, so every artifact
  // byte must match; a keying leak (cache_bytes folded into an RNG
  // stream, a fresh hit consuming an injector draw it should skip)
  // breaks the equality.
  auto big = session_config();
  big.base.fault_profile = net::FaultProfile::uniform(0.08);
  auto bigger = big;
  bigger.cache_bytes = big.cache_bytes * 10;
  const RunBytes a = run_bytes(big);
  const RunBytes b = run_bytes(bigger);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.warm_hits, b.warm_hits);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);
  // The cell is live: faults actually struck.
  EXPECT_NE(a.metrics.find("faults.injected"), std::string::npos);
}

TEST_F(SessionCampaignTest, ResumeFromCompleteCheckpointIsIdentical) {
  auto config = session_config();
  config.base.fault_profile = net::FaultProfile::uniform(0.05);
  config.base.observability.enabled = true;
  const RunBytes uninterrupted = run_bytes(config);

  const std::string path = temp_path("complete");
  std::remove(path.c_str());
  config.checkpoint_path = path;
  const RunBytes first = run_bytes(config);
  EXPECT_EQ(uninterrupted.csv, first.csv);

  // Every session is on disk now: the rerun splices them all back in,
  // telemetry included.
  const RunBytes resumed = run_bytes(config);
  EXPECT_EQ(uninterrupted.csv, resumed.csv);
  EXPECT_EQ(uninterrupted.warm_hits, resumed.warm_hits);
  EXPECT_EQ(uninterrupted.metrics, resumed.metrics);
  EXPECT_EQ(uninterrupted.trace, resumed.trace);
  std::remove(path.c_str());
}

TEST_F(SessionCampaignTest, ResumeFromKilledCampaignDiscardsTheTornTail) {
  auto config = session_config();
  config.base.fault_profile = net::FaultProfile::uniform(0.05);
  config.base.observability.enabled = true;
  const RunBytes uninterrupted = run_bytes(config);

  const std::string full_path = temp_path("full");
  std::remove(full_path.c_str());
  config.checkpoint_path = full_path;
  run_bytes(config);

  // Simulate a kill: keep the header, the first complete session block,
  // and a torn fragment of the second.
  std::ifstream full(full_path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(full, line);) lines.push_back(line);
  full.close();
  std::size_t first_end = 0;
  for (std::size_t i = 0; i < lines.size(); ++i)
    if (lines[i].rfind("endsession,", 0) == 0) {
      first_end = i;
      break;
    }
  ASSERT_GT(first_end, 0u) << "campaign wrote no complete session";
  ASSERT_GT(lines.size(), first_end + 2) << "need a second block to tear";

  const std::string torn_path = temp_path("torn");
  {
    std::ofstream torn(torn_path);
    for (std::size_t i = 0; i <= first_end + 1; ++i) torn << lines[i] << '\n';
    torn << lines[first_end + 2].substr(0, lines[first_end + 2].size() / 2);
  }

  config.checkpoint_path = torn_path;
  const RunBytes resumed = run_bytes(config);
  EXPECT_EQ(uninterrupted.csv, resumed.csv);
  EXPECT_EQ(uninterrupted.warm_hits, resumed.warm_hits);
  EXPECT_EQ(uninterrupted.metrics, resumed.metrics);
  EXPECT_EQ(uninterrupted.trace, resumed.trace);

  std::remove(full_path.c_str());
  std::remove(torn_path.c_str());
}

TEST_F(SessionCampaignTest, MismatchedSessionConfigIsRejectedOnResume) {
  auto config = session_config();
  const std::string path = temp_path("digest");
  std::remove(path.c_str());
  config.checkpoint_path = path;
  core::SessionCampaign first(web_, config);
  first.run(list_);

  // Session knobs are part of the fingerprint...
  auto longer = config;
  longer.session_len = 4;
  core::SessionCampaign second(web_, longer);
  EXPECT_THROW(second.run(list_), std::runtime_error);
  auto colder = config;
  colder.warm = false;
  core::SessionCampaign third(web_, colder);
  EXPECT_THROW(third.run(list_), std::runtime_error);

  // ...jobs is explicitly not.
  auto more_jobs = config;
  more_jobs.base.jobs = 8;
  core::SessionCampaign fourth(web_, more_jobs);
  EXPECT_EQ(fourth.run(list_).size(), list_.sets.size());
  std::remove(path.c_str());
}

TEST_F(SessionCampaignTest, CheckpointDigestCoversTheSessionKnobs) {
  const auto config = session_config();
  const core::SessionCampaign reference(web_, config);
  const std::uint64_t digest = reference.checkpoint_digest(list_);
  auto longer = config;
  longer.session_len = 4;
  auto smaller = config;
  smaller.cache_bytes = 1024;
  auto colder = config;
  colder.warm = false;
  auto reseeded = config;
  reseeded.base.seed = config.base.seed + 1;
  EXPECT_NE(core::SessionCampaign(web_, longer).checkpoint_digest(list_),
            digest);
  EXPECT_NE(core::SessionCampaign(web_, smaller).checkpoint_digest(list_),
            digest);
  EXPECT_NE(core::SessionCampaign(web_, colder).checkpoint_digest(list_),
            digest);
  EXPECT_NE(core::SessionCampaign(web_, reseeded).checkpoint_digest(list_),
            digest);
  auto more_jobs = config;
  more_jobs.base.jobs = 8;
  EXPECT_EQ(core::SessionCampaign(web_, more_jobs).checkpoint_digest(list_),
            digest);
}

// ---------------------------------------------------------------------
// Analysis plumbing
// ---------------------------------------------------------------------

TEST_F(SessionCampaignTest, AnalysisHelpersRejectMismatchedInputs) {
  core::SessionCampaign campaign(web_, session_config());
  const auto warm = campaign.run(list_);
  auto truncated = warm;
  truncated.pop_back();
  EXPECT_THROW(core::cold_warm_delta(truncated, warm),
               std::invalid_argument);
  auto stats = campaign.cache_stats();
  stats.pop_back();
  std::ostringstream os;
  EXPECT_THROW(core::write_warm_hits_csv(os, warm, stats),
               std::invalid_argument);
}

TEST_F(SessionCampaignTest, WarmHitsCsvIsWellFormed) {
  auto config = session_config();
  core::SessionCampaign campaign(web_, config);
  const auto warm = campaign.run(list_);
  std::ostringstream os;
  core::write_warm_hits_csv(os, warm, campaign.cache_stats());
  std::istringstream in(os.str());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header,
            "domain,rank,lookups,fresh_hits,revalidations,misses,"
            "insertions,evictions,warm_hit_ratio");
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);) ++rows;
  EXPECT_EQ(rows, warm.size());
}

}  // namespace
