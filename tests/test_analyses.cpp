#include "core/analyses.h"

#include <gtest/gtest.h>

namespace {

using namespace hispar;
using core::MetricFn;
using core::PageMetrics;
using core::SiteObservation;

PageMetrics metrics_with(double bytes, double plt = 1000.0) {
  PageMetrics m;
  m.bytes = bytes;
  m.plt_ms = plt;
  m.objects = bytes / 1000.0;
  return m;
}

std::vector<SiteObservation> fixture() {
  // Three sites with controlled landing/internal contrasts.
  std::vector<SiteObservation> sites(3);
  sites[0].domain = "big-landing.com";
  sites[0].category = web::SiteCategory::kShopping;
  sites[0].landing = metrics_with(3000.0, 900.0);
  sites[0].internals = {metrics_with(1000.0, 1200.0),
                        metrics_with(2000.0, 1000.0),
                        metrics_with(1500.0, 1100.0)};
  sites[1].domain = "equal.com";
  sites[1].category = web::SiteCategory::kWorld;
  sites[1].landing = metrics_with(1000.0, 2000.0);
  sites[1].internals = {metrics_with(1000.0, 1500.0),
                        metrics_with(1000.0, 1700.0)};
  sites[2].domain = "small-landing.com";
  sites[2].category = web::SiteCategory::kWorld;
  sites[2].landing = metrics_with(500.0, 2500.0);
  sites[2].internals = {metrics_with(900.0, 2000.0),
                        metrics_with(1100.0, 1800.0)};
  return sites;
}

TEST(CompareMetric, PairsLandingWithInternalMedian) {
  const auto comparison =
      core::compare_metric(fixture(), core::metric::bytes);
  ASSERT_EQ(comparison.landing.size(), 3u);
  EXPECT_DOUBLE_EQ(comparison.landing[0], 3000.0);
  EXPECT_DOUBLE_EQ(comparison.internal_median[0], 1500.0);
  EXPECT_DOUBLE_EQ(comparison.internal_median[2], 1000.0);
  const auto deltas = comparison.deltas();
  EXPECT_DOUBLE_EQ(deltas[0], 1500.0);
  EXPECT_DOUBLE_EQ(deltas[1], 0.0);
  EXPECT_DOUBLE_EQ(deltas[2], -500.0);
}

TEST(CompareMetric, FractionAndGeomean) {
  const auto comparison =
      core::compare_metric(fixture(), core::metric::bytes);
  EXPECT_NEAR(comparison.fraction_landing_greater(), 1.0 / 3.0, 1e-12);
  // Ratios: 2, 1, 0.5 -> geometric mean 1.
  EXPECT_NEAR(comparison.geomean_ratio(), 1.0, 1e-12);
}

TEST(Values, CollectsPopulations) {
  const auto sites = fixture();
  EXPECT_EQ(core::landing_values(sites, core::metric::bytes).size(), 3u);
  EXPECT_EQ(core::internal_values(sites, core::metric::bytes).size(), 7u);
}

TEST(Ks, LandingVsInternalRuns) {
  const auto result =
      core::ks_landing_vs_internal(fixture(), core::metric::plt_ms);
  EXPECT_GE(result.statistic, 0.0);
  EXPECT_LE(result.statistic, 1.0);
}

TEST(RankBins, SplitsDeltasByPosition) {
  std::vector<SiteObservation> sites;
  for (int i = 0; i < 10; ++i) {
    SiteObservation site;
    site.landing = metrics_with(i < 5 ? 2000.0 : 500.0);
    site.internals = {metrics_with(1000.0)};
    sites.push_back(site);
  }
  const auto bins = core::delta_by_rank_bin(sites, core::metric::bytes, 2);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0], 1000.0);
  EXPECT_DOUBLE_EQ(bins[1], -500.0);
}

TEST(HintUsageTest, CountsZeroHintPages) {
  std::vector<SiteObservation> sites(2);
  sites[0].landing.hints_total = 3;
  sites[0].internals.resize(2);
  sites[0].internals[0].hints_total = 0;
  sites[0].internals[1].hints_total = 2;
  sites[1].landing.hints_total = 0;
  sites[1].internals.resize(2);
  sites[1].internals[0].hints_total = 0;
  sites[1].internals[1].hints_total = 0;
  const auto usage = core::hint_usage(sites);
  EXPECT_DOUBLE_EQ(usage.landing_with_hints, 0.5);
  EXPECT_DOUBLE_EQ(usage.internal_without_hints, 0.75);
  EXPECT_EQ(usage.landing_counts.size(), 2u);
  EXPECT_EQ(usage.internal_counts.size(), 4u);
}

TEST(XCacheSummaryTest, AggregatesHitRatios) {
  std::vector<SiteObservation> sites(1);
  sites[0].landing.x_cache_hits = 8;
  sites[0].landing.x_cache_misses = 2;
  PageMetrics internal;
  internal.x_cache_hits = 3;
  internal.x_cache_misses = 7;
  sites[0].internals = {internal};
  const auto summary = core::x_cache_summary(sites);
  EXPECT_DOUBLE_EQ(summary.landing_hit_ratio, 0.8);
  EXPECT_DOUBLE_EQ(summary.internal_hit_ratio, 0.3);
}

TEST(SecuritySummaryTest, CountsPaperStatistics) {
  std::vector<SiteObservation> sites(3);
  // Site 0: secure landing, 12 HTTP internal pages.
  sites[0].internals.resize(15);
  for (int i = 0; i < 12; ++i) sites[0].internals[static_cast<std::size_t>(i)].is_http = true;
  // Site 1: HTTP landing (excluded from the insecure-internal count).
  sites[1].landing.is_http = true;
  sites[1].internals.resize(3);
  sites[1].internals[0].is_http = true;
  // Site 2: clean but mixed content on one internal page.
  sites[2].landing.mixed_content = true;
  sites[2].internals.resize(2);
  sites[2].internals[1].mixed_content = true;
  const auto summary = core::security_summary(sites);
  EXPECT_EQ(summary.http_landing_sites, 1);
  EXPECT_EQ(summary.sites_with_http_internal, 1);
  EXPECT_EQ(summary.sites_with_10plus_http_internal, 1);
  EXPECT_EQ(summary.mixed_landing_sites, 1);
  EXPECT_EQ(summary.sites_with_mixed_internal, 1);
  EXPECT_EQ(summary.insecure_internal_counts.size(), 2u);  // secure-landing sites
}

TEST(UnseenThirdPartiesTest, CountsDomainsAbsentFromLanding) {
  std::vector<SiteObservation> sites(1);
  sites[0].landing.third_parties = {"a.com", "b.com"};
  PageMetrics page1, page2;
  page1.third_parties = {"a.com", "c.com"};
  page2.third_parties = {"c.com", "d.com", "e.com"};
  sites[0].internals = {page1, page2};
  const auto unseen = core::unseen_third_parties(sites);
  ASSERT_EQ(unseen.size(), 1u);
  EXPECT_DOUBLE_EQ(unseen[0], 3.0);  // c, d, e
}

TEST(HbSummaryTest, ClassifiesLandingVsInternalOnly) {
  std::vector<SiteObservation> sites(3);
  sites[0].landing.header_bidding = true;
  sites[0].landing.hb_ad_slots = 9;
  PageMetrics hb_internal;
  hb_internal.header_bidding = true;
  hb_internal.hb_ad_slots = 7;
  sites[0].internals = {hb_internal};
  sites[1].internals = {hb_internal};  // internal only
  sites[2].internals = {PageMetrics{}};  // no HB at all
  const auto summary = core::hb_summary(sites);
  EXPECT_EQ(summary.sites_with_hb_landing, 1);
  EXPECT_EQ(summary.sites_with_hb_internal_only, 1);
  EXPECT_EQ(summary.landing_slots.size(), 2u);
}

TEST(CategoryDeltas, FiltersByCategory) {
  const auto world =
      core::plt_delta_for_category(fixture(), web::SiteCategory::kWorld);
  ASSERT_EQ(world.size(), 2u);
  // equal.com: 2000 - 1600 = 400ms = 0.4s.
  EXPECT_NEAR(world[0], 0.4, 1e-9);
  const auto sports =
      core::plt_delta_for_category(fixture(), web::SiteCategory::kSports);
  EXPECT_TRUE(sports.empty());
}

TEST(ContentMixTest, MediansPerCategory) {
  std::vector<SiteObservation> sites(1);
  sites[0].landing.mix_fractions[0] = 0.5;
  PageMetrics internal;
  internal.mix_fractions[0] = 0.2;
  sites[0].internals = {internal};
  const auto mix = core::content_mix(sites);
  EXPECT_DOUBLE_EQ(mix.landing_median[0], 0.5);
  EXPECT_DOUBLE_EQ(mix.internal_median[0], 0.2);
}

TEST(DepthProfileTest, MediansAndTails) {
  std::vector<SiteObservation> sites(1);
  sites[0].landing.depth_counts = {1, 10, 5, 2, 0, 0};
  PageMetrics internal;
  internal.depth_counts = {1, 8, 3, 1, 0, 0};
  sites[0].internals = {internal};
  const auto profile = core::depth_profile(sites);
  EXPECT_DOUBLE_EQ(profile.landing_median[2], 5.0);
  EXPECT_DOUBLE_EQ(profile.internal_median[2], 3.0);
}

TEST(WaitTimesTest, ConcatenatesSamples) {
  std::vector<SiteObservation> sites(1);
  sites[0].landing.wait_samples_ms = {10.0, 20.0};
  PageMetrics internal;
  internal.wait_samples_ms = {30.0};
  sites[0].internals = {internal};
  const auto times = core::wait_times(sites);
  EXPECT_EQ(times.landing_ms.size(), 2u);
  EXPECT_EQ(times.internal_ms.size(), 1u);
}

}  // namespace
