#include "util/url.h"

#include <gtest/gtest.h>

namespace {

using namespace hispar::util;

TEST(ParseUrl, HttpsWithPath) {
  const auto url = parse_url("https://www.Example.com/a/b?q=1");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->scheme, Scheme::kHttps);
  EXPECT_EQ(url->host, "www.example.com");  // lower-cased
  EXPECT_EQ(url->path, "/a/b?q=1");
}

TEST(ParseUrl, HttpWithoutPathGetsRoot) {
  const auto url = parse_url("http://example.com");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->scheme, Scheme::kHttp);
  EXPECT_EQ(url->path, "/");
  EXPECT_TRUE(url->is_landing());
}

TEST(ParseUrl, RoundTripsThroughStr) {
  const std::string raw = "https://site.com/page/1";
  const auto url = parse_url(raw);
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->str(), raw);
  EXPECT_EQ(parse_url(url->str()), url);
}

class BadUrl : public ::testing::TestWithParam<const char*> {};

TEST_P(BadUrl, IsRejected) {
  EXPECT_FALSE(parse_url(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, BadUrl,
                         ::testing::Values("ftp://example.com", "example.com",
                                           "https://", "http:///path",
                                           "https://bad host/x",
                                           "https://host:443/x",
                                           "https://host/pa th"));

TEST(IsLanding, OnlyRootPath) {
  EXPECT_TRUE(parse_url("https://a.com/")->is_landing());
  EXPECT_FALSE(parse_url("https://a.com/x")->is_landing());
}

struct DomainCase {
  const char* host;
  const char* expected;
};

class RegistrableDomain : public ::testing::TestWithParam<DomainCase> {};

TEST_P(RegistrableDomain, ExtractsSld) {
  EXPECT_EQ(registrable_domain(GetParam().host), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Hosts, RegistrableDomain,
    ::testing::Values(DomainCase{"www.example.com", "example.com"},
                      DomainCase{"example.com", "example.com"},
                      DomainCase{"static01.nyt.com", "nyt.com"},
                      DomainCase{"a.b.c.deep.org", "deep.org"},
                      DomainCase{"www.bbc.co.uk", "bbc.co.uk"},
                      DomainCase{"tesco.co.uk", "tesco.co.uk"},
                      DomainCase{"shop.example.com.au", "example.com.au"},
                      DomainCase{"WWW.UPPER.COM", "upper.com"},
                      DomainCase{"localhost", "localhost"},
                      DomainCase{"co.uk", "co.uk"},
                      // Fully-qualified (trailing root dot) spellings
                      // canonicalize to the same registrable domain.
                      DomainCase{"example.com.", "example.com"},
                      DomainCase{"www.example.com.", "example.com"},
                      DomainCase{"www.bbc.co.uk.", "bbc.co.uk"},
                      DomainCase{"localhost.", "localhost"},
                      // IP literals have no registrable domain; the
                      // whole address is the identity.
                      DomainCase{"192.168.0.1", "192.168.0.1"},
                      DomainCase{"10.0.0.1.", "10.0.0.1"},
                      DomainCase{"2001:db8::1", "2001:db8::1"},
                      DomainCase{"[2001:db8::1]", "[2001:db8::1]"}));

TEST(ThirdParty, SameSldIsFirstParty) {
  // The paper's example: images.guardian.com is first-party to
  // www.guardian.com; cdn.akamai.com is third-party (§6.2).
  EXPECT_FALSE(is_third_party("www.guardian.com", "images.guardian.com"));
  EXPECT_TRUE(is_third_party("www.guardian.com", "cdn.akamai.com"));
}

TEST(ThirdParty, PublicSuffixAware) {
  // tesco.co.uk must be third-party to bbc.co.uk (§6.2).
  EXPECT_TRUE(is_third_party("www.bbc.co.uk", "tesco.co.uk"));
  EXPECT_FALSE(is_third_party("www.bbc.co.uk", "static.bbc.co.uk"));
}

TEST(ThirdParty, TrailingDotIsFirstParty) {
  // Regression: an object served from the fully-qualified spelling of
  // the page's own host used to count as third-party.
  EXPECT_FALSE(is_third_party("www.example.com", "example.com."));
  EXPECT_FALSE(is_third_party("example.com.", "cdn.example.com"));
  EXPECT_TRUE(is_third_party("www.example.com", "cdn.akamai.com."));
}

TEST(ThirdParty, IpLiteralsCompareWhole) {
  // Regression: both used to "register" as "0.1" and compare equal.
  EXPECT_TRUE(is_third_party("192.168.0.1", "10.99.0.1"));
  EXPECT_FALSE(is_third_party("192.168.0.1", "192.168.0.1"));
}

}  // namespace
