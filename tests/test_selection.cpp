#include "core/selection.h"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace hispar;
using core::SelectionConfig;
using core::SelectionStrategy;
using core::select_internal_pages;

class SelectionTest : public ::testing::Test {
 protected:
  SelectionTest() : web_({150, 41, 200, false}), engine_(web_) {}
  web::SyntheticWeb web_;
  search::SearchEngine engine_;
};

TEST_F(SelectionTest, AllStrategiesProducePages) {
  const auto& site = web_.site_by_rank(5);
  SelectionConfig config;
  for (auto strategy :
       {SelectionStrategy::kSearchEngine, SelectionStrategy::kUniformRandom,
        SelectionStrategy::kBrowserTelemetry,
        SelectionStrategy::kPublisherCurated,
        SelectionStrategy::kMonkeyTesting, SelectionStrategy::kFirstLinks}) {
    const auto pages =
        select_internal_pages(site, strategy, config, &engine_);
    EXPECT_GE(pages.size(), 5u) << core::to_string(strategy);
    EXPECT_LE(pages.size(), config.pages + 1) << core::to_string(strategy);
    for (std::size_t index : pages) {
      EXPECT_GE(index, 1u);
      EXPECT_LE(index, site.internal_page_count());
    }
  }
}

TEST_F(SelectionTest, SelectionsAreUnique) {
  const auto& site = web_.site_by_rank(5);
  for (auto strategy :
       {SelectionStrategy::kUniformRandom, SelectionStrategy::kMonkeyTesting,
        SelectionStrategy::kFirstLinks}) {
    const auto pages = select_internal_pages(site, strategy, {}, nullptr);
    std::set<std::size_t> unique(pages.begin(), pages.end());
    EXPECT_EQ(unique.size(), pages.size()) << core::to_string(strategy);
  }
}

TEST_F(SelectionTest, SearchStrategyRequiresEngine) {
  const auto& site = web_.site_by_rank(5);
  EXPECT_THROW(select_internal_pages(site, SelectionStrategy::kSearchEngine,
                                     {}, nullptr),
               std::invalid_argument);
}

TEST_F(SelectionTest, TelemetrySampleSkewsPopular) {
  const auto& site = web_.site_by_rank(3);
  SelectionConfig config;
  config.pages = 19;
  const auto telemetry = select_internal_pages(
      site, SelectionStrategy::kBrowserTelemetry, config, nullptr);
  const auto random = select_internal_pages(
      site, SelectionStrategy::kUniformRandom, config, nullptr);
  const auto mean_index = [](const std::vector<std::size_t>& pages) {
    double sum = 0.0;
    for (std::size_t index : pages) sum += static_cast<double>(index);
    return sum / static_cast<double>(pages.size());
  };
  EXPECT_LT(mean_index(telemetry), mean_index(random));
}

TEST_F(SelectionTest, FirstLinksComeFromTheLandingPage) {
  const auto& site = web_.site_by_rank(8);
  const auto pages =
      select_internal_pages(site, SelectionStrategy::kFirstLinks, {}, nullptr);
  const auto links = site.page_internal_links(0);
  const std::set<std::size_t> link_set(links.begin(), links.end());
  for (std::size_t index : pages) EXPECT_TRUE(link_set.count(index));
}

TEST_F(SelectionTest, MonkeyWalkVisitsReachablePages) {
  const auto& site = web_.site_by_rank(8);
  SelectionConfig config;
  config.pages = 10;
  config.monkey_clicks = 200;
  const auto pages = select_internal_pages(
      site, SelectionStrategy::kMonkeyTesting, config, nullptr);
  EXPECT_FALSE(pages.empty());
}

TEST_F(SelectionTest, DeterministicGivenSeed) {
  const auto& site = web_.site_by_rank(5);
  SelectionConfig config;
  config.seed = 123;
  const auto a = select_internal_pages(
      site, SelectionStrategy::kUniformRandom, config, nullptr);
  const auto b = select_internal_pages(
      site, SelectionStrategy::kUniformRandom, config, nullptr);
  EXPECT_EQ(a, b);
}

TEST_F(SelectionTest, RepresentativenessIsComputable) {
  const auto& site = web_.site_by_rank(5);
  const auto pages = select_internal_pages(
      site, SelectionStrategy::kBrowserTelemetry, {}, nullptr);
  const auto score = core::selection_representativeness(site, pages, 80);
  EXPECT_GE(score.size_error, 0.0);
  EXPECT_GE(score.mean_error(), 0.0);
  EXPECT_LT(score.mean_error(), 3.0);
  EXPECT_THROW(core::selection_representativeness(site, {}, 10),
               std::invalid_argument);
}

TEST_F(SelectionTest, TelemetryBeatsFirstLinksOnRepresentativeness) {
  // Averaged over sites, sampling what users visit should track the
  // visit-weighted reference better than grabbing homepage links.
  double telemetry_error = 0.0, first_links_error = 0.0;
  int sites = 0;
  for (std::size_t rank = 2; rank <= 60; rank += 4) {
    const auto& site = web_.site_by_rank(rank);
    const auto telemetry = select_internal_pages(
        site, SelectionStrategy::kBrowserTelemetry, {}, nullptr);
    const auto naive = select_internal_pages(
        site, SelectionStrategy::kFirstLinks, {}, nullptr);
    if (telemetry.empty() || naive.empty()) continue;
    telemetry_error +=
        core::selection_representativeness(site, telemetry, 60).mean_error();
    first_links_error +=
        core::selection_representativeness(site, naive, 60).mean_error();
    ++sites;
  }
  ASSERT_GT(sites, 5);
  EXPECT_LT(telemetry_error, first_links_error * 1.35);
}

TEST(SelectionNames, AreDistinct) {
  std::set<std::string_view> names;
  for (auto strategy :
       {SelectionStrategy::kSearchEngine, SelectionStrategy::kUniformRandom,
        SelectionStrategy::kBrowserTelemetry,
        SelectionStrategy::kPublisherCurated,
        SelectionStrategy::kMonkeyTesting, SelectionStrategy::kFirstLinks})
    names.insert(core::to_string(strategy));
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
