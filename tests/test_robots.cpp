#include "web/robots.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace {

using hispar::web::RobotsPolicy;
using hispar::util::Rng;

TEST(Robots, DefaultAllowsEverything) {
  RobotsPolicy policy;
  for (std::size_t page = 1; page < 1000; ++page)
    EXPECT_TRUE(policy.allows(page));
  EXPECT_DOUBLE_EQ(policy.disallowed_share(), 0.0);
}

TEST(Robots, DisallowedShareIsApproximate) {
  Rng rng(4);
  const auto policy = RobotsPolicy::sample(0.2, rng);
  std::size_t blocked = 0;
  constexpr std::size_t n = 20000;
  for (std::size_t page = 1; page <= n; ++page)
    blocked += policy.allows(page) ? 0 : 1;
  EXPECT_NEAR(static_cast<double>(blocked) / n, 0.2, 0.02);
}

TEST(Robots, DecisionsAreStable) {
  Rng rng(4);
  const auto policy = RobotsPolicy::sample(0.3, rng);
  for (std::size_t page = 1; page < 500; ++page)
    EXPECT_EQ(policy.allows(page), policy.allows(page));
}

TEST(Robots, RenderedFileListsDisallows) {
  Rng rng(4);
  const auto policy = RobotsPolicy::sample(0.1, rng);
  const std::string body = policy.render();
  EXPECT_NE(body.find("User-agent: *"), std::string::npos);
  EXPECT_NE(body.find("Disallow: /"), std::string::npos);

  RobotsPolicy open;
  EXPECT_NE(open.render().find("Disallow:\n"), std::string::npos);
}

TEST(Robots, DifferentSitesDifferentPolicies) {
  Rng rng1(4), rng2(99);
  const auto a = RobotsPolicy::sample(0.3, rng1);
  const auto b = RobotsPolicy::sample(0.3, rng2);
  int differences = 0;
  for (std::size_t page = 1; page < 2000; ++page)
    differences += a.allows(page) != b.allows(page);
  EXPECT_GT(differences, 100);
}

}  // namespace
