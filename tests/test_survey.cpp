#include <gtest/gtest.h>

#include "survey/classifier.h"
#include "survey/corpus.h"

namespace {

using namespace hispar::survey;

TEST(Corpus, HasNineHundredTwentyPapers) {
  EXPECT_EQ(survey_corpus().size(), 920u);
}

TEST(Corpus, VenueTotalsMatchTable1) {
  const auto corpus = survey_corpus();
  int per_venue[kVenueCount] = {};
  for (const auto& paper : corpus)
    ++per_venue[static_cast<int>(paper.venue)];
  for (const auto& expected : table1_expected())
    EXPECT_EQ(per_venue[static_cast<int>(expected.venue)],
              expected.publications)
        << to_string(expected.venue);
}

TEST(Corpus, EveryTopListUserHasMatchedTerms) {
  for (const auto& paper : survey_corpus()) {
    if (paper.uses_top_list) {
      EXPECT_FALSE(paper.matched_terms.empty()) << paper.title;
      EXPECT_FALSE(paper.term_is_false_positive);
    }
  }
}

TEST(Corpus, ContainsFalsePositives) {
  // §2: "Alexa" Echo Dot papers etc. must exist for the filter stage to
  // have work to do.
  int false_positives = 0;
  for (const auto& paper : survey_corpus())
    false_positives += paper.term_is_false_positive;
  EXPECT_GT(false_positives, 10);
}

TEST(Pipeline, TermSearchFindsUsersAndFalsePositives) {
  const auto corpus = survey_corpus();
  const auto hits = term_search(corpus);
  const auto users = filter_false_positives(hits);
  EXPECT_GT(hits.size(), users.size());
  EXPECT_EQ(users.size(), 119u);
}

TEST(Pipeline, SummaryMatchesPaperHeadlineNumbers) {
  const auto summary = summarize(survey_corpus());
  EXPECT_EQ(summary.total_papers, 920);
  EXPECT_EQ(summary.using_top_list, 119);
  EXPECT_EQ(summary.major, 30);
  EXPECT_EQ(summary.minor, 48);
  EXPECT_EQ(summary.no_revision, 41);
  EXPECT_EQ(summary.using_internal_pages, 15);
  EXPECT_EQ(summary.trace_based, 7);
  EXPECT_EQ(summary.active_crawling, 8);
}

TEST(Pipeline, TwoThirdsNeedRevision) {
  const auto summary = summarize(survey_corpus());
  const double fraction =
      static_cast<double>(summary.major + summary.minor) /
      summary.using_top_list;
  EXPECT_NEAR(fraction, 2.0 / 3.0, 0.03);
}

TEST(Pipeline, Table1RowsMatchExactly) {
  const auto table = render_table1(survey_corpus());
  const std::string rendered = table.to_csv();
  // Spot-check the exact Table 1 rows.
  EXPECT_NE(rendered.find("IMC,214,56,9,23,24"), std::string::npos);
  EXPECT_NE(rendered.find("PAM,117,27,7,10,10"), std::string::npos);
  EXPECT_NE(rendered.find("NSDI,222,11,6,4,1"), std::string::npos);
  EXPECT_NE(rendered.find("SIGCOMM,187,9,1,6,2"), std::string::npos);
  EXPECT_NE(rendered.find("CoNEXT,180,16,7,5,4"), std::string::npos);
}

TEST(Pipeline, InternalPageUsersSitInNoRevisionBucket) {
  for (const auto& paper : survey_corpus()) {
    if (paper.internal_pages != InternalPageUse::kNone)
      EXPECT_EQ(paper.revision, RevisionScore::kNo) << paper.title;
  }
}

TEST(ScaleStats, MajorStudyQuantilesMatchPaper) {
  const auto corpus = survey_corpus();
  // §7: ~half of major studies use <= 500 sites; §3.1: 60% use <= 1000
  // sites and 77% measure <= 20,000 pages; §3: 93% <= 100,000 pages.
  EXPECT_NEAR(major_fraction_sites_at_most(corpus, 500), 0.50, 0.12);
  EXPECT_NEAR(major_fraction_sites_at_most(corpus, 1000), 0.60, 0.10);
  EXPECT_NEAR(major_fraction_pages_at_most(corpus, 20000), 0.77, 0.10);
  EXPECT_NEAR(major_fraction_pages_at_most(corpus, 100000), 0.93, 0.07);
}

TEST(Corpus, MostPapersUseAlexa) {
  // §3: only 10 of 119 use a list other than Alexa.
  int non_alexa = 0;
  for (const auto& paper : survey_corpus()) {
    if (!paper.uses_top_list) continue;
    bool alexa = false;
    for (const auto& term : paper.matched_terms) alexa |= term == "Alexa";
    non_alexa += !alexa;
  }
  EXPECT_LT(non_alexa, 25);
  EXPECT_GT(non_alexa, 2);
}

TEST(Corpus, Deterministic) {
  const auto a = survey_corpus();
  const auto b = survey_corpus();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].title, b[i].title);
    EXPECT_EQ(a[i].revision, b[i].revision);
  }
}

}  // namespace
