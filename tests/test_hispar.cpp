#include "core/hispar.h"

#include <gtest/gtest.h>

#include <set>

#include "util/url.h"

namespace {

using namespace hispar;
using core::HisparBuilder;
using core::HisparConfig;
using core::HisparList;
using core::UrlSet;

class HisparTest : public ::testing::Test {
 protected:
  HisparTest()
      : web_({200, 31, 300, false}), toplists_(web_), engine_(web_) {}

  HisparList build(std::size_t sites, std::size_t urls_per_site = 20,
                   std::uint64_t week = 0) {
    HisparBuilder builder(web_, toplists_, engine_);
    HisparConfig config;
    config.target_sites = sites;
    config.urls_per_site = urls_per_site;
    config.min_internal_results = 5;
    last_stats_ = core::BuildStats{};
    HisparList list = builder.build(config, week);
    last_stats_ = builder.last_build_stats();
    return list;
  }

  web::SyntheticWeb web_;
  toplist::TopListFactory toplists_;
  search::SearchEngine engine_;
  core::BuildStats last_stats_;
};

TEST_F(HisparTest, BuildsRequestedNumberOfSites) {
  const HisparList list = build(50);
  EXPECT_EQ(list.sets.size(), 50u);
  EXPECT_GT(list.total_urls(), 50u * 10);
}

TEST_F(HisparTest, UrlSetsStartWithTheLandingPage) {
  const HisparList list = build(30);
  for (const UrlSet& set : list.sets) {
    ASSERT_FALSE(set.urls.empty());
    const auto url = util::parse_url(set.urls.front());
    ASSERT_TRUE(url.has_value()) << set.urls.front();
    EXPECT_TRUE(url->is_landing());
    EXPECT_EQ(set.page_indices.front(), 0u);
    EXPECT_EQ(set.urls.size(), set.page_indices.size());
  }
}

TEST_F(HisparTest, UrlSetsRespectTheSizeCap) {
  const HisparList list = build(30, 20);
  for (const UrlSet& set : list.sets) {
    EXPECT_LE(set.urls.size(), 20u);
    EXPECT_GE(set.internal_count(), 5u);  // min_internal_results
  }
}

TEST_F(HisparTest, UrlsAreUniqueWithinASet) {
  const HisparList list = build(40);
  for (const UrlSet& set : list.sets) {
    std::set<std::string> urls(set.urls.begin(), set.urls.end());
    EXPECT_EQ(urls.size(), set.urls.size()) << set.domain;
  }
}

TEST_F(HisparTest, SparseAndForeignSitesAreDropped) {
  const HisparList list = build(150);
  // Some sites must have been skipped: non-English sites return < 5
  // results (§3). The builder records them.
  EXPECT_GT(last_stats_.sites_dropped, 0u);
  EXPECT_GT(last_stats_.sites_examined, list.sets.size());
  EXPECT_GT(last_stats_.queries_issued, 0u);
  EXPECT_GT(last_stats_.spend_usd, 0.0);
}

TEST_F(HisparTest, BootstrapRanksAreIncreasing) {
  const HisparList list = build(60);
  for (std::size_t i = 1; i < list.sets.size(); ++i)
    EXPECT_LT(list.sets[i - 1].bootstrap_rank, list.sets[i].bootstrap_rank);
}

TEST_F(HisparTest, SlicesSelectPositionalSubsets) {
  const HisparList list = build(60);
  const HisparList top = list.top(10, "Ht10");
  const HisparList bottom = list.bottom(10, "Hb10");
  EXPECT_EQ(top.sets.size(), 10u);
  EXPECT_EQ(bottom.sets.size(), 10u);
  EXPECT_EQ(top.sets.front().domain, list.sets.front().domain);
  EXPECT_EQ(bottom.sets.back().domain, list.sets.back().domain);
  EXPECT_THROW(list.slice(100, 5, "bad"), std::out_of_range);
}

TEST_F(HisparTest, EmptyListSlicesAreEmptyNotFatal) {
  const HisparList empty;
  const HisparList top = empty.top(5, "Ht5");
  EXPECT_EQ(top.name, "Ht5");
  EXPECT_TRUE(top.sets.empty());
  EXPECT_TRUE(empty.bottom(5, "Hb5").sets.empty());
  EXPECT_TRUE(empty.slice(0, 3, "s").sets.empty());
  // Only a start strictly past the end is a caller error.
  EXPECT_THROW(empty.slice(1, 1, "bad"), std::out_of_range);
  const HisparList list = build(10);
  EXPECT_TRUE(list.slice(10, 5, "tail").sets.empty());
}

TEST_F(HisparTest, BuildBillingFlowsToTheInjectedEngine) {
  // The builder queries through an internal engine with a narrowed
  // crawl budget; its billing must land on the caller's meter.
  ASSERT_EQ(engine_.queries_issued(), 0u);
  build(20);
  EXPECT_EQ(engine_.queries_issued(), last_stats_.queries_issued);
  const std::uint64_t first = engine_.queries_issued();
  build(20);
  EXPECT_EQ(engine_.queries_issued(), first + last_stats_.queries_issued);
}

TEST(HisparMissingSiteTest, UnknownBootstrapDomainsAreSkippedAndCounted) {
  // A bootstrap list from a larger universe names domains this web has
  // no site for. The builder must skip and count them — not crash on a
  // null find_site — and the query that discovered each stays billed.
  web::SyntheticWeb web({200, 31, 300, false});
  web::SyntheticWeb big_web({260, 31, 300, false});
  toplist::TopListFactory big_toplists(big_web);
  search::SearchEngine engine(web);
  HisparBuilder builder(web, big_toplists, engine);
  HisparConfig config;
  config.target_sites = 260;
  config.urls_per_site = 8;
  config.min_internal_results = 0;  // unknown domains reach find_site
  const HisparList list = builder.build(config, 0);
  const core::BuildStats& stats = builder.last_build_stats();
  EXPECT_GT(stats.sites_missing, 0u);
  EXPECT_GT(stats.queries_issued, 0u);
  for (const UrlSet& set : list.sets)
    EXPECT_NE(web.find_site(set.domain), nullptr) << set.domain;
}

TEST_F(HisparTest, FindLocatesDomains) {
  const HisparList list = build(20);
  const UrlSet* found = list.find(list.sets[3].domain);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->domain, list.sets[3].domain);
  EXPECT_EQ(list.find("missing.example"), nullptr);
}

TEST_F(HisparTest, WeeklyRebuildsDiffer) {
  const HisparList week0 = build(40);
  const HisparList week1 = build(40, 20, 1);
  EXPECT_GT(core::internal_url_churn(week0, week1), 0.05);
  EXPECT_LT(core::internal_url_churn(week0, week1), 0.95);
}

TEST_F(HisparTest, ChurnOfIdenticalListsIsZero) {
  const HisparList list = build(25);
  EXPECT_DOUBLE_EQ(core::site_churn(list, list), 0.0);
  EXPECT_DOUBLE_EQ(core::internal_url_churn(list, list), 0.0);
}

TEST(HisparChurnTest, HandComputedChurn) {
  core::HisparList before, after;
  before.sets.push_back({"a.com", 1, {"L", "u1", "u2"}, {0, 1, 2}});
  before.sets.push_back({"b.com", 2, {"L", "u3"}, {0, 3}});
  after.sets.push_back({"a.com", 1, {"L", "u1", "u9"}, {0, 1, 9}});
  // b.com vanished; of a.com's 2 internal URLs 1 survived.
  EXPECT_DOUBLE_EQ(core::site_churn(before, after), 0.5);
  EXPECT_DOUBLE_EQ(core::internal_url_churn(before, after), 0.5);
}

TEST(HisparChurnTest, NoCommonSitesThrows) {
  core::HisparList before, after;
  before.sets.push_back({"a.com", 1, {"L", "u1"}, {0, 1}});
  after.sets.push_back({"b.com", 1, {"L", "u1"}, {0, 1}});
  EXPECT_THROW(core::internal_url_churn(before, after),
               std::invalid_argument);
  core::HisparList empty;
  EXPECT_THROW(core::site_churn(empty, after), std::invalid_argument);
}

}  // namespace
