#include "core/hispar.h"

#include <gtest/gtest.h>

#include <set>

#include "util/url.h"

namespace {

using namespace hispar;
using core::HisparBuilder;
using core::HisparConfig;
using core::HisparList;
using core::UrlSet;

class HisparTest : public ::testing::Test {
 protected:
  HisparTest()
      : web_({200, 31, 300, false}), toplists_(web_), engine_(web_) {}

  HisparList build(std::size_t sites, std::size_t urls_per_site = 20,
                   std::uint64_t week = 0) {
    HisparBuilder builder(web_, toplists_, engine_);
    HisparConfig config;
    config.target_sites = sites;
    config.urls_per_site = urls_per_site;
    config.min_internal_results = 5;
    last_stats_ = core::BuildStats{};
    HisparList list = builder.build(config, week);
    last_stats_ = builder.last_build_stats();
    return list;
  }

  web::SyntheticWeb web_;
  toplist::TopListFactory toplists_;
  search::SearchEngine engine_;
  core::BuildStats last_stats_;
};

TEST_F(HisparTest, BuildsRequestedNumberOfSites) {
  const HisparList list = build(50);
  EXPECT_EQ(list.sets.size(), 50u);
  EXPECT_GT(list.total_urls(), 50u * 10);
}

TEST_F(HisparTest, UrlSetsStartWithTheLandingPage) {
  const HisparList list = build(30);
  for (const UrlSet& set : list.sets) {
    ASSERT_FALSE(set.urls.empty());
    const auto url = util::parse_url(set.urls.front());
    ASSERT_TRUE(url.has_value()) << set.urls.front();
    EXPECT_TRUE(url->is_landing());
    EXPECT_EQ(set.page_indices.front(), 0u);
    EXPECT_EQ(set.urls.size(), set.page_indices.size());
  }
}

TEST_F(HisparTest, UrlSetsRespectTheSizeCap) {
  const HisparList list = build(30, 20);
  for (const UrlSet& set : list.sets) {
    EXPECT_LE(set.urls.size(), 20u);
    EXPECT_GE(set.internal_count(), 5u);  // min_internal_results
  }
}

TEST_F(HisparTest, UrlsAreUniqueWithinASet) {
  const HisparList list = build(40);
  for (const UrlSet& set : list.sets) {
    std::set<std::string> urls(set.urls.begin(), set.urls.end());
    EXPECT_EQ(urls.size(), set.urls.size()) << set.domain;
  }
}

TEST_F(HisparTest, SparseAndForeignSitesAreDropped) {
  const HisparList list = build(150);
  // Some sites must have been skipped: non-English sites return < 5
  // results (§3). The builder records them.
  EXPECT_GT(last_stats_.sites_dropped, 0u);
  EXPECT_GT(last_stats_.sites_examined, list.sets.size());
  EXPECT_GT(last_stats_.queries_issued, 0u);
  EXPECT_GT(last_stats_.spend_usd, 0.0);
}

TEST_F(HisparTest, BootstrapRanksAreIncreasing) {
  const HisparList list = build(60);
  for (std::size_t i = 1; i < list.sets.size(); ++i)
    EXPECT_LT(list.sets[i - 1].bootstrap_rank, list.sets[i].bootstrap_rank);
}

TEST_F(HisparTest, SlicesSelectPositionalSubsets) {
  const HisparList list = build(60);
  const HisparList top = list.top(10, "Ht10");
  const HisparList bottom = list.bottom(10, "Hb10");
  EXPECT_EQ(top.sets.size(), 10u);
  EXPECT_EQ(bottom.sets.size(), 10u);
  EXPECT_EQ(top.sets.front().domain, list.sets.front().domain);
  EXPECT_EQ(bottom.sets.back().domain, list.sets.back().domain);
  EXPECT_THROW(list.slice(100, 5, "bad"), std::out_of_range);
}

TEST_F(HisparTest, FindLocatesDomains) {
  const HisparList list = build(20);
  const UrlSet* found = list.find(list.sets[3].domain);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->domain, list.sets[3].domain);
  EXPECT_EQ(list.find("missing.example"), nullptr);
}

TEST_F(HisparTest, WeeklyRebuildsDiffer) {
  const HisparList week0 = build(40);
  const HisparList week1 = build(40, 20, 1);
  EXPECT_GT(core::internal_url_churn(week0, week1), 0.05);
  EXPECT_LT(core::internal_url_churn(week0, week1), 0.95);
}

TEST_F(HisparTest, ChurnOfIdenticalListsIsZero) {
  const HisparList list = build(25);
  EXPECT_DOUBLE_EQ(core::site_churn(list, list), 0.0);
  EXPECT_DOUBLE_EQ(core::internal_url_churn(list, list), 0.0);
}

TEST(HisparChurnTest, HandComputedChurn) {
  core::HisparList before, after;
  before.sets.push_back({"a.com", 1, {"L", "u1", "u2"}, {0, 1, 2}});
  before.sets.push_back({"b.com", 2, {"L", "u3"}, {0, 3}});
  after.sets.push_back({"a.com", 1, {"L", "u1", "u9"}, {0, 1, 9}});
  // b.com vanished; of a.com's 2 internal URLs 1 survived.
  EXPECT_DOUBLE_EQ(core::site_churn(before, after), 0.5);
  EXPECT_DOUBLE_EQ(core::internal_url_churn(before, after), 0.5);
}

TEST(HisparChurnTest, NoCommonSitesThrows) {
  core::HisparList before, after;
  before.sets.push_back({"a.com", 1, {"L", "u1"}, {0, 1}});
  after.sets.push_back({"b.com", 1, {"L", "u1"}, {0, 1}});
  EXPECT_THROW(core::internal_url_churn(before, after),
               std::invalid_argument);
  core::HisparList empty;
  EXPECT_THROW(core::site_churn(empty, after), std::invalid_argument);
}

}  // namespace
