// Property-based checks of the calibrated population: the paper's §4-§6
// first-order statistics must hold over the generated ground truth
// (loose bands; exact reproduction is checked end-to-end by the benches
// and recorded in EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <vector>

#include "util/stats.h"
#include "web/generator.h"

namespace {

using namespace hispar::web;

class PopulationTest : public ::testing::Test {
 protected:
  static const SyntheticWeb& web() {
    static SyntheticWeb instance({3000, 42, 2000, true});
    return instance;
  }

  // Landing vs median-internal comparison over a rank stripe.
  template <typename Fn>
  static void collect(std::size_t from, std::size_t to, std::size_t step,
                      Fn metric, std::vector<double>& landing,
                      std::vector<double>& internal_median) {
    for (std::size_t rank = from; rank <= to; rank += step) {
      const WebSite& site = web().site_by_rank(rank);
      landing.push_back(metric(site.page(0)));
      std::vector<double> internals;
      for (std::size_t page = 1; page <= 9; ++page)
        internals.push_back(metric(site.page(page)));
      internal_median.push_back(hispar::util::median(internals));
    }
  }

  template <typename Fn>
  static double fraction_landing_greater(Fn metric) {
    std::vector<double> landing, internal;
    collect(1, 991, 10, metric, landing, internal);
    std::size_t greater = 0;
    for (std::size_t i = 0; i < landing.size(); ++i)
      greater += landing[i] > internal[i];
    return static_cast<double>(greater) / static_cast<double>(landing.size());
  }
};

TEST_F(PopulationTest, LandingPagesAreLargerForMostSites) {
  // Fig. 2a: 65% of sites.
  const double fraction = fraction_landing_greater(
      [](const WebPage& page) { return page.total_bytes(); });
  EXPECT_GT(fraction, 0.52);
  EXPECT_LT(fraction, 0.82);
}

TEST_F(PopulationTest, LandingPagesHaveMoreObjectsForMostSites) {
  // Fig. 2b: 68% of sites.
  const double fraction = fraction_landing_greater(
      [](const WebPage& page) { return static_cast<double>(page.object_count()); });
  EXPECT_GT(fraction, 0.55);
  EXPECT_LT(fraction, 0.85);
}

TEST_F(PopulationTest, LandingPagesContactMoreOrigins) {
  // Fig. 5: 67% of sites.
  const double fraction = fraction_landing_greater(
      [](const WebPage& page) { return static_cast<double>(page.unique_domains()); });
  EXPECT_GT(fraction, 0.52);
  EXPECT_LT(fraction, 0.88);
}

TEST_F(PopulationTest, LandingPagesHaveMoreNonCacheables) {
  // Fig. 4a: 66% of sites.
  const double fraction = fraction_landing_greater(
      [](const WebPage& page) {
        return static_cast<double>(page.non_cacheable_count());
      });
  EXPECT_GT(fraction, 0.52);
  EXPECT_LT(fraction, 0.88);
}

TEST_F(PopulationTest, InternalPagesAreMoreJsHeavy) {
  // Fig. 4c: internal JS share exceeds landing JS share in the median.
  std::vector<double> landing_js, internal_js;
  for (std::size_t rank = 1; rank <= 600; rank += 9) {
    const WebSite& site = web().site_by_rank(rank);
    landing_js.push_back(site.page(0).mix_fractions()[
        static_cast<std::size_t>(MimeCategory::kJavaScript)]);
    internal_js.push_back(site.page(1).mix_fractions()[
        static_cast<std::size_t>(MimeCategory::kJavaScript)]);
  }
  EXPECT_GT(hispar::util::median(internal_js),
            hispar::util::median(landing_js));
}

TEST_F(PopulationTest, LandingPagesAreMoreImageHeavy) {
  std::vector<double> landing_img, internal_img;
  for (std::size_t rank = 1; rank <= 600; rank += 9) {
    const WebSite& site = web().site_by_rank(rank);
    landing_img.push_back(site.page(0).mix_fractions()[
        static_cast<std::size_t>(MimeCategory::kImage)]);
    internal_img.push_back(site.page(1).mix_fractions()[
        static_cast<std::size_t>(MimeCategory::kImage)]);
  }
  EXPECT_GT(hispar::util::median(landing_img),
            hispar::util::median(internal_img));
}

TEST_F(PopulationTest, LandingPagesHaveMoreDeepObjects) {
  // Fig. 6a: more objects at depth 2 on landing pages.
  std::vector<double> landing_d2, internal_d2;
  for (std::size_t rank = 1; rank <= 500; rank += 7) {
    const WebSite& site = web().site_by_rank(rank);
    landing_d2.push_back(static_cast<double>(site.page(0).objects_at_depth(2)));
    internal_d2.push_back(static_cast<double>(site.page(1).objects_at_depth(2)));
  }
  EXPECT_GT(hispar::util::median(landing_d2),
            hispar::util::median(internal_d2) * 1.1);
}

TEST_F(PopulationTest, SecurityRatesMatchPaperOrder) {
  // §6.1: ~3.6% HTTP landing pages; ~17% of sites have HTTP internal
  // pages despite secure landing pages.
  int http_landing = 0;
  int sites_with_http_internal = 0;
  int sites = 0;
  for (std::size_t rank = 1; rank <= 991; rank += 5) {
    const WebSite& site = web().site_by_rank(rank);
    ++sites;
    if (site.profile().landing_is_http) ++http_landing;
    if (!site.profile().landing_is_http &&
        site.profile().internal_http_rate > 0.0)
      ++sites_with_http_internal;
  }
  const double http_landing_rate = static_cast<double>(http_landing) / sites;
  EXPECT_GT(http_landing_rate, 0.01);
  EXPECT_LT(http_landing_rate, 0.08);
  const double internal_rate =
      static_cast<double>(sites_with_http_internal) / sites;
  EXPECT_GT(internal_rate, 0.10);
  EXPECT_LT(internal_rate, 0.30);
}

TEST_F(PopulationTest, WorldSitesLiveAbroadWithLowUsTraffic) {
  int world = 0;
  int world_abroad = 0;
  double world_us_share = 0.0;
  for (std::size_t rank = 1; rank <= 2000; ++rank) {
    const SiteProfile& profile = web().site_by_rank(rank).profile();
    if (profile.category != SiteCategory::kWorld) continue;
    ++world;
    world_abroad += profile.origin_region != hispar::net::Region::kNorthAmerica;
    world_us_share += profile.us_traffic_share;
  }
  ASSERT_GT(world, 100);  // ~14% of 2000
  EXPECT_GT(static_cast<double>(world_abroad) / world, 0.9);
  EXPECT_LT(world_us_share / world, 0.08);
}

TEST_F(PopulationTest, HintsFavorLandingPages) {
  // Fig. 6b: 69% of landing pages use hints; 45% of internal pages
  // have none.
  int landing_with = 0, internal_without = 0, sites = 0;
  for (std::size_t rank = 1; rank <= 991; rank += 10) {
    const WebSite& site = web().site_by_rank(rank);
    ++sites;
    landing_with += site.page(0).hints.total() >= 1;
    internal_without += site.page(1).hints.total() == 0;
  }
  EXPECT_NEAR(static_cast<double>(landing_with) / sites, 0.69, 0.10);
  EXPECT_NEAR(static_cast<double>(internal_without) / sites, 0.45, 0.10);
}

TEST_F(PopulationTest, ObjectCountRatioGeometricMeanNearPaper) {
  // Fig. 2b: geometric-mean ratio ~1.24.
  std::vector<double> landing, internal;
  collect(1, 991, 10,
          [](const WebPage& page) {
            return static_cast<double>(page.object_count());
          },
          landing, internal);
  std::vector<double> ratios;
  for (std::size_t i = 0; i < landing.size(); ++i)
    ratios.push_back(landing[i] / internal[i]);
  const double geo = hispar::util::geometric_mean(ratios);
  EXPECT_GT(geo, 1.08);
  EXPECT_LT(geo, 1.45);
}

}  // namespace
