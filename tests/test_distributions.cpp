#include "util/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace hispar::util;

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.0);
  double total = 0.0;
  for (std::size_t k = 1; k <= 100; ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, PmfIsMonotonicallyDecreasing) {
  ZipfDistribution zipf(50, 1.2);
  for (std::size_t k = 2; k <= 50; ++k)
    EXPECT_LT(zipf.pmf(k), zipf.pmf(k - 1));
}

TEST(Zipf, HeadProbabilityMatchesTheory) {
  // s=1, n=3: H = 1 + 1/2 + 1/3 = 11/6; P(1) = 6/11.
  ZipfDistribution zipf(3, 1.0);
  EXPECT_NEAR(zipf.pmf(1), 6.0 / 11.0, 1e-12);
  EXPECT_NEAR(zipf.pmf(2), 3.0 / 11.0, 1e-12);
  EXPECT_NEAR(zipf.pmf(3), 2.0 / 11.0, 1e-12);
}

TEST(Zipf, SamplingMatchesPmf) {
  ZipfDistribution zipf(10, 1.0);
  Rng rng(9);
  std::vector<int> counts(11, 0);
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k), 0.01)
        << "rank " << k;
  }
}

TEST(Zipf, SampleAlwaysInRange) {
  ZipfDistribution zipf(7, 0.8);
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t k = zipf.sample(rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 7u);
  }
}

TEST(Zipf, ZeroSizeThrows) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
}

TEST(Discrete, RespectsWeights) {
  DiscreteDistribution dist({1.0, 3.0, 0.0, 6.0});
  Rng rng(3);
  std::vector<int> counts(4, 0);
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[dist.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Discrete, ProbabilityAccessor) {
  DiscreteDistribution dist({2.0, 2.0, 4.0});
  EXPECT_NEAR(dist.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(dist.probability(1), 0.25, 1e-12);
  EXPECT_NEAR(dist.probability(2), 0.50, 1e-12);
}

TEST(Discrete, RejectsInvalidWeights) {
  EXPECT_THROW(DiscreteDistribution({}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({0.0, 0.0}), std::invalid_argument);
}

TEST(ClampedLogNormal, StaysWithinBounds) {
  ClampedLogNormal dist(std::log(100.0), 2.0, 10.0, 1000.0);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double x = dist.sample(rng);
    EXPECT_GE(x, 10.0);
    EXPECT_LE(x, 1000.0);
  }
}

TEST(ClampedLogNormal, InvalidBoundsThrow) {
  EXPECT_THROW(ClampedLogNormal(0.0, 1.0, 10.0, 1.0), std::invalid_argument);
}

TEST(InverseNormalCdf, MedianIsZero) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
}

TEST(InverseNormalCdf, KnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.8413447), 1.0, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.0228), -1.9991, 1e-3);
}

TEST(InverseNormalCdf, RejectsBoundaries) {
  EXPECT_THROW(inverse_normal_cdf(0.0), std::invalid_argument);
  EXPECT_THROW(inverse_normal_cdf(1.0), std::invalid_argument);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447, 1e-6);
  EXPECT_NEAR(normal_cdf(-2.0), 0.0227501, 1e-6);
}

class CdfRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(CdfRoundTrip, InverseComposesWithForward) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(inverse_normal_cdf(p)), p, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, CdfRoundTrip,
                         ::testing::Values(0.001, 0.01, 0.1, 0.25, 0.5, 0.68,
                                           0.9, 0.99, 0.999));

}  // namespace
