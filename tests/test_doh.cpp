#include "net/doh.h"

#include <gtest/gtest.h>

namespace {

using namespace hispar::net;
using hispar::util::Rng;

DnsRecord record_with(double rate = 0.0) {
  DnsRecord record;
  record.domain = "example.com";
  record.ttl_s = 600.0;
  record.client_query_rate = rate;
  return record;
}

TEST(DohTest, AddsSetupCostOnFirstQueryOnly) {
  LatencyModel latency;
  CachingResolver inner({"local", 1, 6.0, Region::kNorthAmerica, 1.0},
                        latency);
  CachingResolver reference({"local", 1, 6.0, Region::kNorthAmerica, 1.0},
                            latency);
  DohResolver doh(inner, {30.0, 4.0});
  Rng rng(1), rng2(1);

  const auto first = doh.resolve(record_with(), 0.0, rng);
  const auto first_plain = reference.resolve(record_with(), 0.0, rng2);
  EXPECT_NEAR(first.latency_ms - first_plain.latency_ms, 34.0, 1e-9);

  const auto second = doh.resolve(record_with(), 1.0, rng);
  const auto second_plain = reference.resolve(record_with(), 1.0, rng2);
  EXPECT_NEAR(second.latency_ms - second_plain.latency_ms, 4.0, 1e-9);
}

TEST(DohTest, PreservesCacheSemantics) {
  LatencyModel latency;
  CachingResolver inner({"local", 1, 6.0, Region::kNorthAmerica, 1.0},
                        latency);
  DohResolver doh(inner);
  Rng rng(1);
  EXPECT_FALSE(doh.resolve(record_with(), 0.0, rng).cache_hit);
  EXPECT_TRUE(doh.resolve(record_with(), 1.0, rng).cache_hit);
}

TEST(DohTest, TracksOverhead) {
  LatencyModel latency;
  CachingResolver inner({"local", 1, 6.0, Region::kNorthAmerica, 1.0},
                        latency);
  DohResolver doh(inner, {30.0, 4.0});
  Rng rng(1);
  for (int i = 0; i < 5; ++i) (void)doh.resolve(record_with(), i, rng);
  EXPECT_EQ(doh.queries(), 5u);
  EXPECT_NEAR(doh.total_overhead_ms(), 30.0 + 5 * 4.0, 1e-9);
}

TEST(DohTest, NewSessionPaysSetupAgain) {
  LatencyModel latency;
  CachingResolver inner({"local", 1, 6.0, Region::kNorthAmerica, 1.0},
                        latency);
  DohResolver doh(inner, {30.0, 4.0});
  Rng rng(1);
  (void)doh.resolve(record_with(), 0.0, rng);
  doh.new_session();
  const double before = doh.total_overhead_ms();
  (void)doh.resolve(record_with(), 1.0, rng);
  EXPECT_NEAR(doh.total_overhead_ms() - before, 34.0, 1e-9);
}

}  // namespace
