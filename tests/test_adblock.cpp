#include "browser/adblock.h"

#include <gtest/gtest.h>

namespace {

using hispar::browser::AdBlocker;
using hispar::browser::HarEntry;
using hispar::browser::HarLog;

TEST(AdBlockerTest, MatchesKnownTrackerHosts) {
  const auto blocker = AdBlocker::easylist_lite();
  EXPECT_TRUE(blocker.matches("https://www.google-analytics.com/collect"));
  EXPECT_TRUE(blocker.matches("https://ad.doubleclick.net/ads?x=1"));
  EXPECT_TRUE(blocker.matches("https://sb.scorecardresearch.com/b"));
  EXPECT_TRUE(blocker.matches("https://ib.adnxs.com/ut/v3"));
}

TEST(AdBlockerTest, MatchesGenericRules) {
  const auto blocker = AdBlocker::easylist_lite();
  EXPECT_TRUE(blocker.matches("https://pixel.thirdparty42.com/lib/1-0"));
  EXPECT_TRUE(blocker.matches("https://ads.thirdparty7.com/x"));
  EXPECT_TRUE(blocker.matches("https://bid.thirdparty3.com/y"));
  EXPECT_TRUE(blocker.matches("https://anything.example/track/55"));
}

TEST(AdBlockerTest, DoesNotBlockFirstPartyContent) {
  const auto blocker = AdBlocker::easylist_lite();
  EXPECT_FALSE(blocker.matches("https://www.example.com/asset/0-1"));
  EXPECT_FALSE(blocker.matches("https://static.example.com/app.js"));
  EXPECT_FALSE(blocker.matches("https://fonts.gstatic.com/font.woff2"));
  EXPECT_FALSE(blocker.matches("https://cdnjs.cloudflare.com/lib/jquery.js"));
}

TEST(AdBlockerTest, CountsBlockedEntriesInHar) {
  const auto blocker = AdBlocker::easylist_lite();
  HarLog log;
  HarEntry tracker;
  tracker.url = "https://www.googletagmanager.com/gtm.js";
  HarEntry asset;
  asset.url = "https://img.example.com/hero.jpg";
  HarEntry pixel;
  pixel.url = "https://pixel.thirdparty1.com/track/0-1";
  log.entries = {tracker, asset, pixel};
  EXPECT_EQ(blocker.count_blocked(log), 2u);
}

TEST(AdBlockerTest, CustomPatterns) {
  const AdBlocker blocker({"*evil*"});
  EXPECT_EQ(blocker.pattern_count(), 1u);
  EXPECT_TRUE(blocker.matches("https://www.evil.com/x"));
  EXPECT_FALSE(blocker.matches("https://www.good.com/x"));
}

TEST(AdBlockerTest, EmptyLogCountsZero) {
  const auto blocker = AdBlocker::easylist_lite();
  EXPECT_EQ(blocker.count_blocked(HarLog{}), 0u);
}

}  // namespace
