// Golden byte digests of the campaign's output artifacts.
//
// The performance pass (page materialization cache, string interning,
// pooled loader/median buffers) carries a hard contract: for any
// (seed, --jobs, fault profile), the campaign CSV, checkpoint stream
// and every observability artifact are byte-identical to the
// pre-optimization build. These tests pin that contract: they replicate
// the exact `hispar measure --universe 600 --sites 60 --loads 10
// --jobs 1 --seed 42` pipeline and compare an FNV-1a digest of every
// artifact's bytes against constants produced by the unoptimized build.
// Any change to the simulation's RNG draw order, detector semantics,
// float formatting or serialization shows up here as a digest mismatch.
//
// Regenerating the goldens (only when an intentional output change
// lands): run with HISPAR_UPDATE_GOLDENS=1 in the environment —
//
//   HISPAR_UPDATE_GOLDENS=1 ./build/tests/test_golden
//
// — and paste the digests it prints over the constants below. Document
// the intentional change in the commit message; these digests are the
// repo's record of "the bytes moved on purpose".
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/hispar.h"
#include "core/list_build.h"
#include "core/measurement.h"
#include "core/analyses.h"
#include "core/serialization.h"
#include "core/session.h"
#include "core/vantage.h"
#include "net/vantage_profile.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace {

using namespace hispar;

// Digests of the artifacts produced by the pre-optimization build for
// the pipeline below (identical flags through the CLI:
// `hispar measure --universe 600 --sites 60 --loads 10 --jobs 1
//  --seed 42 --out ... --metrics-out ... --trace-out ... --report-out
//  ... --checkpoint ...`).
constexpr std::uint64_t kGoldenCsv = 0x9b250531c4a0469cull;
constexpr std::uint64_t kGoldenMetrics = 0xf5cc2aeeac6c5978ull;
constexpr std::uint64_t kGoldenTrace = 0x7304770c93093d5eull;
constexpr std::uint64_t kGoldenReport = 0xcd78a00e79b9b969ull;
constexpr std::uint64_t kGoldenCheckpoint = 0x6d29018cb98c5b2bull;

struct Artifacts {
  std::string csv;
  std::string metrics;
  std::string trace;
  std::string report;
  std::string checkpoint;
};

// Replicates cmd_measure: the synthetic web / list construction uses
// the CLI defaults (urls 20, min-results 5, alexa bootstrap, week 0)
// so the artifacts match a real `hispar measure` run byte for byte.
Artifacts run_pipeline() {
  web::SyntheticWebConfig web_config;
  web_config.site_count = 600;
  web_config.seed = 42;
  web::SyntheticWeb web(web_config);
  toplist::TopListFactory toplists(web);
  search::SearchEngine engine(web);

  core::HisparBuilder builder(web, toplists, engine);
  core::HisparConfig list_config;
  list_config.name = "H60";
  list_config.target_sites = 60;
  list_config.urls_per_site = 20;
  list_config.min_internal_results = 5;
  const core::HisparList list = builder.build(list_config, /*week=*/0);

  const std::string checkpoint_path =
      ::testing::TempDir() + "hispar_golden_ckpt.txt";
  std::remove(checkpoint_path.c_str());

  core::CampaignConfig config;
  config.landing_loads = 10;
  config.jobs = 1;
  config.observability.enabled = true;
  config.checkpoint_path = checkpoint_path;
  core::MeasurementCampaign campaign(web, config);
  const auto sites = campaign.run(list);

  Artifacts artifacts;
  std::ostringstream csv;
  core::write_measure_csv(csv, sites);
  artifacts.csv = csv.str();

  std::ostringstream metrics;
  campaign.telemetry().metrics.write_json(metrics);
  artifacts.metrics = metrics.str();

  std::ostringstream trace;
  obs::write_chrome_trace(trace, campaign.telemetry().spans);
  artifacts.trace = trace.str();

  std::ostringstream report;
  obs::write_report_json(report,
                         core::build_run_report(sites, campaign.telemetry()));
  artifacts.report = report.str();

  std::ifstream checkpoint(checkpoint_path);
  std::ostringstream checkpoint_bytes;
  checkpoint_bytes << checkpoint.rdbuf();
  artifacts.checkpoint = checkpoint_bytes.str();
  std::remove(checkpoint_path.c_str());
  return artifacts;
}

TEST(GoldenArtifacts, CampaignOutputsMatchPreOptimizationBuild) {
  const Artifacts artifacts = run_pipeline();
  const std::uint64_t csv = util::fnv1a(artifacts.csv);
  const std::uint64_t metrics = util::fnv1a(artifacts.metrics);
  const std::uint64_t trace = util::fnv1a(artifacts.trace);
  const std::uint64_t report = util::fnv1a(artifacts.report);
  const std::uint64_t checkpoint = util::fnv1a(artifacts.checkpoint);

  if (std::getenv("HISPAR_UPDATE_GOLDENS") != nullptr) {
    std::printf("constexpr std::uint64_t kGoldenCsv = 0x%llxull;\n"
                "constexpr std::uint64_t kGoldenMetrics = 0x%llxull;\n"
                "constexpr std::uint64_t kGoldenTrace = 0x%llxull;\n"
                "constexpr std::uint64_t kGoldenReport = 0x%llxull;\n"
                "constexpr std::uint64_t kGoldenCheckpoint = 0x%llxull;\n",
                static_cast<unsigned long long>(csv),
                static_cast<unsigned long long>(metrics),
                static_cast<unsigned long long>(trace),
                static_cast<unsigned long long>(report),
                static_cast<unsigned long long>(checkpoint));
    GTEST_SKIP() << "HISPAR_UPDATE_GOLDENS set: printed digests, not "
                    "comparing";
  }

  EXPECT_EQ(csv, kGoldenCsv) << "campaign CSV bytes changed";
  EXPECT_EQ(metrics, kGoldenMetrics) << "metrics JSON bytes changed";
  EXPECT_EQ(trace, kGoldenTrace) << "trace JSON bytes changed";
  EXPECT_EQ(report, kGoldenReport) << "run report JSON bytes changed";
  EXPECT_EQ(checkpoint, kGoldenCheckpoint) << "checkpoint bytes changed";

  // Basic shape checks so a digest failure is debuggable: the header
  // row and one known site should be present whatever the digests say.
  EXPECT_EQ(artifacts.csv.rfind("domain,rank,page,", 0), 0u);
  EXPECT_NE(artifacts.csv.find("landing"), std::string::npos);
  EXPECT_NE(artifacts.metrics.find("\"hispar-metrics-v1\""),
            std::string::npos);
}

// --- List-build pipeline goldens ---
//
// Same discipline for `hispar build`: digests of every artifact of the
// pipeline `hispar build --universe 600 --seed 42 --sites 60 --weeks 3
// --jobs 1 --checkpoint ... --churn-out ... --ledger-out ...
// --metrics-out ... --trace-out ... --report-out ...`. The week-0 list
// is additionally compared byte-for-byte against the serial
// HisparBuilder, pinning the sharded campaign's serial-equivalence
// contract at golden scale.
constexpr std::uint64_t kGoldenListCsv = 0x6237b18025c54a97ull;
constexpr std::uint64_t kGoldenListChurn = 0xfedc045d65405467ull;
constexpr std::uint64_t kGoldenListLedger = 0x3232ea73cbc5485dull;
constexpr std::uint64_t kGoldenListMetrics = 0xdf0ba0e932547330ull;
constexpr std::uint64_t kGoldenListTrace = 0x7e5b3c67646d4b2bull;
constexpr std::uint64_t kGoldenListReport = 0xa7edd8e229c96968ull;
constexpr std::uint64_t kGoldenListCheckpoint = 0xb24e303197a98573ull;

struct ListBuildArtifacts {
  std::string lists_csv;  // all weeks, concatenated in week order
  std::string churn;
  std::string ledger;
  std::string metrics;
  std::string trace;
  std::string report;
  std::string checkpoint;
  std::string serial_week0_csv;  // serial HisparBuilder, same config
};

ListBuildArtifacts run_listbuild_pipeline() {
  web::SyntheticWebConfig web_config;
  web_config.site_count = 600;
  web_config.seed = 42;
  web::SyntheticWeb web(web_config);
  toplist::TopListFactory toplists(web);

  core::ListBuildConfig config;
  config.list.name = "H60";
  config.list.target_sites = 60;
  config.list.urls_per_site = 20;
  config.list.min_internal_results = 5;
  config.weeks = 3;
  config.jobs = 1;
  config.observability.enabled = true;
  const std::string checkpoint_path =
      ::testing::TempDir() + "hispar_golden_listbuild_ckpt.txt";
  std::remove(checkpoint_path.c_str());
  config.checkpoint_path = checkpoint_path;

  core::ListBuildCampaign campaign(web, toplists, config);
  const core::ListBuildResult result = campaign.run();

  ListBuildArtifacts artifacts;
  for (const auto& list : result.lists)
    artifacts.lists_csv += core::to_csv(list);
  std::ostringstream churn;
  core::write_churn_csv(churn, result.lists);
  artifacts.churn = churn.str();
  std::ostringstream ledger;
  core::write_cost_ledger_csv(ledger, result.weeks);
  artifacts.ledger = ledger.str();
  std::ostringstream metrics;
  campaign.telemetry().metrics.write_json(metrics);
  artifacts.metrics = metrics.str();
  std::ostringstream trace;
  obs::write_chrome_trace(trace, campaign.telemetry().spans);
  artifacts.trace = trace.str();
  std::ostringstream report;
  obs::write_listbuild_report_json(
      report, core::build_listbuild_report(result, campaign.telemetry()));
  artifacts.report = report.str();
  std::ifstream checkpoint(checkpoint_path);
  std::ostringstream checkpoint_bytes;
  checkpoint_bytes << checkpoint.rdbuf();
  artifacts.checkpoint = checkpoint_bytes.str();
  std::remove(checkpoint_path.c_str());

  search::SearchEngine engine(web);
  core::HisparBuilder builder(web, toplists, engine);
  artifacts.serial_week0_csv =
      core::to_csv(builder.build(config.list, /*week=*/0));
  return artifacts;
}

TEST(GoldenArtifacts, ListBuildOutputsArePinned) {
  const ListBuildArtifacts artifacts = run_listbuild_pipeline();
  const std::uint64_t csv = util::fnv1a(artifacts.lists_csv);
  const std::uint64_t churn = util::fnv1a(artifacts.churn);
  const std::uint64_t ledger = util::fnv1a(artifacts.ledger);
  const std::uint64_t metrics = util::fnv1a(artifacts.metrics);
  const std::uint64_t trace = util::fnv1a(artifacts.trace);
  const std::uint64_t report = util::fnv1a(artifacts.report);
  const std::uint64_t checkpoint = util::fnv1a(artifacts.checkpoint);

  if (std::getenv("HISPAR_UPDATE_GOLDENS") != nullptr) {
    std::printf(
        "constexpr std::uint64_t kGoldenListCsv = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenListChurn = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenListLedger = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenListMetrics = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenListTrace = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenListReport = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenListCheckpoint = 0x%llxull;\n",
        static_cast<unsigned long long>(csv),
        static_cast<unsigned long long>(churn),
        static_cast<unsigned long long>(ledger),
        static_cast<unsigned long long>(metrics),
        static_cast<unsigned long long>(trace),
        static_cast<unsigned long long>(report),
        static_cast<unsigned long long>(checkpoint));
    GTEST_SKIP() << "HISPAR_UPDATE_GOLDENS set: printed digests, not "
                    "comparing";
  }

  // The serial-equivalence contract is structural, not a golden: it
  // must hold whatever the digests say.
  const std::size_t week0_len = artifacts.serial_week0_csv.size();
  ASSERT_GE(artifacts.lists_csv.size(), week0_len);
  EXPECT_EQ(artifacts.lists_csv.substr(0, week0_len),
            artifacts.serial_week0_csv)
      << "sharded week-0 list differs from the serial builder";

  EXPECT_EQ(csv, kGoldenListCsv) << "weekly list CSV bytes changed";
  EXPECT_EQ(churn, kGoldenListChurn) << "churn CSV bytes changed";
  EXPECT_EQ(ledger, kGoldenListLedger) << "cost ledger bytes changed";
  EXPECT_EQ(metrics, kGoldenListMetrics) << "metrics JSON bytes changed";
  EXPECT_EQ(trace, kGoldenListTrace) << "trace JSON bytes changed";
  EXPECT_EQ(report, kGoldenListReport) << "report JSON bytes changed";
  EXPECT_EQ(checkpoint, kGoldenListCheckpoint) << "checkpoint bytes changed";

  EXPECT_EQ(artifacts.lists_csv.rfind("domain,bootstrap_rank,", 0), 0u);
  EXPECT_EQ(artifacts.churn.rfind("week_from,week_to,", 0), 0u);
  EXPECT_NE(artifacts.report.find("\"hispar-listbuild-report-v1\""),
            std::string::npos);
}

// --- Multi-vantage pipeline goldens ---
//
// Same discipline for the multi-vantage engine: digests of every
// artifact of `hispar measure --universe 600 --sites 24 --loads 4
// --vantages 3 --jobs 1 --seed 42` plus the consensus CSV, the
// hispar-vantage-report-v1 JSON and the vantage-granular checkpoint.
// The digests pin the cross-vantage seed forking, the substrate
// derivation per profile, the merged telemetry layout and the
// checkpoint stream all at once.
constexpr std::uint64_t kGoldenVantageCsv = 0x4afc148967473853ull;
constexpr std::uint64_t kGoldenVantageMetrics = 0x1151ed15038a7a4ull;
constexpr std::uint64_t kGoldenVantageTrace = 0x3e7e63752cdc689dull;
constexpr std::uint64_t kGoldenVantageConsensus = 0x8330f483b415d3ull;
constexpr std::uint64_t kGoldenVantageReport = 0xa77ced31b87353deull;
constexpr std::uint64_t kGoldenVantageCheckpoint = 0x7959b2b2e3d84826ull;

struct VantageArtifacts {
  std::string csv;  // all vantages, concatenated in vantage order
  std::string metrics;
  std::string trace;
  std::string consensus;
  std::string report;
  std::string checkpoint;
};

VantageArtifacts run_vantage_pipeline() {
  web::SyntheticWebConfig web_config;
  web_config.site_count = 600;
  web_config.seed = 42;
  web::SyntheticWeb web(web_config);
  toplist::TopListFactory toplists(web);
  search::SearchEngine engine(web);

  core::HisparBuilder builder(web, toplists, engine);
  core::HisparConfig list_config;
  list_config.name = "H24";
  list_config.target_sites = 24;
  list_config.urls_per_site = 20;
  list_config.min_internal_results = 5;
  const core::HisparList list = builder.build(list_config, /*week=*/0);

  const std::string checkpoint_path =
      ::testing::TempDir() + "hispar_golden_vantage_ckpt.txt";
  std::remove(checkpoint_path.c_str());

  core::VantageCampaignConfig config;
  config.base.landing_loads = 4;
  config.base.jobs = 1;
  config.base.observability.enabled = true;
  config.profiles = net::VantageProfile::default_vantages(3);
  config.checkpoint_path = checkpoint_path;
  core::VantageCampaign campaign(web, config);
  const auto result = campaign.run(list);

  VantageArtifacts artifacts;
  for (const auto& observations : result.observations) {
    std::ostringstream csv;
    core::write_measure_csv(csv, observations);
    artifacts.csv += csv.str();
  }
  std::ostringstream metrics;
  campaign.telemetry().metrics.write_json(metrics);
  artifacts.metrics = metrics.str();
  std::ostringstream trace;
  obs::write_chrome_trace(trace, campaign.telemetry().spans);
  artifacts.trace = trace.str();
  std::ostringstream consensus;
  core::write_vantage_consensus_csv(consensus, result.observations);
  artifacts.consensus = consensus.str();
  std::ostringstream report;
  obs::write_vantage_report_json(
      report, core::build_vantage_report(result.observations, config.profiles,
                                         campaign.telemetry()));
  artifacts.report = report.str();
  std::ifstream checkpoint(checkpoint_path);
  std::ostringstream checkpoint_bytes;
  checkpoint_bytes << checkpoint.rdbuf();
  artifacts.checkpoint = checkpoint_bytes.str();
  std::remove(checkpoint_path.c_str());
  return artifacts;
}

TEST(GoldenArtifacts, MultiVantageOutputsArePinned) {
  const VantageArtifacts artifacts = run_vantage_pipeline();
  const std::uint64_t csv = util::fnv1a(artifacts.csv);
  const std::uint64_t metrics = util::fnv1a(artifacts.metrics);
  const std::uint64_t trace = util::fnv1a(artifacts.trace);
  const std::uint64_t consensus = util::fnv1a(artifacts.consensus);
  const std::uint64_t report = util::fnv1a(artifacts.report);
  const std::uint64_t checkpoint = util::fnv1a(artifacts.checkpoint);

  if (std::getenv("HISPAR_UPDATE_GOLDENS") != nullptr) {
    std::printf(
        "constexpr std::uint64_t kGoldenVantageCsv = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenVantageMetrics = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenVantageTrace = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenVantageConsensus = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenVantageReport = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenVantageCheckpoint = 0x%llxull;\n",
        static_cast<unsigned long long>(csv),
        static_cast<unsigned long long>(metrics),
        static_cast<unsigned long long>(trace),
        static_cast<unsigned long long>(consensus),
        static_cast<unsigned long long>(report),
        static_cast<unsigned long long>(checkpoint));
    GTEST_SKIP() << "HISPAR_UPDATE_GOLDENS set: printed digests, not "
                    "comparing";
  }

  EXPECT_EQ(csv, kGoldenVantageCsv) << "per-vantage CSV bytes changed";
  EXPECT_EQ(metrics, kGoldenVantageMetrics) << "metrics JSON bytes changed";
  EXPECT_EQ(trace, kGoldenVantageTrace) << "trace JSON bytes changed";
  EXPECT_EQ(consensus, kGoldenVantageConsensus)
      << "consensus CSV bytes changed";
  EXPECT_EQ(report, kGoldenVantageReport)
      << "vantage report JSON bytes changed";
  EXPECT_EQ(checkpoint, kGoldenVantageCheckpoint)
      << "vantage checkpoint bytes changed";

  EXPECT_EQ(artifacts.consensus.rfind("domain,rank,vantages,", 0), 0u);
  EXPECT_NE(artifacts.report.find("\"hispar-vantage-report-v1\""),
            std::string::npos);
  EXPECT_EQ(artifacts.checkpoint.rfind("hispar-vantage,v1,", 0), 0u);
}

// --- Browsing-session pipeline goldens ---
//
// Same discipline for the browsing-session engine: digests of every
// artifact of `hispar measure --universe 600 --sites 24 --loads 4
// --sessions --session-len 5 --jobs 1 --seed 42` — the warm session
// CSV, the per-site warm-hits CSV, the merged telemetry, the
// hispar-session-report-v1 JSON (whose cold arm is the regular
// campaign over the same list) and the session-granular checkpoint.
// The digests pin the per-session seed forking, the visit-order
// shuffle, the browser-cache hit/revalidate/miss classification and
// the warm DNS/connection carryover all at once.
constexpr std::uint64_t kGoldenSessionCsv = 0xad4f9187625b0606ull;
constexpr std::uint64_t kGoldenSessionWarmHits = 0x4573332e8b782ae3ull;
constexpr std::uint64_t kGoldenSessionMetrics = 0xfb077f813d6fd0fbull;
constexpr std::uint64_t kGoldenSessionTrace = 0xaeb3129f8c3bd7bfull;
constexpr std::uint64_t kGoldenSessionReport = 0x3773e4caa2e599ceull;
constexpr std::uint64_t kGoldenSessionCheckpoint = 0x8d12309446c06b61ull;

struct SessionArtifacts {
  std::string csv;        // warm session observations
  std::string warm_hits;  // per-site cache counters
  std::string metrics;
  std::string trace;
  std::string report;
  std::string checkpoint;
};

SessionArtifacts run_session_pipeline() {
  web::SyntheticWebConfig web_config;
  web_config.site_count = 600;
  web_config.seed = 42;
  web::SyntheticWeb web(web_config);
  toplist::TopListFactory toplists(web);
  search::SearchEngine engine(web);

  core::HisparBuilder builder(web, toplists, engine);
  core::HisparConfig list_config;
  list_config.name = "H24";
  list_config.target_sites = 24;
  list_config.urls_per_site = 20;
  list_config.min_internal_results = 5;
  const core::HisparList list = builder.build(list_config, /*week=*/0);

  const std::string checkpoint_path =
      ::testing::TempDir() + "hispar_golden_session_ckpt.txt";
  std::remove(checkpoint_path.c_str());

  core::SessionConfig config;
  config.base.landing_loads = 4;
  config.base.jobs = 1;
  config.base.observability.enabled = true;
  config.session_len = 5;
  config.checkpoint_path = checkpoint_path;
  core::SessionCampaign campaign(web, config);
  const auto warm = campaign.run(list);

  // The cold arm of the report is the regular campaign over the same
  // list (exactly what `hispar measure --sessions` runs first).
  core::CampaignConfig cold_config = config.base;
  cold_config.observability.enabled = false;
  core::MeasurementCampaign cold_campaign(web, cold_config);
  const auto cold = cold_campaign.run(list);

  SessionArtifacts artifacts;
  std::ostringstream csv;
  core::write_measure_csv(csv, warm);
  artifacts.csv = csv.str();
  std::ostringstream warm_hits;
  core::write_warm_hits_csv(warm_hits, warm, campaign.cache_stats());
  artifacts.warm_hits = warm_hits.str();
  std::ostringstream metrics;
  campaign.telemetry().metrics.write_json(metrics);
  artifacts.metrics = metrics.str();
  std::ostringstream trace;
  obs::write_chrome_trace(trace, campaign.telemetry().spans);
  artifacts.trace = trace.str();
  std::ostringstream report;
  obs::write_session_report_json(
      report,
      core::build_session_report(cold, warm, campaign.cache_stats(),
                                 campaign.telemetry(), config.session_len));
  artifacts.report = report.str();
  std::ifstream checkpoint(checkpoint_path);
  std::ostringstream checkpoint_bytes;
  checkpoint_bytes << checkpoint.rdbuf();
  artifacts.checkpoint = checkpoint_bytes.str();
  std::remove(checkpoint_path.c_str());
  return artifacts;
}

TEST(GoldenArtifacts, BrowsingSessionOutputsArePinned) {
  const SessionArtifacts artifacts = run_session_pipeline();
  const std::uint64_t csv = util::fnv1a(artifacts.csv);
  const std::uint64_t warm_hits = util::fnv1a(artifacts.warm_hits);
  const std::uint64_t metrics = util::fnv1a(artifacts.metrics);
  const std::uint64_t trace = util::fnv1a(artifacts.trace);
  const std::uint64_t report = util::fnv1a(artifacts.report);
  const std::uint64_t checkpoint = util::fnv1a(artifacts.checkpoint);

  if (std::getenv("HISPAR_UPDATE_GOLDENS") != nullptr) {
    std::printf(
        "constexpr std::uint64_t kGoldenSessionCsv = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenSessionWarmHits = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenSessionMetrics = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenSessionTrace = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenSessionReport = 0x%llxull;\n"
        "constexpr std::uint64_t kGoldenSessionCheckpoint = 0x%llxull;\n",
        static_cast<unsigned long long>(csv),
        static_cast<unsigned long long>(warm_hits),
        static_cast<unsigned long long>(metrics),
        static_cast<unsigned long long>(trace),
        static_cast<unsigned long long>(report),
        static_cast<unsigned long long>(checkpoint));
    GTEST_SKIP() << "HISPAR_UPDATE_GOLDENS set: printed digests, not "
                    "comparing";
  }

  EXPECT_EQ(csv, kGoldenSessionCsv) << "session CSV bytes changed";
  EXPECT_EQ(warm_hits, kGoldenSessionWarmHits)
      << "warm-hits CSV bytes changed";
  EXPECT_EQ(metrics, kGoldenSessionMetrics) << "metrics JSON bytes changed";
  EXPECT_EQ(trace, kGoldenSessionTrace) << "trace JSON bytes changed";
  EXPECT_EQ(report, kGoldenSessionReport)
      << "session report JSON bytes changed";
  EXPECT_EQ(checkpoint, kGoldenSessionCheckpoint)
      << "session checkpoint bytes changed";

  EXPECT_EQ(artifacts.warm_hits.rfind("domain,rank,lookups,", 0), 0u);
  EXPECT_NE(artifacts.report.find("\"hispar-session-report-v1\""),
            std::string::npos);
  EXPECT_EQ(artifacts.checkpoint.rfind("hispar-session,v1,", 0), 0u);
  // The engine's reason to exist: the warm cache must actually hit.
  EXPECT_EQ(artifacts.report.find("\"cache_fresh_hits\":0,"),
            std::string::npos);
}

}  // namespace
