// Statistical sweep of the CDN warmth model: observed hit fractions
// must track the analytic warm probability across the rate spectrum.
#include <gtest/gtest.h>

#include <cmath>

#include "cdn/hierarchy.h"

namespace {

using namespace hispar::cdn;
using hispar::net::LatencyModel;
using hispar::util::Rng;

class WarmthSweep : public ::testing::TestWithParam<double> {};

TEST_P(WarmthSweep, ObservedHitRateMatchesModel) {
  const double rate = GetParam();
  const auto registry = CdnRegistry::standard();
  const LatencyModel latency;
  CdnHierarchy cdn(registry, latency);
  Rng rng(101);
  const auto& provider = *registry.find_by_name("fastly");

  constexpr int kTrials = 4000;
  int hits = 0;
  for (int i = 0; i < kTrials; ++i) {
    CdnRequest request;
    request.url = "https://x/" + std::to_string(i);  // distinct: no LRU help
    request.size_bytes = 10e3;
    request.request_rate = rate;
    const auto response = cdn.serve(provider, request, rng);
    hits += response.served_from == CacheLevel::kEdge;
  }
  const double expected = cdn.edge_warm_probability(rate);
  const double observed = static_cast<double>(hits) / kTrials;
  // Binomial 4-sigma band.
  const double sigma =
      std::sqrt(std::max(expected * (1 - expected), 1e-4) / kTrials);
  EXPECT_NEAR(observed, expected, 4 * sigma + 0.01) << "rate " << rate;
}

TEST_P(WarmthSweep, WaitGrowsAsRateFalls) {
  const double rate = GetParam();
  const auto registry = CdnRegistry::standard();
  const LatencyModel latency;
  CdnHierarchy cdn(registry, latency);
  Rng rng(7);
  const auto& provider = *registry.find_by_name("akamai");

  const auto mean_wait = [&](double r) {
    double total = 0.0;
    for (int i = 0; i < 2000; ++i) {
      CdnRequest request;
      request.url = "https://y/" + std::to_string(i) + "/" +
                    std::to_string(r);
      request.size_bytes = 10e3;
      request.request_rate = r;
      total += cdn.serve(provider, request, rng).wait_ms;
    }
    return total / 2000.0;
  };
  EXPECT_LT(mean_wait(rate * 100.0), mean_wait(rate / 100.0));
}

INSTANTIATE_TEST_SUITE_P(Rates, WarmthSweep,
                         ::testing::Values(1e-5, 1e-4, 1e-3, 1e-2, 1e-1,
                                           1.0, 10.0));

TEST(WarmthShape, SigmoidProperties) {
  const auto registry = CdnRegistry::standard();
  const LatencyModel latency;
  CdnHierarchy cdn(registry, latency);
  // P = 1/2 exactly at rate = 1/tc (the Che-consistency point).
  const double half_rate = 1.0 / cdn.config().edge_tc_s;
  EXPECT_NEAR(cdn.edge_warm_probability(half_rate), 0.5, 1e-9);
  // Smooth transition: one decade of rate moves P by far less than a
  // step function would.
  const double p_lo = cdn.edge_warm_probability(half_rate / 10.0);
  const double p_hi = cdn.edge_warm_probability(half_rate * 10.0);
  EXPECT_GT(p_lo, 0.3);
  EXPECT_LT(p_hi, 0.7);
}

}  // namespace
