#include "util/strings.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/intern.h"

namespace {

using namespace hispar::util;

TEST(Split, Basic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, EmptySegmentsPreserved) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, "::"), "x::y::z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Lower, MixedCase) { EXPECT_EQ(lower("AbC1!"), "abc1!"); }

TEST(ContainsCi, CaseInsensitive) {
  EXPECT_TRUE(contains_ci("X-Cache: HIT", "x-cache"));
  EXPECT_TRUE(contains_ci("anything", ""));
  EXPECT_FALSE(contains_ci("abc", "abd"));
}

TEST(WithThousands, FormatsGroups) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(with_thousands(-9876), "-9,876");
}

TEST(FormatBytes, PicksUnits) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KB");
  EXPECT_EQ(format_bytes(1.5 * 1024 * 1024), "1.5 MB");
}

struct GlobCase {
  const char* pattern;
  const char* text;
  bool expected;
};

class GlobMatch : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobMatch, MatchesExpected) {
  const auto& c = GetParam();
  EXPECT_EQ(glob_match(c.pattern, c.text), c.expected)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, GlobMatch,
    ::testing::Values(
        GlobCase{"abc", "abc", true}, GlobCase{"abc", "abd", false},
        GlobCase{"*", "", true}, GlobCase{"*", "anything", true},
        GlobCase{"a*c", "abbbc", true}, GlobCase{"a*c", "ac", true},
        GlobCase{"a*c", "ab", false}, GlobCase{"?x", "ax", true},
        GlobCase{"?x", "x", false},
        GlobCase{"*.akamaiedge.net", "e123.akamaiedge.net", true},
        GlobCase{"*.akamaiedge.net", "akamaiedge.net.evil.com", false},
        GlobCase{"*google-analytics.com*",
                 "https://www.google-analytics.com/collect", true},
        GlobCase{"*/track/*", "https://pixel.thirdparty9.com/track/1-0",
                 true},
        GlobCase{"*://ads.*", "https://ads.thirdparty4.com/lib/2", true},
        GlobCase{"*://ads.*", "https://www.ads-site.com/", false},
        GlobCase{"a*b*c", "aXbYc", true}, GlobCase{"a*b*c", "acb", false}));

TEST(SymbolTable, IdsAreDenseInInsertionOrder) {
  hispar::util::SymbolTable table;
  EXPECT_EQ(table.intern("alpha"), 0u);
  EXPECT_EQ(table.intern("beta"), 1u);
  EXPECT_EQ(table.intern("alpha"), 0u);  // re-intern is a lookup
  EXPECT_EQ(table.intern("gamma"), 2u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(SymbolTable, FindDoesNotInsert) {
  hispar::util::SymbolTable table;
  EXPECT_EQ(table.find("missing"), hispar::util::SymbolTable::kNpos);
  EXPECT_EQ(table.size(), 0u);
  table.intern("present");
  EXPECT_EQ(table.find("present"), 0u);
  EXPECT_EQ(table.find("missing"), hispar::util::SymbolTable::kNpos);
}

TEST(SymbolTable, EmptyStringIsAValidSymbol) {
  hispar::util::SymbolTable table;
  EXPECT_EQ(table.intern(""), 0u);
  EXPECT_EQ(table.intern(""), 0u);
  EXPECT_EQ(table.view(0), "");
}

TEST(SymbolTable, RoundTripsThroughGrowthAndKeepsViewsStable) {
  // Push far past the initial slot count so the open-addressing table
  // rehashes several times; every id and view must survive, and views
  // taken before growth must stay valid (storage is address-stable).
  hispar::util::SymbolTable table;
  const std::string_view early = table.view(table.intern("domain0.com"));
  std::vector<std::string> names;
  for (int i = 0; i < 2000; ++i)
    names.push_back("domain" + std::to_string(i) + ".com");
  for (std::size_t i = 0; i < names.size(); ++i)
    EXPECT_EQ(table.intern(names[i]), static_cast<std::uint32_t>(i));
  EXPECT_EQ(table.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(table.find(names[i]), static_cast<std::uint32_t>(i));
    EXPECT_EQ(table.view(static_cast<std::uint32_t>(i)), names[i]);
  }
  EXPECT_EQ(early, "domain0.com");
}

TEST(SymbolTable, HashCollisionsAreResolvedByStringCompare) {
  // The table compares stored bytes before declaring a hit, so strings
  // that collide in the hash (or land in each other's probe chains)
  // still get distinct ids. Exercise with many near-identical keys of
  // the shapes the campaign interns (URLs differing in one character).
  hispar::util::SymbolTable table;
  std::vector<std::string> urls;
  for (int site = 0; site < 40; ++site)
    for (int object = 0; object < 40; ++object)
      urls.push_back("https://cdn" + std::to_string(site) +
                     ".example.com/asset/" + std::to_string(object));
  for (std::size_t i = 0; i < urls.size(); ++i)
    ASSERT_EQ(table.intern(urls[i]), static_cast<std::uint32_t>(i));
  // Second pass: every key resolves to its original id, none inserted.
  for (std::size_t i = 0; i < urls.size(); ++i)
    ASSERT_EQ(table.intern(urls[i]), static_cast<std::uint32_t>(i));
  EXPECT_EQ(table.size(), urls.size());
}

TEST(SymbolTable, ClearResetsToEmpty) {
  hispar::util::SymbolTable table;
  table.intern("a");
  table.intern("b");
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.find("a"), hispar::util::SymbolTable::kNpos);
  EXPECT_EQ(table.intern("b"), 0u);  // ids restart from zero
}

}  // namespace
