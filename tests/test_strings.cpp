#include "util/strings.h"

#include <gtest/gtest.h>

namespace {

using namespace hispar::util;

TEST(Split, Basic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, EmptySegmentsPreserved) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, "::"), "x::y::z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Lower, MixedCase) { EXPECT_EQ(lower("AbC1!"), "abc1!"); }

TEST(ContainsCi, CaseInsensitive) {
  EXPECT_TRUE(contains_ci("X-Cache: HIT", "x-cache"));
  EXPECT_TRUE(contains_ci("anything", ""));
  EXPECT_FALSE(contains_ci("abc", "abd"));
}

TEST(WithThousands, FormatsGroups) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(with_thousands(-9876), "-9,876");
}

TEST(FormatBytes, PicksUnits) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KB");
  EXPECT_EQ(format_bytes(1.5 * 1024 * 1024), "1.5 MB");
}

struct GlobCase {
  const char* pattern;
  const char* text;
  bool expected;
};

class GlobMatch : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobMatch, MatchesExpected) {
  const auto& c = GetParam();
  EXPECT_EQ(glob_match(c.pattern, c.text), c.expected)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, GlobMatch,
    ::testing::Values(
        GlobCase{"abc", "abc", true}, GlobCase{"abc", "abd", false},
        GlobCase{"*", "", true}, GlobCase{"*", "anything", true},
        GlobCase{"a*c", "abbbc", true}, GlobCase{"a*c", "ac", true},
        GlobCase{"a*c", "ab", false}, GlobCase{"?x", "ax", true},
        GlobCase{"?x", "x", false},
        GlobCase{"*.akamaiedge.net", "e123.akamaiedge.net", true},
        GlobCase{"*.akamaiedge.net", "akamaiedge.net.evil.com", false},
        GlobCase{"*google-analytics.com*",
                 "https://www.google-analytics.com/collect", true},
        GlobCase{"*/track/*", "https://pixel.thirdparty9.com/track/1-0",
                 true},
        GlobCase{"*://ads.*", "https://ads.thirdparty4.com/lib/2", true},
        GlobCase{"*://ads.*", "https://www.ads-site.com/", false},
        GlobCase{"a*b*c", "aXbYc", true}, GlobCase{"a*b*c", "acb", false}));

}  // namespace
