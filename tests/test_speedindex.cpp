#include "browser/speedindex.h"

#include <gtest/gtest.h>

namespace {

using hispar::browser::PaintEvent;
using hispar::browser::speed_index_ms;

TEST(SpeedIndexTest, NoVisualContentIsZero) {
  EXPECT_DOUBLE_EQ(speed_index_ms({}, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(speed_index_ms({{50.0, 0.0}}, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(speed_index_ms({{50.0, -3.0}}, 100.0), 0.0);
}

TEST(SpeedIndexTest, SingleEventEqualsItsPaintTime) {
  EXPECT_DOUBLE_EQ(speed_index_ms({{200.0, 10.0}}, 0.0), 200.0);
}

TEST(SpeedIndexTest, FirstPaintClampsEarlyEvents) {
  // Content cannot appear before first paint.
  EXPECT_DOUBLE_EQ(speed_index_ms({{50.0, 10.0}}, 300.0), 300.0);
}

TEST(SpeedIndexTest, WeightedAverageOfPaintTimes) {
  // SI = sum w_i/W * t_i: (1*100 + 3*500)/4 = 400.
  EXPECT_DOUBLE_EQ(
      speed_index_ms({{100.0, 1.0}, {500.0, 3.0}}, 0.0), 400.0);
}

TEST(SpeedIndexTest, EarlyHeavyContentLowersTheIndex) {
  const double front_loaded =
      speed_index_ms({{100.0, 9.0}, {1000.0, 1.0}}, 0.0);
  const double back_loaded =
      speed_index_ms({{100.0, 1.0}, {1000.0, 9.0}}, 0.0);
  EXPECT_LT(front_loaded, back_loaded);
}

TEST(SpeedIndexTest, ScaleInvariantInWeights) {
  const std::vector<PaintEvent> small = {{100.0, 1.0}, {300.0, 2.0}};
  const std::vector<PaintEvent> big = {{100.0, 100.0}, {300.0, 200.0}};
  EXPECT_DOUBLE_EQ(speed_index_ms(small, 0.0), speed_index_ms(big, 0.0));
}

TEST(SpeedIndexTest, LowerBoundIsFirstPaint) {
  const double si =
      speed_index_ms({{100.0, 1.0}, {900.0, 1.0}}, 250.0);
  EXPECT_GE(si, 250.0);
}

}  // namespace
