// Parameterized invariant sweep over the page factory: every invariant
// must hold for every rank stripe and page kind, not just the spots the
// unit tests poke.
#include <gtest/gtest.h>

#include <set>

#include "util/url.h"
#include "web/generator.h"

namespace {

using namespace hispar;

struct SweepCase {
  std::size_t rank;
  std::size_t page_index;  // 0 = landing
};

class SiteSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static const web::SyntheticWeb& web() {
    static web::SyntheticWeb instance({1200, 77, 600, false});
    return instance;
  }
};

TEST_P(SiteSweep, DependencyGraphWellFormed) {
  const auto page = web().site_by_rank(GetParam().rank)
                        .page(GetParam().page_index);
  ASSERT_GE(page.objects.size(), 2u);
  EXPECT_EQ(page.objects[0].depth, 0);
  EXPECT_EQ(page.objects[0].parent_index, -1);
  for (std::size_t i = 1; i < page.objects.size(); ++i) {
    const auto& o = page.objects[i];
    ASSERT_GE(o.parent_index, 0) << i;
    ASSERT_LT(static_cast<std::size_t>(o.parent_index), i);
    EXPECT_EQ(o.depth,
              page.objects[static_cast<std::size_t>(o.parent_index)].depth + 1);
  }
}

TEST_P(SiteSweep, UrlsParseAndAreUnique) {
  const auto page = web().site_by_rank(GetParam().rank)
                        .page(GetParam().page_index);
  std::set<std::string> urls;
  for (const auto& o : page.objects) {
    const auto parsed = util::parse_url(o.url);
    ASSERT_TRUE(parsed.has_value()) << o.url;
    EXPECT_EQ(parsed->host, o.host);
    EXPECT_EQ(parsed->scheme, o.scheme);
    EXPECT_TRUE(urls.insert(o.url).second) << "duplicate " << o.url;
  }
}

TEST_P(SiteSweep, AggregateConsistency) {
  const auto page = web().site_by_rank(GetParam().rank)
                        .page(GetParam().page_index);
  EXPECT_LE(page.non_cacheable_count(), page.object_count());
  EXPECT_LE(page.cacheable_bytes(), page.total_bytes() + 1e-6);
  std::size_t depth_total = 0;
  for (int depth = 0; depth <= page.max_depth(); ++depth)
    depth_total += page.objects_at_depth(depth);
  EXPECT_EQ(depth_total, page.object_count());
  double mix_total = 0.0;
  for (double share : page.mix_fractions()) mix_total += share;
  EXPECT_NEAR(mix_total, 1.0, 1e-9);
}

TEST_P(SiteSweep, ThirdPartyClassificationConsistent) {
  const auto page = web().site_by_rank(GetParam().rank)
                        .page(GetParam().page_index);
  for (const auto& o : page.objects) {
    if (o.is_first_party()) {
      // First-party objects live under the site's registrable domain.
      EXPECT_FALSE(util::is_third_party(page.url.host, o.host)) << o.host;
      EXPECT_FALSE(o.is_tracker_request);
      EXPECT_FALSE(o.is_ad_request);
    } else {
      EXPECT_TRUE(util::is_third_party(page.url.host, o.host)) << o.host;
      EXPECT_GE(o.third_party_id, 0);
    }
    if (o.via_cdn) EXPECT_GE(o.cdn_provider_id, 0);
    EXPECT_GT(o.size_bytes, 0.0);
    EXPECT_GE(o.request_rate, 0.0);
    EXPECT_GT(o.origin_think_ms, 0.0);
  }
}

TEST_P(SiteSweep, SchemeConsistency) {
  const auto page = web().site_by_rank(GetParam().rank)
                        .page(GetParam().page_index);
  if (page.url.scheme == util::Scheme::kHttp) {
    // Cleartext pages fetch everything over HTTP (no "mixed" notion).
    for (const auto& o : page.objects)
      EXPECT_EQ(o.scheme, util::Scheme::kHttp);
  } else {
    EXPECT_EQ(page.root().scheme, util::Scheme::kHttps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndPages, SiteSweep,
    ::testing::Values(SweepCase{1, 0}, SweepCase{1, 1}, SweepCase{25, 0},
                      SweepCase{25, 7}, SweepCase{120, 0}, SweepCase{120, 3},
                      SweepCase{380, 0}, SweepCase{380, 11},
                      SweepCase{700, 0}, SweepCase{700, 2},
                      SweepCase{1190, 0}, SweepCase{1190, 19}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "rank" + std::to_string(info.param.rank) + "_page" +
             std::to_string(info.param.page_index);
    });

}  // namespace
