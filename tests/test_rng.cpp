#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace {

using hispar::util::Rng;
using hispar::util::SplitMix64;

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsProduceDifferentStreams) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng parent(3);
  Rng c1 = parent.fork(11);
  Rng c2 = parent.fork(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1.next(), c2.next());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(3), b(3);
  (void)a.fork(1);
  (void)a.fork(2);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SiblingForksDiffer) {
  Rng parent(3);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += c1.next() == c2.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, StringForkStable) {
  Rng parent(3);
  Rng c1 = parent.fork("example.com");
  Rng c2 = parent.fork("example.com");
  EXPECT_EQ(c1.next(), c2.next());
  Rng c3 = parent.fork("other.com");
  EXPECT_NE(parent.fork("example.com").next(), c3.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(2, 5));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 2);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(Rng, ChanceFrequency) {
  Rng rng(5);
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(5);
  std::vector<double> xs(100001);
  for (auto& x : xs) x = rng.lognormal(std::log(50.0), 1.0);
  std::nth_element(xs.begin(), xs.begin() + 50000, xs.end());
  EXPECT_NEAR(xs[50000], 50.0, 2.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(3.0, 2.0), 3.0);
}

TEST(Fnv1a, KnownValues) {
  // FNV-1a 64-bit reference: hash of empty string is the offset basis.
  EXPECT_EQ(hispar::util::fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(hispar::util::fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1a, DistinctInputsDistinctHashes) {
  EXPECT_NE(hispar::util::fnv1a("example.com"),
            hispar::util::fnv1a("example.org"));
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysUnbiasedAcrossSeeds) {
  Rng rng(GetParam());
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST_P(RngSeedSweep, NormalStaysUnbiasedAcrossSeeds) {
  Rng rng(GetParam());
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal();
  EXPECT_NEAR(sum / n, 0.0, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           ~0ULL));

}  // namespace
