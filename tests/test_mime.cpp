#include "web/mime.h"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace hispar::web;

TEST(Mime, RoundTripsThroughRepresentativeType) {
  for (MimeCategory category : all_mime_categories()) {
    if (category == MimeCategory::kUnknown) continue;
    EXPECT_EQ(categorize_mime_type(representative_mime_type(category)),
              category)
        << to_string(category);
  }
}

struct MimeCase {
  const char* type;
  MimeCategory expected;
};

class Categorize : public ::testing::TestWithParam<MimeCase> {};

TEST_P(Categorize, MapsConcreteTypes) {
  EXPECT_EQ(categorize_mime_type(GetParam().type), GetParam().expected)
      << GetParam().type;
}

INSTANTIATE_TEST_SUITE_P(
    ConcreteTypes, Categorize,
    ::testing::Values(
        MimeCase{"text/html; charset=utf-8", MimeCategory::kHtmlCss},
        MimeCase{"text/css", MimeCategory::kHtmlCss},
        MimeCase{"application/javascript", MimeCategory::kJavaScript},
        MimeCase{"text/javascript", MimeCategory::kJavaScript},
        MimeCase{"application/json", MimeCategory::kJson},
        MimeCase{"image/png", MimeCategory::kImage},
        MimeCase{"image/svg+xml", MimeCategory::kImage},
        MimeCase{"audio/ogg", MimeCategory::kAudio},
        MimeCase{"video/webm", MimeCategory::kVideo},
        MimeCase{"font/woff2", MimeCategory::kFont},
        MimeCase{"application/x-font-truetype", MimeCategory::kFont},
        MimeCase{"application/octet-stream", MimeCategory::kData},
        MimeCase{"text/csv", MimeCategory::kData},
        MimeCase{"application/weird", MimeCategory::kUnknown}));

TEST(Mime, NineCategories) {
  // §5.2: nine categories.
  EXPECT_EQ(kMimeCategoryCount, 9);
  std::set<std::string_view> names;
  for (MimeCategory category : all_mime_categories())
    names.insert(to_string(category));
  EXPECT_EQ(names.size(), 9u);
}

TEST(Mime, VisualCategories) {
  EXPECT_TRUE(is_visual(MimeCategory::kImage));
  EXPECT_TRUE(is_visual(MimeCategory::kHtmlCss));
  EXPECT_TRUE(is_visual(MimeCategory::kVideo));
  EXPECT_FALSE(is_visual(MimeCategory::kJavaScript));
  EXPECT_FALSE(is_visual(MimeCategory::kJson));
  EXPECT_FALSE(is_visual(MimeCategory::kAudio));
}

TEST(Mime, DefaultCacheability) {
  // Static assets cache; documents and API payloads do not.
  EXPECT_TRUE(default_cacheable(MimeCategory::kImage));
  EXPECT_TRUE(default_cacheable(MimeCategory::kJavaScript));
  EXPECT_TRUE(default_cacheable(MimeCategory::kFont));
  EXPECT_FALSE(default_cacheable(MimeCategory::kHtmlCss));
  EXPECT_FALSE(default_cacheable(MimeCategory::kJson));
}

}  // namespace
