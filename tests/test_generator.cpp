#include "web/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "obs/metrics.h"

namespace {

using namespace hispar::web;

SyntheticWebConfig small_config() {
  SyntheticWebConfig config;
  config.site_count = 120;
  config.seed = 5;
  config.third_party_tail = 200;
  return config;
}

TEST(SyntheticWebTest, DomainsAreUniqueAndIndexed) {
  const SyntheticWeb web(small_config());
  std::set<std::string> domains(web.domains().begin(), web.domains().end());
  EXPECT_EQ(domains.size(), web.domains().size());
  for (std::size_t rank = 1; rank <= web.site_count(); ++rank) {
    EXPECT_EQ(web.site_by_rank(rank).domain(), web.domains()[rank - 1]);
    EXPECT_EQ(web.site_by_rank(rank).profile().rank, rank);
  }
}

TEST(SyntheticWebTest, FindSiteByDomain) {
  const SyntheticWeb web(small_config());
  const std::string& domain = web.domains()[10];
  const WebSite* site = web.find_site(domain);
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->domain(), domain);
  EXPECT_EQ(web.find_site("no-such-domain.example"), nullptr);
}

TEST(SyntheticWebTest, RankBoundsChecked) {
  const SyntheticWeb web(small_config());
  EXPECT_THROW(web.site_by_rank(0), std::out_of_range);
  EXPECT_THROW(web.site_by_rank(web.site_count() + 1), std::out_of_range);
}

TEST(SyntheticWebTest, CrawlSitesPlacedAtPaperRanks) {
  const SyntheticWeb web({3000, 42, 300, true});
  EXPECT_EQ(web.site_by_rank(13).domain(), "wikipedia.org");
  EXPECT_EQ(web.site_by_rank(36).domain(), "twitter.com");
  EXPECT_EQ(web.site_by_rank(67).domain(), "nytimes.com");
  EXPECT_EQ(web.site_by_rank(2014).domain(), "howstuffworks.com");
  // The unranked academic site sits at the very end.
  EXPECT_EQ(web.site_by_rank(web.site_count()).domain(), "csail.mit.edu");
}

TEST(SyntheticWebTest, CrawlSitePresetsApplied) {
  const SyntheticWeb web({3000, 42, 300, true});
  const WebSite& wikipedia = web.crawl_site(CrawlSite::kWikipedia);
  EXPECT_TRUE(wikipedia.profile().tracker_free);
  EXPECT_EQ(wikipedia.profile().landing_ad_slots, 0.0);
  const WebSite& nytimes = web.crawl_site(CrawlSite::kNyTimes);
  EXPECT_GT(nytimes.profile().internal_objects_median,
            wikipedia.profile().internal_objects_median);
  EXPECT_TRUE(nytimes.profile().hb_on_landing);
  const WebSite& academic = web.crawl_site(CrawlSite::kAcademic);
  EXPECT_LT(academic.profile().site_visit_rate, 0.1);
}

TEST(SyntheticWebTest, CrawlSitesCanBeDisabled) {
  SyntheticWebConfig config = small_config();
  config.include_crawl_sites = false;
  const SyntheticWeb web(config);
  EXPECT_EQ(web.find_site("wikipedia.org"), nullptr);
  EXPECT_THROW(web.crawl_site(CrawlSite::kWikipedia), std::logic_error);
}

TEST(SyntheticWebTest, DeterministicAcrossConstructions) {
  const SyntheticWeb a(small_config());
  const SyntheticWeb b(small_config());
  EXPECT_EQ(a.domains(), b.domains());
  const WebPage page_a = a.site_by_rank(7).page(3);
  const WebPage page_b = b.site_by_rank(7).page(3);
  ASSERT_EQ(page_a.objects.size(), page_b.objects.size());
  EXPECT_DOUBLE_EQ(page_a.total_bytes(), page_b.total_bytes());
}

TEST(SyntheticWebTest, SeedChangesTheWeb) {
  SyntheticWebConfig other = small_config();
  other.seed = 6;
  const SyntheticWeb a(small_config());
  const SyntheticWeb b(other);
  EXPECT_NE(a.domains(), b.domains());
}

TEST(SyntheticWebTest, ExternalLinksPointToRealDomains) {
  const SyntheticWeb web(small_config());
  const WebPage page = web.site_by_rank(3).page(1);
  EXPECT_FALSE(page.external_links.empty());
  for (const auto& domain : page.external_links)
    EXPECT_NE(web.find_site(domain), nullptr);
}

TEST(SyntheticWebTest, RejectsTinyUniverse) {
  SyntheticWebConfig config = small_config();
  config.site_count = 5;
  EXPECT_THROW(SyntheticWeb{config}, std::invalid_argument);
}

TEST(SyntheticWebTest, CrawlSiteLabels) {
  EXPECT_EQ(crawl_site_label(CrawlSite::kWikipedia), "WP");
  EXPECT_EQ(crawl_site_label(CrawlSite::kAcademic), "AC");
  EXPECT_EQ(crawl_site_domain(CrawlSite::kTwitter), "twitter.com");
}

bool pages_equal(const WebPage& a, const WebPage& b) {
  if (a.url.host != b.url.host || a.url.path != b.url.path) return false;
  if (a.objects.size() != b.objects.size()) return false;
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    if (a.objects[i].url != b.objects[i].url) return false;
    if (a.objects[i].size_bytes != b.objects[i].size_bytes) return false;
    if (a.objects[i].parent_index != b.objects[i].parent_index) return false;
    if (a.objects[i].host_id != b.objects[i].host_id) return false;
  }
  return a.external_links == b.external_links;
}

TEST(PageCacheTest, CachedPageEqualsFreshMaterialization) {
  const SyntheticWeb web(small_config());
  const WebSite& site = web.site_by_rank(7);
  PageCache cache;
  const WebPage& cached = cache.get(site, 3);
  const WebPage fresh = site.page(3);
  EXPECT_TRUE(pages_equal(cached, fresh));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(PageCacheTest, RepeatLandingLoadsHitTheCache) {
  const SyntheticWeb web(small_config());
  const WebSite& site = web.site_by_rank(7);
  PageCache cache;
  const WebPage& first = cache.get(site, 0);
  const WebPage* pinned = &first;
  for (int load = 0; load < 9; ++load) {
    const WebPage& again = cache.get(site, 0);
    // Pinned landing pages are reference-stable across other gets.
    EXPECT_EQ(&again, pinned);
    cache.get(site, 1 + static_cast<std::size_t>(load % 3));
  }
  EXPECT_EQ(cache.hits(), 9u);
}

TEST(PageCacheTest, SingleSlotCoversImmediateRetryOnly) {
  const SyntheticWeb web(small_config());
  const WebSite& site = web.site_by_rank(7);
  PageCache cache;
  cache.get(site, 2);
  cache.get(site, 2);  // retry of the same internal page: hit
  EXPECT_EQ(cache.hits(), 1u);
  cache.get(site, 3);  // different page evicts the slot
  cache.get(site, 2);  // miss again
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(PageCacheTest, HitCounterReportsToMetricsRegistry) {
  const SyntheticWeb web(small_config());
  const WebSite& site = web.site_by_rank(12);
  PageCache cache;
  hispar::obs::MetricsRegistry metrics;
  cache.set_metrics(&metrics);
  cache.get(site, 0);
  cache.get(site, 0);
  cache.get(site, 0);
  EXPECT_EQ(metrics.counter_or("web.page_cache.hit"), 2u);
  EXPECT_EQ(metrics.counter_or("web.page_cache.miss"), 1u);
  cache.set_metrics(nullptr);  // detached: counters stop moving
  cache.get(site, 0);
  EXPECT_EQ(metrics.counter_or("web.page_cache.hit"), 2u);
  EXPECT_EQ(cache.hits(), 3u);  // internal tally still counts
}

TEST(PageCacheTest, ClearResetsEverything) {
  const SyntheticWeb web(small_config());
  const WebSite& site = web.site_by_rank(7);
  PageCache cache;
  cache.get(site, 0);
  cache.get(site, 0);
  cache.clear();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  cache.get(site, 0);
  EXPECT_EQ(cache.misses(), 1u);  // landing pin was dropped
}

}  // namespace
