#include "browser/loader.h"

#include <gtest/gtest.h>

#include <set>

#include "web/generator.h"

namespace {

using namespace hispar;
using browser::LoadOptions;
using browser::LoadResult;
using browser::PageLoader;

class LoaderTest : public ::testing::Test {
 protected:
  LoaderTest()
      : web_({120, 11, 200, false}),
        latency_(),
        cdn_(web_.cdn_registry(), latency_),
        resolver_({"local", 1, 6.0, net::Region::kNorthAmerica, 1.0},
                  latency_),
        loader_({&latency_, &web_.cdn_registry(), &cdn_, &resolver_,
                 net::Region::kNorthAmerica}) {}

  LoadResult load(const web::WebPage& page, std::uint64_t seed = 1,
                  LoadOptions options = {}) {
    return loader_.load(page, util::Rng(seed), options);
  }

  web::SyntheticWeb web_;
  net::LatencyModel latency_;
  cdn::CdnHierarchy cdn_;
  net::CachingResolver resolver_;
  PageLoader loader_;
};

TEST_F(LoaderTest, HarCoversEveryObject) {
  const auto page = web_.site_by_rank(5).page(1);
  const auto result = load(page);
  EXPECT_EQ(result.har.entries.size(), page.objects.size());
  EXPECT_EQ(result.har.page_url, page.url.str());
}

TEST_F(LoaderTest, TimingPhasesAreNonNegative) {
  const auto page = web_.site_by_rank(9).page(2);
  const auto result = load(page);
  for (const auto& entry : result.har.entries) {
    EXPECT_GE(entry.timings.blocked, 0.0);
    EXPECT_GE(entry.timings.dns, 0.0);
    EXPECT_GE(entry.timings.connect, 0.0);
    EXPECT_GE(entry.timings.ssl, 0.0);
    EXPECT_GE(entry.timings.send, 0.0);
    EXPECT_GT(entry.timings.wait, 0.0);
    EXPECT_GE(entry.timings.receive, 0.0);
    EXPECT_GE(entry.started_at_ms, 0.0);
  }
}

TEST_F(LoaderTest, NavigationTimingOrdering) {
  const auto page = web_.site_by_rank(3).page(0);
  const auto result = load(page);
  EXPECT_GT(result.plt_ms, 0.0);
  EXPECT_GT(result.on_load_ms, 0.0);
  EXPECT_GT(result.speed_index_ms, 0.0);
  // The root document must finish before anything else starts.
  const double root_finish = result.har.entries.front().finished_at_ms();
  for (std::size_t i = 1; i < result.har.entries.size(); ++i)
    EXPECT_GE(result.har.entries[i].started_at_ms, root_finish);
}

TEST_F(LoaderTest, DeterministicGivenSeedAndFreshState) {
  // The environment is stateful (resolver cache, CDN LRU), so
  // determinism holds for equal seeds *and* equal starting state.
  const auto page = web_.site_by_rank(5).page(1);
  const auto run_fresh = [&] {
    cdn::CdnHierarchy cdn(web_.cdn_registry(), latency_);
    net::CachingResolver resolver(
        {"local", 1, 6.0, net::Region::kNorthAmerica, 1.0}, latency_);
    PageLoader loader({&latency_, &web_.cdn_registry(), &cdn, &resolver,
                       net::Region::kNorthAmerica});
    return loader.load(page, util::Rng(42));
  };
  const auto a = run_fresh();
  const auto b = run_fresh();
  EXPECT_DOUBLE_EQ(a.plt_ms, b.plt_ms);
  EXPECT_DOUBLE_EQ(a.on_load_ms, b.on_load_ms);
  EXPECT_EQ(a.handshakes, b.handshakes);
}

TEST_F(LoaderTest, RepeatLoadsBenefitFromSharedCdnState) {
  // Our own first fetch warms the edge LRU; the repeat load hits the
  // CDN cache at least as often (processing jitter makes raw wait-time
  // comparisons noisy, so we compare hits).
  const auto page = web_.site_by_rank(2).page(0);
  const auto first = load(page, 7);
  const auto repeat = load(page, 7);
  EXPECT_GE(repeat.x_cache_hits, first.x_cache_hits);
  EXPECT_LE(repeat.x_cache_misses, first.x_cache_misses);
}

TEST_F(LoaderTest, DnsLookupsBoundedByUniqueHosts) {
  const auto page = web_.site_by_rank(5).page(1);
  LoadOptions options;
  options.use_resource_hints = false;
  const auto result = load(page, 1, options);
  std::set<std::string> hosts;
  for (const auto& o : page.objects) hosts.insert(o.host);
  EXPECT_EQ(static_cast<std::size_t>(result.dns_lookups), hosts.size());
}

TEST_F(LoaderTest, HandshakesAtLeastOnePerHost) {
  const auto page = web_.site_by_rank(5).page(1);
  LoadOptions options;
  options.use_resource_hints = false;
  const auto result = load(page, 1, options);
  std::set<std::string> hosts;
  for (const auto& o : page.objects) hosts.insert(o.host);
  EXPECT_GE(static_cast<std::size_t>(result.handshakes), hosts.size());
  EXPECT_GT(result.handshake_time_ms, 0.0);
}

TEST_F(LoaderTest, DisablingReuseOpensConnectionPerRequest) {
  const auto page = web_.site_by_rank(5).page(1);
  LoadOptions reuse;
  reuse.use_resource_hints = false;
  LoadOptions no_reuse = reuse;
  no_reuse.reuse_connections = false;
  const auto with = load(page, 1, reuse);
  const auto without = load(page, 1, no_reuse);
  EXPECT_GT(without.handshakes, with.handshakes);
  EXPECT_EQ(static_cast<std::size_t>(without.handshakes),
            page.objects.size());
}

TEST_F(LoaderTest, QuicZeroRttEliminatesHandshakeRtts) {
  const auto page = web_.site_by_rank(5).page(1);
  LoadOptions base;
  base.use_resource_hints = false;
  LoadOptions quic = base;
  quic.transport_override = net::TransportProtocol::kQuic0Rtt;
  const auto tls = load(page, 1, base);
  const auto zero_rtt = load(page, 1, quic);
  EXPECT_LT(zero_rtt.handshake_time_ms, tls.handshake_time_ms);
}

TEST_F(LoaderTest, XCacheCountsOnlyFromEmittingProviders) {
  const auto page = web_.site_by_rank(2).page(0);
  const auto result = load(page);
  int with_header = 0;
  for (const auto& entry : result.har.entries)
    with_header += entry.x_cache.has_value();
  EXPECT_EQ(with_header, result.x_cache_hits + result.x_cache_misses);
}

TEST_F(LoaderTest, ColdCdnIncreasesWait) {
  const auto page = web_.site_by_rank(2).page(0);
  const auto run_fresh = [&](bool model_warmth) {
    cdn::CdnHierarchy cdn(web_.cdn_registry(), latency_);
    net::CachingResolver resolver(
        {"local", 1, 6.0, net::Region::kNorthAmerica, 1.0}, latency_);
    PageLoader loader({&latency_, &web_.cdn_registry(), &cdn, &resolver,
                       net::Region::kNorthAmerica});
    LoadOptions options;
    options.model_cdn_warmth = model_warmth;
    return loader.load(page, util::Rng(3), options);
  };
  const auto warm_result = run_fresh(true);
  const auto cold_result = run_fresh(false);
  double warm_wait = 0.0, cold_wait = 0.0;
  for (const auto& e : warm_result.har.entries) warm_wait += e.timings.wait;
  for (const auto& e : cold_result.har.entries) cold_wait += e.timings.wait;
  EXPECT_GT(cold_wait, warm_wait);
}

TEST_F(LoaderTest, EmptyPageRejected) {
  web::WebPage page;
  EXPECT_THROW(load(page), std::invalid_argument);
}

TEST_F(LoaderTest, IncompleteEnvironmentRejected) {
  EXPECT_THROW(PageLoader({nullptr, nullptr, nullptr, nullptr,
                           net::Region::kNorthAmerica}),
               std::invalid_argument);
}

TEST_F(LoaderTest, MixedContentSurvivesIntoHar) {
  // Find a page with an HTTP subresource on an HTTPS document.
  for (std::size_t rank = 1; rank <= 120; ++rank) {
    for (std::size_t index = 0; index <= 3; ++index) {
      const auto page = web_.site_by_rank(rank).page(index);
      if (!page.has_mixed_content()) continue;
      const auto result = load(page);
      EXPECT_TRUE(result.har.has_mixed_content());
      return;
    }
  }
  GTEST_SKIP() << "no mixed-content page in the small universe";
}

}  // namespace
