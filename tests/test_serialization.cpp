#include "core/serialization.h"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace hispar::core;

HisparList sample_list() {
  HisparList list;
  list.name = "sample";
  list.week = 3;
  list.sets.push_back({"alpha.com",
                       1,
                       {"https://www.alpha.com/", "https://www.alpha.com/news/item-4",
                        "https://www.alpha.com/docs/item-9"},
                       {0, 4, 9}});
  list.sets.push_back({"beta.org",
                       5,
                       {"http://www.beta.org/", "https://www.beta.org/posts/item-2"},
                       {0, 2}});
  return list;
}

TEST(SerializationTest, CsvRoundTripIsExact) {
  const HisparList original = sample_list();
  const HisparList loaded = from_csv(to_csv(original), "sample");
  ASSERT_EQ(loaded.sets.size(), original.sets.size());
  for (std::size_t s = 0; s < original.sets.size(); ++s) {
    EXPECT_EQ(loaded.sets[s].domain, original.sets[s].domain);
    EXPECT_EQ(loaded.sets[s].bootstrap_rank, original.sets[s].bootstrap_rank);
    EXPECT_EQ(loaded.sets[s].urls, original.sets[s].urls);
    EXPECT_EQ(loaded.sets[s].page_indices, original.sets[s].page_indices);
  }
}

TEST(SerializationTest, CsvHasOneRowPerUrl) {
  const std::string csv = to_csv(sample_list());
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            1u + sample_list().total_urls());
  EXPECT_NE(csv.find("alpha.com,1,landing,0,https://www.alpha.com/"),
            std::string::npos);
  EXPECT_NE(csv.find("beta.org,5,internal,2,"), std::string::npos);
}

TEST(SerializationTest, RejectsBadHeader) {
  std::istringstream in("nope\n");
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(SerializationTest, RejectsWrongFieldCount) {
  EXPECT_THROW(
      from_csv("domain,bootstrap_rank,kind,page_index,url\na,b,c\n"),
      std::runtime_error);
}

TEST(SerializationTest, RejectsOrphanInternalUrl) {
  EXPECT_THROW(
      from_csv("domain,bootstrap_rank,kind,page_index,url\n"
               "a.com,1,internal,3,https://a.com/x\n"),
      std::runtime_error);
}

TEST(SerializationTest, RejectsBadRankOrKindOrUrl) {
  const std::string header = "domain,bootstrap_rank,kind,page_index,url\n";
  EXPECT_THROW(from_csv(header + "a.com,xx,landing,0,https://a.com/\n"),
               std::runtime_error);
  EXPECT_THROW(from_csv(header + "a.com,1,weird,0,https://a.com/\n"),
               std::runtime_error);
  EXPECT_THROW(from_csv(header + "a.com,1,landing,0,not-a-url\n"),
               std::runtime_error);
}

TEST(SerializationTest, SkipsEmptyLines) {
  const HisparList loaded =
      from_csv("domain,bootstrap_rank,kind,page_index,url\n\n"
               "a.com,1,landing,0,https://a.com/\n\n");
  EXPECT_EQ(loaded.sets.size(), 1u);
}

TEST(SerializationTest, RejectsBadPageIndex) {
  EXPECT_THROW(
      from_csv("domain,bootstrap_rank,kind,page_index,url\n"
               "a.com,1,landing,xx,https://a.com/\n"),
      std::runtime_error);
  EXPECT_THROW(
      from_csv("domain,bootstrap_rank,kind,page_index,url\n"
               "a.com,1,landing,,https://a.com/\n"),
      std::runtime_error);
}

TEST(SerializationTest, TruncatedFileDetected) {
  // A download cut off mid-row must not silently yield a shorter list.
  const std::string csv = to_csv(sample_list());
  // Cut inside the final row's URL scheme: unparsable URL.
  EXPECT_THROW(from_csv(csv.substr(0, csv.rfind("https") + 2)),
               std::runtime_error);
  // Cut before the URL field entirely: wrong field count.
  const auto last_row = csv.rfind("beta.org,5,internal");
  EXPECT_THROW(from_csv(csv.substr(0, last_row + 14)), std::runtime_error);
  // A file cut inside the header is a bad header.
  EXPECT_THROW(from_csv(csv.substr(0, 10)), std::runtime_error);
}

TEST(SerializationTest, JsonContainsStructure) {
  const std::string json = to_json(sample_list());
  EXPECT_NE(json.find("\"name\":\"sample\""), std::string::npos);
  EXPECT_NE(json.find("\"week\":3"), std::string::npos);
  EXPECT_NE(json.find("\"domain\":\"alpha.com\""), std::string::npos);
  EXPECT_NE(json.find("https://www.alpha.com/news/item-4"),
            std::string::npos);
}

TEST(SerializationTest, FileRoundTrip) {
  const std::string path = "/tmp/hispar_serialization_test.csv";
  save_csv(sample_list(), path);
  const HisparList loaded = load_csv(path);
  EXPECT_EQ(loaded.sets.size(), 2u);
  EXPECT_EQ(loaded.total_urls(), sample_list().total_urls());
  EXPECT_THROW(load_csv("/nonexistent/dir/x.csv"), std::runtime_error);
}

// --- Campaign checkpoints ---

SiteObservation sample_observation() {
  SiteObservation site;
  site.domain = "alpha.com";
  site.bootstrap_rank = 7;
  site.category = hispar::web::SiteCategory::kShopping;
  site.total_retries = 3;
  site.landing.bytes = 123456.75;
  site.landing.plt_ms = 0.1 + 0.2;  // not exactly representable
  site.landing.mix_fractions[2] = 1.0 / 3.0;
  site.landing.depth_counts[1] = 17.0;
  site.landing.is_http = true;
  site.landing.header_bidding = true;
  site.landing.third_parties = {"cdn.tracker.net", "ads.example"};
  site.landing.wait_samples_ms = {1.25, 9.5, 1e-17};
  PageMetrics internal;
  internal.bytes = 99.0;
  internal.mixed_content = true;
  site.internals.push_back(internal);
  site.outcomes.push_back({0, 1, 2, hispar::browser::LoadStatus::kDegraded,
                           hispar::net::FaultKind::kHttp5xx, 1});
  site.outcomes.push_back({4, 0, 1, hispar::browser::LoadStatus::kOk,
                           hispar::net::FaultKind::kNone, 0});
  return site;
}

std::string checkpoint_with(const std::vector<std::size_t>& positions,
                            const std::vector<SiteObservation>& observations,
                            std::uint64_t digest = 42) {
  std::ostringstream os;
  write_checkpoint_header(os, digest);
  append_checkpoint_shard(os, 0, positions, observations);
  return os.str();
}

TEST(CheckpointTest, RoundTripIsExact) {
  std::vector<SiteObservation> observations(3);
  observations[1] = sample_observation();
  SiteObservation quarantined;
  quarantined.domain = "dead.example";
  quarantined.quarantined = true;
  quarantined.outcomes.push_back({0, 0, 3,
                                  hispar::browser::LoadStatus::kFailed,
                                  hispar::net::FaultKind::kDnsTimeout, 1});
  observations[2] = quarantined;

  std::istringstream in(checkpoint_with({1, 2}, observations));
  const CampaignCheckpoint checkpoint = read_checkpoint(in);
  EXPECT_EQ(checkpoint.config_digest, 42u);
  ASSERT_EQ(checkpoint.completed_shards.size(), 1u);
  EXPECT_EQ(checkpoint.completed_shards[0], 0u);
  ASSERT_EQ(checkpoint.observations.size(), 2u);

  const auto& [position, loaded] = checkpoint.observations[0];
  const SiteObservation& original = observations[1];
  EXPECT_EQ(position, 1u);
  EXPECT_EQ(loaded.domain, original.domain);
  EXPECT_EQ(loaded.bootstrap_rank, original.bootstrap_rank);
  EXPECT_EQ(loaded.category, original.category);
  EXPECT_EQ(loaded.total_retries, original.total_retries);
  EXPECT_FALSE(loaded.quarantined);
  EXPECT_EQ(loaded.outcomes, original.outcomes);
  EXPECT_EQ(loaded.landing.bytes, original.landing.bytes);
  EXPECT_EQ(loaded.landing.plt_ms, original.landing.plt_ms);  // exact
  EXPECT_EQ(loaded.landing.mix_fractions, original.landing.mix_fractions);
  EXPECT_EQ(loaded.landing.depth_counts, original.landing.depth_counts);
  EXPECT_EQ(loaded.landing.is_http, original.landing.is_http);
  EXPECT_EQ(loaded.landing.header_bidding, original.landing.header_bidding);
  EXPECT_EQ(loaded.landing.third_parties, original.landing.third_parties);
  EXPECT_EQ(loaded.landing.wait_samples_ms,
            original.landing.wait_samples_ms);
  ASSERT_EQ(loaded.internals.size(), 1u);
  EXPECT_EQ(loaded.internals[0].bytes, 99.0);
  EXPECT_TRUE(loaded.internals[0].mixed_content);

  const auto& [dead_position, dead] = checkpoint.observations[1];
  EXPECT_EQ(dead_position, 2u);
  EXPECT_TRUE(dead.quarantined);
  EXPECT_EQ(dead.outcomes, quarantined.outcomes);
}

TEST(CheckpointTest, RejectsBadHeader) {
  std::istringstream empty("");
  EXPECT_THROW(read_checkpoint(empty), std::runtime_error);
  std::istringstream wrong("hispar csv header\n");
  EXPECT_THROW(read_checkpoint(wrong), std::runtime_error);
  std::istringstream version("hispar-checkpoint,v9,1\n");
  EXPECT_THROW(read_checkpoint(version), std::runtime_error);
  std::istringstream digest("hispar-checkpoint,v1,notanumber\n");
  EXPECT_THROW(read_checkpoint(digest), std::runtime_error);
}

TEST(CheckpointTest, DiscardsTornTrailingBlockOnly) {
  std::vector<SiteObservation> observations(2);
  observations[0] = sample_observation();
  const std::string complete = checkpoint_with({0}, observations);
  // A kill tore the next block mid-record: the complete block survives.
  std::istringstream in(complete + "shard,1,2\nsite,1,torn.example,9");
  const CampaignCheckpoint checkpoint = read_checkpoint(in);
  ASSERT_EQ(checkpoint.completed_shards.size(), 1u);
  EXPECT_EQ(checkpoint.observations.size(), 1u);
}

TEST(CheckpointTest, RejectsMalformedCompleteRecords) {
  std::vector<SiteObservation> observations(1);
  observations[0] = sample_observation();
  const std::string good = checkpoint_with({0}, observations);

  // Corrupting any complete (endshard-terminated) record must throw,
  // never silently drop data.
  const auto corrupt = [&](const std::string& from, const std::string& to) {
    std::string bad = good;
    const auto at = bad.find(from);
    ASSERT_NE(at, std::string::npos) << from;
    bad.replace(at, from.size(), to);
    std::istringstream in(bad);
    EXPECT_THROW(read_checkpoint(in), std::runtime_error) << from;
  };
  corrupt("site,0,", "site,zero,");         // bad position
  corrupt("metrics,", "measured,");         // unknown record type
  corrupt("outcome,0,1,2,1,", "outcome,0,1,2,9,");  // status out of range
  corrupt("outcome,4,0,1,0,0,0", "outcome,4,0,1,0,250,0");  // bad kind
  // A site claiming more internals than are present overruns into the
  // endshard line.
  {
    std::string bad = good;
    const auto at = bad.find(",1,2,1\n");  // n_internals,n_outcomes,landing
    ASSERT_NE(at, std::string::npos);
    bad.replace(at, 7, ",6,2,1\n");
    std::istringstream in(bad);
    EXPECT_THROW(read_checkpoint(in), std::runtime_error);
  }
}

}  // namespace
