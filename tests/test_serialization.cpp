#include "core/serialization.h"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace hispar::core;

HisparList sample_list() {
  HisparList list;
  list.name = "sample";
  list.week = 3;
  list.sets.push_back({"alpha.com",
                       1,
                       {"https://www.alpha.com/", "https://www.alpha.com/news/item-4",
                        "https://www.alpha.com/docs/item-9"},
                       {0, 4, 9}});
  list.sets.push_back({"beta.org",
                       5,
                       {"http://www.beta.org/", "https://www.beta.org/posts/item-2"},
                       {0, 2}});
  return list;
}

TEST(SerializationTest, CsvRoundTripIsExact) {
  const HisparList original = sample_list();
  const HisparList loaded = from_csv(to_csv(original), "sample");
  ASSERT_EQ(loaded.sets.size(), original.sets.size());
  for (std::size_t s = 0; s < original.sets.size(); ++s) {
    EXPECT_EQ(loaded.sets[s].domain, original.sets[s].domain);
    EXPECT_EQ(loaded.sets[s].bootstrap_rank, original.sets[s].bootstrap_rank);
    EXPECT_EQ(loaded.sets[s].urls, original.sets[s].urls);
    EXPECT_EQ(loaded.sets[s].page_indices, original.sets[s].page_indices);
  }
}

TEST(SerializationTest, CsvHasOneRowPerUrl) {
  const std::string csv = to_csv(sample_list());
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            1u + sample_list().total_urls());
  EXPECT_NE(csv.find("alpha.com,1,landing,0,https://www.alpha.com/"),
            std::string::npos);
  EXPECT_NE(csv.find("beta.org,5,internal,2,"), std::string::npos);
}

TEST(SerializationTest, RejectsBadHeader) {
  std::istringstream in("nope\n");
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(SerializationTest, RejectsWrongFieldCount) {
  EXPECT_THROW(
      from_csv("domain,bootstrap_rank,kind,page_index,url\na,b,c\n"),
      std::runtime_error);
}

TEST(SerializationTest, RejectsOrphanInternalUrl) {
  EXPECT_THROW(
      from_csv("domain,bootstrap_rank,kind,page_index,url\n"
               "a.com,1,internal,3,https://a.com/x\n"),
      std::runtime_error);
}

TEST(SerializationTest, RejectsBadRankOrKindOrUrl) {
  const std::string header = "domain,bootstrap_rank,kind,page_index,url\n";
  EXPECT_THROW(from_csv(header + "a.com,xx,landing,0,https://a.com/\n"),
               std::runtime_error);
  EXPECT_THROW(from_csv(header + "a.com,1,weird,0,https://a.com/\n"),
               std::runtime_error);
  EXPECT_THROW(from_csv(header + "a.com,1,landing,0,not-a-url\n"),
               std::runtime_error);
}

TEST(SerializationTest, SkipsEmptyLines) {
  const HisparList loaded =
      from_csv("domain,bootstrap_rank,kind,page_index,url\n\n"
               "a.com,1,landing,0,https://a.com/\n\n");
  EXPECT_EQ(loaded.sets.size(), 1u);
}

TEST(SerializationTest, JsonContainsStructure) {
  const std::string json = to_json(sample_list());
  EXPECT_NE(json.find("\"name\":\"sample\""), std::string::npos);
  EXPECT_NE(json.find("\"week\":3"), std::string::npos);
  EXPECT_NE(json.find("\"domain\":\"alpha.com\""), std::string::npos);
  EXPECT_NE(json.find("https://www.alpha.com/news/item-4"),
            std::string::npos);
}

TEST(SerializationTest, FileRoundTrip) {
  const std::string path = "/tmp/hispar_serialization_test.csv";
  save_csv(sample_list(), path);
  const HisparList loaded = load_csv(path);
  EXPECT_EQ(loaded.sets.size(), 2u);
  EXPECT_EQ(loaded.total_urls(), sample_list().total_urls());
  EXPECT_THROW(load_csv("/nonexistent/dir/x.csv"), std::runtime_error);
}

}  // namespace
