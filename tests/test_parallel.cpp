#include "core/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "core/measurement.h"

namespace {

using namespace hispar;
using core::CampaignConfig;
using core::MeasurementCampaign;
using core::PageMetrics;
using core::SiteObservation;

// Field-exact equality: the parallel runner promises bit-identical
// observations, so every comparison is == on doubles, not NEAR.
void expect_metrics_equal(const PageMetrics& a, const PageMetrics& b) {
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.objects, b.objects);
  EXPECT_EQ(a.plt_ms, b.plt_ms);
  EXPECT_EQ(a.on_load_ms, b.on_load_ms);
  EXPECT_EQ(a.speed_index_ms, b.speed_index_ms);
  EXPECT_EQ(a.noncacheable_objects, b.noncacheable_objects);
  EXPECT_EQ(a.cacheable_bytes_fraction, b.cacheable_bytes_fraction);
  EXPECT_EQ(a.cdn_bytes_fraction, b.cdn_bytes_fraction);
  EXPECT_EQ(a.x_cache_hits, b.x_cache_hits);
  EXPECT_EQ(a.x_cache_misses, b.x_cache_misses);
  EXPECT_EQ(a.mix_fractions, b.mix_fractions);
  EXPECT_EQ(a.depth_counts, b.depth_counts);
  EXPECT_EQ(a.unique_domains, b.unique_domains);
  EXPECT_EQ(a.hints_total, b.hints_total);
  EXPECT_EQ(a.handshakes, b.handshakes);
  EXPECT_EQ(a.handshake_time_ms, b.handshake_time_ms);
  EXPECT_EQ(a.dns_lookups, b.dns_lookups);
  EXPECT_EQ(a.dns_time_ms, b.dns_time_ms);
  EXPECT_EQ(a.is_http, b.is_http);
  EXPECT_EQ(a.mixed_content, b.mixed_content);
  EXPECT_EQ(a.tracking_requests, b.tracking_requests);
  EXPECT_EQ(a.header_bidding, b.header_bidding);
  EXPECT_EQ(a.hb_ad_slots, b.hb_ad_slots);
  EXPECT_EQ(a.third_parties, b.third_parties);
  EXPECT_EQ(a.wait_samples_ms, b.wait_samples_ms);
}

void expect_observations_equal(const std::vector<SiteObservation>& a,
                               const std::vector<SiteObservation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].domain, b[i].domain);
    EXPECT_EQ(a[i].bootstrap_rank, b[i].bootstrap_rank);
    EXPECT_EQ(a[i].category, b[i].category);
    expect_metrics_equal(a[i].landing, b[i].landing);
    ASSERT_EQ(a[i].internals.size(), b[i].internals.size());
    for (std::size_t j = 0; j < a[i].internals.size(); ++j)
      expect_metrics_equal(a[i].internals[j], b[i].internals[j]);
    // Failure accounting is part of the determinism contract too: the
    // same fetch must fail the same way at any job count.
    EXPECT_EQ(a[i].outcomes, b[i].outcomes);
    EXPECT_EQ(a[i].total_retries, b[i].total_retries);
    EXPECT_EQ(a[i].quarantined, b[i].quarantined);
  }
}

TEST(ShardOf, StableAndInRange) {
  for (std::size_t shards : {1u, 2u, 7u, 16u}) {
    EXPECT_LT(core::shard_of("example.com", shards), shards);
    // Deterministic: the same domain always lands on the same shard.
    EXPECT_EQ(core::shard_of("example.com", shards),
              core::shard_of("example.com", shards));
  }
  EXPECT_EQ(core::shard_of("anything.net", 1), 0u);
}

TEST(ShardIndices, PartitionPreservesOrder) {
  core::HisparList list;
  for (int i = 0; i < 50; ++i) {
    core::UrlSet set;
    set.domain = "site-" + std::to_string(i) + ".com";
    list.sets.push_back(set);
  }
  const auto shards = core::shard_indices(list, 8);
  ASSERT_EQ(shards.size(), 8u);
  std::vector<bool> seen(list.sets.size(), false);
  for (const auto& shard : shards) {
    for (std::size_t k = 0; k < shard.size(); ++k) {
      ASSERT_LT(shard[k], list.sets.size());
      EXPECT_FALSE(seen[shard[k]]);  // disjoint
      seen[shard[k]] = true;
      if (k > 0) {
        EXPECT_LT(shard[k - 1], shard[k]);  // list order kept
      }
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);  // exhaustive
}

TEST(ForEachShard, RunsEveryShardOnceAtAnyJobCount) {
  for (std::size_t jobs : {0u, 1u, 3u, 16u}) {
    std::vector<std::atomic<int>> counts(11);
    core::for_each_shard(counts.size(), jobs,
                         [&](std::size_t shard) { ++counts[shard]; });
    for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
  }
}

TEST(ForEachShard, RethrowsLowestShardError) {
  try {
    core::for_each_shard(8, 4, [](std::size_t shard) {
      if (shard % 2 == 1)
        throw std::runtime_error("shard " + std::to_string(shard));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "shard 1");
  }
}

class ParallelCampaignTest : public ::testing::Test {
 protected:
  ParallelCampaignTest()
      : web_({300, 7, 300, false}), toplists_(web_), engine_(web_) {}

  core::HisparList build_list(std::size_t sites) {
    core::HisparBuilder builder(web_, toplists_, engine_);
    core::HisparConfig config;
    config.target_sites = sites;
    config.urls_per_site = 6;
    config.min_internal_results = 3;
    return builder.build(config, 0);
  }

  std::vector<SiteObservation> run_with_jobs(const core::HisparList& list,
                                             std::size_t jobs) {
    CampaignConfig config;
    config.landing_loads = 3;
    config.jobs = jobs;
    MeasurementCampaign campaign(web_, config);
    return campaign.run(list);
  }

  web::SyntheticWeb web_;
  toplist::TopListFactory toplists_;
  search::SearchEngine engine_;
};

TEST_F(ParallelCampaignTest, JobsDoNotChangeObservations) {
  // The acceptance bar for the sharded runner: a 60-site campaign yields
  // bit-identical SiteObservation vectors for jobs = 1, 2, 4 and 8.
  const auto list = build_list(60);
  ASSERT_GE(list.sets.size(), 50u);
  const auto serial = run_with_jobs(list, 1);
  for (std::size_t jobs : {2u, 4u, 8u})
    expect_observations_equal(serial, run_with_jobs(list, jobs));
}

TEST_F(ParallelCampaignTest, JobsDoNotChangeObservationsUnderFaults) {
  // Fault decisions are keyed by (seed, shard, domain, page, ordinal,
  // attempt), never by thread scheduling, so the bit-identical-for-any
  // --jobs guarantee must survive a lossy substrate — including which
  // loads failed, how often they were retried, and who got quarantined.
  const auto list = build_list(60);
  const auto run_faulty = [&](std::size_t jobs) {
    CampaignConfig config;
    config.landing_loads = 3;
    config.jobs = jobs;
    config.fault_profile = net::FaultProfile::uniform(0.04);
    // Retries shrug off low uniform rates (a root load only fails after
    // every loader AND campaign attempt fails), so strike DNS hard
    // enough that some sites genuinely fail and get quarantined.
    config.fault_profile.dns_timeout = 0.7;
    MeasurementCampaign campaign(web_, config);
    return campaign.run(list);
  };
  const auto serial = run_faulty(1);
  std::uint64_t failed = 0;
  for (const auto& site : serial)
    for (const auto& outcome : site.outcomes)
      failed += outcome.status == browser::LoadStatus::kFailed;
  EXPECT_GT(failed, 0u) << "fault rate too low to exercise the machinery";
  for (std::size_t jobs : {4u, 8u})
    expect_observations_equal(serial, run_faulty(jobs));
}

TEST_F(ParallelCampaignTest, HardwareJobsMatchSerial) {
  const auto list = build_list(20);
  expect_observations_equal(run_with_jobs(list, 1),
                            run_with_jobs(list, 0));  // 0 = all cores
}

TEST_F(ParallelCampaignTest, ShardCountDoesAffectObservations) {
  // Cache warmth is per shard (one shard = one vantage point), so the
  // shard count — unlike the job count — is part of the experiment
  // definition. Guard against silently coupling shards again.
  const auto list = build_list(40);
  CampaignConfig config;
  config.landing_loads = 2;
  config.shards = 1;
  MeasurementCampaign one(web_, config);
  config.shards = 8;
  MeasurementCampaign eight(web_, config);
  const auto a = one.run(list);
  const auto b = eight.run(list);
  ASSERT_EQ(a.size(), b.size());
  double delta = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    delta += std::abs(a[i].landing.dns_time_ms - b[i].landing.dns_time_ms) +
             std::abs(a[i].landing.plt_ms - b[i].landing.plt_ms);
  EXPECT_GT(delta, 0.0);
}

TEST_F(ParallelCampaignTest, UnknownDomainThrowsFromWorkers) {
  auto list = build_list(20);
  list.sets[7].domain = "churned-away.example";
  CampaignConfig config;
  config.landing_loads = 2;
  config.jobs = 4;
  MeasurementCampaign campaign(web_, config);
  EXPECT_THROW(campaign.run(list), std::logic_error);
}

}  // namespace
