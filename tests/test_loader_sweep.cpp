// Parameterized loader sweep: HAR/timing invariants must hold across
// transports and page kinds.
#include <gtest/gtest.h>

#include "browser/loader.h"
#include "web/generator.h"

namespace {

using namespace hispar;

struct LoadCase {
  std::size_t rank;
  std::size_t page_index;
  std::optional<net::TransportProtocol> transport;
  const char* name;
};

class LoaderSweep : public ::testing::TestWithParam<LoadCase> {
 protected:
  static const web::SyntheticWeb& web() {
    static web::SyntheticWeb instance({300, 55, 300, false});
    return instance;
  }

  browser::LoadResult run(const web::WebPage& page,
                          std::optional<net::TransportProtocol> transport) {
    net::LatencyModel latency;
    cdn::CdnHierarchy cdn(web().cdn_registry(), latency);
    net::CachingResolver resolver({}, latency);
    browser::PageLoader loader({&latency, &web().cdn_registry(), &cdn,
                                &resolver, net::Region::kNorthAmerica});
    browser::LoadOptions options;
    options.transport_override = transport;
    return loader.load(page, util::Rng(17), options);
  }
};

TEST_P(LoaderSweep, EntryTimingsConsistent) {
  const auto& param = GetParam();
  const auto page = web().site_by_rank(param.rank).page(param.page_index);
  const auto result = run(page, param.transport);
  ASSERT_EQ(result.har.entries.size(), page.objects.size());
  for (const auto& entry : result.har.entries) {
    EXPECT_GE(entry.timings.total(), 0.0);
    EXPECT_NEAR(entry.finished_at_ms(),
                entry.started_at_ms + entry.timings.total(), 1e-6);
    EXPECT_GT(entry.timings.wait, 0.0);
  }
}

TEST_P(LoaderSweep, OnLoadIsTheLastFinish) {
  const auto& param = GetParam();
  const auto page = web().site_by_rank(param.rank).page(param.page_index);
  const auto result = run(page, param.transport);
  double last = 0.0;
  for (const auto& entry : result.har.entries)
    last = std::max(last, entry.finished_at_ms());
  EXPECT_NEAR(result.on_load_ms, last, 1e-6);
  EXPECT_GT(result.plt_ms, result.har.entries.front().finished_at_ms());
}

TEST_P(LoaderSweep, HandshakeAccountingConsistent) {
  const auto& param = GetParam();
  const auto page = web().site_by_rank(param.rank).page(param.page_index);
  const auto result = run(page, param.transport);
  EXPECT_GE(result.handshakes, 1);
  EXPECT_GE(result.handshake_time_ms, 0.0);
  EXPECT_LE(static_cast<std::size_t>(result.handshakes),
            page.objects.size() + static_cast<std::size_t>(
                                      page.hints.preconnect));
  if (param.transport == net::TransportProtocol::kQuic0Rtt) {
    // 0-RTT handshakes have no network round trips, only crypto CPU.
    EXPECT_LT(result.handshake_time_ms, 3.0 * result.handshakes);
  }
}

TEST_P(LoaderSweep, DnsAccountingConsistent) {
  const auto& param = GetParam();
  const auto page = web().site_by_rank(param.rank).page(param.page_index);
  const auto result = run(page, param.transport);
  std::set<std::string> hosts;
  for (const auto& o : page.objects) hosts.insert(o.host);
  EXPECT_LE(static_cast<std::size_t>(result.dns_lookups), hosts.size());
  EXPECT_GE(result.dns_time_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    TransportsAndPages, LoaderSweep,
    ::testing::Values(
        LoadCase{3, 0, std::nullopt, "default_landing"},
        LoadCase{3, 4, std::nullopt, "default_internal"},
        LoadCase{40, 0, net::TransportProtocol::kTcpTls12, "tls12"},
        LoadCase{40, 2, net::TransportProtocol::kTcpTls13, "tls13"},
        LoadCase{90, 0, net::TransportProtocol::kTfoTls13, "tfo"},
        LoadCase{90, 1, net::TransportProtocol::kQuic, "quic"},
        LoadCase{150, 0, net::TransportProtocol::kQuic0Rtt, "quic0rtt"},
        LoadCase{290, 5, std::nullopt, "deep_rank"}),
    [](const ::testing::TestParamInfo<LoadCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
