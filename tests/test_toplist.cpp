#include <gtest/gtest.h>

#include "toplist/providers.h"
#include "toplist/toplist.h"
#include "web/generator.h"

namespace {

using namespace hispar;
using toplist::Provider;
using toplist::TopList;
using toplist::TopListFactory;

TEST(TopListTest, RankLookup) {
  const TopList list("test", {"a.com", "b.com", "c.com"});
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.domain_at(1), "a.com");
  EXPECT_EQ(list.rank_of("c.com").value(), 3u);
  EXPECT_FALSE(list.rank_of("x.com").has_value());
  EXPECT_TRUE(list.contains("b.com"));
  EXPECT_THROW(list.domain_at(0), std::out_of_range);
  EXPECT_THROW(list.domain_at(4), std::out_of_range);
}

TEST(TopListTest, DuplicateDomainsRejected) {
  EXPECT_THROW(TopList("bad", {"a.com", "a.com"}), std::invalid_argument);
}

TEST(TopListTest, TopSlices) {
  const TopList list("test", {"a.com", "b.com", "c.com"});
  const TopList head = list.top(2);
  EXPECT_EQ(head.size(), 2u);
  EXPECT_EQ(head.domain_at(2), "b.com");
  EXPECT_EQ(list.top(10).size(), 3u);  // clamps
}

TEST(TopListTest, TurnoverMath) {
  const TopList before("a", {"1", "2", "3", "4"});
  const TopList after("b", {"1", "2", "9", "8"});
  EXPECT_DOUBLE_EQ(toplist::turnover(before, after), 0.5);
  EXPECT_DOUBLE_EQ(toplist::turnover(before, before), 0.0);
}

TEST(TopListTest, JaccardOverlap) {
  const TopList a("a", {"1", "2", "3"});
  const TopList b("b", {"2", "3", "4"});
  EXPECT_DOUBLE_EQ(toplist::jaccard_overlap(a, b), 0.5);  // 2 of 4
  EXPECT_DOUBLE_EQ(toplist::jaccard_overlap(a, a), 1.0);
}

class ProvidersTest : public ::testing::Test {
 protected:
  ProvidersTest() : web_({200, 23, 100, false}), factory_(web_) {}
  web::SyntheticWeb web_;
  TopListFactory factory_;
};

TEST_F(ProvidersTest, ListsHaveRequestedSize) {
  for (Provider p : {Provider::kAlexa, Provider::kUmbrella,
                     Provider::kMajestic, Provider::kQuantcast}) {
    const TopList list = factory_.weekly_list(p, 0, 50);
    EXPECT_EQ(list.size(), 50u) << toplist::provider_name(p);
  }
}

TEST_F(ProvidersTest, SizeClampsToUniverse) {
  EXPECT_EQ(factory_.weekly_list(Provider::kAlexa, 0, 10000).size(),
            web_.site_count());
}

TEST_F(ProvidersTest, SameDayListsAreIdentical) {
  const TopList a = factory_.list_on_day(Provider::kAlexa, 3, 100);
  const TopList b = factory_.list_on_day(Provider::kAlexa, 3, 100);
  EXPECT_EQ(a.domains(), b.domains());
}

TEST_F(ProvidersTest, ListsEvolveOverTime) {
  const TopList day0 = factory_.list_on_day(Provider::kAlexa, 0, 100);
  const TopList day30 = factory_.list_on_day(Provider::kAlexa, 30, 100);
  EXPECT_GT(toplist::turnover(day0, day30), 0.0);
}

TEST_F(ProvidersTest, ChurnGrowsWithTimeGap) {
  const TopList day0 = factory_.list_on_day(Provider::kAlexa, 0, 120);
  const double one_day =
      toplist::turnover(day0, factory_.list_on_day(Provider::kAlexa, 1, 120));
  const double month =
      toplist::turnover(day0, factory_.list_on_day(Provider::kAlexa, 30, 120));
  EXPECT_LE(one_day, month + 1e-12);
}

TEST_F(ProvidersTest, MajesticIsMoreStableThanAlexa) {
  // §3: Majestic measures link structure, "more a measure of quality
  // than traffic" — it barely moves.
  const double alexa = toplist::turnover(
      factory_.weekly_list(Provider::kAlexa, 0, 120),
      factory_.weekly_list(Provider::kAlexa, 1, 120));
  const double majestic = toplist::turnover(
      factory_.weekly_list(Provider::kMajestic, 0, 120),
      factory_.weekly_list(Provider::kMajestic, 1, 120));
  EXPECT_LT(majestic, alexa);
}

TEST_F(ProvidersTest, TrancoIsMoreStableThanAlexa) {
  // Tranco averages 30 days of component lists (Pochat et al.).
  const double alexa = toplist::turnover(
      factory_.weekly_list(Provider::kAlexa, 5, 100),
      factory_.weekly_list(Provider::kAlexa, 6, 100));
  const double tranco = toplist::turnover(
      factory_.weekly_list(Provider::kTranco, 5, 100),
      factory_.weekly_list(Provider::kTranco, 6, 100));
  EXPECT_LT(tranco, alexa);
}

TEST_F(ProvidersTest, ProvidersDisagreeOnRanking) {
  // §3/Scheitle et al.: the lists overlap only partially.
  const TopList alexa = factory_.weekly_list(Provider::kAlexa, 0, 80);
  const TopList umbrella = factory_.weekly_list(Provider::kUmbrella, 0, 80);
  const TopList majestic = factory_.weekly_list(Provider::kMajestic, 0, 80);
  EXPECT_LT(toplist::jaccard_overlap(alexa, umbrella), 1.0);
  EXPECT_LT(toplist::jaccard_overlap(alexa, majestic), 1.0);
  EXPECT_GT(toplist::jaccard_overlap(alexa, umbrella), 0.2);
}

TEST_F(ProvidersTest, HeadIsRoughlyTrueRanking) {
  // Measurement noise should not hide the true top sites entirely.
  const TopList alexa = factory_.weekly_list(Provider::kAlexa, 0, 30);
  int true_head = 0;
  for (const auto& domain : alexa.domains()) {
    const auto* site = web_.find_site(domain);
    ASSERT_NE(site, nullptr);
    true_head += site->profile().rank <= 60;
  }
  EXPECT_GT(true_head, 20);
}

}  // namespace
