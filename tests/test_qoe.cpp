#include "browser/qoe.h"

#include <gtest/gtest.h>

#include "web/generator.h"

namespace {

using namespace hispar;

class QoeTest : public ::testing::Test {
 protected:
  QoeTest()
      : web_({120, 29, 150, false}),
        latency_(),
        cdn_(web_.cdn_registry(), latency_),
        resolver_({}, latency_),
        loader_({&latency_, &web_.cdn_registry(), &cdn_, &resolver_,
                 net::Region::kNorthAmerica}) {}

  web::SyntheticWeb web_;
  net::LatencyModel latency_;
  cdn::CdnHierarchy cdn_;
  net::CachingResolver resolver_;
  browser::PageLoader loader_;
};

TEST_F(QoeTest, MetricsAreOrdered) {
  const auto page = web_.site_by_rank(3).page(0);
  const auto result = loader_.load(page, util::Rng(1));
  const auto qoe = browser::qoe_metrics(page, result);
  EXPECT_DOUBLE_EQ(qoe.first_paint_ms, result.plt_ms);
  EXPECT_GE(qoe.visual_complete_90_ms, qoe.first_paint_ms);
  EXPECT_GE(qoe.visual_complete_ms, qoe.visual_complete_90_ms);
  EXPECT_GT(qoe.time_to_interactive_ms, qoe.first_paint_ms);
}

TEST_F(QoeTest, VisualCompleteWithinOnLoadNeighborhood) {
  const auto page = web_.site_by_rank(7).page(1);
  const auto result = loader_.load(page, util::Rng(2));
  const auto qoe = browser::qoe_metrics(page, result);
  EXPECT_LE(qoe.visual_complete_ms, result.on_load_ms + 1.0);
}

TEST_F(QoeTest, JsHeavyPagesInteractLater) {
  // TTI grows with JavaScript bytes beyond first paint.
  const auto page = web_.site_by_rank(5).page(1);
  const auto result = loader_.load(page, util::Rng(3));
  const auto qoe = browser::qoe_metrics(page, result);
  double js_bytes = 0.0;
  for (const auto& o : page.objects)
    if (o.mime == web::MimeCategory::kJavaScript) js_bytes += o.size_bytes;
  EXPECT_NEAR(qoe.time_to_interactive_ms - qoe.first_paint_ms,
              js_bytes * 2.5e-4 +
                  3.0 * static_cast<double>(std::count_if(
                            page.objects.begin(), page.objects.end(),
                            [](const web::WebObject& o) {
                              return o.mime ==
                                     web::MimeCategory::kJavaScript;
                            })),
              1.0);
}

TEST_F(QoeTest, MismatchedInputsRejected) {
  const auto page_a = web_.site_by_rank(3).page(1);
  const auto page_b = web_.site_by_rank(3).page(2);
  const auto result = loader_.load(page_a, util::Rng(1));
  EXPECT_THROW(browser::qoe_metrics(page_b, result), std::invalid_argument);
}

}  // namespace
