#include "net/faults.h"

#include <array>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/strings.h"

namespace hispar::net {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDnsServfail: return "dns-servfail";
    case FaultKind::kDnsTimeout: return "dns-timeout";
    case FaultKind::kConnectionReset: return "connection-reset";
    case FaultKind::kTlsFailure: return "tls-failure";
    case FaultKind::kHttp5xx: return "http-5xx";
    case FaultKind::kStalledTransfer: return "stalled-transfer";
    case FaultKind::kTruncatedTransfer: return "truncated-transfer";
  }
  return "unknown";
}

std::string_view to_string(SearchFaultKind kind) {
  switch (kind) {
    case SearchFaultKind::kNone: return "none";
    case SearchFaultKind::kQueryTimeout: return "query-timeout";
    case SearchFaultKind::kEmptyPage: return "empty-page";
    case SearchFaultKind::kQuotaExceeded: return "quota-exceeded";
    case SearchFaultKind::kRateLimited: return "rate-limited";
  }
  return "unknown";
}

namespace {

using Field = double FaultProfile::*;
constexpr std::array<std::pair<std::string_view, Field>, 7> kFields{{
    {"dns_servfail", &FaultProfile::dns_servfail},
    {"dns_timeout", &FaultProfile::dns_timeout},
    {"connection_reset", &FaultProfile::connection_reset},
    {"tls_failure", &FaultProfile::tls_failure},
    {"http_5xx", &FaultProfile::http_5xx},
    {"stall", &FaultProfile::stall},
    {"truncation", &FaultProfile::truncation},
}};

using SearchField = double SearchFaultProfile::*;
constexpr std::array<std::pair<std::string_view, SearchField>, 4>
    kSearchFields{{
        {"query_timeout", &SearchFaultProfile::query_timeout},
        {"empty_page", &SearchFaultProfile::empty_page},
        {"quota_exceeded", &SearchFaultProfile::quota_exceeded},
        {"rate_limited", &SearchFaultProfile::rate_limited},
    }};

double parse_rate(const std::string& text, const std::string& where) {
  char* end = nullptr;
  const double rate = std::strtod(text.c_str(), &end);
  // Full-length consumption rejects trailing garbage and embedded NUL
  // bytes ("0.5\0x" stops strtod at the NUL). The negated comparison
  // rejects NaN too (it fails every ordering); "rate < 0.0 || rate >
  // 1.0" would wave NaN through.
  if (text.empty() || end != text.c_str() + text.size() ||
      !(rate >= 0.0 && rate <= 1.0))
    throw std::invalid_argument("fault profile: bad rate '" + text + "' in " +
                                where);
  return rate;
}

// Shared parse/str machinery for both profile types: the spec grammar
// ("none" | "uniform:R" | "key=R,...") is identical, only the key table
// differs.
template <typename Profile, typename Fields>
Profile parse_profile(const std::string& spec, const Fields& fields) {
  if (spec == "none") return Profile{};
  if (spec.empty())
    throw std::invalid_argument(
        "fault profile: empty spec (use \"none\" for no faults)");
  Profile profile;
  if (spec.rfind("uniform:", 0) == 0) {
    profile = Profile::uniform(parse_rate(spec.substr(8), spec));
  } else {
    for (const std::string& part : util::split(spec, ',')) {
      const auto eq = part.find('=');
      if (eq == std::string::npos)
        throw std::invalid_argument("fault profile: expected key=rate, got '" +
                                    part + "'");
      const std::string key = part.substr(0, eq);
      bool known = false;
      for (const auto& [name, field] : fields) {
        if (key == name) {
          profile.*field = parse_rate(part.substr(eq + 1), spec);
          known = true;
          break;
        }
      }
      if (!known)
        throw std::invalid_argument("fault profile: unknown fault class '" +
                                    key + "'");
    }
  }
  // A spec whose class rates sum past 1 cannot describe per-fetch
  // probabilities; fail fast instead of letting stage cascades
  // silently saturate.
  if (profile.total_rate() > 1.0)
    throw std::invalid_argument("fault profile: total rate exceeds 1 in '" +
                                spec + "'");
  return profile;
}

template <typename Profile, typename Fields>
std::string profile_str(const Profile& profile, const Fields& fields) {
  std::ostringstream os;
  os.precision(17);
  bool first = true;
  for (const auto& [name, field] : fields) {
    if (profile.*field == 0.0) continue;
    if (!first) os << ',';
    os << name << '=' << profile.*field;
    first = false;
  }
  return first ? "none" : os.str();
}

}  // namespace

bool FaultProfile::enabled() const { return total_rate() > 0.0; }

double FaultProfile::total_rate() const {
  double total = 0.0;
  for (const auto& [name, field] : kFields) total += this->*field;
  return total;
}

FaultProfile FaultProfile::uniform(double rate) {
  if (!(rate >= 0.0 && rate <= 1.0))  // negated to reject NaN as well
    throw std::invalid_argument("fault profile: uniform rate out of [0,1]");
  FaultProfile profile;
  for (const auto& [name, field] : kFields) profile.*field = rate;
  return profile;
}

FaultProfile FaultProfile::parse(const std::string& spec) {
  return parse_profile<FaultProfile>(spec, kFields);
}

std::string FaultProfile::str() const { return profile_str(*this, kFields); }

bool SearchFaultProfile::enabled() const { return total_rate() > 0.0; }

double SearchFaultProfile::total_rate() const {
  double total = 0.0;
  for (const auto& [name, field] : kSearchFields) total += this->*field;
  return total;
}

SearchFaultProfile SearchFaultProfile::uniform(double rate) {
  if (!(rate >= 0.0 && rate <= 1.0))  // negated to reject NaN as well
    throw std::invalid_argument("fault profile: uniform rate out of [0,1]");
  SearchFaultProfile profile;
  for (const auto& [name, field] : kSearchFields) profile.*field = rate;
  return profile;
}

SearchFaultProfile SearchFaultProfile::parse(const std::string& spec) {
  return parse_profile<SearchFaultProfile>(spec, kSearchFields);
}

std::string SearchFaultProfile::str() const {
  return profile_str(*this, kSearchFields);
}

SearchFaultInjector::SearchFaultInjector(const SearchFaultProfile& profile,
                                         util::Rng stream)
    : profile_(profile), stream_(stream) {}

SearchFaultKind SearchFaultInjector::dealt(SearchFaultKind kind) {
  ++injected_[static_cast<std::size_t>(kind)];
  return kind;
}

SearchFaultKind SearchFaultInjector::page_fault() {
  const double roll = stream_.uniform();
  double edge = 0.0;
  if (roll < (edge += profile_.query_timeout))
    return dealt(SearchFaultKind::kQueryTimeout);
  if (roll < (edge += profile_.empty_page))
    return dealt(SearchFaultKind::kEmptyPage);
  if (roll < (edge += profile_.quota_exceeded))
    return dealt(SearchFaultKind::kQuotaExceeded);
  if (roll < (edge += profile_.rate_limited))
    return dealt(SearchFaultKind::kRateLimited);
  return SearchFaultKind::kNone;
}

FaultInjector::FaultInjector(const FaultProfile& profile, util::Rng stream)
    : profile_(profile), stream_(stream) {}

FaultKind FaultInjector::dealt(FaultKind kind) {
  if (kind != FaultKind::kNone)
    ++injected_[static_cast<std::size_t>(kind)];
  return kind;
}

FaultKind FaultInjector::dns_fault() {
  // One draw per stage keeps the decision sequence aligned with fetch
  // order regardless of which classes are enabled.
  const double roll = stream_.uniform();
  if (roll < profile_.dns_servfail) return dealt(FaultKind::kDnsServfail);
  if (roll < profile_.dns_servfail + profile_.dns_timeout)
    return dealt(FaultKind::kDnsTimeout);
  return FaultKind::kNone;
}

FaultKind FaultInjector::connect_fault(bool tls) {
  const double roll = stream_.uniform();
  if (roll < profile_.connection_reset)
    return dealt(FaultKind::kConnectionReset);
  if (tls && roll < profile_.connection_reset + profile_.tls_failure)
    return dealt(FaultKind::kTlsFailure);
  return FaultKind::kNone;
}

FaultKind FaultInjector::response_fault() {
  return stream_.uniform() < profile_.http_5xx ? dealt(FaultKind::kHttp5xx)
                                               : FaultKind::kNone;
}

FaultKind FaultInjector::transfer_fault() {
  const double roll = stream_.uniform();
  if (roll < profile_.stall) return dealt(FaultKind::kStalledTransfer);
  if (roll < profile_.stall + profile_.truncation)
    return dealt(FaultKind::kTruncatedTransfer);
  return FaultKind::kNone;
}

double FaultInjector::truncated_fraction() {
  return stream_.uniform(0.05, 0.95);
}

}  // namespace hispar::net
