#include "net/handshake.h"

namespace hispar::net {

std::string_view to_string(TransportProtocol p) {
  switch (p) {
    case TransportProtocol::kTcpTls12: return "tcp+tls1.2";
    case TransportProtocol::kTcpTls13: return "tcp+tls1.3";
    case TransportProtocol::kTfoTls13: return "tfo+tls1.3";
    case TransportProtocol::kQuic: return "quic";
    case TransportProtocol::kQuic0Rtt: return "quic-0rtt";
    case TransportProtocol::kCleartextHttp: return "http";
  }
  return "unknown";
}

HandshakeCost handshake_cost(TransportProtocol protocol,
                             bool session_resumption) {
  switch (protocol) {
    case TransportProtocol::kTcpTls12:
      // SYN/SYN-ACK + ClientHello..Finished (2 RTT full, 1 RTT resumed).
      return {1 + (session_resumption ? 1 : 2), 2.5};
    case TransportProtocol::kTcpTls13:
      return {1 + 1, 1.8};
    case TransportProtocol::kTfoTls13:
      // Data rides on the SYN; with resumption the TLS flight overlaps.
      return {session_resumption ? 1 : 2, 1.8};
    case TransportProtocol::kQuic:
      return {1, 1.5};
    case TransportProtocol::kQuic0Rtt:
      return {0, 1.5};
    case TransportProtocol::kCleartextHttp:
      return {1, 0.2};
  }
  return {1, 0.0};
}

}  // namespace hispar::net
