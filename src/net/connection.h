// Per-origin connection pooling, as done by browsers.
//
// Browsers open up to `max_per_origin` parallel connections to each
// origin (6 for HTTP/1.1 in Firefox/Chrome; 1 multiplexed connection for
// HTTP/2) and reuse them for subsequent requests. Handshake counting in
// §5.6 ("landing pages perform 25% more handshakes") falls directly out
// of this pooling: every request to a not-yet-connected origin (or beyond
// the pool's idle capacity) pays a handshake.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "net/handshake.h"

namespace hispar::net {

enum class HttpVersion : std::uint8_t { kHttp11, kHttp2 };

struct ConnectionPoolConfig {
  int max_per_origin_h1 = 6;
  HttpVersion default_version = HttpVersion::kHttp2;
};

struct ConnectionLease {
  bool new_connection = false;  // true => a handshake was performed
  int connection_id = 0;
};

// Tracks, per origin host, how many connections exist and how many
// requests are in flight. The page-load scheduler acquires a lease per
// request and releases it when the response completes.
class ConnectionPool {
 public:
  explicit ConnectionPool(ConnectionPoolConfig config = {});

  // Acquire a connection to `host`. Creates one if none is idle and the
  // per-origin cap is not reached; otherwise queues on the least-loaded
  // existing connection (HTTP/2 multiplexes arbitrarily).
  ConnectionLease acquire(const std::string& host, HttpVersion version);
  void release(const std::string& host, int connection_id);

  int handshakes_performed() const { return handshakes_; }
  int open_connections(const std::string& host) const;
  void clear();

 private:
  struct Origin {
    int connections = 0;
    std::unordered_map<int, int> in_flight;  // connection id -> requests
    int next_id = 0;
  };

  ConnectionPoolConfig config_;
  std::unordered_map<std::string, Origin> origins_;
  int handshakes_ = 0;
};

}  // namespace hispar::net
