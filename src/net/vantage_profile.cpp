#include "net/vantage_profile.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hispar::net {

namespace {

[[noreturn]] void spec_fail(const std::string& what) {
  throw std::invalid_argument("vantage profile: " + what);
}

double parse_number(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  double out = 0.0;
  try {
    out = std::stod(value, &consumed);
  } catch (const std::exception&) {
    spec_fail("bad value for " + key + ": '" + value + "'");
  }
  // "nan" and "inf" are valid stod tokens but never valid knob values:
  // NaN slips past every one-sided range check below, so reject here.
  if (consumed != value.size() || !std::isfinite(out))
    spec_fail("bad value for " + key + ": '" + value + "'");
  return out;
}

// The anycast public-resolver model of §5.3: many frontends that do not
// share a cache (the Google effect), a touch farther away than the ISP
// resolver on the default route.
ResolverConfig public_resolver(Region region) {
  ResolverConfig config;
  config.name = "public";
  config.cache_shards = 32;
  config.client_rtt_ms = 12.0;
  config.resolver_region = region;
  return config;
}

ResolverConfig isp_resolver(Region region) {
  ResolverConfig config;  // the historical local resolver
  config.resolver_region = region;
  return config;
}

}  // namespace

Region region_from_token(const std::string& token) {
  if (token == "na") return Region::kNorthAmerica;
  if (token == "eu") return Region::kEurope;
  if (token == "as") return Region::kAsia;
  if (token == "sa") return Region::kSouthAmerica;
  if (token == "oc") return Region::kOceania;
  spec_fail("unknown region '" + token + "' (expected na|eu|as|sa|oc)");
}

std::string region_token(Region region) {
  switch (region) {
    case Region::kNorthAmerica: return "na";
    case Region::kEurope: return "eu";
    case Region::kAsia: return "as";
    case Region::kSouthAmerica: return "sa";
    case Region::kOceania: return "oc";
  }
  return "na";
}

std::string VantageProfile::str() const {
  const VantageProfile defaults;
  std::ostringstream os;
  os.precision(17);
  os << name;
  if (region != defaults.region) os << ":region=" << region_token(region);
  if (resolver.cache_shards > 1) os << ":resolver=public";
  if (use_doh) os << ":doh=1";
  if (edge_pin) os << ":edge=" << region_token(*edge_pin);
  if (latency.access_ms != defaults.latency.access_ms)
    os << ":access_ms=" << latency.access_ms;
  if (latency.bandwidth_bytes_per_ms != defaults.latency.bandwidth_bytes_per_ms)
    os << ":bandwidth=" << latency.bandwidth_bytes_per_ms;
  if (fault_scale != defaults.fault_scale) os << ":faults=" << fault_scale;
  return os.str();
}

VantageProfile VantageProfile::parse(const std::string& spec) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(spec);
  while (std::getline(in, part, ':')) parts.push_back(part);
  if (parts.empty() || parts.front().empty())
    spec_fail("empty profile name in '" + spec + "'");
  if (parts.front().find('=') != std::string::npos)
    spec_fail("profile must start with a name, got '" + parts.front() + "'");

  VantageProfile profile;
  profile.name = parts.front();
  bool resolver_public = false;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const auto eq = parts[i].find('=');
    if (eq == std::string::npos)
      spec_fail("expected key=value, got '" + parts[i] + "'");
    const std::string key = parts[i].substr(0, eq);
    const std::string value = parts[i].substr(eq + 1);
    if (key == "region") {
      profile.region = region_from_token(value);
    } else if (key == "resolver") {
      if (value == "public") resolver_public = true;
      else if (value == "isp") resolver_public = false;
      else spec_fail("resolver must be isp or public, got '" + value + "'");
    } else if (key == "doh") {
      if (value == "1") profile.use_doh = true;
      else if (value == "0") profile.use_doh = false;
      else spec_fail("doh must be 0 or 1, got '" + value + "'");
    } else if (key == "edge") {
      profile.edge_pin = region_from_token(value);
    } else if (key == "access_ms") {
      const double v = parse_number(key, value);
      if (v < 0.0) spec_fail("access_ms must be >= 0");
      profile.latency.access_ms = v;
    } else if (key == "bandwidth") {
      const double v = parse_number(key, value);
      if (v <= 0.0) spec_fail("bandwidth must be > 0");
      profile.latency.bandwidth_bytes_per_ms = v;
    } else if (key == "faults") {
      const double v = parse_number(key, value);
      if (v < 0.0) spec_fail("faults scale must be >= 0");
      profile.fault_scale = v;
    } else {
      spec_fail("unknown key '" + key + "'");
    }
  }
  profile.resolver = resolver_public ? public_resolver(profile.region)
                                     : isp_resolver(profile.region);
  return profile;
}

std::vector<VantageProfile> VantageProfile::parse_list(
    const std::string& spec) {
  std::vector<VantageProfile> profiles;
  std::string part;
  std::istringstream in(spec);
  while (std::getline(in, part, ';')) profiles.push_back(parse(part));
  if (profiles.empty()) spec_fail("empty profile list");
  return profiles;
}

std::vector<VantageProfile> VantageProfile::default_vantages(std::size_t n) {
  // Index 0 must stay the exact historical substrate: every field at
  // its default. The rest are plausible, deliberately diverse vantage
  // points exercising each knob.
  std::vector<VantageProfile> table(5);
  table[0].name = "us-home";
  table[1] = parse("eu-isp:region=eu");
  table[2] = parse("as-public-doh:region=as:resolver=public:doh=1");
  table[3] = parse("sa-lossy:region=sa:resolver=public:access_ms=12:faults=2");
  table[4] = parse("oc-pinned:region=oc:edge=na");

  std::vector<VantageProfile> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    VantageProfile profile = table[i % table.size()];
    if (i >= table.size())
      profile.name += "-" + std::to_string(i / table.size() + 1);
    out.push_back(std::move(profile));
  }
  return out;
}

}  // namespace hispar::net
