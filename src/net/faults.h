// Deterministic fault injection for the simulation substrate.
//
// The paper's crawl (§3.1) ran against the real web, where DNS failures,
// connection resets, origin 5xxs and stalled transfers are routine; the
// authors discarded failed loads and dropped sites that never completed.
// This module models that unreliable substrate: a FaultProfile gives the
// per-fetch probability of each failure class, and a FaultInjector turns
// the profile into concrete per-stage decisions for one page-load
// attempt.
//
// Determinism contract: every decision is drawn from an RNG stream the
// campaign keys by (seed, shard, domain, page_index, ordinal, attempt) —
// never from the load's own RNG and never from thread scheduling — so
//  * an all-zero profile leaves every simulated quantity bit-identical
//    to a run without fault injection, and
//  * under a nonzero profile, results are bit-identical for any --jobs
//    value (the PR-1 guarantee holds under faults).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/rng.h"

namespace hispar::net {

// Failure taxonomy, ordered by the fetch stage it strikes.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kDnsServfail,        // resolver answers SERVFAIL quickly
  kDnsTimeout,         // resolver query times out (~5 s)
  kConnectionReset,    // TCP SYN answered with RST
  kTlsFailure,         // TCP connects, TLS handshake fails
  kHttp5xx,            // request completes, origin/CDN returns 5xx
  kStalledTransfer,    // response body stalls until the browser gives up
  kTruncatedTransfer,  // connection dies mid-body; partial bytes arrive
};
inline constexpr int kFaultKindCount = 8;

std::string_view to_string(FaultKind kind);

// Per-fetch fault probabilities. The default (all zero) models the
// perfectly reliable substrate the pre-fault simulator assumed.
struct FaultProfile {
  double dns_servfail = 0.0;
  double dns_timeout = 0.0;
  double connection_reset = 0.0;
  double tls_failure = 0.0;
  double http_5xx = 0.0;
  double stall = 0.0;
  double truncation = 0.0;

  bool enabled() const;
  double total_rate() const;

  // Every class at the same rate (the bench sweeps this).
  static FaultProfile uniform(double rate);
  // "none" | "uniform:R" | "dns_servfail=R,http_5xx=R,..." with keys
  // matching the field names. Throws std::invalid_argument on unknown
  // keys or unparsable/out-of-range rates.
  static FaultProfile parse(const std::string& spec);
  // Canonical spec string; parse(str()) round-trips. Used in checkpoint
  // fingerprints.
  std::string str() const;
};

// ---------------------------------------------------------------------
// Search-API faults (§3 list construction, §7 cost model).
//
// The list builder talks to a metered search API rather than to origin
// servers, so its failure classes differ from page-fetch faults: calls
// time out, quota runs dry, the provider rate-limits a busy client, or a
// query "succeeds" with an empty result page (the near-empty answers §3
// reports for non-English sites). The same determinism contract applies:
// the campaign keys each injector stream by (seed, week, shard, domain,
// attempt), so decisions never depend on thread scheduling and a
// zero-rate profile is a true no-op.

enum class SearchFaultKind : std::uint8_t {
  kNone = 0,
  kQueryTimeout,    // the API call times out; the page is not billed
  kEmptyPage,       // the call is answered (and billed) with no results
  kQuotaExceeded,   // daily quota exhausted; call rejected, not billed
  kRateLimited,     // HTTP 429; call rejected, not billed
};
inline constexpr int kSearchFaultKindCount = 5;

std::string_view to_string(SearchFaultKind kind);

// Per-result-page fault probabilities for `site:` queries. Defaults to
// the perfectly reliable API the pre-fault builder assumed.
struct SearchFaultProfile {
  double query_timeout = 0.0;
  double empty_page = 0.0;
  double quota_exceeded = 0.0;
  double rate_limited = 0.0;

  bool enabled() const;
  double total_rate() const;

  static SearchFaultProfile uniform(double rate);
  // "none" | "uniform:R" | "query_timeout=R,empty_page=R,..." with keys
  // matching the field names. Throws std::invalid_argument on unknown
  // keys or unparsable/out-of-range rates.
  static SearchFaultProfile parse(const std::string& spec);
  // Canonical spec string; parse(str()) round-trips. Used in checkpoint
  // fingerprints.
  std::string str() const;
};

// Fault oracle for one `site:` query attempt: the engine asks it once
// per result page it is about to fetch. One uniform draw per page keeps
// the decision sequence aligned with pagination order regardless of
// which classes are enabled.
class SearchFaultInjector {
 public:
  SearchFaultInjector(const SearchFaultProfile& profile, util::Rng stream);

  const SearchFaultProfile& profile() const { return profile_; }

  // Decision for the next result-page fetch.
  SearchFaultKind page_fault();

  // Faults dealt so far, indexed by SearchFaultKind (slot 0 stays 0).
  // Bookkeeping only — reading never advances the stream.
  const std::array<std::uint64_t, kSearchFaultKindCount>& injected() const {
    return injected_;
  }

 private:
  SearchFaultKind dealt(SearchFaultKind kind);

  SearchFaultProfile profile_;
  util::Rng stream_;
  std::array<std::uint64_t, kSearchFaultKindCount> injected_{};
};

// Fault oracle for one page-load attempt. The loader asks it, in fetch
// order, whether each stage of each object fetch fails; answers consume
// randomness only from the injector's own keyed stream.
class FaultInjector {
 public:
  FaultInjector(const FaultProfile& profile, util::Rng stream);

  const FaultProfile& profile() const { return profile_; }

  // Stage decisions for the next object fetch attempt.
  FaultKind dns_fault();               // servfail/timeout/none
  FaultKind connect_fault(bool tls);   // reset/tls-failure/none
  FaultKind response_fault();          // 5xx/none
  FaultKind transfer_fault();          // stall/truncation/none

  // Fraction of the body delivered before a truncated transfer dies,
  // in [0.05, 0.95).
  double truncated_fraction();

  // Faults dealt so far, indexed by FaultKind (slot 0, kNone, stays 0).
  // Bookkeeping only — reading it never advances the stream — so the
  // observability layer can report injected-vs-survived per class
  // without touching the decision sequence.
  const std::array<std::uint64_t, kFaultKindCount>& injected() const {
    return injected_;
  }

 private:
  FaultKind dealt(FaultKind kind);

  FaultProfile profile_;
  util::Rng stream_;
  std::array<std::uint64_t, kFaultKindCount> injected_{};
};

}  // namespace hispar::net
