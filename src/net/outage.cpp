#include "net/outage.h"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/strings.h"

namespace hispar::net {

std::string_view to_string(OutageScope scope) {
  switch (scope) {
    case OutageScope::kCdnProvider: return "cdn";
    case OutageScope::kResolver: return "resolver";
    case OutageScope::kOriginDomain: return "origin";
    case OutageScope::kSearchApi: return "search";
  }
  return "unknown";
}

std::string_view to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

namespace {

// Grammar kind keys reuse the fault-profile field names (the issue's
// example is kind=http_5xx), not the hyphenated display names.
constexpr std::array<std::pair<std::string_view, FaultKind>, 7> kPageKinds{{
    {"dns_servfail", FaultKind::kDnsServfail},
    {"dns_timeout", FaultKind::kDnsTimeout},
    {"connection_reset", FaultKind::kConnectionReset},
    {"tls_failure", FaultKind::kTlsFailure},
    {"http_5xx", FaultKind::kHttp5xx},
    {"stall", FaultKind::kStalledTransfer},
    {"truncation", FaultKind::kTruncatedTransfer},
}};

constexpr std::array<std::pair<std::string_view, SearchFaultKind>, 4>
    kSearchKinds{{
        {"query_timeout", SearchFaultKind::kQueryTimeout},
        {"empty_page", SearchFaultKind::kEmptyPage},
        {"quota_exceeded", SearchFaultKind::kQuotaExceeded},
        {"rate_limited", SearchFaultKind::kRateLimited},
    }};

[[noreturn]] void chaos_fail(const std::string& what) {
  throw std::invalid_argument("chaos profile: " + what);
}

// Fail-fast numeric parse: the whole token must consume and the value
// must be finite. NaN, inf, empty and trailing garbage all throw — a
// chaos spec typo must never silently clamp into a valid schedule.
double parse_chaos_num(const std::string& text, const std::string& key) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  // Full-length consumption (not *end == '\0') so embedded NUL bytes
  // count as garbage rather than a terminator.
  if (text.empty() || end != text.c_str() + text.size() ||
      !std::isfinite(value))
    chaos_fail("bad number '" + text + "' for " + key);
  return value;
}

std::string_view page_kind_key(FaultKind kind) {
  for (const auto& [name, k] : kPageKinds)
    if (k == kind) return name;
  return "unknown";
}

std::string_view search_kind_key(SearchFaultKind kind) {
  for (const auto& [name, k] : kSearchKinds)
    if (k == kind) return name;
  return "unknown";
}

// The fetch stage a page FaultKind strikes at.
enum class FaultStage : std::uint8_t { kDns, kConnect, kResponse, kTransfer };

FaultStage stage_of(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDnsServfail:
    case FaultKind::kDnsTimeout: return FaultStage::kDns;
    case FaultKind::kConnectionReset:
    case FaultKind::kTlsFailure: return FaultStage::kConnect;
    case FaultKind::kHttp5xx: return FaultStage::kResponse;
    case FaultKind::kStalledTransfer:
    case FaultKind::kTruncatedTransfer:
    case FaultKind::kNone: break;
  }
  return FaultStage::kTransfer;
}

OutageRule parse_rule(const std::string& text) {
  const auto colon = text.find(':');
  if (colon == std::string::npos)
    chaos_fail("expected scope:key=value,..., got '" + text + "'");
  const std::string scope_name = text.substr(0, colon);

  OutageRule rule;
  if (scope_name == "cdn") {
    rule.scope = OutageScope::kCdnProvider;
  } else if (scope_name == "resolver") {
    rule.scope = OutageScope::kResolver;
    rule.kind = FaultKind::kDnsTimeout;
  } else if (scope_name == "origin") {
    rule.scope = OutageScope::kOriginDomain;
  } else if (scope_name == "search") {
    rule.scope = OutageScope::kSearchApi;
  } else {
    chaos_fail("unknown scope '" + scope_name +
               "' (use cdn|resolver|origin|search)");
  }

  bool saw_kind = false;
  for (const std::string& part : util::split(text.substr(colon + 1), ',')) {
    const auto eq = part.find('=');
    if (eq == std::string::npos)
      chaos_fail("expected key=value, got '" + part + "'");
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);

    if (key == "provider") {
      if (rule.scope != OutageScope::kCdnProvider)
        chaos_fail("provider= only applies to cdn rules");
      const double provider = parse_chaos_num(value, key);
      // Bound before the int cast: a value past INT_MAX would be UB
      // (float-cast overflow), and no deployment has 10^6 providers.
      if (provider < 0.0 || provider != std::floor(provider) ||
          provider > 1000000.0)
        chaos_fail("provider must be a non-negative integer, got '" + value +
                   "'");
      rule.provider = static_cast<int>(provider);
    } else if (key == "domain") {
      if (rule.scope != OutageScope::kOriginDomain)
        chaos_fail("domain= only applies to origin rules");
      if (value.empty()) chaos_fail("domain must be non-empty");
      rule.domain = value;
    } else if (key == "kind") {
      saw_kind = true;
      bool known = false;
      if (rule.scope == OutageScope::kSearchApi) {
        for (const auto& [name, k] : kSearchKinds)
          if (value == name) { rule.search_kind = k; known = true; break; }
      } else {
        for (const auto& [name, k] : kPageKinds)
          if (value == name) { rule.kind = k; known = true; break; }
      }
      if (!known)
        chaos_fail("unknown kind '" + value + "' for scope " + scope_name);
    } else if (key == "sev") {
      rule.severity = parse_chaos_num(value, key);
    } else if (key == "start_s") {
      rule.start_s = parse_chaos_num(value, key);
    } else if (key == "dur_s") {
      rule.dur_s = parse_chaos_num(value, key);
    } else if (key == "mtbf_s") {
      rule.mtbf_s = parse_chaos_num(value, key);
    } else if (key == "mttr_s") {
      rule.mttr_s = parse_chaos_num(value, key);
    } else if (key == "horizon_s") {
      rule.horizon_s = parse_chaos_num(value, key);
    } else {
      chaos_fail("unknown key '" + key + "' in '" + text + "'");
    }
  }

  // Scope-specific requirements.
  if (rule.scope == OutageScope::kCdnProvider && rule.provider < 0)
    chaos_fail("cdn rule requires provider=<id>");
  if (rule.scope == OutageScope::kOriginDomain && rule.domain.empty())
    chaos_fail("origin rule requires domain=<host>");
  if (rule.scope == OutageScope::kResolver && saw_kind &&
      stage_of(rule.kind) != FaultStage::kDns)
    chaos_fail("resolver rules take dns_servfail or dns_timeout kinds");

  // Severity is a probability; reject NaN and out-of-range outright
  // (the negated comparison catches NaN, which fails every ordering).
  if (!(rule.severity > 0.0 && rule.severity <= 1.0))
    chaos_fail("sev must be in (0,1], got " + std::to_string(rule.severity));

  // Exactly one window shape.
  const bool explicit_window = rule.start_s >= 0.0 || rule.dur_s > 0.0;
  const bool markov_window = rule.mtbf_s > 0.0 || rule.mttr_s > 0.0;
  if (explicit_window == markov_window)
    chaos_fail("rule '" + text +
               "' needs exactly one of start_s=/dur_s= or mtbf_s=/mttr_s=");
  if (explicit_window && !(rule.start_s >= 0.0 && rule.dur_s > 0.0))
    chaos_fail("explicit window needs start_s >= 0 and dur_s > 0");
  if (markov_window && !(rule.mtbf_s > 0.0 && rule.mttr_s > 0.0))
    chaos_fail("markov window needs mtbf_s > 0 and mttr_s > 0");
  if (!(rule.horizon_s > 0.0)) chaos_fail("horizon_s must be > 0");
  return rule;
}

}  // namespace

std::string OutageRule::scope_key() const {
  switch (scope) {
    case OutageScope::kCdnProvider:
      return "cdn:" + std::to_string(provider);
    case OutageScope::kResolver: return "resolver";
    case OutageScope::kOriginDomain: return "origin:" + domain;
    case OutageScope::kSearchApi: return "search";
  }
  return "unknown";
}

OutageSchedule OutageSchedule::parse(const std::string& spec) {
  OutageSchedule schedule;
  if (spec == "none") return schedule;
  if (spec.empty())
    chaos_fail("empty spec (use \"none\" for no chaos)");
  for (const std::string& rule : util::split(spec, ';'))
    schedule.rules_.push_back(parse_rule(rule));
  return schedule;
}

std::string OutageSchedule::str() const {
  if (rules_.empty()) return "none";
  std::ostringstream os;
  os.precision(17);
  bool first_rule = true;
  for (const OutageRule& rule : rules_) {
    if (!first_rule) os << ';';
    first_rule = false;
    os << to_string(rule.scope) << ':';
    switch (rule.scope) {
      case OutageScope::kCdnProvider:
        os << "provider=" << rule.provider << ',';
        break;
      case OutageScope::kOriginDomain:
        os << "domain=" << rule.domain << ',';
        break;
      case OutageScope::kResolver:
      case OutageScope::kSearchApi: break;
    }
    if (rule.scope == OutageScope::kSearchApi)
      os << "kind=" << search_kind_key(rule.search_kind);
    else
      os << "kind=" << page_kind_key(rule.kind);
    os << ",sev=" << rule.severity;
    if (rule.markov()) {
      os << ",mtbf_s=" << rule.mtbf_s << ",mttr_s=" << rule.mttr_s;
      if (rule.horizon_s != kDefaultChaosHorizonS)
        os << ",horizon_s=" << rule.horizon_s;
    } else {
      os << ",start_s=" << rule.start_s << ",dur_s=" << rule.dur_s;
    }
  }
  return os.str();
}

bool OutagePlan::PlannedRule::active(double now_s) const {
  for (const OutageWindow& window : windows) {
    if (now_s < window.start_s) return false;  // windows are time-ordered
    if (now_s < window.end_s) return true;
  }
  return false;
}

OutagePlan::OutagePlan(const OutageSchedule& schedule, std::uint64_t seed) {
  // Runaway guard: a pathological mtbf/mttr pair cannot allocate an
  // unbounded schedule. 4096 windows is far beyond any real profile.
  constexpr std::uint64_t kMaxWindows = 4096;

  for (const OutageRule& rule : schedule.rules()) {
    PlannedRule planned;
    planned.rule = rule;
    if (rule.markov()) {
      // Each window's holding times come from a stream keyed by
      // (seed, scope, window_ordinal): the schedule is a pure function
      // of the campaign seed, identical for any --jobs value and
      // across kill + resume. Rules sharing a scope share windows —
      // one incident clock per blast radius.
      const std::string scope = rule.scope_key();
      double t = 0.0;
      for (std::uint64_t ordinal = 0; ordinal < kMaxWindows; ++ordinal) {
        util::Rng window_rng =
            util::Rng(seed).fork("chaos").fork(scope).fork(ordinal);
        const double up_s = window_rng.exponential(rule.mtbf_s);
        const double down_s = window_rng.exponential(rule.mttr_s);
        const double start_s = t + up_s;
        if (start_s >= rule.horizon_s) break;
        planned.windows.push_back({start_s, start_s + down_s});
        t = start_s + down_s;
      }
    } else {
      planned.windows.push_back({rule.start_s, rule.start_s + rule.dur_s});
    }
    rules_.push_back(std::move(planned));
  }
}

ChaosInjector::ChaosInjector(const OutagePlan& plan, util::Rng stream)
    : plan_(&plan), stream_(stream) {}

FaultKind ChaosInjector::stage_fault(Stage stage, double now_s,
                                     std::string_view host, bool tls,
                                     bool via_cdn, int provider) {
  for (const auto& planned : plan_->rules()) {
    const OutageRule& rule = planned.rule;
    if (rule.scope == OutageScope::kSearchApi) continue;
    const FaultStage rule_stage = stage_of(rule.kind);
    if (static_cast<int>(rule_stage) != static_cast<int>(stage)) continue;
    if (rule.kind == FaultKind::kTlsFailure && !tls) continue;
    switch (rule.scope) {
      case OutageScope::kResolver: break;  // every lookup is in scope
      case OutageScope::kCdnProvider:
        if (!via_cdn || provider != rule.provider) continue;
        break;
      case OutageScope::kOriginDomain: {
        const std::string& domain = rule.domain;
        const bool exact = host == domain;
        const bool sub = host.size() > domain.size() + 1 &&
                         host[host.size() - domain.size() - 1] == '.' &&
                         host.substr(host.size() - domain.size()) == domain;
        if (!exact && !sub) continue;
        break;
      }
      case OutageScope::kSearchApi: continue;
    }
    if (!planned.active(now_s)) continue;
    // One draw per matching active rule: window activity is a pure
    // function of virtual time, so the stream stays aligned across
    // --jobs values and resume.
    if (stream_.uniform() < rule.severity) {
      ++injected_[static_cast<std::size_t>(rule.kind)];
      return rule.kind;
    }
  }
  return FaultKind::kNone;
}

FaultKind ChaosInjector::dns_fault(double now_s, std::string_view host) {
  return stage_fault(Stage::kDns, now_s, host, /*tls=*/false,
                     /*via_cdn=*/false, /*provider=*/-1);
}

FaultKind ChaosInjector::connect_fault(double now_s, std::string_view host,
                                       bool tls, bool via_cdn, int provider) {
  return stage_fault(Stage::kConnect, now_s, host, tls, via_cdn, provider);
}

FaultKind ChaosInjector::response_fault(double now_s, std::string_view host,
                                        bool via_cdn, int provider) {
  return stage_fault(Stage::kResponse, now_s, host, /*tls=*/false, via_cdn,
                     provider);
}

FaultKind ChaosInjector::transfer_fault(double now_s, std::string_view host,
                                        bool via_cdn, int provider) {
  return stage_fault(Stage::kTransfer, now_s, host, /*tls=*/false, via_cdn,
                     provider);
}

SearchFaultKind ChaosInjector::search_fault(double now_s) {
  for (const auto& planned : plan_->rules()) {
    const OutageRule& rule = planned.rule;
    if (rule.scope != OutageScope::kSearchApi) continue;
    if (!planned.active(now_s)) continue;
    if (stream_.uniform() < rule.severity) {
      ++search_injected_[static_cast<std::size_t>(rule.search_kind)];
      return rule.search_kind;
    }
  }
  return SearchFaultKind::kNone;
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {}

BreakerState CircuitBreaker::state(double now_s) const {
  if (state_ == BreakerState::kOpen &&
      now_s >= opened_at_s_ + config_.cooldown_s)
    return BreakerState::kHalfOpen;
  return state_;
}

bool CircuitBreaker::allow(double now_s) {
  if (state_ == BreakerState::kOpen) {
    if (now_s >= opened_at_s_ + config_.cooldown_s) {
      state_ = BreakerState::kHalfOpen;
      probe_successes_ = 0;
      return true;
    }
    ++denials_;
    return false;
  }
  return true;
}

void CircuitBreaker::record_success(double /*now_s*/) {
  if (state_ == BreakerState::kHalfOpen) {
    if (++probe_successes_ >= config_.half_open_successes) {
      state_ = BreakerState::kClosed;
      consecutive_failures_ = 0;
      probe_successes_ = 0;
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::record_failure(double now_s) {
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: back to open, cooldown restarts.
    state_ = BreakerState::kOpen;
    opened_at_s_ = now_s;
    probe_successes_ = 0;
    ++times_opened_;
    return;
  }
  if (state_ == BreakerState::kClosed &&
      ++consecutive_failures_ >= config_.failure_threshold) {
    state_ = BreakerState::kOpen;
    opened_at_s_ = now_s;
    ++times_opened_;
  }
}

void CircuitBreaker::restore(BreakerState state, int consecutive_failures,
                             double opened_at_s, std::uint64_t times_opened,
                             std::uint64_t denials) {
  state_ = state;
  consecutive_failures_ = consecutive_failures;
  opened_at_s_ = opened_at_s;
  times_opened_ = times_opened;
  denials_ = denials;
  probe_successes_ = 0;
}

BreakerSet::BreakerSet(BreakerConfig config) : config_(config) {}

CircuitBreaker& BreakerSet::at(const std::string& key) {
  auto it = breakers_.find(key);
  if (it == breakers_.end())
    it = breakers_.emplace(key, CircuitBreaker(config_)).first;
  return it->second;
}

std::vector<BreakerSet::Record> BreakerSet::records() const {
  std::vector<Record> records;
  records.reserve(breakers_.size());
  for (const auto& [key, breaker] : breakers_) {
    Record record;
    record.key = key;
    // Serialize the raw stored state (no clock handy here); an open
    // breaker past its cooldown reads back as open, which is the same
    // decision point allow() would re-derive.
    record.state = breaker.state(/*now_s=*/-1.0);
    record.consecutive_failures = breaker.consecutive_failures();
    record.opened_at_s = breaker.opened_at_s();
    record.times_opened = breaker.times_opened();
    record.denials = breaker.denials();
    records.push_back(std::move(record));
  }
  return records;
}

std::uint64_t BreakerSet::total_denials() const {
  std::uint64_t total = 0;
  for (const auto& [key, breaker] : breakers_) total += breaker.denials();
  return total;
}

std::uint64_t BreakerSet::total_times_opened() const {
  std::uint64_t total = 0;
  for (const auto& [key, breaker] : breakers_) total += breaker.times_opened();
  return total;
}

}  // namespace hispar::net
