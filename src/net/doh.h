// DNS-over-HTTPS cost model (§5.3's implications).
//
// Boettger et al. measured the per-query overhead of DoH versus DNS over
// UDP and translated it into a PLT cost via the number of DNS requests a
// page issues. Because landing pages contact more origins (Fig. 5),
// a landing-page-only study "would overestimate the count of DNS
// requests per page, and consequently miscalculate the cost of switching
// over to DoH". This wrapper adds DoH's costs on top of any caching
// resolver:
//  * a TLS/TCP connection to the resolver on first use (amortized over
//    the session),
//  * fixed per-query HTTPS framing overhead,
// so bench_doh can price the switch per page type.
#pragma once

#include "net/dns.h"

namespace hispar::net {

struct DohConfig {
  // One-time connection establishment to the DoH resolver (TCP+TLS1.3,
  // ~2 RTTs to a nearby anycast endpoint).
  double connection_setup_ms = 30.0;
  // Per-query HTTP/2 framing + TLS record overhead.
  double per_query_overhead_ms = 4.0;
};

class DohResolver {
 public:
  DohResolver(CachingResolver& inner, DohConfig config = {});

  // Same contract as CachingResolver::resolve, with DoH costs added.
  DnsLookupResult resolve(const DnsRecord& record, double now_s,
                          util::Rng& rng);

  // Reset the (per-browser-session) DoH connection.
  void new_session() { connected_ = false; }
  std::uint64_t queries() const { return queries_; }
  double total_overhead_ms() const { return overhead_ms_; }

 private:
  CachingResolver* inner_;
  DohConfig config_;
  bool connected_ = false;
  std::uint64_t queries_ = 0;
  double overhead_ms_ = 0.0;
};

}  // namespace hispar::net
