// Transport/TLS handshake cost model.
//
// §5.6 counts TCP+TLS handshakes per page (the HAR `connect` + `ssl`
// phases) and argues that round-trip-saving protocols (QUIC, TCP Fast
// Open, TLS 1.3) benefit landing pages more than internal pages because
// landing pages perform ~25% more handshakes. We model each protocol by
// its round-trip count before the first request byte can be sent.
#pragma once

#include <cstdint>
#include <string_view>

namespace hispar::net {

enum class TransportProtocol : std::uint8_t {
  kTcpTls12,        // TCP (1 RTT) + TLS 1.2 (2 RTT)
  kTcpTls13,        // TCP (1 RTT) + TLS 1.3 (1 RTT)
  kTfoTls13,        // TCP Fast Open + TLS 1.3: 1 RTT combined
  kQuic,            // QUIC 1-RTT handshake
  kQuic0Rtt,        // QUIC with a cached token: 0 RTT
  kCleartextHttp,   // TCP only, no TLS (HTTP pages, §6.1)
};

std::string_view to_string(TransportProtocol p);

struct HandshakeCost {
  int round_trips = 0;      // network round trips before first request
  double cpu_ms = 0.0;      // crypto/processing overhead
};

// Cost of a fresh connection establishment under `protocol`.
// `session_resumption` applies TLS session resumption (saves one RTT for
// TLS 1.2, enables 0-RTT data for TLS 1.3 over TFO).
HandshakeCost handshake_cost(TransportProtocol protocol,
                             bool session_resumption = false);

}  // namespace hispar::net
