// DNS: authoritative records and caching recursive resolvers.
//
// Two things in the paper depend on DNS behaviour:
//  * §5.3 (multi-origin content): the number of unique domains on a page
//    determines the number of resolver queries a cold-cache load issues,
//    and whether those queries are masked by the resolver cache depends on
//    the hit rate. The authors measured ~30% hit rate at their local
//    (ISP) resolver and ~20% at Google's public resolver for the top-5K
//    Umbrella domains, attributing the low rates to short request-routing
//    TTLs and cache fragmentation at Google.
//  * Page-load simulation: every unique domain on a cold load costs a DNS
//    round trip unless the shared resolver cache is warm.
//
// We model a resolver cache entry for a domain as "warm" according to a
// Poisson arrival process of queries from the resolver's other clients:
// P[warm] = 1 - exp(-arrival_rate * ttl). Cache fragmentation (the Google
// effect) divides the per-shard arrival rate by the shard count, and each
// query lands on a uniformly random shard. Second queries within a TTL
// from the same client always hit (we track per-client positive caches
// explicitly), which is exactly the probe methodology of §5.3.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "net/latency.h"
#include "obs/metrics.h"
#include "util/intern.h"
#include "util/rng.h"

namespace hispar::net {

struct DnsRecord {
  std::string domain;
  double ttl_s = 60.0;        // authoritative TTL in seconds
  // Queries per second arriving at a (single-shard) resolver for this
  // domain from its whole client population; derived from domain
  // popularity by the caller.
  double client_query_rate = 0.01;
  Region authoritative_region = Region::kNorthAmerica;
  bool cdn_request_routing = false;  // CDN-routed names use tiny TTLs
};

struct DnsLookupResult {
  bool cache_hit = false;
  double latency_ms = 0.0;
};

struct ResolverConfig {
  std::string name = "local";
  // Number of independent cache shards (frontends that do not share a
  // cache). 1 models an ISP resolver; >1 models anycast public resolvers
  // with fragmented caches (Google Public DNS).
  int cache_shards = 1;
  // RTT from the client to the resolver (ms).
  double client_rtt_ms = 6.0;
  Region resolver_region = Region::kNorthAmerica;
  // Extra server-side processing per query (ms).
  double processing_ms = 1.0;
};

// A caching recursive resolver. Stateless with respect to wall-clock
// time: callers pass `now_s` (simulated seconds).
class CachingResolver {
 public:
  CachingResolver(ResolverConfig config, const LatencyModel& latency);

  // Resolve `record.domain` at time `now_s`. On a miss the resolver
  // contacts the authoritative server (one inter-region RTT) and caches
  // the answer for the record's TTL in the shard that served the query.
  DnsLookupResult resolve(const DnsRecord& record, double now_s,
                          util::Rng& rng);

  // Probability that an arbitrary query for `record` finds a warm entry,
  // under the Poisson-arrivals model (used to pre-warm shards and in
  // tests/analysis).
  double warm_probability(const DnsRecord& record) const;

  const ResolverConfig& config() const { return config_; }
  std::uint64_t queries() const { return queries_; }
  std::uint64_t hits() const { return hits_; }
  double hit_rate() const;
  void clear();

  // Observability hook. Resolves address-stable handles into `metrics`
  // once (`dns.queries` / `dns.cache_hits` counters, `dns.lookup_ms`
  // histogram); resolve() then updates them behind a single null check,
  // so a detached resolver pays one predictable branch. Pass nullptr to
  // detach.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  // Cache keys are (interned domain id << 32) | shard. Interning turns
  // the per-resolve cost from hash-of-string + string compares into one
  // string hash on the symbol table plus integer map ops; a campaign
  // resolves the same few thousand domains millions of times. The
  // packed id is an implementation detail — it never leaves this class
  // and nothing observable depends on id assignment order.
  struct CacheKeyHash {
    // splitmix64 finalizer: packed keys are near-sequential, so they
    // need real mixing to spread across buckets.
    std::size_t operator()(std::uint64_t k) const {
      k ^= k >> 30;
      k *= 0xbf58476d1ce4e5b9ULL;
      k ^= k >> 27;
      k *= 0x94d049bb133111ebULL;
      k ^= k >> 31;
      return static_cast<std::size_t>(k);
    }
  };

  ResolverConfig config_;
  const LatencyModel* latency_;
  util::SymbolTable domains_;
  std::unordered_map<std::uint64_t, double, CacheKeyHash> expiry_;  // now_s based
  std::uint64_t queries_ = 0;
  std::uint64_t hits_ = 0;
  // Pre-resolved metric handles (see set_metrics); null when detached.
  std::uint64_t* metric_queries_ = nullptr;
  std::uint64_t* metric_hits_ = nullptr;
  obs::Histogram* metric_lookup_ms_ = nullptr;
};

// Effective TTL used by resolvers for a record; CDN request-routing names
// are capped at a few seconds in practice (Moura et al., IMC'19).
double effective_ttl_s(const DnsRecord& record);

}  // namespace hispar::net
