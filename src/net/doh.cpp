#include "net/doh.h"

namespace hispar::net {

DohResolver::DohResolver(CachingResolver& inner, DohConfig config)
    : inner_(&inner), config_(config) {}

DnsLookupResult DohResolver::resolve(const DnsRecord& record, double now_s,
                                     util::Rng& rng) {
  ++queries_;
  DnsLookupResult result = inner_->resolve(record, now_s, rng);
  double overhead = config_.per_query_overhead_ms;
  if (!connected_) {
    overhead += config_.connection_setup_ms;
    connected_ = true;
  }
  result.latency_ms += overhead;
  overhead_ms_ += overhead;
  return result;
}

}  // namespace hispar::net
