#include "net/connection.h"

#include <limits>
#include <stdexcept>

namespace hispar::net {

ConnectionPool::ConnectionPool(ConnectionPoolConfig config) : config_(config) {
  if (config_.max_per_origin_h1 < 1)
    throw std::invalid_argument("ConnectionPool: max_per_origin_h1 < 1");
}

ConnectionLease ConnectionPool::acquire(const std::string& host,
                                        HttpVersion version) {
  Origin& origin = origins_[host];
  const int cap =
      version == HttpVersion::kHttp2 ? 1 : config_.max_per_origin_h1;

  // Prefer an idle existing connection.
  for (auto& [id, load] : origin.in_flight) {
    if (load == 0) {
      ++load;
      return {false, id};
    }
  }
  // Open a new one if below the cap.
  if (origin.connections < cap) {
    const int id = origin.next_id++;
    origin.in_flight[id] = 1;
    ++origin.connections;
    ++handshakes_;
    return {true, id};
  }
  // Multiplex/queue on the least-loaded connection.
  int best_id = -1;
  int best_load = std::numeric_limits<int>::max();
  for (auto& [id, load] : origin.in_flight) {
    if (load < best_load) {
      best_load = load;
      best_id = id;
    }
  }
  ++origin.in_flight[best_id];
  return {false, best_id};
}

void ConnectionPool::release(const std::string& host, int connection_id) {
  auto it = origins_.find(host);
  if (it == origins_.end())
    throw std::logic_error("ConnectionPool: release for unknown host");
  auto conn = it->second.in_flight.find(connection_id);
  if (conn == it->second.in_flight.end() || conn->second <= 0)
    throw std::logic_error("ConnectionPool: release without acquire");
  --conn->second;
}

int ConnectionPool::open_connections(const std::string& host) const {
  const auto it = origins_.find(host);
  return it == origins_.end() ? 0 : it->second.connections;
}

void ConnectionPool::clear() {
  origins_.clear();
  handshakes_ = 0;
}

}  // namespace hispar::net
