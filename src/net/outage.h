// Correlated-outage chaos engine: incident windows with a blast radius.
//
// The per-fetch Bernoulli faults in net/faults.h model background noise;
// real campaign-killers are *correlated*: a CDN provider has an incident
// window, a resolver flakes for minutes, an origin is overloaded for a
// whole visit, the search API rate-limits everyone at once. An
// OutageSchedule describes such incidents as rules, each scoped to a
// blast radius (one CDN provider, the configured resolver, one origin
// domain, or the search API) with a FaultKind and a severity (the
// probability that a fetch inside the window is struck).
//
// Windows live on the *virtual* clock. A rule is either explicit
// (start_s/dur_s: one window) or Markov-modulated (mtbf_s/mttr_s: the
// scope alternates between an up state with exponential(mtbf_s) holding
// time and a down state with exponential(mttr_s) holding time, over
// [0, horizon_s)). Markov windows are drawn from RNG streams keyed by
// (seed, scope, window_ordinal) — never from the campaign's own
// streams — so the schedule is identical for any --jobs value and
// across kill + resume, and rules that share a scope share the same
// incident clock.
//
// Determinism contract (mirrors net/faults.h): an empty schedule is a
// true no-op — no branch of the load path consumes extra randomness —
// so every PR-6 golden digest stays byte-identical. Under a nonzero
// schedule, each strike decision is drawn from a ChaosInjector stream
// the campaign keys per attempt, so outputs are byte-identical for any
// --jobs value and across kill + resume.
//
// This header also hosts the defense layer the chaos engine exists to
// exercise: deterministic circuit breakers (CircuitBreaker/BreakerSet)
// that open on consecutive failures over virtual time and deny
// non-essential fetches while open, turning a would-be quarantine into
// a degraded-but-reported measurement.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/faults.h"
#include "util/rng.h"

namespace hispar::net {

// Blast radius of one outage rule.
enum class OutageScope : std::uint8_t {
  kCdnProvider = 0,  // every object served by one CDN provider id
  kResolver,         // every DNS lookup (the vantage's resolver)
  kOriginDomain,     // one origin domain and its subdomains
  kSearchApi,        // the list builder's metered search API
};

std::string_view to_string(OutageScope scope);

// Markov rules stop generating windows at this virtual-time horizon
// unless the rule overrides horizon_s. Four hours comfortably covers
// every campaign in the repo (shard clocks end well under an hour).
inline constexpr double kDefaultChaosHorizonS = 14400.0;

// One incident rule of an OutageSchedule.
struct OutageRule {
  OutageScope scope = OutageScope::kOriginDomain;
  int provider = -1;    // cdn scope: CdnRegistry provider id
  std::string domain;   // origin scope: registrable domain or host

  // What a strike inside a window does. Page scopes use kind; the
  // search scope uses search_kind.
  FaultKind kind = FaultKind::kHttp5xx;
  SearchFaultKind search_kind = SearchFaultKind::kQueryTimeout;
  // Probability that a fetch decision inside an active window is
  // struck; in (0, 1].
  double severity = 1.0;

  // Exactly one window shape per rule:
  //  * explicit: start_s >= 0 and dur_s > 0 — one window;
  //  * Markov:   mtbf_s > 0 and mttr_s > 0 — alternating up/down
  //    holding times drawn per window ordinal, over [0, horizon_s).
  double start_s = -1.0;
  double dur_s = 0.0;
  double mtbf_s = 0.0;
  double mttr_s = 0.0;
  double horizon_s = kDefaultChaosHorizonS;

  bool markov() const { return mtbf_s > 0.0; }
  // Stable identity of the blast radius ("cdn:2", "resolver",
  // "origin:example.com", "search"); keys the window RNG stream.
  std::string scope_key() const;
};

// Half-open interval of virtual seconds during which a rule is active.
struct OutageWindow {
  double start_s = 0.0;
  double end_s = 0.0;
};

// Parsed --chaos-profile spec: an ordered list of rules.
//
// Grammar:  "none" | rule (';' rule)*
//           rule   = scope ':' key '=' value (',' key '=' value)*
//           scope  = "cdn" | "resolver" | "origin" | "search"
// Keys: provider= (cdn, required), domain= (origin, required),
// kind= (fault-profile field names: http_5xx, dns_timeout, ... for page
// scopes; query_timeout, rate_limited, ... for search), sev= in (0,1]
// (default 1), and either start_s=/dur_s= or mtbf_s=/mttr_s=
// [,horizon_s=]. Example from the issue:
//   cdn:provider=2,start_s=120,dur_s=300,kind=http_5xx,sev=0.9
// parse() fails fast (std::invalid_argument) on unknown scopes/keys,
// NaN or negative numbers, severities outside (0,1], and rules missing
// a window shape — never a silent clamp.
class OutageSchedule {
 public:
  OutageSchedule() = default;

  static OutageSchedule parse(const std::string& spec);
  // Canonical spec string; parse(str()) round-trips. Feeds checkpoint
  // config digests, so it must stay byte-stable.
  std::string str() const;

  bool enabled() const { return !rules_.empty(); }
  const std::vector<OutageRule>& rules() const { return rules_; }

 private:
  std::vector<OutageRule> rules_;
};

// A schedule materialized against a campaign seed: every rule's windows
// are pre-generated, so activity queries are pure functions of virtual
// time. Built once per campaign and shared read-only across shards.
class OutagePlan {
 public:
  struct PlannedRule {
    OutageRule rule;
    std::vector<OutageWindow> windows;  // in time order, non-overlapping
    bool active(double now_s) const;
  };

  OutagePlan() = default;
  OutagePlan(const OutageSchedule& schedule, std::uint64_t seed);

  bool enabled() const { return !rules_.empty(); }
  const std::vector<PlannedRule>& rules() const { return rules_; }

 private:
  std::vector<PlannedRule> rules_;
};

// Chaos oracle for one page-load (or query) attempt. Mirrors
// FaultInjector: the loader asks it, in fetch order, whether an active
// outage strikes each stage; answers consume randomness only from the
// injector's own keyed stream, and only when a matching rule's window
// is active (window activity is itself deterministic), so streams stay
// aligned for any --jobs value and across resume.
class ChaosInjector {
 public:
  ChaosInjector(const OutagePlan& plan, util::Rng stream);

  const OutagePlan& plan() const { return *plan_; }

  // Stage decisions for the next object fetch attempt. `now_s` is the
  // campaign virtual clock; `host` the object's host; `via_cdn` and
  // `provider` identify the serving CDN provider if any.
  FaultKind dns_fault(double now_s, std::string_view host);
  FaultKind connect_fault(double now_s, std::string_view host, bool tls,
                          bool via_cdn, int provider);
  FaultKind response_fault(double now_s, std::string_view host, bool via_cdn,
                           int provider);
  FaultKind transfer_fault(double now_s, std::string_view host, bool via_cdn,
                           int provider);

  // Decision for the next search-API result page (search scope only).
  SearchFaultKind search_fault(double now_s);

  // Strikes dealt so far, indexed by kind (slot 0 stays 0). Reading
  // never advances the stream.
  const std::array<std::uint64_t, kFaultKindCount>& injected() const {
    return injected_;
  }
  const std::array<std::uint64_t, kSearchFaultKindCount>& search_injected()
      const {
    return search_injected_;
  }

 private:
  // The fetch stage a page FaultKind strikes (matches FaultInjector's
  // stage methods).
  enum class Stage : std::uint8_t { kDns, kConnect, kResponse, kTransfer };

  FaultKind stage_fault(Stage stage, double now_s, std::string_view host,
                        bool tls, bool via_cdn, int provider);

  const OutagePlan* plan_ = nullptr;
  util::Rng stream_;
  std::array<std::uint64_t, kFaultKindCount> injected_{};
  std::array<std::uint64_t, kSearchFaultKindCount> search_injected_{};
};

// ---------------------------------------------------------------------
// Circuit breakers.
//
// Deterministic by construction: transitions depend only on the
// sequence of record_success/record_failure calls and the virtual
// clock — no RNG, no wall time — so a shard replays to the same
// breaker trajectory on every run.

struct BreakerConfig {
  // Consecutive failures that trip a closed breaker open.
  int failure_threshold = 5;
  // Virtual seconds an open breaker holds before admitting a probe.
  double cooldown_s = 30.0;
  // Consecutive probe successes that close a half-open breaker.
  int half_open_successes = 1;
};

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

std::string_view to_string(BreakerState state);

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config = {});

  // Effective state at `now_s` (an open breaker past its cooldown
  // reports half-open without mutating).
  BreakerState state(double now_s) const;

  // Gate one request. Closed: admit. Open: deny (counted) until the
  // cooldown elapses, then transition to half-open and admit the
  // probe. Half-open: admit.
  bool allow(double now_s);

  // Outcome feedback for an admitted request.
  void record_success(double now_s);
  void record_failure(double now_s);

  // Introspection / serialization.
  int consecutive_failures() const { return consecutive_failures_; }
  double opened_at_s() const { return opened_at_s_; }
  std::uint64_t times_opened() const { return times_opened_; }
  std::uint64_t denials() const { return denials_; }
  // Restore a serialized end state (checkpoint splice re-emit).
  void restore(BreakerState state, int consecutive_failures,
               double opened_at_s, std::uint64_t times_opened,
               std::uint64_t denials);

 private:
  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  double opened_at_s_ = 0.0;
  std::uint64_t times_opened_ = 0;
  std::uint64_t denials_ = 0;
};

// One shard's breakers, keyed by blast-radius identity ("origin:<host>"
// or "cdn:<provider>"; the list builder uses "search"). std::map keeps
// records() in key order, so serialized breaker lines are byte-stable.
class BreakerSet {
 public:
  explicit BreakerSet(BreakerConfig config = {});

  // The breaker for `key`, created closed on first use.
  CircuitBreaker& at(const std::string& key);

  bool empty() const { return breakers_.empty(); }

  // Serialized view of every breaker this shard touched, in key order.
  struct Record {
    std::string key;
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    double opened_at_s = 0.0;
    std::uint64_t times_opened = 0;
    std::uint64_t denials = 0;
  };
  std::vector<Record> records() const;

  // Aggregate counters for telemetry.
  std::uint64_t total_denials() const;
  std::uint64_t total_times_opened() const;

 private:
  BreakerConfig config_;
  std::map<std::string, CircuitBreaker> breakers_;
};

}  // namespace hispar::net
