#include "net/latency.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hispar::net {

std::string_view to_string(Region r) {
  switch (r) {
    case Region::kNorthAmerica: return "north-america";
    case Region::kEurope: return "europe";
    case Region::kAsia: return "asia";
    case Region::kSouthAmerica: return "south-america";
    case Region::kOceania: return "oceania";
  }
  return "unknown";
}

LatencyModel::LatencyModel(LatencyConfig config) : config_(config) {
  for (int i = 0; i < kRegionCount; ++i)
    for (int j = 0; j < kRegionCount; ++j)
      if (config_.rtt_ms[i][j] <= 0.0)
        throw std::invalid_argument("LatencyModel: non-positive RTT");
  if (config_.bandwidth_bytes_per_ms <= 0.0)
    throw std::invalid_argument("LatencyModel: non-positive bandwidth");
}

double LatencyModel::base_rtt(Region a, Region b) const {
  return config_.rtt_ms[static_cast<int>(a)][static_cast<int>(b)] +
         config_.access_ms;
}

double LatencyModel::rtt(Region a, Region b, util::Rng& rng) const {
  const double jitter = std::exp(rng.normal(0.0, config_.jitter_sigma));
  return std::max(1.0, base_rtt(a, b) * jitter);
}

double LatencyModel::transfer_ms(double bytes) const {
  return std::max(0.0, bytes) / config_.bandwidth_bytes_per_ms;
}

}  // namespace hispar::net
