// Vantage-point profiles for multi-vantage campaigns.
//
// The paper measures from a single vantage point (a server in the US,
// §3.1) and repeatedly cautions that its absolute numbers are shaped by
// where that server sits — the Fig. 10c "World category" PLT reversal
// is explained by origins and CDN front-ends being far from it, and
// §5.3's resolver hit rates differ between the local ISP resolver and
// Google's fragmented public one. A VantageProfile bundles everything
// that distinguishes one vantage point's substrate:
//  * the client region (which end of the RTT matrix it sits on),
//  * its resolver (ISP-style single cache vs. anycast public resolver
//    with fragmented shards, optionally reached over DoH),
//  * its last-mile shape (access latency / bandwidth),
//  * CDN edge pinning (anycast mis-routing onto a fixed PoP), and
//  * a fault-rate multiplier (an unreliable last mile fails more
//    loads).
// core::VantageCampaign derives one CampaignConfig per profile and runs
// the existing campaign engine under each.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "net/dns.h"
#include "net/doh.h"
#include "net/latency.h"

namespace hispar::net {

struct VantageProfile {
  std::string name = "v0";
  Region region = Region::kNorthAmerica;
  // Default-constructed ResolverConfig is the ISP-style local resolver
  // the single-vantage campaign always used; public-resolver profiles
  // fragment the cache across anycast frontends (the Google effect,
  // §5.3).
  ResolverConfig resolver;
  bool use_doh = false;
  DohConfig doh;
  // Last-mile shape of this vantage; the inter-region RTT matrix itself
  // is shared physics and stays at its defaults.
  LatencyConfig latency;
  // Pin all CDN traffic to one edge region (anycast mis-routing).
  std::optional<Region> edge_pin;
  // Multiplier applied to the campaign's base fault profile at this
  // vantage (each rate scales and clamps to [0, 1]).
  double fault_scale = 1.0;

  // Canonical spec string; parse(str()) round-trips for any profile
  // expressible in the spec grammar (defaults are omitted).
  std::string str() const;

  // "name[:key=value[:key=value...]]". Keys:
  //   region=na|eu|as|sa|oc       client region (default na)
  //   resolver=isp|public         cache topology (default isp)
  //   doh=0|1                     DNS-over-HTTPS (default 0)
  //   edge=na|eu|as|sa|oc         CDN edge pin (default: nearest-edge)
  //   access_ms=<float>           last-mile latency (default 4)
  //   bandwidth=<float>           downlink bytes/ms (default 6250)
  //   faults=<float>              fault-rate multiplier (default 1)
  // Throws std::invalid_argument on unknown keys or bad values.
  static VantageProfile parse(const std::string& spec);

  // Parse a ';'-separated list of profile specs (at least one).
  static std::vector<VantageProfile> parse_list(const std::string& spec);

  // N deterministic built-in vantages. Index 0 is always the home
  // vantage — the exact substrate the single-vantage campaign hardcodes
  // — so a 1-vantage campaign is byte-identical to the historical one.
  // Further indices cycle a fixed table of plausible vantage points
  // (EU ISP, Asia public+DoH, South America lossy, Oceania edge-pinned).
  static std::vector<VantageProfile> default_vantages(std::size_t n);
};

// Short region tokens used by the spec grammar ("na", "eu", ...).
Region region_from_token(const std::string& token);
std::string region_token(Region region);

}  // namespace hispar::net
