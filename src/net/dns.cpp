#include "net/dns.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hispar::net {

namespace {
constexpr double kCdnRoutingTtlCap = 20.0;  // seconds
}

double effective_ttl_s(const DnsRecord& record) {
  const double ttl = std::max(1.0, record.ttl_s);
  return record.cdn_request_routing ? std::min(ttl, kCdnRoutingTtlCap) : ttl;
}

CachingResolver::CachingResolver(ResolverConfig config,
                                 const LatencyModel& latency)
    : config_(std::move(config)), latency_(&latency) {
  if (config_.cache_shards < 1)
    throw std::invalid_argument("CachingResolver: cache_shards < 1");
}

double CachingResolver::warm_probability(const DnsRecord& record) const {
  // Poisson arrivals at rate lambda split uniformly over S shards keep a
  // given shard's entry warm with probability 1 - exp(-lambda/S * ttl).
  const double per_shard_rate =
      record.client_query_rate / static_cast<double>(config_.cache_shards);
  return 1.0 - std::exp(-per_shard_rate * effective_ttl_s(record));
}

void CachingResolver::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_queries_ = nullptr;
    metric_hits_ = nullptr;
    metric_lookup_ms_ = nullptr;
    return;
  }
  metric_queries_ = &metrics->counter("dns.queries");
  metric_hits_ = &metrics->counter("dns.cache_hits");
  metric_lookup_ms_ = &metrics->histogram("dns.lookup_ms", obs::time_ms_buckets());
}

DnsLookupResult CachingResolver::resolve(const DnsRecord& record, double now_s,
                                         util::Rng& rng) {
  ++queries_;
  if (metric_queries_ != nullptr) ++*metric_queries_;
  const int shard =
      config_.cache_shards == 1
          ? 0
          : static_cast<int>(rng.uniform_int(0, config_.cache_shards - 1));
  const std::uint64_t key =
      (static_cast<std::uint64_t>(domains_.intern(record.domain)) << 32) |
      static_cast<std::uint32_t>(shard);

  const double ttl = effective_ttl_s(record);
  auto it = expiry_.find(key);
  bool warm = it != expiry_.end() && it->second > now_s;
  if (!warm) {
    // Entries kept warm by other clients of this resolver: sample the
    // steady-state warm probability once per (expired) observation. The
    // remaining TTL of an entry found warm this way is uniform in (0,ttl].
    if (rng.chance(warm_probability(record))) {
      warm = true;
      expiry_[key] = now_s + rng.uniform() * ttl;
      it = expiry_.find(key);
    }
  }

  DnsLookupResult result;
  if (warm) {
    ++hits_;
    if (metric_hits_ != nullptr) ++*metric_hits_;
    result.cache_hit = true;
    result.latency_ms = config_.client_rtt_ms + config_.processing_ms;
    if (metric_lookup_ms_ != nullptr)
      metric_lookup_ms_->observe(result.latency_ms);
    return result;
  }

  // Miss: recurse to the authoritative server.
  const double upstream =
      latency_->rtt(config_.resolver_region, record.authoritative_region, rng);
  result.cache_hit = false;
  result.latency_ms = config_.client_rtt_ms + config_.processing_ms + upstream;
  expiry_[key] = now_s + ttl;
  if (metric_lookup_ms_ != nullptr)
    metric_lookup_ms_->observe(result.latency_ms);
  return result;
}

double CachingResolver::hit_rate() const {
  if (queries_ == 0) return 0.0;
  return static_cast<double>(hits_) / static_cast<double>(queries_);
}

void CachingResolver::clear() {
  expiry_.clear();
  domains_.clear();
  queries_ = 0;
  hits_ = 0;
}

}  // namespace hispar::net
