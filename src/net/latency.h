// Wide-area latency model.
//
// The paper measures from a single vantage point (a server in the US,
// §3.1) and explains the Fig. 10c "World category" PLT reversal by origin
// servers and CDN front-ends being far from that vantage point. We model
// the world as coarse regions with typical inter-region RTTs plus
// lognormal jitter; bandwidth is modelled as a per-connection bytes/ms
// rate with a per-object serialization delay.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/rng.h"

namespace hispar::net {

enum class Region : std::uint8_t {
  kNorthAmerica = 0,
  kEurope,
  kAsia,
  kSouthAmerica,
  kOceania,
};
inline constexpr int kRegionCount = 5;

std::string_view to_string(Region r);

struct LatencyConfig {
  // Minimum RTTs in milliseconds between region pairs; the matrix is
  // symmetric and the diagonal holds the intra-region RTT.
  // Values are typical public-Internet medians (cf. Bozkurt et al.,
  // "Why is the Internet so slow?!", PAM'17).
  double rtt_ms[kRegionCount][kRegionCount] = {
      //  NA     EU     AS     SA     OC
      {  18.0,  90.0, 160.0, 120.0, 150.0},  // NA
      {  90.0,  16.0, 170.0, 190.0, 250.0},  // EU
      { 160.0, 170.0,  30.0, 280.0, 130.0},  // AS
      { 120.0, 190.0, 280.0,  25.0, 240.0},  // SA
      { 150.0, 250.0, 130.0, 240.0,  22.0},  // OC
  };
  // Multiplicative lognormal jitter applied to each RTT sample:
  // rtt * exp(N(0, jitter_sigma)). Queueing and path variance.
  double jitter_sigma = 0.15;
  // Last-mile access latency added to every RTT (ms).
  double access_ms = 4.0;
  // Downlink bandwidth in bytes per millisecond (50 Mbit/s ~ 6250 B/ms).
  double bandwidth_bytes_per_ms = 6250.0;
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyConfig config = {});

  // One RTT sample between two regions (jittered, >= 1 ms).
  double rtt(Region a, Region b, util::Rng& rng) const;
  // Median (un-jittered) RTT, for deterministic reasoning/tests.
  double base_rtt(Region a, Region b) const;
  // Time to move `bytes` over an established connection, one direction,
  // excluding propagation.
  double transfer_ms(double bytes) const;

  const LatencyConfig& config() const { return config_; }

 private:
  LatencyConfig config_;
};

}  // namespace hispar::net
