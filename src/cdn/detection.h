// CDN detection heuristics (cdnfinder-style).
//
// §5.1: "To determine whether a particular HTTP request was served
// through a CDN, we used multiple heuristics (e.g., domain-name patterns,
// HTTP headers, DNS CNAMEs, and reverse DNS lookup)." We implement the
// same three signal classes over the registry's patterns. Detection is
// intentionally independent of ground truth: the analysis pipeline only
// sees what a real measurement tool would see.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cdn/provider.h"

namespace hispar::cdn {

// Observable facts about one fetched object, as a HAR-reading tool has
// them.
struct ObservedFetch {
  std::string host;                         // request host
  std::optional<std::string> dns_cname;     // CNAME chain tail, if any
  std::vector<std::string> response_headers;  // "name: value" lines
};

struct DetectionResult {
  bool via_cdn = false;
  int provider_id = -1;          // valid iff via_cdn
  std::string matched_signal;    // "host-pattern" / "cname" / "header"
};

class CdnDetector {
 public:
  explicit CdnDetector(const CdnRegistry& registry);

  DetectionResult classify(const ObservedFetch& fetch) const;

 private:
  const CdnRegistry* registry_;
};

}  // namespace hispar::cdn
