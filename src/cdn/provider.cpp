#include "cdn/provider.h"

#include <limits>
#include <stdexcept>

#include "util/strings.h"

namespace hispar::cdn {

namespace {

using net::Region;

constexpr auto kNA = Region::kNorthAmerica;
constexpr auto kEU = Region::kEurope;
constexpr auto kAS = Region::kAsia;
constexpr auto kSA = Region::kSouthAmerica;
constexpr auto kOC = Region::kOceania;

struct Spec {
  const char* name;
  const char* host_pattern;
  const char* cname_pattern;
  const char* header;
  bool x_cache;
  std::initializer_list<Region> regions;
};

// Patterns follow the cdnfinder data set in spirit: every provider is
// detectable by host suffix or CNAME target. The two providers the paper
// names as emitting X-Cache (Akamai, Fastly) are flagged, plus a few
// others that do so in practice.
const Spec kSpecs[] = {
    {"akamai", "*.akamaiedge.net", "*.edgekey.net", "x-akamai-request-id",
     true, {kNA, kEU, kAS, kSA, kOC}},
    {"akamai-static", "*.akamaized.net", "*.akamaized.net", "", true,
     {kNA, kEU, kAS, kSA, kOC}},
    {"cloudflare", "*.cloudflare.com", "*.cdn.cloudflare.net",
     "server: cloudflare", false, {kNA, kEU, kAS, kSA, kOC}},
    {"fastly", "*.fastly.net", "*.fastly.net", "x-served-by", true,
     {kNA, kEU, kAS, kOC}},
    {"cloudfront", "*.cloudfront.net", "*.cloudfront.net", "x-amz-cf-pop",
     true, {kNA, kEU, kAS, kSA, kOC}},
    {"google-cloud-cdn", "*.googleusercontent.com", "*.googlehosted.com",
     "via: 1.1 google", false, {kNA, kEU, kAS, kSA, kOC}},
    {"gstatic", "*.gstatic.com", "*.gstatic.com", "", false,
     {kNA, kEU, kAS, kSA, kOC}},
    {"azure-cdn", "*.azureedge.net", "*.azureedge.net", "x-msedge-ref", false,
     {kNA, kEU, kAS, kOC}},
    {"level3", "*.footprint.net", "*.footprint.net", "", false,
     {kNA, kEU}},
    {"limelight", "*.llnwd.net", "*.llnwd.net", "", false,
     {kNA, kEU, kAS, kOC}},
    {"edgecast", "*.edgecastcdn.net", "*.edgecastcdn.net", "", true,
     {kNA, kEU, kAS}},
    {"stackpath", "*.stackpathdns.com", "*.stackpathdns.com", "x-hw", false,
     {kNA, kEU}},
    {"keycdn", "*.kxcdn.com", "*.kxcdn.com", "x-edge-location", true,
     {kNA, kEU, kAS}},
    {"bunnycdn", "*.b-cdn.net", "*.b-cdn.net", "cdn-cache", true,
     {kNA, kEU, kAS, kOC}},
    {"cachefly", "*.cachefly.net", "*.cachefly.net", "", true, {kNA, kEU}},
    {"cdn77", "*.cdn77.org", "*.cdn77.org", "x-77-cache", true, {kNA, kEU}},
    {"cdnetworks", "*.cdngc.net", "*.cdngc.net", "", false, {kAS, kNA, kEU}},
    {"chinacache", "*.ccgslb.com.cn", "*.ccgslb.com.cn", "", false, {kAS}},
    {"alibaba-cdn", "*.alicdn.com", "*.cdngslb.com", "eagleid", false,
     {kAS, kNA, kEU}},
    {"tencent-cdn", "*.qcloudcdn.com", "*.cdn.dnsv1.com", "", false, {kAS}},
    {"baidu-cdn", "*.bdydns.com", "*.bdydns.com", "", false, {kAS}},
    {"incapsula", "*.incapdns.net", "*.incapdns.net", "x-iinfo", false,
     {kNA, kEU, kAS}},
    {"sucuri", "*.sucuri.net", "*.sucuri.net", "x-sucuri-cache", true,
     {kNA, kEU}},
    {"quantil", "*.mwcloudcdn.com", "*.mwcloudcdn.com", "", false,
     {kAS, kNA}},
    {"onapp", "*.worldcdn.net", "*.worldcdn.net", "", false, {kEU}},
    {"leaseweb", "*.lswcdn.net", "*.lswcdn.net", "", false, {kEU, kNA}},
    {"ovh-cdn", "*.ovscdn.com", "*.ovscdn.com", "", false, {kEU}},
    {"belugacdn", "*.belugacdn.com", "*.belugacdn.com", "", false, {kNA}},
    {"jsdelivr", "*.jsdelivr.net", "*.jsdelivr.net", "x-cache", true,
     {kNA, kEU, kAS}},
    {"unpkg", "*.unpkg.com", "*.unpkg.com", "x-cache", true, {kNA, kEU}},
    {"cdnjs", "*.cdnjs.cloudflare.com", "*.cdn.cloudflare.net", "", false,
     {kNA, kEU, kAS, kSA, kOC}},
    {"akamai-ds", "*.download.akamai.com", "*.edgesuite.net", "", true,
     {kNA, kEU, kAS, kSA, kOC}},
    {"netlify", "*.netlify.app", "*.netlify.app", "x-nf-request-id", false,
     {kNA, kEU, kAS}},
    {"vercel", "*.vercel-dns.com", "*.vercel-dns.com", "x-vercel-cache", true,
     {kNA, kEU, kAS}},
    {"github-pages", "*.github.io", "*.github.io", "x-github-request-id",
     true, {kNA, kEU}},
    {"wp-engine", "*.wpengine.com", "*.wpengine.com", "x-cacheable", true,
     {kNA, kEU}},
    {"shopify-cdn", "*.shopifycdn.com", "*.shopifycdn.com", "x-sorting-hat",
     false, {kNA, kEU, kAS}},
    {"wix-cdn", "*.wixstatic.com", "*.wixdns.net", "x-seen-by", false,
     {kNA, kEU}},
    {"squarespace-cdn", "*.squarespace-cdn.com", "*.squarespace-cdn.com", "",
     false, {kNA, kEU}},
    {"highwinds", "*.hwcdn.net", "*.hwcdn.net", "x-hw", false, {kNA, kEU}},
    {"yottaa", "*.yottaa.net", "*.yottaa.net", "", false, {kNA}},
    {"instart", "*.insnw.net", "*.insnw.net", "x-instart-cache", true, {kNA}},
    {"section-io", "*.squixa.net", "*.squixa.net", "section-io-cache", true,
     {kNA, kEU, kOC}},
    {"swiftserve", "*.swiftserve.com", "*.swiftserve.com", "", false,
     {kEU, kAS}},
};

}  // namespace

CdnRegistry CdnRegistry::standard() {
  CdnRegistry registry;
  int id = 0;
  for (const Spec& spec : kSpecs) {
    CdnProvider p;
    p.id = id++;
    p.name = spec.name;
    p.host_patterns = {spec.host_pattern};
    p.cname_patterns = {spec.cname_pattern};
    p.header_signature = spec.header;
    p.emits_x_cache = spec.x_cache;
    p.edge_regions.assign(spec.regions.begin(), spec.regions.end());
    registry.providers_.push_back(std::move(p));
  }
  return registry;
}

const CdnProvider& CdnRegistry::provider(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= providers_.size())
    throw std::out_of_range("CdnRegistry: bad provider id");
  return providers_[static_cast<std::size_t>(id)];
}

const CdnProvider* CdnRegistry::find_by_name(std::string_view name) const {
  for (const auto& p : providers_)
    if (p.name == name) return &p;
  return nullptr;
}

net::Region CdnRegistry::nearest_edge(const CdnProvider& provider,
                                      net::Region client,
                                      const net::LatencyModel& latency) const {
  if (provider.edge_regions.empty())
    throw std::logic_error("CdnRegistry: provider without edge regions");
  net::Region best = provider.edge_regions.front();
  double best_rtt = std::numeric_limits<double>::max();
  for (net::Region r : provider.edge_regions) {
    const double rtt = latency.base_rtt(client, r);
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best = r;
    }
  }
  return best;
}

}  // namespace hispar::cdn
