// Byte-capacity LRU cache.
//
// Used for the deterministic layer of the CDN cache hierarchy (objects we
// fetched recently during a measurement run stay hot) and directly
// unit-tested; the probabilistic layer on top is in hierarchy.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace hispar::cdn {

class LruCache {
 public:
  explicit LruCache(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {
    if (capacity_ == 0) throw std::invalid_argument("LruCache: capacity 0");
  }

  // Returns true (and refreshes recency) if `key` is cached.
  bool touch(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }

  bool contains(const std::string& key) const { return index_.count(key); }

  // Inserts `key` with `size` bytes, evicting LRU entries as needed.
  // Objects larger than the capacity are not admitted; growing an
  // existing entry past the capacity evicts it (keeping the old bytes
  // would misstate what the cache holds).
  void insert(const std::string& key, std::size_t size) {
    if (size > capacity_) {
      auto it = index_.find(key);
      if (it != index_.end()) {
        used_ -= it->second->size;
        order_.erase(it->second);
        index_.erase(it);
      }
      return;
    }
    auto it = index_.find(key);
    if (it != index_.end()) {
      used_ -= it->second->size;
      it->second->size = size;
      used_ += size;
      order_.splice(order_.begin(), order_, it->second);
    } else {
      order_.push_front(Entry{key, size});
      index_[key] = order_.begin();
      used_ += size;
    }
    while (used_ > capacity_) evict_one();
  }

  std::size_t used_bytes() const { return used_; }
  std::size_t capacity_bytes() const { return capacity_; }
  std::size_t entries() const { return index_.size(); }
  // Entries evicted over the cache's lifetime (not reset by clear());
  // the observability layer reports this as cache-pressure evidence.
  std::uint64_t evictions() const { return evictions_; }

  void clear() {
    order_.clear();
    index_.clear();
    used_ = 0;
  }

 private:
  struct Entry {
    std::string key;
    std::size_t size;
  };

  void evict_one() {
    const Entry& victim = order_.back();
    used_ -= victim.size;
    index_.erase(victim.key);
    order_.pop_back();
    ++evictions_;
  }

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<Entry> order_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace hispar::cdn
