#include "cdn/hierarchy.h"

#include <cmath>

namespace hispar::cdn {

std::string_view to_string(CacheLevel level) {
  switch (level) {
    case CacheLevel::kEdge: return "edge";
    case CacheLevel::kParent: return "parent";
    case CacheLevel::kOrigin: return "origin";
  }
  return "unknown";
}

CdnHierarchy::CdnHierarchy(const CdnRegistry& registry,
                           const net::LatencyModel& latency,
                           CdnHierarchyConfig config)
    : registry_(&registry), latency_(&latency), config_(config) {}

namespace {
double jittered(double median_ms, double sigma, hispar::util::Rng& rng) {
  return rng.lognormal(std::log(median_ms), sigma);
}

double warmth(double request_rate, double tc, double exponent) {
  const double s = std::max(0.0, request_rate) * tc;
  if (s <= 0.0) return 0.0;
  const double sg = std::pow(s, exponent);
  return sg / (1.0 + sg);
}
}  // namespace

double CdnHierarchy::edge_warm_probability(double request_rate) const {
  return warmth(request_rate, config_.edge_tc_s, config_.warmth_exponent);
}

double CdnHierarchy::parent_warm_probability(double request_rate) const {
  return warmth(request_rate, config_.parent_tc_s, config_.warmth_exponent);
}

CdnResponse CdnHierarchy::serve(const CdnProvider& provider,
                                const CdnRequest& request, util::Rng& rng) {
  ++requests_;
  const net::Region edge =
      config_.edge_pin
          ? *config_.edge_pin
          : registry_->nearest_edge(provider, request.client, *latency_);

  CdnResponse response;
  response.edge_region = edge;

  if (!request.cacheable) {
    // Proxied straight through to the origin over persistent connections.
    response.served_from = CacheLevel::kOrigin;
    response.wait_ms =
        jittered(config_.edge_processing_ms, config_.processing_sigma, rng) +
        latency_->rtt(edge, request.origin, rng) +
        jittered(config_.origin_processing_ms, config_.processing_sigma, rng);
    if (provider.emits_x_cache) response.x_cache = "MISS";
    count(CacheLevel::kOrigin, false, response.wait_ms);
    return response;
  }

  const std::uint32_t lru_key =
      static_cast<std::uint32_t>(provider.id) *
          static_cast<std::uint32_t>(net::kRegionCount) +
      static_cast<std::uint32_t>(edge);
  auto [it, inserted] = edge_lrus_.try_emplace(lru_key, config_.edge_lru_bytes);
  LruCache& lru = it->second;

  const bool warm_from_own_traffic = lru.touch(request.url);
  const bool warm_from_world = rng.chance(edge_warm_probability(
      request.request_rate));

  if (warm_from_own_traffic || warm_from_world) {
    ++edge_hits_;
    lru.insert(request.url, static_cast<std::size_t>(request.size_bytes));
    response.served_from = CacheLevel::kEdge;
    response.wait_ms =
        jittered(config_.edge_processing_ms, config_.processing_sigma, rng);
    if (provider.emits_x_cache) response.x_cache = "HIT";
    count(CacheLevel::kEdge, warm_from_own_traffic, response.wait_ms);
    return response;
  }

  // Edge miss: consult the parent tier. Parent caches are typically in
  // the same region as the edge (or one hop away); we charge one
  // intra-region RTT.
  lru.insert(request.url, static_cast<std::size_t>(request.size_bytes));
  const double edge_parent_rtt = latency_->rtt(edge, edge, rng);
  if (rng.chance(parent_warm_probability(request.request_rate))) {
    response.served_from = CacheLevel::kParent;
    response.wait_ms =
        jittered(config_.edge_processing_ms, config_.processing_sigma, rng) +
        edge_parent_rtt +
        jittered(config_.parent_processing_ms, config_.processing_sigma, rng);
    if (provider.emits_x_cache) response.x_cache = "MISS";
    count(CacheLevel::kParent, false, response.wait_ms);
    return response;
  }

  // Parent miss: fetch from the origin over the backhaul.
  response.served_from = CacheLevel::kOrigin;
  response.wait_ms =
      jittered(config_.edge_processing_ms, config_.processing_sigma, rng) +
      edge_parent_rtt +
      jittered(config_.parent_processing_ms, config_.processing_sigma, rng) +
      latency_->rtt(edge, request.origin, rng) +
      jittered(config_.origin_processing_ms, config_.processing_sigma, rng);
  if (provider.emits_x_cache) response.x_cache = "MISS";
  count(CacheLevel::kOrigin, false, response.wait_ms);
  return response;
}

CdnResponse CdnHierarchy::serve_from_origin(const CdnRequest& request,
                                            util::Rng& rng) {
  ++requests_;
  CdnResponse response;
  response.served_from = CacheLevel::kOrigin;
  response.edge_region = request.origin;
  // The client talks to the origin directly; propagation is accounted by
  // the page-load scheduler (client<->server path), so wait here is just
  // server think time.
  response.wait_ms =
      jittered(config_.origin_processing_ms, config_.processing_sigma, rng) +
      0.5 * latency_->rtt(request.origin, request.origin, rng);
  count(CacheLevel::kOrigin, false, response.wait_ms);
  return response;
}

void CdnHierarchy::count(CacheLevel level, bool lru_hit, double wait_ms) {
  switch (level) {
    case CacheLevel::kEdge:
      if (lru_hit) ++edge_lru_hits_;
      break;
    case CacheLevel::kParent:
      ++parent_hits_;
      break;
    case CacheLevel::kOrigin:
      ++origin_fetches_;
      break;
  }
  if (metric_requests_ == nullptr) return;
  ++*metric_requests_;
  switch (level) {
    case CacheLevel::kEdge:
      ++*metric_edge_hits_;
      if (lru_hit) ++*metric_edge_lru_hits_;
      break;
    case CacheLevel::kParent:
      ++*metric_parent_hits_;
      break;
    case CacheLevel::kOrigin:
      ++*metric_origin_fetches_;
      break;
  }
  metric_wait_ms_->observe(wait_ms);
}

std::uint64_t CdnHierarchy::lru_evictions() const {
  std::uint64_t total = 0;
  for (const auto& [key, lru] : edge_lrus_) total += lru.evictions();
  return total;
}

void CdnHierarchy::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_requests_ = nullptr;
    metric_edge_hits_ = nullptr;
    metric_edge_lru_hits_ = nullptr;
    metric_parent_hits_ = nullptr;
    metric_origin_fetches_ = nullptr;
    metric_wait_ms_ = nullptr;
    return;
  }
  metric_requests_ = &metrics->counter("cdn.requests");
  metric_edge_hits_ = &metrics->counter("cdn.edge_hits");
  metric_edge_lru_hits_ = &metrics->counter("cdn.edge_lru_hits");
  metric_parent_hits_ = &metrics->counter("cdn.parent_hits");
  metric_origin_fetches_ = &metrics->counter("cdn.origin_fetches");
  metric_wait_ms_ = &metrics->histogram("cdn.wait_ms", obs::time_ms_buckets());
}

void CdnHierarchy::reset_stats() {
  requests_ = 0;
  edge_hits_ = 0;
  edge_lru_hits_ = 0;
  parent_hits_ = 0;
  origin_fetches_ = 0;
}

}  // namespace hispar::cdn
