#include "cdn/hierarchy.h"

#include <cmath>

namespace hispar::cdn {

std::string_view to_string(CacheLevel level) {
  switch (level) {
    case CacheLevel::kEdge: return "edge";
    case CacheLevel::kParent: return "parent";
    case CacheLevel::kOrigin: return "origin";
  }
  return "unknown";
}

CdnHierarchy::CdnHierarchy(const CdnRegistry& registry,
                           const net::LatencyModel& latency,
                           CdnHierarchyConfig config)
    : registry_(&registry), latency_(&latency), config_(config) {}

namespace {
double jittered(double median_ms, double sigma, hispar::util::Rng& rng) {
  return rng.lognormal(std::log(median_ms), sigma);
}

double warmth(double request_rate, double tc, double exponent) {
  const double s = std::max(0.0, request_rate) * tc;
  if (s <= 0.0) return 0.0;
  const double sg = std::pow(s, exponent);
  return sg / (1.0 + sg);
}
}  // namespace

double CdnHierarchy::edge_warm_probability(double request_rate) const {
  return warmth(request_rate, config_.edge_tc_s, config_.warmth_exponent);
}

double CdnHierarchy::parent_warm_probability(double request_rate) const {
  return warmth(request_rate, config_.parent_tc_s, config_.warmth_exponent);
}

CdnResponse CdnHierarchy::serve(const CdnProvider& provider,
                                const CdnRequest& request, util::Rng& rng) {
  ++requests_;
  const net::Region edge =
      registry_->nearest_edge(provider, request.client, *latency_);

  CdnResponse response;
  response.edge_region = edge;

  if (!request.cacheable) {
    // Proxied straight through to the origin over persistent connections.
    response.served_from = CacheLevel::kOrigin;
    response.wait_ms =
        jittered(config_.edge_processing_ms, config_.processing_sigma, rng) +
        latency_->rtt(edge, request.origin, rng) +
        jittered(config_.origin_processing_ms, config_.processing_sigma, rng);
    if (provider.emits_x_cache) response.x_cache = "MISS";
    return response;
  }

  const std::string lru_key = provider.name + "|" + to_string(edge).data();
  auto [it, inserted] = edge_lrus_.try_emplace(lru_key, config_.edge_lru_bytes);
  LruCache& lru = it->second;

  const bool warm_from_own_traffic = lru.touch(request.url);
  const bool warm_from_world = rng.chance(edge_warm_probability(
      request.request_rate));

  if (warm_from_own_traffic || warm_from_world) {
    ++edge_hits_;
    lru.insert(request.url, static_cast<std::size_t>(request.size_bytes));
    response.served_from = CacheLevel::kEdge;
    response.wait_ms =
        jittered(config_.edge_processing_ms, config_.processing_sigma, rng);
    if (provider.emits_x_cache) response.x_cache = "HIT";
    return response;
  }

  // Edge miss: consult the parent tier. Parent caches are typically in
  // the same region as the edge (or one hop away); we charge one
  // intra-region RTT.
  lru.insert(request.url, static_cast<std::size_t>(request.size_bytes));
  const double edge_parent_rtt = latency_->rtt(edge, edge, rng);
  if (rng.chance(parent_warm_probability(request.request_rate))) {
    response.served_from = CacheLevel::kParent;
    response.wait_ms =
        jittered(config_.edge_processing_ms, config_.processing_sigma, rng) +
        edge_parent_rtt +
        jittered(config_.parent_processing_ms, config_.processing_sigma, rng);
    if (provider.emits_x_cache) response.x_cache = "MISS";
    return response;
  }

  // Parent miss: fetch from the origin over the backhaul.
  response.served_from = CacheLevel::kOrigin;
  response.wait_ms =
      jittered(config_.edge_processing_ms, config_.processing_sigma, rng) +
      edge_parent_rtt +
      jittered(config_.parent_processing_ms, config_.processing_sigma, rng) +
      latency_->rtt(edge, request.origin, rng) +
      jittered(config_.origin_processing_ms, config_.processing_sigma, rng);
  if (provider.emits_x_cache) response.x_cache = "MISS";
  return response;
}

CdnResponse CdnHierarchy::serve_from_origin(const CdnRequest& request,
                                            util::Rng& rng) {
  ++requests_;
  CdnResponse response;
  response.served_from = CacheLevel::kOrigin;
  response.edge_region = request.origin;
  // The client talks to the origin directly; propagation is accounted by
  // the page-load scheduler (client<->server path), so wait here is just
  // server think time.
  response.wait_ms =
      jittered(config_.origin_processing_ms, config_.processing_sigma, rng) +
      0.5 * latency_->rtt(request.origin, request.origin, rng);
  return response;
}

void CdnHierarchy::reset_stats() {
  requests_ = 0;
  edge_hits_ = 0;
}

}  // namespace hispar::cdn
