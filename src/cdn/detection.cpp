#include "cdn/detection.h"

#include "util/strings.h"

namespace hispar::cdn {

CdnDetector::CdnDetector(const CdnRegistry& registry) : registry_(&registry) {}

DetectionResult CdnDetector::classify(const ObservedFetch& fetch) const {
  for (const CdnProvider& p : registry_->providers()) {
    for (const std::string& pattern : p.host_patterns) {
      if (!pattern.empty() && util::glob_match(pattern, fetch.host))
        return {true, p.id, "host-pattern"};
    }
    if (fetch.dns_cname) {
      for (const std::string& pattern : p.cname_patterns) {
        if (!pattern.empty() && util::glob_match(pattern, *fetch.dns_cname))
          return {true, p.id, "cname"};
      }
    }
    if (!p.header_signature.empty()) {
      for (const std::string& header : fetch.response_headers) {
        if (util::contains_ci(header, p.header_signature))
          return {true, p.id, "header"};
      }
    }
  }
  return {};
}

}  // namespace hispar::cdn
