// CDN provider registry.
//
// §5.1 identifies "more than 40 different CDNs" via the cdnfinder
// heuristics (domain-name patterns, HTTP headers, CNAMEs). We carry a
// registry of providers with their detection patterns, whether they emit
// an X-Cache header (the paper uses X-Cache, supported by at least Akamai
// and Fastly, to classify hits), and their edge footprint.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/latency.h"

namespace hispar::cdn {

struct CdnProvider {
  int id = -1;
  std::string name;
  // Host glob patterns that identify the provider (e.g. "*.akamaiedge.net").
  std::vector<std::string> host_patterns;
  // CNAME target patterns.
  std::vector<std::string> cname_patterns;
  // Distinctive response header ("server: cloudflare", "x-served-by", ...).
  std::string header_signature;
  bool emits_x_cache = false;
  // Regions where the provider has edge presence; requests from a region
  // without presence are served from the nearest listed region.
  std::vector<net::Region> edge_regions;
};

class CdnRegistry {
 public:
  // Builds the default registry of 40+ providers.
  static CdnRegistry standard();

  const CdnProvider& provider(int id) const;
  const CdnProvider* find_by_name(std::string_view name) const;
  std::span<const CdnProvider> providers() const { return providers_; }
  std::size_t size() const { return providers_.size(); }

  // Nearest edge region of `provider` to `client`, by base RTT.
  net::Region nearest_edge(const CdnProvider& provider, net::Region client,
                           const net::LatencyModel& latency) const;

 private:
  std::vector<CdnProvider> providers_;
};

}  // namespace hispar::cdn
