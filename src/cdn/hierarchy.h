// CDN cache hierarchy (edge -> parent -> origin).
//
// §5.1 and §5.6 rest on two CDN behaviours:
//  * popular objects (disproportionately those on landing pages) are more
//    likely to be warm at the edge — the paper measures 16% more X-Cache
//    hits for landing-page objects;
//  * a miss travels up the hierarchy ("back-office traffic"), and because
//    inter-cache and cache-origin connections are persistent, the extra
//    cost appears as server `wait` time, which the paper finds is 20%
//    higher for internal-page objects (Fig. 7).
//
// Each provider edge (per region) combines:
//  * a deterministic LRU for objects this simulation itself requested
//    recently (temporal locality within a measurement run), and
//  * a heterogeneous-PoP generalization of Che's characteristic-time
//    approximation for the steady-state warmth contributed by the rest
//    of the Internet's traffic. A single Che cache gives
//    P[warm] = 1 - exp(-r * T_c), which is nearly a step function of the
//    request rate r; a provider's edge in a region is really many PoPs
//    and cache tiers with characteristic times spread over decades, so
//    the aggregate hit probability varies smoothly with log r. We use
//    P[warm] = s^g / (1 + s^g) with s = r * T_c and g < 1, which equals
//    1/2 at r = 1/T_c like Che's model but transitions over ~1/g decades.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "cdn/lru_cache.h"
#include "cdn/provider.h"
#include "net/latency.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace hispar::cdn {

enum class CacheLevel : std::uint8_t { kEdge, kParent, kOrigin };

std::string_view to_string(CacheLevel level);

struct CdnRequest {
  std::string url;               // cache key
  double size_bytes = 0.0;
  // Steady-state requests/second this object receives globally; derived
  // from site traffic and object popularity by the web model.
  double request_rate = 0.01;
  bool cacheable = true;
  net::Region client = net::Region::kNorthAmerica;
  net::Region origin = net::Region::kNorthAmerica;
};

struct CdnResponse {
  CacheLevel served_from = CacheLevel::kEdge;
  // Server-side time until first response byte, excluding the
  // client<->edge network path (maps to the HAR `wait` phase).
  double wait_ms = 0.0;
  // "HIT"/"MISS" when the provider emits X-Cache; empty otherwise.
  std::string x_cache;
  net::Region edge_region = net::Region::kNorthAmerica;
};

struct CdnHierarchyConfig {
  // Characteristic times (seconds): an object requested at rate r is
  // warm with probability s^g/(1+s^g), s = r * tc. Parent caches
  // aggregate many edges and thus behave like much larger caches.
  double edge_tc_s = 3600.0;
  double parent_tc_s = 20000.0;
  // Smoothness exponent g of the heterogeneous warmth curve.
  double warmth_exponent = 0.12;
  // Per-tier processing (lognormal medians, ms; sigma below). Spread
  // over PoPs/load levels — this smooths the wait-time CDF (Fig. 7).
  double edge_processing_ms = 8.0;
  double parent_processing_ms = 16.0;
  double origin_processing_ms = 35.0;
  double processing_sigma = 0.75;
  // Deterministic per-edge LRU capacity for this simulation's own
  // requests.
  std::size_t edge_lru_bytes = 256ull * 1024 * 1024;
  // Pin every cacheable request to this edge region instead of routing
  // to the nearest one — models anycast mis-routing and vantage
  // profiles whose traffic lands on a fixed PoP. nullopt keeps
  // nearest-edge routing (historical behaviour).
  std::optional<net::Region> edge_pin;
};

class CdnHierarchy {
 public:
  CdnHierarchy(const CdnRegistry& registry, const net::LatencyModel& latency,
               CdnHierarchyConfig config = {});

  // Serve `request` through `provider`. Non-cacheable requests always go
  // to the origin (the CDN proxies them).
  CdnResponse serve(const CdnProvider& provider, const CdnRequest& request,
                    util::Rng& rng);

  // Direct-to-origin service (site not using a CDN for this object).
  CdnResponse serve_from_origin(const CdnRequest& request, util::Rng& rng);

  double edge_warm_probability(double request_rate) const;
  double parent_warm_probability(double request_rate) const;

  std::uint64_t requests() const { return requests_; }
  std::uint64_t edge_hits() const { return edge_hits_; }
  // Where the back-office traffic went (§5.6): edge hits served by this
  // run's own deterministic LRU layer vs. the rest of the hierarchy.
  std::uint64_t edge_lru_hits() const { return edge_lru_hits_; }
  std::uint64_t parent_hits() const { return parent_hits_; }
  std::uint64_t origin_fetches() const { return origin_fetches_; }
  // Total LRU evictions across every (provider, region) edge — summed
  // on demand; cache-pressure evidence for the run report.
  std::uint64_t lru_evictions() const;
  void reset_stats();

  // Observability hook: pre-resolves counter/histogram handles into
  // `metrics` (`cdn.requests`, per-level hit counters, `cdn.wait_ms`);
  // serve paths update them behind one null check. Pass nullptr to
  // detach.
  void set_metrics(obs::MetricsRegistry* metrics);

  const CdnHierarchyConfig& config() const { return config_; }

 private:
  void count(CacheLevel level, bool lru_hit, double wait_ms);

  const CdnRegistry* registry_;
  const net::LatencyModel* latency_;
  CdnHierarchyConfig config_;
  // LRU per (provider, edge region), keyed by the provider's dense id
  // times the region count plus the edge region — an integer key on a
  // hot path that used to build a `name + "|" + region` string per
  // cacheable request. Stats over this map (lru_evictions) are sums,
  // so iteration order is irrelevant.
  std::unordered_map<std::uint32_t, LruCache> edge_lrus_;
  std::uint64_t requests_ = 0;
  std::uint64_t edge_hits_ = 0;
  std::uint64_t edge_lru_hits_ = 0;
  std::uint64_t parent_hits_ = 0;
  std::uint64_t origin_fetches_ = 0;
  // Pre-resolved metric handles (see set_metrics); null when detached.
  std::uint64_t* metric_requests_ = nullptr;
  std::uint64_t* metric_edge_hits_ = nullptr;
  std::uint64_t* metric_edge_lru_hits_ = nullptr;
  std::uint64_t* metric_parent_hits_ = nullptr;
  std::uint64_t* metric_origin_fetches_ = nullptr;
  obs::Histogram* metric_wait_ms_ = nullptr;
};

}  // namespace hispar::cdn
