// Web crawler.
//
// Used two ways in the paper:
//  * search engines crawl sites exhaustively (except robots.txt-excluded
//    pages) to build their index (§3);
//  * the authors run a "limited exhaustive crawl" of five sites (§4):
//    follow links from the landing page until >= 5000 unique URLs are
//    discovered, then sample 500 for fetching.
//
// The crawler walks the link graph only (page_internal_links); it does
// not build page objects, matching how URL discovery is far cheaper than
// page fetching.
#pragma once

#include <cstddef>
#include <vector>

#include "web/site.h"

namespace hispar::search {

struct CrawlConfig {
  std::size_t max_unique_pages = 5000;
  bool respect_robots = true;
  // Breadth-first frontier cap as a safety valve.
  std::size_t max_frontier = 200000;
};

struct CrawlResult {
  // Discovered internal page indices, in BFS discovery order. The
  // landing page (index 0) is the seed and is not listed.
  std::vector<std::size_t> pages;
  std::size_t link_fetches = 0;  // pages whose links were expanded
  std::size_t robots_skipped = 0;
};

CrawlResult crawl_site(const web::WebSite& site, const CrawlConfig& config);

}  // namespace hispar::search
