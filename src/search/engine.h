// Search-engine API ("site:" queries) with pricing.
//
// Models the Google Custom Search / Bing Web Search APIs the paper uses
// to discover internal pages (§3, §7):
//  * a `site:domain` query returns up to `results_per_query` ranked,
//    English-filtered web-page URLs per result page;
//  * Google charges $5 per 1000 queries, Bing $3 (§7: "Generating a list
//    of 100,000 URLs using Google would require at least 10,000 queries
//    and would cost $50... our cost has consistently been around $70");
//  * many sites return fewer than 10 distinct results per query, so real
//    costs exceed the lower bound;
//  * results for non-English sites can be near-empty (Hispar drops
//    sites with too few English results).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "search/index.h"
#include "web/generator.h"

namespace hispar::search {

enum class SearchProvider { kGoogle, kBing };

struct SearchEngineConfig {
  SearchProvider provider = SearchProvider::kGoogle;
  int results_per_query = 10;
  bool english_only = true;  // the paper restricts results to English
  SiteIndexConfig index;
};

struct SearchResult {
  std::string url;
  std::size_t page_index = 0;
};

// Cost of API usage (§7).
double query_price_usd(SearchProvider provider);  // per query

class SearchEngine {
 public:
  SearchEngine(const web::SyntheticWeb& web, SearchEngineConfig config = {});

  // Issue `site:domain` queries until `max_results` unique result URLs
  // are collected or results are exhausted. Every result page consumed
  // counts as one billed query. `week` selects the index snapshot.
  std::vector<SearchResult> site_query(const std::string& domain,
                                       std::size_t max_results,
                                       std::uint64_t week);

  std::uint64_t queries_issued() const { return queries_; }
  double spend_usd() const;
  void reset_billing() { queries_ = 0; }

  const SearchEngineConfig& config() const { return config_; }

 private:
  const web::SyntheticWeb* web_;
  SearchEngineConfig config_;
  std::uint64_t queries_ = 0;
};

}  // namespace hispar::search
