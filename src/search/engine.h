// Search-engine API ("site:" queries) with pricing.
//
// Models the Google Custom Search / Bing Web Search APIs the paper uses
// to discover internal pages (§3, §7):
//  * a `site:domain` query returns up to `results_per_query` ranked,
//    English-filtered web-page URLs per result page;
//  * Google charges $5 per 1000 queries, Bing $3 (§7: "Generating a list
//    of 100,000 URLs using Google would require at least 10,000 queries
//    and would cost $50... our cost has consistently been around $70");
//  * many sites return fewer than 10 distinct results per query, so real
//    costs exceed the lower bound;
//  * results for non-English sites can be near-empty (Hispar drops
//    sites with too few English results).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/faults.h"
#include "search/index.h"
#include "web/generator.h"

namespace hispar::search {

enum class SearchProvider { kGoogle, kBing };

struct SearchEngineConfig {
  SearchProvider provider = SearchProvider::kGoogle;
  int results_per_query = 10;
  bool english_only = true;  // the paper restricts results to English
  SiteIndexConfig index;
};

struct SearchResult {
  std::string url;
  std::size_t page_index = 0;
};

// Cost of API usage (§7).
double query_price_usd(SearchProvider provider);  // per query

const char* provider_name(SearchProvider provider);  // "google" / "bing"

// One `site:` query attempt's outcome under fault injection. Billing is
// per result page actually answered by the API: timed-out / quota /
// rate-limited calls are not billed, an empty result page is (the API
// did the work).
struct SiteQueryOutcome {
  std::vector<SearchResult> results;
  bool ok = true;  // false: the attempt aborted on a hard API failure
  net::SearchFaultKind failure = net::SearchFaultKind::kNone;
  std::uint64_t queries_billed = 0;
  bool truncated = false;  // an empty result page ended pagination early
};

class SearchEngine {
 public:
  SearchEngine(const web::SyntheticWeb& web, SearchEngineConfig config = {});

  // Issue `site:domain` queries until `max_results` unique result URLs
  // are collected or results are exhausted. Every result page consumed
  // counts as one billed query. `week` selects the index snapshot.
  std::vector<SearchResult> site_query(const std::string& domain,
                                       std::size_t max_results,
                                       std::uint64_t week);

  // Same query, with an optional fault oracle consulted once per result
  // page. With `faults == nullptr` this is exactly site_query (same
  // results, same billing) plus per-attempt accounting.
  SiteQueryOutcome site_query_outcome(const std::string& domain,
                                      std::size_t max_results,
                                      std::uint64_t week,
                                      net::SearchFaultInjector* faults);

  std::uint64_t queries_issued() const { return queries_; }
  double spend_usd() const;
  void reset_billing() { queries_ = 0; }
  // Fold queries billed elsewhere (e.g. by a builder's internal engine
  // with a narrowed crawl budget) into this engine's meter, so the
  // owner of the injected engine sees real spend.
  void add_billed_queries(std::uint64_t queries) { queries_ += queries; }

  const SearchEngineConfig& config() const { return config_; }

 private:
  const web::SyntheticWeb* web_;
  SearchEngineConfig config_;
  std::uint64_t queries_ = 0;
};

}  // namespace hispar::search
