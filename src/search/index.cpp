#include "search/index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "search/crawler.h"
#include "util/rng.h"

namespace hispar::search {

namespace {

double churn_sigma(const web::WebSite& site, const SiteIndexConfig& config) {
  switch (site.profile().category) {
    case web::SiteCategory::kNews:
    case web::SiteCategory::kSports:
      return config.news_churn_sigma;
    case web::SiteCategory::kReference:
    case web::SiteCategory::kScience:
      return config.base_churn_sigma * 0.5;
    default:
      return config.base_churn_sigma;
  }
}

}  // namespace

std::vector<IndexedPage> build_site_index(const web::WebSite& site,
                                          std::uint64_t week,
                                          const SiteIndexConfig& config) {
  CrawlConfig crawl_config;
  crawl_config.max_unique_pages = config.crawl_budget;
  const CrawlResult crawl = crawl_site(site, crawl_config);

  // In-crawl link counts contribute a PageRank-ish bonus.
  std::unordered_map<std::size_t, int> inlinks;
  for (std::size_t page : crawl.pages)
    for (std::size_t target : site.page_internal_links(page)) ++inlinks[target];

  // Freshness jitter is keyed by (site, week, page): a different subset
  // of pages is "hot" every week.
  util::Rng week_rng(util::fnv1a(site.domain()) ^ (week * 0x9e3779b97f4a7c15ULL));
  const double sigma = churn_sigma(site, config);

  std::vector<IndexedPage> index;
  index.reserve(crawl.pages.size());
  for (std::size_t page : crawl.pages) {
    util::Rng page_rng = week_rng.fork(page);
    IndexedPage entry;
    entry.page_index = page;
    entry.english = site.page_is_english(page);
    const double popularity = site.page_visit_rate(page);
    const double link_bonus =
        1.0 + 0.15 * std::log1p(static_cast<double>(inlinks[page]));
    entry.score = popularity * link_bonus *
                  std::exp(page_rng.normal(0.0, sigma));
    index.push_back(entry);
  }
  std::sort(index.begin(), index.end(),
            [](const IndexedPage& a, const IndexedPage& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.page_index < b.page_index;
            });
  return index;
}

}  // namespace hispar::search
