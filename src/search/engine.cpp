#include "search/engine.h"

#include <algorithm>
#include <set>

namespace hispar::search {

double query_price_usd(SearchProvider provider) {
  switch (provider) {
    case SearchProvider::kGoogle: return 5.0 / 1000.0;
    case SearchProvider::kBing: return 3.0 / 1000.0;
  }
  return 0.0;
}

const char* provider_name(SearchProvider provider) {
  switch (provider) {
    case SearchProvider::kGoogle: return "google";
    case SearchProvider::kBing: return "bing";
  }
  return "unknown";
}

SearchEngine::SearchEngine(const web::SyntheticWeb& web,
                           SearchEngineConfig config)
    : web_(&web), config_(config) {}

std::vector<SearchResult> SearchEngine::site_query(const std::string& domain,
                                                   std::size_t max_results,
                                                   std::uint64_t week) {
  return site_query_outcome(domain, max_results, week, nullptr).results;
}

SiteQueryOutcome SearchEngine::site_query_outcome(
    const std::string& domain, std::size_t max_results, std::uint64_t week,
    net::SearchFaultInjector* faults) {
  SiteQueryOutcome out;
  // Fetch one result page through the fault oracle. Returns false when
  // the attempt must stop: a hard failure (timeout/quota/429, not
  // billed) or an empty page (billed — the API answered).
  const auto next_page = [&]() -> bool {
    const net::SearchFaultKind fault = faults == nullptr
                                           ? net::SearchFaultKind::kNone
                                           : faults->page_fault();
    if (fault == net::SearchFaultKind::kQueryTimeout ||
        fault == net::SearchFaultKind::kQuotaExceeded ||
        fault == net::SearchFaultKind::kRateLimited) {
      out.ok = false;
      out.failure = fault;
      return false;
    }
    ++queries_;
    ++out.queries_billed;
    if (fault == net::SearchFaultKind::kEmptyPage) {
      out.truncated = true;
      return false;
    }
    return true;
  };

  if (!next_page()) return out;  // the first result page is always fetched
  const web::WebSite* site = web_->find_site(domain);
  if (site == nullptr) return out;  // unknown domain: billed, no results

  const std::vector<IndexedPage> index =
      build_site_index(*site, week, config_.index);

  // The API serves up to `results_per_query` post-filter results per
  // billed query; a sparse site still bills the (short or empty) last
  // result page, which is why real per-list costs exceed the
  // 10-results-per-query lower bound (§7).
  std::set<std::string> seen_urls;
  std::size_t in_current_page = 0;
  for (const IndexedPage& entry : index) {
    if (out.results.size() >= max_results) break;
    if (config_.english_only && !entry.english) continue;
    const std::string url = site->page_url(entry.page_index).str();
    if (!seen_urls.insert(url).second) continue;
    if (in_current_page ==
        static_cast<std::size_t>(config_.results_per_query)) {
      if (!next_page()) return out;  // fetch the next result page
      in_current_page = 0;
    }
    out.results.push_back(SearchResult{url, entry.page_index});
    ++in_current_page;
  }
  return out;
}

double SearchEngine::spend_usd() const {
  return static_cast<double>(queries_) * query_price_usd(config_.provider);
}

}  // namespace hispar::search
