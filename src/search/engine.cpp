#include "search/engine.h"

#include <algorithm>
#include <set>

namespace hispar::search {

double query_price_usd(SearchProvider provider) {
  switch (provider) {
    case SearchProvider::kGoogle: return 5.0 / 1000.0;
    case SearchProvider::kBing: return 3.0 / 1000.0;
  }
  return 0.0;
}

SearchEngine::SearchEngine(const web::SyntheticWeb& web,
                           SearchEngineConfig config)
    : web_(&web), config_(config) {}

std::vector<SearchResult> SearchEngine::site_query(const std::string& domain,
                                                   std::size_t max_results,
                                                   std::uint64_t week) {
  std::vector<SearchResult> results;
  const web::WebSite* site = web_->find_site(domain);
  if (site == nullptr) {
    ++queries_;  // a query against an unknown domain is still billed
    return results;
  }

  const std::vector<IndexedPage> index =
      build_site_index(*site, week, config_.index);

  // The API serves up to `results_per_query` post-filter results per
  // billed query; a sparse site still bills the (short or empty) last
  // result page, which is why real per-list costs exceed the
  // 10-results-per-query lower bound (§7).
  std::set<std::string> seen_urls;
  std::size_t in_current_page = 0;
  ++queries_;  // the first result page is always fetched
  for (const IndexedPage& entry : index) {
    if (results.size() >= max_results) break;
    if (config_.english_only && !entry.english) continue;
    const std::string url = site->page_url(entry.page_index).str();
    if (!seen_urls.insert(url).second) continue;
    if (in_current_page ==
        static_cast<std::size_t>(config_.results_per_query)) {
      ++queries_;  // fetch the next result page
      in_current_page = 0;
    }
    results.push_back(SearchResult{url, entry.page_index});
    ++in_current_page;
  }
  return results;
}

double SearchEngine::spend_usd() const {
  return static_cast<double>(queries_) * query_price_usd(config_.provider);
}

}  // namespace hispar::search
