#include "search/crawler.h"

#include <deque>
#include <unordered_set>

namespace hispar::search {

CrawlResult crawl_site(const web::WebSite& site, const CrawlConfig& config) {
  CrawlResult result;
  std::unordered_set<std::size_t> seen;
  std::deque<std::size_t> frontier;
  frontier.push_back(0);  // landing page
  seen.insert(0);

  while (!frontier.empty() && result.pages.size() < config.max_unique_pages) {
    const std::size_t current = frontier.front();
    frontier.pop_front();
    ++result.link_fetches;
    for (std::size_t target : site.page_internal_links(current)) {
      if (seen.size() >= config.max_frontier) break;
      if (!seen.insert(target).second) continue;
      if (config.respect_robots && !site.robots().allows(target)) {
        ++result.robots_skipped;
        continue;
      }
      result.pages.push_back(target);
      if (result.pages.size() >= config.max_unique_pages) break;
      frontier.push_back(target);
    }
  }
  return result;
}

}  // namespace hispar::search
