// Search index.
//
// §3 ("Why use search engine results?"): search results combine
// exhaustive crawling, link-based ranking (PageRank) and user click/
// visit signals. The per-site index entry scores each crawled page by a
// blend of its visit rate (the dominant signal: "results are biased
// towards what people search for and click on") and its in-crawl link
// count, with week-dependent freshness jitter — news sites churn their
// headlines, so their result sets change more week over week (§3's 30%
// weekly bottom-level churn).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "web/site.h"

namespace hispar::search {

struct IndexedPage {
  std::size_t page_index = 0;
  double score = 0.0;
  bool english = true;
};

struct SiteIndexConfig {
  std::size_t crawl_budget = 3000;  // pages discovered per site
  // Week-over-week score jitter: sigma of the lognormal freshness factor
  // by category volatility (news headlines vs. reference articles).
  double base_churn_sigma = 0.55;
  double news_churn_sigma = 1.25;
};

// Index for one site at one point in time (`week` selects the freshness
// draw). Results are sorted by descending score.
std::vector<IndexedPage> build_site_index(const web::WebSite& site,
                                          std::uint64_t week,
                                          const SiteIndexConfig& config = {});

}  // namespace hispar::search
