// Invariant oracles: reusable checks of the repo's determinism
// contracts, run against generated configs.
//
// Each oracle returns std::nullopt when the invariant holds, or a
// message describing the violation (first differing byte, mismatching
// model field) — the exact shape testkit::Property expects, so tests
// plug an oracle plus a generator straight into testkit::check().
//
// The catalog:
//  * jobs identity     — every artifact byte identical for --jobs 1 vs N
//    (per engine: measure, list-build, vantage, session);
//  * resume identity   — a torn checkpoint (completed blocks + garbage
//    tail) resumes to bytes identical to an uninterrupted run;
//  * run determinism   — two fresh runs of one config agree byte-wise
//    (catches hidden global state);
//  * obs passthrough   — toggling observability never changes a
//    measurement byte (feature-off ⇒ bytes untouched);
//  * grammar round-trip — parse/str is a fixpoint for the fault,
//    search-fault, chaos and vantage spec grammars;
//  * model oracles     — HttpCache, cdn::LruCache and CircuitBreaker
//    agree with simple reference models over generated op sequences.
//
// Campaign oracles run over a WorldPool world: a small synthetic web
// plus a built Hispar list, cached per shape because web construction
// dwarfs the tiny campaigns the oracles run.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "core/hispar.h"
#include "core/list_build.h"
#include "core/measurement.h"
#include "core/session.h"
#include "core/vantage.h"
#include "testkit/gen.h"

namespace hispar::testkit {

struct WorldShape {
  std::size_t universe;
  std::uint64_t seed;
  std::size_t third_party_tail;
  std::size_t list_sites;
  std::size_t urls_per_site;
  std::size_t min_internal_results;
};

struct World {
  std::unique_ptr<web::SyntheticWeb> web;
  std::unique_ptr<toplist::TopListFactory> toplists;
  std::unique_ptr<search::SearchEngine> engine;
  core::HisparList list;
};

// Lazily builds and caches one World per shape; `pick` draws a shape
// index from a Gen so generated cases spread across shapes while
// construction cost is paid once per shape per process.
class WorldPool {
 public:
  static constexpr std::size_t kShapeCount = 3;
  static const std::array<WorldShape, kShapeCount>& shapes();

  const World& at(std::size_t shape);
  const World& pick(Gen& gen) { return at(gen.index(kShapeCount)); }

 private:
  std::array<std::unique_ptr<World>, kShapeCount> worlds_;
};

// --- Artifact-byte runners ---
// Run the engine over the world's list and return every artifact byte
// (results CSV, then metrics JSON + trace JSON when observability is
// on). These are what the identity oracles compare.

std::string measure_bytes(const World& world, core::CampaignConfig config);
std::string listbuild_bytes(const World& world, core::ListBuildConfig config);
std::string vantage_bytes(const World& world,
                          core::VantageCampaignConfig config);
std::string session_bytes(const World& world, core::SessionConfig config);

// --- Engine identity oracles ---

std::optional<std::string> check_measure_jobs_identity(
    const World& world, core::CampaignConfig config, std::size_t alt_jobs);
std::optional<std::string> check_listbuild_jobs_identity(
    const World& world, core::ListBuildConfig config, std::size_t alt_jobs);
std::optional<std::string> check_vantage_jobs_identity(
    const World& world, core::VantageCampaignConfig config,
    std::size_t alt_jobs);
std::optional<std::string> check_session_jobs_identity(
    const World& world, core::SessionConfig config, std::size_t alt_jobs);

// Resume oracles: reference run without checkpoint, full checkpointed
// run, then the checkpoint is torn (half the completed blocks kept, a
// garbage partial record appended) and the engine re-run against it.
// `scratch_path` is a caller-owned temp file path; it is removed on
// return.
std::optional<std::string> check_measure_resume_identity(
    const World& world, core::CampaignConfig config,
    const std::string& scratch_path);
std::optional<std::string> check_listbuild_resume_identity(
    const World& world, core::ListBuildConfig config,
    const std::string& scratch_path);
std::optional<std::string> check_vantage_resume_identity(
    const World& world, core::VantageCampaignConfig config,
    const std::string& scratch_path);
std::optional<std::string> check_session_resume_identity(
    const World& world, core::SessionConfig config,
    const std::string& scratch_path);

// Feature-off passthrough: observability on vs off must not change a
// byte of the measurement CSV (the session variant also covers the
// warm-hits CSV).
std::optional<std::string> check_measure_obs_passthrough(
    const World& world, core::CampaignConfig config);
std::optional<std::string> check_session_obs_passthrough(
    const World& world, core::SessionConfig config);

// Two fresh runs of the same config agree byte-wise.
std::optional<std::string> check_measure_run_determinism(
    const World& world, core::CampaignConfig config);

// --- Grammar round-trip oracles ---
// For a spec the grammar accepts: x = parse(spec) must satisfy
// parse(x.str()).str() == x.str() (printing is a fixpoint and re-parses
// to the same value).

std::optional<std::string> check_fault_roundtrip(const std::string& spec);
std::optional<std::string> check_search_fault_roundtrip(
    const std::string& spec);
std::optional<std::string> check_chaos_roundtrip(const std::string& spec);
std::optional<std::string> check_vantage_roundtrip(const std::string& spec);

// --- Reference-model state-machine oracles ---
// Drive the real component and a simple map/vector model with one
// generated op sequence; compare observable state after every op.

std::optional<std::string> check_lru_model(Gen& gen);
std::optional<std::string> check_http_cache_model(Gen& gen);
std::optional<std::string> check_breaker_model(Gen& gen);

}  // namespace hispar::testkit
