// Property runner: iterate a seeded property, shrink failures, and
// print a replayable seed line.
//
// A property is a function of one Gen; it returns std::nullopt on
// success or a human-readable violation message. The runner derives an
// independent case seed per iteration (forked from the master seed, so
// one master seed reproduces the whole run) and ramps the Gen size from
// min_size to max_size across iterations — early iterations are small
// and cheap, later ones reach deeper.
//
// On failure the runner shrinks by the size parameter: it re-runs the
// *same* case seed at smaller sizes and keeps the smallest size that
// still fails. Because every generator draws monotonically less at
// smaller sizes, this is the classic "generate smaller" shrink without
// per-type shrinkers. The resulting Counterexample carries a replay
// line ("seed=... size=...") that reconstructs the minimal failing Gen
// exactly; tests and the fuzz tool print it verbatim.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "testkit/gen.h"

namespace hispar::testkit {

struct PropertyConfig {
  std::string name;
  std::uint64_t seed = 1;
  int iters = 100;
  int min_size = 4;
  int max_size = 50;
};

struct Counterexample {
  bool failed = false;
  std::uint64_t case_seed = 0;  // Gen(case_seed, size) reproduces it
  int size = 0;
  int iteration = -1;           // which iteration of the master seed
  std::string message;          // the property's violation message
  std::string replay;           // one-line replay recipe

  explicit operator bool() const { return failed; }
};

using Property = std::function<std::optional<std::string>(Gen&)>;

// The case seed iteration `iter` of master seed `seed` runs under.
std::uint64_t case_seed(std::uint64_t seed, int iter);

// Runs `property` config.iters times; returns the first (shrunk)
// failure, or a default Counterexample (failed = false).
Counterexample check(const PropertyConfig& config, const Property& property);

// Greedy ddmin-style chunk deletion: returns the smallest input found
// for which `still_fails` stays true (it must be true for `input`
// itself). Bounded by `max_calls` predicate evaluations, so it is safe
// on expensive predicates.
std::string minimize_bytes(std::string input,
                           const std::function<bool(const std::string&)>&
                               still_fails,
                           int max_calls = 256);

}  // namespace hispar::testkit
