#include "testkit/oracles.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "browser/http_cache.h"
#include "cdn/lru_cache.h"
#include "core/analyses.h"
#include "core/serialization.h"
#include "net/faults.h"
#include "net/outage.h"
#include "net/vantage_profile.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace hispar::testkit {

namespace {

// First-divergence report: byte offset plus a short context window, so
// a CI log names the artifact region without dumping megabytes.
std::optional<std::string> bytes_equal(const std::string& what,
                                       const std::string& a,
                                       const std::string& b) {
  if (a == b) return std::nullopt;
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t at = 0;
  while (at < n && a[at] == b[at]) ++at;
  const auto context = [&](const std::string& s) {
    const std::size_t from = at < 40 ? 0 : at - 40;
    return s.substr(from, std::min<std::size_t>(80, s.size() - from));
  };
  return what + " differs at byte " + std::to_string(at) + " (sizes " +
         std::to_string(a.size()) + " vs " + std::to_string(b.size()) +
         "): \"..." + context(a) + "\" vs \"..." + context(b) + "\"";
}

void append_telemetry(std::ostream& out, const obs::RunTelemetry& telemetry) {
  telemetry.metrics.write_json(out);
  obs::write_chrome_trace(out, telemetry.spans);
}

// Tears a line-oriented checkpoint: keeps the header plus roughly half
// of the completed blocks (lines up to the keep-th `terminator` line)
// and appends a garbage partial record — exactly what a killed writer
// leaves behind.
void tear_checkpoint(const std::string& path, const char* terminator) {
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  std::size_t terminators = 0;
  for (const std::string& line : lines)
    if (line.rfind(terminator, 0) == 0) ++terminators;
  const std::size_t keep = terminators / 2;  // 0 keeps the header only

  std::ofstream out(path, std::ios::trunc);
  std::size_t seen = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i > 0 && seen >= keep) break;
    out << lines[i] << '\n';
    if (lines[i].rfind(terminator, 0) == 0) ++seen;
  }
  out << "site,0,torn-partial-record";  // no trailing newline: torn
}

template <typename Runner>
std::optional<std::string> jobs_identity(const char* engine,
                                         const Runner& run,
                                         std::size_t alt_jobs,
                                         std::size_t& jobs_field) {
  jobs_field = 1;
  const std::string reference = run();
  jobs_field = alt_jobs;
  const std::string other = run();
  return bytes_equal(std::string(engine) + " artifacts, jobs 1 vs " +
                         std::to_string(alt_jobs),
                     reference, other);
}

template <typename Runner>
std::optional<std::string> resume_identity(
    const char* engine, const char* terminator, const Runner& run,
    std::string& checkpoint_field, const std::string& scratch_path) {
  std::remove(scratch_path.c_str());
  checkpoint_field.clear();
  const std::string reference = run();
  checkpoint_field = scratch_path;
  const std::string checkpointed = run();
  auto mismatch = bytes_equal(
      std::string(engine) + " artifacts, checkpointed vs plain run",
      reference, checkpointed);
  if (!mismatch) {
    tear_checkpoint(scratch_path, terminator);
    const std::string resumed = run();
    mismatch = bytes_equal(
        std::string(engine) + " artifacts, torn-checkpoint resume vs plain",
        reference, resumed);
  }
  std::remove(scratch_path.c_str());
  return mismatch;
}

}  // namespace

const std::array<WorldShape, WorldPool::kShapeCount>& WorldPool::shapes() {
  static const std::array<WorldShape, kShapeCount> kShapes{{
      {150, 37, 300, 10, 5, 3},
      {120, 11, 200, 8, 4, 3},
      {200, 5, 400, 12, 6, 4},
  }};
  return kShapes;
}

const World& WorldPool::at(std::size_t shape) {
  shape %= kShapeCount;
  if (!worlds_[shape]) {
    const WorldShape& s = shapes()[shape];
    auto world = std::make_unique<World>();
    world->web = std::make_unique<web::SyntheticWeb>(
        web::SyntheticWebConfig{s.universe, s.seed, s.third_party_tail,
                                false});
    world->toplists = std::make_unique<toplist::TopListFactory>(*world->web);
    world->engine = std::make_unique<search::SearchEngine>(*world->web);
    core::HisparBuilder builder(*world->web, *world->toplists, *world->engine);
    core::HisparConfig config;
    config.target_sites = s.list_sites;
    config.urls_per_site = s.urls_per_site;
    config.min_internal_results = s.min_internal_results;
    world->list = builder.build(config, /*week=*/0);
    worlds_[shape] = std::move(world);
  }
  return *worlds_[shape];
}

std::string measure_bytes(const World& world, core::CampaignConfig config) {
  core::MeasurementCampaign campaign(*world.web, config);
  const auto sites = campaign.run(world.list);
  std::ostringstream out;
  core::write_measure_csv(out, sites);
  if (config.observability.enabled) append_telemetry(out, campaign.telemetry());
  return out.str();
}

std::string listbuild_bytes(const World& world, core::ListBuildConfig config) {
  core::ListBuildCampaign campaign(*world.web, *world.toplists, config);
  const core::ListBuildResult result = campaign.run();
  std::ostringstream out;
  for (const auto& list : result.lists) core::write_csv(list, out);
  core::write_churn_csv(out, result.lists);
  core::write_cost_ledger_csv(out, result.weeks);
  if (config.observability.enabled) append_telemetry(out, campaign.telemetry());
  return out.str();
}

std::string vantage_bytes(const World& world,
                          core::VantageCampaignConfig config) {
  core::VantageCampaign campaign(*world.web, config);
  const auto result = campaign.run(world.list);
  std::ostringstream out;
  for (const auto& observations : result.observations)
    core::write_measure_csv(out, observations);
  if (config.base.observability.enabled)
    append_telemetry(out, campaign.telemetry());
  return out.str();
}

std::string session_bytes(const World& world, core::SessionConfig config) {
  core::SessionCampaign campaign(*world.web, config);
  const auto sites = campaign.run(world.list);
  std::ostringstream out;
  core::write_measure_csv(out, sites);
  core::write_warm_hits_csv(out, sites, campaign.cache_stats());
  if (config.base.observability.enabled)
    append_telemetry(out, campaign.telemetry());
  return out.str();
}

std::optional<std::string> check_measure_jobs_identity(
    const World& world, core::CampaignConfig config, std::size_t alt_jobs) {
  return jobs_identity(
      "measure", [&] { return measure_bytes(world, config); }, alt_jobs,
      config.jobs);
}

std::optional<std::string> check_listbuild_jobs_identity(
    const World& world, core::ListBuildConfig config, std::size_t alt_jobs) {
  return jobs_identity(
      "list-build", [&] { return listbuild_bytes(world, config); }, alt_jobs,
      config.jobs);
}

std::optional<std::string> check_vantage_jobs_identity(
    const World& world, core::VantageCampaignConfig config,
    std::size_t alt_jobs) {
  return jobs_identity(
      "vantage", [&] { return vantage_bytes(world, config); }, alt_jobs,
      config.base.jobs);
}

std::optional<std::string> check_session_jobs_identity(
    const World& world, core::SessionConfig config, std::size_t alt_jobs) {
  return jobs_identity(
      "session", [&] { return session_bytes(world, config); }, alt_jobs,
      config.base.jobs);
}

std::optional<std::string> check_measure_resume_identity(
    const World& world, core::CampaignConfig config,
    const std::string& scratch_path) {
  config.jobs = 1;
  return resume_identity(
      "measure", "endshard,", [&] { return measure_bytes(world, config); },
      config.checkpoint_path, scratch_path);
}

std::optional<std::string> check_listbuild_resume_identity(
    const World& world, core::ListBuildConfig config,
    const std::string& scratch_path) {
  config.jobs = 1;
  return resume_identity(
      "list-build", "endweek,", [&] { return listbuild_bytes(world, config); },
      config.checkpoint_path, scratch_path);
}

std::optional<std::string> check_vantage_resume_identity(
    const World& world, core::VantageCampaignConfig config,
    const std::string& scratch_path) {
  config.base.jobs = 1;
  return resume_identity(
      "vantage", "endvantage,", [&] { return vantage_bytes(world, config); },
      config.checkpoint_path, scratch_path);
}

std::optional<std::string> check_session_resume_identity(
    const World& world, core::SessionConfig config,
    const std::string& scratch_path) {
  config.base.jobs = 1;
  return resume_identity(
      "session", "endsession,", [&] { return session_bytes(world, config); },
      config.checkpoint_path, scratch_path);
}

std::optional<std::string> check_measure_obs_passthrough(
    const World& world, core::CampaignConfig config) {
  config.observability = {};
  const std::string off = measure_bytes(world, config);
  config.observability.enabled = true;
  core::MeasurementCampaign campaign(*world.web, config);
  const auto sites = campaign.run(world.list);
  std::ostringstream csv;
  core::write_measure_csv(csv, sites);
  return bytes_equal("measure CSV, observability off vs on", off, csv.str());
}

std::optional<std::string> check_session_obs_passthrough(
    const World& world, core::SessionConfig config) {
  config.base.observability = {};
  const std::string off = session_bytes(world, config);
  config.base.observability.enabled = true;
  core::SessionCampaign campaign(*world.web, config);
  const auto sites = campaign.run(world.list);
  std::ostringstream csv;
  core::write_measure_csv(csv, sites);
  core::write_warm_hits_csv(csv, sites, campaign.cache_stats());
  return bytes_equal("session CSVs, observability off vs on", off, csv.str());
}

std::optional<std::string> check_measure_run_determinism(
    const World& world, core::CampaignConfig config) {
  const std::string first = measure_bytes(world, config);
  const std::string second = measure_bytes(world, config);
  return bytes_equal("measure artifacts, run 1 vs run 2", first, second);
}

namespace {

template <typename Parse>
std::optional<std::string> roundtrip(const char* grammar,
                                     const std::string& spec,
                                     const Parse& parse) {
  const std::string printed = parse(spec);
  const std::string reprinted = parse(printed);
  if (printed != reprinted)
    return std::string(grammar) + " round-trip not a fixpoint for '" + spec +
           "': '" + printed + "' reprints as '" + reprinted + "'";
  return std::nullopt;
}

}  // namespace

std::optional<std::string> check_fault_roundtrip(const std::string& spec) {
  return roundtrip("fault profile", spec, [](const std::string& s) {
    return net::FaultProfile::parse(s).str();
  });
}

std::optional<std::string> check_search_fault_roundtrip(
    const std::string& spec) {
  return roundtrip("search-fault profile", spec, [](const std::string& s) {
    return net::SearchFaultProfile::parse(s).str();
  });
}

std::optional<std::string> check_chaos_roundtrip(const std::string& spec) {
  return roundtrip("chaos schedule", spec, [](const std::string& s) {
    return net::OutageSchedule::parse(s).str();
  });
}

std::optional<std::string> check_vantage_roundtrip(const std::string& spec) {
  return roundtrip("vantage profile", spec, [](const std::string& s) {
    return net::VantageProfile::parse(s).str();
  });
}

// --- Reference-model oracles ---

namespace {

// Small shared helpers for the op-log style failure messages.
std::string tail_of(const std::vector<std::string>& log, std::size_t n = 8) {
  std::string out;
  const std::size_t from = log.size() > n ? log.size() - n : 0;
  for (std::size_t i = from; i < log.size(); ++i) out += log[i] + "; ";
  return out;
}

std::string model_key(Gen& gen) { return "k" + std::to_string(gen.index(6)); }

}  // namespace

std::optional<std::string> check_lru_model(Gen& gen) {
  struct Entry {
    std::string key;
    std::size_t size;
  };
  const std::size_t capacity = 1 + gen.index(48);
  cdn::LruCache cache(capacity);
  std::vector<Entry> model;  // front = most recent
  std::size_t used = 0;
  std::uint64_t evictions = 0;
  std::vector<std::string> log;

  const auto find = [&](const std::string& key) {
    return std::find_if(model.begin(), model.end(),
                        [&](const Entry& e) { return e.key == key; });
  };
  const int ops = 20 + 4 * gen.size();
  for (int op = 0; op < ops; ++op) {
    const std::string key = model_key(gen);
    switch (gen.index(4)) {
      case 0: {  // touch
        log.push_back("touch " + key);
        const bool hit = cache.touch(key);
        auto it = find(key);
        const bool model_hit = it != model.end();
        if (model_hit) std::rotate(model.begin(), it, it + 1);
        if (hit != model_hit)
          return "LruCache::touch(" + key + ") = " + std::to_string(hit) +
                 ", model says " + std::to_string(model_hit) +
                 " [ops: " + tail_of(log) + "]";
        break;
      }
      case 1: {  // insert
        const std::size_t size = gen.index(capacity + 8);
        log.push_back("insert " + key + "/" + std::to_string(size));
        cache.insert(key, size);
        auto it = find(key);
        if (size > capacity) {
          if (it != model.end()) {
            used -= it->size;
            model.erase(it);
          }
        } else {
          if (it != model.end()) {
            used -= it->size;
            it->size = size;
            used += size;
            std::rotate(model.begin(), it, it + 1);
          } else {
            model.insert(model.begin(), {key, size});
            used += size;
          }
          while (used > capacity) {
            used -= model.back().size;
            model.pop_back();
            ++evictions;
          }
        }
        break;
      }
      case 2: {  // contains (read-only)
        const bool hit = cache.contains(key);
        const bool model_hit = find(key) != model.end();
        if (hit != model_hit)
          return "LruCache::contains(" + key + ") = " + std::to_string(hit) +
                 ", model says " + std::to_string(model_hit) +
                 " [ops: " + tail_of(log) + "]";
        break;
      }
      default:
        if (gen.chance(0.05)) {  // clear is rare: it resets warmth
          log.push_back("clear");
          cache.clear();
          model.clear();
          used = 0;
        }
        break;
    }
    if (cache.used_bytes() != used || cache.entries() != model.size() ||
        cache.evictions() != evictions)
      return "LruCache state diverged: used " +
             std::to_string(cache.used_bytes()) + "/" + std::to_string(used) +
             ", entries " + std::to_string(cache.entries()) + "/" +
             std::to_string(model.size()) + ", evictions " +
             std::to_string(cache.evictions()) + "/" +
             std::to_string(evictions) + " [ops: " + tail_of(log) + "]";
  }
  return std::nullopt;
}

std::optional<std::string> check_http_cache_model(Gen& gen) {
  struct Entry {
    std::string key;
    std::size_t size;
    double expires_s;
  };
  const std::size_t capacity = 1 + gen.index(48);
  browser::HttpCache cache(capacity);
  std::vector<Entry> model;  // front = most recent
  browser::CacheStats stats;
  std::size_t used = 0;
  double now_s = 0.0;
  std::vector<std::string> log;

  const auto find = [&](const std::string& key) {
    return std::find_if(model.begin(), model.end(),
                        [&](const Entry& e) { return e.key == key; });
  };
  const int ops = 20 + 4 * gen.size();
  for (int op = 0; op < ops; ++op) {
    now_s += gen.in_range(0.0, 8.0);
    const std::string key = model_key(gen);
    switch (gen.index(3)) {
      case 0: {  // lookup
        log.push_back("lookup " + key);
        const browser::CacheOutcome outcome = cache.lookup(key, now_s);
        ++stats.lookups;
        browser::CacheOutcome expected;
        auto it = find(key);
        if (it == model.end()) {
          expected = browser::CacheOutcome::kMiss;
          ++stats.misses;
        } else if (now_s < it->expires_s) {
          expected = browser::CacheOutcome::kFresh;
          ++stats.fresh_hits;
          std::rotate(model.begin(), it, it + 1);
        } else {
          expected = browser::CacheOutcome::kStale;
        }
        if (outcome != expected)
          return "HttpCache::lookup(" + key + ") = " +
                 std::to_string(static_cast<int>(outcome)) +
                 ", model says " +
                 std::to_string(static_cast<int>(expected)) +
                 " [ops: " + tail_of(log) + "]";
        break;
      }
      case 1: {  // insert
        const std::size_t size = gen.index(capacity + 8);
        const double lifetime_s = gen.in_range(0.0, 30.0);
        log.push_back("insert " + key + "/" + std::to_string(size));
        cache.insert(key, size, now_s, lifetime_s);
        auto it = find(key);
        if (size > capacity) {
          if (it != model.end()) {
            used -= it->size;
            model.erase(it);
            ++stats.evictions;
          }
        } else {
          if (it != model.end()) {
            used -= it->size;
            it->size = size;
            it->expires_s = now_s + lifetime_s;
            used += size;
            std::rotate(model.begin(), it, it + 1);
          } else {
            model.insert(model.begin(), {key, size, now_s + lifetime_s});
            used += size;
            ++stats.insertions;
          }
          while (used > capacity) {
            used -= model.back().size;
            model.pop_back();
            ++stats.evictions;
          }
        }
        break;
      }
      default: {  // revalidated
        const double lifetime_s = gen.in_range(0.0, 30.0);
        log.push_back("revalidate " + key);
        cache.revalidated(key, now_s, lifetime_s);
        auto it = find(key);
        if (it != model.end()) {
          ++stats.revalidations;
          it->expires_s = now_s + lifetime_s;
          std::rotate(model.begin(), it, it + 1);
        }
        break;
      }
    }
    if (cache.used_bytes() != used || cache.entries() != model.size() ||
        !(cache.stats() == stats))
      return "HttpCache state diverged: used " +
             std::to_string(cache.used_bytes()) + "/" + std::to_string(used) +
             ", entries " + std::to_string(cache.entries()) + "/" +
             std::to_string(model.size()) + " [ops: " + tail_of(log) + "]";
  }
  return std::nullopt;
}

std::optional<std::string> check_breaker_model(Gen& gen) {
  net::BreakerConfig config;
  config.failure_threshold = 1 + static_cast<int>(gen.index(6));
  config.cooldown_s = gen.in_range(1.0, 30.0);
  config.half_open_successes = 1 + static_cast<int>(gen.index(2));
  net::CircuitBreaker breaker(config);

  // Reference state machine, straight from DESIGN.md §14's contract.
  net::BreakerState state = net::BreakerState::kClosed;
  int consecutive_failures = 0;
  int probe_successes = 0;
  double opened_at_s = 0.0;
  std::uint64_t times_opened = 0;
  std::uint64_t denials = 0;
  double now_s = 0.0;
  std::vector<std::string> log;

  const auto effective_state = [&](double now) {
    if (state == net::BreakerState::kOpen &&
        now >= opened_at_s + config.cooldown_s)
      return net::BreakerState::kHalfOpen;
    return state;
  };

  const int ops = 20 + 4 * gen.size();
  for (int op = 0; op < ops; ++op) {
    now_s += gen.in_range(0.0, config.cooldown_s * 0.6);
    switch (gen.index(3)) {
      case 0: {  // allow
        log.push_back("allow@" + std::to_string(now_s));
        const bool allowed = breaker.allow(now_s);
        bool expected;
        if (state == net::BreakerState::kOpen) {
          if (now_s >= opened_at_s + config.cooldown_s) {
            state = net::BreakerState::kHalfOpen;
            probe_successes = 0;
            expected = true;
          } else {
            ++denials;
            expected = false;
          }
        } else {
          expected = true;
        }
        if (allowed != expected)
          return "CircuitBreaker::allow = " + std::to_string(allowed) +
                 ", model says " + std::to_string(expected) +
                 " [ops: " + tail_of(log) + "]";
        break;
      }
      case 1:  // success
        log.push_back("success");
        breaker.record_success(now_s);
        if (state == net::BreakerState::kHalfOpen) {
          if (++probe_successes >= config.half_open_successes) {
            state = net::BreakerState::kClosed;
            consecutive_failures = 0;
            probe_successes = 0;
          }
        } else {
          consecutive_failures = 0;
        }
        break;
      default:  // failure
        log.push_back("failure@" + std::to_string(now_s));
        breaker.record_failure(now_s);
        if (state == net::BreakerState::kHalfOpen) {
          state = net::BreakerState::kOpen;
          opened_at_s = now_s;
          probe_successes = 0;
          ++times_opened;
        } else if (state == net::BreakerState::kClosed &&
                   ++consecutive_failures >= config.failure_threshold) {
          state = net::BreakerState::kOpen;
          opened_at_s = now_s;
          ++times_opened;
        }
        break;
    }
    if (breaker.state(now_s) != effective_state(now_s) ||
        breaker.denials() != denials ||
        breaker.times_opened() != times_opened)
      return "CircuitBreaker state diverged: state " +
             std::to_string(static_cast<int>(breaker.state(now_s))) + "/" +
             std::to_string(static_cast<int>(effective_state(now_s))) +
             ", denials " + std::to_string(breaker.denials()) + "/" +
             std::to_string(denials) + ", opened " +
             std::to_string(breaker.times_opened()) + "/" +
             std::to_string(times_opened) + " [ops: " + tail_of(log) + "]";

    // Kill + resume for breakers: serialize the observable state into a
    // fresh breaker (the checkpoint path) and continue the sequence.
    if (gen.chance(0.05)) {
      log.push_back("restore");
      net::CircuitBreaker fresh(config);
      fresh.restore(breaker.state(-1.0), breaker.consecutive_failures(),
                    breaker.opened_at_s(), breaker.times_opened(),
                    breaker.denials());
      breaker = fresh;
      probe_successes = 0;  // restore() resets the probe count
      state = effective_state(-1.0);
    }
  }
  return std::nullopt;
}

}  // namespace hispar::testkit
