#include "testkit/property.h"

#include <algorithm>

namespace hispar::testkit {

std::uint64_t case_seed(std::uint64_t seed, int iter) {
  return util::Rng(seed).fork(static_cast<std::uint64_t>(iter)).next();
}

namespace {

std::optional<std::string> run_case(const Property& property,
                                    std::uint64_t seed, int size) {
  Gen gen(seed, size);
  return property(gen);
}

std::string replay_line(const PropertyConfig& config,
                        const Counterexample& failure) {
  return "property '" + config.name + "' failed: replay with seed=" +
         std::to_string(failure.case_seed) +
         " size=" + std::to_string(failure.size) + " (iteration " +
         std::to_string(failure.iteration) + " of master seed " +
         std::to_string(config.seed) + ")";
}

}  // namespace

Counterexample check(const PropertyConfig& config, const Property& property) {
  const int iters = std::max(1, config.iters);
  const int min_size = std::max(1, config.min_size);
  const int max_size = std::max(min_size, config.max_size);

  for (int iter = 0; iter < iters; ++iter) {
    // Linear size ramp across the run (iters == 1 runs at max).
    const int size =
        iters == 1 ? max_size
                   : min_size + static_cast<int>(
                                    (static_cast<long long>(max_size -
                                                            min_size) *
                                     iter) /
                                    (iters - 1));
    const std::uint64_t seed = case_seed(config.seed, iter);
    auto violation = run_case(property, seed, size);
    if (!violation) continue;

    Counterexample failure;
    failure.failed = true;
    failure.case_seed = seed;
    failure.size = size;
    failure.iteration = iter;
    failure.message = *violation;

    // Shrink: halve the size while the same case seed still fails,
    // then walk down linearly to the exact boundary.
    int best = size;
    for (int candidate = size / 2; candidate >= min_size; candidate /= 2) {
      auto shrunk = run_case(property, seed, candidate);
      if (!shrunk) break;
      best = candidate;
      failure.message = *shrunk;
      if (candidate == min_size) break;
    }
    for (int candidate = best - 1; candidate >= min_size; --candidate) {
      auto shrunk = run_case(property, seed, candidate);
      if (!shrunk) break;
      best = candidate;
      failure.message = *shrunk;
    }
    failure.size = best;
    failure.replay = replay_line(config, failure);
    return failure;
  }
  return {};
}

std::string minimize_bytes(
    std::string input,
    const std::function<bool(const std::string&)>& still_fails,
    int max_calls) {
  int calls = 0;
  const auto fails = [&](const std::string& candidate) {
    if (calls >= max_calls) return false;
    ++calls;
    return still_fails(candidate);
  };

  // ddmin-lite: repeatedly try deleting chunks, halving the chunk size
  // whenever a full pass removes nothing.
  std::size_t chunk = std::max<std::size_t>(1, input.size() / 2);
  while (chunk >= 1 && calls < max_calls) {
    bool removed = false;
    for (std::size_t at = 0; at < input.size() && calls < max_calls;) {
      std::string candidate = input;
      candidate.erase(at, chunk);
      if (candidate.size() < input.size() && fails(candidate)) {
        input = std::move(candidate);
        removed = true;  // same offset now holds the next chunk
      } else {
        at += chunk;
      }
    }
    if (chunk == 1 && !removed) break;
    if (!removed) chunk /= 2;
  }
  return input;
}

}  // namespace hispar::testkit
