#include "testkit/gen.h"

#include <algorithm>
#include <sstream>

#include "net/faults.h"
#include "net/outage.h"

namespace hispar::testkit {

namespace {

// Spec numbers print through the same precision the grammars' own
// str() methods use, so a generated spec is always re-printable.
std::string num(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

constexpr const char* kPageFaultKeys[] = {
    "dns_servfail", "dns_timeout", "connection_reset", "tls_failure",
    "http_5xx",     "stall",       "truncation"};
constexpr const char* kSearchFaultKeys[] = {
    "query_timeout", "empty_page", "quota_exceeded", "rate_limited"};
constexpr const char* kDnsKinds[] = {"dns_servfail", "dns_timeout"};
constexpr const char* kRegions[] = {"na", "eu", "as", "sa", "oc"};

template <std::size_t N>
std::string keyed_rate_spec(Gen& gen, const char* const (&keys)[N]) {
  // Subset of keys, each with a small rate; the per-key cap keeps the
  // sum under the grammar's total-rate <= 1 constraint.
  const std::size_t count = 1 + gen.index(N);
  bool used[N] = {};
  std::string spec;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t key = gen.index(N);
    if (used[key]) continue;
    used[key] = true;
    if (!spec.empty()) spec += ',';
    spec += keys[key];
    spec += '=';
    spec += num(gen.in_range(0.0, 0.9 / static_cast<double>(N)));
  }
  return spec;
}

std::string chaos_rule(Gen& gen) {
  std::string rule;
  const std::size_t scope = gen.index(4);
  switch (scope) {
    case 0:
      rule = "cdn:provider=" + std::to_string(gen.index(4)) +
             ",kind=" + gen.pick(kPageFaultKeys);
      break;
    case 1:
      rule = std::string("resolver:kind=") + gen.pick(kDnsKinds);
      break;
    case 2:
      rule = "origin:domain=site" + std::to_string(gen.index(50)) +
             ".example,kind=" + gen.pick(kPageFaultKeys);
      break;
    default:
      rule = std::string("search:kind=") + gen.pick(kSearchFaultKeys);
      break;
  }
  rule += ",sev=" + num(gen.in_range(0.05, 1.0));
  if (gen.chance(0.5)) {
    rule += ",start_s=" + num(gen.in_range(0.0, 60.0)) +
            ",dur_s=" + num(gen.in_range(1.0, 300.0));
  } else {
    rule += ",mtbf_s=" + num(gen.in_range(5.0, 120.0)) +
            ",mttr_s=" + num(gen.in_range(1.0, 60.0));
    if (gen.chance(0.3))
      rule += ",horizon_s=" + num(gen.in_range(100.0, 5000.0));
  }
  return rule;
}

}  // namespace

std::string gen_fault_spec(Gen& gen) {
  const double shape = gen.in_range(0.0, 1.0);
  if (shape < 0.2) return "none";
  if (shape < 0.5) return "uniform:" + num(gen.in_range(0.0, 0.12));
  return keyed_rate_spec(gen, kPageFaultKeys);
}

std::string gen_search_fault_spec(Gen& gen) {
  const double shape = gen.in_range(0.0, 1.0);
  if (shape < 0.2) return "none";
  if (shape < 0.5) return "uniform:" + num(gen.in_range(0.0, 0.15));
  return keyed_rate_spec(gen, kSearchFaultKeys);
}

std::string gen_chaos_spec(Gen& gen) {
  if (gen.chance(0.15)) return "none";
  const std::size_t rules = 1 + gen.index(1 + static_cast<std::size_t>(
                                                  gen.size()) / 25);
  std::string spec;
  for (std::size_t i = 0; i < rules; ++i) {
    if (!spec.empty()) spec += ';';
    spec += chaos_rule(gen);
  }
  return spec;
}

std::string gen_vantage_spec(Gen& gen) {
  std::string spec = "v" + std::to_string(gen.index(1000));
  if (gen.chance(0.6)) spec += std::string(":region=") + gen.pick(kRegions);
  if (gen.chance(0.4))
    spec += gen.chance(0.5) ? ":resolver=public" : ":resolver=isp";
  if (gen.chance(0.3)) spec += gen.chance(0.5) ? ":doh=1" : ":doh=0";
  if (gen.chance(0.3)) spec += std::string(":edge=") + gen.pick(kRegions);
  if (gen.chance(0.4)) spec += ":access_ms=" + num(gen.in_range(0.0, 60.0));
  if (gen.chance(0.3))
    spec += ":bandwidth=" + num(gen.in_range(100.0, 20000.0));
  if (gen.chance(0.3)) spec += ":faults=" + num(gen.in_range(0.0, 3.0));
  return spec;
}

std::string gen_vantage_list_spec(Gen& gen) {
  const std::size_t count = 1 + gen.index(3);
  std::string spec;
  for (std::size_t i = 0; i < count; ++i) {
    if (!spec.empty()) spec += ';';
    spec += gen_vantage_spec(gen);
  }
  return spec;
}

core::CampaignConfig gen_campaign_config(Gen& gen) {
  core::CampaignConfig config;
  config.landing_loads = 1 + static_cast<int>(gen.index(3));
  config.seed = gen.u64();
  config.shards = 1 + gen.index(4);
  config.fault_profile = net::FaultProfile::parse(gen_fault_spec(gen));
  if (gen.chance(0.35))
    config.chaos = net::OutageSchedule::parse(gen_chaos_spec(gen));
  config.max_page_retries = static_cast<int>(gen.index(3));
  config.retry_backoff_s = gen.in_range(1.0, 30.0);
  config.page_timeout_s = gen.in_range(30.0, 120.0);
  if (gen.chance(0.25))
    config.wait_sample_cap = 10 + gen.index(80);
  return config;
}

core::ListBuildConfig gen_listbuild_config(Gen& gen) {
  core::ListBuildConfig config;
  // Small list targets: the oracles run these against WorldPool's tiny
  // universes, where the default H1K sizes would scan every rank.
  config.list.name = "Hgen";
  config.list.target_sites = 4 + gen.index(6);
  config.list.urls_per_site = 3 + gen.index(3);
  config.list.min_internal_results = 2;
  config.list.index_crawl_budget = 200;
  config.seed = gen.u64();
  config.weeks = 1 + gen.index(2);
  config.shards = 1 + gen.index(4);
  config.wave_size = gen.chance(0.5) ? 0 : 4 + gen.index(24);
  config.fault_profile =
      net::SearchFaultProfile::parse(gen_search_fault_spec(gen));
  if (gen.chance(0.3))
    config.chaos = net::OutageSchedule::parse(gen_chaos_spec(gen));
  config.max_query_retries = static_cast<int>(gen.index(3));
  config.retry_backoff_s = gen.in_range(5.0, 60.0);
  return config;
}

core::SessionConfig gen_session_config(Gen& gen) {
  core::SessionConfig config;
  config.base = gen_campaign_config(gen);
  config.base.landing_loads = 1 + static_cast<int>(gen.index(2));
  config.session_len = 1 + gen.index(4);
  // Occasionally tiny, so session-internal eviction paths run too.
  config.cache_bytes =
      gen.chance(0.2) ? 50'000 + gen.index(200'000) : 50'000'000;
  config.warm = gen.chance(0.85);
  return config;
}

std::string gen_bytes(Gen& gen, std::size_t n) {
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out += static_cast<char>(gen.index(256));
  return out;
}

std::string mutate(Gen& gen, std::string_view input) {
  std::string out(input);
  if (out.empty()) return gen_bytes(gen, 1 + gen.index(64));

  const std::size_t mutations =
      1 + gen.index(4 + static_cast<std::size_t>(gen.size()) / 8);
  for (std::size_t m = 0; m < mutations; ++m) {
    if (out.empty()) {
      out = gen_bytes(gen, 1 + gen.index(16));
      continue;
    }
    const std::size_t at = gen.index(out.size());
    switch (gen.index(9)) {
      case 0:  // bit flip
        out[at] = static_cast<char>(out[at] ^ (1u << gen.index(8)));
        break;
      case 1:  // byte set
        out[at] = static_cast<char>(gen.index(256));
        break;
      case 2:  // insert random bytes
        out.insert(at, gen_bytes(gen, 1 + gen.index(8)));
        break;
      case 3: {  // delete range
        const std::size_t len = 1 + gen.index(std::min<std::size_t>(
                                        32, out.size() - at));
        out.erase(at, len);
        break;
      }
      case 4: {  // duplicate range
        const std::size_t len = 1 + gen.index(std::min<std::size_t>(
                                        32, out.size() - at));
        out.insert(at, out.substr(at, len));
        break;
      }
      case 5:  // truncate (torn tail)
        out.resize(at);
        break;
      case 6: {  // replace a digit run with another number
        std::size_t digit = out.find_first_of("0123456789", at);
        if (digit == std::string::npos)
          digit = out.find_first_of("0123456789");
        if (digit != std::string::npos) {
          std::size_t end = digit;
          while (end < out.size() &&
                 out[end] >= '0' && out[end] <= '9')
            ++end;
          // Oversize length fields and sign flips live here.
          const char* replacements[] = {
              "0", "1", "-1", "18446744073709551615", "99999999999999999999",
              "4294967296", "1000000000000000000"};
          out.replace(digit, end - digit, gen.pick(replacements));
        }
        break;
      }
      case 7:  // NUL injection
        out.insert(at, 1, '\0');
        break;
      default: {  // splice: move one line elsewhere
        const std::size_t line_start = out.rfind('\n', at);
        const std::size_t begin =
            line_start == std::string::npos ? 0 : line_start + 1;
        std::size_t line_end = out.find('\n', begin);
        if (line_end == std::string::npos) line_end = out.size();
        const std::string line = out.substr(begin, line_end - begin + 1);
        out.erase(begin, line_end - begin + 1);
        out.insert(gen.index(out.size() + 1), line);
        break;
      }
    }
  }
  return out;
}

}  // namespace hispar::testkit
