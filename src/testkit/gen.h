// Seeded, size-parameterized generators for property-based testing.
//
// The determinism contracts this repo ships (jobs-invariance, kill +
// resume identity, feature-off passthrough) are exercised elsewhere at
// hand-picked config points; this testkit samples the *interior* of the
// config space — the paper's own lesson applied to the test suite
// (sampling only the landing page of a space hides systematic
// divergence, PAPER.md §1). Every generator is a pure function of a
// Gen, which wraps the repo's fixed util::Rng: the same (seed, size)
// pair reproduces the same value on any machine, which is what makes a
// CI failure replayable from one printed line.
//
// `size` is the usual property-testing growth knob: small sizes produce
// small configs/inputs (cheap, and the natural shrink direction), large
// sizes reach deeper into the space. Generators scale their choices off
// it; the property runner (property.h) ramps it across iterations and
// walks it back down to shrink a failure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/list_build.h"
#include "core/measurement.h"
#include "core/session.h"
#include "util/rng.h"

namespace hispar::testkit {

class Gen {
 public:
  explicit Gen(std::uint64_t seed, int size = 50)
      : seed_(seed), size_(size < 1 ? 1 : size), rng_(seed) {}

  std::uint64_t seed() const { return seed_; }
  int size() const { return size_; }
  util::Rng& rng() { return rng_; }

  std::uint64_t u64() { return rng_.next(); }
  // Uniform in [0, n); n = 0 returns 0.
  std::size_t index(std::size_t n) {
    return n == 0 ? 0
                  : static_cast<std::size_t>(rng_.uniform_int(
                        0, static_cast<std::int64_t>(n) - 1));
  }
  std::int64_t int_in(std::int64_t lo, std::int64_t hi) {
    return rng_.uniform_int(lo, hi);
  }
  double in_range(double lo, double hi) { return rng_.uniform(lo, hi); }
  bool chance(double p) { return rng_.chance(p); }

  template <typename T, std::size_t N>
  const T& pick(const T (&options)[N]) {
    return options[index(N)];
  }

 private:
  std::uint64_t seed_;
  int size_;
  util::Rng rng_;
};

// --- Spec-grammar generators ---
// Each returns a spec the corresponding parser accepts; the grammar
// round-trip oracle (oracles.h) then checks parse/str is a fixpoint.

// FaultProfile grammar: "none" | "uniform:R" | "key=R,..." (sum <= 1).
std::string gen_fault_spec(Gen& gen);
// SearchFaultProfile grammar (same shape, search key table).
std::string gen_search_fault_spec(Gen& gen);
// OutageSchedule grammar: "none" | rule(;rule)* with per-scope keys and
// exactly one window shape per rule.
std::string gen_chaos_spec(Gen& gen);
// One VantageProfile: name[:key=value...].
std::string gen_vantage_spec(Gen& gen);
// Semicolon-joined list of 1..3 vantage profiles.
std::string gen_vantage_list_spec(Gen& gen);

// --- Engine-config generators ---
// jobs / checkpoint_path / observability are left at their defaults:
// those are exactly the axes the invariant oracles own.

core::CampaignConfig gen_campaign_config(Gen& gen);
core::ListBuildConfig gen_listbuild_config(Gen& gen);
core::SessionConfig gen_session_config(Gen& gen);

// --- Byte-level mutation (fuzzing front end) ---

// `n` bytes, full 0..255 range (NUL included on purpose).
std::string gen_bytes(Gen& gen, std::size_t n);
// A mutated copy of `input`: 1..(4 + size/8) stacked mutations drawn
// from {bit flip, byte set, insert, delete range, duplicate range,
// truncate, digit-run replace, NUL injection, line splice}. Never
// returns `input` unchanged unless every draw degenerates (empty
// input mutates into fresh random bytes).
std::string mutate(Gen& gen, std::string_view input);

}  // namespace hispar::testkit
