// Structured campaign run reports.
//
// Replaces the ad-hoc summary line `hispar measure` used to assemble by
// hand: the campaign fills a RunReport (coverage, quarantines, retries
// by fault kind, DNS/CDN cache hit rates, per-shard virtual-clock skew)
// and this module renders it as
//  * the byte-stable one-line summary existing scripts parse
//    (summary_line), and
//  * a multi-line human report (render_report_text), and
//  * machine-readable JSON (--report-out, write_report_json) — the
//    archivable run artifact ("Web Execution Bundles": a measurement is
//    only reproducible if its failures and cache behaviour ship with
//    it).
// A RunReport is built from observations and merged telemetry only, so
// it inherits their determinism: bit-identical for any --jobs value and
// across checkpoint resume.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hispar::obs {

struct RunReport {
  // --- coverage (always available) ---
  std::uint64_t sites_total = 0;
  std::uint64_t sites_ok = 0;
  std::uint64_t sites_degraded = 0;
  std::uint64_t sites_quarantined = 0;
  std::uint64_t page_fetches = 0;      // attempted page fetches (outcomes)
  std::uint64_t failed_fetches = 0;    // no usable load
  std::uint64_t degraded_fetches = 0;  // usable but partial
  std::uint64_t total_retries = 0;     // campaign-level re-fetches
  std::uint64_t internal_pages_measured = 0;

  // --- failures by root cause ---
  struct FaultLine {
    std::string kind;                  // net::to_string(FaultKind)
    std::uint64_t failed_fetches = 0;  // outcomes whose root cause this was
    std::uint64_t injected = 0;        // injector decisions (telemetry only)
    // Quarantined sites whose modal landing-page failure this kind was
    // (ties to the lower kind) — "why did we lose these sites". JSON
    // emits the member only when nonzero so fault-free reports keep the
    // historical bytes.
    std::uint64_t sites_quarantined = 0;
    bool operator==(const FaultLine&) const = default;
  };
  std::vector<FaultLine> faults;  // fixed FaultKind order, kNone excluded

  // --- telemetry-backed sections (zero when telemetry is off) ---
  bool telemetry = false;
  std::uint64_t dns_queries = 0;
  std::uint64_t dns_cache_hits = 0;
  std::uint64_t cdn_requests = 0;
  std::uint64_t cdn_edge_hits = 0;
  std::uint64_t cdn_edge_lru_hits = 0;
  std::uint64_t cdn_parent_hits = 0;
  std::uint64_t cdn_origin_fetches = 0;
  std::uint64_t cdn_lru_evictions = 0;
  std::uint64_t wait_samples_dropped = 0;
  std::uint64_t trace_spans = 0;
  std::uint64_t trace_spans_dropped = 0;

  struct ShardLine {
    std::uint64_t shard = 0;
    std::uint64_t sites = 0;
    std::uint64_t fetches = 0;
    double clock_end_s = 0.0;  // shard's final virtual clock
    bool operator==(const ShardLine&) const = default;
  };
  std::vector<ShardLine> shards;  // ascending shard id, empty shards omitted

  double dns_hit_rate() const;
  double cdn_edge_hit_rate() const;
  // Virtual-clock imbalance between the slowest and fastest shard —
  // the sharding-quality signal (a skewed partition starves workers).
  double shard_skew_s() const;

  bool operator==(const RunReport&) const = default;
};

// Exactly the historical summary line, byte for byte:
// "campaign: X ok, Y degraded, Z quarantined; R retries, F failed
//  fetches, D partial loads"
// When quarantine root causes are known (some fault line has
// sites_quarantined > 0) a "; quarantined by: kind N, ..." suffix is
// appended; cause-free reports keep the historical bytes.
std::string summary_line(const RunReport& report);

// Multi-line human-readable report (coverage, faults, cache hit rates,
// shard skew). Ends with '\n'.
std::string render_report_text(const RunReport& report);

// {"schema":"hispar-report-v1",...}; byte-stable.
void write_report_json(std::ostream& out, const RunReport& report);

// --- List-build reports ---
//
// The same idea for `hispar build`: the list-build campaign fills a
// ListBuildReport (coverage of the bootstrap scan, §7 billing per
// provider, per-week churn, search-API faults) from its week stats and
// merged telemetry only, so the report inherits their determinism.
struct ListBuildReport {
  // --- coverage (consumed bootstrap prefix; always available) ---
  std::uint64_t weeks = 0;
  std::uint64_t start_week = 0;
  std::uint64_t sites_examined = 0;
  std::uint64_t sites_accepted = 0;
  std::uint64_t sites_dropped = 0;
  std::uint64_t sites_missing = 0;
  std::uint64_t sites_quarantined = 0;

  // --- billing (§7) ---
  std::uint64_t queries_billed = 0;       // consumed, serial-equivalent
  std::uint64_t speculative_queries = 0;  // scan-wave overshoot
  std::uint64_t retries = 0;
  struct ProviderLine {
    std::string provider;          // search::provider_name
    double query_price_usd = 0.0;
    double spend_usd = 0.0;        // (billed + speculative) * price
    bool operator==(const ProviderLine&) const = default;
  };
  std::vector<ProviderLine> providers;

  // --- per-week lines, ascending week ---
  struct WeekLine {
    std::uint64_t week = 0;
    std::uint64_t sites_accepted = 0;
    std::uint64_t sites_examined = 0;
    std::uint64_t queries_billed = 0;
    std::uint64_t speculative_queries = 0;
    // Churn vs the previous week (§3); undefined on the first week or
    // for degenerate list pairs.
    bool has_site_churn = false;
    double site_churn = 0.0;
    bool has_url_churn = false;
    double internal_url_churn = 0.0;
    bool operator==(const WeekLine&) const = default;
  };
  std::vector<WeekLine> week_lines;

  // --- search-API failures ---
  struct FaultLine {
    std::string kind;                      // net::to_string(SearchFaultKind)
    std::uint64_t injected = 0;            // injector decisions (telemetry)
    std::uint64_t sites_quarantined = 0;   // root cause, consumed prefix
    bool operator==(const FaultLine&) const = default;
  };
  std::vector<FaultLine> faults;  // fixed kind order, kNone excluded

  // --- telemetry-backed (zero when telemetry is off) ---
  bool telemetry = false;
  std::uint64_t trace_spans = 0;
  std::uint64_t trace_spans_dropped = 0;

  bool operator==(const ListBuildReport&) const = default;
};

// One-line summary `hispar build` prints:
// "list build: W weeks, A sites accepted, Q queries (+S speculative);
//  R retries, X quarantined"
std::string listbuild_summary_line(const ListBuildReport& report);

// Multi-line human-readable report. Ends with '\n'.
std::string render_listbuild_report_text(const ListBuildReport& report);

// {"schema":"hispar-listbuild-report-v1",...}; byte-stable.
void write_listbuild_report_json(std::ostream& out,
                                 const ListBuildReport& report);

// --- Multi-vantage reports ---
//
// The same idea for multi-vantage campaigns: per-vantage coverage plus
// the cross-vantage disagreement statistics (core::vantage_disagreement
// fills the metric lines), so the single report answers "would the
// paper's landing-vs-internal conclusions survive a different vantage
// point?". Built from observations and merged telemetry only —
// bit-identical for any --jobs value and across checkpoint resume.
struct VantageReport {
  std::uint64_t vantages = 0;
  std::uint64_t sites_total = 0;
  // Sites usable at every vantage — the cross-vantage comparison set.
  std::uint64_t sites_compared = 0;

  struct VantageLine {
    std::uint64_t vantage = 0;
    std::string name;    // profile name
    std::string region;  // net::to_string(Region)
    std::uint64_t sites_ok = 0;
    std::uint64_t sites_degraded = 0;
    std::uint64_t sites_quarantined = 0;
    std::uint64_t failed_fetches = 0;
    bool operator==(const VantageLine&) const = default;
  };
  std::vector<VantageLine> vantage_lines;  // ascending vantage id

  struct MetricLine {
    std::string metric;
    // Spread stats are undefined when no site is usable at every
    // vantage (JSON renders null, like WeekLine churn).
    bool has_spread = false;
    double median_spread = 0.0;
    double max_spread = 0.0;
    double sign_flip_fraction = 0.0;
    bool operator==(const MetricLine&) const = default;
  };
  std::vector<MetricLine> metric_lines;  // core consensus-metric order

  // --- telemetry-backed (zero when telemetry is off) ---
  bool telemetry = false;
  std::uint64_t trace_spans = 0;
  std::uint64_t trace_spans_dropped = 0;

  bool operator==(const VantageReport&) const = default;
};

// One-line summary `hispar measure --vantages N` prints:
// "vantages: N vantage points over S sites, C compared everywhere;
//  F sign-flip metrics"
std::string vantage_summary_line(const VantageReport& report);

// Multi-line human-readable report. Ends with '\n'.
std::string render_vantage_report_text(const VantageReport& report);

// {"schema":"hispar-vantage-report-v1",...}; byte-stable.
void write_vantage_report_json(std::ostream& out,
                               const VantageReport& report);

// --- Browsing-session reports ---
//
// The same idea for browsing-session campaigns (`hispar measure
// --sessions`): per-session coverage, the aggregated browser-cache
// behaviour, and the cold-vs-warm landing-vs-internal contrast — the
// single report answers "how much of the landing/internal gap survives
// a warm within-session cache?". Built from observations, per-session
// cache counters and merged telemetry only — bit-identical for any
// --jobs value and across checkpoint resume.
struct SessionReport {
  std::uint64_t sites_total = 0;  // one session per site
  std::uint64_t sessions_ok = 0;
  std::uint64_t sessions_degraded = 0;
  std::uint64_t sessions_quarantined = 0;  // landing never loaded
  std::uint64_t pages_loaded = 0;          // usable page loads
  std::uint64_t session_len = 0;           // internal pages per session

  // --- browser cache, summed over sessions ---
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_fresh_hits = 0;
  std::uint64_t cache_revalidations = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_insertions = 0;
  std::uint64_t cache_evictions = 0;

  // --- cold-vs-warm contrast, core consensus-metric order ---
  // Per metric: the landing-minus-internal-median gap under the cold
  // (fresh profile per page) and warm (session replay) regimes, as
  // medians over the sites usable in both runs.
  struct MetricLine {
    std::string metric;
    bool has_values = false;  // some site usable in both regimes
    double cold_landing_median = 0.0;
    double cold_internal_median = 0.0;
    double warm_landing_median = 0.0;
    double warm_internal_median = 0.0;
    bool operator==(const MetricLine&) const = default;
  };
  std::vector<MetricLine> metric_lines;

  // --- telemetry-backed (zero when telemetry is off) ---
  bool telemetry = false;
  std::uint64_t trace_spans = 0;
  std::uint64_t trace_spans_dropped = 0;

  // Fraction of cache lookups answered locally without any network.
  double warm_hit_ratio() const;

  bool operator==(const SessionReport&) const = default;
};

// One-line summary `hispar measure --sessions` prints:
// "sessions: X ok, Y degraded, Z quarantined over S sites; P pages,
//  warm-hit ratio R%"
std::string session_summary_line(const SessionReport& report);

// Multi-line human-readable report. Ends with '\n'.
std::string render_session_report_text(const SessionReport& report);

// {"schema":"hispar-session-report-v1",...}; byte-stable.
void write_session_report_json(std::ostream& out,
                               const SessionReport& report);

}  // namespace hispar::obs
