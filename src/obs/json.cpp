#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace hispar::obs {

std::string json_number(double value) {
  if (!std::isfinite(value)) value = 0.0;
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object)
    if (name == key) return &value;
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return value;
  }

 private:
  // parse_value recurses per nesting level, so an adversarial input of
  // a few hundred kilobytes of '[' would otherwise walk off the stack.
  // Our own writers emit at most ~6 levels; 200 is far beyond any real
  // artifact while keeping worst-case stack use a few hundred frames.
  static constexpr int kMaxDepth = 200;
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writers only escape control characters, so a BMP code
          // point folded to a byte is enough here.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            // Minimal UTF-8 encoding for completeness.
            if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            }
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    if (depth_ >= kMaxDepth) fail("nesting too deep");
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{++depth_};
    const char c = peek();
    JsonValue value;
    if (c == '{') {
      value.type = JsonValue::Type::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return value;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string_body();
        skip_ws();
        expect(':');
        value.object.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return value;
      }
    }
    if (c == '[') {
      value.type = JsonValue::Type::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return value;
      }
      while (true) {
        value.array.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return value;
      }
    }
    if (c == '"') {
      value.type = JsonValue::Type::kString;
      value.string = parse_string_body();
      return value;
    }
    if (consume_literal("true")) {
      value.type = JsonValue::Type::kBool;
      value.boolean = true;
      return value;
    }
    if (consume_literal("false")) {
      value.type = JsonValue::Type::kBool;
      value.boolean = false;
      return value;
    }
    if (consume_literal("null")) return value;
    // Number.
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("unexpected character");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    value.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + token + "'");
    value.type = JsonValue::Type::kNumber;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace hispar::obs
