#include "obs/metrics.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "obs/json.h"

namespace hispar::obs {

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  ++counts[static_cast<std::size_t>(it - bounds.begin())];
  ++count;
  sum += value;
  min = std::min(min, value);
  max = std::max(max, value);
}

void Histogram::merge_from(const Histogram& other) {
  if (bounds != other.bounds)
    throw std::logic_error("Histogram::merge_from: bucket boundaries differ");
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

const std::vector<double>& time_ms_buckets() {
  static const std::vector<double> buckets = {
      1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 30000, 60000};
  return buckets;
}

const std::vector<double>& bytes_buckets() {
  static const std::vector<double> buckets = {
      1024.0,        4096.0,        16384.0,        65536.0,
      262144.0,      1048576.0,     4194304.0,      16777216.0,
      67108864.0};
  return buckets;
}

std::uint64_t& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

double& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second.bounds != bounds)
      throw std::logic_error("MetricsRegistry: histogram '" + name +
                             "' re-registered with different boundaries");
    return it->second;
  }
  Histogram h;
  h.bounds = bounds;
  h.counts.assign(bounds.size() + 1, 0);
  return histograms_.emplace(name, std::move(h)).first->second;
}

std::uint64_t MetricsRegistry::counter_or(const std::string& name,
                                          std::uint64_t fallback) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? fallback : it->second;
}

double MetricsRegistry::gauge_or(const std::string& name,
                                 double fallback) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? fallback : it->second;
}

bool MetricsRegistry::empty() const {
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other,
                                 const std::string& gauge_prefix) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_)
    gauges_[gauge_prefix + name] = value;
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end())
      histograms_.emplace(name, h);
    else
      it->second.merge_from(h);
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\"schema\":\"hispar-metrics-v1\",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << json_number(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out << ',';
      out << json_number(h.bounds[i]);
    }
    out << "],\"buckets\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out << ',';
      out << h.counts[i];
    }
    out << "],\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
        << ",\"min\":" << json_number(h.count ? h.min : 0.0)
        << ",\"max\":" << json_number(h.count ? h.max : 0.0) << '}';
  }
  out << "}}";
}

}  // namespace hispar::obs
