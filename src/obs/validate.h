// Structural validation of the observability artifacts (the schema
// checks behind tools/obs_validate).
//
// Each validator parses `text` and walks the document against its
// schema, throwing std::runtime_error with a pointed message ("metrics:
// missing \"counters\"", "report: coverage counts do not add up") on
// the first violation. Living in the library rather than the tool keeps
// the checks directly unit-testable (tests/test_obs_validate.cpp feeds
// them per-field corruptions of every report flavour); the tool is a
// thin file-loading wrapper that maps a throw to exit 1.
#pragma once

#include <string_view>

namespace hispar::obs {

// --metrics artifact: schema hispar-metrics-v1.
void validate_metrics_json(std::string_view text);

// --trace artifact: Chrome trace with M/X events only.
void validate_trace_json(std::string_view text);

// --report artifact: dispatches on the document's "schema" member
// (hispar-report-v1 / hispar-listbuild-report-v1 /
// hispar-vantage-report-v1 / hispar-session-report-v1).
void validate_report_json(std::string_view text);

}  // namespace hispar::obs
