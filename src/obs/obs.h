// Observability wiring types shared by the instrumented subsystems.
//
// A ShardObs is the handle instrumentation sites receive: two nullable
// pointers into the shard's private registry and tracer plus the
// shard's trace thread id. Disabled observability is ShardObs{} — every
// instrumentation site guards with a null check, which is the whole
// cost of the feature when it is off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hispar::obs {

struct ObsOptions {
  bool enabled = false;
  // Per-shard trace ring capacity (spans). The newest spans win; the
  // overwritten count is exported as `trace.spans_dropped`.
  std::size_t span_cap = 8192;
  // Object-fetch spans are the bulk of a trace; campaigns that only
  // need page/site granularity can switch them off.
  bool trace_objects = true;
};

// Nullable view into one shard's telemetry. Copyable, cheap, and safe
// to pass by value down the hot paths.
struct ShardObs {
  MetricsRegistry* metrics = nullptr;
  Tracer* trace = nullptr;
  std::uint32_t tid = 0;  // Chrome trace thread id (shard id + 1)
  bool trace_objects = true;

  bool enabled() const { return metrics != nullptr; }
};

// One shard's finished telemetry: what gets checkpointed with the
// shard's observations and merged at campaign end.
struct ShardTelemetry {
  MetricsRegistry metrics;
  std::vector<TraceSpan> spans;  // oldest -> newest
  std::uint64_t spans_dropped = 0;

  bool empty() const { return metrics.empty() && spans.empty(); }
  bool operator==(const ShardTelemetry&) const = default;
};

// The campaign-level merge: per-shard registries folded in shard-id
// order (gauges prefixed "shard.<id>."), spans concatenated in shard-id
// order behind one campaign-level span.
struct RunTelemetry {
  bool enabled = false;
  MetricsRegistry metrics;
  std::vector<TraceSpan> spans;
  std::uint64_t spans_dropped = 0;
};

}  // namespace hispar::obs
