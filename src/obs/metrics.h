// Deterministic metrics registry.
//
// The observability layer ("Web View"-style per-fetch telemetry) must
// not weaken the campaign's core invariant: output is a pure function
// of (list, seed, shards) and bit-identical for any --jobs value. So
// metrics follow the same discipline as the measurements themselves:
//  * each shard owns a private MetricsRegistry, mutated only by the
//    worker running that shard (no atomics, no contention — and no
//    cross-shard ordering to get wrong);
//  * at campaign end the per-shard registries are merged in shard-id
//    order: counters and histograms sum (order-independent for
//    integers, order-fixed for the double sums), gauges are
//    shard-scoped and merged under a "shard.<id>." prefix;
//  * histogram bucket boundaries are fixed at registration and must
//    match exactly across shards — a mismatch throws rather than
//    silently merging incompatible distributions;
//  * JSON export iterates std::map (sorted names), so the artifact is
//    byte-stable.
//
// Hot-path cost: instrumented code holds plain pointers into the
// registry (std::map nodes are address-stable) and guards every update
// with a null check, so the disabled path is one predictable branch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace hispar::obs {

// Fixed-bucket histogram: counts[i] holds observations <= bounds[i],
// the last slot holds the overflow. Tracks count/sum/min/max for
// summary lines.
struct Histogram {
  std::vector<double> bounds;          // ascending upper bounds
  std::vector<std::uint64_t> counts;   // bounds.size() + 1 slots
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void observe(double value);
  // Sums counts and statistics; throws std::logic_error when bucket
  // boundaries differ.
  void merge_from(const Histogram& other);
  bool operator==(const Histogram&) const = default;
};

// Canonical bucket sets, shared by every instrumentation site so merged
// histograms always agree.
const std::vector<double>& time_ms_buckets();    // 1 ms .. 60 s, log-ish
const std::vector<double>& bytes_buckets();      // 1 KiB .. 64 MiB

class MetricsRegistry {
 public:
  // Accessors create the metric on first use and return an
  // address-stable reference (std::map node).
  std::uint64_t& counter(const std::string& name);
  double& gauge(const std::string& name);
  // Registers with the given boundaries on first use; re-registration
  // with different boundaries throws std::logic_error.
  Histogram& histogram(const std::string& name, const std::vector<double>& bounds);

  // Read-only lookups (0 / empty when absent).
  std::uint64_t counter_or(const std::string& name, std::uint64_t fallback = 0) const;
  double gauge_or(const std::string& name, double fallback = 0.0) const;

  const std::map<std::string, std::uint64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }
  bool empty() const;

  // Deterministic merge: counters and histograms sum; the other
  // registry's gauges are copied under `gauge_prefix` + name (gauges
  // carry shard-scoped values like the final virtual clock, which must
  // stay distinguishable after the merge).
  void merge_from(const MetricsRegistry& other, const std::string& gauge_prefix = "");

  // {"schema":"hispar-metrics-v1","counters":{...},"gauges":{...},
  //  "histograms":{...}} with sorted keys; byte-stable.
  void write_json(std::ostream& out) const;

  bool operator==(const MetricsRegistry&) const = default;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace hispar::obs
