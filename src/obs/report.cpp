#include "obs/report.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace hispar::obs {

namespace {

double ratio(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return 0.0;
  return static_cast<double>(part) / static_cast<double>(whole);
}

std::string pct(double fraction) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace

double RunReport::dns_hit_rate() const {
  return ratio(dns_cache_hits, dns_queries);
}

double RunReport::cdn_edge_hit_rate() const {
  return ratio(cdn_edge_hits, cdn_requests);
}

double RunReport::shard_skew_s() const {
  if (shards.empty()) return 0.0;
  double lo = shards.front().clock_end_s;
  double hi = lo;
  for (const auto& shard : shards) {
    lo = std::min(lo, shard.clock_end_s);
    hi = std::max(hi, shard.clock_end_s);
  }
  return hi - lo;
}

std::string summary_line(const RunReport& report) {
  std::ostringstream os;
  os << "campaign: " << report.sites_ok << " ok, " << report.sites_degraded
     << " degraded, " << report.sites_quarantined << " quarantined; "
     << report.total_retries << " retries, " << report.failed_fetches
     << " failed fetches, " << report.degraded_fetches << " partial loads";
  bool any_cause = false;
  for (const auto& fault : report.faults)
    any_cause = any_cause || fault.sites_quarantined > 0;
  if (any_cause) {
    os << "; quarantined by:";
    bool first = true;
    for (const auto& fault : report.faults) {
      if (fault.sites_quarantined == 0) continue;
      os << (first ? " " : ", ") << fault.kind << ' '
         << fault.sites_quarantined;
      first = false;
    }
  }
  return os.str();
}

std::string render_report_text(const RunReport& report) {
  std::ostringstream os;
  os << "run report:\n";
  os << "  coverage: " << report.sites_total << " sites ("
     << report.sites_ok << " ok, " << report.sites_degraded << " degraded, "
     << report.sites_quarantined << " quarantined), "
     << report.page_fetches << " page fetches ("
     << report.failed_fetches << " failed, " << report.degraded_fetches
     << " partial), " << report.internal_pages_measured
     << " internal pages measured\n";
  bool any_fault = false;
  bool any_cause = false;
  for (const auto& fault : report.faults) {
    any_fault = any_fault || fault.failed_fetches > 0 || fault.injected > 0 ||
                fault.sites_quarantined > 0;
    any_cause = any_cause || fault.sites_quarantined > 0;
  }
  if (any_fault) {
    // The third column appears only when some root cause is known, so
    // quarantine-free reports keep the historical bytes.
    os << (any_cause ? "  faults (injected / fetches lost / sites lost):\n"
                     : "  faults (injected / fetches lost):\n");
    for (const auto& fault : report.faults) {
      if (fault.failed_fetches == 0 && fault.injected == 0 &&
          fault.sites_quarantined == 0)
        continue;
      os << "    " << fault.kind << ": " << fault.injected << " / "
         << fault.failed_fetches;
      if (any_cause) os << " / " << fault.sites_quarantined;
      os << '\n';
    }
  }
  if (report.telemetry) {
    os << "  dns: " << report.dns_queries << " queries, "
       << pct(report.dns_hit_rate()) << " cache hits\n";
    os << "  cdn: " << report.cdn_requests << " requests, "
       << pct(report.cdn_edge_hit_rate()) << " edge hits ("
       << report.cdn_edge_lru_hits << " own-traffic), "
       << report.cdn_parent_hits << " parent hits, "
       << report.cdn_origin_fetches << " origin fetches, "
       << report.cdn_lru_evictions << " LRU evictions\n";
    os << "  shards: " << report.shards.size() << " active, virtual-clock skew "
       << json_number(report.shard_skew_s()) << " s\n";
    os << "  trace: " << report.trace_spans << " spans kept, "
       << report.trace_spans_dropped << " dropped; "
       << report.wait_samples_dropped << " wait samples dropped\n";
  }
  return os.str();
}

void write_report_json(std::ostream& out, const RunReport& report) {
  out << "{\"schema\":\"hispar-report-v1\",\"coverage\":{"
      << "\"sites_total\":" << report.sites_total
      << ",\"sites_ok\":" << report.sites_ok
      << ",\"sites_degraded\":" << report.sites_degraded
      << ",\"sites_quarantined\":" << report.sites_quarantined
      << ",\"page_fetches\":" << report.page_fetches
      << ",\"failed_fetches\":" << report.failed_fetches
      << ",\"degraded_fetches\":" << report.degraded_fetches
      << ",\"total_retries\":" << report.total_retries
      << ",\"internal_pages_measured\":" << report.internal_pages_measured
      << "},\"faults\":[";
  for (std::size_t i = 0; i < report.faults.size(); ++i) {
    const auto& fault = report.faults[i];
    if (i) out << ',';
    out << "{\"kind\":\"" << json_escape(fault.kind)
        << "\",\"failed_fetches\":" << fault.failed_fetches
        << ",\"injected\":" << fault.injected;
    if (fault.sites_quarantined > 0)
      out << ",\"sites_quarantined\":" << fault.sites_quarantined;
    out << '}';
  }
  out << "],\"caches\":{\"dns_queries\":" << report.dns_queries
      << ",\"dns_cache_hits\":" << report.dns_cache_hits
      << ",\"dns_hit_rate\":" << json_number(report.dns_hit_rate())
      << ",\"cdn_requests\":" << report.cdn_requests
      << ",\"cdn_edge_hits\":" << report.cdn_edge_hits
      << ",\"cdn_edge_hit_rate\":" << json_number(report.cdn_edge_hit_rate())
      << ",\"cdn_edge_lru_hits\":" << report.cdn_edge_lru_hits
      << ",\"cdn_parent_hits\":" << report.cdn_parent_hits
      << ",\"cdn_origin_fetches\":" << report.cdn_origin_fetches
      << ",\"cdn_lru_evictions\":" << report.cdn_lru_evictions
      << "},\"loader\":{\"wait_samples_dropped\":"
      << report.wait_samples_dropped
      << "},\"trace\":{\"spans\":" << report.trace_spans
      << ",\"spans_dropped\":" << report.trace_spans_dropped
      << "},\"shards\":[";
  for (std::size_t i = 0; i < report.shards.size(); ++i) {
    const auto& shard = report.shards[i];
    if (i) out << ',';
    out << "{\"shard\":" << shard.shard << ",\"sites\":" << shard.sites
        << ",\"fetches\":" << shard.fetches << ",\"clock_end_s\":"
        << json_number(shard.clock_end_s) << '}';
  }
  out << "],\"shard_skew_s\":" << json_number(report.shard_skew_s())
      << ",\"telemetry\":" << (report.telemetry ? "true" : "false") << '}';
}

namespace {

std::string usd(double amount) {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << amount;
  return os.str();
}

}  // namespace

std::string listbuild_summary_line(const ListBuildReport& report) {
  std::ostringstream os;
  os << "list build: " << report.weeks << " weeks, " << report.sites_accepted
     << " sites accepted, " << report.queries_billed << " queries (+"
     << report.speculative_queries << " speculative); " << report.retries
     << " retries, " << report.sites_quarantined << " quarantined";
  return os.str();
}

std::string render_listbuild_report_text(const ListBuildReport& report) {
  std::ostringstream os;
  os << "list-build report:\n";
  os << "  scan: " << report.sites_examined << " sites examined ("
     << report.sites_accepted << " accepted, " << report.sites_dropped
     << " dropped, " << report.sites_missing << " missing, "
     << report.sites_quarantined << " quarantined) over " << report.weeks
     << " weeks from week " << report.start_week << '\n';
  os << "  billing: " << report.queries_billed << " queries (+"
     << report.speculative_queries << " speculative), " << report.retries
     << " retries";
  for (const auto& provider : report.providers)
    os << "; $" << usd(provider.spend_usd) << " at " << provider.provider
       << " pricing";
  os << '\n';
  for (const auto& week : report.week_lines) {
    os << "  week " << week.week << ": " << week.sites_accepted
       << " accepted / " << week.sites_examined << " examined, "
       << week.queries_billed << " queries (+" << week.speculative_queries
       << " speculative)";
    if (week.has_site_churn)
      os << "; site churn " << pct(week.site_churn);
    if (week.has_url_churn)
      os << ", internal-url churn " << pct(week.internal_url_churn);
    os << '\n';
  }
  bool any_fault = false;
  for (const auto& fault : report.faults)
    any_fault =
        any_fault || fault.injected > 0 || fault.sites_quarantined > 0;
  if (any_fault) {
    os << "  faults (injected / sites quarantined):\n";
    for (const auto& fault : report.faults) {
      if (fault.injected == 0 && fault.sites_quarantined == 0) continue;
      os << "    " << fault.kind << ": " << fault.injected << " / "
         << fault.sites_quarantined << '\n';
    }
  }
  if (report.telemetry)
    os << "  trace: " << report.trace_spans << " spans kept, "
       << report.trace_spans_dropped << " dropped\n";
  return os.str();
}

void write_listbuild_report_json(std::ostream& out,
                                 const ListBuildReport& report) {
  out << "{\"schema\":\"hispar-listbuild-report-v1\",\"coverage\":{"
      << "\"weeks\":" << report.weeks
      << ",\"start_week\":" << report.start_week
      << ",\"sites_examined\":" << report.sites_examined
      << ",\"sites_accepted\":" << report.sites_accepted
      << ",\"sites_dropped\":" << report.sites_dropped
      << ",\"sites_missing\":" << report.sites_missing
      << ",\"sites_quarantined\":" << report.sites_quarantined
      << "},\"billing\":{\"queries_billed\":" << report.queries_billed
      << ",\"speculative_queries\":" << report.speculative_queries
      << ",\"retries\":" << report.retries << ",\"providers\":[";
  for (std::size_t i = 0; i < report.providers.size(); ++i) {
    const auto& provider = report.providers[i];
    if (i) out << ',';
    out << "{\"provider\":\"" << json_escape(provider.provider)
        << "\",\"query_price_usd\":" << json_number(provider.query_price_usd)
        << ",\"spend_usd\":" << json_number(provider.spend_usd) << '}';
  }
  out << "]},\"weeks\":[";
  for (std::size_t i = 0; i < report.week_lines.size(); ++i) {
    const auto& week = report.week_lines[i];
    if (i) out << ',';
    out << "{\"week\":" << week.week
        << ",\"sites_accepted\":" << week.sites_accepted
        << ",\"sites_examined\":" << week.sites_examined
        << ",\"queries_billed\":" << week.queries_billed
        << ",\"speculative_queries\":" << week.speculative_queries
        << ",\"site_churn\":";
    if (week.has_site_churn) out << json_number(week.site_churn);
    else out << "null";
    out << ",\"internal_url_churn\":";
    if (week.has_url_churn) out << json_number(week.internal_url_churn);
    else out << "null";
    out << '}';
  }
  out << "],\"faults\":[";
  for (std::size_t i = 0; i < report.faults.size(); ++i) {
    const auto& fault = report.faults[i];
    if (i) out << ',';
    out << "{\"kind\":\"" << json_escape(fault.kind)
        << "\",\"injected\":" << fault.injected
        << ",\"sites_quarantined\":" << fault.sites_quarantined << '}';
  }
  out << "],\"trace\":{\"spans\":" << report.trace_spans
      << ",\"spans_dropped\":" << report.trace_spans_dropped
      << "},\"telemetry\":" << (report.telemetry ? "true" : "false") << '}';
}

std::string vantage_summary_line(const VantageReport& report) {
  std::size_t flipping = 0;
  for (const auto& metric : report.metric_lines)
    if (metric.sign_flip_fraction > 0.0) ++flipping;
  std::ostringstream os;
  os << "vantages: " << report.vantages << " vantage points over "
     << report.sites_total << " sites, " << report.sites_compared
     << " compared everywhere; " << flipping << " sign-flip metrics";
  return os.str();
}

std::string render_vantage_report_text(const VantageReport& report) {
  std::ostringstream os;
  os << "vantage report:\n";
  os << "  coverage: " << report.vantages << " vantage points, "
     << report.sites_total << " sites, " << report.sites_compared
     << " usable at every vantage\n";
  for (const auto& line : report.vantage_lines) {
    os << "  vantage " << line.vantage << " (" << line.name << ", "
       << line.region << "): " << line.sites_ok << " ok, "
       << line.sites_degraded << " degraded, " << line.sites_quarantined
       << " quarantined, " << line.failed_fetches << " failed fetches\n";
  }
  if (!report.metric_lines.empty()) {
    os << "  disagreement (median spread / max spread / sign flips):\n";
    for (const auto& metric : report.metric_lines) {
      os << "    " << metric.metric << ": ";
      if (metric.has_spread)
        os << json_number(metric.median_spread) << " / "
           << json_number(metric.max_spread);
      else
        os << "n/a / n/a";
      os << " / " << pct(metric.sign_flip_fraction) << '\n';
    }
  }
  if (report.telemetry)
    os << "  trace: " << report.trace_spans << " spans kept, "
       << report.trace_spans_dropped << " dropped\n";
  return os.str();
}

void write_vantage_report_json(std::ostream& out,
                               const VantageReport& report) {
  out << "{\"schema\":\"hispar-vantage-report-v1\",\"coverage\":{"
      << "\"vantages\":" << report.vantages
      << ",\"sites_total\":" << report.sites_total
      << ",\"sites_compared\":" << report.sites_compared
      << "},\"vantage_lines\":[";
  for (std::size_t i = 0; i < report.vantage_lines.size(); ++i) {
    const auto& line = report.vantage_lines[i];
    if (i) out << ',';
    out << "{\"vantage\":" << line.vantage << ",\"name\":\""
        << json_escape(line.name) << "\",\"region\":\""
        << json_escape(line.region)
        << "\",\"sites_ok\":" << line.sites_ok
        << ",\"sites_degraded\":" << line.sites_degraded
        << ",\"sites_quarantined\":" << line.sites_quarantined
        << ",\"failed_fetches\":" << line.failed_fetches << '}';
  }
  out << "],\"disagreement\":[";
  for (std::size_t i = 0; i < report.metric_lines.size(); ++i) {
    const auto& metric = report.metric_lines[i];
    if (i) out << ',';
    out << "{\"metric\":\"" << json_escape(metric.metric)
        << "\",\"median_spread\":";
    if (metric.has_spread) out << json_number(metric.median_spread);
    else out << "null";
    out << ",\"max_spread\":";
    if (metric.has_spread) out << json_number(metric.max_spread);
    else out << "null";
    out << ",\"sign_flip_fraction\":"
        << json_number(metric.sign_flip_fraction) << '}';
  }
  out << "],\"trace\":{\"spans\":" << report.trace_spans
      << ",\"spans_dropped\":" << report.trace_spans_dropped
      << "},\"telemetry\":" << (report.telemetry ? "true" : "false") << '}';
}

double SessionReport::warm_hit_ratio() const {
  return ratio(cache_fresh_hits, cache_lookups);
}

std::string session_summary_line(const SessionReport& report) {
  std::ostringstream os;
  os << "sessions: " << report.sessions_ok << " ok, "
     << report.sessions_degraded << " degraded, "
     << report.sessions_quarantined << " quarantined over "
     << report.sites_total << " sites; " << report.pages_loaded
     << " pages, warm-hit ratio " << pct(report.warm_hit_ratio());
  return os.str();
}

std::string render_session_report_text(const SessionReport& report) {
  std::ostringstream os;
  os << "session report:\n";
  os << "  coverage: " << report.sites_total << " sessions ("
     << report.sessions_ok << " ok, " << report.sessions_degraded
     << " degraded, " << report.sessions_quarantined << " quarantined), "
     << report.pages_loaded << " pages loaded, " << report.session_len
     << " internal pages per session\n";
  os << "  browser cache: " << report.cache_lookups << " lookups, "
     << report.cache_fresh_hits << " fresh hits ("
     << pct(report.warm_hit_ratio()) << "), " << report.cache_revalidations
     << " revalidations, " << report.cache_misses << " misses, "
     << report.cache_insertions << " insertions, " << report.cache_evictions
     << " evictions\n";
  if (!report.metric_lines.empty()) {
    os << "  cold-vs-warm landing-internal gap (cold / warm):\n";
    for (const auto& metric : report.metric_lines) {
      os << "    " << metric.metric << ": ";
      if (metric.has_values)
        os << json_number(metric.cold_landing_median -
                          metric.cold_internal_median)
           << " / "
           << json_number(metric.warm_landing_median -
                          metric.warm_internal_median);
      else
        os << "n/a / n/a";
      os << '\n';
    }
  }
  if (report.telemetry)
    os << "  trace: " << report.trace_spans << " spans kept, "
       << report.trace_spans_dropped << " dropped\n";
  return os.str();
}

void write_session_report_json(std::ostream& out,
                               const SessionReport& report) {
  out << "{\"schema\":\"hispar-session-report-v1\",\"coverage\":{"
      << "\"sites_total\":" << report.sites_total
      << ",\"sessions_ok\":" << report.sessions_ok
      << ",\"sessions_degraded\":" << report.sessions_degraded
      << ",\"sessions_quarantined\":" << report.sessions_quarantined
      << ",\"pages_loaded\":" << report.pages_loaded
      << ",\"session_len\":" << report.session_len
      << "},\"browser_cache\":{\"lookups\":" << report.cache_lookups
      << ",\"fresh_hits\":" << report.cache_fresh_hits
      << ",\"revalidations\":" << report.cache_revalidations
      << ",\"misses\":" << report.cache_misses
      << ",\"insertions\":" << report.cache_insertions
      << ",\"evictions\":" << report.cache_evictions
      << ",\"warm_hit_ratio\":" << json_number(report.warm_hit_ratio())
      << "},\"cold_vs_warm\":[";
  for (std::size_t i = 0; i < report.metric_lines.size(); ++i) {
    const auto& metric = report.metric_lines[i];
    if (i) out << ',';
    out << "{\"metric\":\"" << json_escape(metric.metric) << '"';
    const auto field = [&](const char* name, double value) {
      out << ",\"" << name << "\":";
      if (metric.has_values) out << json_number(value);
      else out << "null";
    };
    field("cold_landing_median", metric.cold_landing_median);
    field("cold_internal_median", metric.cold_internal_median);
    field("warm_landing_median", metric.warm_landing_median);
    field("warm_internal_median", metric.warm_internal_median);
    out << '}';
  }
  out << "],\"trace\":{\"spans\":" << report.trace_spans
      << ",\"spans_dropped\":" << report.trace_spans_dropped
      << "},\"telemetry\":" << (report.telemetry ? "true" : "false") << '}';
}

}  // namespace hispar::obs
