// Virtual-clock tracing.
//
// Spans record what the simulated campaign did *on the simulated
// timeline*: campaign -> shard -> site -> page-load attempt -> object
// fetch, with timestamps taken from the shard's virtual clock (never
// the wall clock, so a trace is as reproducible as the measurements).
// The export is Chrome trace_event JSON ("X" complete events), loadable
// in Perfetto / chrome://tracing: each shard appears as one named
// thread, and the spans nest by timestamp.
//
// Memory discipline: a Tracer is a fixed-capacity ring buffer. A
// campaign can emit one span per object fetch (~30 spans/page x 29k
// pages for H1K), so an unbounded trace would dwarf the measurements;
// instead the newest `cap` spans win, the overwritten count is
// reported, and — crucially — recording a span never allocates beyond
// the ring, never draws randomness and never touches the clock, so
// tracing cannot change results.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace hispar::obs {

struct TraceSpan {
  std::string name;
  std::string cat;
  std::int64_t ts_us = 0;   // virtual-clock start, microseconds
  std::int64_t dur_us = 0;  // virtual duration, microseconds
  // Chrome thread id: 0 is the campaign row, shard s renders as s + 1.
  std::uint32_t tid = 0;
  std::vector<std::pair<std::string, std::string>> args;

  bool operator==(const TraceSpan&) const = default;
};

// Virtual seconds -> trace microseconds, rounded deterministically.
std::int64_t to_trace_us(double seconds);

class Tracer {
 public:
  explicit Tracer(std::size_t span_cap = 8192);

  // Records into the ring; once full, the oldest span is overwritten.
  void record(TraceSpan span);

  std::size_t cap() const { return cap_; }
  std::size_t size() const;
  // Spans overwritten because the ring was full.
  std::uint64_t dropped() const;
  // Oldest -> newest, in recording order.
  std::vector<TraceSpan> ordered_spans() const;

 private:
  std::size_t cap_;
  std::vector<TraceSpan> ring_;
  std::size_t next_ = 0;        // overwrite cursor once the ring is full
  std::uint64_t recorded_ = 0;  // total record() calls
};

// Chrome trace_event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}
// with one thread_name metadata event per distinct tid (emitted in
// ascending tid order) followed by the spans in the given order.
// Byte-stable for a given span vector.
void write_chrome_trace(std::ostream& out, const std::vector<TraceSpan>& spans);

}  // namespace hispar::obs
