// Deterministic JSON for the observability layer.
//
// The metrics, trace and report artifacts carry a bit-identity
// guarantee (same output for any --jobs and across checkpoint resume),
// so their serialization must be deterministic down to the byte:
//  * objects are written in a caller-controlled (sorted) key order,
//  * doubles are printed with "%.17g" so every finite value round-trips
//    exactly through parse_json,
//  * no locale, no pointer-order iteration, no timestamps.
// The parser is a minimal recursive-descent reader used by
// tools/obs_validate and the tests to check the artifacts are
// well-formed; it accepts exactly the JSON subset the writers emit
// (plus standard escapes) and throws std::runtime_error on anything
// malformed.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hispar::obs {

// "%.17g" rendering of a finite double; non-finite values (which JSON
// cannot represent) are clamped to 0 — the observability layer never
// produces them on purpose.
std::string json_number(double value);

// Backslash-escapes '"', '\\' and control characters.
std::string json_escape(std::string_view text);

// Parsed JSON document. Object member order is preserved as written so
// byte-level expectations can be checked structurally too.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is(Type t) const { return type == t; }
  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

// Throws std::runtime_error (with a byte offset) on malformed input or
// trailing garbage.
JsonValue parse_json(std::string_view text);

}  // namespace hispar::obs
