#include "obs/trace.h"

#include <cmath>
#include <ostream>
#include <set>
#include <stdexcept>

#include "obs/json.h"

namespace hispar::obs {

std::int64_t to_trace_us(double seconds) {
  return static_cast<std::int64_t>(std::llround(seconds * 1e6));
}

Tracer::Tracer(std::size_t span_cap) : cap_(span_cap) {
  if (cap_ == 0) throw std::invalid_argument("Tracer: span cap must be >= 1");
}

void Tracer::record(TraceSpan span) {
  ++recorded_;
  if (ring_.size() < cap_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[next_] = std::move(span);
  next_ = (next_ + 1) % cap_;
}

std::size_t Tracer::size() const { return ring_.size(); }

std::uint64_t Tracer::dropped() const {
  return recorded_ <= cap_ ? 0 : recorded_ - cap_;
}

std::vector<TraceSpan> Tracer::ordered_spans() const {
  if (ring_.size() < cap_) return ring_;
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  return out;
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceSpan>& spans) {
  out << "{\"traceEvents\":[";
  bool first = true;
  // Name the rows so Perfetto shows "campaign" and "shard N" tracks.
  std::set<std::uint32_t> tids;
  for (const auto& span : spans) tids.insert(span.tid);
  for (std::uint32_t tid : tids) {
    if (!first) out << ',';
    first = false;
    const std::string name =
        tid == 0 ? "campaign" : "shard " + std::to_string(tid - 1);
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << name
        << "\"}}";
  }
  for (const auto& span : spans) {
    if (!first) out << ',';
    first = false;
    out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << span.tid
        << ",\"ts\":" << span.ts_us << ",\"dur\":" << span.dur_us
        << ",\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
        << json_escape(span.cat) << '"';
    if (!span.args.empty()) {
      out << ",\"args\":{";
      for (std::size_t i = 0; i < span.args.size(); ++i) {
        if (i) out << ',';
        out << '"' << json_escape(span.args[i].first) << "\":\""
            << json_escape(span.args[i].second) << '"';
      }
      out << '}';
    }
    out << '}';
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
}

}  // namespace hispar::obs
