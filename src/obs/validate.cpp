#include "obs/validate.h"

#include <stdexcept>
#include <string>

#include "obs/json.h"

namespace hispar::obs {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what);
}

void require(bool ok, const std::string& what) {
  if (!ok) fail(what);
}

const JsonValue& member(const JsonValue& value, const std::string& key,
                        JsonValue::Type type, const std::string& where) {
  const JsonValue* found = value.find(key);
  require(found != nullptr, where + ": missing \"" + key + "\"");
  require(found->is(type), where + ": \"" + key + "\" has wrong type");
  return *found;
}

void check_measure_report(const JsonValue& doc) {
  const JsonValue& coverage =
      member(doc, "coverage", JsonValue::Type::kObject, "report");
  const double total =
      member(coverage, "sites_total", JsonValue::Type::kNumber, "coverage")
          .number;
  const double accounted =
      member(coverage, "sites_ok", JsonValue::Type::kNumber, "coverage")
          .number +
      member(coverage, "sites_degraded", JsonValue::Type::kNumber, "coverage")
          .number +
      member(coverage, "sites_quarantined", JsonValue::Type::kNumber,
             "coverage")
          .number;
  require(total == accounted, "report: coverage counts do not add up");
  const JsonValue& faults =
      member(doc, "faults", JsonValue::Type::kArray, "report");
  for (const JsonValue& fault : faults.array) {
    member(fault, "kind", JsonValue::Type::kString, "report fault");
    member(fault, "failed_fetches", JsonValue::Type::kNumber, "report fault");
    member(fault, "injected", JsonValue::Type::kNumber, "report fault");
    // Quarantine root causes are emitted only when nonzero (fault-free
    // reports keep the historical bytes), so the member is optional —
    // but when present it must be a positive count.
    if (const JsonValue* quarantined = fault.find("sites_quarantined")) {
      require(quarantined->is(JsonValue::Type::kNumber),
              "report fault: \"sites_quarantined\" has wrong type");
      require(quarantined->number > 0.0,
              "report fault: \"sites_quarantined\" present but not positive");
    }
  }
  member(doc, "caches", JsonValue::Type::kObject, "report");
  member(doc, "loader", JsonValue::Type::kObject, "report");
  member(doc, "trace", JsonValue::Type::kObject, "report");
  const JsonValue& shards =
      member(doc, "shards", JsonValue::Type::kArray, "report");
  for (const JsonValue& shard : shards.array) {
    member(shard, "shard", JsonValue::Type::kNumber, "report shard");
    member(shard, "clock_end_s", JsonValue::Type::kNumber, "report shard");
  }
  member(doc, "shard_skew_s", JsonValue::Type::kNumber, "report");
  member(doc, "telemetry", JsonValue::Type::kBool, "report");
}

// The weekly list-refresh report (`hispar build --report-out`): the
// scan coverage identity, §7 billing per provider, per-week churn
// cells (null when undefined) and the fault taxonomy.
void check_listbuild_report(const JsonValue& doc) {
  const JsonValue& coverage =
      member(doc, "coverage", JsonValue::Type::kObject, "report");
  const double examined =
      member(coverage, "sites_examined", JsonValue::Type::kNumber, "coverage")
          .number;
  const double accounted =
      member(coverage, "sites_accepted", JsonValue::Type::kNumber, "coverage")
          .number +
      member(coverage, "sites_dropped", JsonValue::Type::kNumber, "coverage")
          .number +
      member(coverage, "sites_missing", JsonValue::Type::kNumber, "coverage")
          .number +
      member(coverage, "sites_quarantined", JsonValue::Type::kNumber,
             "coverage")
          .number;
  require(examined == accounted, "report: coverage counts do not add up");
  member(coverage, "weeks", JsonValue::Type::kNumber, "coverage");

  const JsonValue& billing =
      member(doc, "billing", JsonValue::Type::kObject, "report");
  member(billing, "queries_billed", JsonValue::Type::kNumber, "billing");
  member(billing, "speculative_queries", JsonValue::Type::kNumber, "billing");
  member(billing, "retries", JsonValue::Type::kNumber, "billing");
  const JsonValue& providers =
      member(billing, "providers", JsonValue::Type::kArray, "billing");
  require(!providers.array.empty(), "report: no billing providers");
  for (const JsonValue& provider : providers.array) {
    member(provider, "provider", JsonValue::Type::kString, "report provider");
    member(provider, "query_price_usd", JsonValue::Type::kNumber,
           "report provider");
    member(provider, "spend_usd", JsonValue::Type::kNumber,
           "report provider");
  }

  const JsonValue& weeks =
      member(doc, "weeks", JsonValue::Type::kArray, "report");
  for (const JsonValue& week : weeks.array) {
    member(week, "week", JsonValue::Type::kNumber, "report week");
    member(week, "sites_accepted", JsonValue::Type::kNumber, "report week");
    member(week, "queries_billed", JsonValue::Type::kNumber, "report week");
    for (const char* churn : {"site_churn", "internal_url_churn"}) {
      const JsonValue* cell = week.find(churn);
      require(cell != nullptr,
              std::string("report week: missing \"") + churn + "\"");
      require(cell->is(JsonValue::Type::kNumber) ||
                  cell->is(JsonValue::Type::kNull),
              std::string("report week: \"") + churn +
                  "\" is neither number nor null");
    }
  }

  const JsonValue& faults =
      member(doc, "faults", JsonValue::Type::kArray, "report");
  for (const JsonValue& fault : faults.array) {
    member(fault, "kind", JsonValue::Type::kString, "report fault");
    member(fault, "injected", JsonValue::Type::kNumber, "report fault");
    member(fault, "sites_quarantined", JsonValue::Type::kNumber,
           "report fault");
  }

  const JsonValue& trace =
      member(doc, "trace", JsonValue::Type::kObject, "report");
  member(trace, "spans", JsonValue::Type::kNumber, "report trace");
  member(trace, "spans_dropped", JsonValue::Type::kNumber, "report trace");
  member(doc, "telemetry", JsonValue::Type::kBool, "report");
}

// The multi-vantage report (`hispar measure --vantages --report-out`):
// per-vantage coverage lines and the cross-vantage disagreement table
// (spread cells null when no site is usable at every vantage).
void check_vantage_report(const JsonValue& doc) {
  const JsonValue& coverage =
      member(doc, "coverage", JsonValue::Type::kObject, "report");
  const double vantages =
      member(coverage, "vantages", JsonValue::Type::kNumber, "coverage")
          .number;
  member(coverage, "sites_total", JsonValue::Type::kNumber, "coverage");
  member(coverage, "sites_compared", JsonValue::Type::kNumber, "coverage");

  const JsonValue& lines =
      member(doc, "vantage_lines", JsonValue::Type::kArray, "report");
  require(static_cast<double>(lines.array.size()) == vantages,
          "report: vantage_lines count disagrees with coverage.vantages");
  for (const JsonValue& line : lines.array) {
    member(line, "vantage", JsonValue::Type::kNumber, "report vantage");
    member(line, "name", JsonValue::Type::kString, "report vantage");
    member(line, "region", JsonValue::Type::kString, "report vantage");
    member(line, "sites_ok", JsonValue::Type::kNumber, "report vantage");
    member(line, "sites_degraded", JsonValue::Type::kNumber, "report vantage");
    member(line, "sites_quarantined", JsonValue::Type::kNumber,
           "report vantage");
    member(line, "failed_fetches", JsonValue::Type::kNumber, "report vantage");
  }

  const JsonValue& disagreement =
      member(doc, "disagreement", JsonValue::Type::kArray, "report");
  for (const JsonValue& metric : disagreement.array) {
    member(metric, "metric", JsonValue::Type::kString, "report metric");
    bool has_spread = true;
    for (const char* spread : {"median_spread", "max_spread"}) {
      const JsonValue* cell = metric.find(spread);
      require(cell != nullptr,
              std::string("report metric: missing \"") + spread + "\"");
      require(cell->is(JsonValue::Type::kNumber) ||
                  cell->is(JsonValue::Type::kNull),
              std::string("report metric: \"") + spread +
                  "\" is neither number nor null");
      if (cell->is(JsonValue::Type::kNull)) has_spread = false;
    }
    const double flips = member(metric, "sign_flip_fraction",
                                JsonValue::Type::kNumber, "report metric")
                             .number;
    require(flips >= 0.0 && flips <= 1.0,
            "report metric: sign_flip_fraction out of [0, 1]");
    // Null spread cells mean no site compared at every vantage — then
    // there are no per-site deltas and the flip fraction must be 0.
    require(has_spread || flips == 0.0,
            "report metric: sign_flip_fraction nonzero with null spreads");
  }

  const JsonValue& trace =
      member(doc, "trace", JsonValue::Type::kObject, "report");
  member(trace, "spans", JsonValue::Type::kNumber, "report trace");
  member(trace, "spans_dropped", JsonValue::Type::kNumber, "report trace");
  member(doc, "telemetry", JsonValue::Type::kBool, "report");
}

// The browsing-session report (`hispar measure --sessions
// --report-out`): session coverage, the browser-cache accounting
// bound (lookup outcomes never exceed lookups, warm-hit ratio in
// [0, 1]) and the cold-vs-warm contrast table (cells null when no site
// is usable in both regimes).
void check_session_report(const JsonValue& doc) {
  const JsonValue& coverage =
      member(doc, "coverage", JsonValue::Type::kObject, "report");
  const double total =
      member(coverage, "sites_total", JsonValue::Type::kNumber, "coverage")
          .number;
  const double accounted =
      member(coverage, "sessions_ok", JsonValue::Type::kNumber, "coverage")
          .number +
      member(coverage, "sessions_degraded", JsonValue::Type::kNumber,
             "coverage")
          .number +
      member(coverage, "sessions_quarantined", JsonValue::Type::kNumber,
             "coverage")
          .number;
  require(total == accounted, "report: coverage counts do not add up");
  member(coverage, "pages_loaded", JsonValue::Type::kNumber, "coverage");
  member(coverage, "session_len", JsonValue::Type::kNumber, "coverage");

  const JsonValue& cache =
      member(doc, "browser_cache", JsonValue::Type::kObject, "report");
  const double lookups =
      member(cache, "lookups", JsonValue::Type::kNumber, "browser_cache")
          .number;
  const double classified =
      member(cache, "fresh_hits", JsonValue::Type::kNumber, "browser_cache")
          .number +
      member(cache, "revalidations", JsonValue::Type::kNumber,
             "browser_cache")
          .number +
      member(cache, "misses", JsonValue::Type::kNumber, "browser_cache")
          .number;
  // Not an equality: a stale lookup whose revalidation transfer failed
  // is counted in lookups but in none of the outcome buckets.
  require(classified <= lookups,
          "report: browser_cache fresh_hits + revalidations + misses "
          "exceed lookups");
  member(cache, "insertions", JsonValue::Type::kNumber, "browser_cache");
  member(cache, "evictions", JsonValue::Type::kNumber, "browser_cache");
  const double ratio =
      member(cache, "warm_hit_ratio", JsonValue::Type::kNumber,
             "browser_cache")
          .number;
  require(ratio >= 0.0 && ratio <= 1.0,
          "report: warm_hit_ratio out of [0, 1]");

  const JsonValue& contrast =
      member(doc, "cold_vs_warm", JsonValue::Type::kArray, "report");
  for (const JsonValue& metric : contrast.array) {
    member(metric, "metric", JsonValue::Type::kString, "report metric");
    for (const char* cell_name :
         {"cold_landing_median", "cold_internal_median",
          "warm_landing_median", "warm_internal_median"}) {
      const JsonValue* cell = metric.find(cell_name);
      require(cell != nullptr,
              std::string("report metric: missing \"") + cell_name + "\"");
      require(cell->is(JsonValue::Type::kNumber) ||
                  cell->is(JsonValue::Type::kNull),
              std::string("report metric: \"") + cell_name +
                  "\" is neither number nor null");
    }
  }

  const JsonValue& trace =
      member(doc, "trace", JsonValue::Type::kObject, "report");
  member(trace, "spans", JsonValue::Type::kNumber, "report trace");
  member(trace, "spans_dropped", JsonValue::Type::kNumber, "report trace");
  member(doc, "telemetry", JsonValue::Type::kBool, "report");
}

}  // namespace

void validate_metrics_json(std::string_view text) {
  const JsonValue doc = parse_json(text);
  require(doc.is(JsonValue::Type::kObject), "metrics: not an object");
  require(member(doc, "schema", JsonValue::Type::kString, "metrics").string ==
              "hispar-metrics-v1",
          "metrics: wrong schema");
  member(doc, "counters", JsonValue::Type::kObject, "metrics");
  member(doc, "gauges", JsonValue::Type::kObject, "metrics");
  const JsonValue& histograms =
      member(doc, "histograms", JsonValue::Type::kObject, "metrics");
  for (const auto& [name, histogram] : histograms.object) {
    const std::string where = "metrics histogram " + name;
    const auto& bounds =
        member(histogram, "bounds", JsonValue::Type::kArray, where);
    const auto& buckets =
        member(histogram, "buckets", JsonValue::Type::kArray, where);
    require(buckets.array.size() == bounds.array.size() + 1,
            where + ": bucket/bound count mismatch");
    member(histogram, "count", JsonValue::Type::kNumber, where);
    member(histogram, "sum", JsonValue::Type::kNumber, where);
  }
}

void validate_trace_json(std::string_view text) {
  const JsonValue doc = parse_json(text);
  require(doc.is(JsonValue::Type::kObject), "trace: not an object");
  const JsonValue& events =
      member(doc, "traceEvents", JsonValue::Type::kArray, "trace");
  for (const JsonValue& event : events.array) {
    require(event.is(JsonValue::Type::kObject), "trace: event not an object");
    const std::string phase =
        member(event, "ph", JsonValue::Type::kString, "trace event").string;
    require(phase == "M" || phase == "X",
            "trace: unexpected event phase '" + phase + "'");
    member(event, "pid", JsonValue::Type::kNumber, "trace event");
    member(event, "tid", JsonValue::Type::kNumber, "trace event");
    if (phase == "X") {
      member(event, "name", JsonValue::Type::kString, "trace event");
      member(event, "ts", JsonValue::Type::kNumber, "trace event");
      const double duration =
          member(event, "dur", JsonValue::Type::kNumber, "trace event").number;
      require(duration >= 0.0, "trace: negative span duration");
    }
  }
}

void validate_report_json(std::string_view text) {
  const JsonValue doc = parse_json(text);
  require(doc.is(JsonValue::Type::kObject), "report: not an object");
  const std::string& schema =
      member(doc, "schema", JsonValue::Type::kString, "report").string;
  if (schema == "hispar-report-v1")
    check_measure_report(doc);
  else if (schema == "hispar-listbuild-report-v1")
    check_listbuild_report(doc);
  else if (schema == "hispar-vantage-report-v1")
    check_vantage_report(doc);
  else if (schema == "hispar-session-report-v1")
    check_session_report(doc);
  else
    fail("report: unknown schema \"" + schema + "\"");
}

}  // namespace hispar::obs
