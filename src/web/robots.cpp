#include "web/robots.h"

#include "util/rng.h"

namespace hispar::web {

RobotsPolicy RobotsPolicy::sample(double disallowed_share, util::Rng& rng) {
  RobotsPolicy policy;
  policy.disallowed_share_ = disallowed_share;
  policy.salt_ = rng.next();
  if (disallowed_share > 0.0) {
    policy.disallowed_prefixes_ = {"/admin/", "/search?", "/private/",
                                   "/tmp/"};
  }
  return policy;
}

bool RobotsPolicy::allows(std::size_t page_index) const {
  if (disallowed_share_ <= 0.0) return true;
  // Stable hash-based assignment of pages to disallowed directories.
  util::SplitMix64 sm(salt_ ^ (page_index * 0x9e3779b97f4a7c15ULL));
  const double u =
      static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  return u >= disallowed_share_;
}

std::string RobotsPolicy::render() const {
  std::string out = "User-agent: *\n";
  if (disallowed_share_ <= 0.0) {
    out += "Disallow:\n";
    return out;
  }
  for (const auto& prefix : disallowed_prefixes_)
    out += "Disallow: " + prefix + "\n";
  return out;
}

}  // namespace hispar::web
