#include "web/thirdparty.h"

#include <cmath>
#include <stdexcept>

#include "util/distributions.h"

namespace hispar::web {

std::string_view to_string(ThirdPartyKind k) {
  switch (k) {
    case ThirdPartyKind::kAnalytics: return "analytics";
    case ThirdPartyKind::kAdNetwork: return "ad-network";
    case ThirdPartyKind::kTracker: return "tracker";
    case ThirdPartyKind::kSocial: return "social";
    case ThirdPartyKind::kCdnLibrary: return "cdn-library";
    case ThirdPartyKind::kFonts: return "fonts";
    case ThirdPartyKind::kVideo: return "video";
    case ThirdPartyKind::kHeaderBidding: return "header-bidding";
  }
  return "unknown";
}

namespace {

struct HeadSpec {
  const char* domain;
  ThirdPartyKind kind;
  bool flagged;
  int requests;
};

// The curated head mirrors the services the paper names (§5.3 lists the
// nytimes.com landing page's third parties) plus the usual suspects from
// tracker studies.
const HeadSpec kHead[] = {
    {"www.google-analytics.com", ThirdPartyKind::kAnalytics, true, 2},
    {"ad.doubleclick.net", ThirdPartyKind::kAdNetwork, true, 2},
    {"connect.facebook.net", ThirdPartyKind::kSocial, true, 2},
    {"fonts.gstatic.com", ThirdPartyKind::kFonts, false, 1},
    {"use.typekit.net", ThirdPartyKind::kFonts, false, 1},
    {"cdnjs.cloudflare.com", ThirdPartyKind::kCdnLibrary, false, 3},
    {"ajax.googleapis.com", ThirdPartyKind::kCdnLibrary, false, 2},
    {"www.googletagmanager.com", ThirdPartyKind::kAnalytics, true, 2},
    {"securepubads.g.doubleclick.net", ThirdPartyKind::kAdNetwork, true, 3},
    {"platform.twitter.com", ThirdPartyKind::kSocial, true, 2},
    {"www.youtube.com", ThirdPartyKind::kVideo, false, 1},
    {"player.vimeo.com", ThirdPartyKind::kVideo, false, 1},
    {"js-agent.newrelic.com", ThirdPartyKind::kAnalytics, true, 1},
    {"cdn.ampproject.org", ThirdPartyKind::kCdnLibrary, false, 2},
    {"static.criteo.net", ThirdPartyKind::kAdNetwork, true, 2},
    {"ib.adnxs.com", ThirdPartyKind::kHeaderBidding, true, 3},
    {"as.casalemedia.com", ThirdPartyKind::kHeaderBidding, true, 2},
    {"hbopenbid.pubmatic.com", ThirdPartyKind::kHeaderBidding, true, 2},
    {"fastlane.rubiconproject.com", ThirdPartyKind::kHeaderBidding, true, 2},
    {"c.amazon-adsystem.com", ThirdPartyKind::kHeaderBidding, true, 2},
    {"bat.bing.com", ThirdPartyKind::kTracker, true, 1},
    {"analytics.tiktok.com", ThirdPartyKind::kTracker, true, 2},
    {"sb.scorecardresearch.com", ThirdPartyKind::kTracker, true, 2},
    {"cdn.optimizely.com", ThirdPartyKind::kAnalytics, true, 1},
    {"snap.licdn.com", ThirdPartyKind::kTracker, true, 1},
    {"stats.wp.com", ThirdPartyKind::kAnalytics, true, 1},
    {"cdn.segment.com", ThirdPartyKind::kAnalytics, true, 1},
    {"script.hotjar.com", ThirdPartyKind::kTracker, true, 2},
    {"widget.intercom.io", ThirdPartyKind::kSocial, false, 2},
    {"maps.googleapis.com", ThirdPartyKind::kCdnLibrary, false, 3},
};

ThirdPartyKind sample_tail_kind(util::Rng& rng, bool& flagged) {
  // Tail composition: trackers and ad networks dominate the long tail of
  // the third-party ecosystem (EasyList has 73k+ patterns, §6.3).
  const double u = rng.uniform();
  if (u < 0.30) { flagged = true; return ThirdPartyKind::kTracker; }
  if (u < 0.52) { flagged = true; return ThirdPartyKind::kAdNetwork; }
  if (u < 0.62) { flagged = true; return ThirdPartyKind::kAnalytics; }
  if (u < 0.70) { flagged = true; return ThirdPartyKind::kHeaderBidding; }
  if (u < 0.82) { flagged = false; return ThirdPartyKind::kCdnLibrary; }
  if (u < 0.91) { flagged = false; return ThirdPartyKind::kSocial; }
  if (u < 0.98) { flagged = false; return ThirdPartyKind::kFonts; }
  flagged = false;
  return ThirdPartyKind::kVideo;
}

const char* tail_prefix(ThirdPartyKind k) {
  switch (k) {
    case ThirdPartyKind::kAnalytics: return "metrics";
    case ThirdPartyKind::kAdNetwork: return "ads";
    case ThirdPartyKind::kTracker: return "pixel";
    case ThirdPartyKind::kSocial: return "social";
    case ThirdPartyKind::kCdnLibrary: return "static";
    case ThirdPartyKind::kFonts: return "fonts";
    case ThirdPartyKind::kVideo: return "media";
    case ThirdPartyKind::kHeaderBidding: return "bid";
  }
  return "svc";
}

}  // namespace

ThirdPartyPool ThirdPartyPool::standard(std::size_t tail_size,
                                        std::uint64_t seed) {
  ThirdPartyPool pool;
  util::Rng rng(seed);
  int id = 0;
  pool.by_kind_.resize(8);

  for (const HeadSpec& spec : kHead) {
    ThirdPartyService s;
    s.id = id;
    s.domain = spec.domain;
    s.kind = spec.kind;
    s.flagged_by_adblock = spec.flagged;
    s.requests_per_embed = spec.requests;
    s.prevalence_rank = static_cast<std::size_t>(id) + 1;
    pool.services_.push_back(std::move(s));
    ++id;
  }
  for (std::size_t i = 0; i < tail_size; ++i) {
    ThirdPartyService s;
    s.id = id;
    bool flagged = false;
    s.kind = sample_tail_kind(rng, flagged);
    s.flagged_by_adblock = flagged;
    s.domain = std::string(tail_prefix(s.kind)) + ".thirdparty" +
               std::to_string(i) + ".com";
    // Trackers fire a script plus at most one beacon; content embeds
    // (libraries, fonts, players) pull more objects.
    s.requests_per_embed =
        static_cast<int>(flagged ? rng.uniform_int(1, 2) : rng.uniform_int(1, 4));
    s.prevalence_rank = static_cast<std::size_t>(id) + 1;
    pool.services_.push_back(std::move(s));
    ++id;
  }

  for (const auto& s : pool.services_) {
    // Zipf-ish popularity weight over prevalence rank.
    const double w = 1.0 / std::pow(static_cast<double>(s.prevalence_rank), 0.9);
    pool.services_[static_cast<std::size_t>(s.id)].popularity_weight = w;
    if (s.flagged_by_adblock) pool.tracker_ids_.push_back(s.id);
    pool.by_kind_[static_cast<std::size_t>(s.kind)].push_back(s.id);
  }
  return pool;
}

const ThirdPartyService& ThirdPartyPool::service(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= services_.size())
    throw std::out_of_range("ThirdPartyPool: bad service id");
  return services_[static_cast<std::size_t>(id)];
}

const ThirdPartyService& ThirdPartyPool::sample(util::Rng& rng,
                                                int kind_filter) const {
  // Zipf over prevalence rank via inverse-power sampling; rejection on
  // kind keeps head services appropriately dominant.
  for (int attempt = 0; attempt < 256; ++attempt) {
    const double u = rng.uniform();
    // Inverse CDF of a continuous Zipf-like density ~ r^-0.9 over
    // [1, N]: r = [1 + u*(N^0.1 - 1)]^10.
    const double n = static_cast<double>(services_.size());
    const double r = std::pow(1.0 + u * (std::pow(n, 0.1) - 1.0), 10.0);
    auto idx = static_cast<std::size_t>(r) - 1;
    if (idx >= services_.size()) idx = services_.size() - 1;
    const ThirdPartyService& s = services_[idx];
    if (kind_filter < 0 || static_cast<int>(s.kind) == kind_filter) return s;
  }
  // Fallback: uniform over the requested kind.
  if (kind_filter >= 0 && !by_kind_[static_cast<std::size_t>(kind_filter)].empty()) {
    const auto& ids = by_kind_[static_cast<std::size_t>(kind_filter)];
    return service(ids[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1))]);
  }
  return services_.front();
}

const ThirdPartyService& ThirdPartyPool::sample_tracker(util::Rng& rng) const {
  if (tracker_ids_.empty()) throw std::logic_error("no trackers in pool");
  for (int attempt = 0; attempt < 256; ++attempt) {
    const ThirdPartyService& s = sample(rng);
    if (s.flagged_by_adblock) return s;
  }
  return service(tracker_ids_[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(tracker_ids_.size()) - 1))]);
}

}  // namespace hispar::web
