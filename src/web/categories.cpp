#include "web/categories.h"

#include <array>

namespace hispar::web {

std::string_view to_string(SiteCategory c) {
  switch (c) {
    case SiteCategory::kNews: return "News";
    case SiteCategory::kShopping: return "Shopping";
    case SiteCategory::kBusiness: return "Business";
    case SiteCategory::kArts: return "Arts";
    case SiteCategory::kSports: return "Sports";
    case SiteCategory::kComputers: return "Computers";
    case SiteCategory::kScience: return "Science";
    case SiteCategory::kHealth: return "Health";
    case SiteCategory::kGames: return "Games";
    case SiteCategory::kSociety: return "Society";
    case SiteCategory::kReference: return "Reference";
    case SiteCategory::kWorld: return "World";
  }
  return "Unknown";
}

SiteCategory sample_category(util::Rng& rng) {
  // Weights sum to 1; World matches kNonEnglishSiteProb's order.
  static constexpr std::array<double, kSiteCategoryCount> weights = {
      0.13,  // News
      0.12,  // Shopping
      0.11,  // Business
      0.09,  // Arts
      0.07,  // Sports
      0.10,  // Computers
      0.05,  // Science
      0.05,  // Health
      0.07,  // Games
      0.06,  // Society
      0.01,  // Reference
      0.14,  // World
  };
  double u = rng.uniform();
  double acc = 0.0;
  for (int i = 0; i < kSiteCategoryCount; ++i) {
    acc += weights[static_cast<std::size_t>(i)];
    if (u < acc) return static_cast<SiteCategory>(i);
  }
  return SiteCategory::kReference;
}

net::Region sample_origin_region(SiteCategory c, util::Rng& rng) {
  using net::Region;
  if (c == SiteCategory::kWorld) {
    // Predominantly Asia/Europe/South America.
    const double u = rng.uniform();
    if (u < 0.45) return Region::kAsia;
    if (u < 0.75) return Region::kEurope;
    if (u < 0.92) return Region::kSouthAmerica;
    return Region::kOceania;
  }
  // US-centric categories: mostly North America, some Europe.
  const double u = rng.uniform();
  if (u < 0.72) return Region::kNorthAmerica;
  if (u < 0.90) return Region::kEurope;
  return Region::kAsia;
}

double us_traffic_share(SiteCategory c, util::Rng& rng) {
  if (c == SiteCategory::kWorld) return rng.uniform(0.005, 0.05);
  return rng.uniform(0.25, 0.65);
}

}  // namespace hispar::web
