// MIME taxonomy.
//
// §5.2: "We collapsed [MIME types] into nine categories (audio, data,
// font, HTML/CSS, image, JavaScript, JSON, video, and unknown) to
// simplify the analyses." All content-mix analysis uses these categories.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace hispar::web {

enum class MimeCategory : std::uint8_t {
  kAudio = 0,
  kData,
  kFont,
  kHtmlCss,
  kImage,
  kJavaScript,
  kJson,
  kVideo,
  kUnknown,
};
inline constexpr int kMimeCategoryCount = 9;

std::string_view to_string(MimeCategory c);

// Representative concrete MIME type for HAR records.
std::string_view representative_mime_type(MimeCategory c);

// Collapse a concrete MIME type string into a category (the paper's
// mapping direction when reading HAR files).
MimeCategory categorize_mime_type(std::string_view mime_type);

// Whether objects of this category contribute to the rendered viewport
// (used by the SpeedIndex visual-completeness integral).
bool is_visual(MimeCategory c);

// Static asset types are cacheable by default; documents and API-ish
// payloads usually are not.
bool default_cacheable(MimeCategory c);

// All categories, for iteration.
std::array<MimeCategory, kMimeCategoryCount> all_mime_categories();

}  // namespace hispar::web
