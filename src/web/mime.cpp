#include "web/mime.h"

#include "util/strings.h"

namespace hispar::web {

std::string_view to_string(MimeCategory c) {
  switch (c) {
    case MimeCategory::kAudio: return "audio";
    case MimeCategory::kData: return "data";
    case MimeCategory::kFont: return "font";
    case MimeCategory::kHtmlCss: return "html/css";
    case MimeCategory::kImage: return "image";
    case MimeCategory::kJavaScript: return "javascript";
    case MimeCategory::kJson: return "json";
    case MimeCategory::kVideo: return "video";
    case MimeCategory::kUnknown: return "unknown";
  }
  return "unknown";
}

std::string_view representative_mime_type(MimeCategory c) {
  switch (c) {
    case MimeCategory::kAudio: return "audio/mpeg";
    case MimeCategory::kData: return "application/octet-stream";
    case MimeCategory::kFont: return "font/woff2";
    case MimeCategory::kHtmlCss: return "text/html";
    case MimeCategory::kImage: return "image/jpeg";
    case MimeCategory::kJavaScript: return "application/javascript";
    case MimeCategory::kJson: return "application/json";
    case MimeCategory::kVideo: return "video/mp4";
    case MimeCategory::kUnknown: return "application/x-unknown";
  }
  return "application/x-unknown";
}

MimeCategory categorize_mime_type(std::string_view mime_type) {
  using util::contains_ci;
  if (contains_ci(mime_type, "javascript") || contains_ci(mime_type, "ecmascript"))
    return MimeCategory::kJavaScript;
  if (contains_ci(mime_type, "json")) return MimeCategory::kJson;
  if (contains_ci(mime_type, "html") || contains_ci(mime_type, "css") ||
      contains_ci(mime_type, "xhtml"))
    return MimeCategory::kHtmlCss;
  if (mime_type.starts_with("image/")) return MimeCategory::kImage;
  if (mime_type.starts_with("audio/")) return MimeCategory::kAudio;
  if (mime_type.starts_with("video/")) return MimeCategory::kVideo;
  if (mime_type.starts_with("font/") || contains_ci(mime_type, "woff") ||
      contains_ci(mime_type, "opentype") || contains_ci(mime_type, "truetype"))
    return MimeCategory::kFont;
  if (contains_ci(mime_type, "octet-stream") || contains_ci(mime_type, "csv") ||
      contains_ci(mime_type, "xml") || contains_ci(mime_type, "protobuf"))
    return MimeCategory::kData;
  return MimeCategory::kUnknown;
}

bool is_visual(MimeCategory c) {
  switch (c) {
    case MimeCategory::kImage:
    case MimeCategory::kHtmlCss:
    case MimeCategory::kVideo:
    case MimeCategory::kFont:
      return true;
    default:
      return false;
  }
}

bool default_cacheable(MimeCategory c) {
  switch (c) {
    case MimeCategory::kImage:
    case MimeCategory::kJavaScript:
    case MimeCategory::kFont:
    case MimeCategory::kAudio:
    case MimeCategory::kVideo:
      return true;
    case MimeCategory::kHtmlCss:   // documents often carry no-store;
    case MimeCategory::kJson:      // API responses are personalized
    case MimeCategory::kData:
    case MimeCategory::kUnknown:
      return false;
  }
  return false;
}

std::array<MimeCategory, kMimeCategoryCount> all_mime_categories() {
  return {MimeCategory::kAudio,      MimeCategory::kData,
          MimeCategory::kFont,       MimeCategory::kHtmlCss,
          MimeCategory::kImage,      MimeCategory::kJavaScript,
          MimeCategory::kJson,       MimeCategory::kVideo,
          MimeCategory::kUnknown};
}

}  // namespace hispar::web
