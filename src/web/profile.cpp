#include "web/profile.h"

#include <algorithm>
#include <cmath>

#include "web/calibration.h"

namespace hispar::web {

namespace {

namespace cal = calib;

std::array<double, kMimeCategoryCount> sample_mix(
    const std::array<double, 9>& medians, util::Rng& rng) {
  // medians order: {JS, IMG, HTML/CSS, JSON, FONT, DATA, AUDIO, VIDEO,
  // UNKNOWN} (calibration.h); map into MimeCategory indexing and jitter.
  std::array<double, kMimeCategoryCount> mix{};
  const auto set = [&](MimeCategory c, double v) {
    mix[static_cast<std::size_t>(c)] =
        v * std::exp(rng.normal(0.0, cal::kMixJitterSigma));
  };
  set(MimeCategory::kJavaScript, medians[0]);
  set(MimeCategory::kImage, medians[1]);
  set(MimeCategory::kHtmlCss, medians[2]);
  set(MimeCategory::kJson, medians[3]);
  set(MimeCategory::kFont, medians[4]);
  set(MimeCategory::kData, medians[5]);
  set(MimeCategory::kAudio, medians[6]);
  set(MimeCategory::kVideo, medians[7]);
  set(MimeCategory::kUnknown, medians[8]);
  double total = 0.0;
  for (double v : mix) total += v;
  for (double& v : mix) v /= total;
  return mix;
}

std::array<double, 5> landing_depths(const std::array<double, 5>& internal,
                                     double extra_boost) {
  // Landing pages shift mass to depths >= 2 (Fig. 6a).
  std::array<double, 5> out = internal;
  for (std::size_t d = 1; d < out.size(); ++d)
    out[d] *= cal::kLandingDepthTailBoost * extra_boost;
  double total = 0.0;
  for (double v : out) total += v;
  for (double& v : out) v /= total;
  return out;
}

}  // namespace

SiteProfile sample_site_profile(std::size_t rank, util::Rng& rng) {
  namespace c = calib;
  SiteProfile p;
  p.rank = std::max<std::size_t>(1, rank);
  p.category = sample_category(rng);
  p.origin_region = sample_origin_region(p.category, rng);
  p.us_traffic_share = web::us_traffic_share(p.category, rng);

  // Scale.
  p.internal_page_count = static_cast<std::size_t>(std::clamp(
      rng.lognormal(c::kInternalPageCountLogMedian, c::kInternalPageCountLogSigma),
      static_cast<double>(c::kMinInternalPages),
      static_cast<double>(c::kMaxInternalPages)));
  p.site_visit_rate = c::kTopSiteRequestsPerSecond /
                      std::pow(static_cast<double>(p.rank),
                               c::kSiteRateZipfExponent);
  const double rank_frac =
      std::min(1.0, static_cast<double>(p.rank) / 1000.0);
  p.landing_traffic_share =
      c::kLandingShareTop +
      (c::kLandingShareBottom - c::kLandingShareTop) * rank_frac;
  p.english_site = p.category == SiteCategory::kWorld
                       ? rng.chance(0.25)
                       : !rng.chance(0.03);
  p.english_page_fraction =
      p.english_site ? rng.uniform(0.85, 1.0)
                     : c::kNonEnglishPageEnglishFraction;

  // Structure & size.
  p.internal_objects_median =
      c::kInternalObjectsMedian *
      std::exp(rng.normal(0.0, c::kInternalObjectsSigma));
  const double object_mu = c::by_rank_bin(c::kObjectRatioMuByBin, p.rank);
  p.object_ratio_log = rng.normal(object_mu, c::kObjectRatioSigma);
  p.internal_bytes_median =
      c::kInternalBytesMedian * std::exp(rng.normal(0.0, c::kInternalBytesSigma));
  // ln(size ratio) is drawn correlated with ln(object ratio): heavier
  // landing pages are heavy mostly *because* they carry more objects
  // (Fig. 2's inset: only ~5% of sites are fewer-objects-but-larger).
  {
    const double size_mu = c::by_rank_bin(c::kSizeRatioMuByBin, p.rank);
    const double rho = c::kSizeObjectRatioCorrelation;
    const double standardized_object =
        (p.object_ratio_log - object_mu) / c::kObjectRatioSigma;
    p.size_ratio_log =
        size_mu + c::kSizeRatioSigma *
                      (rho * standardized_object +
                       std::sqrt(1.0 - rho * rho) * rng.normal());
  }
  p.within_site_objects_sigma = c::kWithinSiteObjectsSigma;
  p.within_site_size_sigma = c::kWithinSiteSizeSigma;

  // Content mix.
  p.landing_mix = sample_mix(c::kLandingMixMedians, rng);
  p.internal_mix = sample_mix(c::kInternalMixMedians, rng);

  // Cacheability & CDN.
  p.noncacheable_ratio_log =
      rng.normal(c::by_rank_bin(c::kNonCacheableRatioMuByBin, p.rank),
                 c::kNonCacheableRatioSigma);
  p.internal_noncacheable_frac = std::clamp(
      0.33 * std::exp(rng.normal(0.0, 0.35)), 0.05, 0.75);
  p.internal_cdn_fraction = std::clamp(
      c::kInternalCdnByteFractionMedian *
          std::exp(rng.normal(0.0, c::kCdnFractionSiteSigma)),
      0.02, 0.98);
  p.landing_cdn_shift =
      rng.normal(c::kCdnLandingShiftMu, c::kCdnLandingShiftSigma);

  // Origins.
  p.internal_domains_median =
      c::kInternalDomainsMedian *
      std::exp(rng.normal(0.0, c::kInternalDomainsSigma));
  p.domains_ratio_log = rng.normal(
      c::by_rank_bin(c::kDomainsRatioMuByBin, p.rank), c::kDomainsRatioSigma);

  // Depths.
  p.internal_depth_weights = c::kInternalDepthWeights;
  p.landing_depth_weights = landing_depths(
      c::kInternalDepthWeights,
      p.category == SiteCategory::kWorld ? c::kWorldDepthTailBoost : 1.0);
  if (p.category == SiteCategory::kWorld)
    p.size_ratio_log += c::kWorldSizeRatioBoost;

  // Landing craftsmanship (Fig. 2c's rank trend). All three levers
  // (render-blocking discipline, root-document think time, root CDN
  // delivery) scale together with the per-rank craftsmanship level.
  const double us_rank_multiplier = std::clamp(
      0.4 / std::max(1e-3, p.us_traffic_share), 1.0,
      c::kCraftUsRankMultiplierCap);
  const auto effective_rank = static_cast<std::size_t>(
      static_cast<double>(p.rank) * us_rank_multiplier);
  double craft =
      c::by_rank_bin(c::kLandingBlockingFactorByBin, effective_rank);
  if (p.category == SiteCategory::kWorld)
    craft *= c::kWorldLandingBlockingBoost;
  else if (p.category == SiteCategory::kShopping)
    craft *= c::kShoppingLandingBlockingFactor;
  p.landing_blocking_factor = craft * std::exp(rng.normal(0.0, 0.10));
  const double polish = std::min(1.0, craft);
  p.landing_root_think_factor = 0.5 + 0.5 * polish;
  p.landing_root_cdn_boost = 2.0 - polish;

  // Hints: top-100 sites have the larger landing/internal discrepancy
  // (Fig. 6b: 52% of Ht100 internal pages have no hints).
  p.landing_hint_zero_prob = c::kLandingHintZeroProb;
  p.internal_hint_zero_prob = p.rank <= 100
                                  ? c::kInternalHintZeroProbTop100
                                  : c::kInternalHintZeroProb;

  // Security.
  p.landing_is_http = rng.chance(c::kHttpLandingProb);
  {
    const double u = rng.uniform();
    if (u < c::kHttpInternalSiteNoneProb) {
      p.internal_http_rate = 0.0;
    } else if (u < c::kHttpInternalSiteNoneProb + c::kHttpInternalSiteLowProb) {
      p.internal_http_rate = rng.uniform(0.03, 0.25);
    } else {
      p.internal_http_rate = rng.uniform(0.45, 0.95);
    }
  }
  p.landing_has_mixed = !p.landing_is_http && rng.chance(c::kMixedLandingProb);
  {
    const double u = rng.uniform();
    if (u < c::kMixedInternalSiteNoneProb) {
      p.internal_mixed_rate = 0.0;
    } else if (u < c::kMixedInternalSiteNoneProb + c::kMixedInternalSiteLowProb) {
      p.internal_mixed_rate = rng.uniform(0.05, 0.3);
    } else {
      p.internal_mixed_rate = rng.uniform(0.4, 0.9);
    }
  }

  // Trackers & ads.
  p.tracker_free = rng.chance(c::kTrackerFreeSiteProb);
  p.trackers_on_landing_only =
      !p.tracker_free && rng.chance(c::kInternalTrackerFreeSiteProb);
  p.landing_tracker_embeds =
      c::kLandingTrackerMedian * std::exp(rng.normal(0.0, c::kLandingTrackerSigma));
  p.internal_tracker_embeds =
      p.landing_tracker_embeds *
      c::by_rank_bin(c::kTrackerInternalFactorByBin, p.rank) *
      std::exp(rng.normal(0.0, 0.3));
  p.hb_on_landing = rng.chance(c::kHbLandingProb);
  p.hb_on_internal =
      p.hb_on_landing ? rng.chance(0.9) : rng.chance(c::kHbInternalOnlyProb);
  p.landing_ad_slots =
      c::kAdSlotsLandingMedian * std::exp(rng.normal(0.0, c::kAdSlotsSigma));
  p.internal_ad_slots = p.landing_ad_slots * c::kAdSlotsInternalFactor *
                        std::exp(rng.normal(0.0, 0.25));

  // Protocol.
  p.http2 = rng.chance(c::kHttp2SiteProb);
  p.transport = rng.chance(c::kTls13Prob) ? net::TransportProtocol::kTcpTls13
                                          : net::TransportProtocol::kTcpTls12;
  return p;
}

}  // namespace hispar::web
