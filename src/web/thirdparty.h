// The third-party ecosystem.
//
// §6.2/§6.3: pages embed content from analytics, ad networks, trackers,
// social widgets, CDN-hosted libraries, fonts and video platforms. The
// pool has a short popular head (google-analytics-like services that are
// on a large share of all sites) and a long Zipf tail — which is what
// lets the 19 internal pages of a site collectively accumulate a median
// of 18 (p90: 80+) third-party domains never seen on the landing page.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace hispar::web {

enum class ThirdPartyKind : std::uint8_t {
  kAnalytics = 0,
  kAdNetwork,
  kTracker,
  kSocial,
  kCdnLibrary,
  kFonts,
  kVideo,
  kHeaderBidding,
};

std::string_view to_string(ThirdPartyKind k);

struct ThirdPartyService {
  int id = -1;
  std::string domain;          // e.g. "www.google-analytics.com"
  ThirdPartyKind kind = ThirdPartyKind::kAnalytics;
  // True if requests to this service match ad-block filter lists
  // (EasyList-style); §6.3 counts these as "tracking requests".
  bool flagged_by_adblock = false;
  // Typical requests a page makes to this service when embedded.
  int requests_per_embed = 1;
  // Prevalence rank in the pool (1 = most widely embedded).
  std::size_t prevalence_rank = 1;
  // Global request rate contribution (for CDN/DNS warmth), relative.
  double popularity_weight = 1.0;
};

class ThirdPartyPool {
 public:
  // Builds the standard pool: a curated head of well-known services plus
  // `tail_size` synthetic tail services.
  static ThirdPartyPool standard(std::size_t tail_size = 2000,
                                 std::uint64_t seed = 7);

  std::span<const ThirdPartyService> services() const { return services_; }
  const ThirdPartyService& service(int id) const;
  std::size_t size() const { return services_.size(); }

  // Sample a service by prevalence (Zipf over the pool). `kind_filter`
  // of -1 means any kind.
  const ThirdPartyService& sample(util::Rng& rng, int kind_filter = -1) const;

  // Sample a tracker/ad service (flagged_by_adblock == true).
  const ThirdPartyService& sample_tracker(util::Rng& rng) const;

 private:
  std::vector<ThirdPartyService> services_;
  std::vector<int> tracker_ids_;
  std::vector<std::vector<int>> by_kind_;
};

}  // namespace hispar::web
