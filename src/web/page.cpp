#include "web/page.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

namespace hispar::web {

double WebPage::total_bytes() const {
  double sum = 0.0;
  for (const auto& o : objects) sum += o.size_bytes;
  return sum;
}

std::size_t WebPage::unique_domains() const {
  std::set<std::string> hosts;
  for (const auto& o : objects) hosts.insert(o.host);
  return hosts.size();
}

std::size_t WebPage::non_cacheable_count() const {
  return static_cast<std::size_t>(
      std::count_if(objects.begin(), objects.end(),
                    [](const WebObject& o) { return !o.cacheable; }));
}

double WebPage::cacheable_bytes() const {
  double sum = 0.0;
  for (const auto& o : objects)
    if (o.cacheable) sum += o.size_bytes;
  return sum;
}

std::vector<double> WebPage::mix_fractions() const {
  std::vector<double> by_cat(kMimeCategoryCount, 0.0);
  double total = 0.0;
  for (const auto& o : objects) {
    by_cat[static_cast<std::size_t>(o.mime)] += o.size_bytes;
    total += o.size_bytes;
  }
  if (total > 0.0)
    for (auto& v : by_cat) v /= total;
  return by_cat;
}

std::size_t WebPage::objects_at_depth(int depth) const {
  return static_cast<std::size_t>(
      std::count_if(objects.begin(), objects.end(),
                    [depth](const WebObject& o) { return o.depth == depth; }));
}

int WebPage::max_depth() const {
  int d = 0;
  for (const auto& o : objects) d = std::max(d, o.depth);
  return d;
}

bool WebPage::has_mixed_content() const {
  if (!is_https()) return false;
  return std::any_of(objects.begin() + 1, objects.end(),
                     [](const WebObject& o) { return !o.is_https(); });
}

std::set<std::string> WebPage::third_party_domains() const {
  std::set<std::string> out;
  for (const auto& o : objects) {
    if (util::is_third_party(url.host, o.host))
      out.insert(util::registrable_domain(o.host));
  }
  return out;
}

void WebPage::rebuild_host_index() {
  hosts.clear();
  std::unordered_map<std::string_view, int> ids;
  ids.reserve(objects.size());
  for (auto& o : objects) {
    const auto [it, inserted] =
        ids.try_emplace(std::string_view(o.host), static_cast<int>(hosts.size()));
    if (inserted) hosts.push_back(o.host);
    o.host_id = it->second;
  }
}

std::size_t WebPage::tracking_requests() const {
  return static_cast<std::size_t>(std::count_if(
      objects.begin(), objects.end(),
      [](const WebObject& o) { return o.is_tracker_request || o.is_ad_request; }));
}

}  // namespace hispar::web
