// A web page: the unit of measurement.
//
// Aggregation helpers implement exactly the per-page statistics the
// paper computes from HAR files: total size (sum of all entries, §4),
// object count, unique origins (§5.3), non-cacheable object count
// (§5.1), content mix by MIME category (§5.2), per-depth object counts
// (§5.4), third-party domains (§6.2) and mixed-content status (§6.1).
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "net/handshake.h"
#include "util/url.h"
#include "web/categories.h"
#include "web/object.h"

namespace hispar::web {

// HTML5 resource hints present in the document head (§5.5).
struct ResourceHints {
  int dns_prefetch = 0;
  int preconnect = 0;
  int prefetch = 0;
  int prerender = 0;

  int total() const { return dns_prefetch + preconnect + prefetch + prerender; }
};

struct WebPage {
  util::Url url;
  std::string site_domain;          // registrable domain of the site
  bool is_landing = false;
  std::size_t page_index = 0;       // 0 = landing; >=1 internal
  SiteCategory category = SiteCategory::kNews;
  bool english = true;
  // Popularity of this page within its site (visits/second near the
  // vantage point); used by search ranking and CDN warmth.
  double visit_rate = 0.0;

  std::vector<WebObject> objects;   // objects[0] is the root document
  // Distinct object hosts in first-appearance order; every object's
  // host_id indexes into it. Generated pages carry the index (see
  // WebSite::page); hand-built pages may call rebuild_host_index() or
  // leave it empty — consumers treat it as an optimization, never a
  // requirement. Stale after objects are edited without a rebuild.
  std::vector<std::string> hosts;
  ResourceHints hints;

  // Advertising (§6.3).
  int ad_slots = 0;
  bool header_bidding = false;

  // Protocol support of the serving site (inherited from the profile).
  bool http2 = true;
  net::TransportProtocol transport = net::TransportProtocol::kTcpTls13;

  // Link structure, used by the crawler (§4 "limited exhaustive crawl")
  // and by the search engine's link-based ranking.
  std::vector<std::size_t> internal_links;   // page indices on this site
  std::vector<std::string> external_links;   // other sites' domains

  // --- aggregates (paper metrics) ---
  const WebObject& root() const { return objects.front(); }
  double total_bytes() const;
  std::size_t object_count() const { return objects.size(); }
  std::size_t unique_domains() const;
  std::size_t non_cacheable_count() const;
  double cacheable_bytes() const;
  // Fraction of total bytes per MIME category, indexed by MimeCategory.
  std::vector<double> mix_fractions() const;
  // #objects at exactly `depth`.
  std::size_t objects_at_depth(int depth) const;
  int max_depth() const;
  // HTTPS page including >= 1 cleartext-HTTP object (§6.1).
  bool has_mixed_content() const;
  bool is_https() const { return url.scheme == util::Scheme::kHttps; }
  // Registrable third-party domains referenced by this page (§6.2).
  std::set<std::string> third_party_domains() const;
  // Requests an EasyList-style blocker would flag (§6.3).
  std::size_t tracking_requests() const;

  // Rebuilds `hosts` and every object's host_id from `objects`. Pure
  // bookkeeping: draws no randomness, changes no measured property.
  void rebuild_host_index();
};

}  // namespace hispar::web
