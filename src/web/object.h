// A single fetchable object on a web page.
//
// Mirrors the information a HAR entry plus DevTools initiator-tracking
// exposes: URL, MIME type, size, cacheability, the dependency parent
// (which object's parse triggered this fetch, §5.4), and the delivery
// facts (CDN, origin region, popularity) the network simulation needs.
#pragma once

#include <optional>
#include <string>

#include "net/latency.h"
#include "util/url.h"
#include "web/mime.h"

namespace hispar::web {

struct WebObject {
  std::string url;
  std::string host;
  util::Scheme scheme = util::Scheme::kHttps;
  MimeCategory mime = MimeCategory::kUnknown;
  double size_bytes = 0.0;

  // Dependency graph (§5.4): depth 0 is the root HTML; an object at
  // depth d was discovered by parsing its parent at depth d-1.
  int depth = 0;
  int parent_index = -1;  // index into WebPage::objects; -1 for the root

  // Dense per-page host index: position of `host` in WebPage::hosts,
  // filled by WebPage::rebuild_host_index() (generated pages always
  // carry it). -1 when the page never built its host index; hot-path
  // consumers fall back to hashing `host` in that case.
  int host_id = -1;

  bool cacheable = true;
  bool via_cdn = false;
  int cdn_provider_id = -1;  // valid iff via_cdn
  std::optional<std::string> dns_cname;

  // Third-party / tracking classification (ground truth; the analysis
  // pipeline re-derives these from URL + filter lists, §6.2/§6.3).
  int third_party_id = -1;  // -1: first-party
  bool is_tracker_request = false;
  bool is_ad_request = false;

  // Delivery model inputs.
  net::Region origin_region = net::Region::kNorthAmerica;
  // Steady-state requests/second this object receives from clients near
  // the measurement vantage point (drives CDN/DNS cache warmth).
  double request_rate = 0.01;
  // Server think time if served by the origin itself (ms).
  double origin_think_ms = 20.0;
  // Render-blocking objects gate firstPaint (stylesheets, sync scripts
  // in the document head).
  bool render_blocking = false;

  // --- browser-cache identity (derived post-pass; no RNG draws) ---
  // Site-common first-party assets (logos, stylesheets, app bundles)
  // recur across the site's pages; page-specific assets do not.
  bool site_shared = false;
  // Stable identity in a per-client browser cache; empty for
  // non-cacheable objects. Site-shared and third-party assets collapse
  // onto per-host slots so a session revisiting the site can hit.
  std::string cache_key;
  // Standards-style freshness lifetime (max-age analogue, seconds);
  // 0 for non-cacheable objects.
  double freshness_lifetime_s = 0.0;

  bool is_first_party() const { return third_party_id < 0; }
  bool is_https() const { return scheme == util::Scheme::kHttps; }
};

}  // namespace hispar::web
