// The synthetic web.
//
// Builds a rank-ordered population of web sites (the measurement
// substrate standing in for the live web), including the five
// specially-profiled sites of the paper's §4 "limited exhaustive crawl"
// — wikipedia.org (rank 13), twitter.com (36), nytimes.com (67),
// howstuffworks.com (2014) and csail.mit.edu (unranked) — at their paper
// ranks when the configured universe is large enough.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cdn/provider.h"
#include "web/site.h"
#include "web/thirdparty.h"

namespace hispar::web {

struct SyntheticWebConfig {
  std::size_t site_count = 3000;
  std::uint64_t seed = 42;
  std::size_t third_party_tail = 2000;
  bool include_crawl_sites = true;  // the five §4 sites
};

// Identifiers for the §4 crawl sites.
enum class CrawlSite { kWikipedia, kTwitter, kNyTimes, kHowStuffWorks,
                       kAcademic };
std::string_view crawl_site_domain(CrawlSite s);
std::string_view crawl_site_label(CrawlSite s);  // WP/TW/NY/HS/AC

class SyntheticWeb {
 public:
  explicit SyntheticWeb(SyntheticWebConfig config = {});

  SyntheticWeb(const SyntheticWeb&) = delete;
  SyntheticWeb& operator=(const SyntheticWeb&) = delete;

  std::size_t site_count() const { return sites_.size(); }
  // rank is 1-based; the unranked academic site lives at the last rank.
  const WebSite& site_by_rank(std::size_t rank) const;
  const WebSite* find_site(std::string_view domain) const;
  const WebSite& crawl_site(CrawlSite s) const;

  const std::vector<std::string>& domains() const { return domains_; }
  const ThirdPartyPool& third_parties() const { return third_parties_; }
  const cdn::CdnRegistry& cdn_registry() const { return cdn_registry_; }
  const SyntheticWebConfig& config() const { return config_; }

 private:
  SyntheticWebConfig config_;
  ThirdPartyPool third_parties_;
  cdn::CdnRegistry cdn_registry_;
  std::vector<std::string> domains_;  // domains_[rank-1]
  std::vector<std::unique_ptr<WebSite>> sites_;
  std::unordered_map<std::string, std::size_t> domain_to_rank_;
};

}  // namespace hispar::web
