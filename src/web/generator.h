// The synthetic web.
//
// Builds a rank-ordered population of web sites (the measurement
// substrate standing in for the live web), including the five
// specially-profiled sites of the paper's §4 "limited exhaustive crawl"
// — wikipedia.org (rank 13), twitter.com (36), nytimes.com (67),
// howstuffworks.com (2014) and csail.mit.edu (unranked) — at their paper
// ranks when the configured universe is large enough.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cdn/provider.h"
#include "obs/metrics.h"
#include "web/site.h"
#include "web/thirdparty.h"

namespace hispar::web {

struct SyntheticWebConfig {
  std::size_t site_count = 3000;
  std::uint64_t seed = 42;
  std::size_t third_party_tail = 2000;
  bool include_crawl_sites = true;  // the five §4 sites
};

// Identifiers for the §4 crawl sites.
enum class CrawlSite { kWikipedia, kTwitter, kNyTimes, kHowStuffWorks,
                       kAcademic };
std::string_view crawl_site_domain(CrawlSite s);
std::string_view crawl_site_label(CrawlSite s);  // WP/TW/NY/HS/AC

class SyntheticWeb {
 public:
  explicit SyntheticWeb(SyntheticWebConfig config = {});

  SyntheticWeb(const SyntheticWeb&) = delete;
  SyntheticWeb& operator=(const SyntheticWeb&) = delete;

  std::size_t site_count() const { return sites_.size(); }
  // rank is 1-based; the unranked academic site lives at the last rank.
  const WebSite& site_by_rank(std::size_t rank) const;
  const WebSite* find_site(std::string_view domain) const;
  const WebSite& crawl_site(CrawlSite s) const;

  const std::vector<std::string>& domains() const { return domains_; }
  const ThirdPartyPool& third_parties() const { return third_parties_; }
  const cdn::CdnRegistry& cdn_registry() const { return cdn_registry_; }
  const SyntheticWebConfig& config() const { return config_; }

 private:
  SyntheticWebConfig config_;
  ThirdPartyPool third_parties_;
  cdn::CdnRegistry cdn_registry_;
  std::vector<std::string> domains_;  // domains_[rank-1]
  std::vector<std::unique_ptr<WebSite>> sites_;
  std::unordered_map<std::string, std::size_t> domain_to_rank_;
};

// Per-shard page materialization cache.
//
// WebSite::page(index) is a pure function of (site, index): it forks a
// private RNG stream and touches no shared state, so a materialized
// WebPage can be reused freely — the campaign's 10 repeated landing
// loads and page-level retries otherwise regenerate the identical
// object graph every time. Landing pages (index 0) are pinned per site
// (they are re-fetched across interleaved rounds); the most recent
// internal page is kept in a single slot (it is re-fetched only by
// page-level retries and crawl-style repeat access).
//
// Not thread-safe: one cache per shard, like the resolver and the CDN
// state. Reusing a cached page is output-identical to regenerating it,
// so campaigns with and without the cache produce the same bytes.
class PageCache {
 public:
  PageCache() = default;
  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // The returned reference stays valid until the next get() for the
  // same slot (pinned landing pages: until clear()).
  const WebPage& get(const WebSite& site, std::size_t page_index);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void clear();

  // Observability hook (same shape as CachingResolver::set_metrics):
  // resolves `web.page_cache.hit` / `web.page_cache.miss` counter
  // handles once; get() updates them behind a null check. Pass nullptr
  // to detach.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  // Pinned landing pages, one per site seen. Bounded by the number of
  // sites a shard measures; the cap below is a memory backstop for
  // pathological callers (beyond it, landing pages fall back to the
  // single-slot path).
  static constexpr std::size_t kMaxPinned = 4096;
  std::unordered_map<const WebSite*, WebPage> landing_;
  const WebSite* last_site_ = nullptr;
  std::size_t last_index_ = 0;
  bool last_valid_ = false;
  WebPage last_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t* metric_hits_ = nullptr;
  std::uint64_t* metric_misses_ = nullptr;
};

}  // namespace hispar::web
