// Per-site latent profile.
//
// Each site draws, once, the parameters that determine how its landing
// page differs from its internal pages. The paper's central observation
// — that these differences are *systematic per site*, not random noise
// across page loads — is embodied here: the landing/internal contrasts
// are site-level random variables with rank-dependent means
// (calibration.h), and all of a site's pages are then generated
// deterministically from them.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "net/handshake.h"
#include "net/latency.h"
#include "util/rng.h"
#include "web/categories.h"
#include "web/mime.h"

namespace hispar::web {

struct SiteProfile {
  std::size_t rank = 1;  // Alexa-style global rank (1-based)
  SiteCategory category = SiteCategory::kNews;
  net::Region origin_region = net::Region::kNorthAmerica;
  double us_traffic_share = 0.4;

  // --- scale ---
  std::size_t internal_page_count = 1000;
  double site_visit_rate = 1.0;        // visits/s globally
  double landing_traffic_share = 0.3;  // share of visits hitting "/"
  bool english_site = true;
  double english_page_fraction = 1.0;

  // --- structure & size ---
  double internal_objects_median = 75.0;   // median #objects, internal
  double object_ratio_log = 0.2;           // ln(landing / internal median)
  double internal_bytes_median = 1.9e6;
  double size_ratio_log = 0.3;
  double within_site_objects_sigma = 0.35;
  double within_site_size_sigma = 0.45;

  // --- content mix (normalized medians per page type) ---
  std::array<double, kMimeCategoryCount> landing_mix{};
  std::array<double, kMimeCategoryCount> internal_mix{};

  // --- cacheability & CDN ---
  double noncacheable_ratio_log = 0.3;  // ln(landing/internal noncacheable)
  double internal_noncacheable_frac = 0.28;  // of objects
  double internal_cdn_fraction = 0.55;       // per-object CDN probability
  double landing_cdn_shift = 0.05;           // additive for landing
  int primary_cdn_id = 0;                    // provider for first-party assets
  int secondary_cdn_id = 1;

  // --- origins ---
  double internal_domains_median = 16.0;
  double domains_ratio_log = 0.25;

  // --- dependency depth ---
  std::array<double, 5> internal_depth_weights{};
  std::array<double, 5> landing_depth_weights{};

  // --- resource hints ---
  double landing_hint_zero_prob = 0.31;
  double internal_hint_zero_prob = 0.45;

  // --- landing-page craftsmanship (§4: developers optimize landing
  // pages more meticulously; strongest at top ranks) ---
  double landing_blocking_factor = 0.8;   // on render-blocking probability
  double landing_root_think_factor = 0.75;
  double landing_root_cdn_boost = 1.3;

  // --- security ---
  bool landing_is_http = false;
  double internal_http_rate = 0.0;    // per-page probability
  bool landing_has_mixed = false;
  double internal_mixed_rate = 0.0;

  // --- trackers & ads ---
  double landing_tracker_embeds = 8.0;   // tracker services on landing
  double internal_tracker_embeds = 6.0;
  bool trackers_on_landing_only = false;
  bool tracker_free = false;
  bool hb_on_landing = false;
  bool hb_on_internal = false;
  double landing_ad_slots = 4.0;
  double internal_ad_slots = 3.0;

  // --- protocol ---
  bool http2 = true;
  net::TransportProtocol transport = net::TransportProtocol::kTcpTls13;
};

// Draws the profile for the site at `rank` (1-based). Deterministic
// given `rng`'s state; callers fork a per-site stream first.
SiteProfile sample_site_profile(std::size_t rank, util::Rng& rng);

}  // namespace hispar::web
