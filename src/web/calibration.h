// Population calibration for the synthetic web.
//
// The paper's findings are distributional statements over ~1000 sites
// (H1K). This header is the single place where those statements are
// turned into generator parameters. Every constant cites the paper
// statistic it is derived from; the derivation pattern for ratio
// statistics is:
//
//   Given  P[landing/internal ratio > 1] = p   (CDF crossing point)
//   and    geometric-mean ratio           = g  (reported average),
//   model  ln(ratio) ~ Normal(mu, sigma)  with
//          mu = ln(g)   and   sigma = ln(g) / PhiInverse(p).
//
// Where the paper reports a *rank trend* (Appendix A, Figs. 9 & 10), mu
// becomes a piecewise-linear function over ten rank bins of 100 sites.
// Where the paper describes a *mechanism* (CDN warmth, handshake counts,
// wait times, PLT, SpeedIndex), nothing here pins the outcome — the
// browser/CDN simulators produce it; EXPERIMENTS.md compares the emergent
// values against the paper.
#pragma once

#include <array>
#include <cstddef>

namespace hispar::web::calib {

// ---------------------------------------------------------------------
// Page size (total bytes). Fig. 2a: 65% of H1K sites have landing pages
// larger than the median internal page; geometric mean of the
// landing/internal size ratios is 1.34 ("34% larger on average").
// Ht30 (Fig. 2a): 54%. Fig. 9b: the median size delta peaks mid-rank.
//   mu = ln(1.34) = 0.293;  sigma = 0.293 / PhiInv(0.65) = 0.293/0.385.
// ---------------------------------------------------------------------
inline constexpr double kSizeRatioSigma = 0.76;
// Per-rank-bin mu for ln(size ratio); bin 0 = ranks 1-100 ... bin 9 =
// ranks 901-1000. Top bins near ln-ratio ~0.08 (P~0.54 as in Ht30),
// mid-rank bins larger (Fig. 9b's 0.5-0.8 MB bulge), gently declining at
// the bottom. Population blend: P[>0] ~= 0.65, geo-mean ~= 1.34.
inline constexpr std::array<double, 10> kSizeRatioMuByBin = {
    0.12, 0.15, 0.26, 0.35, 0.31, 0.25, 0.22, 0.20, 0.19, 0.16};

// Median total bytes of an *internal* page (per-site scale). HTTP
// Archive-era pages are ~1.5-2.5 MB; paper Fig. 2a shows +-2 MB deltas in
// the 5th/25th percentiles, implying multi-MB pages. Per-site scale is
// lognormal around 1.9 MB.
inline constexpr double kInternalBytesMedian = 1.9e6;
inline constexpr double kInternalBytesSigma = 0.55;
// Page-to-page size jitter among internal pages of one site (Figs. 3b/3c
// show wide within-site spread).
inline constexpr double kWithinSiteSizeSigma = 0.45;

// ---------------------------------------------------------------------
// Object count. Fig. 2b: 68% of sites' landing pages have more objects;
// geometric mean ratio 1.24. Ht30: 57%; Hb100: 68%.
//   mu = ln(1.24) = 0.215;  sigma = 0.215 / PhiInv(0.68) = 0.215/0.468.
// ---------------------------------------------------------------------
inline constexpr double kObjectRatioSigma = 0.46;
inline constexpr std::array<double, 10> kObjectRatioMuByBin = {
    0.12, 0.14, 0.21, 0.26, 0.23, 0.20, 0.18, 0.16, 0.15, 0.14};

// Median object count of an internal page: ~75 (Butkiewicz et al. report
// ~40-100 objects for popular pages; Fig. 3b's boxes span ~30-300).
inline constexpr double kInternalObjectsMedian = 75.0;
inline constexpr double kInternalObjectsSigma = 0.50;
inline constexpr double kWithinSiteObjectsSigma = 0.35;

// Correlation between a site's ln(size ratio) and ln(object ratio):
// heavier landing pages are heavier mostly because they have more
// objects. Calibrated to Fig. 2's inset: only ~5% of sites have landing
// pages with *fewer* objects yet *larger* bytes.
inline constexpr double kSizeObjectRatioCorrelation = 0.85;

// ---------------------------------------------------------------------
// Landing-page craftsmanship. §4/§5.5 argue that developers optimize
// landing pages "more meticulously": fewer render-blocking resources
// (async/deferred scripts, inlined critical CSS) and faster root
// documents (cached/pre-rendered shells). Strongest for top-ranked
// sites — this is what produces Fig. 2c's Ht30 reversal (77% of top-30
// landing pages are faster vs 56% overall).
// Multiplier on the per-object render-blocking probability of landing
// pages, per rank bin of 100:
// ---------------------------------------------------------------------
// > 1 at mid ranks: mid-popularity publishers load their front pages
// with hero carousels and tag-manager widgets without the engineering
// budget of the top sites (this is also where Fig. 9b's size bulge
// sits), producing Fig. 9a's positive-dPLT window at ranks ~400-600.
inline constexpr std::array<double, 10> kLandingBlockingFactorByBin = {
    0.42, 0.52, 0.75, 1.10, 1.18, 1.10, 0.95, 0.92, 0.90, 0.90};
// Sites optimize for their primary market: craftsmanship is keyed to the
// site's *effective U.S. rank* (rank / U.S. traffic share), so a World
// site popular abroad behaves like a long-tail site from the U.S.
// vantage point (Fig. 10c).
inline constexpr double kCraftUsRankMultiplierCap = 20.0;
// International portals carry notoriously dense front pages relative to
// their lean article pages (baidu-style); boosts Fig. 10c's reversal.
inline constexpr double kWorldLandingBlockingBoost = 2.80;
// International portals are also heavier and deeper than their article
// pages (dense front pages, CJK font payloads).
inline constexpr double kWorldSizeRatioBoost = 0.30;   // added to ln ratio
inline constexpr double kWorldDepthTailBoost = 1.55;   // extra on landing
// Conversion-driven retailers optimize their storefront landing pages
// aggressively (Fig. 10c: Shopping mirrors the Ht30 trend).
inline constexpr double kShoppingLandingBlockingFactor = 0.50;
// Landing root documents of well-crafted sites are served from warmed
// caches/pre-rendered shells; the think-time multiplier and the extra
// CDN-delivery likelihood are derived from the same craftsmanship level
// (see profile.cpp).

// ---------------------------------------------------------------------
// Content mix (fraction of total page bytes). Fig. 4c medians:
//   landing:  JS 45%, IMG ~29%, HTML/CSS ~18%, other 6%
//   internal: JS 50%, IMG ~21%, HTML/CSS ~22%, other 7%
// ("Internal pages have, in the median, 10% more JS bytes, 36% less
//  image bytes, and 22% more HTML/CSS bytes than landing pages.")
// Order: {JS, IMG, HTML/CSS, JSON, FONT, DATA, AUDIO, VIDEO, UNKNOWN}.
// ---------------------------------------------------------------------
// Landing first-party targets are set slightly below the paper's
// medians for JS because landing pages carry more JS-heavy third-party
// embeds; the *realized* page mix lands on the paper's numbers.
inline constexpr std::array<double, 9> kLandingMixMedians = {
    0.38, 0.36, 0.21, 0.020, 0.014, 0.008, 0.003, 0.010, 0.003};
inline constexpr std::array<double, 9> kInternalMixMedians = {
    0.49, 0.26, 0.24, 0.025, 0.014, 0.010, 0.003, 0.005, 0.003};
// Lognormal jitter applied per site to each mix weight before
// normalization (a crude Dirichlet).
inline constexpr double kMixJitterSigma = 0.18;

// ---------------------------------------------------------------------
// Cacheability. Fig. 4a: 66% of sites have landing pages with more
// non-cacheable objects; median +40%. Fig. 10a: rank trend crosses zero
// (+24 objects at ranks 200-300, -8 at 900-1000). Cacheable *bytes*
// fraction is similar across page types (§5.1).
//   sigma = ln(1.40)/PhiInv(0.66) = 0.336/0.412.
// ---------------------------------------------------------------------
inline constexpr double kNonCacheableRatioSigma = 1.05;
inline constexpr std::array<double, 10> kNonCacheableRatioMuByBin = {
    0.35, 0.62, 0.52, 0.40, 0.28, 0.20, 0.08, -0.05, -0.20, -0.35};
// Baseline probability that an object whose MIME category defaults to
// cacheable is nevertheless non-cacheable (cache-busting query strings,
// no-store), and vice versa.
inline constexpr double kCacheableFlip = 0.06;

// ---------------------------------------------------------------------
// CDN delivery. Fig. 4b: 57% of sites deliver a larger fraction of
// landing bytes via CDNs; median +13%. §5.1: X-Cache hits 16% higher for
// landing objects (emerges from popularity + CDN warmth, not set here).
//   sigma: ln(1.13)/PhiInv(0.57) = 0.122/0.176 = 0.69 on the
//   odds scale; we instead shift the per-object CDN probability.
// ---------------------------------------------------------------------
inline constexpr double kInternalCdnByteFractionMedian = 0.55;
inline constexpr double kCdnFractionSiteSigma = 0.30;
// Additive landing-page shift of the per-object CDN probability, drawn
// per site as Normal(mu, sigma):
inline constexpr double kCdnLandingShiftMu = 0.055;
inline constexpr double kCdnLandingShiftSigma = 0.31;

// ---------------------------------------------------------------------
// Multi-origin content. Fig. 5: 67% of sites' landing pages contact more
// unique domains; median +29%. Böttger et al. observe ~20 DNS queries
// per landing page, so internal median ~16. Fig. 10b: +11 domains at
// ranks 200-300, -2 at 900-1000.
//   sigma = ln(1.29)/PhiInv(0.67) = 0.255/0.440.
// ---------------------------------------------------------------------
inline constexpr double kDomainsRatioSigma = 0.45;
// Set above the paper's ln(1.29) because single-realization noise on
// the landing draw (roster dedup, flagged-filler skips) regresses the
// realized fraction toward 1/2; these values land the *measured*
// population on Fig. 5's 67% / +29%.
inline constexpr std::array<double, 10> kDomainsRatioMuByBin = {
    0.44, 0.60, 0.54, 0.48, 0.44, 0.38, 0.30, 0.22, 0.12, 0.04};
inline constexpr double kInternalDomainsMedian = 16.0;
inline constexpr double kInternalDomainsSigma = 0.32;

// ---------------------------------------------------------------------
// Dependency depth. Fig. 6a: landing pages have more objects at every
// depth >= 2; median +38% at depth 2. Baseline depth distribution of an
// internal page's objects (depth 1 dominates; the root HTML is depth 0):
// ---------------------------------------------------------------------
inline constexpr std::array<double, 5> kInternalDepthWeights = {
    0.68, 0.22, 0.075, 0.018, 0.007};  // depths 1..5+
// Landing pages shift mass toward deeper objects; multiplier on the
// weight of depth d >= 2 (renormalized).
inline constexpr double kLandingDepthTailBoost = 1.45;

// ---------------------------------------------------------------------
// Resource hints. Fig. 6b: 69% of landing pages use >= 1 hint; 45% of
// internal pages have none (52% in Ht100). Counts reach ~30.
// ---------------------------------------------------------------------
inline constexpr double kLandingHintZeroProb = 0.31;
inline constexpr double kInternalHintZeroProb = 0.45;
inline constexpr double kInternalHintZeroProbTop100 = 0.52;
inline constexpr double kHintCountLogMedian = 1.5;   // ~4.5 hints
inline constexpr double kHintCountLogSigma = 0.9;

// ---------------------------------------------------------------------
// Security (§6.1). 36/1000 sites serve the landing page over HTTP;
// 170/1000 have >= 1 (of 19) HTTP internal pages, 36 have >= 10.
// Mixed content: 35 landing pages; 194 sites with >= 1 mixed internal.
// ---------------------------------------------------------------------
inline constexpr double kHttpLandingProb = 0.036;
// Zero-inflated per-site rate of HTTP internal pages: most sites have
// none; a minority have a low rate; a few are badly misconfigured.
inline constexpr double kHttpInternalSiteNoneProb = 0.80;
inline constexpr double kHttpInternalSiteLowProb = 0.16;   // rate ~ U(0.03,0.25)
inline constexpr double kHttpInternalSiteHighProb = 0.04;  // rate ~ U(0.45,0.95)
inline constexpr double kMixedLandingProb = 0.035;
inline constexpr double kMixedInternalSiteNoneProb = 0.77;
inline constexpr double kMixedInternalSiteLowProb = 0.19;
inline constexpr double kMixedInternalSiteHighProb = 0.04;

// ---------------------------------------------------------------------
// Third parties (§6.2, Fig. 8b). Median 18 third-party domains appear on
// internal pages but never on the landing page; p90 >= 80.
// Mechanics: each site draws a landing third-party set and each internal
// page adds extras from a global Zipf tail.
// ---------------------------------------------------------------------
inline constexpr double kLandingThirdPartiesMedian = 14.0;
inline constexpr double kLandingThirdPartiesSigma = 0.55;
// Extra (not-on-landing) third parties per internal page:
inline constexpr double kInternalExtraTpMedian = 2.6;
inline constexpr double kInternalExtraTpSigma = 0.95;

// ---------------------------------------------------------------------
// Trackers & ads (§6.3, Fig. 8c). p80 tracking requests: landing 28 vs
// internal 20; ~10% of sites have trackers on the landing page only.
// Header bidding (of Ht100+Hb100's 200 sites): 17 on landing, +12 on
// internal only; ad slots p80: landing 9, internal 7.
// ---------------------------------------------------------------------
inline constexpr double kLandingTrackerMedian = 6.0;
inline constexpr double kLandingTrackerSigma = 0.80;
// Internal/landing tracker-intensity ratio by rank bin: top sites keep
// article pages relatively clean; long-tail sites monetize articles
// harder than their front page. Drives Fig. 10a's sign reversal.
inline constexpr std::array<double, 10> kTrackerInternalFactorByBin = {
    0.60, 0.62, 0.65, 0.70, 0.75, 0.82, 0.92, 1.05, 1.25, 1.45};
inline constexpr double kInternalTrackerFreeSiteProb = 0.10;
inline constexpr double kTrackerFreeSiteProb = 0.12;     // no trackers at all
inline constexpr double kHbLandingProb = 0.085;          // 17/200
inline constexpr double kHbInternalOnlyProb = 0.06;      // 12/200
inline constexpr double kAdSlotsLandingMedian = 4.0;
inline constexpr double kAdSlotsInternalFactor = 0.78;
inline constexpr double kAdSlotsSigma = 0.85;

// ---------------------------------------------------------------------
// Popularity & traffic. Site visit rate follows a Zipf over ranks;
// within a site, the landing page receives a large share of direct
// traffic, making its objects warmer in CDN caches (§5.1: X-Cache hits
// 16% higher; §4: "resources in landing pages are more likely to be
// cached at a CDN, since they are also likely to be relatively more
// popular").
// ---------------------------------------------------------------------
// Visits/second of the rank-1 site *as relevant to one CDN edge's cache
// competition* (absolute scale is degenerate with the edge
// characteristic time; only the product matters).
inline constexpr double kTopSiteRequestsPerSecond = 30.0;
inline constexpr double kSiteRateZipfExponent = 0.95;
// Fraction of a site's page views that land on "/": decays with rank
// (top sites are destinations; long-tail sites are reached via search
// deep links).
inline constexpr double kLandingShareTop = 0.45;
inline constexpr double kLandingShareBottom = 0.22;
// Zipf exponent of internal-page popularity within a site.
inline constexpr double kPagePopularityZipf = 1.05;

// ---------------------------------------------------------------------
// Site structure.
// ---------------------------------------------------------------------
inline constexpr double kInternalPageCountLogMedian = 8.0;   // e^8 ~ 3000
inline constexpr double kInternalPageCountLogSigma = 1.6;
inline constexpr std::size_t kMinInternalPages = 40;
inline constexpr std::size_t kMaxInternalPages = 2'000'000;
// Fraction of sites that are predominantly non-English ("World"-like;
// §3: sites with < 10 English search results are dropped).
inline constexpr double kNonEnglishSiteProb = 0.14;
inline constexpr double kNonEnglishPageEnglishFraction = 0.004;

// Robots.txt: fraction of sites disallowing some prefix, and the share
// of pages under disallowed prefixes.
inline constexpr double kRobotsDisallowSiteProb = 0.35;
inline constexpr double kRobotsDisallowedPageShare = 0.08;

// HTTP/2 adoption per site (objects on H2 sites multiplex connections).
inline constexpr double kHttp2SiteProb = 0.62;

// TLS 1.3 adoption per origin.
inline constexpr double kTls13Prob = 0.55;

// ---------------------------------------------------------------------
// Rank-bin interpolation helper: piecewise-constant per 100-rank bin,
// clamped to the last bin beyond rank 1000 (H2K extends to rank ~2000).
// ---------------------------------------------------------------------
inline constexpr double by_rank_bin(const std::array<double, 10>& table,
                                    std::size_t rank /* 1-based */) {
  const std::size_t bin = rank == 0 ? 0 : (rank - 1) / 100;
  return table[bin >= table.size() ? table.size() - 1 : bin];
}

}  // namespace hispar::web::calib
