#include "web/generator.h"

#include <array>
#include <cmath>
#include <stdexcept>

#include "web/calibration.h"

namespace hispar::web {

namespace {

struct CrawlPreset {
  CrawlSite id;
  const char* domain;
  const char* label;
  std::size_t rank;  // paper Alexa ranks; 0 = unranked (placed last)
};

constexpr std::array<CrawlPreset, 5> kCrawlPresets = {{
    {CrawlSite::kWikipedia, "wikipedia.org", "WP", 13},
    {CrawlSite::kTwitter, "twitter.com", "TW", 36},
    {CrawlSite::kNyTimes, "nytimes.com", "NY", 67},
    {CrawlSite::kHowStuffWorks, "howstuffworks.com", "HS", 2014},
    {CrawlSite::kAcademic, "csail.mit.edu", "AC", 0},
}};

// Two-syllable name fragments for plausible synthetic domains.
constexpr std::array<const char*, 24> kNameA = {
    "alto", "brio", "cedar", "delta", "ember", "fjord", "gala", "halo",
    "iris", "jade", "kite",  "lumen", "mango", "nova", "onyx", "pico",
    "quill", "rivet", "sable", "tidal", "umber", "vela", "wren", "zephyr"};
constexpr std::array<const char*, 16> kNameB = {
    "press", "mart", "hub",  "works", "media", "base", "line", "forge",
    "cast",  "desk", "lane", "field", "point", "port", "wire", "labs"};

std::string synthesize_domain(std::size_t rank, util::Rng& rng) {
  const auto a = kNameA[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(kNameA.size()) - 1))];
  const auto b = kNameB[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(kNameB.size()) - 1))];
  return std::string(a) + b + std::to_string(rank) + ".com";
}

// §4 crawl-site profiles: the paper's Fig. 3b/3c show WP/AC with small,
// regular pages, TW JS-heavy, NY/HS heavy and highly variable.
void apply_crawl_preset(CrawlSite id, SiteProfile& p) {
  switch (id) {
    case CrawlSite::kWikipedia:
      p.category = SiteCategory::kReference;
      p.internal_page_count = calib::kMaxInternalPages;
      p.internal_objects_median = 22.0;
      p.internal_domains_median = 4.0;  // self-hosted, almost no embeds
      p.object_ratio_log = 0.45;  // landing portal is busier than articles
      p.internal_bytes_median = 0.45e6;
      p.size_ratio_log = 0.30;
      p.within_site_objects_sigma = 0.18;
      p.within_site_size_sigma = 0.35;
      p.tracker_free = true;
      p.landing_tracker_embeds = p.internal_tracker_embeds = 0.0;
      p.landing_ad_slots = p.internal_ad_slots = 0.0;
      p.hb_on_landing = p.hb_on_internal = false;
      p.internal_cdn_fraction = 0.85;
      p.english_site = true;
      p.english_page_fraction = 0.95;
      break;
    case CrawlSite::kTwitter:
      p.category = SiteCategory::kSociety;
      p.internal_page_count = calib::kMaxInternalPages;
      p.internal_objects_median = 95.0;
      p.object_ratio_log = -0.15;  // app shell: landing is lighter
      p.internal_bytes_median = 2.6e6;
      p.size_ratio_log = -0.10;
      p.within_site_objects_sigma = 0.30;
      p.within_site_size_sigma = 0.55;
      p.internal_mix[static_cast<std::size_t>(MimeCategory::kJavaScript)] = 0.62;
      p.landing_mix[static_cast<std::size_t>(MimeCategory::kJavaScript)] = 0.60;
      p.internal_cdn_fraction = 0.75;
      break;
    case CrawlSite::kNyTimes:
      p.category = SiteCategory::kNews;
      p.internal_page_count = 600000;
      p.internal_objects_median = 180.0;
      p.object_ratio_log = 0.35;
      p.internal_bytes_median = 3.6e6;
      p.size_ratio_log = 0.25;
      p.within_site_objects_sigma = 0.45;
      p.within_site_size_sigma = 0.60;
      p.landing_tracker_embeds = 16.0;
      p.internal_tracker_embeds = 12.0;
      p.hb_on_landing = p.hb_on_internal = true;
      p.landing_ad_slots = 8.0;
      p.internal_ad_slots = 6.0;
      p.internal_cdn_fraction = 0.70;
      break;
    case CrawlSite::kHowStuffWorks:
      p.category = SiteCategory::kReference;
      p.internal_page_count = 120000;
      p.internal_objects_median = 150.0;
      p.object_ratio_log = 0.20;
      p.internal_bytes_median = 3.0e6;
      p.size_ratio_log = 0.15;
      p.within_site_objects_sigma = 0.50;
      p.within_site_size_sigma = 0.65;
      p.landing_tracker_embeds = 14.0;
      p.internal_tracker_embeds = 12.0;
      p.hb_on_landing = p.hb_on_internal = true;
      p.landing_ad_slots = 7.0;
      p.internal_ad_slots = 7.0;
      break;
    case CrawlSite::kAcademic:
      p.category = SiteCategory::kScience;
      p.internal_page_count = 9000;
      p.internal_objects_median = 14.0;
      p.internal_domains_median = 3.0;
      p.object_ratio_log = 0.25;
      p.internal_bytes_median = 0.28e6;
      p.size_ratio_log = 0.35;
      p.within_site_objects_sigma = 0.40;
      p.within_site_size_sigma = 0.55;
      p.tracker_free = true;
      p.landing_tracker_embeds = p.internal_tracker_embeds = 0.0;
      p.landing_ad_slots = p.internal_ad_slots = 0.0;
      p.hb_on_landing = p.hb_on_internal = false;
      p.internal_cdn_fraction = 0.10;
      p.site_visit_rate = 0.02;  // unranked: negligible traffic
      break;
  }
}

}  // namespace

std::string_view crawl_site_domain(CrawlSite s) {
  for (const auto& preset : kCrawlPresets)
    if (preset.id == s) return preset.domain;
  return "";
}

std::string_view crawl_site_label(CrawlSite s) {
  for (const auto& preset : kCrawlPresets)
    if (preset.id == s) return preset.label;
  return "";
}

SyntheticWeb::SyntheticWeb(SyntheticWebConfig config)
    : config_(config),
      third_parties_(
          ThirdPartyPool::standard(config.third_party_tail, config.seed ^ 0x7)),
      cdn_registry_(cdn::CdnRegistry::standard()) {
  if (config_.site_count < 10)
    throw std::invalid_argument("SyntheticWeb: need >= 10 sites");

  util::Rng root(config_.seed);
  const std::size_t total =
      config_.site_count + (config_.include_crawl_sites ? 1 : 0);

  // Assign domains, splicing the named crawl sites in at their ranks.
  domains_.resize(total);
  if (config_.include_crawl_sites) {
    for (const auto& preset : kCrawlPresets) {
      std::size_t rank = preset.rank == 0 ? total : preset.rank;
      if (rank <= total && domains_[rank - 1].empty())
        domains_[rank - 1] = preset.domain;
    }
  }
  util::Rng name_rng = root.fork("names");
  for (std::size_t rank = 1; rank <= total; ++rank) {
    if (domains_[rank - 1].empty())
      domains_[rank - 1] = synthesize_domain(rank, name_rng);
  }
  for (std::size_t rank = 1; rank <= total; ++rank)
    domain_to_rank_[domains_[rank - 1]] = rank;

  // Build sites. The external-link sampler draws a uniformly random
  // other domain (crawlers only follow a site's internal links, but the
  // link graph is there for ranking experiments).
  const std::vector<std::string>* doms = &domains_;
  auto external_sampler = [doms](util::Rng& rng) {
    return (*doms)[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(doms->size()) - 1))];
  };

  sites_.reserve(total);
  for (std::size_t rank = 1; rank <= total; ++rank) {
    const std::string& domain = domains_[rank - 1];
    util::Rng site_rng = root.fork(domain);
    util::Rng profile_rng = site_rng.fork("profile");
    SiteProfile profile = sample_site_profile(rank, profile_rng);
    if (config_.include_crawl_sites) {
      for (const auto& preset : kCrawlPresets) {
        if (domain == preset.domain) {
          apply_crawl_preset(preset.id, profile);
          break;
        }
      }
    }
    sites_.push_back(std::make_unique<WebSite>(
        domain, profile, third_parties_, cdn_registry_, site_rng,
        external_sampler));
  }
}

const WebSite& SyntheticWeb::site_by_rank(std::size_t rank) const {
  if (rank == 0 || rank > sites_.size())
    throw std::out_of_range("SyntheticWeb: rank out of range");
  return *sites_[rank - 1];
}

const WebSite* SyntheticWeb::find_site(std::string_view domain) const {
  const auto it = domain_to_rank_.find(std::string(domain));
  if (it == domain_to_rank_.end()) return nullptr;
  return sites_[it->second - 1].get();
}

const WebSite& SyntheticWeb::crawl_site(CrawlSite s) const {
  const WebSite* site = find_site(crawl_site_domain(s));
  if (site == nullptr)
    throw std::logic_error(
        "SyntheticWeb: crawl sites disabled or universe too small");
  return *site;
}

const WebPage& PageCache::get(const WebSite& site, std::size_t page_index) {
  if (page_index == 0 && landing_.size() < kMaxPinned) {
    const auto it = landing_.find(&site);
    if (it != landing_.end()) {
      ++hits_;
      if (metric_hits_ != nullptr) ++*metric_hits_;
      return it->second;
    }
    ++misses_;
    if (metric_misses_ != nullptr) ++*metric_misses_;
    return landing_.emplace(&site, site.page(0)).first->second;
  }
  if (last_valid_ && last_site_ == &site && last_index_ == page_index) {
    ++hits_;
    if (metric_hits_ != nullptr) ++*metric_hits_;
    return last_;
  }
  ++misses_;
  if (metric_misses_ != nullptr) ++*metric_misses_;
  last_ = site.page(page_index);
  last_site_ = &site;
  last_index_ = page_index;
  last_valid_ = true;
  return last_;
}

void PageCache::clear() {
  landing_.clear();
  last_site_ = nullptr;
  last_index_ = 0;
  last_valid_ = false;
  last_ = WebPage{};
  hits_ = 0;
  misses_ = 0;
}

void PageCache::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_hits_ = nullptr;
    metric_misses_ = nullptr;
    return;
  }
  metric_hits_ = &metrics->counter("web.page_cache.hit");
  metric_misses_ = &metrics->counter("web.page_cache.miss");
}

}  // namespace hispar::web
