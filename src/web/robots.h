// robots.txt modelling.
//
// §3: "Search engines routinely crawl web sites exhaustively (except
// pages disallowed via robots.txt)". A site's robots policy hides a
// slice of its internal pages from the crawler/search engine — those
// pages exist and are reachable by a user, but never appear in Hispar.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace hispar::web {

class RobotsPolicy {
 public:
  // No restrictions.
  RobotsPolicy() = default;
  // Disallow a random share of the page-index space. Pages are assigned
  // to disallowed "directories" by hashing their index, so the policy is
  // stable for a given site.
  static RobotsPolicy sample(double disallowed_share, util::Rng& rng);

  bool allows(std::size_t page_index) const;
  double disallowed_share() const { return disallowed_share_; }

  // Rendered robots.txt body (for completeness / debugging).
  std::string render() const;

 private:
  double disallowed_share_ = 0.0;
  std::uint64_t salt_ = 0;
  std::vector<std::string> disallowed_prefixes_;
};

}  // namespace hispar::web
