// Alexa-style top-level site categories.
//
// Appendix A (Fig. 10c) splits sites by Alexa top-level category and
// finds a PLT reversal for the "World" category (sites popular outside
// the U.S., e.g. baidu.com): their landing pages are *slower* than their
// internal pages when measured from a U.S. vantage point, because their
// objects do not get CDN cache hits there.
#pragma once

#include <cstdint>
#include <string_view>

#include "net/latency.h"
#include "util/rng.h"

namespace hispar::web {

enum class SiteCategory : std::uint8_t {
  kNews = 0,
  kShopping,
  kBusiness,
  kArts,
  kSports,
  kComputers,
  kScience,
  kHealth,
  kGames,
  kSociety,
  kReference,
  kWorld,
};
inline constexpr int kSiteCategoryCount = 12;

std::string_view to_string(SiteCategory c);

// Draw a category with realistic prevalence (World ~14%, matching the
// non-English share; News/Shopping/Business each ~10-15%).
SiteCategory sample_category(util::Rng& rng);

// Home region of a site's origin infrastructure given its category:
// World sites live outside North America with high probability.
net::Region sample_origin_region(SiteCategory c, util::Rng& rng);

// Share of the site's traffic that originates in the U.S. — drives CDN
// edge warmth at the U.S. vantage point.
double us_traffic_share(SiteCategory c, util::Rng& rng);

}  // namespace hispar::web
