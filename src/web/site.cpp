#include "web/site.h"

#include <algorithm>
#include <array>
#include <set>
#include <cmath>
#include <stdexcept>

#include "util/distributions.h"
#include "web/calibration.h"

namespace hispar::web {

namespace {

namespace cal = calib;

// Typical transfer sizes per MIME category (median bytes, lognormal
// sigma). Indexed by MimeCategory.
struct CategorySize {
  double median;
  double sigma;
};
constexpr std::array<CategorySize, kMimeCategoryCount> kCategorySizes = {{
    {200e3, 0.7},  // audio
    {8e3, 0.9},    // data
    {35e3, 0.5},   // font
    {18e3, 1.0},   // html/css
    {25e3, 1.0},   // image
    {30e3, 1.0},   // javascript
    {3e3, 1.0},    // json
    {500e3, 0.7},  // video
    {5e3, 1.0},    // unknown
}};

constexpr std::array<const char*, 8> kSections = {
    "articles", "news", "products", "posts",
    "docs",     "media", "reviews",  "topics"};

// Third-party service request rate (requests/second near the vantage
// point): head services are globally hot; the tail cools quadratically
// in popularity weight so low-prevalence trackers actually miss caches.
double third_party_rate(const ThirdPartyService& s) {
  return 300.0 * s.popularity_weight * s.popularity_weight;
}

MimeCategory tp_object_mime(ThirdPartyKind kind, int request_index,
                            util::Rng& rng) {
  switch (kind) {
    case ThirdPartyKind::kAnalytics:
    case ThirdPartyKind::kTracker:
      return request_index == 0 ? MimeCategory::kJavaScript
                                : MimeCategory::kImage;  // beacon pixels
    case ThirdPartyKind::kAdNetwork:
    case ThirdPartyKind::kHeaderBidding:
      if (request_index == 0) return MimeCategory::kJavaScript;
      return rng.chance(0.5) ? MimeCategory::kImage : MimeCategory::kJson;
    case ThirdPartyKind::kSocial:
      return request_index == 0 ? MimeCategory::kJavaScript
                                : MimeCategory::kImage;
    case ThirdPartyKind::kCdnLibrary:
      return rng.chance(0.8) ? MimeCategory::kJavaScript
                             : MimeCategory::kHtmlCss;
    case ThirdPartyKind::kFonts:
      return request_index == 0 && rng.chance(0.4) ? MimeCategory::kHtmlCss
                                                   : MimeCategory::kFont;
    case ThirdPartyKind::kVideo:
      return request_index == 0 ? MimeCategory::kJavaScript
                                : MimeCategory::kVideo;
  }
  return MimeCategory::kUnknown;
}

double tp_object_size(MimeCategory mime, util::Rng& rng) {
  // Third-party payloads skew smaller than first-party ones (pixels,
  // beacons, bid requests); embedded players stream on demand, so even
  // video embeds transfer modest preview/manifest payloads at load time.
  if (mime == MimeCategory::kVideo)
    return std::max(10e3, rng.lognormal(std::log(80e3), 0.6));
  const auto& cs = kCategorySizes[static_cast<std::size_t>(mime)];
  double shrink = 0.8;  // fonts, data
  if (mime == MimeCategory::kImage || mime == MimeCategory::kJson)
    shrink = 0.15;  // beacon pixels, bid responses
  else if (mime == MimeCategory::kJavaScript)
    shrink = 0.45;  // tags and loaders, not app bundles
  else if (mime == MimeCategory::kHtmlCss)
    shrink = 0.5;
  return std::max(200.0,
                  rng.lognormal(std::log(cs.median * shrink),
                                std::min(cs.sigma, 0.7)));
}

// Standards-style freshness lifetime (a max-age analogue, seconds) for
// a cacheable object. Pure function of the object's cache identity and
// the site profile — no RNG, so generation draw order is untouched and
// sessions-off artifacts keep their bytes.
double freshness_lifetime_for(const WebObject& o, const SiteProfile& profile) {
  double base_s;
  switch (o.mime) {
    case MimeCategory::kJson:
    case MimeCategory::kData:
      base_s = 60.0;  // API-ish payloads revalidate quickly
      break;
    case MimeCategory::kHtmlCss:
      base_s = 600.0;  // stylesheets and fragments
      break;
    default:
      base_s = 3600.0;  // static assets: images, fonts, scripts, media
      break;
  }
  // Sites serving mostly cacheable content publish longer lifetimes.
  const double site_factor =
      std::clamp(1.5 - profile.internal_noncacheable_frac, 0.5, 1.5);
  // Deterministic per-object jitter in [0.5, 1.5), keyed by identity.
  const double jitter =
      0.5 + static_cast<double>(util::fnv1a(o.cache_key) % 1000) / 1000.0;
  return base_s * site_factor * jitter;
}

}  // namespace

WebSite::WebSite(std::string domain, SiteProfile profile,
                 const ThirdPartyPool& third_parties,
                 const cdn::CdnRegistry& cdn_registry, util::Rng site_rng,
                 std::function<std::string(util::Rng&)> external_domain_sampler)
    : domain_(std::move(domain)),
      profile_(profile),
      third_parties_(&third_parties),
      cdn_registry_(&cdn_registry),
      site_rng_(site_rng),
      external_domain_sampler_(std::move(external_domain_sampler)) {
  if (cdn_registry_->size() == 0)
    throw std::invalid_argument("WebSite: need at least one CDN provider");
  util::Rng setup = site_rng_.fork("setup");
  robots_ = setup.chance(cal::kRobotsDisallowSiteProb)
                ? RobotsPolicy::sample(cal::kRobotsDisallowedPageShare, setup)
                : RobotsPolicy();
  primary_cdn_id_ = static_cast<int>(setup.uniform_int(
      0, static_cast<std::int64_t>(cdn_registry_->size()) - 1));

  // Approximate H(n, s) = sum_{i<=n} i^-s: exact head + integral tail.
  const double s = cal::kPagePopularityZipf;
  const std::size_t n = profile_.internal_page_count;
  const std::size_t head = std::min<std::size_t>(n, 1000);
  double h = 0.0;
  for (std::size_t i = 1; i <= head; ++i)
    h += std::pow(static_cast<double>(i), -s);
  if (n > head) {
    h += (std::pow(static_cast<double>(n), 1.0 - s) -
          std::pow(static_cast<double>(head), 1.0 - s)) /
         (1.0 - s);
  }
  zipf_norm_ = h;

  // Stable per-site third-party roster (see header).
  util::Rng service_rng = site_rng_.fork("services");
  std::set<int> roster;
  int guard = 0;
  while (site_trackers_.size() < 12 && ++guard < 4000) {
    const ThirdPartyService& svc = third_parties_->sample_tracker(service_rng);
    if (svc.kind == ThirdPartyKind::kHeaderBidding) continue;
    if (roster.insert(svc.id).second) site_trackers_.push_back(svc.id);
  }
  guard = 0;
  while (site_benign_.size() < 34 && ++guard < 4000) {
    const ThirdPartyService& svc = third_parties_->sample(service_rng);
    if (svc.flagged_by_adblock) continue;
    if (roster.insert(svc.id).second) site_benign_.push_back(svc.id);
  }
  guard = 0;
  while (site_ad_networks_.size() < 5 && ++guard < 4000) {
    const ThirdPartyService& svc = third_parties_->sample(
        service_rng, static_cast<int>(ThirdPartyKind::kAdNetwork));
    if (roster.insert(svc.id).second) site_ad_networks_.push_back(svc.id);
  }
}

double WebSite::zipf_page_pmf(std::size_t index) const {
  return std::pow(static_cast<double>(index), -cal::kPagePopularityZipf) /
         zipf_norm_;
}

double WebSite::page_visit_rate(std::size_t page_index) const {
  if (page_index == 0)
    return profile_.site_visit_rate * profile_.landing_traffic_share;
  return profile_.site_visit_rate * (1.0 - profile_.landing_traffic_share) *
         zipf_page_pmf(page_index);
}

util::Url WebSite::page_url(std::size_t page_index) const {
  util::Url url;
  url.host = "www." + domain_;
  if (page_index == 0) {
    url.scheme =
        profile_.landing_is_http ? util::Scheme::kHttp : util::Scheme::kHttps;
    url.path = "/";
    return url;
  }
  util::Rng rng = site_rng_.fork(page_index).fork("url");
  url.scheme = rng.chance(profile_.internal_http_rate) ? util::Scheme::kHttp
                                                       : util::Scheme::kHttps;
  if (!robots_.allows(page_index)) {
    url.path = "/private/item-" + std::to_string(page_index);
  } else {
    const auto section = kSections[page_index % kSections.size()];
    url.path = std::string("/") + section + "/item-" +
               std::to_string(page_index);
  }
  return url;
}

bool WebSite::page_is_english(std::size_t page_index) const {
  if (page_index == 0) return profile_.english_site;
  util::Rng rng = site_rng_.fork(page_index).fork("lang");
  return rng.chance(profile_.english_page_fraction);
}

WebSite::PageTargets WebSite::targets_for(bool landing, util::Rng& rng) const {
  PageTargets t{};
  if (landing) {
    // The landing page is a single concrete page: its contrast with the
    // internal-page median is the site-level draw, with only light
    // load-to-load jitter (the paper loads it 10x and takes medians).
    t.objects = static_cast<std::size_t>(std::max(
        8.0, profile_.internal_objects_median *
                 std::exp(profile_.object_ratio_log + rng.normal(0.0, 0.05))));
    t.total_bytes = std::max(
        40e3, profile_.internal_bytes_median *
                  std::exp(profile_.size_ratio_log + rng.normal(0.0, 0.05)));
    t.noncacheable_frac = std::clamp(
        profile_.internal_noncacheable_frac *
            std::exp(profile_.noncacheable_ratio_log - profile_.object_ratio_log),
        0.02, 0.9);
    t.cdn_prob = std::clamp(
        profile_.internal_cdn_fraction + profile_.landing_cdn_shift, 0.0, 1.0);
    t.unique_domains = static_cast<std::size_t>(std::max(
        2.0, profile_.internal_domains_median *
                 std::exp(profile_.domains_ratio_log + rng.normal(0.0, 0.05))));
    t.unique_domains = std::min(t.unique_domains, t.objects / 2);
    t.tracker_embeds = profile_.landing_tracker_embeds;
    t.ad_slots = profile_.landing_ad_slots;
    t.header_bidding = profile_.hb_on_landing;
    t.mix = &profile_.landing_mix;
    t.depth_weights = &profile_.landing_depth_weights;
  } else {
    t.objects = static_cast<std::size_t>(std::max(
        5.0, profile_.internal_objects_median *
                 std::exp(rng.normal(0.0, profile_.within_site_objects_sigma))));
    t.total_bytes = std::max(
        25e3, profile_.internal_bytes_median *
                  std::exp(rng.normal(0.0, profile_.within_site_size_sigma)));
    t.noncacheable_frac =
        std::clamp(profile_.internal_noncacheable_frac *
                       std::exp(rng.normal(0.0, 0.2)),
                   0.02, 0.9);
    t.cdn_prob = std::clamp(profile_.internal_cdn_fraction, 0.0, 1.0);
    t.unique_domains = static_cast<std::size_t>(std::max(
        2.0, profile_.internal_domains_median *
                 std::exp(rng.normal(0.0, 0.25))));
    t.unique_domains = std::min(t.unique_domains, t.objects / 2);
    t.tracker_embeds =
        profile_.trackers_on_landing_only ? 0.0 : profile_.internal_tracker_embeds;
    t.ad_slots =
        profile_.trackers_on_landing_only ? 0.0 : profile_.internal_ad_slots;
    t.header_bidding = !profile_.trackers_on_landing_only &&
                       profile_.hb_on_internal && rng.chance(0.7);
    t.mix = &profile_.internal_mix;
    t.depth_weights = &profile_.internal_depth_weights;
  }
  if (profile_.tracker_free) t.tracker_embeds = 0.0;
  return t;
}

WebPage WebSite::page(std::size_t page_index) const {
  if (page_index > profile_.internal_page_count)
    throw std::out_of_range("WebSite::page: index beyond site size");
  const bool landing = page_index == 0;
  util::Rng rng = site_rng_.fork(page_index).fork("page");

  WebPage page;
  page.url = page_url(page_index);
  page.site_domain = domain_;
  page.is_landing = landing;
  page.page_index = page_index;
  page.category = profile_.category;
  page.english = page_is_english(page_index);
  page.visit_rate = page_visit_rate(page_index);
  page.http2 = profile_.http2;
  page.transport = profile_.landing_is_http && landing
                       ? net::TransportProtocol::kCleartextHttp
                       : profile_.transport;
  if (page.url.scheme == util::Scheme::kHttp)
    page.transport = net::TransportProtocol::kCleartextHttp;

  const PageTargets targets = targets_for(landing, rng);
  page.ad_slots = static_cast<int>(
      std::max(0.0, std::round(targets.ad_slots * std::exp(rng.normal(0.0, 0.2)))));
  if (targets.tracker_embeds <= 0.0) page.ad_slots = 0;
  page.header_bidding = targets.header_bidding && page.ad_slots > 0;

  build_objects(page, targets, rng);
  assign_links(page, rng);

  // Resource hints (§5.5).
  const double zero_prob =
      landing ? profile_.landing_hint_zero_prob : profile_.internal_hint_zero_prob;
  if (!rng.chance(zero_prob)) {
    const int hints = static_cast<int>(std::clamp(
        rng.lognormal(cal::kHintCountLogMedian, cal::kHintCountLogSigma), 1.0,
        35.0));
    for (int i = 0; i < hints; ++i) {
      const double u = rng.uniform();
      if (u < 0.45) ++page.hints.dns_prefetch;
      else if (u < 0.80) ++page.hints.preconnect;
      else if (u < 0.97) ++page.hints.prefetch;
      else ++page.hints.prerender;
    }
  }
  // Deterministic post-pass (no RNG): the loader keys per-host state by
  // these dense ids instead of hashing host strings per object.
  page.rebuild_host_index();
  return page;
}

void WebSite::build_objects(WebPage& page, const PageTargets& targets,
                            util::Rng& rng) const {
  const bool landing = page.is_landing;
  const bool page_http = page.url.scheme == util::Scheme::kHttp;
  const bool mixed = !page_http &&
                     (landing ? profile_.landing_has_mixed
                              : rng.chance(profile_.internal_mixed_rate));

  // Traffic rates as seen near the (U.S.) vantage point — this is what
  // determines CDN edge warmth there (§5.1, Fig. 10c).
  const double page_rate_us = page.visit_rate * profile_.us_traffic_share;
  const double site_rate_us =
      profile_.site_visit_rate * profile_.us_traffic_share;

  // --- root document ---
  WebObject root;
  root.url = page.url.str();
  root.host = page.url.host;
  root.scheme = page.url.scheme;
  root.mime = MimeCategory::kHtmlCss;
  root.size_bytes = std::max(5e3, rng.lognormal(std::log(60e3), 0.6));
  root.depth = 0;
  root.parent_index = -1;
  root.cacheable = false;  // documents are personalized/no-store
  // Landing shells are more often pre-rendered and CDN-cached (§4).
  root.via_cdn = rng.chance(std::min(
      1.0, targets.cdn_prob * 0.5 *
               (landing ? profile_.landing_root_cdn_boost : 1.0)));
  if (root.via_cdn) root.cdn_provider_id = primary_cdn_id_;
  root.origin_region = profile_.origin_region;
  root.request_rate = page_rate_us;
  root.origin_think_ms =
      std::max(3.0, rng.lognormal(std::log(35.0), 0.5)) *
      (landing ? profile_.landing_root_think_factor : 1.0);
  root.render_blocking = true;
  page.objects.push_back(std::move(root));

  // Track objects by depth for parent assignment.
  std::array<std::vector<int>, 8> by_depth;
  by_depth[0].push_back(0);

  const auto pick_parent = [&](int depth) -> int {
    for (int d = depth - 1; d >= 0; --d) {
      if (!by_depth[static_cast<std::size_t>(d)].empty()) {
        const auto& cands = by_depth[static_cast<std::size_t>(d)];
        return cands[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(cands.size()) - 1))];
      }
    }
    return 0;
  };
  std::array<double, kMimeCategoryCount>* tally = nullptr;
  const auto append_object = [&](WebObject obj) {
    if (tally != nullptr)
      (*tally)[static_cast<std::size_t>(obj.mime)] += obj.size_bytes;
    // Fix up depth so a parent exists, then register.
    if (obj.depth > 1) {
      int d = obj.depth;
      while (d > 1 && by_depth[static_cast<std::size_t>(d - 1)].empty()) --d;
      obj.depth = d;
    }
    obj.parent_index = obj.depth == 0 ? -1 : pick_parent(obj.depth);
    const int index = static_cast<int>(page.objects.size());
    by_depth[static_cast<std::size_t>(std::min(obj.depth, 7))].push_back(index);
    page.objects.push_back(std::move(obj));
  };
  const auto sample_depth = [&](const std::array<double, 5>& weights) {
    double u = rng.uniform();
    for (std::size_t d = 0; d < weights.size(); ++d) {
      if (u < weights[d]) return static_cast<int>(d) + 1;
      u -= weights[d];
    }
    return static_cast<int>(weights.size());
  };

  // --- first-party objects ---
  const std::size_t fp_hosts =
      1 + (targets.objects > 40 ? 1u : 0u) + (targets.objects > 120 ? 1u : 0u) +
      (targets.objects > 250 ? 1u : 0u);
  const std::array<std::string, 4> fp_host_names = {
      page.url.host, "static." + domain_, "img." + domain_, "api." + domain_};

  // Residual-deficit category sampling: the page should end up with
  // mix[cat] * total_bytes per category *including* whatever the
  // third-party embeds contribute, so each first-party draw targets the
  // category with the largest remaining byte deficit (scaled by typical
  // object size to approximate counts).
  std::array<double, kMimeCategoryCount> bytes_by_category{};
  bytes_by_category[static_cast<std::size_t>(MimeCategory::kHtmlCss)] +=
      page.objects[0].size_bytes;
  tally = &bytes_by_category;
  const auto sample_category_by_deficit = [&]() {
    double weights[kMimeCategoryCount];
    double total = 0.0;
    for (int c = 0; c < kMimeCategoryCount; ++c) {
      const auto i = static_cast<std::size_t>(c);
      const double desired = (*targets.mix)[i] * targets.total_bytes;
      // A category whose budget is already spent is not drawn again —
      // crucial for heavy categories (one video blows a small budget).
      const double deficit = std::max(0.0, desired - bytes_by_category[i]);
      weights[i] = deficit / kCategorySizes[i].median;
      total += weights[i];
    }
    if (total <= 0.0) return MimeCategory::kJavaScript;
    double u = rng.uniform() * total;
    for (int c = 0; c < kMimeCategoryCount; ++c) {
      const auto i = static_cast<std::size_t>(c);
      if (u < weights[i]) return static_cast<MimeCategory>(c);
      u -= weights[i];
    }
    return MimeCategory::kJavaScript;
  };

  // Estimate third-party object count to size the first-party budget.
  const int tracker_count =
      targets.tracker_embeds <= 0.0
          ? 0
          : static_cast<int>(std::max(
                0.0, std::round(targets.tracker_embeds *
                                std::exp(rng.normal(0.0, 0.25)))));
  const int hb_count = page.header_bidding
                           ? static_cast<int>(rng.uniform_int(3, 5))
                           : 0;
  // Distinct domains the third-party fill pass will add beyond the
  // tracker/ad embeds (to hit the unique-domain target).
  const std::size_t named_embeds = static_cast<std::size_t>(
      tracker_count + hb_count + page.ad_slots);
  const std::size_t expected_fill =
      targets.unique_domains > fp_hosts + named_embeds
          ? targets.unique_domains - fp_hosts - named_embeds
          : 0;
  (void)expected_fill;

  std::size_t mixed_budget =
      mixed ? static_cast<std::size_t>(rng.uniform_int(1, 5)) : 0;

  std::vector<std::size_t> fp_indices;
  std::size_t fp_serial = 0;
  const auto add_fp_object = [&] {
    const std::size_t i = fp_serial++;
    WebObject o;
    o.mime = sample_category_by_deficit();
    const auto& cs = kCategorySizes[static_cast<std::size_t>(o.mime)];
    o.size_bytes = std::max(150.0, rng.lognormal(std::log(cs.median), cs.sigma));
    const std::size_t host_pick = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(fp_hosts) - 1));
    o.host = fp_host_names[host_pick];
    o.scheme = page.url.scheme;
    if (mixed_budget > 0 && o.mime == MimeCategory::kImage) {
      o.scheme = util::Scheme::kHttp;  // passive mixed content (§6.1)
      --mixed_budget;
    }
    o.depth = sample_depth(*targets.depth_weights);
    o.cacheable = default_cacheable(o.mime);
    if (rng.chance(cal::kCacheableFlip)) o.cacheable = !o.cacheable;
    o.via_cdn = rng.chance(targets.cdn_prob);
    if (o.via_cdn) {
      o.cdn_provider_id = primary_cdn_id_;
      // CNAME into the provider's namespace (what a cdnfinder-style
      // classifier observes), e.g. static.site.com -> site.edgekey.net.
      const auto& provider = cdn_registry_->provider(primary_cdn_id_);
      if (!provider.cname_patterns.empty()) {
        std::string suffix = provider.cname_patterns.front();
        if (suffix.rfind("*.", 0) == 0) suffix = suffix.substr(2);
        o.dns_cname = domain_ + "." + suffix;
      }
    }
    o.origin_region = profile_.origin_region;
    // Site-common assets (logos, stylesheets, app bundles) appear on
    // many pages and inherit the site's aggregate rate; page-specific
    // assets (article images) only see this page's traffic.
    const bool site_common = rng.chance(0.45);
    o.site_shared = site_common;
    o.request_rate = site_common ? site_rate_us * rng.uniform(0.3, 0.8)
                                 : page_rate_us * rng.uniform(0.6, 1.0);
    o.origin_think_ms = std::max(2.0, rng.lognormal(std::log(18.0), 0.6));
    // Landing pages defer/async more of their scripts and inline their
    // critical CSS (§4: "developers optimize the landing-page design
    // more meticulously").
    const double blocking_factor =
        landing ? profile_.landing_blocking_factor : 1.0;
    // Depth-2 blockers (@import chains, nested synchronous scripts) are
    // what make deep landing-page structures expensive on cold paths:
    // each level adds a full fetch round trip before first paint.
    if (o.mime == MimeCategory::kHtmlCss) {
      o.render_blocking =
          (o.depth == 1 && rng.chance(0.7 * blocking_factor)) ||
          (o.depth == 2 && rng.chance(0.35 * blocking_factor)) ||
          (o.depth == 3 && rng.chance(0.10 * blocking_factor));
    } else if (o.mime == MimeCategory::kJavaScript) {
      o.render_blocking =
          (o.depth == 1 && rng.chance(0.25 * blocking_factor)) ||
          (o.depth == 2 && rng.chance(0.10 * blocking_factor));
    }
    o.url = std::string(util::to_string(o.scheme)) + "://" + o.host + "/asset/" +
            std::to_string(page.page_index) + "-" + std::to_string(i);
    fp_indices.push_back(page.objects.size());
    append_object(std::move(o));
  };

  // First-party skeleton: enough structure that third-party tags (which
  // sit at depths 2-3, injected by tag managers) have parents to hang
  // off; the exact object budget is settled after the embeds.
  const std::size_t skeleton = std::min<std::size_t>(
      24, std::max<std::size_t>(6, targets.objects / 5));
  for (std::size_t i = 0; i < skeleton; ++i) add_fp_object();

  // --- third-party embeds ---
  std::set<int> embedded_services;
  std::size_t embed_serial = 0;
  const auto embed_service = [&](const ThirdPartyService& svc,
                                 bool as_ad_slot, int request_cap = 99) {
    if (!embedded_services.insert(svc.id).second && !as_ad_slot) return;
    const std::size_t serial = embed_serial++;
    const int requests =
        as_ad_slot ? 1 : std::min(svc.requests_per_embed, request_cap);
    for (int r = 0; r < requests; ++r) {
      WebObject o;
      o.mime = tp_object_mime(svc.kind, r, rng);
      o.size_bytes = tp_object_size(o.mime, rng);
      o.host = svc.domain;
      o.scheme = page_http ? util::Scheme::kHttp : util::Scheme::kHttps;
      o.third_party_id = svc.id;
      o.is_tracker_request = svc.flagged_by_adblock &&
                             (svc.kind == ThirdPartyKind::kTracker ||
                              svc.kind == ThirdPartyKind::kAnalytics ||
                              svc.kind == ThirdPartyKind::kSocial);
      o.is_ad_request = svc.flagged_by_adblock && !o.is_tracker_request;
      // Trackers are usually injected by tag-manager scripts: depth 2-3.
      const bool deep_kind = svc.kind == ThirdPartyKind::kTracker ||
                             svc.kind == ThirdPartyKind::kAdNetwork ||
                             svc.kind == ThirdPartyKind::kHeaderBidding ||
                             svc.kind == ThirdPartyKind::kAnalytics;
      o.depth = deep_kind ? static_cast<int>(rng.uniform_int(2, 3))
                          : static_cast<int>(rng.uniform_int(1, 2));
      o.cacheable = (svc.kind == ThirdPartyKind::kCdnLibrary ||
                     svc.kind == ThirdPartyKind::kFonts ||
                     svc.kind == ThirdPartyKind::kVideo) &&
                    r > 0;
      const bool own_cdn = svc.kind == ThirdPartyKind::kCdnLibrary ||
                           svc.kind == ThirdPartyKind::kFonts ||
                           svc.kind == ThirdPartyKind::kVideo;
      o.via_cdn = own_cdn || rng.chance(0.2);
      if (o.via_cdn) {
        o.cdn_provider_id = static_cast<int>(util::fnv1a(svc.domain) %
                                             cdn_registry_->size());
        const auto& provider = cdn_registry_->provider(o.cdn_provider_id);
        if (!provider.cname_patterns.empty()) {
          std::string suffix = provider.cname_patterns.front();
          if (suffix.rfind("*.", 0) == 0) suffix = suffix.substr(2);
          o.dns_cname = svc.domain + "." + suffix;
        }
      }
      o.origin_region = net::Region::kNorthAmerica;  // TP infra is global
      o.request_rate = third_party_rate(svc);
      o.origin_think_ms = std::max(2.0, rng.lognormal(std::log(25.0), 0.5));
      o.render_blocking = false;
      o.url = std::string(util::to_string(o.scheme)) + "://" + o.host +
              (svc.flagged_by_adblock ? "/track/" : "/lib/") +
              std::to_string(page.page_index) + "-" + std::to_string(serial) +
              "-" + std::to_string(r);
      append_object(std::move(o));
    }
  };

  for (int i = 0; i < tracker_count; ++i) {
    const bool novel = rng.chance(0.05) ||
                       static_cast<std::size_t>(i) >= site_trackers_.size();
    if (!novel) {
      embed_service(third_parties_->service(
                        site_trackers_[static_cast<std::size_t>(i)]),
                    false);
      continue;
    }
    // Occasional fresh tracker (campaigns come and go). Never header
    // bidding: HB only runs on pages with HB ad slots.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const ThirdPartyService& svc = third_parties_->sample_tracker(rng);
      if (svc.kind == ThirdPartyKind::kHeaderBidding) continue;
      embed_service(svc, false);
      break;
    }
  }
  for (int i = 0; i < hb_count; ++i)
    embed_service(third_parties_->sample(
                      rng, static_cast<int>(ThirdPartyKind::kHeaderBidding)),
                  false);
  for (int i = 0; i < page.ad_slots; ++i) {
    // Sites have stable ad partners; slots cycle through them with a
    // small churn of fresh campaign networks.
    if (!rng.chance(0.08) && !site_ad_networks_.empty()) {
      embed_service(third_parties_->service(site_ad_networks_[
                        static_cast<std::size_t>(i) % site_ad_networks_.size()]),
                    true);
    } else {
      embed_service(third_parties_->sample(
                        rng, static_cast<int>(ThirdPartyKind::kAdNetwork)),
                    true);
    }
  }

  // Fill up to the unique-domain target with non-tracking services,
  // staying within the page's object budget.
  const std::size_t current_domains = page.unique_domains();
  if (targets.unique_domains > current_domains) {
    std::size_t wanted = targets.unique_domains - current_domains;
    std::size_t roster_cursor = static_cast<std::size_t>(
        rng.uniform_int(0, 7));  // rotate the roster per page
    // Attempts are bounded separately from the wanted count: roster
    // duplicates must not starve the unique-domain target.
    for (std::size_t attempt = 0;
         attempt < 40 + wanted * 8 && wanted > 0 &&
         page.objects.size() + 1 < targets.objects;
         ++attempt) {
      const ThirdPartyService* svc = nullptr;
      if (!rng.chance(0.08) && !site_benign_.empty()) {
        svc = &third_parties_->service(
            site_benign_[roster_cursor++ % site_benign_.size()]);
      } else {
        const ThirdPartyService& candidate = third_parties_->sample(rng);
        if (candidate.flagged_by_adblock) continue;  // filler is benign
        svc = &candidate;
      }
      if (embedded_services.count(svc->id)) continue;
      // Filler embeds are lightweight — one script or stylesheet from
      // the extra origin — so the unique-domain target is reachable
      // within the page's object budget.
      embed_service(*svc, false, 1);
      --wanted;
    }
  }

  // Remaining first-party objects: settle the object count exactly.
  while (page.objects.size() < targets.objects) add_fp_object();

  // Rescale first-party bytes so the page total hits the size target
  // (third-party payloads are what they are; the publisher's own assets
  // make up the difference).
  double fp_bytes = 0.0;
  double other_bytes = page.objects[0].size_bytes;
  {
    std::size_t fp_cursor = 0;
    for (std::size_t i = 1; i < page.objects.size(); ++i) {
      if (fp_cursor < fp_indices.size() && fp_indices[fp_cursor] == i) {
        fp_bytes += page.objects[i].size_bytes;
        ++fp_cursor;
      } else {
        other_bytes += page.objects[i].size_bytes;
      }
    }
  }
  const double remaining =
      std::max(0.05 * targets.total_bytes, targets.total_bytes - other_bytes);
  if (fp_bytes > 0.0) {
    const double scale = std::clamp(remaining / fp_bytes, 0.05, 6.0);
    for (std::size_t index : fp_indices)
      page.objects[index].size_bytes *= scale;
  }

  // --- cacheability adjustment toward the non-cacheable target ---
  const auto target_noncacheable = static_cast<std::size_t>(
      std::round(targets.noncacheable_frac *
                 static_cast<double>(page.objects.size())));
  std::size_t current = page.non_cacheable_count();
  if (current != target_noncacheable) {
    // Flip the smallest eligible objects first: the extra non-cacheable
    // objects on landing pages are beacons and documents, so the
    // cacheable-BYTES fraction stays similar across page types (S5.1).
    std::vector<std::size_t> candidates;
    const bool need_more = current < target_noncacheable;
    for (std::size_t i = 1; i < page.objects.size(); ++i) {
      const WebObject& o = page.objects[i];
      if (!o.is_first_party()) continue;
      if (need_more ? o.cacheable
                    : (!o.cacheable && o.mime != MimeCategory::kHtmlCss))
        candidates.push_back(i);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](std::size_t a, std::size_t b) {
                return page.objects[a].size_bytes < page.objects[b].size_bytes;
              });
    for (std::size_t index : candidates) {
      if (current == target_noncacheable) break;
      page.objects[index].cacheable = !need_more;
      current += need_more ? 1 : -1;
    }
  }

  // --- browser-cache identity + freshness (deterministic post-pass) ---
  // Runs after every pass that can flip cacheability and draws no RNG.
  // Generated URLs embed the page index, so raw URLs never repeat
  // across pages; site-shared first-party assets and third-party
  // libraries instead collapse onto per-host slots, which is what lets
  // a browsing session revisiting the site hit on them. Page-specific
  // cacheable assets keep their URL as identity (same-page reloads).
  for (WebObject& o : page.objects) {
    if (!o.cacheable) continue;
    if (o.is_first_party()) {
      if (o.site_shared)
        o.cache_key = o.host + "|s|" +
                      std::to_string(static_cast<int>(o.mime)) + "|" +
                      std::to_string(util::fnv1a(o.url) % 24);
      else
        o.cache_key = o.url;
    } else {
      o.cache_key = o.host + "|t|" + std::to_string(o.third_party_id) + "|" +
                    std::to_string(static_cast<int>(o.mime)) + "|" +
                    std::to_string(util::fnv1a(o.url) % 8);
    }
    o.freshness_lifetime_s = freshness_lifetime_for(o, profile_);
  }
}

std::vector<std::size_t> WebSite::page_internal_links(
    std::size_t page_index) const {
  util::Rng rng = site_rng_.fork(page_index).fork("links");
  const std::size_t n = profile_.internal_page_count;
  const bool landing = page_index == 0;
  const std::size_t want = static_cast<std::size_t>(
      landing ? rng.uniform_int(30, 80) : rng.uniform_int(8, 40));
  std::vector<std::size_t> links;
  links.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    // Popularity-biased link target: u^k over the index space favors
    // low indices (popular pages get linked more).
    const double u = rng.uniform();
    auto idx = static_cast<std::size_t>(
        std::pow(u, 2.5) * static_cast<double>(n)) + 1;
    if (idx > n) idx = n;
    if (idx != page_index) links.push_back(idx);
  }
  return links;
}

void WebSite::assign_links(WebPage& page, util::Rng& rng) const {
  page.internal_links = page_internal_links(page.page_index);
  if (external_domain_sampler_) {
    const auto ext = static_cast<std::size_t>(rng.uniform_int(1, 6));
    for (std::size_t i = 0; i < ext; ++i)
      page.external_links.push_back(external_domain_sampler_(rng));
  }
}

}  // namespace hispar::web
