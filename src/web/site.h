// A web site: deterministic factory for its landing and internal pages.
//
// A site exposes an (effectively unbounded) universe of internal pages,
// indexed 1..internal_page_count(); page 0 is the landing page. Any page
// can be regenerated at any time from the site's seed — this is what
// makes exhaustive crawls (§4), search indexing (§3) and repeated
// measurements (§3.1's ten landing-page loads) all see the same web.
#pragma once

#include <functional>
#include <string>

#include "web/page.h"
#include "web/profile.h"
#include "web/robots.h"
#include "cdn/provider.h"
#include "web/thirdparty.h"

namespace hispar::web {

class WebSite {
 public:
  // `external_domain_sampler` supplies domains of other sites for
  // outbound links; defaults to a stub when the site stands alone.
  WebSite(std::string domain, SiteProfile profile,
          const ThirdPartyPool& third_parties,
          const cdn::CdnRegistry& cdn_registry, util::Rng site_rng,
          std::function<std::string(util::Rng&)> external_domain_sampler = {});

  const std::string& domain() const { return domain_; }
  const SiteProfile& profile() const { return profile_; }
  const RobotsPolicy& robots() const { return robots_; }
  std::size_t internal_page_count() const {
    return profile_.internal_page_count;
  }

  // page_index 0 => landing page; 1..internal_page_count() => internal.
  WebPage page(std::size_t page_index) const;
  WebPage landing_page() const { return page(0); }

  // Global visits/second this page receives (landing share for index 0,
  // Zipf-decaying for internal pages).
  double page_visit_rate(std::size_t page_index) const;

  // URL of a page without generating it (cheap; used by crawler/index).
  util::Url page_url(std::size_t page_index) const;
  bool page_is_english(std::size_t page_index) const;
  // Outbound internal links of a page without generating its objects
  // (cheap; the crawler walks these). page() reports the same links.
  std::vector<std::size_t> page_internal_links(std::size_t page_index) const;

 private:
  struct PageTargets {
    std::size_t objects;
    double total_bytes;
    double noncacheable_frac;
    double cdn_prob;
    std::size_t unique_domains;
    double tracker_embeds;
    double ad_slots;
    bool header_bidding;
    const std::array<double, kMimeCategoryCount>* mix;
    const std::array<double, 5>* depth_weights;
  };

  PageTargets targets_for(bool landing, util::Rng& rng) const;
  void build_objects(WebPage& page, const PageTargets& targets,
                     util::Rng& rng) const;
  void assign_links(WebPage& page, util::Rng& rng) const;
  double zipf_page_pmf(std::size_t index) const;

  std::string domain_;
  SiteProfile profile_;
  const ThirdPartyPool* third_parties_;
  const cdn::CdnRegistry* cdn_registry_;
  util::Rng site_rng_;
  RobotsPolicy robots_;
  std::function<std::string(util::Rng&)> external_domain_sampler_;
  double zipf_norm_ = 1.0;  // approximate H(n, s)
  int primary_cdn_id_ = 0;
  // Site-level third-party affinity: a site keeps a stable roster of
  // trackers and benign embeds; pages draw mostly from it, with a small
  // novelty rate. This is what bounds Fig. 8b's "third parties unseen
  // on the landing page" to tens rather than hundreds.
  std::vector<int> site_trackers_;
  std::vector<int> site_benign_;
  std::vector<int> site_ad_networks_;
};

}  // namespace hispar::web
