#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace hispar::util {

namespace {

// Partition NaNs past the finite values and sort the finite prefix;
// returns that prefix. Every sorting path in this file funnels through
// here: std::sort on data containing NaN violates the strict-weak-
// ordering contract (the misordered results are then silently wrong).
std::span<double> sort_finite(std::span<double> values) {
  const auto mid = std::partition(values.begin(), values.end(),
                                  [](double x) { return !std::isnan(x); });
  auto finite =
      values.first(static_cast<std::size_t>(mid - values.begin()));
  std::sort(finite.begin(), finite.end());
  return finite;
}

}  // namespace

double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty sample");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) throw std::invalid_argument("variance: need >= 2 values");
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("geometric_mean: empty sample");
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0)
      throw std::invalid_argument("geometric_mean: non-positive value");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double quantile_sorted(std::span<const double> sorted, double q) {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q not in [0,1]");
  // NaNs sort to the tail (sort_finite guarantees it); treat them as
  // missing and take the order statistics over the finite prefix.
  while (!sorted.empty() && std::isnan(sorted.back()))
    sorted = sorted.first(sorted.size() - 1);
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  const double h = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  return sorted[lo] + (h - std::floor(h)) * (sorted[hi] - sorted[lo]);
}

double median_inplace(std::span<double> values) {
  return quantile_sorted(sort_finite(values), 0.5);
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  return quantile_sorted(sort_finite(sorted), q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double fraction_below(std::span<const double> xs, double threshold) {
  if (xs.empty()) throw std::invalid_argument("fraction_below: empty sample");
  std::size_t n = 0;
  for (double x : xs) n += (x < threshold) ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

double fraction_at_or_below(std::span<const double> xs, double threshold) {
  if (xs.empty())
    throw std::invalid_argument("fraction_at_or_below: empty sample");
  std::size_t n = 0;
  for (double x : xs) n += (x <= threshold) ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> sample)
    : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::operator()(double x) const {
  if (sorted_.empty()) throw std::logic_error("EmpiricalCdf: empty");
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  return util::quantile(sorted_, q);
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t points) const {
  if (sorted_.empty()) throw std::logic_error("EmpiricalCdf: empty");
  if (points < 2) points = 2;
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, (*this)(x));
  }
  return out;
}

void Accumulator::add(double x) { values_.push_back(x); }

double Accumulator::mean() const { return util::mean(values_); }
double Accumulator::median() const { return util::median(values_); }
double Accumulator::quantile(double q) const {
  return util::quantile(values_, q);
}
double Accumulator::min() const {
  if (values_.empty()) throw std::logic_error("Accumulator: empty");
  return *std::min_element(values_.begin(), values_.end());
}
double Accumulator::max() const {
  if (values_.empty()) throw std::logic_error("Accumulator: empty");
  return *std::max_element(values_.begin(), values_.end());
}
EmpiricalCdf Accumulator::cdf() const { return EmpiricalCdf(values_); }

std::vector<double> rank_bin_medians(std::span<const double> per_site_delta,
                                     std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("rank_bin_medians: bins == 0");
  std::vector<double> medians;
  medians.reserve(bins);
  // With fewer sites than bins per_bin is 0: the leading bins have an
  // empty range and report NaN, the final bin absorbs the whole sample
  // — the degenerate-input policy from stats.h, not an error.
  const std::size_t per_bin = per_site_delta.size() / bins;
  std::vector<double> scratch;
  for (std::size_t b = 0; b < bins; ++b) {
    const std::size_t lo = b * per_bin;
    const std::size_t hi =
        (b + 1 == bins) ? per_site_delta.size() : lo + per_bin;
    const auto bin = per_site_delta.subspan(lo, hi - lo);
    scratch.assign(bin.begin(), bin.end());
    medians.push_back(median_inplace(scratch));
  }
  return medians;
}

}  // namespace hispar::util
