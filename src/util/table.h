// Lightweight text-table and CSV rendering for bench output.
//
// Every bench prints the rows/series of the corresponding paper table or
// figure; this keeps the formatting consistent and testable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hispar::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);  // 0.34 -> 34.0%

  std::size_t rows() const { return rows_.size(); }

  // Render as an aligned ASCII table / as CSV.
  std::string to_string() const;
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& t);

}  // namespace hispar::util
