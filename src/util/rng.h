// Deterministic pseudo-random number generation for all simulations.
//
// Every experiment in this repository is seeded, and results must be
// bit-for-bit reproducible across runs. We therefore avoid
// std::default_random_engine (implementation-defined) and the standard
// distributions (unspecified algorithms) and implement a fixed generator
// (xoshiro256**, Blackman & Vigna) plus fixed-algorithm samplers on top.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace hispar::util {

// SplitMix64: used to expand a single 64-bit seed into generator state.
// This is the seeding procedure recommended by the xoshiro authors.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality 64-bit PRNG with 2^256-1 period.
// Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  // Derive an independent child generator. `salt` distinguishes children
  // created from the same parent state; typical use is
  // rng.fork(site_rank) so per-site streams do not interact.
  Rng fork(std::uint64_t salt) const;
  // Fork keyed by a string (e.g. a domain name), stable across runs.
  Rng fork(std::string_view salt) const;

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Bernoulli trial.
  bool chance(double p);
  // Standard normal via Box-Muller (fixed algorithm, reproducible).
  double normal();
  double normal(double mean, double stddev);
  // exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  // Exponential with given mean.
  double exponential(double mean);
  // Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

 private:
  std::array<std::uint64_t, 4> s_;
};

// 64-bit FNV-1a hash; used for stable string-keyed forking and sharding.
std::uint64_t fnv1a(std::string_view s);

}  // namespace hispar::util
