// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hispar::util {

std::vector<std::string> split(std::string_view s, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string lower(std::string_view s);
bool contains_ci(std::string_view haystack, std::string_view needle);

// Simple glob match supporting '*' (any run, including empty) and '?'
// (any single char). Used by the EasyList-style ad-block matcher and the
// CDN host-pattern heuristics.
bool glob_match(std::string_view pattern, std::string_view text);

// "1234567" -> "1,234,567" for table output.
std::string with_thousands(long long v);

// Format a byte count human-readably ("1.4 MB").
std::string format_bytes(double bytes);

}  // namespace hispar::util
