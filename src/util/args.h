// Minimal command-line argument parsing for the hispar tools.
//
// Supports `tool <subcommand> [--flag value] [--switch]` with typed
// accessors and error reporting. Deliberately tiny: no dependencies, no
// abbreviations, no positional arguments beyond the subcommand.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hispar::util {

class Args {
 public:
  // argv[1] (when not a flag) becomes the subcommand; the rest must be
  // `--name value` pairs or bare `--switch`es. Throws
  // std::invalid_argument on malformed input (flag without name, value
  // without flag).
  static Args parse(int argc, const char* const* argv);

  const std::string& program() const { return program_; }
  const std::string& subcommand() const { return subcommand_; }
  bool has(const std::string& flag) const;

  // Typed accessors; throw std::invalid_argument when present but
  // malformed.
  std::string get(const std::string& flag,
                  const std::string& fallback) const;
  std::int64_t get_int(const std::string& flag, std::int64_t fallback) const;
  double get_double(const std::string& flag, double fallback) const;
  bool get_bool(const std::string& flag) const;  // bare switch

  // Flags seen but never read — typo detection for the tools.
  std::vector<std::string> unused() const;

 private:
  std::string program_;
  std::string subcommand_;
  std::map<std::string, std::string> values_;  // "" for bare switches
  mutable std::map<std::string, bool> read_;
};

}  // namespace hispar::util
