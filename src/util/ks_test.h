// Two-sample Kolmogorov-Smirnov test.
//
// The paper reports, for each landing-vs-internal comparison, the p-value
// of a two-sample KS test with the null hypothesis that the two samples
// come from the same distribution (a low value means the page types differ
// significantly). This mirrors that analysis.
#pragma once

#include <span>

namespace hispar::util {

struct KsResult {
  double statistic;  // D = sup |F1(x) - F2(x)|
  double p_value;    // asymptotic Q_KS(sqrt(n_eff) * D) approximation
};

// Both samples must be non-empty. Inputs need not be sorted.
KsResult ks_two_sample(std::span<const double> a, std::span<const double> b);

}  // namespace hispar::util
