#include "util/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hispar::util {

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be > 0");
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_.push_back(total);
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::pmf(std::size_t k) const {
  assert(k >= 1 && k <= cdf_.size());
  return k == 1 ? cdf_[0] : cdf_[k - 1] - cdf_[k - 2];
}

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights) {
  if (weights.empty())
    throw std::invalid_argument("DiscreteDistribution: no weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument("DiscreteDistribution: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("DiscreteDistribution: zero total weight");
  cdf_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    acc += w / total;
    cdf_.push_back(acc);
  }
  cdf_.back() = 1.0;
}

std::size_t DiscreteDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double DiscreteDistribution::probability(std::size_t i) const {
  assert(i < cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

ClampedLogNormal::ClampedLogNormal(double mu, double sigma, double lo,
                                   double hi)
    : mu_(mu), sigma_(sigma), lo_(lo), hi_(hi) {
  if (lo > hi) throw std::invalid_argument("ClampedLogNormal: lo > hi");
}

double ClampedLogNormal::sample(Rng& rng) const {
  return std::clamp(rng.lognormal(mu_, sigma_), lo_, hi_);
}

double inverse_normal_cdf(double p) {
  if (p <= 0.0 || p >= 1.0)
    throw std::invalid_argument("inverse_normal_cdf: p must be in (0,1)");
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  constexpr double phigh = 1 - plow;
  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

}  // namespace hispar::util
