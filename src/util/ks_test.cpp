#include "util/ks_test.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace hispar::util {

namespace {

// Kolmogorov survival function Q_KS(lambda) = 2 * sum (-1)^{j-1} e^{-2 j^2 l^2}
// (Numerical Recipes formulation with the Stephens small-sample correction
// applied by the caller).
double kolmogorov_q(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace

KsResult ks_two_sample(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty())
    throw std::invalid_argument("ks_two_sample: empty sample");

  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0, ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double xa = sa[ia];
    const double xb = sb[ib];
    if (xa <= xb) ++ia;
    if (xb <= xa) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::abs(fa - fb));
  }

  const double n_eff = na * nb / (na + nb);
  const double sqrt_n = std::sqrt(n_eff);
  // Stephens' correction improves the asymptotic approximation for
  // moderate sample sizes.
  const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
  return KsResult{d, kolmogorov_q(lambda)};
}

}  // namespace hispar::util
