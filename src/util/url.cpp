#include "util/url.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace hispar::util {

namespace {

// A miniature public suffix list: enough to make the third-party analysis
// behave correctly for the multi-label suffixes that appear in the
// synthetic web and in the paper's examples. The real PSL has ~9000
// entries; the logic is identical.
constexpr std::array<std::string_view, 12> kMultiLabelSuffixes = {
    "co.uk", "org.uk", "ac.uk", "gov.uk", "com.au", "net.au",
    "co.jp", "or.jp",  "com.br", "com.cn", "co.in", "co.kr",
};

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool ends_with_label(std::string_view host, std::string_view suffix) {
  if (host.size() <= suffix.size()) return host == suffix;
  return host.ends_with(suffix) &&
         host[host.size() - suffix.size() - 1] == '.';
}

// IPv4 dotted-quads and IPv6 literals have no registrable domain; the
// whole address is the site identity (RFC 6265 treats them host-only).
// Without this, "192.168.0.1" would "register" as "0.1" and two
// unrelated addresses sharing a low octet pair would count first-party.
bool is_ip_literal(std::string_view host) {
  if (host.empty()) return false;
  if (host.front() == '[' || host.find(':') != std::string_view::npos)
    return true;  // IPv6 (bracketed or bare)
  bool saw_digit = false;
  for (char c : host) {
    if (c >= '0' && c <= '9')
      saw_digit = true;
    else if (c != '.')
      return false;
  }
  return saw_digit;
}

}  // namespace

std::string_view to_string(Scheme s) {
  return s == Scheme::kHttp ? "http" : "https";
}

std::string Url::str() const {
  std::string out(to_string(scheme));
  out += "://";
  out += host;
  out += path.empty() ? "/" : path;
  return out;
}

std::optional<Url> parse_url(std::string_view raw) {
  Url url;
  std::string_view rest;
  if (raw.starts_with("https://")) {
    url.scheme = Scheme::kHttps;
    rest = raw.substr(8);
  } else if (raw.starts_with("http://")) {
    url.scheme = Scheme::kHttp;
    rest = raw.substr(7);
  } else {
    return std::nullopt;
  }
  const auto slash = rest.find('/');
  const std::string_view host =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  if (host.empty()) return std::nullopt;
  for (char c : host) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ':')
      return std::nullopt;
  }
  url.host = to_lower(host);
  url.path = slash == std::string_view::npos
                 ? std::string("/")
                 : std::string(rest.substr(slash));
  if (url.path.find_first_of(" \t\n") != std::string::npos)
    return std::nullopt;
  return url;
}

std::string registrable_domain(std::string_view host_raw) {
  std::string host = to_lower(host_raw);
  // DNS allows the fully-qualified form with a trailing root dot
  // ("example.com."); canonicalize so both spellings of one host map to
  // the same registrable domain instead of the dotted one keeping the
  // dot and comparing unequal.
  while (!host.empty() && host.back() == '.') host.pop_back();
  if (host.empty()) return host;
  if (is_ip_literal(host)) return host;

  // Number of labels in the effective TLD: 2 for known multi-label
  // suffixes, 1 otherwise.
  std::size_t suffix_labels = 1;
  for (std::string_view suffix : kMultiLabelSuffixes) {
    if (ends_with_label(host, suffix) || host == suffix) {
      suffix_labels = 2;
      break;
    }
  }

  // Keep suffix_labels + 1 labels from the right.
  std::size_t labels_needed = suffix_labels + 1;
  std::size_t pos = host.size();
  while (labels_needed > 0) {
    const auto dot = host.rfind('.', pos == 0 ? 0 : pos - 1);
    if (dot == std::string::npos) return host;  // host is already minimal
    pos = dot;
    --labels_needed;
  }
  return host.substr(pos + 1);
}

bool is_third_party(std::string_view page_host, std::string_view object_host) {
  return registrable_domain(page_host) != registrable_domain(object_host);
}

}  // namespace hispar::util
