#include "util/intern.h"

#include <stdexcept>

#include "util/rng.h"

namespace hispar::util {

namespace {
constexpr std::size_t kInitialSlots = 64;  // power of two
}

std::uint32_t SymbolTable::intern(std::string_view s) {
  if (slots_.empty()) slots_.resize(kInitialSlots);
  const std::uint64_t hash = fnv1a(s);
  const Slot* slot = locate(s, hash);
  if (slot->id != kNpos) return slot->id;

  // Keep the load factor under 0.7 so probe chains stay short.
  if ((strings_.size() + 1) * 10 >= slots_.size() * 7) {
    grow();
    slot = locate(s, hash);
  }
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  const_cast<Slot*>(slot)->hash = hash;
  const_cast<Slot*>(slot)->id = id;
  return id;
}

std::uint32_t SymbolTable::find(std::string_view s) const {
  if (slots_.empty()) return kNpos;
  return locate(s, fnv1a(s))->id;
}

std::string_view SymbolTable::view(std::uint32_t id) const {
  if (id >= strings_.size())
    throw std::out_of_range("SymbolTable::view: unknown id");
  return strings_[id];
}

void SymbolTable::clear() {
  slots_.clear();
  strings_.clear();
}

const SymbolTable::Slot* SymbolTable::locate(std::string_view s,
                                             std::uint64_t hash) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t index = static_cast<std::size_t>(hash) & mask;
  while (true) {
    const Slot& slot = slots_[index];
    // Equal hashes are not enough: distinct strings can collide, so the
    // stored string is always compared before a hit is declared.
    if (slot.id == kNpos || (slot.hash == hash && strings_[slot.id] == s))
      return &slot;
    index = (index + 1) & mask;
  }
}

void SymbolTable::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  const std::size_t mask = slots_.size() - 1;
  for (const Slot& slot : old) {
    if (slot.id == kNpos) continue;
    std::size_t index = static_cast<std::size_t>(slot.hash) & mask;
    while (slots_[index].id != kNpos) index = (index + 1) & mask;
    slots_[index] = slot;
  }
}

}  // namespace hispar::util
