// String interning: a symbol table mapping strings to dense ids.
//
// The measurement hot path keys several per-shard maps (DNS cache
// entries, CDN edge LRUs, per-host browser state) by domain/URL
// strings; every lookup re-hashes and often re-allocates the same few
// hundred strings tens of thousands of times per campaign. A
// SymbolTable assigns each distinct string a stable uint32 id in
// insertion order, so hot maps can key on integers instead.
//
// Determinism: ids depend only on the sequence of intern() calls, which
// on the measurement path is a pure function of (list, seed, shards) —
// never of --jobs — because each shard owns its own table. Nothing ever
// iterates the internal hash table, so bucket order is unobservable.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace hispar::util {

class SymbolTable {
 public:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the id of `s`, inserting it on first sight. Ids are dense:
  // the first distinct string gets 0, the next 1, and so on.
  std::uint32_t intern(std::string_view s);

  // Id of `s` if already interned, kNpos otherwise.
  std::uint32_t find(std::string_view s) const;

  // The string behind an id; valid for the table's lifetime (storage is
  // address-stable, so views survive later intern() calls).
  std::string_view view(std::uint32_t id) const;

  std::size_t size() const { return strings_.size(); }
  void clear();

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t id = kNpos;  // kNpos marks an empty slot
  };

  void grow();
  const Slot* locate(std::string_view s, std::uint64_t hash) const;

  // Open-addressing table over FNV-1a hashes; strings live in a deque so
  // views handed out by view() never move.
  std::vector<Slot> slots_;
  std::deque<std::string> strings_;
};

}  // namespace hispar::util
