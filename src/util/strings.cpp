#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace hispar::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool contains_ci(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  const std::string h = lower(haystack);
  const std::string n = lower(needle);
  return h.find(n) != std::string::npos;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer algorithm with backtracking on the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, match = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string with_thousands(long long v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  std::reverse(out.begin(), out.end());
  return out;
}

std::string format_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f %s", bytes, units[u]);
  return buf;
}

}  // namespace hispar::util
