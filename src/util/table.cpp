#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hispar::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("TextTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    os << '\n';
  };
  auto emit_rule = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string TextTable::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "," : "") << escape(header_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << escape(row[c]);
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

}  // namespace hispar::util
