// Summary statistics and empirical CDFs.
//
// The paper's analysis style is: compute a per-site statistic for landing
// and internal pages, take differences or ratios, and report CDFs,
// medians, percentiles and geometric means. This header provides those
// primitives for the analysis pipeline and the benches.
//
// Empty/NaN policy — two tiers:
//  * The strict copying API (mean, variance, stddev, geometric_mean,
//    quantile, median, fraction_below, EmpiricalCdf, Accumulator)
//    throws std::invalid_argument / std::logic_error on empty input:
//    a caller asking for the mean of nothing has a logic error.
//  * The span API used by aggregation pipelines (quantile_sorted,
//    median_inplace, rank_bin_medians) is total: an empty sample — or a
//    bin/sample holding only NaN — yields quiet NaN instead of
//    throwing, because multi-vantage aggregation legitimately produces
//    degenerate cells (a vantage where every load of a site failed, a
//    rank bin with fewer sites than bins). NaN inputs are treated as
//    missing values and excluded before the order statistics are taken;
//    they are never fed to std::sort, whose comparator contract NaN
//    violates.
// Out-of-range q throws in every tier — that is a caller bug, not a
// data property.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace hispar::util {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);   // sample variance (n-1)
double stddev(std::span<const double> xs);

// Geometric mean; all inputs must be > 0.
double geometric_mean(std::span<const double> xs);

// q-th quantile (q in [0,1]) with linear interpolation between order
// statistics (type-7, the R/NumPy default). `xs` need not be sorted.
double quantile(std::span<const double> xs, double q);
double median(std::span<const double> xs);

// Allocation-free variants for hot paths. `quantile_sorted` requires
// `sorted` ascending with any NaNs at the tail (it is the single home
// of the type-7 math; the copying overloads above delegate to it).
// `median_inplace` reorders `values` in place — callers own a scratch
// buffer they refill anyway. Both return quiet NaN when no finite
// values remain (see the empty/NaN policy above).
double quantile_sorted(std::span<const double> sorted, double q);
double median_inplace(std::span<double> values);

// Fraction of values strictly below `threshold` / at-or-below.
double fraction_below(std::span<const double> xs, double threshold);
double fraction_at_or_below(std::span<const double> xs, double threshold);

// Empirical cumulative distribution function over a sample.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> sample);

  // F(x) = P[X <= x].
  double operator()(double x) const;
  double quantile(double q) const;
  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }
  const std::vector<double>& sorted_sample() const { return sorted_; }

  // Evaluation grid for plotting: `points` (x, F(x)) pairs spanning the
  // sample range.
  std::vector<std::pair<double, double>> curve(std::size_t points = 100) const;

 private:
  std::vector<double> sorted_;
};

// Streaming accumulator when samples are produced one at a time.
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return values_.size(); }
  double mean() const;
  double median() const;
  double quantile(double q) const;
  double min() const;
  double max() const;
  EmpiricalCdf cdf() const;
  std::span<const double> values() const { return values_; }

 private:
  std::vector<double> values_;
};

// Per-rank-bin medians, as used throughout Appendix A (Figs. 9 & 10):
// split `per_site_delta` (ordered by site rank) into `bins` equal bins and
// return the median delta in each bin. Bins whose range is empty (fewer
// sites than bins) and bins containing only NaN deltas report NaN;
// bins == 0 throws.
std::vector<double> rank_bin_medians(std::span<const double> per_site_delta,
                                     std::size_t bins);

}  // namespace hispar::util
