#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace hispar::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t salt) const {
  // Mix the current state words with the salt through SplitMix64 so the
  // child stream is decorrelated from the parent and from siblings.
  SplitMix64 sm(s_[0] ^ rotl(s_[3], 13) ^ (salt * 0x9e3779b97f4a7c15ULL));
  return Rng(sm.next());
}

Rng Rng::fork(std::string_view salt) const { return fork(fnv1a(salt)); }

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  // Debiased modulo (Lemire-style rejection would be faster; clarity wins).
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % range);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  // Box-Muller; draw until u1 is nonzero to avoid log(0).
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) {
  double u = uniform();
  while (u == 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::pareto(double xm, double alpha) {
  double u = uniform();
  while (u == 0.0) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace hispar::util
