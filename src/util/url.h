// URL parsing and domain classification.
//
// The analysis pipeline needs: scheme (HTTP vs HTTPS detection for §6.1),
// host / registrable ("second-level") domain extraction for the
// third-party analysis of §6.2 (including multi-label public suffixes such
// as co.uk, so tesco.co.uk is third-party to bbc.co.uk), and path handling
// for landing-vs-internal classification.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace hispar::util {

enum class Scheme { kHttp, kHttps };

std::string_view to_string(Scheme s);

struct Url {
  Scheme scheme = Scheme::kHttps;
  std::string host;  // lower-case, no port
  std::string path;  // always begins with '/'

  std::string str() const;

  // True for the root document "/" (optionally with empty query).
  bool is_landing() const { return path == "/" || path.empty(); }

  bool operator==(const Url&) const = default;
};

// Parses "scheme://host/path". Returns nullopt for anything malformed
// (unknown scheme, empty host, embedded whitespace).
std::optional<Url> parse_url(std::string_view raw);

// Registrable domain: the public-suffix-aware "second-level domain",
// e.g. www.bbc.co.uk -> bbc.co.uk, static01.nyt.com -> nyt.com.
// A bare suffix (e.g. "co.uk") or empty host is returned unchanged.
std::string registrable_domain(std::string_view host);

// True if `object_host` belongs to a different registrable domain than
// `page_host` (the paper's third-party definition, §6.2).
bool is_third_party(std::string_view page_host, std::string_view object_host);

}  // namespace hispar::util
