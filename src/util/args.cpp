#include "util/args.h"

#include <cstdlib>
#include <stdexcept>

namespace hispar::util {

Args Args::parse(int argc, const char* const* argv) {
  Args args;
  if (argc < 1) throw std::invalid_argument("args: empty argv");
  args.program_ = argv[0];

  int index = 1;
  if (index < argc && argv[index][0] != '-') {
    args.subcommand_ = argv[index];
    ++index;
  }
  while (index < argc) {
    const std::string token = argv[index];
    if (token.rfind("--", 0) != 0 || token.size() <= 2)
      throw std::invalid_argument("args: expected --flag, got '" + token +
                                  "'");
    const std::string name = token.substr(2);
    if (index + 1 < argc && argv[index + 1][0] != '-') {
      args.values_[name] = argv[index + 1];
      index += 2;
    } else {
      args.values_[name] = "";
      ++index;
    }
  }
  return args;
}

bool Args::has(const std::string& flag) const {
  read_[flag] = true;
  return values_.count(flag) > 0;
}

std::string Args::get(const std::string& flag,
                      const std::string& fallback) const {
  read_[flag] = true;
  const auto it = values_.find(flag);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& flag,
                           std::int64_t fallback) const {
  read_[flag] = true;
  const auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || it->second.empty())
    throw std::invalid_argument("args: --" + flag + " expects an integer");
  return value;
}

double Args::get_double(const std::string& flag, double fallback) const {
  read_[flag] = true;
  const auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0' || it->second.empty())
    throw std::invalid_argument("args: --" + flag + " expects a number");
  return value;
}

bool Args::get_bool(const std::string& flag) const {
  read_[flag] = true;
  const auto it = values_.find(flag);
  if (it == values_.end()) return false;
  if (!it->second.empty() && it->second != "true" && it->second != "1" &&
      it->second != "false" && it->second != "0")
    throw std::invalid_argument("args: --" + flag + " is a switch");
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!read_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace hispar::util
