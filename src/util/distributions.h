// Reusable, fixed-algorithm distribution objects.
//
// The standard-library distributions have unspecified algorithms, so their
// output differs across toolchains; all sampling in this project goes
// through these classes (or Rng's primitive samplers) instead.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace hispar::util {

// Zipf(s) over ranks {1..n}: P(k) proportional to 1/k^s.
// Used for object popularity, third-party prevalence and site traffic.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  // Returns a rank in [1, n].
  std::size_t sample(Rng& rng) const;
  // Probability mass of rank k (1-based).
  double pmf(std::size_t k) const;
  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // cumulative masses, cdf_.back() == 1.0
};

// Discrete distribution over {0..n-1} with arbitrary non-negative weights.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(std::vector<double> weights);

  std::size_t sample(Rng& rng) const;
  double probability(std::size_t i) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

// Lognormal clamped to [lo, hi]; handy for sizes/latencies where a hard
// floor (e.g. a minimum header size) and a sanity ceiling are needed.
class ClampedLogNormal {
 public:
  ClampedLogNormal(double mu, double sigma, double lo, double hi);

  double sample(Rng& rng) const;
  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_, sigma_, lo_, hi_;
};

// Inverse CDF of the standard normal (Acklam's rational approximation,
// |relative error| < 1.15e-9). Used to derive calibration constants of the
// form "P[ratio > 1] = p and geometric-mean ratio = g".
double inverse_normal_cdf(double p);

// Standard normal CDF.
double normal_cdf(double x);

}  // namespace hispar::util
