#include "survey/corpus.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/rng.h"

namespace hispar::survey {

std::string_view to_string(Venue v) {
  switch (v) {
    case Venue::kImc: return "IMC";
    case Venue::kPam: return "PAM";
    case Venue::kNsdi: return "NSDI";
    case Venue::kSigcomm: return "SIGCOMM";
    case Venue::kConext: return "CoNEXT";
  }
  return "?";
}

std::string_view to_string(RevisionScore r) {
  switch (r) {
    case RevisionScore::kNo: return "No";
    case RevisionScore::kMinor: return "Minor";
    case RevisionScore::kMajor: return "Major";
  }
  return "?";
}

namespace {

// Table 1 of the paper, verbatim.
constexpr std::array<VenueAggregate, kVenueCount> kTable1 = {{
    {Venue::kImc, 214, 56, 9, 23, 24},
    {Venue::kPam, 117, 27, 7, 10, 10},
    {Venue::kNsdi, 222, 11, 6, 4, 1},
    {Venue::kSigcomm, 187, 9, 1, 6, 2},
    {Venue::kConext, 180, 16, 7, 5, 4},
}};

// §2 details: of the 119 top-list papers, 7 analyze user traces and 8
// perform active measurements that reach internal pages; all 15 sit in
// the "no revision" bucket. Distribute them across venues' no-revision
// capacity (IMC 24, PAM 10, NSDI 1, SIGCOMM 2, CoNEXT 4).
constexpr std::array<int, kVenueCount> kTraceUsers = {4, 2, 0, 0, 1};
constexpr std::array<int, kVenueCount> kActiveUsers = {4, 2, 1, 1, 0};

const std::array<std::string_view, 5> kTopListTerms = {
    "Alexa", "Majestic", "Umbrella", "Quantcast", "Tranco"};

// False-positive mentions the manual pass weeds out (§2): smart
// speakers, prior-work discussion only.
const std::array<std::string_view, 3> kFalsePositiveContexts = {
    "Alexa Echo Dot", "Alexa voice assistant", "as discussed in prior work"};

std::string synth_title(Venue v, int index, bool webperf, util::Rng& rng) {
  static const std::array<std::string_view, 10> webperf_topics = {
      "Page Load Times", "Web Complexity", "HTTPS Adoption",
      "Third-Party Trackers", "QUIC Performance", "CDN Caching",
      "Web QoE", "Ad Ecosystems", "DNS-over-HTTPS", "Resource Loading"};
  static const std::array<std::string_view, 10> other_topics = {
      "BGP Convergence", "Data-Center Transport", "IoT Fingerprinting",
      "Congestion Control", "Interdomain Routing", "Spectrum Sharing",
      "Packet Scheduling", "Network Verification", "Video Streaming",
      "Censorship Measurement"};
  const auto& topics = webperf ? webperf_topics : other_topics;
  const auto topic = topics[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(topics.size()) - 1))];
  return std::string("On ") + std::string(topic) + " (" +
         std::string(to_string(v)) + " study #" + std::to_string(index) + ")";
}

// Study-scale draws for top-list papers, shaped to reproduce the
// quantiles the paper quotes: ~50% of major-revision studies use <= 500
// sites, 60% <= 1000 sites, 77% <= 20,000 pages, 93% <= 100,000 pages.
void draw_scale(PaperRecord& record, util::Rng& rng) {
  const double u = rng.uniform();
  if (record.revision == RevisionScore::kMajor) {
    if (u < 0.50) {
      record.sites_measured = rng.uniform_int(50, 500);
    } else if (u < 0.60) {
      record.sites_measured = rng.uniform_int(501, 1000);
    } else if (u < 0.90) {
      record.sites_measured = rng.uniform_int(1001, 5000);
    } else {
      record.sites_measured = rng.uniform_int(5001, 200000);
    }
    // Landing-page studies measure ~1 page per site (with some loading
    // each page several times).
    const double v = rng.uniform();
    if (v < 0.77) {
      record.pages_measured =
          std::min<long long>(record.sites_measured * 2, 20000);
    } else if (v < 0.93) {
      record.pages_measured = rng.uniform_int(20001, 100000);
    } else {
      record.pages_measured = rng.uniform_int(100001, 1000000);
    }
  } else {
    record.sites_measured = rng.uniform_int(100, 100000);
    record.pages_measured = record.sites_measured;
  }
}

}  // namespace

std::span<const VenueAggregate> table1_expected() { return kTable1; }

std::vector<PaperRecord> survey_corpus() {
  std::vector<PaperRecord> corpus;
  util::Rng rng(0x5eed5eedULL);
  int id = 0;

  for (std::size_t vi = 0; vi < kTable1.size(); ++vi) {
    const VenueAggregate& agg = kTable1[vi];
    int remaining_major = agg.major;
    int remaining_minor = agg.minor;
    int remaining_no = agg.no_revision;
    int remaining_traces = kTraceUsers[vi];
    int remaining_active = kActiveUsers[vi];

    for (int p = 0; p < agg.publications; ++p) {
      PaperRecord record;
      record.id = id++;
      record.venue = agg.venue;
      record.year = 2015 + static_cast<int>(rng.uniform_int(0, 4));

      const bool uses = p < agg.using_top_list;
      record.uses_top_list = uses;
      record.title = synth_title(agg.venue, p, uses, rng);

      if (uses) {
        // §3: only 10 of 119 papers use a list other than Alexa.
        record.matched_terms = {std::string(
            rng.chance(10.0 / 119.0)
                ? kTopListTerms[static_cast<std::size_t>(
                      rng.uniform_int(1, 4))]
                : kTopListTerms[0])};
        if (remaining_major > 0) {
          record.revision = RevisionScore::kMajor;
          --remaining_major;
        } else if (remaining_minor > 0) {
          record.revision = RevisionScore::kMinor;
          --remaining_minor;
        } else {
          record.revision = RevisionScore::kNo;
          --remaining_no;
          if (remaining_traces > 0) {
            record.internal_pages = InternalPageUse::kUserTraces;
            --remaining_traces;
          } else if (remaining_active > 0) {
            record.internal_pages = InternalPageUse::kActiveCrawling;
            --remaining_active;
          }
        }
        draw_scale(record, rng);
      } else if (rng.chance(0.04)) {
        // A non-using paper that nevertheless mentions a term: the
        // false positives the manual pass removes.
        record.matched_terms = {
            std::string(kFalsePositiveContexts[static_cast<std::size_t>(
                rng.uniform_int(0, 2))])};
        record.term_is_false_positive = true;
      }
      corpus.push_back(std::move(record));
    }
  }
  // Interleave the venues so corpus order doesn't encode the labels.
  util::Rng shuffle_rng(0xabcdefULL);
  for (std::size_t i = corpus.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        shuffle_rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(corpus[i - 1], corpus[j]);
  }
  return corpus;
}

}  // namespace hispar::survey
