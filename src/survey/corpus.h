// The literature-survey corpus (§2).
//
// The paper reviews 920 papers published 2015-2019 at IMC, PAM, NSDI,
// SIGCOMM and CoNEXT: a programmatic term search for the five top lists,
// manual false-positive filtering (e.g. "Alexa" Echo Dot), and a manual
// review assigning each top-list-using paper a revision score. We encode
// that survey as a per-paper dataset whose aggregates equal the paper's
// Table 1 exactly, and regenerate the table through the same pipeline
// (term match -> FP filter -> review) rather than pasting totals.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hispar::survey {

enum class Venue : std::uint8_t { kImc, kPam, kNsdi, kSigcomm, kConext };
inline constexpr int kVenueCount = 5;
std::string_view to_string(Venue v);

enum class RevisionScore : std::uint8_t { kNo, kMinor, kMajor };
std::string_view to_string(RevisionScore r);

// How a study touches internal pages (§2: 7 trace-based + 8 active-
// measurement papers of the 119 include internal pages).
enum class InternalPageUse : std::uint8_t {
  kNone,
  kUserTraces,     // browsing traces naturally include internal URLs
  kActiveCrawling  // recursive crawls / monkey testing
};

struct PaperRecord {
  int id = 0;
  Venue venue = Venue::kImc;
  int year = 2015;
  std::string title;
  // Full-text snippets a programmatic PDF search would hit.
  std::vector<std::string> matched_terms;  // e.g. {"Alexa"}
  // Ground truth from manual inspection:
  bool term_is_false_positive = false;  // "Alexa Echo Dot" etc.
  bool uses_top_list = false;
  InternalPageUse internal_pages = InternalPageUse::kNone;
  RevisionScore revision = RevisionScore::kNo;
  // Study scale (only meaningful for top-list-using papers): §3.1/§7
  // quote quantiles of these for the major-revision studies.
  long long sites_measured = 0;
  long long pages_measured = 0;
};

// The full 920-paper corpus. Deterministic; aggregates match Table 1.
std::vector<PaperRecord> survey_corpus();

// Venue-level expected aggregates (the paper's Table 1), for tests.
struct VenueAggregate {
  Venue venue;
  int publications;
  int using_top_list;
  int major;
  int minor;
  int no_revision;
};
std::span<const VenueAggregate> table1_expected();

}  // namespace hispar::survey
