#include "survey/classifier.h"

#include <array>

namespace hispar::survey {

std::vector<const PaperRecord*> term_search(
    const std::vector<PaperRecord>& corpus) {
  std::vector<const PaperRecord*> hits;
  for (const auto& paper : corpus)
    if (!paper.matched_terms.empty()) hits.push_back(&paper);
  return hits;
}

std::vector<const PaperRecord*> filter_false_positives(
    std::vector<const PaperRecord*> candidates) {
  std::vector<const PaperRecord*> kept;
  kept.reserve(candidates.size());
  for (const auto* paper : candidates)
    if (!paper->term_is_false_positive) kept.push_back(paper);
  return kept;
}

SurveySummary summarize(const std::vector<PaperRecord>& corpus) {
  SurveySummary s;
  s.total_papers = static_cast<int>(corpus.size());
  const auto hits = term_search(corpus);
  s.matched_terms = static_cast<int>(hits.size());
  const auto users = filter_false_positives(hits);
  s.using_top_list = static_cast<int>(users.size());
  for (const auto* paper : users) {
    switch (paper->revision) {
      case RevisionScore::kMajor: ++s.major; break;
      case RevisionScore::kMinor: ++s.minor; break;
      case RevisionScore::kNo: ++s.no_revision; break;
    }
    switch (paper->internal_pages) {
      case InternalPageUse::kUserTraces:
        ++s.trace_based;
        ++s.using_internal_pages;
        break;
      case InternalPageUse::kActiveCrawling:
        ++s.active_crawling;
        ++s.using_internal_pages;
        break;
      case InternalPageUse::kNone:
        break;
    }
  }
  return s;
}

util::TextTable render_table1(const std::vector<PaperRecord>& corpus) {
  struct Row {
    int pubs = 0, use = 0, major = 0, minor = 0, no = 0;
  };
  std::array<Row, kVenueCount> rows;
  for (const auto& paper : corpus)
    ++rows[static_cast<std::size_t>(paper.venue)].pubs;
  for (const auto* paper : filter_false_positives(term_search(corpus))) {
    Row& row = rows[static_cast<std::size_t>(paper->venue)];
    ++row.use;
    switch (paper->revision) {
      case RevisionScore::kMajor: ++row.major; break;
      case RevisionScore::kMinor: ++row.minor; break;
      case RevisionScore::kNo: ++row.no; break;
    }
  }

  util::TextTable table(
      {"Venue", "#Pubs", "#using top list", "Maj.", "Min.", "No"});
  for (int v = 0; v < kVenueCount; ++v) {
    const Row& row = rows[static_cast<std::size_t>(v)];
    table.add_row({std::string(to_string(static_cast<Venue>(v))),
                   std::to_string(row.pubs), std::to_string(row.use),
                   std::to_string(row.major), std::to_string(row.minor),
                   std::to_string(row.no)});
  }
  return table;
}

namespace {
double major_fraction(const std::vector<PaperRecord>& corpus,
                      long long threshold, bool pages) {
  int majors = 0;
  int within = 0;
  for (const auto& paper : corpus) {
    if (!paper.uses_top_list || paper.term_is_false_positive) continue;
    if (paper.revision != RevisionScore::kMajor) continue;
    ++majors;
    const long long value =
        pages ? paper.pages_measured : paper.sites_measured;
    if (value <= threshold) ++within;
  }
  if (majors == 0) return 0.0;
  return static_cast<double>(within) / static_cast<double>(majors);
}
}  // namespace

double major_fraction_sites_at_most(const std::vector<PaperRecord>& corpus,
                                    long long threshold) {
  return major_fraction(corpus, threshold, /*pages=*/false);
}

double major_fraction_pages_at_most(const std::vector<PaperRecord>& corpus,
                                    long long threshold) {
  return major_fraction(corpus, threshold, /*pages=*/true);
}

}  // namespace hispar::survey
