// Survey pipeline: term search -> false-positive filter -> review ->
// Table 1 aggregation (§2).
#pragma once

#include <string>
#include <vector>

#include "survey/corpus.h"
#include "util/table.h"

namespace hispar::survey {

// Stage 1: programmatic search of the "PDFs" for top-list terms.
// Returns the papers with >= 1 matched term.
std::vector<const PaperRecord*> term_search(
    const std::vector<PaperRecord>& corpus);

// Stage 2: manual inspection drops false positives ("Alexa" Echo Dot,
// lists mentioned only in related work).
std::vector<const PaperRecord*> filter_false_positives(
    std::vector<const PaperRecord*> candidates);

// Stage 3 aggregates.
struct SurveySummary {
  int total_papers = 0;
  int matched_terms = 0;
  int using_top_list = 0;
  int using_internal_pages = 0;  // traces + active
  int trace_based = 0;
  int active_crawling = 0;
  int major = 0;
  int minor = 0;
  int no_revision = 0;
};

SurveySummary summarize(const std::vector<PaperRecord>& corpus);

// Renders the paper's Table 1 (per-venue revision scores) from the
// corpus via the full pipeline.
util::TextTable render_table1(const std::vector<PaperRecord>& corpus);

// §3.1/§7 scale statistics over the major-revision studies: fraction
// with <= `threshold` sites/pages.
double major_fraction_sites_at_most(const std::vector<PaperRecord>& corpus,
                                    long long threshold);
double major_fraction_pages_at_most(const std::vector<PaperRecord>& corpus,
                                    long long threshold);

}  // namespace hispar::survey
