#include "core/analyses.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hispar::core {

std::vector<double> PairedComparison::deltas() const {
  std::vector<double> out(landing.size());
  for (std::size_t i = 0; i < landing.size(); ++i)
    out[i] = landing[i] - internal_median[i];
  return out;
}

double PairedComparison::fraction_landing_greater() const {
  if (landing.empty()) throw std::logic_error("PairedComparison: empty");
  std::size_t greater = 0;
  for (std::size_t i = 0; i < landing.size(); ++i)
    if (landing[i] > internal_median[i]) ++greater;
  return static_cast<double>(greater) / static_cast<double>(landing.size());
}

double PairedComparison::geomean_ratio() const {
  std::vector<double> ratios;
  ratios.reserve(landing.size());
  for (std::size_t i = 0; i < landing.size(); ++i)
    if (landing[i] > 0.0 && internal_median[i] > 0.0)
      ratios.push_back(landing[i] / internal_median[i]);
  if (ratios.empty()) throw std::logic_error("geomean_ratio: no valid pairs");
  return util::geometric_mean(ratios);
}

bool usable_site(const SiteObservation& site) {
  return !site.quarantined && !site.internals.empty();
}

PairedComparison compare_metric(const std::vector<SiteObservation>& sites,
                                const MetricFn& fn) {
  PairedComparison out;
  out.landing.reserve(sites.size());
  out.internal_median.reserve(sites.size());
  for (const auto& site : sites) {
    if (!usable_site(site)) {
      ++out.excluded_sites;
      continue;
    }
    if (site.degraded()) ++out.partial_sites;
    out.landing.push_back(fn(site.landing));
    out.internal_median.push_back(site.internal_median(fn));
  }
  return out;
}

std::vector<double> internal_values(const std::vector<SiteObservation>& sites,
                                    const MetricFn& fn) {
  std::vector<double> out;
  for (const auto& site : sites) {
    if (!usable_site(site)) continue;
    for (const auto& metrics : site.internals) out.push_back(fn(metrics));
  }
  return out;
}

std::vector<double> landing_values(const std::vector<SiteObservation>& sites,
                                   const MetricFn& fn) {
  std::vector<double> out;
  out.reserve(sites.size());
  for (const auto& site : sites)
    if (usable_site(site)) out.push_back(fn(site.landing));
  return out;
}

util::KsResult ks_landing_vs_internal(
    const std::vector<SiteObservation>& sites, const MetricFn& fn) {
  return util::ks_two_sample(landing_values(sites, fn),
                             internal_values(sites, fn));
}

std::vector<double> delta_by_rank_bin(
    const std::vector<SiteObservation>& sites, const MetricFn& fn,
    std::size_t bins) {
  return util::rank_bin_medians(compare_metric(sites, fn).deltas(), bins);
}

ContentMix content_mix(const std::vector<SiteObservation>& sites) {
  ContentMix mix;
  for (std::size_t category = 0; category < 9; ++category) {
    std::vector<double> landing;
    std::vector<double> internal;
    for (const auto& site : sites) {
      if (!usable_site(site)) continue;
      landing.push_back(site.landing.mix_fractions[category]);
      for (const auto& metrics : site.internals)
        internal.push_back(metrics.mix_fractions[category]);
    }
    mix.landing_median[category] = util::median(landing);
    mix.internal_median[category] = util::median(internal);
  }
  return mix;
}

DepthProfile depth_profile(const std::vector<SiteObservation>& sites) {
  DepthProfile profile;
  for (std::size_t depth = 0; depth < 6; ++depth) {
    std::vector<double> landing;
    std::vector<double> internal;
    for (const auto& site : sites) {
      if (!usable_site(site)) continue;
      landing.push_back(site.landing.depth_counts[depth]);
      for (const auto& metrics : site.internals)
        internal.push_back(metrics.depth_counts[depth]);
    }
    profile.landing_median[depth] = util::median(landing);
    profile.internal_median[depth] = util::median(internal);
    profile.landing_p90[depth] = util::quantile(landing, 0.9);
    profile.internal_p90[depth] = util::quantile(internal, 0.9);
  }
  return profile;
}

HintUsage hint_usage(const std::vector<SiteObservation>& sites) {
  HintUsage usage;
  std::size_t landing_with = 0;
  std::size_t internal_zero = 0;
  std::size_t internal_total = 0;
  std::size_t usable = 0;
  for (const auto& site : sites) {
    if (!usable_site(site)) continue;
    ++usable;
    usage.landing_counts.push_back(site.landing.hints_total);
    if (site.landing.hints_total >= 1.0) ++landing_with;
    for (const auto& metrics : site.internals) {
      usage.internal_counts.push_back(metrics.hints_total);
      ++internal_total;
      if (metrics.hints_total < 1.0) ++internal_zero;
    }
  }
  if (usable == 0 || internal_total == 0)
    throw std::logic_error("hint_usage: empty campaign");
  usage.landing_with_hints =
      static_cast<double>(landing_with) / static_cast<double>(usable);
  usage.internal_without_hints =
      static_cast<double>(internal_zero) / static_cast<double>(internal_total);
  return usage;
}

XCacheSummary x_cache_summary(const std::vector<SiteObservation>& sites) {
  XCacheSummary summary;
  double landing_hits = 0.0, landing_total = 0.0;
  double internal_hits = 0.0, internal_total = 0.0;
  for (const auto& site : sites) {
    if (!usable_site(site)) continue;
    landing_hits += site.landing.x_cache_hits;
    landing_total += site.landing.x_cache_hits + site.landing.x_cache_misses;
    for (const auto& metrics : site.internals) {
      internal_hits += metrics.x_cache_hits;
      internal_total += metrics.x_cache_hits + metrics.x_cache_misses;
    }
  }
  if (landing_total > 0.0)
    summary.landing_hit_ratio = landing_hits / landing_total;
  if (internal_total > 0.0)
    summary.internal_hit_ratio = internal_hits / internal_total;
  return summary;
}

WaitTimes wait_times(const std::vector<SiteObservation>& sites) {
  WaitTimes times;
  for (const auto& site : sites) {
    if (!usable_site(site)) continue;
    times.landing_ms.insert(times.landing_ms.end(),
                            site.landing.wait_samples_ms.begin(),
                            site.landing.wait_samples_ms.end());
    for (const auto& metrics : site.internals)
      times.internal_ms.insert(times.internal_ms.end(),
                               metrics.wait_samples_ms.begin(),
                               metrics.wait_samples_ms.end());
  }
  return times;
}

SecuritySummary security_summary(const std::vector<SiteObservation>& sites) {
  SecuritySummary summary;
  for (const auto& site : sites) {
    if (!usable_site(site)) continue;
    if (site.landing.is_http) ++summary.http_landing_sites;
    if (site.landing.mixed_content) ++summary.mixed_landing_sites;
    int http_internal = 0;
    bool mixed_internal = false;
    for (const auto& metrics : site.internals) {
      if (metrics.is_http) ++http_internal;
      if (metrics.mixed_content) mixed_internal = true;
    }
    // The paper's Fig. 8a counts insecure internal pages among sites
    // with *secure* landing pages.
    if (!site.landing.is_http) {
      if (http_internal >= 1) ++summary.sites_with_http_internal;
      if (http_internal >= 10) ++summary.sites_with_10plus_http_internal;
      summary.insecure_internal_counts.push_back(http_internal);
    }
    if (mixed_internal) ++summary.sites_with_mixed_internal;
  }
  return summary;
}

std::vector<double> unseen_third_parties(
    const std::vector<SiteObservation>& sites) {
  std::vector<double> out;
  out.reserve(sites.size());
  for (const auto& site : sites) {
    if (!usable_site(site)) continue;
    const std::set<std::string> internal = site.internal_third_parties();
    std::size_t unseen = 0;
    for (const auto& domain : internal)
      if (!site.landing.third_parties.count(domain)) ++unseen;
    out.push_back(static_cast<double>(unseen));
  }
  return out;
}

HbSummary hb_summary(const std::vector<SiteObservation>& sites) {
  HbSummary summary;
  for (const auto& site : sites) {
    if (!usable_site(site)) continue;
    bool internal_hb = false;
    for (const auto& metrics : site.internals)
      internal_hb = internal_hb || metrics.header_bidding;
    if (site.landing.header_bidding) {
      ++summary.sites_with_hb_landing;
    } else if (internal_hb) {
      ++summary.sites_with_hb_internal_only;
    }
    if (site.landing.header_bidding || internal_hb) {
      summary.landing_slots.push_back(site.landing.hb_ad_slots);
      summary.internal_slots.push_back(
          site.internal_median([](const PageMetrics& m) {
            return m.hb_ad_slots;
          }));
    }
  }
  return summary;
}

std::vector<double> plt_delta_for_category(
    const std::vector<SiteObservation>& sites, web::SiteCategory category) {
  std::vector<double> out;
  for (const auto& site : sites) {
    if (!usable_site(site) || site.category != category) continue;
    const double delta =
        site.landing.plt_ms - site.internal_median(metric::plt_ms);
    out.push_back(delta / 1000.0);  // seconds, as the paper plots
  }
  return out;
}

}  // namespace hispar::core
