#include "core/analyses.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace hispar::core {

std::vector<double> PairedComparison::deltas() const {
  std::vector<double> out(landing.size());
  for (std::size_t i = 0; i < landing.size(); ++i)
    out[i] = landing[i] - internal_median[i];
  return out;
}

double PairedComparison::fraction_landing_greater() const {
  if (landing.empty()) throw std::logic_error("PairedComparison: empty");
  std::size_t greater = 0;
  for (std::size_t i = 0; i < landing.size(); ++i)
    if (landing[i] > internal_median[i]) ++greater;
  return static_cast<double>(greater) / static_cast<double>(landing.size());
}

double PairedComparison::geomean_ratio() const {
  std::vector<double> ratios;
  ratios.reserve(landing.size());
  for (std::size_t i = 0; i < landing.size(); ++i)
    if (landing[i] > 0.0 && internal_median[i] > 0.0)
      ratios.push_back(landing[i] / internal_median[i]);
  if (ratios.empty()) throw std::logic_error("geomean_ratio: no valid pairs");
  return util::geometric_mean(ratios);
}

bool usable_site(const SiteObservation& site) {
  return !site.quarantined && !site.internals.empty();
}

PairedComparison compare_metric(const std::vector<SiteObservation>& sites,
                                const MetricFn& fn) {
  PairedComparison out;
  out.landing.reserve(sites.size());
  out.internal_median.reserve(sites.size());
  for (const auto& site : sites) {
    if (!usable_site(site)) {
      ++out.excluded_sites;
      continue;
    }
    if (site.degraded()) ++out.partial_sites;
    out.landing.push_back(fn(site.landing));
    out.internal_median.push_back(site.internal_median(fn));
  }
  return out;
}

std::vector<double> internal_values(const std::vector<SiteObservation>& sites,
                                    const MetricFn& fn) {
  std::vector<double> out;
  for (const auto& site : sites) {
    if (!usable_site(site)) continue;
    for (const auto& metrics : site.internals) out.push_back(fn(metrics));
  }
  return out;
}

std::vector<double> landing_values(const std::vector<SiteObservation>& sites,
                                   const MetricFn& fn) {
  std::vector<double> out;
  out.reserve(sites.size());
  for (const auto& site : sites)
    if (usable_site(site)) out.push_back(fn(site.landing));
  return out;
}

util::KsResult ks_landing_vs_internal(
    const std::vector<SiteObservation>& sites, const MetricFn& fn) {
  return util::ks_two_sample(landing_values(sites, fn),
                             internal_values(sites, fn));
}

std::vector<double> delta_by_rank_bin(
    const std::vector<SiteObservation>& sites, const MetricFn& fn,
    std::size_t bins) {
  return util::rank_bin_medians(compare_metric(sites, fn).deltas(), bins);
}

ContentMix content_mix(const std::vector<SiteObservation>& sites) {
  ContentMix mix;
  for (std::size_t category = 0; category < 9; ++category) {
    std::vector<double> landing;
    std::vector<double> internal;
    for (const auto& site : sites) {
      if (!usable_site(site)) continue;
      landing.push_back(site.landing.mix_fractions[category]);
      for (const auto& metrics : site.internals)
        internal.push_back(metrics.mix_fractions[category]);
    }
    mix.landing_median[category] = util::median(landing);
    mix.internal_median[category] = util::median(internal);
  }
  return mix;
}

DepthProfile depth_profile(const std::vector<SiteObservation>& sites) {
  DepthProfile profile;
  for (std::size_t depth = 0; depth < 6; ++depth) {
    std::vector<double> landing;
    std::vector<double> internal;
    for (const auto& site : sites) {
      if (!usable_site(site)) continue;
      landing.push_back(site.landing.depth_counts[depth]);
      for (const auto& metrics : site.internals)
        internal.push_back(metrics.depth_counts[depth]);
    }
    profile.landing_median[depth] = util::median(landing);
    profile.internal_median[depth] = util::median(internal);
    profile.landing_p90[depth] = util::quantile(landing, 0.9);
    profile.internal_p90[depth] = util::quantile(internal, 0.9);
  }
  return profile;
}

HintUsage hint_usage(const std::vector<SiteObservation>& sites) {
  HintUsage usage;
  std::size_t landing_with = 0;
  std::size_t internal_zero = 0;
  std::size_t internal_total = 0;
  std::size_t usable = 0;
  for (const auto& site : sites) {
    if (!usable_site(site)) continue;
    ++usable;
    usage.landing_counts.push_back(site.landing.hints_total);
    if (site.landing.hints_total >= 1.0) ++landing_with;
    for (const auto& metrics : site.internals) {
      usage.internal_counts.push_back(metrics.hints_total);
      ++internal_total;
      if (metrics.hints_total < 1.0) ++internal_zero;
    }
  }
  if (usable == 0 || internal_total == 0)
    throw std::logic_error("hint_usage: empty campaign");
  usage.landing_with_hints =
      static_cast<double>(landing_with) / static_cast<double>(usable);
  usage.internal_without_hints =
      static_cast<double>(internal_zero) / static_cast<double>(internal_total);
  return usage;
}

XCacheSummary x_cache_summary(const std::vector<SiteObservation>& sites) {
  XCacheSummary summary;
  double landing_hits = 0.0, landing_total = 0.0;
  double internal_hits = 0.0, internal_total = 0.0;
  for (const auto& site : sites) {
    if (!usable_site(site)) continue;
    landing_hits += site.landing.x_cache_hits;
    landing_total += site.landing.x_cache_hits + site.landing.x_cache_misses;
    for (const auto& metrics : site.internals) {
      internal_hits += metrics.x_cache_hits;
      internal_total += metrics.x_cache_hits + metrics.x_cache_misses;
    }
  }
  if (landing_total > 0.0)
    summary.landing_hit_ratio = landing_hits / landing_total;
  if (internal_total > 0.0)
    summary.internal_hit_ratio = internal_hits / internal_total;
  return summary;
}

WaitTimes wait_times(const std::vector<SiteObservation>& sites) {
  WaitTimes times;
  for (const auto& site : sites) {
    if (!usable_site(site)) continue;
    times.landing_ms.insert(times.landing_ms.end(),
                            site.landing.wait_samples_ms.begin(),
                            site.landing.wait_samples_ms.end());
    for (const auto& metrics : site.internals)
      times.internal_ms.insert(times.internal_ms.end(),
                               metrics.wait_samples_ms.begin(),
                               metrics.wait_samples_ms.end());
  }
  return times;
}

SecuritySummary security_summary(const std::vector<SiteObservation>& sites) {
  SecuritySummary summary;
  for (const auto& site : sites) {
    if (!usable_site(site)) continue;
    if (site.landing.is_http) ++summary.http_landing_sites;
    if (site.landing.mixed_content) ++summary.mixed_landing_sites;
    int http_internal = 0;
    bool mixed_internal = false;
    for (const auto& metrics : site.internals) {
      if (metrics.is_http) ++http_internal;
      if (metrics.mixed_content) mixed_internal = true;
    }
    // The paper's Fig. 8a counts insecure internal pages among sites
    // with *secure* landing pages.
    if (!site.landing.is_http) {
      if (http_internal >= 1) ++summary.sites_with_http_internal;
      if (http_internal >= 10) ++summary.sites_with_10plus_http_internal;
      summary.insecure_internal_counts.push_back(http_internal);
    }
    if (mixed_internal) ++summary.sites_with_mixed_internal;
  }
  return summary;
}

std::vector<double> unseen_third_parties(
    const std::vector<SiteObservation>& sites) {
  std::vector<double> out;
  out.reserve(sites.size());
  for (const auto& site : sites) {
    if (!usable_site(site)) continue;
    const std::set<std::string> internal = site.internal_third_parties();
    std::size_t unseen = 0;
    for (const auto& domain : internal)
      if (!site.landing.third_parties.count(domain)) ++unseen;
    out.push_back(static_cast<double>(unseen));
  }
  return out;
}

HbSummary hb_summary(const std::vector<SiteObservation>& sites) {
  HbSummary summary;
  for (const auto& site : sites) {
    if (!usable_site(site)) continue;
    bool internal_hb = false;
    for (const auto& metrics : site.internals)
      internal_hb = internal_hb || metrics.header_bidding;
    if (site.landing.header_bidding) {
      ++summary.sites_with_hb_landing;
    } else if (internal_hb) {
      ++summary.sites_with_hb_internal_only;
    }
    if (site.landing.header_bidding || internal_hb) {
      summary.landing_slots.push_back(site.landing.hb_ad_slots);
      summary.internal_slots.push_back(
          site.internal_median([](const PageMetrics& m) {
            return m.hb_ad_slots;
          }));
    }
  }
  return summary;
}

std::vector<double> plt_delta_for_category(
    const std::vector<SiteObservation>& sites, web::SiteCategory category) {
  std::vector<double> out;
  for (const auto& site : sites) {
    if (!usable_site(site) || site.category != category) continue;
    const double delta =
        site.landing.plt_ms - site.internal_median(metric::plt_ms);
    out.push_back(delta / 1000.0);  // seconds, as the paper plots
  }
  return out;
}

// --- Cross-vantage disagreement ---

namespace {

// Sign of a landing-vs-internal delta: the direction the paper's
// headline claims are about. Exact zero is its own class so a vantage
// that sees no difference disagrees with one that sees either
// direction.
int delta_sign(double delta) {
  if (delta > 0.0) return 1;
  if (delta < 0.0) return -1;
  return 0;
}

// Positions of the sites usable at every vantage, plus a size check —
// the one structural error a caller can make is handing observation
// lists from different HisparLists.
std::vector<std::size_t> compared_positions(
    const std::vector<std::vector<SiteObservation>>& per_vantage) {
  if (per_vantage.empty())
    throw std::invalid_argument("vantage_disagreement: no vantages");
  const std::size_t n_sites = per_vantage.front().size();
  for (const auto& observations : per_vantage)
    if (observations.size() != n_sites)
      throw std::invalid_argument(
          "vantage_disagreement: vantage observation lists have different "
          "lengths (different lists?)");
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < n_sites; ++i) {
    bool everywhere = true;
    for (const auto& observations : per_vantage)
      if (!usable_site(observations[i])) {
        everywhere = false;
        break;
      }
    if (everywhere) positions.push_back(i);
  }
  return positions;
}

// Per-vantage deltas of one metric at one site position.
std::vector<double> site_deltas(
    const std::vector<std::vector<SiteObservation>>& per_vantage,
    std::size_t position, double (*fn)(const PageMetrics&)) {
  std::vector<double> deltas;
  deltas.reserve(per_vantage.size());
  for (const auto& observations : per_vantage) {
    const SiteObservation& site = observations[position];
    deltas.push_back(fn(site.landing) - site.internal_median(fn));
  }
  return deltas;
}

bool sign_consistent(const std::vector<double>& deltas) {
  for (std::size_t i = 1; i < deltas.size(); ++i)
    if (delta_sign(deltas[i]) != delta_sign(deltas.front())) return false;
  return true;
}

}  // namespace

const std::vector<ConsensusMetric>& consensus_metrics() {
  static const std::vector<ConsensusMetric> metrics = {
      {"bytes", metric::bytes},
      {"objects", metric::objects},
      {"plt_ms", metric::plt_ms},
      {"speed_index_ms", metric::speed_index_ms},
      {"cdn_bytes_fraction", metric::cdn_bytes_fraction},
      {"handshakes", metric::handshakes},
  };
  return metrics;
}

VantageDisagreement vantage_disagreement(
    const std::vector<std::vector<SiteObservation>>& per_vantage) {
  const auto positions = compared_positions(per_vantage);

  VantageDisagreement out;
  out.vantages = per_vantage.size();
  out.sites_total = per_vantage.front().size();
  out.sites_compared = positions.size();
  for (const auto& metric : consensus_metrics()) {
    VantageSpreadLine line;
    line.metric = metric.name;
    std::vector<double> spreads;
    spreads.reserve(positions.size());
    std::size_t flips = 0;
    for (std::size_t position : positions) {
      const auto deltas = site_deltas(per_vantage, position, metric.fn);
      const auto [lo, hi] = std::minmax_element(deltas.begin(), deltas.end());
      spreads.push_back(*hi - *lo);
      if (!sign_consistent(deltas)) ++flips;
    }
    line.max_spread =
        spreads.empty() ? std::numeric_limits<double>::quiet_NaN()
                        : *std::max_element(spreads.begin(), spreads.end());
    // NaN when no site compares everywhere — the documented span-API
    // empty-input policy (and the regression the quantile fix covers).
    line.median_spread = util::median_inplace(spreads);
    line.sign_flip_fraction =
        positions.empty() ? 0.0
                          : static_cast<double>(flips) /
                                static_cast<double>(positions.size());
    out.metrics.push_back(std::move(line));
  }
  return out;
}

void write_vantage_consensus_csv(
    std::ostream& out,
    const std::vector<std::vector<SiteObservation>>& per_vantage) {
  const auto positions = compared_positions(per_vantage);

  out << "domain,rank,vantages";
  for (const auto& metric : consensus_metrics())
    out << ',' << metric.name << "_delta_median," << metric.name
        << "_spread," << metric.name << "_sign_consistent";
  out << '\n';

  for (std::size_t position : positions) {
    const SiteObservation& site = per_vantage.front()[position];
    out << site.domain << ',' << site.bootstrap_rank << ','
        << per_vantage.size();
    for (const auto& metric : consensus_metrics()) {
      auto deltas = site_deltas(per_vantage, position, metric.fn);
      const auto [lo, hi] = std::minmax_element(deltas.begin(), deltas.end());
      const double spread = *hi - *lo;
      const bool consistent = sign_consistent(deltas);
      out << ',' << util::median_inplace(deltas) << ',' << spread << ','
          << (consistent ? 1 : 0);
    }
    out << '\n';
  }
}

ColdWarmDelta cold_warm_delta(const std::vector<SiteObservation>& cold,
                              const std::vector<SiteObservation>& warm) {
  if (cold.size() != warm.size())
    throw std::invalid_argument(
        "cold_warm_delta: observation lists cover different lists");

  ColdWarmDelta out;
  out.sites_total = cold.size();
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < cold.size(); ++i)
    if (usable_site(cold[i]) && usable_site(warm[i])) positions.push_back(i);
  out.sites_compared = positions.size();

  std::vector<double> scratch;
  scratch.reserve(positions.size());
  const auto median_over = [&](const std::vector<SiteObservation>& sites,
                               double (*fn)(const PageMetrics&),
                               bool landing) {
    scratch.clear();
    for (std::size_t position : positions) {
      const SiteObservation& site = sites[position];
      scratch.push_back(landing ? fn(site.landing)
                                : site.internal_median(fn));
    }
    return util::median_inplace(scratch);  // NaN when nothing compares
  };

  for (const auto& metric : consensus_metrics()) {
    ColdWarmMetricLine line;
    line.metric = metric.name;
    line.has_values = !positions.empty();
    if (line.has_values) {
      line.cold_landing_median = median_over(cold, metric.fn, true);
      line.cold_internal_median = median_over(cold, metric.fn, false);
      line.warm_landing_median = median_over(warm, metric.fn, true);
      line.warm_internal_median = median_over(warm, metric.fn, false);
    }
    out.metrics.push_back(std::move(line));
  }
  return out;
}

void write_warm_hits_csv(std::ostream& out,
                         const std::vector<SiteObservation>& sites,
                         const std::vector<browser::CacheStats>& stats) {
  if (sites.size() != stats.size())
    throw std::invalid_argument(
        "write_warm_hits_csv: sites and cache stats differ in length");
  out << "domain,rank,lookups,fresh_hits,revalidations,misses,insertions,"
         "evictions,warm_hit_ratio\n";
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const SiteObservation& site = sites[i];
    const browser::CacheStats& s = stats[i];
    const double ratio =
        s.lookups == 0 ? 0.0
                       : static_cast<double>(s.fresh_hits) /
                             static_cast<double>(s.lookups);
    out << site.domain << ',' << site.bootstrap_rank << ',' << s.lookups
        << ',' << s.fresh_hits << ',' << s.revalidations << ',' << s.misses
        << ',' << s.insertions << ',' << s.evictions << ',' << ratio << '\n';
  }
}

}  // namespace hispar::core
