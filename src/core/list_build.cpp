#include "core/list_build.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/parallel.h"
#include "core/serialization.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace hispar::core {

namespace {

// Weekly refreshes run back to back on the virtual clock: week k of a
// run starts at k * one-week offsets so the trace rows don't overlap
// and resumed weeks need no clock restoration.
constexpr double kWeekSeconds = 604800.0;

// Retry backoff doubles per attempt but is capped at this multiple of
// retry_backoff_s; computed with exp2 on a clamped exponent so a large
// --max-retries can never shift into undefined behaviour.
constexpr double kMaxRetryBackoffScale = 32.0;

}  // namespace

std::string_view to_string(CandidateStatus status) {
  switch (status) {
    case CandidateStatus::kAccepted: return "accepted";
    case CandidateStatus::kDropped: return "dropped";
    case CandidateStatus::kMissing: return "missing";
    case CandidateStatus::kQuarantined: return "quarantined";
  }
  return "unknown";
}

ListBuildCampaign::ShardWeekState::ShardWeekState(
    const web::SyntheticWeb& web,
    const search::SearchEngineConfig& engine_config,
    const obs::ObsOptions& observability, std::size_t shard_id,
    double clock_start_s)
    : engine(web, engine_config),
      metrics(observability.enabled ? std::make_unique<obs::MetricsRegistry>()
                                    : nullptr),
      tracer(observability.enabled
                 ? std::make_unique<obs::Tracer>(observability.span_cap)
                 : nullptr),
      shard_id(shard_id),
      clock_start_s(clock_start_s),
      clock_s(clock_start_s) {}

obs::ShardTelemetry ListBuildCampaign::ShardWeekState::take_telemetry() {
  obs::ShardTelemetry telemetry;
  if (metrics != nullptr) telemetry.metrics = std::move(*metrics);
  if (tracer != nullptr) {
    telemetry.spans = tracer->ordered_spans();
    telemetry.spans_dropped = tracer->dropped();
  }
  return telemetry;
}

ListBuildCampaign::ListBuildCampaign(const web::SyntheticWeb& web,
                                     const toplist::TopListFactory& toplists,
                                     ListBuildConfig config)
    : web_(&web),
      toplists_(&toplists),
      config_(std::move(config)),
      chaos_plan_(config_.chaos, config_.seed) {}

std::size_t ListBuildCampaign::wave_size() const {
  if (config_.wave_size != 0) return config_.wave_size;
  // Enough headroom that the drop rate the paper reports (§3: a few
  // percent of examined sites) rarely forces a second wave, without
  // examining the whole bootstrap list speculatively.
  const std::size_t target = config_.list.target_sites;
  return target + std::max<std::size_t>(32, target / 4);
}

std::uint64_t ListBuildCampaign::checkpoint_digest() const {
  std::ostringstream os;
  os.precision(17);
  os << "lb-v1|" << config_.seed << '|' << config_.shards << '|'
     << wave_size() << '|' << config_.start_week << '|' << config_.list.name
     << '|' << config_.list.target_sites << '|' << config_.list.urls_per_site
     << '|' << config_.list.min_internal_results << '|'
     << static_cast<int>(config_.list.bootstrap) << '|'
     << config_.list.max_bootstrap_scan << '|'
     << config_.list.index_crawl_budget << '|'
     << static_cast<int>(config_.engine.provider) << '|'
     << config_.engine.results_per_query << '|'
     << (config_.engine.english_only ? 1 : 0) << '|'
     << config_.fault_profile.str() << '|' << config_.max_query_retries << '|'
     << config_.retry_backoff_s << '|' << config_.query_latency_s << '|'
     << config_.timeout_latency_s << '|' << web_->config().seed << '|'
     << web_->site_count();
  // Appended only when set, so chaos-free checkpoints keep their
  // historical digests.
  if (config_.chaos.enabled()) os << "|chaos|" << config_.chaos.str();
  return util::fnv1a(os.str());
}

SiteCandidate ListBuildCampaign::examine_rank(ShardWeekState& state,
                                              const toplist::TopList& bootstrap,
                                              std::uint64_t week,
                                              std::size_t rank) {
  SiteCandidate candidate;
  candidate.rank = rank;
  candidate.domain = bootstrap.domain_at(rank);
  const double start_s = state.clock_s;
  const bool faulty = config_.fault_profile.enabled();
  const bool chaotic = chaos_plan_.enabled();
  const int max_attempts =
      (faulty || chaotic) ? 1 + std::max(0, config_.max_query_retries) : 1;

  search::SiteQueryOutcome outcome;
  int attempts = 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0)  // backoff gap before the retry, on the shard clock
      state.clock_s +=
          config_.retry_backoff_s *
          std::min(kMaxRetryBackoffScale,
                   std::exp2(static_cast<double>(std::min(attempt - 1, 62))));

    // An open search breaker fast-fails the attempt: no API call, no
    // billed query, no randomness. The backoff gap above still runs on
    // the shard clock, so the breaker's cooldown can elapse mid-site.
    if (chaotic && !state.breakers.at("search").allow(state.clock_s)) {
      outcome = search::SiteQueryOutcome{};
      outcome.ok = false;
      outcome.failure = state.last_failure_kind;
      attempts = attempt + 1;
      continue;
    }

    // Correlated outages strike before the query is issued — a struck
    // attempt models the API call itself failing, so it bills nothing.
    // The oracle draws only while a search-scope window is active
    // (activity is a pure function of virtual time), from a per-attempt
    // stream, so streams stay aligned for any --jobs value.
    std::optional<net::ChaosInjector> chaos_injector;
    if (chaotic)
      chaos_injector.emplace(
          chaos_plan_, util::Rng(config_.seed)
                           .fork("listbuild-chaos")
                           .fork(week)
                           .fork(static_cast<std::uint64_t>(state.shard_id))
                           .fork(candidate.domain)
                           .fork(static_cast<std::uint64_t>(attempt)));
    const net::SearchFaultKind chaos_strike =
        chaos_injector ? chaos_injector->search_fault(state.clock_s)
                       : net::SearchFaultKind::kNone;
    if (chaos_strike != net::SearchFaultKind::kNone) {
      if (state.metrics != nullptr)
        ++state.metrics->counter(
            "chaos.injected." +
            std::string(net::to_string(chaos_strike)));
      outcome = search::SiteQueryOutcome{};
      outcome.ok = false;
      outcome.failure = chaos_strike;
      attempts = attempt + 1;
      state.last_failure_kind = chaos_strike;
      state.breakers.at("search").record_failure(state.clock_s);
      if (chaos_strike == net::SearchFaultKind::kQueryTimeout)
        state.clock_s += config_.timeout_latency_s;
      continue;
    }

    // Fault decisions come from their own stream, keyed by everything
    // that identifies this query attempt and nothing that depends on
    // thread scheduling; `week` keys the refresh iteration the query
    // belongs to. The injector only exists under a nonzero profile, so
    // a fault-free build draws no extra randomness at all.
    std::optional<net::SearchFaultInjector> injector;
    if (faulty)
      injector.emplace(config_.fault_profile,
                       util::Rng(config_.seed)
                           .fork("listbuild")
                           .fork(week)
                           .fork(static_cast<std::uint64_t>(state.shard_id))
                           .fork(candidate.domain)
                           .fork(static_cast<std::uint64_t>(attempt)));

    outcome = state.engine.site_query_outcome(
        candidate.domain, config_.list.urls_per_site - 1, week,
        injector ? &*injector : nullptr);
    attempts = attempt + 1;
    candidate.queries_billed += outcome.queries_billed;
    state.clock_s += static_cast<double>(outcome.queries_billed) *
                     config_.query_latency_s;

    if (injector && state.metrics != nullptr) {
      const auto& injected = injector->injected();
      for (int kind = 1; kind < net::kSearchFaultKindCount; ++kind)
        if (injected[static_cast<std::size_t>(kind)] > 0)
          state.metrics->counter(
              "search.faults.injected." +
              std::string(net::to_string(
                  static_cast<net::SearchFaultKind>(kind)))) +=
              injected[static_cast<std::size_t>(kind)];
    }

    if (chaotic) {
      if (outcome.ok)
        state.breakers.at("search").record_success(state.clock_s);
      else
        state.breakers.at("search").record_failure(state.clock_s);
    }
    if (outcome.ok) break;
    if (outcome.failure != net::SearchFaultKind::kNone)
      state.last_failure_kind = outcome.failure;
    if (outcome.failure == net::SearchFaultKind::kQueryTimeout)
      state.clock_s += config_.timeout_latency_s;
  }
  candidate.retries = attempts - 1;

  if (!outcome.ok) {
    candidate.status = CandidateStatus::kQuarantined;
    candidate.failure = outcome.failure;
  } else {
    // Only internal results count toward the §3 threshold (landing
    // results are deduplicated against urls[0] below).
    std::size_t internal_results = 0;
    for (const auto& result : outcome.results)
      if (result.page_index != 0) ++internal_results;
    if (internal_results < config_.list.min_internal_results) {
      candidate.status = CandidateStatus::kDropped;
    } else {
      const web::WebSite* site = web_->find_site(candidate.domain);
      if (site == nullptr) {
        candidate.status = CandidateStatus::kMissing;
      } else {
        candidate.status = CandidateStatus::kAccepted;
        UrlSet set;
        set.domain = candidate.domain;
        set.bootstrap_rank = rank;
        set.urls.push_back(site->page_url(0).str());
        set.page_indices.push_back(0);
        for (const auto& result : outcome.results) {
          if (result.page_index == 0) continue;  // landing already included
          set.urls.push_back(result.url);
          set.page_indices.push_back(result.page_index);
        }
        candidate.set = std::move(set);
      }
    }
  }

  // Telemetry records the shard's actual execution — including overshoot
  // ranks the merge later discards; the consumed-prefix accounting lives
  // in WeekBuildStats.
  if (state.metrics != nullptr) {
    obs::MetricsRegistry& reg = *state.metrics;
    ++reg.counter("search.sites_examined");
    ++reg.counter("search.sites_" +
                  std::string(to_string(candidate.status)));
    reg.counter("search.queries") += candidate.queries_billed;
    reg.counter("search.retries") +=
        static_cast<std::uint64_t>(candidate.retries);
  }
  if (state.tracer != nullptr) {
    obs::TraceSpan span;
    span.name = candidate.domain;
    span.cat = "site-query";
    span.ts_us = obs::to_trace_us(start_s);
    span.dur_us = obs::to_trace_us(state.clock_s - start_s);
    span.tid = static_cast<std::uint32_t>(state.shard_id) + 1;
    span.args.emplace_back("rank", std::to_string(rank));
    span.args.emplace_back("status", std::string(to_string(candidate.status)));
    span.args.emplace_back("queries",
                           std::to_string(candidate.queries_billed));
    state.tracer->record(std::move(span));
  }
  return candidate;
}

ListBuildWeekRecord ListBuildCampaign::build_week(std::uint64_t week) {
  const std::size_t target = config_.list.target_sites;
  const std::size_t scan_limit = config_.list.max_bootstrap_scan == 0
                                     ? web_->site_count()
                                     : config_.list.max_bootstrap_scan;
  const toplist::TopList bootstrap =
      toplists_->weekly_list(config_.list.bootstrap, week, scan_limit);
  const std::size_t shard_count = std::max<std::size_t>(1, config_.shards);

  search::SearchEngineConfig engine_config = config_.engine;
  engine_config.index.crawl_budget = config_.list.index_crawl_budget;

  const double clock_start_s =
      static_cast<double>(week - config_.start_week) * kWeekSeconds;
  std::vector<std::unique_ptr<ShardWeekState>> states;
  states.reserve(shard_count);
  for (std::size_t shard = 0; shard < shard_count; ++shard)
    states.push_back(std::make_unique<ShardWeekState>(
        *web_, engine_config, config_.observability, shard, clock_start_s));

  // Scan bootstrap ranks in waves until the target-th acceptance exists
  // somewhere in the examined set (the cut to the serial stopping rank
  // happens after the merge). Wave layout depends only on config.
  const std::size_t wave = wave_size();
  std::size_t accepted_total = 0;
  std::size_t next_rank = 1;
  while (next_rank <= bootstrap.size() && accepted_total < target) {
    const std::size_t wave_end =
        std::min(bootstrap.size(), next_rank + wave - 1);
    std::vector<std::vector<std::size_t>> wave_ranks(shard_count);
    for (std::size_t rank = next_rank; rank <= wave_end; ++rank)
      wave_ranks[shard_of(bootstrap.domain_at(rank), shard_count)]
          .push_back(rank);

    std::vector<std::size_t> before(shard_count);
    for (std::size_t shard = 0; shard < shard_count; ++shard)
      before[shard] = states[shard]->candidates.size();

    // Workers only touch their own shard state and append to their own
    // candidate vector; memory visibility comes from the joins inside
    // for_each_shard.
    for_each_shard(shard_count, config_.jobs, [&](std::size_t shard) {
      ShardWeekState& state = *states[shard];
      for (std::size_t rank : wave_ranks[shard])
        state.candidates.push_back(
            examine_rank(state, bootstrap, week, rank));
    });

    for (std::size_t shard = 0; shard < shard_count; ++shard)
      for (std::size_t i = before[shard]; i < states[shard]->candidates.size();
           ++i)
        if (states[shard]->candidates[i].status == CandidateStatus::kAccepted)
          ++accepted_total;
    next_rank = wave_end + 1;
  }

  // Merge all candidates back into bootstrap-rank order. Per-rank
  // verdicts are pure functions of (domain, week, engine config), so
  // the merged sequence is exactly what a serial rank-order scan would
  // have produced.
  std::vector<const SiteCandidate*> merged;
  for (const auto& state : states)
    for (const auto& candidate : state->candidates)
      merged.push_back(&candidate);
  std::sort(merged.begin(), merged.end(),
            [](const SiteCandidate* a, const SiteCandidate* b) {
              return a->rank < b->rank;
            });

  // The consumed prefix ends at the rank that accepts the target-th
  // site — the serial builder's stopping point. Everything past the cut
  // is wave overshoot: real queries (they are spend), but never list
  // content or coverage counts.
  std::size_t cut = merged.size();
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (merged[i]->status == CandidateStatus::kAccepted && ++accepted == target) {
      cut = i + 1;
      break;
    }
  }

  ListBuildWeekRecord record;
  record.week = week;
  record.list.name = config_.list.name;
  record.list.week = week;
  record.stats.week = week;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const SiteCandidate& candidate = *merged[i];
    if (i >= cut) {
      record.stats.speculative_queries += candidate.queries_billed;
      continue;
    }
    ++record.stats.sites_examined;
    record.stats.queries_billed += candidate.queries_billed;
    record.stats.retries += static_cast<std::uint64_t>(candidate.retries);
    switch (candidate.status) {
      case CandidateStatus::kAccepted:
        ++record.stats.sites_accepted;
        record.list.sets.push_back(candidate.set);
        break;
      case CandidateStatus::kDropped:
        ++record.stats.sites_dropped;
        break;
      case CandidateStatus::kMissing:
        ++record.stats.sites_missing;
        break;
      case CandidateStatus::kQuarantined:
        ++record.stats.sites_quarantined;
        ++record.stats.quarantined_by[static_cast<std::size_t>(
            candidate.failure)];
        break;
    }
  }

  if (config_.observability.enabled) {
    for (std::size_t shard = 0; shard < shard_count; ++shard) {
      ShardWeekState& state = *states[shard];
      if (state.metrics != nullptr) {
        // Shard-scoped values live in gauges; the merge prefixes them
        // "week.<w>.shard.<id>." so they stay distinguishable.
        state.metrics->gauge("clock_end_s") = state.clock_s;
        state.metrics->gauge("sites") =
            static_cast<double>(state.candidates.size());
        state.metrics->gauge("queries") =
            static_cast<double>(state.engine.queries_issued());
        // Breaker counters exist only under a chaos schedule, so
        // chaos-free metrics artifacts keep their historical bytes.
        if (!state.breakers.empty()) {
          state.metrics->gauge("breaker.scopes") =
              static_cast<double>(state.breakers.records().size());
          if (state.breakers.total_times_opened() > 0)
            state.metrics->counter("breaker.opened") =
                state.breakers.total_times_opened();
          if (state.breakers.total_denials() > 0)
            state.metrics->counter("breaker.denials") =
                state.breakers.total_denials();
        }
      }
      if (state.tracer != nullptr) {
        obs::TraceSpan span;
        span.name = "shard " + std::to_string(shard) + " week " +
                    std::to_string(week);
        span.cat = "shard";
        span.ts_us = obs::to_trace_us(state.clock_start_s);
        span.dur_us = obs::to_trace_us(state.clock_s - state.clock_start_s);
        span.tid = static_cast<std::uint32_t>(shard) + 1;
        state.tracer->record(std::move(span));
      }
      record.telemetry.emplace(shard, state.take_telemetry());
    }
  }
  return record;
}

ListBuildResult ListBuildCampaign::run() {
  if (config_.weeks == 0)
    throw std::invalid_argument("list build: weeks must be >= 1");
  if (config_.list.urls_per_site == 0)
    throw std::invalid_argument("list build: urls_per_site must be >= 1");

  const std::uint64_t digest = checkpoint_digest();
  const std::uint64_t end_week = config_.start_week + config_.weeks;

  // Resume: splice completed weeks inside [start_week, end_week) back
  // in; weeks outside the range (a previous, longer refresh) are kept
  // out of the result but dropped from the rewritten file, which also
  // discards any torn tail a kill may have left.
  std::map<std::uint64_t, ListBuildWeekRecord> resumed;
  std::ofstream checkpoint_out;
  if (!config_.checkpoint_path.empty()) {
    std::ifstream existing(config_.checkpoint_path);
    if (existing) {
      ListBuildCheckpoint checkpoint = read_listbuild_checkpoint(existing);
      if (checkpoint.config_digest != digest)
        throw std::runtime_error(
            "list build: checkpoint was written by a different build "
            "(seed/list/engine/profile changed)");
      for (auto& record : checkpoint.weeks) {
        if (record.week < config_.start_week || record.week >= end_week)
          continue;
        record.list.name = config_.list.name;  // not serialized
        record.list.week = record.week;
        resumed.insert_or_assign(record.week, std::move(record));
      }
      existing.close();
    }
    // Rewrite through a temp file + atomic rename — truncating in
    // place had a kill window that lost already-durable week blocks.
    std::ostringstream rewritten;
    write_listbuild_checkpoint_header(rewritten, digest);
    for (const auto& [week, record] : resumed)
      append_listbuild_week(rewritten, record);
    replace_file_atomically(config_.checkpoint_path, rewritten.str());
    checkpoint_out.open(config_.checkpoint_path, std::ios::app);
    if (!checkpoint_out)
      throw std::runtime_error("list build: cannot open checkpoint " +
                               config_.checkpoint_path);
  }

  std::vector<ListBuildWeekRecord> records;
  records.reserve(config_.weeks);
  for (std::uint64_t week = config_.start_week; week < end_week; ++week) {
    const auto it = resumed.find(week);
    if (it != resumed.end()) {
      records.push_back(std::move(it->second));
      continue;
    }
    records.push_back(build_week(week));
    if (checkpoint_out.is_open()) {
      // Weeks complete strictly in sequence on this thread, so appends
      // need no lock; flushing per week bounds a kill's damage to one
      // torn week block.
      append_listbuild_week(checkpoint_out, records.back());
      checkpoint_out.flush();
    }
  }

  telemetry_ = obs::RunTelemetry{};
  telemetry_.enabled = config_.observability.enabled;
  if (config_.observability.enabled) {
    // Merge in (week, shard) order: counters/histograms sum, gauges
    // become "week.<w>.shard.<id>.<name>", spans concatenate behind one
    // campaign-level span spanning the whole refresh loop.
    double end_s = 0.0;
    for (const auto& record : records) {
      for (const auto& [shard, telemetry] : record.telemetry) {
        if (telemetry.empty()) continue;
        telemetry_.metrics.merge_from(
            telemetry.metrics, "week." + std::to_string(record.week) +
                                   ".shard." + std::to_string(shard) + ".");
        telemetry_.spans.insert(telemetry_.spans.end(),
                                telemetry.spans.begin(),
                                telemetry.spans.end());
        telemetry_.spans_dropped += telemetry.spans_dropped;
        end_s = std::max(end_s, telemetry.metrics.gauge_or("clock_end_s"));
      }
    }
    obs::TraceSpan campaign_span;
    campaign_span.name = "list build";
    campaign_span.cat = "campaign";
    campaign_span.ts_us = 0;
    campaign_span.dur_us = obs::to_trace_us(end_s);
    campaign_span.tid = 0;
    telemetry_.spans.insert(telemetry_.spans.begin(),
                            std::move(campaign_span));
    telemetry_.metrics.counter("trace.spans_dropped") =
        telemetry_.spans_dropped;
  }

  ListBuildResult result;
  result.lists.reserve(records.size());
  result.weeks.reserve(records.size());
  for (auto& record : records) {
    result.lists.push_back(std::move(record.list));
    result.weeks.push_back(record.stats);
  }
  return result;
}

ChurnCell churn_between(const HisparList& before, const HisparList& after) {
  ChurnCell cell;
  if (!before.sets.empty()) {
    cell.has_site_churn = true;
    cell.site_churn = site_churn(before, after);
  }
  // internal_url_churn is defined over internal URLs of sites present
  // in both weeks; replicate its guard instead of catching the throw.
  std::size_t common_internals = 0;
  for (const auto& set : before.sets)
    if (after.find(set.domain) != nullptr)
      common_internals += set.internal_count();
  if (common_internals > 0) {
    cell.has_url_churn = true;
    cell.internal_url_churn = internal_url_churn(before, after);
  }
  return cell;
}

void write_churn_csv(std::ostream& out,
                     const std::vector<HisparList>& lists) {
  out << "week_from,week_to,site_churn,internal_url_churn\n";
  for (std::size_t i = 1; i < lists.size(); ++i) {
    const ChurnCell cell = churn_between(lists[i - 1], lists[i]);
    out << lists[i - 1].week << ',' << lists[i].week << ',';
    if (cell.has_site_churn) out << cell.site_churn;
    else out << "na";
    out << ',';
    if (cell.has_url_churn) out << cell.internal_url_churn;
    else out << "na";
    out << '\n';
  }
}

void write_cost_ledger_csv(std::ostream& out,
                           const std::vector<WeekBuildStats>& weeks) {
  out << "week,provider,queries,speculative_queries,total_queries,"
         "query_price_usd,spend_usd,sites_examined,sites_accepted,"
         "sites_dropped,sites_missing,sites_quarantined,retries\n";
  constexpr search::SearchProvider kProviders[] = {
      search::SearchProvider::kGoogle, search::SearchProvider::kBing};
  const auto emit = [&out](const std::string& week,
                           search::SearchProvider provider,
                           const WeekBuildStats& stats) {
    const double price = search::query_price_usd(provider);
    const std::uint64_t total =
        stats.queries_billed + stats.speculative_queries;
    out << week << ',' << search::provider_name(provider) << ','
        << stats.queries_billed << ',' << stats.speculative_queries << ','
        << total << ',' << price << ','
        << static_cast<double>(total) * price << ',' << stats.sites_examined
        << ',' << stats.sites_accepted << ',' << stats.sites_dropped << ','
        << stats.sites_missing << ',' << stats.sites_quarantined << ','
        << stats.retries << '\n';
  };
  WeekBuildStats totals;
  for (const auto& stats : weeks) {
    for (const auto provider : kProviders)
      emit(std::to_string(stats.week), provider, stats);
    totals.sites_examined += stats.sites_examined;
    totals.sites_accepted += stats.sites_accepted;
    totals.sites_dropped += stats.sites_dropped;
    totals.sites_missing += stats.sites_missing;
    totals.sites_quarantined += stats.sites_quarantined;
    totals.queries_billed += stats.queries_billed;
    totals.speculative_queries += stats.speculative_queries;
    totals.retries += stats.retries;
  }
  for (const auto provider : kProviders) emit("total", provider, totals);
}

obs::ListBuildReport build_listbuild_report(
    const ListBuildResult& result, const obs::RunTelemetry& telemetry) {
  obs::ListBuildReport report;
  report.weeks = result.weeks.size();
  if (!result.weeks.empty()) report.start_week = result.weeks.front().week;

  std::array<std::uint64_t, net::kSearchFaultKindCount> quarantined_by{};
  for (std::size_t i = 0; i < result.weeks.size(); ++i) {
    const WeekBuildStats& stats = result.weeks[i];
    report.sites_examined += stats.sites_examined;
    report.sites_accepted += stats.sites_accepted;
    report.sites_dropped += stats.sites_dropped;
    report.sites_missing += stats.sites_missing;
    report.sites_quarantined += stats.sites_quarantined;
    report.queries_billed += stats.queries_billed;
    report.speculative_queries += stats.speculative_queries;
    report.retries += stats.retries;
    for (std::size_t kind = 0; kind < quarantined_by.size(); ++kind)
      quarantined_by[kind] += stats.quarantined_by[kind];

    obs::ListBuildReport::WeekLine line;
    line.week = stats.week;
    line.sites_accepted = stats.sites_accepted;
    line.sites_examined = stats.sites_examined;
    line.queries_billed = stats.queries_billed;
    line.speculative_queries = stats.speculative_queries;
    if (i > 0 && i < result.lists.size()) {
      const ChurnCell cell =
          churn_between(result.lists[i - 1], result.lists[i]);
      line.has_site_churn = cell.has_site_churn;
      line.site_churn = cell.site_churn;
      line.has_url_churn = cell.has_url_churn;
      line.internal_url_churn = cell.internal_url_churn;
    }
    report.week_lines.push_back(line);
  }

  const std::uint64_t total_queries =
      report.queries_billed + report.speculative_queries;
  for (const auto provider :
       {search::SearchProvider::kGoogle, search::SearchProvider::kBing}) {
    obs::ListBuildReport::ProviderLine line;
    line.provider = search::provider_name(provider);
    line.query_price_usd = search::query_price_usd(provider);
    line.spend_usd =
        static_cast<double>(total_queries) * line.query_price_usd;
    report.providers.push_back(std::move(line));
  }

  for (int kind = 1; kind < net::kSearchFaultKindCount; ++kind) {
    obs::ListBuildReport::FaultLine line;
    line.kind = std::string(
        net::to_string(static_cast<net::SearchFaultKind>(kind)));
    line.injected = telemetry.metrics.counter_or(
        "search.faults.injected." + line.kind);
    line.sites_quarantined = quarantined_by[static_cast<std::size_t>(kind)];
    report.faults.push_back(std::move(line));
  }

  report.telemetry = telemetry.enabled;
  if (telemetry.enabled) {
    report.trace_spans = telemetry.spans.size();
    report.trace_spans_dropped = telemetry.spans_dropped;
  }
  return report;
}

}  // namespace hispar::core
