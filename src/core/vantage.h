// Multi-vantage-point measurement campaigns.
//
// The paper measures from one vantage point and repeatedly flags that as
// a threat to validity (§3.1, §5.3, the Fig. 10c World-category PLT
// reversal). A VantageCampaign runs the existing MeasurementCampaign
// once per net::VantageProfile: each vantage derives its own
// CampaignConfig (client region, RTT shape, resolver model, optional
// DoH, CDN edge pinning, scaled fault profile, forked seed) and runs the
// full §3.1 fetch protocol over the same list. Everything stays under
// the determinism contract — each artifact is bit-identical for any
// --jobs value and across kill + resume — so cross-vantage differences
// are attributable to the vantage profile alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hispar.h"
#include "core/measurement.h"
#include "net/vantage_profile.h"
#include "obs/obs.h"
#include "obs/report.h"

namespace hispar::core {

struct VantageCampaignConfig {
  // Template campaign: every vantage inherits its list-independent
  // settings (loads, shards, retries, ablations, observability, base
  // fault profile). base.jobs sizes the cross-vantage (vantage, shard)
  // worker pool — it never changes result bytes. base.checkpoint_path
  // is ignored — multi-vantage checkpointing is cell-granular, via
  // checkpoint_path below.
  CampaignConfig base;
  // One profile per vantage, run in index order. Index 0 with an
  // all-default profile reproduces the single-vantage campaign byte for
  // byte.
  std::vector<net::VantageProfile> profiles;
  // When non-empty, run() appends each completed (vantage, shard) cell
  // to this file and resumes from it like the single-campaign
  // checkpoint: completed cells splice back in, only the rest re-run,
  // and the output is bit-identical to an uninterrupted run. A finished
  // run compacts the file to whole-vantage blocks — the layout the
  // sequential engine wrote, so old files resume and new files are
  // byte-identical to old ones.
  std::string checkpoint_path;
};

struct VantageRunResult {
  // observations[v][i] is vantage v's observation of list.sets[i].
  std::vector<std::vector<SiteObservation>> observations;
};

class VantageCampaign {
 public:
  VantageCampaign(const web::SyntheticWeb& web, VantageCampaignConfig config);

  // Run the full campaign at every vantage. Work is scheduled as a 2-D
  // (vantage, shard) pool on up to base.jobs threads: shard state is
  // fully vantage-isolated, so N vantages x S shards saturate the cores
  // instead of serializing on each vantage's tail shard, and results
  // stay byte-identical to the sequential engine for every --jobs value
  // (observations and telemetry merge in (vantage, shard) order).
  VantageRunResult run(const HisparList& list);

  // The CampaignConfig vantage v runs under: the base config with the
  // profile's substrate knobs applied, a fault profile scaled by the
  // profile's fault_scale, and (for v > 0) a seed forked from the base
  // seed by vantage index. Vantage 0 of an all-default profile is the
  // base config itself, which is what makes a 1-vantage campaign
  // byte-identical to the historical single-vantage one.
  CampaignConfig vantage_config(std::size_t vantage) const;

  // Fingerprint of everything that determines run() output: every
  // derived per-vantage config (through campaign_config_digest) and the
  // list — never jobs or observability. Guards resume.
  std::uint64_t checkpoint_digest(const HisparList& list) const;

  // Merged telemetry of the last run(). One vantage exports its
  // telemetry untouched (byte-identical to the single campaign's);
  // several merge in vantage-id order — counters/histograms sum, each
  // vantage's gauges are prefixed "vantage.<v>." and its span thread
  // ids shifted by v * vantage_tid_stride(shards), so every vantage
  // renders as its own row group in the Perfetto UI.
  const obs::RunTelemetry& telemetry() const { return telemetry_; }

  // Per-vantage telemetry of the last run() (parallel to profiles).
  const std::vector<obs::ShardTelemetry>& vantage_telemetry() const {
    return vantage_telemetry_;
  }

 private:
  const web::SyntheticWeb* web_;
  VantageCampaignConfig config_;
  obs::RunTelemetry telemetry_;
  std::vector<obs::ShardTelemetry> vantage_telemetry_;
};

// Trace thread-id stride between vantage tid bands. Vantage v's rows
// span [v * stride, v * stride + shards] (tid 0 is the campaign span,
// shard tids are shard id + 1), so the stride must exceed the shard
// count or adjacent bands collide and Perfetto rows interleave across
// vantages. Campaigns under 1000 shards keep the historical stride of
// 1000 (and their existing trace bytes); larger shard counts widen the
// band to shards + 1.
std::uint32_t vantage_tid_stride(std::size_t shards);

// Scale every fault rate by `scale`, clamping each to [0, 1]; if the
// clamped rates still sum above 1 — the invariant FaultProfile::parse
// rejects — the whole profile is renormalized so relative rates
// survive and the total stays within [0, 1]. scale = 1 returns any
// valid profile unchanged; scale = 0 disables faults entirely.
net::FaultProfile scale_fault_profile(const net::FaultProfile& profile,
                                      double scale);

// Assembles the structured multi-vantage report (schema
// "hispar-vantage-report-v1") from a run's per-vantage observations,
// the profiles they were measured under (one per observation list),
// and the merged telemetry.
obs::VantageReport build_vantage_report(
    const std::vector<std::vector<SiteObservation>>& per_vantage,
    const std::vector<net::VantageProfile>& profiles,
    const obs::RunTelemetry& telemetry);

}  // namespace hispar::core
