// Sharded parallel execution of measurement campaigns.
//
// A campaign over a Hispar list is embarrassingly parallel across sites
// *if* the simulation state that loads share (DNS resolver cache, CDN
// edge LRUs, the virtual clock) is partitioned deterministically. We
// partition by *shard*: a stable hash of the site's domain assigns it to
// one of a fixed number of shards, each shard owns a fully isolated
// simulation state (one "vantage point", mirroring how real
// multi-probe platforms fan out whole crawls), and worker threads pick
// up shards. Because shard membership depends only on the domain and the
// shard count — never on the number of workers — the merged result is
// bit-identical for any `jobs` value.
#pragma once

#include <cstddef>
#include <functional>
#include <string_view>
#include <vector>

#include "core/hispar.h"

namespace hispar::core {

// Stable shard assignment: fnv1a(domain) % shard_count. Independent of
// worker count, list order and platform, so results are reproducible.
std::size_t shard_of(std::string_view domain, std::size_t shard_count);

// Partition the positions [0, list.sets.size()) of a Hispar list into
// `shard_count` index lists by domain hash. Relative list order is
// preserved within each shard (the per-shard fetch protocol iterates
// sites in list order, like the serial campaign does globally).
std::vector<std::vector<std::size_t>> shard_indices(const HisparList& list,
                                                    std::size_t shard_count);

// Run `fn(unit)` for every unit in [0, unit_count) on up to `jobs`
// threads (jobs == 0 means one per hardware thread; jobs is capped at
// unit_count). A "unit" is any independently runnable slice of work —
// one shard of a single campaign, or one (vantage, shard) cell of a
// multi-vantage campaign. fn must only touch unit-local state or write
// to disjoint output slots. Exceptions thrown by fn are collected and
// the one from the lowest unit id is rethrown after all workers join,
// so error reporting is deterministic too.
void for_each_unit(std::size_t unit_count, std::size_t jobs,
                   const std::function<void(std::size_t)>& fn);

// Shard-flavoured alias of for_each_unit, kept for call sites that
// schedule exactly one campaign's shards.
void for_each_shard(std::size_t shard_count, std::size_t jobs,
                    const std::function<void(std::size_t)>& fn);

}  // namespace hispar::core
