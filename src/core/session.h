// Deterministic browsing-session replay (warm-vs-cold contrast).
//
// The paper measures every page with a cold browser profile (§3.1) but
// frames the landing/internal cacheability gap around users who reach
// internal pages *through* the landing page with a warm cache (§5.1).
// This campaign replays exactly that journey: per site, one session
// loads the landing page and then `session_len` of its internal pages
// through one PageLoader while threading a private browser::SessionState
// (standards-style HTTP cache, warm DNS answers, per-origin keep-alive)
// across the pages. Contrasting its observations with a cold campaign
// over the same list quantifies how much of the landing-vs-internal gap
// a warm within-session cache erases.
//
// Determinism contract (same as MeasurementCampaign): every random
// stream is keyed by (seed, domain, page, ordinal, attempt) — never by
// shard id or thread schedule — so session artifacts are bit-identical
// for any --jobs value, any --shards value, and across kill + resume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "browser/http_cache.h"
#include "core/measurement.h"

namespace hispar::core {

struct SessionConfig {
  // Substrate knobs, seed, fault profile, retries, observability — the
  // session campaign inherits the measurement campaign's configuration
  // wholesale so cold and warm runs share one substrate definition.
  CampaignConfig base;
  // Internal pages visited per session (after the landing page). Sites
  // with fewer internal URLs visit all of them.
  std::size_t session_len = 5;
  // Browser cache capacity (bytes) — roughly a mobile browser's disk
  // cache; large enough that a single session rarely evicts.
  std::size_t cache_bytes = 50'000'000;
  // false replays the same visit order with a cold profile per page
  // (no SessionState at all) — the paper's protocol, used as the
  // control arm of the cold-vs-warm contrast.
  bool warm = true;
  // When non-empty, run() appends each completed session to this file
  // and, if the file already exists, resumes from it. A session owns
  // fully isolated state, so it is the unit of resume and a resumed
  // campaign's output is bit-identical to an uninterrupted one.
  std::string checkpoint_path;
};

class SessionCampaign {
 public:
  SessionCampaign(const web::SyntheticWeb& web, SessionConfig config = {});

  // Replay one browsing session per site of the list. Sessions are
  // fully isolated (own substrate, own clock from 0, own RNG forked
  // from the seed by domain), so shards only distribute work across
  // up to `base.jobs` threads and the output is identical for any
  // `jobs` *and* any `shards` value.
  std::vector<SiteObservation> run(const HisparList& list);

  // Per-site browser-cache counters of the last run(), parallel to the
  // returned observations (all zero when `warm` is false).
  const std::vector<browser::CacheStats>& cache_stats() const {
    return cache_stats_;
  }

  // Merged telemetry of the last run() (empty/disabled unless
  // base.observability.enabled). Per-session registries and span lists
  // are folded in list-position order, so the merge is deterministic.
  const obs::RunTelemetry& telemetry() const { return telemetry_; }

  // Fingerprint of everything that determines run() output for a given
  // list. Extends campaign_config_digest with the session knobs; guards
  // checkpoint resume against a mismatched campaign.
  std::uint64_t checkpoint_digest(const HisparList& list) const;

  // The deterministic visit order of one site's session: the landing
  // page first, then min(session_len, available) internal page indices
  // in Fisher-Yates order under Rng(seed).fork("session").fork(domain)
  // .fork("order") — a pure function of (seed, domain, list), never of
  // jobs/shards. Exposed for tests.
  static std::vector<std::size_t> session_pages(std::uint64_t seed,
                                                const UrlSet& set,
                                                std::size_t session_len);

 private:
  struct SessionResult {
    SiteObservation observation;
    browser::CacheStats cache;
    obs::ShardTelemetry telemetry;
    double clock_end_s = 0.0;
  };

  SessionResult run_session(const HisparList& list, std::size_t position);

  const web::SyntheticWeb* web_;
  SessionConfig config_;
  browser::AdBlocker adblock_;
  browser::HbDetector hb_;
  cdn::CdnDetector detector_;
  net::OutagePlan chaos_plan_;
  std::vector<browser::CacheStats> cache_stats_;
  obs::RunTelemetry telemetry_;
};

// Assembles the structured session report: coverage of the warm run,
// summed browser-cache counters, and the cold-vs-warm contrast over
// the consensus metrics (core::cold_warm_delta fills the metric
// lines). Lives here rather than in obs/ because it reads
// SiteObservation. `cold` is the control campaign's observations over
// the same list; `stats` is parallel to `warm`.
obs::SessionReport build_session_report(
    const std::vector<SiteObservation>& cold,
    const std::vector<SiteObservation>& warm,
    const std::vector<browser::CacheStats>& stats,
    const obs::RunTelemetry& telemetry, std::size_t session_len);

}  // namespace hispar::core
