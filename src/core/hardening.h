// List hardening (§3 + Pochat et al.).
//
// The paper: "If the churn in internal pages in H2K is deemed too high,
// we can improve the list's stability by using the same techniques that
// are used to improve the stability of top lists — averaging the results
// over longer periods of time as Pochat et al. suggest." This is that
// technique: combine k weekly builds into a Tranco-style hardened list
// keeping the sites/URLs that persist across weeks.
#pragma once

#include <cstddef>
#include <span>

#include "core/hispar.h"

namespace hispar::core {

struct HardeningConfig {
  // A site/URL must appear in at least this many of the input weeks.
  std::size_t min_site_appearances = 2;
  std::size_t min_url_appearances = 2;
  // Cap on internal URLs per site in the hardened list (most-persistent
  // first); 0 = no cap.
  std::size_t urls_per_site = 0;
};

// Input lists must be non-empty and should be consecutive weekly builds
// of the same configuration. The hardened list orders sites by their
// best (lowest) bootstrap rank across the weeks.
HisparList harden(std::span<const HisparList> weeks,
                  const HardeningConfig& config = {});

}  // namespace hispar::core
