#include "core/hardening.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace hispar::core {

HisparList harden(std::span<const HisparList> weeks,
                  const HardeningConfig& config) {
  if (weeks.empty()) throw std::invalid_argument("harden: no input weeks");
  if (config.min_site_appearances == 0 || config.min_url_appearances == 0)
    throw std::invalid_argument("harden: appearance thresholds must be >= 1");

  struct SiteAccumulator {
    std::size_t appearances = 0;
    std::size_t best_rank = ~std::size_t{0};
    std::string landing_url;
    std::size_t landing_index = 0;
    // url -> (appearances, page index)
    std::map<std::string, std::pair<std::size_t, std::size_t>> urls;
  };
  std::map<std::string, SiteAccumulator> sites;

  for (const HisparList& week : weeks) {
    for (const UrlSet& set : week.sets) {
      SiteAccumulator& acc = sites[set.domain];
      ++acc.appearances;
      acc.best_rank = std::min(acc.best_rank, set.bootstrap_rank);
      acc.landing_url = set.urls.front();
      acc.landing_index = set.page_indices.front();
      for (std::size_t i = 1; i < set.urls.size(); ++i) {
        auto& [count, page_index] = acc.urls[set.urls[i]];
        ++count;
        page_index = set.page_indices[i];
      }
    }
  }

  // Order sites by best rank.
  std::vector<std::pair<std::string, const SiteAccumulator*>> ordered;
  for (const auto& [domain, acc] : sites) {
    if (acc.appearances >= config.min_site_appearances)
      ordered.emplace_back(domain, &acc);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.second->best_rank != b.second->best_rank)
                return a.second->best_rank < b.second->best_rank;
              return a.first < b.first;
            });

  HisparList hardened;
  hardened.name = std::string(weeks.front().name) + "-hardened";
  hardened.week = weeks.back().week;
  for (const auto& [domain, acc] : ordered) {
    UrlSet set;
    set.domain = domain;
    set.bootstrap_rank = acc->best_rank;
    set.urls.push_back(acc->landing_url);
    set.page_indices.push_back(acc->landing_index);

    // Most-persistent URLs first; ties by URL for determinism.
    std::vector<std::pair<std::string, std::pair<std::size_t, std::size_t>>>
        candidates(acc->urls.begin(), acc->urls.end());
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                if (a.second.first != b.second.first)
                  return a.second.first > b.second.first;
                return a.first < b.first;
              });
    for (const auto& [url, info] : candidates) {
      if (info.first < config.min_url_appearances) break;
      if (config.urls_per_site != 0 &&
          set.urls.size() >= config.urls_per_site)
        break;
      set.urls.push_back(url);
      set.page_indices.push_back(info.second);
    }
    hardened.sets.push_back(std::move(set));
  }
  return hardened;
}

}  // namespace hispar::core
