#include "core/vantage.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/analyses.h"
#include "core/serialization.h"
#include "util/rng.h"

namespace hispar::core {

namespace {

// Trace thread-id stride between vantages: shard tids are shard id + 1
// and campaigns run far fewer than a thousand shards, so vantage v's
// rows land in [v * 1000, v * 1000 + shards] without collision.
constexpr std::uint32_t kVantageTidStride = 1000;

}  // namespace

net::FaultProfile scale_fault_profile(const net::FaultProfile& profile,
                                      double scale) {
  const auto scaled = [scale](double rate) {
    return std::clamp(rate * scale, 0.0, 1.0);
  };
  net::FaultProfile out = profile;
  out.dns_servfail = scaled(profile.dns_servfail);
  out.dns_timeout = scaled(profile.dns_timeout);
  out.connection_reset = scaled(profile.connection_reset);
  out.tls_failure = scaled(profile.tls_failure);
  out.http_5xx = scaled(profile.http_5xx);
  out.stall = scaled(profile.stall);
  out.truncation = scaled(profile.truncation);
  return out;
}

VantageCampaign::VantageCampaign(const web::SyntheticWeb& web,
                                 VantageCampaignConfig config)
    : web_(&web), config_(std::move(config)) {
  if (config_.profiles.empty())
    throw std::invalid_argument("vantage campaign: no vantage profiles");
}

CampaignConfig VantageCampaign::vantage_config(std::size_t vantage) const {
  if (vantage >= config_.profiles.size())
    throw std::invalid_argument("vantage campaign: vantage index out of range");
  const net::VantageProfile& profile = config_.profiles[vantage];

  CampaignConfig config = config_.base;
  // Checkpointing is vantage-granular; the inner campaigns never write
  // their own resume files.
  config.checkpoint_path.clear();
  config.vantage = profile.region;
  config.latency = profile.latency;
  config.resolver = profile.resolver;
  config.use_doh = profile.use_doh;
  config.doh = profile.doh;
  config.cdn_edge_pin = profile.edge_pin;
  config.fault_profile =
      scale_fault_profile(config_.base.fault_profile, profile.fault_scale);
  // Each vantage beyond the home one draws from its own seed universe:
  // a given site must not see correlated faults or load noise across
  // vantages. Vantage 0 keeps the base seed, which (with an all-default
  // profile) makes a 1-vantage campaign byte-identical to the
  // historical single-vantage one.
  if (vantage > 0)
    config.seed = util::Rng(config_.base.seed).fork("vantage")
                      .fork(static_cast<std::uint64_t>(vantage)).next();
  return config;
}

std::uint64_t VantageCampaign::checkpoint_digest(const HisparList& list) const {
  std::ostringstream os;
  os << "vantage-v1|" << config_.profiles.size();
  for (std::size_t v = 0; v < config_.profiles.size(); ++v)
    os << "|v" << v << ':' << campaign_config_digest(vantage_config(v), list);
  return util::fnv1a(os.str());
}

VantageRunResult VantageCampaign::run(const HisparList& list) {
  const std::size_t n = config_.profiles.size();
  VantageRunResult result;
  result.observations.assign(n, {});
  vantage_telemetry_.assign(n, obs::ShardTelemetry{});
  telemetry_ = obs::RunTelemetry{};
  telemetry_.enabled = config_.base.observability.enabled;

  // A vantage is the unit of resume: its block holds the complete
  // observation list (and telemetry) of one inner campaign, so splicing
  // it back in is bit-identical to re-running it.
  std::vector<char> vantage_done(n, 0);
  std::ofstream checkpoint_out;
  if (!config_.checkpoint_path.empty()) {
    const std::uint64_t digest = checkpoint_digest(list);
    std::ifstream existing(config_.checkpoint_path);
    if (existing) {
      VantageCheckpoint checkpoint = read_vantage_checkpoint(existing);
      if (checkpoint.config_digest != digest)
        throw std::runtime_error(
            "vantage campaign: checkpoint was written by a different "
            "campaign (seed/profiles/list changed)");
      for (auto& block : checkpoint.vantages) {
        if (block.vantage >= n) continue;
        auto& observations = result.observations[block.vantage];
        observations.assign(list.sets.size(), SiteObservation{});
        for (auto& [position, observation] : block.observations)
          if (position < observations.size())
            observations[position] = std::move(observation);
        if (block.has_telemetry)
          vantage_telemetry_[block.vantage] = std::move(block.telemetry);
        vantage_done[block.vantage] = 1;
      }
      existing.close();
    }
    // (Re)write the file from the parsed state, dropping any torn tail
    // a killed run left behind.
    checkpoint_out.open(config_.checkpoint_path, std::ios::trunc);
    if (!checkpoint_out)
      throw std::runtime_error("vantage campaign: cannot open checkpoint " +
                               config_.checkpoint_path);
    write_vantage_checkpoint_header(checkpoint_out, digest);
    for (std::size_t v = 0; v < n; ++v)
      if (vantage_done[v])
        append_vantage_block(checkpoint_out, v, result.observations[v],
                             vantage_telemetry_[v].empty()
                                 ? nullptr
                                 : &vantage_telemetry_[v]);
    checkpoint_out.flush();
  }

  // Vantages run in order; each inner campaign parallelizes across its
  // shards with base.jobs, so there is no cross-vantage concurrency to
  // make deterministic in the first place.
  for (std::size_t v = 0; v < n; ++v) {
    if (vantage_done[v]) continue;
    MeasurementCampaign campaign(*web_, vantage_config(v));
    result.observations[v] = campaign.run(list);
    if (config_.base.observability.enabled) {
      const obs::RunTelemetry& run = campaign.telemetry();
      vantage_telemetry_[v].metrics = run.metrics;
      vantage_telemetry_[v].spans = run.spans;
      vantage_telemetry_[v].spans_dropped = run.spans_dropped;
    }
    if (checkpoint_out.is_open()) {
      append_vantage_block(checkpoint_out, v, result.observations[v],
                           vantage_telemetry_[v].empty()
                               ? nullptr
                               : &vantage_telemetry_[v]);
      checkpoint_out.flush();
    }
  }

  if (config_.base.observability.enabled) {
    if (n == 1) {
      // One vantage exports the inner campaign's telemetry untouched —
      // the byte-identity contract with the single-vantage engine.
      telemetry_.metrics = vantage_telemetry_[0].metrics;
      telemetry_.spans = vantage_telemetry_[0].spans;
      telemetry_.spans_dropped = vantage_telemetry_[0].spans_dropped;
    } else {
      // Merge in vantage-id order: counters/histograms sum (each
      // vantage's merged registry already carries a trace.spans_dropped
      // counter, so the sum stays consistent), gauges become
      // "vantage.<v>.<name>", spans keep their per-vantage order with
      // thread ids shifted into vantage v's tid band.
      for (std::size_t v = 0; v < n; ++v) {
        const obs::ShardTelemetry& telemetry = vantage_telemetry_[v];
        if (telemetry.empty()) continue;
        telemetry_.metrics.merge_from(
            telemetry.metrics, "vantage." + std::to_string(v) + ".");
        for (obs::TraceSpan span : telemetry.spans) {
          span.tid += static_cast<std::uint32_t>(v) * kVantageTidStride;
          telemetry_.spans.push_back(std::move(span));
        }
        telemetry_.spans_dropped += telemetry.spans_dropped;
      }
    }
  }
  return result;
}

obs::VantageReport build_vantage_report(
    const std::vector<std::vector<SiteObservation>>& per_vantage,
    const std::vector<net::VantageProfile>& profiles,
    const obs::RunTelemetry& telemetry) {
  if (per_vantage.size() != profiles.size())
    throw std::invalid_argument(
        "build_vantage_report: one observation list per profile required");
  const VantageDisagreement disagreement = vantage_disagreement(per_vantage);

  obs::VantageReport report;
  report.vantages = disagreement.vantages;
  report.sites_total = disagreement.sites_total;
  report.sites_compared = disagreement.sites_compared;

  for (std::size_t v = 0; v < profiles.size(); ++v) {
    const CampaignSummary summary = summarize_campaign(per_vantage[v]);
    obs::VantageReport::VantageLine line;
    line.vantage = v;
    line.name = profiles[v].name;
    line.region = std::string(net::to_string(profiles[v].region));
    line.sites_ok = summary.sites_ok;
    line.sites_degraded = summary.sites_degraded;
    line.sites_quarantined = summary.sites_quarantined;
    line.failed_fetches = summary.failed_fetches;
    report.vantage_lines.push_back(std::move(line));
  }

  for (const auto& metric : disagreement.metrics) {
    obs::VantageReport::MetricLine line;
    line.metric = metric.metric;
    line.has_spread = disagreement.sites_compared > 0;
    line.median_spread = line.has_spread ? metric.median_spread : 0.0;
    line.max_spread = line.has_spread ? metric.max_spread : 0.0;
    line.sign_flip_fraction = metric.sign_flip_fraction;
    report.metric_lines.push_back(std::move(line));
  }

  report.telemetry = telemetry.enabled;
  if (telemetry.enabled) {
    report.trace_spans = telemetry.spans.size();
    report.trace_spans_dropped = telemetry.spans_dropped;
  }
  return report;
}

}  // namespace hispar::core
