#include "core/vantage.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/analyses.h"
#include "core/parallel.h"
#include "core/serialization.h"
#include "util/rng.h"

namespace hispar::core {

std::uint32_t vantage_tid_stride(std::size_t shards) {
  // 1000 is the historical stride; every campaign under a thousand
  // shards keeps its existing trace bytes. Beyond that the band must
  // widen: vantage v's rows span [v * stride, v * stride + shards]
  // (tid 0 is the campaign span, shard tids are shard id + 1), so the
  // stride has to exceed the shard count or bands collide.
  constexpr std::uint32_t kHistoricalStride = 1000;
  if (shards < kHistoricalStride) return kHistoricalStride;
  return static_cast<std::uint32_t>(shards) + 1;
}

net::FaultProfile scale_fault_profile(const net::FaultProfile& profile,
                                      double scale) {
  const auto scaled = [scale](double rate) {
    return std::clamp(rate * scale, 0.0, 1.0);
  };
  net::FaultProfile out = profile;
  out.dns_servfail = scaled(profile.dns_servfail);
  out.dns_timeout = scaled(profile.dns_timeout);
  out.connection_reset = scaled(profile.connection_reset);
  out.tls_failure = scaled(profile.tls_failure);
  out.http_5xx = scaled(profile.http_5xx);
  out.stall = scaled(profile.stall);
  out.truncation = scaled(profile.truncation);
  // Per-rate clamping alone can leave the *total* above 1 — the
  // invariant FaultProfile::parse rejects, because one fetch draws at
  // most one fault. Renormalize so relative rates survive and the
  // total lands just under 1 (the slack keeps the floating-point sum
  // of the divided rates from creeping back over the bound).
  const double total = out.total_rate();
  if (total > 1.0) {
    const double denom = total * (1.0 + 1e-12);
    out.dns_servfail /= denom;
    out.dns_timeout /= denom;
    out.connection_reset /= denom;
    out.tls_failure /= denom;
    out.http_5xx /= denom;
    out.stall /= denom;
    out.truncation /= denom;
  }
  return out;
}

VantageCampaign::VantageCampaign(const web::SyntheticWeb& web,
                                 VantageCampaignConfig config)
    : web_(&web), config_(std::move(config)) {
  if (config_.profiles.empty())
    throw std::invalid_argument("vantage campaign: no vantage profiles");
}

CampaignConfig VantageCampaign::vantage_config(std::size_t vantage) const {
  if (vantage >= config_.profiles.size())
    throw std::invalid_argument("vantage campaign: vantage index out of range");
  const net::VantageProfile& profile = config_.profiles[vantage];

  CampaignConfig config = config_.base;
  // Checkpointing is vantage-granular; the inner campaigns never write
  // their own resume files.
  config.checkpoint_path.clear();
  config.vantage = profile.region;
  config.latency = profile.latency;
  config.resolver = profile.resolver;
  config.use_doh = profile.use_doh;
  config.doh = profile.doh;
  config.cdn_edge_pin = profile.edge_pin;
  config.fault_profile =
      scale_fault_profile(config_.base.fault_profile, profile.fault_scale);
  // Each vantage beyond the home one draws from its own seed universe:
  // a given site must not see correlated faults or load noise across
  // vantages. Vantage 0 keeps the base seed, which (with an all-default
  // profile) makes a 1-vantage campaign byte-identical to the
  // historical single-vantage one.
  if (vantage > 0)
    config.seed = util::Rng(config_.base.seed).fork("vantage")
                      .fork(static_cast<std::uint64_t>(vantage)).next();
  return config;
}

std::uint64_t VantageCampaign::checkpoint_digest(const HisparList& list) const {
  std::ostringstream os;
  os << "vantage-v1|" << config_.profiles.size();
  for (std::size_t v = 0; v < config_.profiles.size(); ++v)
    os << "|v" << v << ':' << campaign_config_digest(vantage_config(v), list);
  return util::fnv1a(os.str());
}

VantageRunResult VantageCampaign::run(const HisparList& list) {
  const std::size_t n = config_.profiles.size();
  const std::size_t shard_count =
      std::max<std::size_t>(1, config_.base.shards);
  VantageRunResult result;
  result.observations.assign(
      n, std::vector<SiteObservation>(list.sets.size()));
  vantage_telemetry_.assign(n, obs::ShardTelemetry{});
  telemetry_ = obs::RunTelemetry{};
  telemetry_.enabled = config_.base.observability.enabled;

  // The durable unit of the 2-D scheduler is one (vantage, shard) cell:
  // shard state is fully vantage-isolated, so a cell either completed
  // (its observations and raw telemetry are on disk and splice back in)
  // or re-runs from scratch, and a resumed run is bit-identical to an
  // uninterrupted one at any --jobs. A whole-vantage block (the layout
  // the sequential engine wrote, and what the finished file compacts
  // to) marks every cell of that vantage done.
  std::vector<char> vantage_done(n, 0);
  std::vector<std::vector<char>> cell_done(
      n, std::vector<char>(shard_count, 0));
  std::vector<std::vector<obs::ShardTelemetry>> cell_telemetry(
      n, std::vector<obs::ShardTelemetry>(shard_count));
  const auto shards = shard_indices(list, shard_count);

  std::uint64_t digest = 0;
  std::ofstream checkpoint_out;
  if (!config_.checkpoint_path.empty()) {
    digest = checkpoint_digest(list);
    std::ifstream existing(config_.checkpoint_path);
    if (existing) {
      VantageCheckpoint checkpoint = read_vantage_checkpoint(existing);
      if (checkpoint.config_digest != digest)
        throw std::runtime_error(
            "vantage campaign: checkpoint was written by a different "
            "campaign (seed/profiles/list changed)");
      for (auto& block : checkpoint.vantages) {
        if (block.vantage >= n) continue;
        auto& observations = result.observations[block.vantage];
        for (auto& [position, observation] : block.observations)
          if (position < observations.size())
            observations[position] = std::move(observation);
        if (block.has_telemetry)
          vantage_telemetry_[block.vantage] = std::move(block.telemetry);
        vantage_done[block.vantage] = 1;
      }
      for (auto& block : checkpoint.shards) {
        if (block.vantage >= n || block.shard >= shard_count) continue;
        if (vantage_done[block.vantage]) continue;
        auto& observations = result.observations[block.vantage];
        for (auto& [position, observation] : block.observations)
          if (position < observations.size())
            observations[position] = std::move(observation);
        if (block.has_telemetry)
          cell_telemetry[block.vantage][block.shard] =
              std::move(block.telemetry);
        cell_done[block.vantage][block.shard] = 1;
      }
      existing.close();
    }
    // Rewrite the parsed state — dropping any torn tail a killed run
    // left — through a temp file + atomic rename. Truncating the file
    // in place had a kill window between the truncation and the
    // re-append in which every block that was already durable on disk
    // was silently lost.
    std::ostringstream rewritten;
    write_vantage_checkpoint_header(rewritten, digest);
    for (std::size_t v = 0; v < n; ++v)
      if (vantage_done[v])
        append_vantage_block(rewritten, v, result.observations[v],
                             vantage_telemetry_[v].empty()
                                 ? nullptr
                                 : &vantage_telemetry_[v]);
    for (std::size_t v = 0; v < n; ++v)
      for (std::size_t s = 0; s < shard_count; ++s)
        if (!vantage_done[v] && cell_done[v][s])
          append_vantage_shard_block(rewritten, v, s, shards[s],
                                     result.observations[v],
                                     cell_telemetry[v][s].empty()
                                         ? nullptr
                                         : &cell_telemetry[v][s]);
    replace_file_atomically(config_.checkpoint_path, rewritten.str());
    checkpoint_out.open(config_.checkpoint_path, std::ios::app);
    if (!checkpoint_out)
      throw std::runtime_error("vantage campaign: cannot open checkpoint " +
                               config_.checkpoint_path);
  }

  // Build one inner campaign per pending vantage (cheap, deterministic,
  // main thread) and enumerate the pending cells in (vantage, shard)
  // order. Workers pull cells: a cell touches only vantage-local shard
  // state and writes observation/telemetry slots disjoint from every
  // other cell, so the merged artifacts are --jobs independent by
  // construction — the merge below reads the slots in (vantage, shard)
  // order exactly as the sequential engine did.
  std::vector<std::unique_ptr<MeasurementCampaign>> campaigns(n);
  std::vector<std::pair<std::size_t, std::size_t>> cells;
  for (std::size_t v = 0; v < n; ++v) {
    if (vantage_done[v]) continue;
    campaigns[v] =
        std::make_unique<MeasurementCampaign>(*web_, vantage_config(v));
    for (std::size_t s = 0; s < shard_count; ++s)
      if (!cell_done[v][s]) cells.emplace_back(v, s);
  }

  std::mutex checkpoint_mutex;
  for_each_unit(cells.size(), config_.base.jobs, [&](std::size_t unit) {
    const auto [v, s] = cells[unit];
    MeasurementCampaign::ShardRun cell =
        campaigns[v]->run_one_shard(s, list, shards[s],
                                    result.observations[v]);
    cell_telemetry[v][s] = std::move(cell.telemetry);
    if (checkpoint_out.is_open()) {
      const std::lock_guard<std::mutex> lock(checkpoint_mutex);
      append_vantage_shard_block(checkpoint_out, v, s, shards[s],
                                 result.observations[v],
                                 cell_telemetry[v][s].empty()
                                     ? nullptr
                                     : &cell_telemetry[v][s]);
      checkpoint_out.flush();
    }
  });

  // Fold each pending vantage's cells into its vantage-level telemetry,
  // through the same merge the inner campaign's own run() uses — the
  // merged bytes must match the sequential engine's exactly.
  if (config_.base.observability.enabled) {
    for (std::size_t v = 0; v < n; ++v) {
      if (vantage_done[v]) continue;
      obs::RunTelemetry merged;
      merged.enabled = true;
      merge_campaign_telemetry(merged, cell_telemetry[v]);
      vantage_telemetry_[v].metrics = std::move(merged.metrics);
      vantage_telemetry_[v].spans = std::move(merged.spans);
      vantage_telemetry_[v].spans_dropped = merged.spans_dropped;
    }
  }

  if (checkpoint_out.is_open()) {
    // Every cell has landed: compact the file to whole-vantage blocks —
    // the historical layout, byte-identical to the sequential engine's
    // final file at any --jobs and any interrupt history. Atomic again:
    // a kill mid-compaction leaves the complete cell-granular file.
    checkpoint_out.close();
    std::ostringstream compacted;
    write_vantage_checkpoint_header(compacted, digest);
    for (std::size_t v = 0; v < n; ++v)
      append_vantage_block(compacted, v, result.observations[v],
                           vantage_telemetry_[v].empty()
                               ? nullptr
                               : &vantage_telemetry_[v]);
    replace_file_atomically(config_.checkpoint_path, compacted.str());
  }

  if (config_.base.observability.enabled) {
    if (n == 1) {
      // One vantage exports the inner campaign's telemetry untouched —
      // the byte-identity contract with the single-vantage engine.
      telemetry_.metrics = vantage_telemetry_[0].metrics;
      telemetry_.spans = vantage_telemetry_[0].spans;
      telemetry_.spans_dropped = vantage_telemetry_[0].spans_dropped;
    } else {
      // Merge in vantage-id order: counters/histograms sum (each
      // vantage's merged registry already carries a trace.spans_dropped
      // counter, so the sum stays consistent), gauges become
      // "vantage.<v>.<name>", spans keep their per-vantage order with
      // thread ids shifted into vantage v's tid band.
      const std::uint32_t stride = vantage_tid_stride(shard_count);
      for (std::size_t v = 0; v < n; ++v) {
        const obs::ShardTelemetry& telemetry = vantage_telemetry_[v];
        if (telemetry.empty()) continue;
        telemetry_.metrics.merge_from(
            telemetry.metrics, "vantage." + std::to_string(v) + ".");
        for (obs::TraceSpan span : telemetry.spans) {
          span.tid += static_cast<std::uint32_t>(v) * stride;
          telemetry_.spans.push_back(std::move(span));
        }
        telemetry_.spans_dropped += telemetry.spans_dropped;
      }
    }
  }
  return result;
}

obs::VantageReport build_vantage_report(
    const std::vector<std::vector<SiteObservation>>& per_vantage,
    const std::vector<net::VantageProfile>& profiles,
    const obs::RunTelemetry& telemetry) {
  if (per_vantage.size() != profiles.size())
    throw std::invalid_argument(
        "build_vantage_report: one observation list per profile required");
  const VantageDisagreement disagreement = vantage_disagreement(per_vantage);

  obs::VantageReport report;
  report.vantages = disagreement.vantages;
  report.sites_total = disagreement.sites_total;
  report.sites_compared = disagreement.sites_compared;

  for (std::size_t v = 0; v < profiles.size(); ++v) {
    const CampaignSummary summary = summarize_campaign(per_vantage[v]);
    obs::VantageReport::VantageLine line;
    line.vantage = v;
    line.name = profiles[v].name;
    line.region = std::string(net::to_string(profiles[v].region));
    line.sites_ok = summary.sites_ok;
    line.sites_degraded = summary.sites_degraded;
    line.sites_quarantined = summary.sites_quarantined;
    line.failed_fetches = summary.failed_fetches;
    report.vantage_lines.push_back(std::move(line));
  }

  for (const auto& metric : disagreement.metrics) {
    obs::VantageReport::MetricLine line;
    line.metric = metric.metric;
    line.has_spread = disagreement.sites_compared > 0;
    line.median_spread = line.has_spread ? metric.median_spread : 0.0;
    line.max_spread = line.has_spread ? metric.max_spread : 0.0;
    // Guarded like the spreads: with no compared sites there are no
    // per-site deltas, so any nonzero (or non-finite) fraction computed
    // upstream must not leak into the deterministic JSON writer.
    line.sign_flip_fraction = line.has_spread ? metric.sign_flip_fraction : 0.0;
    report.metric_lines.push_back(std::move(line));
  }

  report.telemetry = telemetry.enabled;
  if (telemetry.enabled) {
    report.trace_spans = telemetry.spans.size();
    report.trace_spans_dropped = telemetry.spans_dropped;
  }
  return report;
}

}  // namespace hispar::core
