#include "core/serialization.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"
#include "util/url.h"

namespace hispar::core {

namespace {
constexpr const char* kCsvHeader = "domain,bootstrap_rank,kind,page_index,url";
}

void write_csv(const HisparList& list, std::ostream& out) {
  out << kCsvHeader << '\n';
  for (const auto& set : list.sets) {
    for (std::size_t i = 0; i < set.urls.size(); ++i) {
      out << set.domain << ',' << set.bootstrap_rank << ','
          << (i == 0 ? "landing" : "internal") << ',' << set.page_indices[i]
          << ',' << set.urls[i] << '\n';
    }
  }
}

std::string to_csv(const HisparList& list) {
  std::ostringstream os;
  write_csv(list, os);
  return os.str();
}

HisparList read_csv(std::istream& in, std::string name) {
  HisparList list;
  list.name = std::move(name);

  std::string line;
  if (!std::getline(in, line) || line != kCsvHeader)
    throw std::runtime_error("hispar csv: missing or bad header");

  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = util::split(line, ',');
    if (fields.size() != 5)
      throw std::runtime_error("hispar csv: wrong field count at line " +
                               std::to_string(line_number));
    const std::string& domain = fields[0];
    char* end = nullptr;
    const unsigned long rank = std::strtoul(fields[1].c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
      throw std::runtime_error("hispar csv: bad rank at line " +
                               std::to_string(line_number));
    const bool is_landing = fields[2] == "landing";
    if (!is_landing && fields[2] != "internal")
      throw std::runtime_error("hispar csv: bad kind at line " +
                               std::to_string(line_number));
    const unsigned long page_index = std::strtoul(fields[3].c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
      throw std::runtime_error("hispar csv: bad page index at line " +
                               std::to_string(line_number));
    if (!util::parse_url(fields[4]).has_value())
      throw std::runtime_error("hispar csv: unparsable url at line " +
                               std::to_string(line_number));

    if (is_landing) {
      UrlSet set;
      set.domain = domain;
      set.bootstrap_rank = rank;
      set.urls.push_back(fields[4]);
      set.page_indices.push_back(page_index);
      list.sets.push_back(std::move(set));
    } else {
      if (list.sets.empty() || list.sets.back().domain != domain)
        throw std::runtime_error(
            "hispar csv: internal URL before its landing page at line " +
            std::to_string(line_number));
      list.sets.back().urls.push_back(fields[4]);
      list.sets.back().page_indices.push_back(page_index);
    }
  }
  return list;
}

HisparList from_csv(const std::string& csv, std::string name) {
  std::istringstream is(csv);
  return read_csv(is, std::move(name));
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}
}  // namespace

std::string to_json(const HisparList& list) {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(list.name) << "\",\"week\":"
     << list.week << ",\"sites\":[";
  for (std::size_t s = 0; s < list.sets.size(); ++s) {
    const auto& set = list.sets[s];
    if (s) os << ',';
    os << "{\"domain\":\"" << json_escape(set.domain)
       << "\",\"rank\":" << set.bootstrap_rank << ",\"urls\":[";
    for (std::size_t i = 0; i < set.urls.size(); ++i) {
      if (i) os << ',';
      os << '"' << json_escape(set.urls[i]) << '"';
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

void save_csv(const HisparList& list, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("hispar csv: cannot open " + path);
  write_csv(list, out);
}

HisparList load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("hispar csv: cannot open " + path);
  return read_csv(in, path);
}

}  // namespace hispar::core
