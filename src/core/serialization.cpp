#include "core/serialization.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/strings.h"
#include "util/url.h"

namespace hispar::core {

namespace {
constexpr const char* kCsvHeader = "domain,bootstrap_rank,kind,page_index,url";
}

void write_csv(const HisparList& list, std::ostream& out) {
  out << kCsvHeader << '\n';
  for (const auto& set : list.sets) {
    for (std::size_t i = 0; i < set.urls.size(); ++i) {
      out << set.domain << ',' << set.bootstrap_rank << ','
          << (i == 0 ? "landing" : "internal") << ',' << set.page_indices[i]
          << ',' << set.urls[i] << '\n';
    }
  }
}

std::string to_csv(const HisparList& list) {
  std::ostringstream os;
  write_csv(list, os);
  return os.str();
}

HisparList read_csv(std::istream& in, std::string name) {
  HisparList list;
  list.name = std::move(name);

  std::string line;
  if (!std::getline(in, line) || line != kCsvHeader)
    throw std::runtime_error("hispar csv: missing or bad header");

  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = util::split(line, ',');
    if (fields.size() != 5)
      throw std::runtime_error("hispar csv: wrong field count at line " +
                               std::to_string(line_number));
    const std::string& domain = fields[0];
    // strtoul stops at the first NUL, so require that it consumed the
    // whole field: "3\0junk" must be rejected, not silently truncated.
    char* end = nullptr;
    const unsigned long rank = std::strtoul(fields[1].c_str(), &end, 10);
    if (fields[1].empty() || end != fields[1].c_str() + fields[1].size())
      throw std::runtime_error("hispar csv: bad rank at line " +
                               std::to_string(line_number));
    const bool is_landing = fields[2] == "landing";
    if (!is_landing && fields[2] != "internal")
      throw std::runtime_error("hispar csv: bad kind at line " +
                               std::to_string(line_number));
    const unsigned long page_index = std::strtoul(fields[3].c_str(), &end, 10);
    if (fields[3].empty() || end != fields[3].c_str() + fields[3].size())
      throw std::runtime_error("hispar csv: bad page index at line " +
                               std::to_string(line_number));
    if (!util::parse_url(fields[4]).has_value())
      throw std::runtime_error("hispar csv: unparsable url at line " +
                               std::to_string(line_number));

    if (is_landing) {
      UrlSet set;
      set.domain = domain;
      set.bootstrap_rank = rank;
      set.urls.push_back(fields[4]);
      set.page_indices.push_back(page_index);
      list.sets.push_back(std::move(set));
    } else {
      if (list.sets.empty() || list.sets.back().domain != domain)
        throw std::runtime_error(
            "hispar csv: internal URL before its landing page at line " +
            std::to_string(line_number));
      list.sets.back().urls.push_back(fields[4]);
      list.sets.back().page_indices.push_back(page_index);
    }
  }
  return list;
}

HisparList from_csv(const std::string& csv, std::string name) {
  std::istringstream is(csv);
  return read_csv(is, std::move(name));
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}
}  // namespace

std::string to_json(const HisparList& list) {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(list.name) << "\",\"week\":"
     << list.week << ",\"sites\":[";
  for (std::size_t s = 0; s < list.sets.size(); ++s) {
    const auto& set = list.sets[s];
    if (s) os << ',';
    os << "{\"domain\":\"" << json_escape(set.domain)
       << "\",\"rank\":" << set.bootstrap_rank << ",\"urls\":[";
    for (std::size_t i = 0; i < set.urls.size(); ++i) {
      if (i) os << ',';
      os << '"' << json_escape(set.urls[i]) << '"';
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

void save_csv(const HisparList& list, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("hispar csv: cannot open " + path);
  write_csv(list, out);
}

HisparList load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("hispar csv: cannot open " + path);
  return read_csv(in, path);
}

// --- Campaign results CSV ---

void write_measure_csv(std::ostream& out,
                       const std::vector<SiteObservation>& sites) {
  out << "domain,rank,page,bytes,objects,plt_ms,speed_index_ms,domains,"
         "noncacheable,cdn_fraction,handshakes,trackers\n";
  const auto emit = [&out](const std::string& domain, std::size_t rank,
                           const std::string& kind, const PageMetrics& m) {
    out << domain << ',' << rank << ',' << kind << ',' << m.bytes << ','
        << m.objects << ',' << m.plt_ms << ',' << m.speed_index_ms << ','
        << m.unique_domains << ',' << m.noncacheable_objects << ','
        << m.cdn_bytes_fraction << ',' << m.handshakes << ','
        << m.tracking_requests << '\n';
  };
  for (const auto& site : sites) {
    if (site.quarantined) continue;
    emit(site.domain, site.bootstrap_rank, "landing", site.landing);
    for (std::size_t i = 0; i < site.internals.size(); ++i)
      emit(site.domain, site.bootstrap_rank,
           "internal-" + std::to_string(i + 1), site.internals[i]);
  }
}

// --- Campaign checkpoints ---

namespace {

[[noreturn]] void checkpoint_fail(const std::string& what) {
  throw std::runtime_error("checkpoint: " + what);
}

// The strtoX family stops at the first NUL, so a field like "5\0junk"
// would parse as 5 under a bare *end == '\0' check. Require the parse
// to consume the field's full length: embedded NUL bytes (and any
// other trailing garbage) are rejected with the same clean error.
bool consumed(const std::string& s, const char* end) {
  return !s.empty() && end == s.c_str() + s.size();
}

std::uint64_t parse_u64(const std::string& s, const char* what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (!consumed(s, end))
    checkpoint_fail(std::string("bad ") + what + " '" + s + "'");
  return static_cast<std::uint64_t>(v);
}

int parse_int(const std::string& s, const char* what) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (!consumed(s, end))
    checkpoint_fail(std::string("bad ") + what + " '" + s + "'");
  return static_cast<int>(v);
}

double parse_double(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (!consumed(s, end))
    checkpoint_fail(std::string("bad ") + what + " '" + s + "'");
  return v;
}

std::int64_t parse_i64(const std::string& s, const char* what) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (!consumed(s, end))
    checkpoint_fail(std::string("bad ") + what + " '" + s + "'");
  return static_cast<std::int64_t>(v);
}

// A length field read from the file feeds reserve() before the
// records it promises are parsed; an adversarial count like 10^18
// must fail as a bad checkpoint, not as std::length_error/bad_alloc
// from the allocator. Every promised record occupies at least one
// line, so the total line count is a sound upper bound.
std::size_t parse_count(const std::string& s, const char* what,
                        std::size_t line_bound) {
  const std::uint64_t v = parse_u64(s, what);
  if (v > line_bound)
    checkpoint_fail(std::string("oversize ") + what + " '" + s + "'");
  return static_cast<std::size_t>(v);
}

// Telemetry strings (span names, arg values) go into a comma/semicolon
// separated format; the separators themselves are sanitized away.
std::string obs_sanitize(std::string s) {
  for (char& c : s)
    if (c == ',' || c == ';' || c == '\n' || c == '\r') c = '_';
  return s;
}

void write_metrics(std::ostream& out, const PageMetrics& m) {
  out << "metrics," << m.bytes << ',' << m.objects << ',' << m.plt_ms << ','
      << m.on_load_ms << ',' << m.speed_index_ms << ','
      << m.noncacheable_objects << ',' << m.cacheable_bytes_fraction << ','
      << m.cdn_bytes_fraction << ',' << m.x_cache_hits << ','
      << m.x_cache_misses;
  for (double fraction : m.mix_fractions) out << ',' << fraction;
  for (double count : m.depth_counts) out << ',' << count;
  out << ',' << m.unique_domains << ',' << m.hints_total << ','
      << m.handshakes << ',' << m.handshake_time_ms << ',' << m.dns_lookups
      << ',' << m.dns_time_ms << ',' << (m.is_http ? 1 : 0) << ','
      << (m.mixed_content ? 1 : 0) << ',' << m.tracking_requests << ','
      << (m.header_bidding ? 1 : 0) << ',' << m.hb_ad_slots;
  out << ",tp:";
  bool first = true;
  for (const auto& domain : m.third_parties) {
    if (!first) out << ';';
    first = false;
    out << domain;
  }
  out << ",wait:";
  first = true;
  for (double sample : m.wait_samples_ms) {
    if (!first) out << ';';
    first = false;
    out << sample;
  }
  out << '\n';
}

// Field layout of a metrics line; keep in sync with write_metrics.
constexpr std::size_t kMetricsFields = 39;

bool parse_flag(const std::string& s, const char* what) {
  if (s == "0") return false;
  if (s == "1") return true;
  checkpoint_fail(std::string("bad ") + what + " '" + s + "'");
}

PageMetrics parse_metrics(const std::string& line) {
  const auto f = util::split(line, ',');
  if (f.size() != kMetricsFields || f[0] != "metrics")
    checkpoint_fail("bad metrics record '" + line + "'");
  PageMetrics m;
  std::size_t i = 1;
  const auto next = [&](const char* what) { return parse_double(f[i++], what); };
  m.bytes = next("bytes");
  m.objects = next("objects");
  m.plt_ms = next("plt");
  m.on_load_ms = next("on_load");
  m.speed_index_ms = next("speed_index");
  m.noncacheable_objects = next("noncacheable");
  m.cacheable_bytes_fraction = next("cacheable_fraction");
  m.cdn_bytes_fraction = next("cdn_fraction");
  m.x_cache_hits = next("x_cache_hits");
  m.x_cache_misses = next("x_cache_misses");
  for (auto& fraction : m.mix_fractions) fraction = next("mix_fraction");
  for (auto& count : m.depth_counts) count = next("depth_count");
  m.unique_domains = next("unique_domains");
  m.hints_total = next("hints_total");
  m.handshakes = next("handshakes");
  m.handshake_time_ms = next("handshake_time");
  m.dns_lookups = next("dns_lookups");
  m.dns_time_ms = next("dns_time");
  m.is_http = parse_flag(f[i++], "is_http");
  m.mixed_content = parse_flag(f[i++], "mixed_content");
  m.tracking_requests = next("tracking_requests");
  m.header_bidding = parse_flag(f[i++], "header_bidding");
  m.hb_ad_slots = next("hb_ad_slots");
  if (f[i].rfind("tp:", 0) != 0) checkpoint_fail("bad third-party field");
  for (const auto& domain : util::split(f[i].substr(3), ';'))
    if (!domain.empty()) m.third_parties.insert(domain);
  ++i;
  if (f[i].rfind("wait:", 0) != 0) checkpoint_fail("bad wait-sample field");
  for (const auto& sample : util::split(f[i].substr(5), ';'))
    if (!sample.empty())
      m.wait_samples_ms.push_back(parse_double(sample, "wait sample"));
  return m;
}

// One site observation as site/metrics/outcome lines — shared by the
// per-shard and per-vantage checkpoint block formats (byte-identical
// records in both).
void write_site_record(std::ostream& out, std::size_t position,
                       const SiteObservation& o) {
  const bool has_landing = !o.quarantined;
  out << "site," << position << ',' << o.domain << ',' << o.bootstrap_rank
      << ',' << static_cast<unsigned>(o.category) << ','
      << (o.quarantined ? 1 : 0) << ',' << o.total_retries << ','
      << o.internals.size() << ',' << o.outcomes.size() << ','
      << (has_landing ? 1 : 0) << '\n';
  if (has_landing) write_metrics(out, o.landing);
  for (const auto& m : o.internals) write_metrics(out, m);
  for (const auto& outcome : o.outcomes) {
    out << "outcome," << outcome.page_index << ',' << outcome.load_ordinal
        << ',' << outcome.attempts << ','
        << static_cast<unsigned>(outcome.status) << ','
        << static_cast<unsigned>(outcome.failure) << ','
        << outcome.failed_objects;
    // Optional eighth field: written only when a breaker actually
    // denied fetches, so chaos-free checkpoints keep the historical
    // seven-field byte layout.
    if (outcome.breaker_denials > 0) out << ',' << outcome.breaker_denials;
    out << '\n';
  }
}

// Parses one site record (site line + metrics + outcomes) starting at
// lines[i], advancing i through the record. `need` is the caller's
// bounds-checked accessor (its truncation message names the block
// kind).
template <typename Need>
std::pair<std::size_t, SiteObservation> read_site_record(
    const std::vector<std::string>& lines, std::size_t& i, Need&& need) {
  const auto site = util::split(need(i++), ',');
  if (site.size() != 10 || site[0] != "site")
    checkpoint_fail("expected site record, got '" + lines[i - 1] + "'");
  const std::size_t position = parse_u64(site[1], "site position");
  SiteObservation o;
  o.domain = site[2];
  o.bootstrap_rank = parse_u64(site[3], "rank");
  const std::uint64_t category = parse_u64(site[4], "category");
  if (category >= web::kSiteCategoryCount)
    checkpoint_fail("bad category '" + site[4] + "'");
  o.category = static_cast<web::SiteCategory>(category);
  o.quarantined = parse_flag(site[5], "quarantined");
  o.total_retries = parse_int(site[6], "total retries");
  const std::size_t n_internals =
      parse_count(site[7], "internal count", lines.size());
  const std::size_t n_outcomes =
      parse_count(site[8], "outcome count", lines.size());
  const bool has_landing = parse_flag(site[9], "landing flag");
  if (has_landing) o.landing = parse_metrics(need(i++));
  o.internals.reserve(n_internals);
  for (std::size_t k = 0; k < n_internals; ++k)
    o.internals.push_back(parse_metrics(need(i++)));
  o.outcomes.reserve(n_outcomes);
  for (std::size_t k = 0; k < n_outcomes; ++k) {
    const auto f = util::split(need(i++), ',');
    if ((f.size() != 7 && f.size() != 8) || f[0] != "outcome")
      checkpoint_fail("bad outcome record '" + lines[i - 1] + "'");
    FetchOutcome outcome;
    outcome.page_index = parse_u64(f[1], "page index");
    outcome.load_ordinal = parse_int(f[2], "load ordinal");
    outcome.attempts = parse_int(f[3], "attempts");
    const int status = parse_int(f[4], "status");
    if (status < 0 || status > 2)
      checkpoint_fail("bad status '" + f[4] + "'");
    outcome.status = static_cast<browser::LoadStatus>(status);
    const int failure = parse_int(f[5], "failure kind");
    if (failure < 0 || failure >= static_cast<int>(net::kFaultKindCount))
      checkpoint_fail("bad failure kind '" + f[5] + "'");
    outcome.failure = static_cast<net::FaultKind>(failure);
    outcome.failed_objects = parse_int(f[6], "failed objects");
    if (f.size() == 8)
      outcome.breaker_denials = parse_int(f[7], "breaker denials");
    o.outcomes.push_back(outcome);
  }
  return {position, std::move(o)};
}

// One shard's final circuit-breaker states as breaker lines (chaos
// campaigns only; breaker keys never contain commas).
void write_breaker_records(
    std::ostream& out, const std::vector<net::BreakerSet::Record>& records) {
  for (const auto& r : records)
    out << "breaker," << r.key << ',' << static_cast<unsigned>(r.state) << ','
        << r.consecutive_failures << ',' << r.opened_at_s << ','
        << r.times_opened << ',' << r.denials << '\n';
}

// Consumes consecutive breaker lines starting at lines[i] (bounded by
// `end`), advancing i.
std::vector<net::BreakerSet::Record> read_breaker_lines(
    const std::vector<std::string>& lines, std::size_t& i, std::size_t end) {
  std::vector<net::BreakerSet::Record> records;
  while (i < end && lines[i].rfind("breaker,", 0) == 0) {
    const auto f = util::split(lines[i++], ',');
    if (f.size() != 7)
      checkpoint_fail("bad breaker record '" + lines[i - 1] + "'");
    net::BreakerSet::Record record;
    record.key = f[1];
    const int state = parse_int(f[2], "breaker state");
    if (state < 0 || state > 2)
      checkpoint_fail("bad breaker state '" + f[2] + "'");
    record.state = static_cast<net::BreakerState>(state);
    record.consecutive_failures = parse_int(f[3], "breaker failures");
    record.opened_at_s = parse_double(f[4], "breaker opened at");
    record.times_opened = parse_u64(f[5], "breaker times opened");
    record.denials = parse_u64(f[6], "breaker denials");
    records.push_back(std::move(record));
  }
  return records;
}

// One shard's telemetry as obscounter/obsgauge/obshist/obsspan/
// obsdropped lines — shared by the measurement and list-build
// checkpoint formats so both resume with bit-identical telemetry.
void write_obs_telemetry(std::ostream& out,
                         const obs::ShardTelemetry& telemetry) {
  for (const auto& [name, value] : telemetry.metrics.counters())
    out << "obscounter," << obs_sanitize(name) << ',' << value << '\n';
  for (const auto& [name, value] : telemetry.metrics.gauges())
    out << "obsgauge," << obs_sanitize(name) << ',' << value << '\n';
  for (const auto& [name, h] : telemetry.metrics.histograms()) {
    out << "obshist," << obs_sanitize(name) << ',';
    for (std::size_t k = 0; k < h.bounds.size(); ++k)
      out << (k ? ";" : "") << h.bounds[k];
    out << ',';
    for (std::size_t k = 0; k < h.counts.size(); ++k)
      out << (k ? ";" : "") << h.counts[k];
    out << ',' << h.count << ',' << h.sum << ',' << h.min << ',' << h.max
        << '\n';
  }
  for (const auto& span : telemetry.spans) {
    out << "obsspan," << span.tid << ',' << span.ts_us << ',' << span.dur_us
        << ',' << obs_sanitize(span.cat) << ',' << obs_sanitize(span.name);
    for (const auto& [key, value] : span.args)
      out << ',' << obs_sanitize(key) << '=' << obs_sanitize(value);
    out << '\n';
  }
  out << "obsdropped," << telemetry.spans_dropped << '\n';
}

// Consumes consecutive obs* lines starting at lines[i] (bounded by
// `end`), advancing i; returns whether any were present.
bool read_obs_lines(const std::vector<std::string>& lines, std::size_t& i,
                    std::size_t end, obs::ShardTelemetry& telemetry) {
  bool has_telemetry = false;
  while (i < end && lines[i].rfind("obs", 0) == 0) {
    has_telemetry = true;
    const auto f = util::split(lines[i++], ',');
    if (f[0] == "obscounter" && f.size() == 3) {
      telemetry.metrics.counter(f[1]) = parse_u64(f[2], "obs counter");
    } else if (f[0] == "obsgauge" && f.size() == 3) {
      telemetry.metrics.gauge(f[1]) = parse_double(f[2], "obs gauge");
    } else if (f[0] == "obshist" && f.size() == 8) {
      std::vector<double> bounds;
      for (const auto& b : util::split(f[2], ';'))
        if (!b.empty()) bounds.push_back(parse_double(b, "obs bound"));
      obs::Histogram& h = telemetry.metrics.histogram(f[1], bounds);
      std::vector<std::uint64_t> counts;
      for (const auto& c : util::split(f[3], ';'))
        if (!c.empty()) counts.push_back(parse_u64(c, "obs bucket"));
      if (counts.size() != bounds.size() + 1)
        checkpoint_fail("bad obs histogram '" + lines[i - 1] + "'");
      h.counts = std::move(counts);
      h.count = parse_u64(f[4], "obs hist count");
      h.sum = parse_double(f[5], "obs hist sum");
      h.min = parse_double(f[6], "obs hist min");
      h.max = parse_double(f[7], "obs hist max");
    } else if (f[0] == "obsspan" && f.size() >= 6) {
      obs::TraceSpan span;
      span.tid = static_cast<std::uint32_t>(parse_u64(f[1], "obs span tid"));
      span.ts_us = parse_i64(f[2], "obs span ts");
      span.dur_us = parse_i64(f[3], "obs span dur");
      span.cat = f[4];
      span.name = f[5];
      for (std::size_t k = 6; k < f.size(); ++k) {
        const auto eq = f[k].find('=');
        if (eq == std::string::npos)
          checkpoint_fail("bad obs span arg '" + f[k] + "'");
        span.args.emplace_back(f[k].substr(0, eq), f[k].substr(eq + 1));
      }
      telemetry.spans.push_back(std::move(span));
    } else if (f[0] == "obsdropped" && f.size() == 2) {
      telemetry.spans_dropped = parse_u64(f[1], "obs dropped");
    } else {
      checkpoint_fail("bad obs record '" + lines[i - 1] + "'");
    }
  }
  return has_telemetry;
}

}  // namespace

void write_checkpoint_header(std::ostream& out, std::uint64_t config_digest) {
  out << "hispar-checkpoint,v1," << config_digest << '\n';
}

void append_checkpoint_shard(std::ostream& out, std::size_t shard,
                             const std::vector<std::size_t>& positions,
                             const std::vector<SiteObservation>& observations,
                             const obs::ShardTelemetry* telemetry,
                             const std::vector<net::BreakerSet::Record>*
                                 breakers) {
  const auto precision = out.precision(17);
  out << "shard," << shard << ',' << positions.size() << '\n';
  for (std::size_t position : positions)
    write_site_record(out, position, observations[position]);
  if (breakers != nullptr) write_breaker_records(out, *breakers);
  if (telemetry != nullptr) write_obs_telemetry(out, *telemetry);
  out << "endshard," << shard << '\n';
  out.precision(precision);
}

CampaignCheckpoint read_checkpoint(std::istream& in) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  if (lines.empty()) checkpoint_fail("missing header");
  const auto header = util::split(lines[0], ',');
  if (header.size() != 3 || header[0] != "hispar-checkpoint" ||
      header[1] != "v1")
    checkpoint_fail("bad header '" + lines[0] + "'");

  CampaignCheckpoint checkpoint;
  checkpoint.config_digest = parse_u64(header[2], "config digest");

  // Everything after the last endshard terminator is a block torn by a
  // killed campaign: drop it. What remains must parse cleanly.
  std::size_t end = 1;
  for (std::size_t i = 1; i < lines.size(); ++i)
    if (lines[i].rfind("endshard,", 0) == 0) end = i + 1;

  const auto need = [&](std::size_t i) -> const std::string& {
    if (i >= end) checkpoint_fail("truncated shard record");
    return lines[i];
  };

  std::size_t i = 1;
  while (i < end) {
    const auto shard_fields = util::split(need(i++), ',');
    if (shard_fields.size() != 3 || shard_fields[0] != "shard")
      checkpoint_fail("expected shard record, got '" + lines[i - 1] + "'");
    const std::size_t shard_id = parse_u64(shard_fields[1], "shard id");
    const std::size_t n_sites =
        parse_count(shard_fields[2], "site count", lines.size());

    for (std::size_t s = 0; s < n_sites; ++s)
      checkpoint.observations.push_back(read_site_record(lines, i, need));

    // Optional breaker block (shards run under a chaos schedule).
    std::vector<net::BreakerSet::Record> breakers =
        read_breaker_lines(lines, i, end);
    if (!breakers.empty())
      checkpoint.breakers.emplace(shard_id, std::move(breakers));

    // Optional telemetry block (shards run with observability enabled).
    obs::ShardTelemetry telemetry;
    if (read_obs_lines(lines, i, end, telemetry))
      checkpoint.telemetry.emplace(shard_id, std::move(telemetry));

    const auto end_fields = util::split(need(i++), ',');
    if (end_fields.size() != 2 || end_fields[0] != "endshard" ||
        parse_u64(end_fields[1], "endshard id") != shard_id)
      checkpoint_fail("unterminated shard " + std::to_string(shard_id));
    checkpoint.completed_shards.push_back(shard_id);
  }
  return checkpoint;
}

// --- List-build checkpoints ---

void write_listbuild_checkpoint_header(std::ostream& out,
                                       std::uint64_t config_digest) {
  out << "hispar-listbuild,v1," << config_digest << '\n';
}

void append_listbuild_week(std::ostream& out,
                           const ListBuildWeekRecord& record) {
  const auto precision = out.precision(17);
  out << "week," << record.week << ',' << record.list.sets.size() << '\n';
  for (const auto& set : record.list.sets) {
    out << "set," << set.domain << ',' << set.bootstrap_rank << ','
        << set.urls.size() << '\n';
    for (std::size_t i = 0; i < set.urls.size(); ++i)
      out << "url," << set.page_indices[i] << ',' << set.urls[i] << '\n';
  }
  const WeekBuildStats& s = record.stats;
  out << "weekstats," << s.sites_examined << ',' << s.sites_accepted << ','
      << s.sites_dropped << ',' << s.sites_missing << ','
      << s.sites_quarantined << ',' << s.queries_billed << ','
      << s.speculative_queries << ',' << s.retries;
  for (const auto quarantined : s.quarantined_by) out << ',' << quarantined;
  out << '\n';
  for (const auto& [shard, telemetry] : record.telemetry) {
    out << "shardtel," << shard << '\n';
    write_obs_telemetry(out, telemetry);
    out << "endshardtel," << shard << '\n';
  }
  out << "endweek," << record.week << '\n';
  out.precision(precision);
}

ListBuildCheckpoint read_listbuild_checkpoint(std::istream& in) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  if (lines.empty()) checkpoint_fail("missing header");
  const auto header = util::split(lines[0], ',');
  if (header.size() != 3 || header[0] != "hispar-listbuild" ||
      header[1] != "v1")
    checkpoint_fail("bad header '" + lines[0] + "'");

  ListBuildCheckpoint checkpoint;
  checkpoint.config_digest = parse_u64(header[2], "config digest");

  // Everything after the last endweek terminator is a block torn by a
  // killed build: drop it. What remains must parse cleanly.
  std::size_t end = 1;
  for (std::size_t i = 1; i < lines.size(); ++i)
    if (lines[i].rfind("endweek,", 0) == 0) end = i + 1;

  const auto need = [&](std::size_t i) -> const std::string& {
    if (i >= end) checkpoint_fail("truncated week record");
    return lines[i];
  };

  std::size_t i = 1;
  while (i < end) {
    const auto week_fields = util::split(need(i++), ',');
    if (week_fields.size() != 3 || week_fields[0] != "week")
      checkpoint_fail("expected week record, got '" + lines[i - 1] + "'");
    ListBuildWeekRecord record;
    record.week = parse_u64(week_fields[1], "week");
    record.list.week = record.week;
    record.stats.week = record.week;
    const std::size_t n_sets =
        parse_count(week_fields[2], "set count", lines.size());

    record.list.sets.reserve(n_sets);
    for (std::size_t s = 0; s < n_sets; ++s) {
      const auto set_fields = util::split(need(i++), ',');
      if (set_fields.size() != 4 || set_fields[0] != "set")
        checkpoint_fail("expected set record, got '" + lines[i - 1] + "'");
      UrlSet set;
      set.domain = set_fields[1];
      set.bootstrap_rank = parse_u64(set_fields[2], "rank");
      const std::size_t n_urls =
          parse_count(set_fields[3], "url count", lines.size());
      set.urls.reserve(n_urls);
      set.page_indices.reserve(n_urls);
      for (std::size_t u = 0; u < n_urls; ++u) {
        const auto url_fields = util::split(need(i++), ',');
        if (url_fields.size() != 3 || url_fields[0] != "url")
          checkpoint_fail("bad url record '" + lines[i - 1] + "'");
        set.page_indices.push_back(parse_u64(url_fields[1], "page index"));
        set.urls.push_back(url_fields[2]);
      }
      record.list.sets.push_back(std::move(set));
    }

    const auto stat_fields = util::split(need(i++), ',');
    if (stat_fields.size() != 9 + net::kSearchFaultKindCount ||
        stat_fields[0] != "weekstats")
      checkpoint_fail("bad weekstats record '" + lines[i - 1] + "'");
    WeekBuildStats& stats = record.stats;
    stats.sites_examined = parse_u64(stat_fields[1], "sites examined");
    stats.sites_accepted = parse_u64(stat_fields[2], "sites accepted");
    stats.sites_dropped = parse_u64(stat_fields[3], "sites dropped");
    stats.sites_missing = parse_u64(stat_fields[4], "sites missing");
    stats.sites_quarantined = parse_u64(stat_fields[5], "sites quarantined");
    stats.queries_billed = parse_u64(stat_fields[6], "queries billed");
    stats.speculative_queries =
        parse_u64(stat_fields[7], "speculative queries");
    stats.retries = parse_u64(stat_fields[8], "retries");
    for (int kind = 0; kind < net::kSearchFaultKindCount; ++kind)
      stats.quarantined_by[static_cast<std::size_t>(kind)] = parse_u64(
          stat_fields[9 + static_cast<std::size_t>(kind)], "quarantined by");

    while (i < end && lines[i].rfind("shardtel,", 0) == 0) {
      const auto tel_fields = util::split(need(i++), ',');
      if (tel_fields.size() != 2)
        checkpoint_fail("bad shardtel record '" + lines[i - 1] + "'");
      const std::size_t shard_id = parse_u64(tel_fields[1], "shardtel id");
      obs::ShardTelemetry telemetry;
      read_obs_lines(lines, i, end, telemetry);
      const auto tel_end = util::split(need(i++), ',');
      if (tel_end.size() != 2 || tel_end[0] != "endshardtel" ||
          parse_u64(tel_end[1], "endshardtel id") != shard_id)
        checkpoint_fail("unterminated shardtel " + std::to_string(shard_id));
      record.telemetry.emplace(shard_id, std::move(telemetry));
    }

    const auto end_fields = util::split(need(i++), ',');
    if (end_fields.size() != 2 || end_fields[0] != "endweek" ||
        parse_u64(end_fields[1], "endweek week") != record.week)
      checkpoint_fail("unterminated week " + std::to_string(record.week));
    checkpoint.weeks.push_back(std::move(record));
  }
  return checkpoint;
}

// --- Multi-vantage checkpoints ---

void write_vantage_checkpoint_header(std::ostream& out,
                                     std::uint64_t config_digest) {
  out << "hispar-vantage,v1," << config_digest << '\n';
}

void append_vantage_block(std::ostream& out, std::size_t vantage,
                          const std::vector<SiteObservation>& observations,
                          const obs::ShardTelemetry* telemetry) {
  const auto precision = out.precision(17);
  out << "vantage," << vantage << ',' << observations.size() << '\n';
  for (std::size_t position = 0; position < observations.size(); ++position)
    write_site_record(out, position, observations[position]);
  if (telemetry != nullptr) write_obs_telemetry(out, *telemetry);
  out << "endvantage," << vantage << '\n';
  out.precision(precision);
}

void append_vantage_shard_block(std::ostream& out, std::size_t vantage,
                                std::size_t shard,
                                const std::vector<std::size_t>& positions,
                                const std::vector<SiteObservation>&
                                    observations,
                                const obs::ShardTelemetry* telemetry) {
  const auto precision = out.precision(17);
  out << "vshard," << vantage << ',' << shard << ',' << positions.size()
      << '\n';
  for (const std::size_t position : positions)
    write_site_record(out, position, observations[position]);
  if (telemetry != nullptr) write_obs_telemetry(out, *telemetry);
  out << "endvshard," << vantage << ',' << shard << '\n';
  out.precision(precision);
}

VantageCheckpoint read_vantage_checkpoint(std::istream& in) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  if (lines.empty()) checkpoint_fail("missing header");
  const auto header = util::split(lines[0], ',');
  if (header.size() != 3 || header[0] != "hispar-vantage" || header[1] != "v1")
    checkpoint_fail("bad header '" + lines[0] + "'");

  VantageCheckpoint checkpoint;
  checkpoint.config_digest = parse_u64(header[2], "config digest");

  // Everything after the last terminator (of either block kind) is a
  // block torn by a killed run: drop it. What remains must parse
  // cleanly.
  std::size_t end = 1;
  for (std::size_t i = 1; i < lines.size(); ++i)
    if (lines[i].rfind("endvantage,", 0) == 0 ||
        lines[i].rfind("endvshard,", 0) == 0)
      end = i + 1;

  const auto need = [&](std::size_t i) -> const std::string& {
    if (i >= end) checkpoint_fail("truncated vantage record");
    return lines[i];
  };

  std::size_t i = 1;
  while (i < end) {
    const auto head_fields = util::split(need(i), ',');
    if (head_fields[0] == "vshard") {
      ++i;
      if (head_fields.size() != 4)
        checkpoint_fail("bad vshard record '" + lines[i - 1] + "'");
      VantageShardBlock block;
      block.vantage = parse_u64(head_fields[1], "vshard vantage id");
      block.shard = parse_u64(head_fields[2], "vshard shard id");
      const std::size_t n_sites =
          parse_count(head_fields[3], "site count", lines.size());
      block.observations.reserve(n_sites);
      for (std::size_t s = 0; s < n_sites; ++s)
        block.observations.push_back(read_site_record(lines, i, need));
      block.has_telemetry = read_obs_lines(lines, i, end, block.telemetry);

      const auto end_fields = util::split(need(i++), ',');
      if (end_fields.size() != 3 || end_fields[0] != "endvshard" ||
          parse_u64(end_fields[1], "endvshard vantage id") != block.vantage ||
          parse_u64(end_fields[2], "endvshard shard id") != block.shard)
        checkpoint_fail("unterminated vshard (" +
                        std::to_string(block.vantage) + ", " +
                        std::to_string(block.shard) + ")");
      checkpoint.shards.push_back(std::move(block));
      continue;
    }

    ++i;
    if (head_fields.size() != 3 || head_fields[0] != "vantage")
      checkpoint_fail("expected vantage record, got '" + lines[i - 1] + "'");
    VantageCheckpointBlock block;
    block.vantage = parse_u64(head_fields[1], "vantage id");
    const std::size_t n_sites =
        parse_count(head_fields[2], "site count", lines.size());
    block.observations.reserve(n_sites);
    for (std::size_t s = 0; s < n_sites; ++s)
      block.observations.push_back(read_site_record(lines, i, need));
    block.has_telemetry = read_obs_lines(lines, i, end, block.telemetry);

    const auto end_fields = util::split(need(i++), ',');
    if (end_fields.size() != 2 || end_fields[0] != "endvantage" ||
        parse_u64(end_fields[1], "endvantage id") != block.vantage)
      checkpoint_fail("unterminated vantage " +
                      std::to_string(block.vantage));
    checkpoint.vantages.push_back(std::move(block));
  }
  return checkpoint;
}

// --- Browsing-session checkpoints ---

void write_session_checkpoint_header(std::ostream& out,
                                     std::uint64_t config_digest) {
  out << "hispar-session,v1," << config_digest << '\n';
}

void append_session_block(std::ostream& out, std::size_t position,
                          const SiteObservation& observation,
                          const browser::CacheStats& cache,
                          const obs::ShardTelemetry* telemetry) {
  const auto precision = out.precision(17);
  out << "session," << position << '\n';
  write_site_record(out, position, observation);
  out << "cachestats," << cache.lookups << ',' << cache.fresh_hits << ','
      << cache.revalidations << ',' << cache.misses << ','
      << cache.insertions << ',' << cache.evictions << '\n';
  if (telemetry != nullptr) write_obs_telemetry(out, *telemetry);
  out << "endsession," << position << '\n';
  out.precision(precision);
}

SessionCheckpoint read_session_checkpoint(std::istream& in) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  if (lines.empty()) checkpoint_fail("missing header");
  const auto header = util::split(lines[0], ',');
  if (header.size() != 3 || header[0] != "hispar-session" || header[1] != "v1")
    checkpoint_fail("bad header '" + lines[0] + "'");

  SessionCheckpoint checkpoint;
  checkpoint.config_digest = parse_u64(header[2], "config digest");

  // Everything after the last endsession terminator is a block torn by
  // a killed run: drop it. What remains must parse cleanly.
  std::size_t end = 1;
  for (std::size_t i = 1; i < lines.size(); ++i)
    if (lines[i].rfind("endsession,", 0) == 0) end = i + 1;

  const auto need = [&](std::size_t i) -> const std::string& {
    if (i >= end) checkpoint_fail("truncated session record");
    return lines[i];
  };

  std::size_t i = 1;
  while (i < end) {
    const auto session_fields = util::split(need(i++), ',');
    if (session_fields.size() != 2 || session_fields[0] != "session")
      checkpoint_fail("expected session record, got '" + lines[i - 1] + "'");
    SessionCheckpointBlock block;
    block.position = parse_u64(session_fields[1], "session position");
    auto [position, observation] = read_site_record(lines, i, need);
    if (position != block.position)
      checkpoint_fail("session/site position mismatch at session " +
                      std::to_string(block.position));
    block.observation = std::move(observation);

    const auto cache_fields = util::split(need(i++), ',');
    if (cache_fields.size() != 7 || cache_fields[0] != "cachestats")
      checkpoint_fail("bad cachestats record '" + lines[i - 1] + "'");
    block.cache.lookups = parse_u64(cache_fields[1], "cache lookups");
    block.cache.fresh_hits = parse_u64(cache_fields[2], "cache fresh hits");
    block.cache.revalidations =
        parse_u64(cache_fields[3], "cache revalidations");
    block.cache.misses = parse_u64(cache_fields[4], "cache misses");
    block.cache.insertions = parse_u64(cache_fields[5], "cache insertions");
    block.cache.evictions = parse_u64(cache_fields[6], "cache evictions");

    block.has_telemetry = read_obs_lines(lines, i, end, block.telemetry);

    const auto end_fields = util::split(need(i++), ',');
    if (end_fields.size() != 2 || end_fields[0] != "endsession" ||
        parse_u64(end_fields[1], "endsession position") != block.position)
      checkpoint_fail("unterminated session " +
                      std::to_string(block.position));
    checkpoint.sessions.push_back(std::move(block));
  }
  return checkpoint;
}

// --- Atomic file replacement ---

void replace_file_atomically(const std::string& path,
                             const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) checkpoint_fail("cannot open temp file " + tmp);
    out << contents;
    out.flush();
    if (!out) checkpoint_fail("cannot write temp file " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    checkpoint_fail("cannot rename " + tmp + " over " + path);
}

// --- CLI checkpoint-path resolution ---

std::string resolve_checkpoint_path(const std::string& context,
                                    const std::string& checkpoint,
                                    bool has_resume,
                                    const std::string& resume) {
  if (!has_resume) return checkpoint;
  if (resume.empty())
    throw std::invalid_argument(
        context + ": --resume needs a checkpoint file path (use "
        "--checkpoint FILE to start a new checkpointed run)");
  if (!checkpoint.empty() && checkpoint != resume)
    throw std::invalid_argument(context +
                                ": --checkpoint and --resume disagree (" +
                                checkpoint + " vs " + resume + ")");
  std::ifstream probe(resume);
  if (!probe)
    throw std::invalid_argument(context + ": --resume file not found: " +
                                resume);
  return resume;
}

}  // namespace hispar::core
