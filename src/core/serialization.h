// Hispar list serialization.
//
// The paper publishes H2K weekly as a downloadable artifact [49]; this
// module reads/writes that artifact. Two formats:
//  * CSV — one row per URL: domain, bootstrap rank, kind, page index,
//    url (the published format);
//  * JSON — nested URL sets, convenient for web tooling.
// Round-tripping is exact (tests/test_serialization.cpp).
#pragma once

#include <iosfwd>
#include <string>

#include "core/hispar.h"

namespace hispar::core {

// --- CSV ---
void write_csv(const HisparList& list, std::ostream& out);
std::string to_csv(const HisparList& list);
// Throws std::runtime_error on malformed input (bad header, bad rank,
// internal URL before its landing page, unparsable URL).
HisparList read_csv(std::istream& in, std::string name = "from-csv");
HisparList from_csv(const std::string& csv, std::string name = "from-csv");

// --- JSON (subset used by the published artifact) ---
std::string to_json(const HisparList& list);

// Convenience file helpers.
void save_csv(const HisparList& list, const std::string& path);
HisparList load_csv(const std::string& path);

}  // namespace hispar::core
